/**
 * @file
 * Sharded execution layer tests: ShardPlan partitioning (coverage,
 * alignment / head-parallel boundaries, degenerate axes), bit-exact
 * parity of sharded vs unsharded execution for both strategies, the
 * collective cost model (non-negative, monotone, absent at one rank),
 * the sharded InferenceSession path (per-rank queues, deterministic
 * reduction), and the ISSUE acceptance criterion: the fig10 OPT decode
 * workload is faster sharded across 4 ranks than unsharded.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "backend/backend.h"
#include "nn/inference.h"
#include "serving/plan_cache.h"
#include "serving/session.h"
#include "serving/sharding.h"

namespace localut {
namespace {

TEST(ShardPlan, SingleRankIsTheUnshardedPlan)
{
    const BackendPtr backend = makeBackend("upmem");
    const QuantConfig cfg = QuantConfig::preset("W4A4");
    const GemmProblem problem = makeShapeOnlyProblem(96, 64, 8, cfg);

    const ShardPlan plan = makeShardPlan(*backend, problem,
                                         DesignPoint::LoCaLut, ShardSpec{});
    ASSERT_EQ(plan.shards.size(), 1u);
    EXPECT_EQ(plan.shards[0].begin, 0u);
    EXPECT_EQ(plan.shards[0].end, 96u);
    EXPECT_DOUBLE_EQ(plan.collectiveSeconds, 0.0);
    EXPECT_DOUBLE_EQ(plan.collectiveBytes, 0.0);

    // Execution through the shard path is the direct execution.
    const GemmResult sharded =
        executeSharded(*backend, problem, plan, /*computeValues=*/false);
    const GemmResult direct =
        backend->execute(problem, plan.shards[0].plan,
                         /*computeValues=*/false);
    EXPECT_DOUBLE_EQ(sharded.timing.total, direct.timing.total);
    EXPECT_DOUBLE_EQ(sharded.energy.total, direct.energy.total);
}

TEST(ShardPlan, CoversTheAxisWithAlignedBoundaries)
{
    const BackendPtr backend = makeBackend("upmem");
    const QuantConfig cfg = QuantConfig::preset("W1A3");
    // 768 rows, head size 64, 4 ranks: each shard must hold whole heads.
    const GemmProblem problem = makeShapeOnlyProblem(768, 768, 32, cfg);
    ShardSpec spec;
    spec.numRanks = 4;
    spec.align = 64;
    const ShardPlan plan =
        makeShardPlan(*backend, problem, DesignPoint::LoCaLut, spec);

    ASSERT_EQ(plan.shards.size(), 4u);
    std::size_t covered = 0;
    for (const GemmShard& shard : plan.shards) {
        EXPECT_EQ(shard.begin, covered);
        EXPECT_EQ(shard.begin % 64, 0u) << "head split across ranks";
        covered = shard.end;
    }
    EXPECT_EQ(covered, 768u);
    EXPECT_GT(plan.collectiveSeconds, 0.0);
    EXPECT_DOUBLE_EQ(plan.collectiveBytes, 768.0 * 32.0 * 4.0);
}

TEST(ShardPlan, DegenerateAxisProducesFewerShards)
{
    const BackendPtr backend = makeBackend("upmem");
    const QuantConfig cfg = QuantConfig::preset("W1A3");
    // 3 output rows cannot feed 8 ranks.
    const GemmProblem problem = makeShapeOnlyProblem(3, 64, 8, cfg);
    ShardSpec spec;
    spec.numRanks = 8;
    const ShardPlan plan =
        makeShardPlan(*backend, problem, DesignPoint::LoCaLut, spec);
    EXPECT_LE(plan.shards.size(), 3u);
    EXPECT_EQ(plan.shards.back().end, 3u);
}

TEST(ShardPlan, ColumnParallelIsBitExactOnEveryBackend)
{
    const QuantConfig cfg = QuantConfig::preset("W2A2");
    const GemmProblem problem = makeRandomProblem(48, 96, 16, cfg, 7);
    const auto reference = referenceGemmInt(problem.w, problem.a);

    for (const char* name : {"upmem", "bankpim", "host-cpu"}) {
        const BackendPtr backend = makeBackend(name);
        for (unsigned ranks : {2u, 4u, 8u}) {
            ShardSpec spec;
            spec.numRanks = ranks;
            const ShardPlan plan = makeShardPlan(
                *backend, problem, DesignPoint::LoCaLut, spec);
            const GemmResult result =
                executeSharded(*backend, problem, plan);
            EXPECT_EQ(result.outInt, reference)
                << name << " ranks=" << ranks;
        }
    }
}

TEST(ShardPlan, RowParallelReducesBitExactly)
{
    const BackendPtr backend = makeBackend("upmem");
    const QuantConfig cfg = QuantConfig::preset("W4A4");
    const GemmProblem problem = makeRandomProblem(32, 96, 8, cfg, 13);
    const auto reference = referenceGemmInt(problem.w, problem.a);

    ShardSpec spec;
    spec.numRanks = 4;
    spec.strategy = ShardStrategy::RowParallel;
    const ShardPlan plan =
        makeShardPlan(*backend, problem, DesignPoint::LoCaLut, spec);
    ASSERT_EQ(plan.shards.size(), 4u);
    EXPECT_EQ(plan.shards.back().end, 96u); // K axis, not M
    EXPECT_GT(plan.hostReduceOps, 0.0);
    // The prediction includes the host reduce (admission control must
    // not under-estimate RowParallel workloads).
    EXPECT_GT(plan.hostReduceSeconds, 0.0);
    EXPECT_GE(plan.predictedSeconds(),
              plan.collectiveSeconds + plan.hostReduceSeconds);

    const GemmResult result = executeSharded(*backend, problem, plan);
    EXPECT_EQ(result.outInt, reference);
}

TEST(ShardPlan, RowParallelRejectsFloatConfigs)
{
    const BackendPtr backend = makeBackend("upmem");
    const QuantConfig cfg = QuantConfig::fpPreset(1, 8);
    const GemmProblem problem = makeShapeOnlyProblem(32, 64, 8, cfg);
    ShardSpec spec;
    spec.numRanks = 2;
    spec.strategy = ShardStrategy::RowParallel;
    EXPECT_THROW(
        makeShardPlan(*backend, problem, DesignPoint::LoCaLut, spec),
        std::runtime_error);

    // A single rank needs no summation, so the float restriction does
    // not apply and the functional pass must survive the reduce.
    ShardSpec single = spec;
    single.numRanks = 1;
    const GemmProblem withValues =
        makeRandomProblem(16, 32, 4, cfg, /*seed=*/17);
    const ShardPlan plan = makeShardPlan(*backend, withValues,
                                         DesignPoint::LoCaLut, single);
    const GemmResult result = executeSharded(*backend, withValues, plan);
    EXPECT_EQ(result.outFloat,
              referenceGemmFloat(withValues.w, withValues.a));
}

TEST(ShardPlan, CollectiveCostIsMonotoneInRanks)
{
    const BackendPtr backend = makeBackend("upmem");
    const QuantConfig cfg = QuantConfig::preset("W4A4");
    const GemmProblem problem = makeShapeOnlyProblem(768, 768, 32, cfg);

    double prevSeconds = 0.0;
    double prevBytes = 0.0;
    for (unsigned ranks : {1u, 2u, 4u, 8u}) {
        ShardSpec spec;
        spec.numRanks = ranks;
        const ShardPlan plan =
            makeShardPlan(*backend, problem, DesignPoint::LoCaLut, spec);
        EXPECT_GE(plan.collectiveSeconds, prevSeconds) << ranks;
        EXPECT_GE(plan.collectiveBytes, prevBytes) << ranks;
        EXPECT_GE(plan.collectiveJoules, 0.0) << ranks;
        prevSeconds = plan.collectiveSeconds;
        prevBytes = plan.collectiveBytes;
    }
}

TEST(ShardPlan, RowParallelMovesMoreBytesThanColumnParallel)
{
    const BackendPtr backend = makeBackend("upmem");
    const QuantConfig cfg = QuantConfig::preset("W4A4");
    const GemmProblem problem = makeShapeOnlyProblem(256, 256, 16, cfg);
    ShardSpec col;
    col.numRanks = 4;
    ShardSpec row = col;
    row.strategy = ShardStrategy::RowParallel;
    const ShardPlan colPlan =
        makeShardPlan(*backend, problem, DesignPoint::LoCaLut, col);
    const ShardPlan rowPlan =
        makeShardPlan(*backend, problem, DesignPoint::LoCaLut, row);
    // Row-parallel gathers one full MxN partial per rank.
    EXPECT_DOUBLE_EQ(rowPlan.collectiveBytes, 4.0 * colPlan.collectiveBytes);
}

TEST(HierarchicalShardPlan, SingleNodeHasNoInterNodeShare)
{
    const BackendPtr backend = makeBackend("upmem");
    const QuantConfig cfg = QuantConfig::preset("W4A4");
    const GemmProblem problem = makeShapeOnlyProblem(256, 256, 16, cfg);
    ShardSpec spec;
    spec.numRanks = 4;
    spec.numNodes = 1;
    const ShardPlan plan =
        makeShardPlan(*backend, problem, DesignPoint::LoCaLut, spec);
    EXPECT_DOUBLE_EQ(plan.interNodeBytes, 0.0);
    EXPECT_DOUBLE_EQ(plan.interNodeSeconds, 0.0);
}

TEST(HierarchicalShardPlan, MultiNodeChargesTheInterNodeTier)
{
    const BackendPtr backend = makeBackend("upmem");
    const QuantConfig cfg = QuantConfig::preset("W4A4");
    const GemmProblem problem = makeShapeOnlyProblem(256, 256, 16, cfg);

    // Same flat rank count, one vs two nodes: the 2x2 cut produces the
    // same shard slices as 1x4 but routes node 1's gathered slices over
    // the CXL tier, which is slower and costlier than the host link.
    ShardSpec flat;
    flat.numRanks = 4;
    ShardSpec hier;
    hier.numRanks = 2;
    hier.numNodes = 2;
    const ShardPlan flatPlan =
        makeShardPlan(*backend, problem, DesignPoint::LoCaLut, flat);
    const ShardPlan hierPlan =
        makeShardPlan(*backend, problem, DesignPoint::LoCaLut, hier);
    ASSERT_EQ(hierPlan.shards.size(), flatPlan.shards.size());

    // ColumnParallel: node 1's two shards (half the output) cross.
    EXPECT_DOUBLE_EQ(hierPlan.interNodeBytes, 256.0 * 16.0 * 4.0 / 2.0);
    EXPECT_GT(hierPlan.interNodeSeconds, 0.0);
    EXPECT_DOUBLE_EQ(hierPlan.collectiveBytes, flatPlan.collectiveBytes);
    EXPECT_GT(hierPlan.collectiveSeconds, flatPlan.collectiveSeconds);
    EXPECT_GT(hierPlan.collectiveJoules, flatPlan.collectiveJoules);

    // RowParallel: node 1 forwards exactly one node-reduced MxN partial,
    // and the hierarchical reduce does (local adds) + (1 remote add) =
    // 1 + 1 ops per element instead of the flat 3.
    ShardSpec rowHier = hier;
    rowHier.strategy = ShardStrategy::RowParallel;
    const ShardPlan rowPlan =
        makeShardPlan(*backend, problem, DesignPoint::LoCaLut, rowHier);
    const double outElems = 256.0 * 16.0;
    EXPECT_DOUBLE_EQ(rowPlan.interNodeBytes, outElems * 4.0);
    EXPECT_DOUBLE_EQ(rowPlan.hostReduceOps, 2.0 * outElems);
}

TEST(HierarchicalShardPlan, MultiNodeCutsStayBitExact)
{
    const QuantConfig cfg = QuantConfig::preset("W2A2");
    const GemmProblem problem = makeRandomProblem(64, 64, 8, cfg, 91);
    const auto reference = referenceGemmInt(problem.w, problem.a);

    const BackendPtr backend = makeBackend("upmem");
    for (const ShardStrategy strategy :
         {ShardStrategy::ColumnParallel, ShardStrategy::RowParallel}) {
        for (const unsigned nodes : {1u, 2u}) {
            for (const unsigned ranks : {2u, 4u}) {
                ShardSpec spec;
                spec.numRanks = ranks;
                spec.numNodes = nodes;
                spec.strategy = strategy;
                const ShardPlan plan = makeShardPlan(
                    *backend, problem, DesignPoint::LoCaLut, spec);
                const GemmResult result =
                    executeSharded(*backend, problem, plan);
                EXPECT_EQ(result.outInt, reference)
                    << shardStrategyName(strategy) << " " << nodes << "x"
                    << ranks;
            }
        }
    }
}

TEST(HierarchicalShardPlan, NodeCountIsPartOfThePlanCacheKey)
{
    const BackendPtr backend = makeBackend("upmem");
    const QuantConfig cfg = QuantConfig::preset("W1A3");
    const GemmProblem problem = makeShapeOnlyProblem(128, 64, 8, cfg);
    PlanCache cache;

    ShardSpec spec;
    spec.numRanks = 2;
    spec.numNodes = 1;
    cache.shardPlanFor(*backend, problem, DesignPoint::LoCaLut, spec);
    const auto afterFlat = cache.stats();

    // 2x2 deals the same per-node rank count across two nodes: a
    // different cut (4 shards) and a different key — it must miss.
    spec.numNodes = 2;
    const ShardPlan hier = cache.shardPlanFor(
        *backend, problem, DesignPoint::LoCaLut, spec);
    EXPECT_GT(cache.stats().misses, afterFlat.misses);
    EXPECT_EQ(hier.shards.size(), 4u);
    EXPECT_GT(hier.interNodeBytes, 0.0);
}

TEST(PlanCacheSharding, ShardPlansAreMemoizedSeparately)
{
    const BackendPtr backend = makeBackend("upmem");
    const QuantConfig cfg = QuantConfig::preset("W1A3");
    const GemmProblem problem = makeShapeOnlyProblem(128, 64, 8, cfg);
    PlanCache cache;

    ShardSpec spec;
    spec.numRanks = 4;
    const ShardPlan first = cache.shardPlanFor(
        *backend, problem, DesignPoint::LoCaLut, spec);
    const auto afterFirst = cache.stats();
    // One ShardPlan entry + one sub-plan entry per distinct slice shape.
    EXPECT_GE(afterFirst.entries, 2u);

    const ShardPlan second = cache.shardPlanFor(
        *backend, problem, DesignPoint::LoCaLut, spec);
    EXPECT_EQ(cache.stats().misses, afterFirst.misses);
    EXPECT_GT(cache.stats().hits, afterFirst.hits);
    EXPECT_EQ(second.shards.size(), first.shards.size());

    // A different rank count is a different key.
    ShardSpec other = spec;
    other.numRanks = 2;
    cache.shardPlanFor(*backend, problem, DesignPoint::LoCaLut, other);
    EXPECT_GT(cache.stats().misses, afterFirst.misses);
}

TEST(ShardedSession, GemmRequestsAreBitExactWithUnsharded)
{
    const QuantConfig cfg = QuantConfig::preset("W2A2");
    SessionOptions sharded;
    sharded.numRanks = 4;
    InferenceSession shardedSession(makeBackend("upmem"), sharded);
    InferenceSession plainSession(makeBackend("upmem"));

    std::vector<InferenceSession::RequestId> shardedIds, plainIds;
    std::vector<GemmProblem> problems;
    for (unsigned i = 0; i < 8; ++i) {
        problems.push_back(
            makeRandomProblem(64, 64, 8, cfg, /*seed=*/300 + i));
        shardedIds.push_back(shardedSession.submit(
            problems.back(), DesignPoint::LoCaLut, /*computeValues=*/true));
        plainIds.push_back(plainSession.submit(
            problems.back(), DesignPoint::LoCaLut, /*computeValues=*/true));
    }
    for (unsigned i = 0; i < problems.size(); ++i) {
        const GemmResult viaSharded = shardedSession.wait(shardedIds[i]);
        const GemmResult viaPlain = plainSession.wait(plainIds[i]);
        const auto reference =
            referenceGemmInt(problems[i].w, problems[i].a);
        EXPECT_EQ(viaSharded.outInt, reference) << i;
        EXPECT_EQ(viaPlain.outInt, reference) << i;
        // Sharding always charges the collective hop.
        EXPECT_GT(viaSharded.timing.total, 0.0);
        EXPECT_GT(viaSharded.timing.seconds.get("link.collective"), 0.0);
    }
    EXPECT_EQ(shardedSession.pendingRequests(), 0u);
}

TEST(ShardedSession, MatchesSequentialShardedExecution)
{
    const BackendPtr backend = makeBackend("upmem");
    const QuantConfig cfg = QuantConfig::preset("W1A4");
    const GemmProblem problem = makeRandomProblem(96, 64, 8, cfg, 21);

    SessionOptions options;
    options.numRanks = 4;
    InferenceSession session(backend, options);
    const GemmResult viaSession = session.wait(
        session.submit(problem, DesignPoint::LoCaLut,
                       /*computeValues=*/true));

    ShardSpec spec;
    spec.numRanks = 4;
    const ShardPlan plan =
        makeShardPlan(*backend, problem, DesignPoint::LoCaLut, spec);
    const GemmResult sequential = executeSharded(*backend, problem, plan);

    EXPECT_EQ(viaSession.outInt, sequential.outInt);
    EXPECT_DOUBLE_EQ(viaSession.timing.total, sequential.timing.total);
    EXPECT_DOUBLE_EQ(viaSession.energy.total, sequential.energy.total);
}

TEST(ShardedSession, WorkloadShardsEveryGemmNode)
{
    const TransformerConfig model = TransformerConfig::opt125m();
    const QuantConfig cfg = QuantConfig::preset("W4A4");
    SessionOptions options;
    options.numRanks = 4;
    InferenceSession session(makeBackend("upmem"), options);

    const auto workload = session.compile(
        WorkloadSpec::decode(model, 32, 128, 2), cfg, DesignPoint::LoCaLut);
    EXPECT_TRUE(workload.sharded());
    EXPECT_EQ(workload.shardedNodes.size(), 4u);
    EXPECT_EQ(workload.numRanks, 4u);
    EXPECT_TRUE(workload.nodes.empty());
    EXPECT_GT(workload.predictedGemmSeconds(), 0.0);
    // QKV shards align to the attention head size (head-parallel).
    const ShardPlan& qkv = workload.shardedNodes.front().plan;
    for (const GemmShard& shard : qkv.shards) {
        EXPECT_EQ(shard.begin % model.headDim(), 0u);
    }

    const InferenceReport report = session.waitReport(session.submit(workload));
    EXPECT_GT(report.timing.total, 0.0);
    EXPECT_GT(report.collectiveSeconds, 0.0);
    // The report shares partition the total: the collective is not
    // hidden inside the GEMM share too.
    EXPECT_NEAR(report.gemmSeconds + report.hostOpSeconds +
                    report.collectiveSeconds,
                report.timing.total, report.timing.total * 1e-9);
}

/** The ISSUE acceptance criterion: fig10's OPT decode workload, sharded
 * across 4 ranks, has a lower modeled latency than unsharded. */
TEST(ShardedSession, Fig10OptDecodeFasterAtFourRanks)
{
    const TransformerConfig model = TransformerConfig::opt125m();
    const QuantConfig cfg = QuantConfig::preset("W4A4");
    const WorkloadSpec spec = WorkloadSpec::decode(model, 32, 128, 8);

    InferenceSession plain(makeBackend("upmem"));
    const InferenceReport unsharded =
        plain.waitReport(plain.submit(
            plain.compile(spec, cfg, DesignPoint::LoCaLut)));

    SessionOptions options;
    options.numRanks = 4;
    InferenceSession session(makeBackend("upmem"), options);
    const InferenceReport sharded =
        session.waitReport(session.submit(
            session.compile(spec, cfg, DesignPoint::LoCaLut)));

    EXPECT_LT(sharded.timing.total, unsharded.timing.total);
    EXPECT_GT(sharded.collectiveSeconds, 0.0);
    // The collective is an overhead the unsharded path does not pay, so
    // speedup stays below the 4x hardware scale-out.
    EXPECT_GT(sharded.timing.total, unsharded.timing.total / 4.0);
}

/** The ISSUE acceptance criterion for the hierarchical topology: the
 * fig10 OPT decode workload at 2 nodes x 4 ranks beats 1 node x 4 ranks
 * end-to-end — cold start included (fresh sessions, residency on, so
 * the first request pays every LUT broadcast, with node 1's share
 * crossing the codec-compressed inter-node tier). */
TEST(ShardedSession, Fig10OptDecodeTwoNodesBeatOneNodeCold)
{
    const TransformerConfig model = TransformerConfig::opt125m();
    const QuantConfig cfg = QuantConfig::preset("W4A4");
    const WorkloadSpec spec = WorkloadSpec::decode(model, 32, 128, 8);

    SessionOptions oneNode;
    oneNode.numRanks = 4;
    oneNode.residencyPolicy = ResidencyPolicy::CostAware;
    InferenceSession single(makeBackend("upmem"), oneNode);
    const InferenceReport cold1x4 = single.waitReport(
        single.submit(single.compile(spec, cfg, DesignPoint::LoCaLut)));

    SessionOptions twoNodes = oneNode;
    twoNodes.numNodes = 2;
    InferenceSession dual(makeBackend("upmem"), twoNodes);
    const InferenceReport cold2x4 = dual.waitReport(
        dual.submit(dual.compile(spec, cfg, DesignPoint::LoCaLut)));

    EXPECT_LT(cold2x4.timing.total, cold1x4.timing.total);
    // The win is real scale-out, not accounting: the 2x4 run paid the
    // inter-node tier (collective hop + remote LUT broadcasts) ...
    EXPECT_GT(cold2x4.interNodeSeconds, 0.0);
    const ResidencyStats stats = dual.residencyStats();
    EXPECT_GT(stats.broadcastInterRawBytes, 0.0);
    // ... with the codec shrinking the broadcast bytes that crossed
    // (the >= 2x CI gate on OPT-class sets lives in bench/shard_scaling).
    EXPECT_LT(stats.broadcastInterBytes, stats.broadcastInterRawBytes);
}

/** Bit-exactness of the two-node cut end to end: sharded GEMM requests
 * on a 2x2 session reproduce the unsharded values exactly. */
TEST(ShardedSession, TwoNodeGemmRequestsAreBitExactWithUnsharded)
{
    const QuantConfig cfg = QuantConfig::preset("W2A2");
    SessionOptions options;
    options.numRanks = 2;
    options.numNodes = 2;
    InferenceSession session(makeBackend("upmem"), options);
    EXPECT_EQ(session.totalRanks(), 4u);

    for (unsigned i = 0; i < 4; ++i) {
        const GemmProblem problem =
            makeRandomProblem(64, 64, 8, cfg, /*seed=*/500 + i);
        const GemmResult result = session.wait(session.submit(
            problem, DesignPoint::LoCaLut, /*computeValues=*/true));
        EXPECT_EQ(result.outInt, referenceGemmInt(problem.w, problem.a))
            << i;
        // The inter-node hop is charged and split out of the intra
        // collective share.
        EXPECT_GT(result.timing.seconds.get("link.internode"), 0.0) << i;
    }
}

TEST(ShardedSession, RejectsWorkloadCompiledForOtherRankCount)
{
    const BackendPtr backend = makeBackend("upmem");
    const WorkloadSpec spec =
        WorkloadSpec::prefill(TransformerConfig::bertBase(), 2, 16);
    const QuantConfig cfg = QuantConfig::preset("W1A3");

    InferenceSession plain(backend);
    SessionOptions options;
    options.numRanks = 4;
    InferenceSession sharded(backend, options);

    // A sharded workload on a session with a different rank count must
    // be rejected (its shard cut no longer matches any rank layout).
    const auto shardedWork =
        sharded.compile(spec, cfg, DesignPoint::LoCaLut);
    EXPECT_THROW(plain.run(shardedWork), std::runtime_error);

    // An *unsharded* workload, by contrast, occupies a single rank and
    // is valid on any session of the backend — the data-parallel
    // serving contract the RequestScheduler relies on: it must execute
    // whole and report exactly the single-rank cost.
    const auto unshardedWork =
        plain.compile(spec, cfg, DesignPoint::LoCaLut);
    const InferenceReport onPlain = plain.run(unshardedWork);
    const InferenceReport onSharded = sharded.run(unshardedWork);
    EXPECT_DOUBLE_EQ(onSharded.timing.total, onPlain.timing.total);
    EXPECT_DOUBLE_EQ(onSharded.collectiveSeconds, 0.0);
}

TEST(ShardedSession, ErrorsInShardedRequestsSurfaceAtWait)
{
    SessionOptions options;
    options.numRanks = 4;
    InferenceSession session(makeBackend("bankpim"), options);
    const GemmProblem problem = makeShapeOnlyProblem(
        64, 64, 8, QuantConfig::preset("W1A3"));
    // bankpim cannot plan LTC; the plan stage fails and must surface at
    // wait() without wedging the rank queues.
    const auto bad = session.submit(problem, DesignPoint::Ltc);
    EXPECT_THROW(session.wait(bad), std::runtime_error);

    const auto ok = session.submit(problem, DesignPoint::LoCaLut);
    EXPECT_GT(session.wait(ok).timing.total, 0.0);
}

} // namespace
} // namespace localut
