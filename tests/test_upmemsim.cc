/**
 * @file
 * Cycle-level DPU micro-simulator tests (src/upmemsim): pipeline-model
 * unit tests against closed forms, trace-vs-chargeCosts event parity,
 * cross-thread determinism, the differential simulated-vs-analytical
 * grid with frozen per-phase tolerance bands, and the "upmem-sim"
 * backend contract (bit-exact numerics with "upmem", simulated DPU
 * timing, analytical host/link timing).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "backend/backend.h"
#include "lut/capacity.h"
#include "nn/inference.h"
#include "quant/quantizer.h"
#include "upmem/cost_model.h"
#include "upmemsim/dpu_sim.h"
#include "upmemsim/sim_backend.h"
#include "upmemsim/trace.h"

namespace localut {
namespace {

using upmemsim::KernelTrace;
using upmemsim::SimParams;
using upmemsim::SimResult;
using upmemsim::TraceOp;

SimParams
defaultSim()
{
    SimParams p;
    p.dpu = PimSystemConfig::upmemServer().dpu;
    return p;
}

/** Uniform compute-only trace: @p tasklets streams of @p instr each. */
KernelTrace
computeTrace(unsigned tasklets, std::uint32_t instr)
{
    KernelTrace trace;
    trace.tasklets.resize(tasklets);
    for (unsigned t = 0; t < tasklets; ++t) {
        TraceOp op;
        op.phase = Phase::Accumulate;
        op.instructions = instr;
        trace.tasklets[t].push_back(op);
    }
    return trace;
}

/** Single-tasklet trace with one DMA transfer of @p bytes. */
KernelTrace
dmaTrace(double bytes)
{
    KernelTrace trace;
    trace.tasklets.resize(1);
    TraceOp op;
    op.phase = Phase::OperandDma;
    op.isDma = true;
    op.bytes = bytes;
    trace.tasklets[0].push_back(op);
    return trace;
}

// The issue pipeline must PRODUCE DpuParams::issueRate() rather than
// assume it: at T resident tasklets the round-robin over an 11-deep
// pipeline sustains min(1, T/11) instructions per cycle, and per-phase
// attribution (1/issueRate per instruction) reproduces the analytical
// instruction charge exactly.
TEST(DpuSim, IssueCurveMatchesAnalyticalRate)
{
    SimParams params = defaultSim();
    for (unsigned T = 1; T <= 16; ++T) {
        params.dpu.tasklets = T;
        const std::uint32_t instr = 2000;
        const SimResult r = upmemsim::simulate(computeTrace(T, instr),
                                               params);
        ASSERT_GT(r.makespanCycles, 0) << "T=" << T;
        const double rate =
            static_cast<double>(r.issuedInstructions) / r.makespanCycles;
        const double want = params.dpu.issueRate();
        EXPECT_NEAR(rate / want, 1.0, 0.02) << "T=" << T;
        // Attribution: total issued work priced at 1/issueRate each.
        EXPECT_NEAR(r.attributedCycles(),
                    static_cast<double>(T) * instr / want, 1e-6)
            << "T=" << T;
        EXPECT_EQ(r.issuedInstructions,
                  static_cast<std::uint64_t>(T) * instr);
    }
}

TEST(DpuSim, SingleDmaOccupancyMatchesClosedForm)
{
    const SimParams params = defaultSim();
    const double setup = params.dpu.dmaSetupCycles;
    const double rate = params.dpu.dmaBytesPerCycle;
    for (const double bytes : {7.0, 64.0, 520.0, 2048.0}) {
        const SimResult r = upmemsim::simulate(dmaTrace(bytes), params);
        const double aligned =
            std::ceil(bytes / params.dmaAlignBytes) * params.dmaAlignBytes;
        // One sub-cap transfer: occupancy is exactly setup + bytes/rate,
        // the analytical CostEvaluator::dmaSeconds() form (in cycles),
        // up to the 8-byte MRAM alignment the closed form ignores.
        EXPECT_NEAR(r.attributedCycles(), setup + aligned / rate, 1e-9)
            << "bytes=" << bytes;
        EXPECT_EQ(r.dmaTransfers, 1u) << "bytes=" << bytes;
        EXPECT_DOUBLE_EQ(r.dmaBytes, aligned) << "bytes=" << bytes;
        // Wall clock: the serial engine adds at most a couple of
        // completion/unblock cycles on top of the occupancy.
        EXPECT_GE(r.makespanCycles, r.attributedCycles());
        EXPECT_LE(r.makespanCycles, r.attributedCycles() + 3.0);
    }
}

TEST(DpuSim, OversizeDmaSplitsAndEachChunkPaysSetup)
{
    const SimParams params = defaultSim();
    const double setup = params.dpu.dmaSetupCycles;
    const double rate = params.dpu.dmaBytesPerCycle;

    const SimResult two = upmemsim::simulate(dmaTrace(4096), params);
    EXPECT_EQ(two.dmaTransfers, 2u);
    EXPECT_NEAR(two.attributedCycles(), 2 * setup + 4096 / rate, 1e-9);

    const SimResult three = upmemsim::simulate(dmaTrace(4104), params);
    EXPECT_EQ(three.dmaTransfers, 3u);
    EXPECT_NEAR(three.attributedCycles(), 3 * setup + 4104 / rate, 1e-9);

    // The 3-stage engine overlaps chunk N+1's setup with chunk N's
    // streaming, so the wall clock beats the serial occupancy sum.
    EXPECT_LT(two.makespanCycles, two.attributedCycles());
    EXPECT_LT(three.makespanCycles, three.attributedCycles());
}

TEST(DpuSim, ZeroByteTransferStillTouchesMram)
{
    const SimParams params = defaultSim();
    const SimResult r = upmemsim::simulate(dmaTrace(0), params);
    EXPECT_EQ(r.dmaTransfers, 1u);
    EXPECT_DOUBLE_EQ(r.dmaBytes, params.dmaAlignBytes);
}

// The trace generator must reproduce GemmEngine::chargeCosts() event
// totals per DPU phase (instructions within the one-op error-carry
// residue; DMA bytes and transfer counts exactly) for every design
// point the UPMEM backend plans.
TEST(KernelTraces, TotalsMatchChargeCostsForEveryDesign)
{
    const UpmemSimBackend backend;
    const QuantConfig cfg = QuantConfig::preset("W2A2");
    const GemmProblem problem = makeShapeOnlyProblem(768, 768, 128, cfg);
    for (const DesignPoint d :
         {DesignPoint::NaivePim, DesignPoint::Ltc, DesignPoint::OpLutDram,
          DesignPoint::OpLut, DesignPoint::OpLc, DesignPoint::OpLcRc,
          DesignPoint::LoCaLut}) {
        const GemmPlan plan = backend.plan(problem, d);
        const KernelCost charged = backend.chargeCosts(plan);
        const KernelCost traced =
            upmemsim::buildTrace(plan, backend.system().dpu).totals();
        for (unsigned i = 0; i < static_cast<unsigned>(Phase::kNumPhases);
             ++i) {
            const Phase p = static_cast<Phase>(i);
            if (isHostPhase(p) || isLinkPhase(p)) {
                continue;
            }
            const PhaseCost& a = charged.phase(p);
            const PhaseCost& b = traced.phase(p);
            EXPECT_NEAR(a.instructions, b.instructions, 1.0)
                << phaseName(p) << " design=" << static_cast<int>(d);
            EXPECT_NEAR(a.dmaBytes, b.dmaBytes, 1e-6)
                << phaseName(p) << " design=" << static_cast<int>(d);
            EXPECT_NEAR(a.dmaTransfers, b.dmaTransfers, 1e-6)
                << phaseName(p) << " design=" << static_cast<int>(d);
        }
    }
}

// simulate() is a pure function: concurrent replays of the same trace
// from many threads produce bit-identical SimResults (run under TSan
// in the sanitizer CI job).
TEST(DpuSim, TraceReplayDeterministicAcrossThreads)
{
    const UpmemSimBackend backend;
    const GemmProblem problem = makeShapeOnlyProblem(
        256, 768, 64, QuantConfig::preset("W1A4"));
    const GemmPlan plan = backend.plan(problem, DesignPoint::LoCaLut);
    const KernelTrace trace =
        upmemsim::buildTrace(plan, backend.system().dpu);
    const SimParams params = defaultSim();
    const SimResult serial = upmemsim::simulate(trace, params);

    constexpr unsigned kThreads = 8;
    std::vector<SimResult> results(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned i = 0; i < kThreads; ++i) {
        threads.emplace_back([&, i] {
            results[i] = upmemsim::simulate(trace, params);
        });
    }
    for (std::thread& t : threads) {
        t.join();
    }
    for (const SimResult& r : results) {
        EXPECT_TRUE(r == serial);
    }

    // The memoized backend path is equally safe to hit concurrently.
    std::vector<SimResult> cached(kThreads);
    threads.clear();
    for (unsigned i = 0; i < kThreads; ++i) {
        threads.emplace_back(
            [&, i] { cached[i] = backend.simulated(plan); });
    }
    for (std::thread& t : threads) {
        t.join();
    }
    for (const SimResult& r : cached) {
        EXPECT_TRUE(r == serial);
    }
}

// ------------------------------------------------------------------
// Differential grid: simulated vs analytical per-phase seconds.
//
// Frozen tolerance bands (this file is their single source of truth;
// bench_sim_calibrate gates CI on the same values).  The trace
// reproduces the analytical event totals exactly, so the only honest
// divergence sources are the 8-byte MRAM transfer alignment and the
// 2048-byte mram_read() split — both DMA-side.  The calibration run
// of 2026-08 over the fig09/fig18 grid measured a worst tile-DMA
// delta of 2.04% (OutputDma: 196-byte result rows aligning to 200),
// a worst LutLoadDma delta of 6.87% (streamed slice pairs splitting
// at the 2048-byte cap, each chunk paying its own 32-cycle setup:
// W4A4 p=3 and W2A2 p=6), and compute-phase deltas at the
// error-carry floor (< 0.1%); the bands freeze ~1.5-2x headroom over
// those maxima and stay far inside the <= 15% acceptance target.
// ------------------------------------------------------------------
constexpr double kComputeBand = 0.005;   ///< instruction-only phases
constexpr double kDmaBand = 0.05;        ///< tile-DMA phases
constexpr double kLutStreamBand = 0.10;  ///< streamed LUT slice pairs

double
frozenBand(Phase p)
{
    switch (p) {
      case Phase::LutLoadDma:
        return kLutStreamBand;
      case Phase::OperandDma:
      case Phase::OutputDma:
      case Phase::CanonicalAccess: // per-lookup MRAM access in OpLutDram
        return kDmaBand;
      default:
        return kComputeBand;
    }
}

void
expectWithinBands(const UpmemSimBackend& backend, const GemmPlan& plan,
                  const std::string& label)
{
    const KernelCost cost = backend.chargeCosts(plan);
    const CostEvaluator eval(backend.system());
    const TimingReport analytical = eval.timing(cost, plan.dpusUsed());
    const SimResult sim = backend.simulated(plan);
    for (unsigned i = 0; i < static_cast<unsigned>(Phase::kNumPhases);
         ++i) {
        const Phase p = static_cast<Phase>(i);
        if (isHostPhase(p) || isLinkPhase(p)) {
            continue;
        }
        const double a = analytical.seconds.get(phaseName(p));
        const double s =
            backend.system().dpu.cyclesToSeconds(sim.cycles(p));
        if (a < 1e-12 && s < 1e-12) {
            continue; // phase not exercised by this design point
        }
        ASSERT_GT(a, 0.0) << label << " " << phaseName(p)
                          << ": simulated a phase the model never charged";
        const double delta = std::abs(s - a) / a;
        EXPECT_LE(delta, frozenBand(p))
            << label << " " << phaseName(p) << " analytical=" << a
            << " simulated=" << s;
    }
}

TEST(SimCalibration, Fig09GridWithinFrozenBands)
{
    const UpmemSimBackend backend;
    const std::size_t shapes[][3] = {{768, 768, 128}, {3072, 768, 128}};
    for (const auto& s : shapes) {
        for (const QuantConfig& cfg : QuantConfig::paperConfigs()) {
            const GemmProblem problem =
                makeShapeOnlyProblem(s[0], s[1], s[2], cfg);
            for (const DesignPoint d :
                 {DesignPoint::NaivePim, DesignPoint::Ltc,
                  DesignPoint::OpLut, DesignPoint::OpLc,
                  DesignPoint::OpLcRc, DesignPoint::LoCaLut}) {
                const std::string label =
                    cfg.name() + "/m" + std::to_string(s[0]) + "/d" +
                    std::to_string(static_cast<int>(d));
                expectWithinBands(backend, backend.plan(problem, d),
                                  label);
            }
        }
    }
}

// Fig. 18's packing-degree sweep, the regime where slice streaming
// turns LutLoadDma into the dominant phase: force p = 1..8 (skipping
// degrees whose canonical+reordering pair cannot fit the MRAM LUT
// budget) and hold every phase inside its frozen band.
TEST(SimCalibration, ForcedPackingSweepWithinFrozenBands)
{
    const UpmemSimBackend backend;
    const std::size_t budget = backend.system().dpu.mramLutBudget();
    for (const char* preset : {"W1A4", "W2A2", "W4A4"}) {
        const QuantConfig cfg = QuantConfig::preset(preset);
        const unsigned pMax =
            maxPackingDegree(budget, cfg, true, true, 2, 8);
        ASSERT_GE(pMax, 1u) << preset;
        const GemmProblem problem =
            makeShapeOnlyProblem(768, 768, 768, cfg);
        for (unsigned p = 1; p <= pMax; ++p) {
            PlanOverrides overrides;
            overrides.p = p;
            const GemmPlan plan =
                backend.plan(problem, DesignPoint::LoCaLut, overrides);
            ASSERT_EQ(plan.p, p);
            expectWithinBands(backend, plan,
                              std::string(preset) + "/p" +
                                  std::to_string(p));
        }
    }
}

// ------------------------------------------------------------------
// The "upmem-sim" backend contract.
// ------------------------------------------------------------------

TEST(UpmemSimBackend, RegisteredWithDistinctFingerprint)
{
    const auto names = backendNames();
    EXPECT_NE(std::find(names.begin(), names.end(), "upmem-sim"),
              names.end());
    const BackendPtr sim = makeBackend("upmem-sim");
    const BackendPtr upmem = makeBackend("upmem");
    EXPECT_EQ(sim->name(), "upmem-sim");
    // Same device config, different timing semantics: plan-cache
    // entries must never alias across the two backends.
    EXPECT_NE(sim->configFingerprint(), upmem->configFingerprint());
}

TEST(UpmemSimBackend, NumericsBitExactWithUpmem)
{
    const BackendPtr sim = makeBackend("upmem-sim");
    const BackendPtr upmem = makeBackend("upmem");
    const GemmProblem problem =
        makeRandomProblem(24, 96, 16, QuantConfig::preset("W2A2"), 7);
    for (const DesignPoint d :
         {DesignPoint::LoCaLut, DesignPoint::OpLut, DesignPoint::Ltc}) {
        const GemmResult a = sim->execute(problem, d, true);
        const GemmResult b = upmem->execute(problem, d, true);
        ASSERT_FALSE(a.outInt.empty());
        EXPECT_EQ(a.outInt, b.outInt)
            << "design=" << static_cast<int>(d);
    }
}

TEST(UpmemSimBackend, TimingUsesSimulatedDpuAndAnalyticalHostLink)
{
    const UpmemSimBackend backend;
    const UpmemBackend upmem;
    const GemmProblem problem = makeShapeOnlyProblem(
        768, 768, 128, QuantConfig::preset("W1A4"));
    const GemmPlan plan = backend.plan(problem, DesignPoint::LoCaLut);
    const GemmResult simRes = backend.execute(problem, plan, false);
    const GemmResult anaRes = upmem.execute(problem, plan, false);

    const SimResult sim = backend.simulated(plan);
    double dpuSum = 0;
    for (unsigned i = 0; i < static_cast<unsigned>(Phase::kNumPhases);
         ++i) {
        const Phase p = static_cast<Phase>(i);
        const double simSec = simRes.timing.seconds.get(phaseName(p));
        if (isHostPhase(p) || isLinkPhase(p)) {
            // Host/link phases run off-DPU: priced analytically.
            EXPECT_NEAR(simSec, anaRes.timing.seconds.get(phaseName(p)),
                        1e-15)
                << phaseName(p);
        } else {
            EXPECT_NEAR(simSec,
                        backend.system().dpu.cyclesToSeconds(
                            sim.cycles(p)),
                        1e-15)
                << phaseName(p);
            dpuSum += simSec;
        }
    }
    EXPECT_NEAR(simRes.timing.dpuSeconds, dpuSum, 1e-12);
    EXPECT_NEAR(simRes.timing.total,
                simRes.timing.hostSeconds + simRes.timing.linkSeconds +
                    simRes.timing.dpuSeconds,
                1e-12);
    EXPECT_NEAR(simRes.timing.hostSeconds, anaRes.timing.hostSeconds,
                1e-15);
    EXPECT_NEAR(simRes.timing.linkSeconds, anaRes.timing.linkSeconds,
                1e-15);
}

} // namespace
} // namespace localut
