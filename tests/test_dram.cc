/**
 * @file
 * DRAM bank state-machine tests: command legality, row-hit vs row-miss
 * latencies, counters, and the bank-level streaming measurement.
 */

#include <gtest/gtest.h>

#include "banklevel/bank_pim.h"
#include "dram/timing.h"

namespace localut {
namespace {

TEST(DramBank, RowHitIsCheaperThanRowMiss)
{
    const DramTimingParams t = DramTimingParams::upmemDdr4();
    DramBank bank(t);
    bank.issue(DramCommand::Act, 0, 0);
    const std::uint64_t rd0 = bank.issue(DramCommand::Rd, 0, 0);
    // Streaming reads to the open row pipeline at tCCD.
    const std::uint64_t rd1 = bank.issue(DramCommand::Rd, 0, rd0);
    EXPECT_EQ(rd1 - rd0, t.tCCD);
    // A row miss pays PRE + ACT + tRCD.
    const std::uint64_t missReady = bank.readBurst(1, rd1);
    EXPECT_GT(missReady - rd1,
              static_cast<std::uint64_t>(t.tRP + t.tRCD));
}

TEST(DramBank, CountersTrackCommands)
{
    DramBank bank(DramTimingParams::hbm2());
    std::uint64_t t = 0;
    for (int i = 0; i < 10; ++i) {
        t = bank.readBurst(static_cast<std::uint32_t>(i % 2), t);
    }
    EXPECT_EQ(bank.reads(), 10u);
    EXPECT_EQ(bank.activations(), 10u); // alternating rows: all misses
    t = bank.writeBurst(1, t);
    EXPECT_EQ(bank.writes(), 1u);
}

TEST(DramBank, ActRespectsTRasAndTRp)
{
    const DramTimingParams t = DramTimingParams::upmemDdr4();
    DramBank bank(t);
    const std::uint64_t act0 = bank.issue(DramCommand::Act, 0, 0);
    const std::uint64_t pre = bank.issue(DramCommand::Pre, 0, act0);
    EXPECT_GE(pre - act0, static_cast<std::uint64_t>(t.tRAS));
    const std::uint64_t act1 = bank.issue(DramCommand::Act, 1, pre);
    EXPECT_GE(act1 - pre, static_cast<std::uint64_t>(t.tRP));
}

TEST(DramBank, IllegalCommandsPanic)
{
    DramBank bank(DramTimingParams::hbm2());
    EXPECT_ANY_THROW(bank.issue(DramCommand::Rd, 0, 0)); // no open row
    EXPECT_ANY_THROW(bank.issue(DramCommand::Pre, 0, 0));
    bank.issue(DramCommand::Act, 3, 0);
    EXPECT_ANY_THROW(bank.issue(DramCommand::Rd, 5, 0)); // wrong row
    EXPECT_ANY_THROW(bank.issue(DramCommand::Act, 4, 0)); // already open
}

TEST(DramBank, EnergyIsPositiveAndMonotonic)
{
    const DramEnergyParams e = DramEnergyParams::hbm2();
    DramBank bank(DramTimingParams::hbm2());
    std::uint64_t t = 0;
    t = bank.readBurst(0, t);
    const double e1 = bank.energyJoules(e, t);
    t = bank.readBurst(1, t);
    const double e2 = bank.energyJoules(e, t);
    EXPECT_GT(e1, 0.0);
    EXPECT_GT(e2, e1);
}

TEST(StreamingReadCycles, ScalesLinearlyWithRows)
{
    const BankLevelPim pim((BankPimConfig()));
    const unsigned readsPerRow = BankPimConfig().dram.rowBytes /
                                 BankPimConfig().dram.burstBytes;
    const double oneRow = pim.streamingReadCycles(readsPerRow);
    const double fourRows = pim.streamingReadCycles(4.0 * readsPerRow);
    EXPECT_GT(oneRow, 0.0);
    // Row costs amortize: 4 rows cost ~<= 4x one row + slack, >= 3x.
    EXPECT_LT(fourRows, 4.5 * oneRow);
    EXPECT_GT(fourRows, 3.0 * oneRow);
}

} // namespace
} // namespace localut
