/**
 * @file
 * Tests of the paper's Eq. 2-6 performance model and the planner:
 * p_local/p_DRAM budgets (Section V), the streaming break-even in M
 * (Eq. 6), and the Fig. 13 k-vs-p interaction.
 */

#include <gtest/gtest.h>

#include "lut/perf_model.h"
#include "lut/planner.h"

namespace localut {
namespace {

TEST(PerfModel, PaperPackingBudgets)
{
    const DpuParams dpu;
    const PerfModel model(dpu, QuantConfig::preset("W1A3"));
    // Section V: p_DRAM ~ 8 with canonicalization on a 64 MB bank.
    EXPECT_EQ(model.pDramMax(), 8u);
    EXPECT_EQ(model.pLocalMax(), 4u);
}

TEST(PerfModel, BufferBeatsStreamingAtEqualP)
{
    const DpuParams dpu;
    const PerfModel model(dpu, QuantConfig::preset("W2A2"));
    // At the same p, the buffer-resident LUT never loses (Eq. 4 drops the
    // slice-load term of Eq. 2).
    for (unsigned p = 1; p <= model.pLocalMax(); ++p) {
        EXPECT_LE(model.bufferSeconds(48, 768, 1, p),
                  model.streamingSeconds(48, 768, 1, p))
            << "p=" << p;
    }
}

TEST(PerfModel, StreamingWinsForLargeM)
{
    // Eq. 6: slice streaming becomes beneficial as M grows.
    const DpuParams dpu;
    const PerfModel model(dpu, QuantConfig::preset("W2A2"));
    const unsigned pLocal = model.pLocalMax();
    const unsigned pStar = model.pDramMax();
    ASSERT_GT(pStar, pLocal);
    const double breakEven = model.breakEvenM(pStar, pLocal);
    EXPECT_GT(breakEven, 0.0);

    const double small = breakEven / 4.0;
    const double large = breakEven * 4.0;
    EXPECT_LT(model.bufferSeconds(small, 768, 8, pLocal),
              model.streamingSeconds(small, 768, 8, pStar));
    EXPECT_GT(model.bufferSeconds(large, 768, 8, pLocal),
              model.streamingSeconds(large, 768, 8, pStar));
}

TEST(PerfModel, ChooseIsArgmin)
{
    const DpuParams dpu;
    for (const char* preset : {"W1A3", "W1A4", "W2A2", "W4A4"}) {
        const PerfModel model(dpu, QuantConfig::preset(preset));
        const PerfChoice choice = model.choose(48, 768, 8);
        // The chosen configuration must not lose to any alternative.
        for (unsigned p = 1; p <= model.pDramMax(); ++p) {
            EXPECT_LE(choice.seconds,
                      model.streamingSeconds(48, 768, 8, p) + 1e-15)
                << preset << " p=" << p;
            if (p <= model.pLocalMax()) {
                EXPECT_LE(choice.seconds,
                          model.bufferSeconds(48, 768, 8, p) + 1e-15)
                    << preset << " p=" << p;
            }
        }
    }
}

TEST(Planner, ForcedKReducesPWhenSlicesOutgrowWram)
{
    // Paper Fig. 13: for W2A2 and W4A4, moving from k = 2 to k = 4 forces
    // a lower packing degree because k slice pairs no longer fit WRAM.
    const DpuParams dpu;
    const LutPlanner planner(dpu, QuantConfig::preset("W2A2"));
    const LutPlan k2 = planner.chooseWithForcedK(3072, 768, 8, 2);
    const LutPlan k4 = planner.chooseWithForcedK(3072, 768, 8, 4);
    EXPECT_GT(k2.p, k4.p);

    // W1A3 slices are small enough that k = 8 keeps the maximum p.
    const LutPlanner planner13(dpu, QuantConfig::preset("W1A3"));
    const LutPlan k8 = planner13.chooseWithForcedK(3072, 768, 8, 8);
    EXPECT_EQ(k8.p, planner13.perfModel().pDramMax());
}

TEST(Planner, AutoPlanFeasible)
{
    const DpuParams dpu;
    for (const char* preset : {"W1A3", "W1A4", "W2A2", "W4A4"}) {
        const LutPlanner planner(dpu, QuantConfig::preset(preset));
        const LutPlan plan = planner.choose(48, 768, 8);
        EXPECT_GE(plan.p, 1u) << preset;
        EXPECT_GE(plan.kSlices, 1u) << preset;
        if (plan.streaming) {
            EXPECT_LE(plan.kSlices * planner.slicePairBytes(plan.p),
                      dpu.wramLutBudget())
                << preset;
        }
    }
}

TEST(Planner, ConstantsMatchPaperScale)
{
    // Section VI-I: the paper profiles L_local = 3.27e-8 s (12
    // instructions at 350 MHz and full issue) and L_D = 1.36e-9 s per
    // canonical+reordering entry pair.  Our profiled constants must land
    // on the same order.
    const DpuParams dpu;
    const PerfModelConstants c = PerfModelConstants::profile(
        dpu, LutShape(QuantConfig::preset("W1A3"), 8));
    EXPECT_NEAR(c.lLocal, 3.27e-8, 1.5e-8);
    EXPECT_NEAR(c.lD, 1.36e-9, 1.0e-9);
}

} // namespace
} // namespace localut
