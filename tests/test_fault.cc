// Fault injection, health tracking, and failover under deterministic
// faults: the injector's hash-driven decisions, the capped backoff
// schedule, residency invalidation on rank death, and the end-to-end
// session behaviours (retry, quarantine, re-shard, shed) that ISSUE 9's
// acceptance criteria name.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "backend/backend.h"
#include "dram/timing.h"
#include "serving/fault.h"
#include "serving/residency.h"
#include "serving/scheduler.h"
#include "serving/token_engine.h"

namespace localut {
namespace {

Topology
topo2x4()
{
    return Topology{2, 4};
}

/** A fabricated LoCaLUT plan with a forced packing degree, so table
 * sizes are exact and independent of the planner. */
GemmPlan
faultTestPlan()
{
    GemmPlan plan(DesignPoint::LoCaLut, QuantConfig::preset("W4A4"));
    plan.p = 2;
    plan.m = 256;
    plan.k = 256;
    plan.n = 32;
    return plan;
}

TEST(RetryBackoff, CapsExponentialSchedule)
{
    const double base = 100e-6;
    const double cap = 10e-3;
    EXPECT_DOUBLE_EQ(retryBackoffSeconds(base, cap, 0), 100e-6);
    EXPECT_DOUBLE_EQ(retryBackoffSeconds(base, cap, 1), 200e-6);
    EXPECT_DOUBLE_EQ(retryBackoffSeconds(base, cap, 2), 400e-6);
    EXPECT_DOUBLE_EQ(retryBackoffSeconds(base, cap, 6), 6400e-6);
    EXPECT_DOUBLE_EQ(retryBackoffSeconds(base, cap, 7), cap);
    // Large attempt counts saturate at the cap instead of overflowing
    // the doubling loop.
    EXPECT_DOUBLE_EQ(retryBackoffSeconds(base, cap, 200), cap);
    EXPECT_DOUBLE_EQ(retryBackoffSeconds(0.0, cap, 5), 0.0);
}

TEST(FaultInjector, DecisionsAreDeterministicAndSeedSensitive)
{
    FaultPlan plan;
    plan.seed = 42;
    plan.transientExecute(0.5);
    FaultInjector a(plan, topo2x4());
    FaultInjector b(plan, topo2x4());
    plan.seed = 43;
    FaultInjector c(plan, topo2x4());

    unsigned diffs = 0;
    unsigned fires = 0;
    for (std::uint64_t req = 0; req < 64; ++req) {
        for (unsigned attempt = 0; attempt < 4; ++attempt) {
            for (unsigned rank = 0; rank < 8; ++rank) {
                const bool fa = a.executeFails(req, attempt, rank);
                const bool fb = b.executeFails(req, attempt, rank);
                EXPECT_EQ(fa, fb);
                fires += fa ? 1 : 0;
                diffs += (fa != c.executeFails(req, attempt, rank)) ? 1 : 0;
            }
        }
    }
    // Rate 0.5 over 2048 trials: far from all-heads or all-tails, and a
    // different seed decides differently often.
    EXPECT_GT(fires, 700u);
    EXPECT_LT(fires, 1350u);
    EXPECT_GT(diffs, 400u);
}

TEST(FaultInjector, RateEdgesAndRankScoping)
{
    FaultPlan never;
    never.transientExecute(0.0);
    FaultInjector quiet(never, topo2x4());
    FaultPlan always;
    always.transientExecute(1.0, /*rank=*/3);
    FaultInjector scoped(always, topo2x4());
    for (std::uint64_t req = 0; req < 32; ++req) {
        EXPECT_FALSE(quiet.executeFails(req, 0, req % 8));
        EXPECT_TRUE(scoped.executeFails(req, 0, 3));
        EXPECT_FALSE(scoped.executeFails(req, 0, 2));
    }
    EXPECT_EQ(quiet.stats().transientFaults, 0u);
    EXPECT_EQ(scoped.stats().transientFaults, 32u);
}

TEST(FaultInjector, ScheduledDeathFiresOnceAtVirtualTime)
{
    FaultPlan plan;
    plan.rankDeath(5, /*atSeconds=*/1.0);
    FaultInjector inj(plan, topo2x4());
    std::atomic<unsigned> losses{0};
    inj.onRankLoss([&](unsigned rank) {
        EXPECT_EQ(rank, 5u);
        ++losses;
    });

    EXPECT_TRUE(inj.schedulable(5));
    inj.advanceTo(0.5);
    EXPECT_TRUE(inj.schedulable(5));
    EXPECT_EQ(inj.aliveCount(), 8u);
    inj.advanceTo(1.5);
    EXPECT_EQ(inj.health(5), RankHealth::Dead);
    EXPECT_FALSE(inj.schedulable(5));
    EXPECT_EQ(losses.load(), 1u);
    // Re-advancing (and a redundant explicit kill) must not re-fire.
    inj.advanceTo(2.0);
    inj.killRank(5);
    EXPECT_EQ(losses.load(), 1u);
    EXPECT_EQ(inj.aliveCount(), 7u);
    EXPECT_DOUBLE_EQ(inj.capacityRatio(), 7.0 / 8.0);
    EXPECT_EQ(inj.stats().ranksDead, 1u);
    // The clock is monotone: a stale smaller time cannot rewind it.
    inj.advanceTo(0.25);
    EXPECT_DOUBLE_EQ(inj.clockSeconds(), 2.0);
}

TEST(FaultInjector, QuarantineAfterThresholdFailures)
{
    FaultInjector inj(FaultPlan{}, topo2x4());
    const std::uint64_t threshold = 4;
    for (std::uint64_t i = 0; i < threshold - 1; ++i) {
        inj.recordFailure(2, threshold);
        EXPECT_EQ(inj.health(2), RankHealth::Healthy);
    }
    inj.recordFailure(2, threshold);
    EXPECT_EQ(inj.health(2), RankHealth::Quarantined);
    EXPECT_FALSE(inj.schedulable(2));
    EXPECT_EQ(inj.stats().quarantines, 1u);
    EXPECT_EQ(inj.stats().ranksQuarantined, 1u);
    // Further failures do not double-count the quarantine.
    inj.recordFailure(2, threshold);
    EXPECT_EQ(inj.stats().quarantines, 1u);
    // firstSchedulable wraps past the quarantined rank.
    EXPECT_EQ(inj.firstSchedulable(2), 3u);
    const std::vector<unsigned> alive = inj.schedulableRanks();
    EXPECT_EQ(alive.size(), 7u);
    EXPECT_TRUE(std::find(alive.begin(), alive.end(), 2u) == alive.end());
}

TEST(FaultInjector, LinkDegradeScalesOneNode)
{
    FaultPlan plan;
    plan.linkDegrade(/*node=*/1, /*factor=*/3.0, /*atSeconds=*/0.0);
    FaultInjector inj(plan, topo2x4());
    EXPECT_DOUBLE_EQ(inj.linkFactor(1), 1.0);
    inj.advanceTo(0.0);
    EXPECT_DOUBLE_EQ(inj.linkFactor(1), 3.0);
    EXPECT_DOUBLE_EQ(inj.linkFactor(0), 1.0);
    EXPECT_EQ(inj.stats().linkDegrades, 1u);
}

TEST(FaultInjector, ConcurrentDecisionsMatchSerialReplay)
{
    FaultPlan plan;
    plan.seed = 7;
    plan.transientExecute(0.3);
    FaultInjector inj(plan, topo2x4());

    constexpr unsigned kThreads = 4;
    constexpr std::uint64_t kPerThread = 256;
    std::vector<std::vector<bool>> seen(kThreads);
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            seen[t].reserve(kPerThread);
            for (std::uint64_t i = 0; i < kPerThread; ++i) {
                const std::uint64_t req = t * kPerThread + i;
                seen[t].push_back(inj.executeFails(req, 0, req % 8));
            }
        });
    }
    for (auto& th : threads) {
        th.join();
    }
    // Replay serially on a fresh injector: decisions are pure functions
    // of (seed, request, attempt, rank), independent of interleaving.
    FaultInjector replay(plan, topo2x4());
    std::uint64_t fires = 0;
    for (unsigned t = 0; t < kThreads; ++t) {
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
            const std::uint64_t req = t * kPerThread + i;
            const bool fail = replay.executeFails(req, 0, req % 8);
            EXPECT_EQ(seen[t][i], fail);
            fires += fail ? 1 : 0;
        }
    }
    EXPECT_EQ(inj.stats().transientFaults, fires);
}

TEST(ResidencyFault, InvalidateRankDropsSetsAndDisplacesKv)
{
    const BackendPtr backend = makeBackend("upmem");
    ResidencyManager manager(backend, Topology{2, 2},
                             /*budgetBytesPerUnit=*/64ull << 20,
                             ResidencyPolicy::CostAware,
                             /*interNodeCodec=*/false);

    const GemmPlan plan = faultTestPlan();
    const ResidencyCharge first =
        manager.acquire(plan, "layer0", 1.0, /*homeRank=*/1);
    EXPECT_FALSE(first.hit);
    EXPECT_GT(first.seconds, 0.0);
    EXPECT_TRUE(manager.acquire(plan, "layer0", 1.0, 1).hit);
    const KvCharge kv = manager.acquireKv(/*stream=*/9, /*rank=*/1,
                                          /*layers=*/2,
                                          /*bytesPerTokenPerLayer=*/256,
                                          /*contextTokens=*/128);
    EXPECT_FALSE(kv.shed);
    EXPECT_GT(kv.appendBytes, 0.0);

    const ResidencyManager::RankLoss loss = manager.invalidateRank(1);
    EXPECT_EQ(loss.lutSetsDropped, 1u);
    EXPECT_GT(loss.lutBytesDropped, 0u);
    ASSERT_EQ(loss.displacedStreams.size(), 1u);
    EXPECT_EQ(loss.displacedStreams[0], 9u);
    EXPECT_EQ(manager.lutBytes(1), 0u);
    EXPECT_EQ(manager.kvBytes(1), 0u);

    // Next touch is a rebroadcast, not a hit.
    const ResidencyCharge again = manager.acquire(plan, "layer0", 1.0, 1);
    EXPECT_FALSE(again.hit);
    const ResidencyStats stats = manager.stats();
    EXPECT_EQ(stats.rankInvalidations, 1u);
    EXPECT_EQ(stats.kvDisplaced, 1u);
    EXPECT_GE(stats.rebroadcasts, 1u);

    // The displaced stream may re-home to a survivor; the charge is the
    // full context refill, and the entry is no longer displaced.
    const KvCharge rehomed = manager.acquireKv(9, /*rank=*/2, 2, 256, 128);
    EXPECT_FALSE(rehomed.shed);
    EXPECT_DOUBLE_EQ(rehomed.appendBytes,
                     static_cast<double>(2ull * 256ull * 128ull));
    EXPECT_GT(manager.kvBytes(2), 0u);
}

TEST(ResidencyFault, LinkDegradeStretchesInterNodeBroadcast)
{
    const BackendPtr backend = makeBackend("upmem");
    const Topology topo{2, 2};
    FaultPlan plan;
    plan.linkDegrade(/*node=*/1, /*factor=*/4.0, /*atSeconds=*/0.0);
    FaultInjector inj(plan, topo);

    const GemmPlan gemm = faultTestPlan();
    ResidencyManager healthy(backend, topo, 64ull << 20,
                             ResidencyPolicy::CostAware, false);
    const double clean =
        healthy.acquire(gemm, "layer0", 1.0, /*homeRank=*/3).seconds;

    ResidencyManager degraded(backend, topo, 64ull << 20,
                              ResidencyPolicy::CostAware, false);
    degraded.setFaultInjector(&inj);
    inj.advanceTo(0.0);
    const double slow =
        degraded.acquire(gemm, "layer0", 1.0, /*homeRank=*/3).seconds;
    EXPECT_GT(slow, clean);

    // An injector with no active degrade charges exactly the clean cost.
    FaultInjector idle(FaultPlan{}, topo);
    ResidencyManager wired(backend, topo, 64ull << 20,
                           ResidencyPolicy::CostAware, false);
    wired.setFaultInjector(&idle);
    EXPECT_DOUBLE_EQ(wired.acquire(gemm, "layer0", 1.0, 3).seconds, clean);
}

// ----------------------------------------------- session-level faults

TEST(SessionFault, ExhaustedRetriesFailOverAndStayBitExact)
{
    const QuantConfig cfg = QuantConfig::preset("W4A4");
    const GemmProblem problem = makeRandomProblem(128, 128, 8, cfg, 11);
    const std::vector<std::int32_t> ref =
        referenceGemmInt(problem.w, problem.a);

    SessionOptions clean;
    clean.numRanks = 2;
    InferenceSession healthy(makeBackend("upmem"), clean);
    const auto healthyId = healthy.submit(problem, DesignPoint::LoCaLut,
                                          true, {}, SubmitOptions{0});
    const GemmResult healthyOut = healthy.wait(healthyId);
    EXPECT_EQ(healthyOut.outInt, ref);

    // Rank 0 fails every attempt; the request exhausts maxAttempts
    // there, fails over to rank 1, and still produces the exact values.
    FaultPlan plan;
    plan.transientExecute(1.0, /*rank=*/0);
    FaultInjector injector(plan, Topology{1, 2});
    SessionOptions options;
    options.numRanks = 2;
    options.faultInjector = &injector;
    InferenceSession session(makeBackend("upmem"), options);
    const auto id = session.submit(problem, DesignPoint::LoCaLut, true,
                                   {}, SubmitOptions{0});
    const GemmResult out = session.wait(id);
    EXPECT_EQ(out.outInt, ref);
    // Retry + backoff cost is charged as modeled time, never hidden.
    EXPECT_GT(out.timing.total, healthyOut.timing.total);

    const FaultStats stats = injector.stats();
    EXPECT_EQ(stats.transientFaults, options.faultPolicy.maxAttempts);
    EXPECT_EQ(stats.failovers, 1u);
    EXPECT_GT(stats.retries, 0u);
    EXPECT_GT(stats.backoffSeconds, 0.0);
}

TEST(SessionFault, DeadRankWithoutFailoverShedsAtWait)
{
    FaultPlan plan;
    FaultInjector injector(plan, Topology{1, 2});
    SessionOptions options;
    options.numRanks = 2;
    options.faultInjector = &injector;
    options.faultPolicy.failover = false;
    InferenceSession session(makeBackend("upmem"), options);
    injector.killRank(0);

    const GemmProblem problem =
        makeRandomProblem(64, 64, 8, QuantConfig::preset("W4A4"), 3);
    // Pinned to the dead rank with failover off: the typed shed error
    // surfaces promptly at wait() instead of blocking or tearing down
    // the worker pool.
    const auto id = session.submit(problem, DesignPoint::LoCaLut, false,
                                   {}, SubmitOptions{0});
    EXPECT_THROW(session.wait(id), FaultShedError);
    EXPECT_EQ(injector.stats().shedFault, 1u);

    // The session is still fully usable afterwards.
    const auto ok = session.submit(problem, DesignPoint::LoCaLut, false,
                                   {}, SubmitOptions{1});
    EXPECT_GT(session.wait(ok).timing.total, 0.0);
}

TEST(SessionFault, RankDeathReshardsGangRequestsBitExact)
{
    const QuantConfig cfg = QuantConfig::preset("W4A4");
    const GemmProblem problem = makeRandomProblem(256, 256, 16, cfg, 5);
    const std::vector<std::int32_t> ref =
        referenceGemmInt(problem.w, problem.a);

    FaultPlan plan;
    FaultInjector injector(plan, Topology{1, 4});
    SessionOptions options;
    options.numRanks = 4;
    options.faultInjector = &injector;
    InferenceSession session(makeBackend("upmem"), options);
    injector.killRank(2);

    // Unpinned on a 4-rank session: normally a 4-way gang; with rank 2
    // dead the plan re-shards across the 3 survivors, bit-exact.
    const auto id =
        session.submit(problem, DesignPoint::LoCaLut, /*computeValues=*/true);
    const GemmResult out = session.wait(id);
    EXPECT_EQ(out.outInt, ref);
    EXPECT_GE(injector.stats().failovers, 1u);
    EXPECT_EQ(injector.stats().shedFault, 0u);
}

TEST(SessionFault, DeterministicAcrossWorkerCounts)
{
    // Same seed, same plan, serialized submit->wait: fault decisions,
    // charged timings, and outputs are identical no matter how many
    // session workers execute underneath.
    const QuantConfig cfg = QuantConfig::preset("W4A4");
    std::vector<GemmProblem> pool;
    std::vector<std::vector<std::int32_t>> refs;
    for (unsigned p = 0; p < 2; ++p) {
        pool.push_back(makeRandomProblem(96, 96, 8, cfg, 21 + p));
        refs.push_back(referenceGemmInt(pool.back().w, pool.back().a));
    }

    struct Run {
        std::vector<std::vector<std::int32_t>> outputs;
        std::vector<double> timings;
        std::uint64_t transients = 0, retries = 0, failovers = 0;
        double backoff = 0;
    };
    std::vector<Run> runs;
    for (const unsigned workers : {1u, 4u}) {
        FaultPlan plan;
        plan.seed = 9;
        plan.transientExecute(0.5);
        FaultInjector injector(plan, Topology{1, 4});
        SessionOptions options;
        options.numRanks = 4;
        options.workers = workers;
        options.faultInjector = &injector;
        InferenceSession session(makeBackend("upmem"), options);
        Run run;
        for (unsigned i = 0; i < 8; ++i) {
            const auto id = session.submit(
                pool[i % pool.size()], DesignPoint::LoCaLut, true, {},
                SubmitOptions{static_cast<int>(i % 4)});
            const GemmResult out = session.wait(id);
            EXPECT_EQ(out.outInt, refs[i % pool.size()]);
            run.outputs.push_back(out.outInt);
            run.timings.push_back(out.timing.total);
        }
        const FaultStats stats = injector.stats();
        run.transients = stats.transientFaults;
        run.retries = stats.retries;
        run.failovers = stats.failovers;
        run.backoff = stats.backoffSeconds;
        runs.push_back(std::move(run));
    }
    EXPECT_EQ(runs[0].outputs, runs[1].outputs);
    EXPECT_EQ(runs[0].timings, runs[1].timings);
    EXPECT_EQ(runs[0].transients, runs[1].transients);
    EXPECT_EQ(runs[0].retries, runs[1].retries);
    EXPECT_EQ(runs[0].failovers, runs[1].failovers);
    EXPECT_DOUBLE_EQ(runs[0].backoff, runs[1].backoff);
    EXPECT_GT(runs[0].transients, 0u);
}

TEST(SessionFault, ConcurrentSubmittersCompleteOrShedCleanly)
{
    // TSan-facing stress: four threads hammer one faulted session; every
    // request either completes bit-exact or sheds with the typed error,
    // and nothing deadlocks or tears down the pool.
    const QuantConfig cfg = QuantConfig::preset("W4A4");
    std::vector<GemmProblem> pool;
    std::vector<std::vector<std::int32_t>> refs;
    for (unsigned p = 0; p < 2; ++p) {
        pool.push_back(makeRandomProblem(96, 96, 8, cfg, 31 + p));
        refs.push_back(referenceGemmInt(pool.back().w, pool.back().a));
    }

    FaultPlan plan;
    plan.seed = 13;
    plan.transientExecute(0.4);
    FaultInjector injector(plan, Topology{1, 4});
    SessionOptions options;
    options.numRanks = 4;
    options.faultInjector = &injector;
    InferenceSession session(makeBackend("upmem"), options);

    constexpr unsigned kThreads = 4;
    constexpr unsigned kPerThread = 8;
    std::atomic<unsigned> completed{0}, shed{0}, mismatches{0};
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (unsigned i = 0; i < kPerThread; ++i) {
                const unsigned which = (t + i) % pool.size();
                const auto id = session.submit(
                    pool[which], DesignPoint::LoCaLut, true, {},
                    SubmitOptions{static_cast<int>((t * kPerThread + i) %
                                                   4)});
                try {
                    if (session.wait(id).outInt == refs[which]) {
                        ++completed;
                    } else {
                        ++mismatches;
                    }
                } catch (const FaultShedError&) {
                    ++shed;
                }
            }
        });
    }
    for (auto& thread : threads) {
        thread.join();
    }
    EXPECT_EQ(completed.load() + shed.load(), kThreads * kPerThread);
    EXPECT_EQ(mismatches.load(), 0u);
    EXPECT_GT(injector.stats().transientFaults, 0u);
}

TEST(SchedulerFault, AcceptanceDeathAndTransientsServeBitExact)
{
    // The ISSUE 9 acceptance scenario: a 2x4 topology under a seeded
    // plan of one scheduled rank death plus any-rank transients; every
    // non-shed request returns bit-exact values, and the quarantine /
    // failover counters land in the Prometheus dump.
    const QuantConfig cfg = QuantConfig::preset("W4A4");
    std::vector<GemmProblem> pool;
    std::vector<std::vector<std::int32_t>> refs;
    for (unsigned p = 0; p < 2; ++p) {
        pool.push_back(makeRandomProblem(128, 128, 8, cfg, 41 + p));
        refs.push_back(referenceGemmInt(pool.back().w, pool.back().a));
    }

    FaultPlan plan;
    plan.seed = 0xacce97;
    plan.transientExecute(0.25);
    plan.rankDeath(5, /*atSeconds=*/5e-3);
    FaultInjector injector(plan, topo2x4());
    SessionOptions sessionOptions;
    sessionOptions.numNodes = 2;
    sessionOptions.numRanks = 4;
    sessionOptions.faultInjector = &injector;
    InferenceSession session(makeBackend("upmem"), sessionOptions);
    SchedulerOptions options;
    options.policy = SchedulerPolicy::Slo;
    RequestScheduler scheduler(session, options);

    constexpr unsigned kRequests = 24;
    unsigned completed = 0, shedFault = 0;
    for (unsigned i = 0; i < kRequests; ++i) {
        ServingRequest request = ServingRequest::gemm(
            pool[i % pool.size()], DesignPoint::LoCaLut);
        request.arrivalSeconds = i * 1e-3; // crosses the 5 ms death
        const AdmissionDecision decision =
            scheduler.submit(std::move(request));
        const ServingResult result = scheduler.wait(decision.id);
        if (!result.decision.admitted() ||
            result.decision.outcome == AdmissionOutcome::ShedFault) {
            ++shedFault;
            continue;
        }
        ++completed;
        EXPECT_EQ(result.gemm.outInt, refs[i % pool.size()]);
    }
    EXPECT_EQ(completed + shedFault, kRequests);
    EXPECT_GT(completed, 0u);

    const TelemetrySnapshot snap = scheduler.telemetry().snapshot();
    EXPECT_EQ(snap.faults.ranksDead, 1u);
    EXPECT_DOUBLE_EQ(snap.faults.capacityRatio, 7.0 / 8.0);
    EXPECT_GT(snap.faults.transientFaults, 0u);

    const std::string prom = scheduler.telemetry().prometheusText();
    EXPECT_NE(prom.find("localut_ranks_dead 1"), std::string::npos);
    EXPECT_NE(prom.find("localut_failovers_total"), std::string::npos);
    EXPECT_NE(prom.find("localut_quarantines_total"), std::string::npos);
    EXPECT_NE(
        prom.find("localut_faults_total{kind=\"transient_execute\"}"),
        std::string::npos);
    EXPECT_NE(prom.find("localut_capacity_ratio 0.875"),
              std::string::npos);
}

// ------------------------------------------------ token-engine faults

TokenEngineOptions
faultEngineOptions()
{
    TokenEngineOptions options;
    options.model = TransformerConfig::opt125m();
    options.quant = QuantConfig::preset("W4A4");
    options.design = DesignPoint::LoCaLut;
    return options;
}

TEST(TokenEngineFault, AllRanksDeadShedsStreamsOnArrival)
{
    FaultPlan plan;
    plan.rankDeath(0, 0.0);
    plan.rankDeath(1, 0.0);
    FaultInjector injector(plan, Topology{1, 2});
    SessionOptions options;
    options.numRanks = 2;
    options.faultInjector = &injector;
    InferenceSession session(makeBackend("upmem"), options);
    TokenEngine engine(session, faultEngineOptions());

    for (unsigned i = 0; i < 3; ++i) {
        TokenRequest request;
        request.promptLen = 8;
        request.decodeSteps = 4;
        request.arrivalSeconds = i * 1e-3;
        engine.submit(request);
    }
    const std::vector<StreamResult> results = engine.run();
    ASSERT_EQ(results.size(), 3u);
    for (const StreamResult& result : results) {
        EXPECT_EQ(result.status, StreamStatus::ShedFault);
        EXPECT_DOUBLE_EQ(result.completionSeconds,
                         result.arrivalSeconds);
        EXPECT_LT(result.firstTokenSeconds, 0.0);
    }
    EXPECT_EQ(injector.stats().shedFault, 3u);
}

TEST(TokenEngineFault, MidTraceRankDeathMigratesStreamsToSurvivor)
{
    // Calibrate the death to the middle of a healthy run's makespan so
    // streams are mid-decode on the dying rank when it fires.
    const auto makeTrace = [](TokenEngine& engine) {
        for (unsigned i = 0; i < 4; ++i) {
            TokenRequest request;
            request.promptLen = 8;
            request.decodeSteps = 6;
            request.arrivalSeconds = 0.0;
            engine.submit(request);
        }
    };
    double makespan = 0;
    {
        SessionOptions options;
        options.numRanks = 2;
        InferenceSession session(makeBackend("upmem"), options);
        TokenEngine engine(session, faultEngineOptions());
        makeTrace(engine);
        for (const StreamResult& result : engine.run()) {
            EXPECT_EQ(result.status, StreamStatus::Completed);
            makespan = std::max(makespan, result.completionSeconds);
        }
    }
    ASSERT_GT(makespan, 0.0);

    FaultPlan plan;
    plan.rankDeath(0, makespan / 2);
    FaultInjector injector(plan, Topology{1, 2});
    SessionOptions options;
    options.numRanks = 2;
    options.faultInjector = &injector;
    InferenceSession session(makeBackend("upmem"), options);
    TokenEngine engine(session, faultEngineOptions());
    makeTrace(engine);
    unsigned migratedToSurvivor = 0;
    for (const StreamResult& result : engine.run()) {
        EXPECT_EQ(result.status, StreamStatus::Completed);
        EXPECT_EQ(result.tokensEmitted(), 6u);
        if (result.completionSeconds > makespan / 2) {
            EXPECT_EQ(result.rank, 1u);
        }
        migratedToSurvivor += result.rank == 1 ? 1 : 0;
    }
    // Rank 0's streams were re-homed, not shed.
    EXPECT_GE(injector.stats().failovers, 1u);
    EXPECT_EQ(injector.stats().shedFault, 0u);
    EXPECT_GE(migratedToSurvivor, 2u);
    EXPECT_EQ(injector.health(0), RankHealth::Dead);
}

} // namespace
} // namespace localut
