/**
 * @file
 * InferenceSession tests: asynchronous submit/wait matches the
 * synchronous engine bit-for-bit, compiled workloads match the
 * TransformerRunner, decode steps reuse cached plans, and errors raised
 * inside worker threads surface at wait().
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "backend/backend.h"
#include "nn/inference.h"
#include "serving/session.h"

namespace localut {
namespace {

TEST(InferenceSession, AsyncGemmMatchesSynchronousEngine)
{
    const BackendPtr backend = makeBackend("upmem");
    InferenceSession session(backend);
    const QuantConfig cfg = QuantConfig::preset("W1A3");
    const GemmProblem problem = makeRandomProblem(48, 96, 16, cfg, 5);

    const auto id = session.submit(problem, DesignPoint::LoCaLut,
                                   /*computeValues=*/true);
    const GemmResult async = session.wait(id);
    const GemmResult sync = backend->execute(problem, DesignPoint::LoCaLut);

    EXPECT_EQ(async.outInt, sync.outInt);
    EXPECT_DOUBLE_EQ(async.timing.total, sync.timing.total);
    EXPECT_DOUBLE_EQ(async.energy.total, sync.energy.total);
}

/**
 * The tile-parallel + prepared-operand serving path: with several
 * workers, value-computing GEMMs fan their functional tiles onto the
 * session's own worker pool and execute against cached PreparedGemms —
 * bit-exact vs the synchronous engine, unsharded and sharded, across
 * repeated submissions of the same weights (which must hit the
 * prepared cache).  Run under -fsanitize=thread to verify the
 * tile-batch claim counters.
 */
TEST(InferenceSession, TileParallelPreparedServingIsBitExact)
{
    const BackendPtr backend = makeBackend("upmem");
    const QuantConfig cfg = QuantConfig::preset("W4A4");
    const GemmProblem problem = makeRandomProblem(96, 64, 24, cfg, 17);
    const GemmResult sync = backend->execute(problem, DesignPoint::LoCaLut);

    for (unsigned ranks : {1u, 2u}) {
        SessionOptions options;
        options.workers = 4; // force a real pool even on small machines
        options.numRanks = ranks;
        options.computeValues = true;
        InferenceSession session(backend, options);
        ASSERT_EQ(session.workerCount(), 4u);

        std::vector<InferenceSession::RequestId> ids;
        for (int i = 0; i < 6; ++i) {
            ids.push_back(session.submit(problem, DesignPoint::LoCaLut));
        }
        for (const auto id : ids) {
            EXPECT_EQ(session.wait(id).outInt, sync.outInt)
                << "ranks=" << ranks;
        }
        // Re-submitting the same weights hit the prepared-operand memo.
        EXPECT_GT(session.planCacheStats().preparedHits, 0u);
    }

    // Disabling the knobs falls back to the plain path, same values.
    SessionOptions plain;
    plain.workers = 2;
    plain.computeValues = true;
    plain.prepareOperands = false;
    plain.tileParallel = false;
    InferenceSession session(backend, plain);
    EXPECT_EQ(session.wait(session.submit(problem, DesignPoint::LoCaLut))
                  .outInt,
              sync.outInt);
    EXPECT_EQ(session.planCacheStats().preparedMisses, 0u);
}

TEST(InferenceSession, BatchedSubmissionsAllComplete)
{
    InferenceSession session(makeBackend("upmem"));
    const QuantConfig cfg = QuantConfig::preset("W2A2");

    std::vector<InferenceSession::RequestId> ids;
    std::vector<std::vector<std::int32_t>> expected;
    for (unsigned i = 0; i < 12; ++i) {
        const GemmProblem problem =
            makeRandomProblem(32, 64, 8, cfg, /*seed=*/100 + i);
        expected.push_back(referenceGemmInt(problem.w, problem.a));
        ids.push_back(session.submit(problem, DesignPoint::LoCaLut,
                                     /*computeValues=*/true));
    }
    for (unsigned i = 0; i < ids.size(); ++i) {
        EXPECT_EQ(session.wait(ids[i]).outInt, expected[i]) << i;
    }
    // All 12 requests share one shape/config/design, so they collapse to
    // one cache entry.  planFor() deliberately plans outside the lock,
    // so concurrent workers racing on a cold key may each count a miss —
    // only the totals are deterministic.
    const PlanCache::Stats stats = session.planCacheStats();
    EXPECT_EQ(stats.hits + stats.misses, 12u);
    EXPECT_GE(stats.misses, 1u);
    EXPECT_GT(stats.hits, 0u);
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_EQ(session.pendingRequests(), 0u);
}

TEST(InferenceSession, CompiledWorkloadMatchesTransformerRunner)
{
    const BackendPtr backend = makeBackend("upmem");
    const TransformerConfig model = TransformerConfig::opt125m();
    const QuantConfig cfg = QuantConfig::preset("W4A4");

    InferenceSession session(backend);
    const auto workload =
        session.compile(WorkloadSpec::decode(model, 8, 64, 4), cfg,
                        DesignPoint::LoCaLut);
    EXPECT_EQ(workload.nodes.size(), 4u); // qkv, out_proj, ffn_up, ffn_down
    EXPECT_GT(workload.hostOps, 0.0);
    EXPECT_GT(workload.predictedGemmSeconds(), 0.0);

    const auto id = session.submit(workload);
    const InferenceReport viaSession = session.waitReport(id);

    const TransformerRunner runner(backend, cfg, DesignPoint::LoCaLut);
    const InferenceReport viaRunner = runner.decode(model, 8, 64, 4);

    EXPECT_DOUBLE_EQ(viaSession.timing.total, viaRunner.timing.total);
    EXPECT_DOUBLE_EQ(viaSession.energy.total, viaRunner.energy.total);
    EXPECT_DOUBLE_EQ(viaSession.gemmSeconds, viaRunner.gemmSeconds);
    EXPECT_DOUBLE_EQ(viaSession.hostOpSeconds, viaRunner.hostOpSeconds);
}

TEST(InferenceSession, DecodeStepsReuseCachedPlans)
{
    InferenceSession session(makeBackend("upmem"));
    const TransformerConfig model = TransformerConfig::opt125m();
    const QuantConfig cfg = QuantConfig::preset("W4A4");

    // Compile once; submitting more decode steps of the same shape must
    // not re-plan.  OPT's qkv and out_proj share (h, h, batch), so the
    // first compile already hits once.
    const auto first = session.compile(
        WorkloadSpec::decode(model, 32, 128, 1), cfg, DesignPoint::LoCaLut);
    const auto missesAfterFirst = session.planCacheStats().misses;
    EXPECT_EQ(missesAfterFirst, 3u); // (h,h,b), (f,h,b), (h,f,b)

    const auto second = session.compile(
        WorkloadSpec::decode(model, 32, 128, 7), cfg, DesignPoint::LoCaLut);
    EXPECT_EQ(session.planCacheStats().misses, missesAfterFirst);
    EXPECT_GT(session.planCacheStats().hits, 0u);

    const auto idFirst = session.submit(first);
    const auto idSecond = session.submit(second);
    EXPECT_GT(session.waitReport(idFirst).timing.total, 0.0);
    EXPECT_GT(session.waitReport(idSecond).timing.total, 0.0);
}

TEST(InferenceSession, RunsOnEveryRegisteredBackend)
{
    const TransformerConfig model = TransformerConfig::bertBase();
    const QuantConfig cfg = QuantConfig::preset("W1A3");
    for (const char* name : {"upmem", "bankpim", "host-cpu", "host-gpu"}) {
        InferenceSession session{std::string(name)};
        const auto workload = session.compile(
            WorkloadSpec::prefill(model, 4, 32), cfg, DesignPoint::LoCaLut);
        const auto id = session.submit(workload);
        const InferenceReport report = session.waitReport(id);
        EXPECT_GT(report.timing.total, 0.0) << name;
        EXPECT_GT(report.energy.total, 0.0) << name;
        EXPECT_GT(report.gemmSeconds, 0.0) << name;
        EXPECT_GT(report.hostOpSeconds, 0.0) << name;
    }
}

TEST(InferenceSession, RejectsWorkloadCompiledOnAnotherBackend)
{
    InferenceSession upmem(makeBackend("upmem"));
    InferenceSession host(makeBackend("host-cpu"));
    const auto workload = upmem.compile(
        WorkloadSpec::prefill(TransformerConfig::bertBase(), 2, 16),
        QuantConfig::preset("W1A3"), DesignPoint::LoCaLut);
    EXPECT_THROW(host.run(workload), std::runtime_error);
    const auto id = host.submit(workload);
    EXPECT_THROW(host.waitReport(id), std::runtime_error);
}

TEST(InferenceSession, WorkerErrorsSurfaceAtWait)
{
    InferenceSession session(makeBackend("bankpim"));
    const GemmProblem problem = makeShapeOnlyProblem(
        64, 64, 8, QuantConfig::preset("W1A3"));
    // bankpim cannot plan LTC; the failure must arrive at wait(), not
    // tear down the worker.
    const auto id = session.submit(problem, DesignPoint::Ltc);
    EXPECT_THROW(session.wait(id), std::runtime_error);

    // The session is still usable afterwards.
    const auto ok = session.submit(problem, DesignPoint::LoCaLut);
    EXPECT_GT(session.wait(ok).timing.total, 0.0);
}

TEST(InferenceSession, FaultShedsSurfacePromptlyAtWait)
{
    // Regression for the shed-request promptness contract: a request
    // fault-shed mid-execution must resolve its wait() immediately with
    // the typed FaultShedError — never hang the ticket or poison the
    // worker pool for subsequent requests.
    FaultPlan plan;
    plan.transientExecute(1.0); // every attempt on every rank fails
    FaultInjector injector(plan, Topology{1, 2});
    SessionOptions options;
    options.numRanks = 2;
    options.faultInjector = &injector;
    options.faultPolicy.maxAttempts = 2;
    InferenceSession session(makeBackend("upmem"), options);

    const GemmProblem problem = makeShapeOnlyProblem(
        64, 64, 8, QuantConfig::preset("W4A4"));
    const auto id = session.submit(problem, DesignPoint::LoCaLut, false,
                                   {}, SubmitOptions{0});
    EXPECT_THROW(session.wait(id), FaultShedError);
    EXPECT_GT(injector.stats().shedFault, 0u);

    // A second wait-able request still completes once the injector goes
    // quiet (rate is per-attempt; a fresh plan clears it).
    FaultPlan quiet;
    FaultInjector calm(quiet, Topology{1, 2});
    SessionOptions healthy;
    healthy.numRanks = 2;
    healthy.faultInjector = &calm;
    InferenceSession recovered(makeBackend("upmem"), healthy);
    const auto ok = recovered.submit(problem, DesignPoint::LoCaLut, false,
                                     {}, SubmitOptions{0});
    EXPECT_GT(recovered.wait(ok).timing.total, 0.0);
}

TEST(InferenceSession, DrainCompletesOutstandingWork)
{
    InferenceSession session(makeBackend("host-cpu"));
    const QuantConfig cfg = QuantConfig::preset("W1A4");
    std::vector<InferenceSession::RequestId> ids;
    for (unsigned i = 0; i < 8; ++i) {
        ids.push_back(session.submit(
            makeShapeOnlyProblem(128, 128, 16, cfg), DesignPoint::LoCaLut));
    }
    session.drain();
    EXPECT_EQ(session.pendingRequests(), 0u);
    for (const auto id : ids) {
        EXPECT_GT(session.wait(id).timing.total, 0.0);
    }
}

TEST(InferenceSession, WaitConsumesTheRequest)
{
    InferenceSession session(makeBackend("host-cpu"));
    const auto id = session.submit(
        makeShapeOnlyProblem(32, 32, 4, QuantConfig::preset("W1A3")),
        DesignPoint::LoCaLut);
    session.wait(id);
    EXPECT_THROW(session.wait(id), std::runtime_error);
}

} // namespace
} // namespace localut
