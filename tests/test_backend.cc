/**
 * @file
 * Backend abstraction tests: the factory/registry, capability reporting,
 * and the cross-backend parity invariant — the functional output of a
 * LoCaLUT plan executed on the UPMEM backend must be bit-exact against
 * the host (reference-kernel) backend for integer configurations.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "backend/backend.h"
#include "backend/bankpim_backend.h"
#include "backend/host_backend.h"
#include "backend/upmem_backend.h"
#include "kernels/gemm.h"
#include "nn/inference.h"

namespace localut {
namespace {

TEST(BackendRegistry, ListsBuiltinBackends)
{
    const auto names = backendNames();
    for (const char* expected :
         {"upmem", "bankpim", "host-cpu", "host-gpu", "upmem-sim"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), expected),
                  names.end())
            << "missing built-in backend " << expected;
    }
}

TEST(BackendRegistry, MakesNamedBackends)
{
    for (const std::string& name : backendNames()) {
        const BackendPtr backend = makeBackend(name);
        ASSERT_NE(backend, nullptr);
        EXPECT_EQ(backend->name(), name);
        EXPECT_FALSE(backend->capabilities().designPoints.empty());
    }
}

TEST(BackendRegistry, UnknownNameIsFatal)
{
    EXPECT_THROW(makeBackend("no-such-backend"), std::runtime_error);
}

TEST(BackendRegistry, CustomRegistrationIsVisible)
{
    registerBackend("upmem-tiny", [] {
        PimSystemConfig cfg = PimSystemConfig::upmemServer();
        cfg.ranks = 2;
        return std::make_shared<const UpmemBackend>(cfg);
    });
    const auto names = backendNames();
    EXPECT_NE(std::find(names.begin(), names.end(), "upmem-tiny"),
              names.end());
    const BackendPtr backend = makeBackend("upmem-tiny");
    EXPECT_EQ(backend->capabilities().parallelUnits, 2u * 64u);
}

TEST(BackendCapabilities, ReflectDeviceModels)
{
    const BackendPtr upmem = makeBackend("upmem");
    EXPECT_TRUE(upmem->capabilities().functionalValues);
    EXPECT_TRUE(upmem->capabilities().honorsOverrides);
    EXPECT_TRUE(upmem->capabilities().supports(DesignPoint::LoCaLut));
    EXPECT_TRUE(upmem->capabilities().supports(DesignPoint::Ltc));

    const BackendPtr bankpim = makeBackend("bankpim");
    EXPECT_TRUE(bankpim->capabilities().supports(DesignPoint::NaivePim));
    EXPECT_TRUE(bankpim->capabilities().supports(DesignPoint::LoCaLut));
    EXPECT_FALSE(bankpim->capabilities().supports(DesignPoint::Ltc));
}

TEST(BackendParity, UpmemVsHostBitExactOnLocalut)
{
    const BackendPtr upmem = makeBackend("upmem");
    const BackendPtr host = makeBackend("host-cpu");
    for (const char* preset : {"W1A3", "W4A4"}) {
        const QuantConfig cfg = QuantConfig::preset(preset);
        const GemmProblem problem = makeRandomProblem(48, 96, 24, cfg, 3);
        const auto reference = referenceGemmInt(problem.w, problem.a);

        const GemmPlan upmemPlan =
            upmem->plan(problem, DesignPoint::LoCaLut);
        const GemmResult upmemResult = upmem->execute(problem, upmemPlan);
        const GemmResult hostResult =
            host->execute(problem, DesignPoint::LoCaLut);

        EXPECT_EQ(upmemResult.outInt, reference) << preset;
        EXPECT_EQ(hostResult.outInt, reference) << preset;
        EXPECT_EQ(upmemResult.outInt, hostResult.outInt) << preset;
    }
}

TEST(BackendParity, EveryDesignPointAgreesAcrossBackends)
{
    const QuantConfig cfg = QuantConfig::preset("W2A2");
    const GemmProblem problem = makeRandomProblem(32, 64, 16, cfg, 11);
    const auto reference = referenceGemmInt(problem.w, problem.a);

    for (const char* name : {"upmem", "bankpim", "host-cpu"}) {
        const BackendPtr backend = makeBackend(name);
        for (DesignPoint dp : backend->capabilities().designPoints) {
            const GemmResult result = backend->execute(problem, dp);
            EXPECT_EQ(result.outInt, reference)
                << name << " / " << designPointName(dp);
        }
    }
}

TEST(BankPimBackend, TimingMatchesDirectModel)
{
    const BankPimConfig config;
    const BankPimBackend backend(config);
    const BankLevelPim direct(config);
    const QuantConfig cfg = QuantConfig::preset("W1A3");
    const GemmProblem problem = makeShapeOnlyProblem(768, 768, 128, cfg);

    const GemmResult viaBackend =
        backend.execute(problem, backend.plan(problem, DesignPoint::LoCaLut),
                        /*computeValues=*/false);
    const BankPimResult viaModel = direct.lutGemm(768, 768, 128, cfg);
    EXPECT_DOUBLE_EQ(viaBackend.timing.total, viaModel.seconds);
    EXPECT_DOUBLE_EQ(viaBackend.energy.total, viaModel.energyJ);
    EXPECT_GT(viaBackend.timing.total, 0.0);
}

TEST(BankPimBackend, RejectsUnsupportedDesignPoints)
{
    const BankPimBackend backend;
    const GemmProblem problem = makeShapeOnlyProblem(
        64, 64, 16, QuantConfig::preset("W1A3"));
    EXPECT_THROW(backend.plan(problem, DesignPoint::Ltc),
                 std::runtime_error);
}

TEST(HostBackend, TimingMatchesRoofline)
{
    const auto backend = HostBackend::gpu();
    const QuantConfig cfg = QuantConfig::preset("W4A4");
    const GemmProblem problem = makeShapeOnlyProblem(3072, 192, 128, cfg);

    const GemmResult result =
        backend->execute(problem, backend->plan(problem,
                                                DesignPoint::LoCaLut),
                         /*computeValues=*/false);
    const RooflineResult roofline = rooflineGemm(
        RooflineDevice::rtx2080Ti(), 3072, 192, 128, cfg.bw(), cfg.ba());
    EXPECT_DOUBLE_EQ(result.timing.total, roofline.seconds);
    EXPECT_DOUBLE_EQ(result.energy.total, roofline.energyJ);
    EXPECT_GT(result.timing.linkSeconds, 0.0); // GPU pays PCIe
}

TEST(Backend, PlanAndChargeCostsAreConsistentOnUpmem)
{
    const BackendPtr backend = makeBackend("upmem");
    const GemmProblem problem = makeShapeOnlyProblem(
        768, 768, 128, QuantConfig::preset("W1A3"));
    const GemmPlan plan = backend->plan(problem, DesignPoint::LoCaLut);
    const KernelCost cost = backend->chargeCosts(plan);
    const GemmResult result =
        backend->execute(problem, plan, /*computeValues=*/false);
    EXPECT_DOUBLE_EQ(result.cost.totalInstructions(),
                     cost.totalInstructions());
    EXPECT_DOUBLE_EQ(result.cost.totalLinkBytes(), cost.totalLinkBytes());
}

} // namespace
} // namespace localut
