/**
 * @file
 * RequestScheduler tests: admission-control edge cases (idle wakeup,
 * impossible deadlines, saturation), lane priority + EDF ordering in
 * virtual time, cold-start-aware placement against the residency
 * manager, bit-exactness of scheduled execution vs direct submit(), and
 * a concurrent submit/collect stress (run under TSan in CI).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "serving/scheduler.h"
#include "serving/session.h"

namespace localut {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

GemmProblem
smallProblem(std::uint64_t seed = 1)
{
    return makeRandomProblem(128, 128, 8, QuantConfig::preset("W4A4"),
                             seed);
}

/** Modeled service seconds of @p problem on @p session's backend. */
double
serviceSeconds(InferenceSession& session, const GemmProblem& problem)
{
    const GemmPlan plan = session.plan(problem, DesignPoint::LoCaLut);
    return session.backend()
        .execute(problem, plan, /*computeValues=*/false)
        .timing.total;
}

TEST(Scheduler, IdleRankServesArrivalImmediately)
{
    // Empty-queue wakeup: after the clock has advanced past every prior
    // completion, a new arrival starts the moment it arrives.
    SessionOptions sessionOptions;
    sessionOptions.numRanks = 2;
    InferenceSession session(makeBackend("upmem"), sessionOptions);
    RequestScheduler scheduler(session);

    scheduler.advanceTo(5.0);
    EXPECT_DOUBLE_EQ(scheduler.clockSeconds(), 5.0);
    EXPECT_EQ(scheduler.queuedRequests(), 0u);

    const GemmProblem problem = smallProblem();
    const AdmissionDecision decision = scheduler.submit(
        ServingRequest::gemm(problem, DesignPoint::LoCaLut,
                             DeadlineClass::Interactive, /*deadline=*/1.0));
    ASSERT_TRUE(decision.admitted());
    EXPECT_DOUBLE_EQ(decision.arrivalSeconds, 5.0);
    EXPECT_DOUBLE_EQ(decision.projectedStartSeconds, 5.0);

    const ServingResult result = scheduler.wait(decision.id);
    EXPECT_DOUBLE_EQ(result.sample.startSeconds, 5.0);
    EXPECT_DOUBLE_EQ(result.sample.queueDelaySeconds(), 0.0);
    EXPECT_NEAR(result.sample.latencySeconds(),
                result.sample.serviceSeconds,
                result.sample.serviceSeconds * 1e-6);
    EXPECT_TRUE(result.sample.deadlineMet());
    EXPECT_EQ(result.gemm.outInt,
              referenceGemmInt(problem.w, problem.a));
}

TEST(Scheduler, ShedsDeadlineInThePast)
{
    InferenceSession session(makeBackend("upmem"));
    RequestScheduler scheduler(session);

    // Non-positive budget: shed before any projection work.
    const AdmissionDecision zero = scheduler.submit(ServingRequest::gemm(
        smallProblem(), DesignPoint::LoCaLut, DeadlineClass::Interactive,
        /*deadline=*/0.0));
    EXPECT_EQ(zero.outcome, AdmissionOutcome::ShedDeadline);

    // A positive budget below the service time on an idle rank: no
    // placement can meet it.
    const GemmProblem problem = smallProblem();
    const double service = serviceSeconds(session, problem);
    const AdmissionDecision tight = scheduler.submit(ServingRequest::gemm(
        problem, DesignPoint::LoCaLut, DeadlineClass::Interactive,
        /*deadline=*/service * 0.5));
    EXPECT_EQ(tight.outcome, AdmissionOutcome::ShedDeadline);

    // Shed tickets resolve immediately with no result payload.
    const ServingResult result = scheduler.wait(tight.id);
    EXPECT_FALSE(result.decision.admitted());
    EXPECT_TRUE(result.gemm.outInt.empty());

    const TelemetrySnapshot snap = scheduler.telemetry().snapshot();
    const auto lane =
        static_cast<std::size_t>(DeadlineClass::Interactive);
    EXPECT_EQ(snap.shedDeadline[lane], 2u);
    EXPECT_EQ(snap.admitted[lane], 0u);
    scheduler.wait(zero.id);
}

TEST(Scheduler, RejectsWhenEveryRankIsSaturated)
{
    SchedulerOptions options;
    options.maxQueuedPerRank = 2;
    InferenceSession session(makeBackend("upmem"));
    RequestScheduler scheduler(session, options);

    // All-batch, no deadlines: the first request starts immediately in
    // virtual time (leaving the queue), the next two queue up to the
    // bound, and the fourth finds the single rank saturated.
    std::vector<AdmissionDecision> decisions;
    for (int i = 0; i < 4; ++i) {
        decisions.push_back(scheduler.submit(ServingRequest::gemm(
            smallProblem(static_cast<std::uint64_t>(i)),
            DesignPoint::LoCaLut, DeadlineClass::Batch, kInf,
            /*computeValues=*/false)));
    }
    EXPECT_TRUE(decisions[0].admitted());
    EXPECT_TRUE(decisions[1].admitted());
    EXPECT_TRUE(decisions[2].admitted());
    EXPECT_EQ(decisions[3].outcome, AdmissionOutcome::RejectedSaturated);
    EXPECT_EQ(scheduler.queuedRequests(), 2u);

    for (const AdmissionDecision& d : decisions) {
        scheduler.wait(d.id);
    }
}

TEST(Scheduler, EarliestDeadlineFirstWithinLane)
{
    InferenceSession session(makeBackend("upmem"));
    RequestScheduler scheduler(session);

    const GemmProblem problem = smallProblem();
    const double service = serviceSeconds(session, problem);

    // Occupy the single rank, then queue two batch requests whose
    // submission order inverts their deadlines.
    const AdmissionDecision head = scheduler.submit(ServingRequest::gemm(
        problem, DesignPoint::LoCaLut, DeadlineClass::Batch, kInf,
        /*computeValues=*/false));
    const AdmissionDecision late = scheduler.submit(ServingRequest::gemm(
        problem, DesignPoint::LoCaLut, DeadlineClass::Batch,
        /*deadline=*/10.0, /*computeValues=*/false));
    const AdmissionDecision urgent = scheduler.submit(ServingRequest::gemm(
        problem, DesignPoint::LoCaLut, DeadlineClass::Batch,
        /*deadline=*/5.0, /*computeValues=*/false));

    const ServingResult first = scheduler.wait(head.id);
    const ServingResult r1 = scheduler.wait(late.id);
    const ServingResult r2 = scheduler.wait(urgent.id);
    // The urgent (earlier-deadline) request runs right after the head,
    // ahead of the earlier-submitted late one.
    EXPECT_DOUBLE_EQ(first.sample.startSeconds, 0.0);
    EXPECT_NEAR(r2.sample.startSeconds, service, service * 1e-9);
    EXPECT_GT(r1.sample.startSeconds, r2.sample.startSeconds);
}

TEST(Scheduler, InteractiveLaneOvertakesBatch)
{
    InferenceSession session(makeBackend("upmem"));
    RequestScheduler scheduler(session);

    const GemmProblem problem = smallProblem();
    const AdmissionDecision head = scheduler.submit(ServingRequest::gemm(
        problem, DesignPoint::LoCaLut, DeadlineClass::Batch, kInf,
        /*computeValues=*/false));
    const AdmissionDecision batch = scheduler.submit(ServingRequest::gemm(
        problem, DesignPoint::LoCaLut, DeadlineClass::Batch,
        /*deadline=*/5.0, /*computeValues=*/false));
    const AdmissionDecision inter = scheduler.submit(ServingRequest::gemm(
        problem, DesignPoint::LoCaLut, DeadlineClass::Interactive,
        /*deadline=*/20.0, /*computeValues=*/false));

    scheduler.wait(head.id);
    const ServingResult rBatch = scheduler.wait(batch.id);
    const ServingResult rInter = scheduler.wait(inter.id);
    // Despite the later deadline, the interactive lane goes first.
    EXPECT_LT(rInter.sample.startSeconds, rBatch.sample.startSeconds);
}

TEST(Scheduler, DecodeLaneOutranksEveryOtherLane)
{
    // Token-engine lane separation: while a rank is busy, a queued
    // decode step overtakes interactive and prefill work regardless of
    // arrival order, and prefill yields to interactive — the priority
    // order is decode < interactive < prefill < batch (lower starts
    // first), decoupled from the enum indices.
    InferenceSession session(makeBackend("upmem"));
    RequestScheduler scheduler(session);
    const TransformerConfig model = TransformerConfig::opt125m();
    const QuantConfig cfg = QuantConfig::preset("W4A4");
    const auto prefillGraph = session.compileUnsharded(
        WorkloadSpec::prefill(model, 1, 8), cfg, DesignPoint::LoCaLut);
    const auto stepGraph = session.compileUnsharded(
        WorkloadSpec::decodeStep(model, 1, 8), cfg, DesignPoint::LoCaLut);

    const AdmissionDecision head = scheduler.submit(ServingRequest::gemm(
        smallProblem(), DesignPoint::LoCaLut, DeadlineClass::Batch, kInf,
        /*computeValues=*/false));
    const AdmissionDecision pre =
        scheduler.submit(ServingRequest::prefill(prefillGraph, kInf));
    const AdmissionDecision inter = scheduler.submit(ServingRequest::gemm(
        smallProblem(), DesignPoint::LoCaLut, DeadlineClass::Interactive,
        kInf, /*computeValues=*/false));
    const AdmissionDecision step =
        scheduler.submit(ServingRequest::decodeStep(stepGraph, kInf));
    EXPECT_EQ(pre.lane, DeadlineClass::Prefill);
    EXPECT_EQ(step.lane, DeadlineClass::Decode);

    scheduler.wait(head.id);
    const ServingResult rPre = scheduler.wait(pre.id);
    const ServingResult rInter = scheduler.wait(inter.id);
    const ServingResult rStep = scheduler.wait(step.id);
    EXPECT_LT(rStep.sample.startSeconds, rInter.sample.startSeconds);
    EXPECT_LT(rInter.sample.startSeconds, rPre.sample.startSeconds);
}

TEST(Scheduler, FifoPolicyKeepsArrivalOrder)
{
    SchedulerOptions options;
    options.policy = SchedulerPolicy::Fifo;
    InferenceSession session(makeBackend("upmem"));
    RequestScheduler scheduler(session, options);

    const GemmProblem problem = smallProblem();
    const AdmissionDecision head = scheduler.submit(ServingRequest::gemm(
        problem, DesignPoint::LoCaLut, DeadlineClass::Batch, kInf,
        /*computeValues=*/false));
    const AdmissionDecision batch = scheduler.submit(ServingRequest::gemm(
        problem, DesignPoint::LoCaLut, DeadlineClass::Batch, kInf,
        /*computeValues=*/false));
    const AdmissionDecision inter = scheduler.submit(ServingRequest::gemm(
        problem, DesignPoint::LoCaLut, DeadlineClass::Interactive,
        /*deadline=*/20.0, /*computeValues=*/false));

    scheduler.wait(head.id);
    const ServingResult rBatch = scheduler.wait(batch.id);
    const ServingResult rInter = scheduler.wait(inter.id);
    // FIFO ignores lanes: arrival order wins.
    EXPECT_LT(rBatch.sample.startSeconds, rInter.sample.startSeconds);
}

TEST(Scheduler, ColdStartAwarePlacementPrefersWarmRanks)
{
    SessionOptions sessionOptions;
    sessionOptions.numRanks = 2;
    sessionOptions.residencyPolicy = ResidencyPolicy::CostAware;
    InferenceSession session(makeBackend("upmem"), sessionOptions);
    RequestScheduler scheduler(session);

    const GemmProblem s = makeRandomProblem(
        768, 768, 8, QuantConfig::preset("W4A4"), 7);
    const GemmProblem t = makeRandomProblem(
        512, 512, 8, QuantConfig::preset("W4A4"), 8);

    // First touch of S lands on rank 0 (idle tie) and pays a projected
    // broadcast there.
    const AdmissionDecision d1 = scheduler.submit(ServingRequest::gemm(
        s, DesignPoint::LoCaLut, DeadlineClass::Batch, kInf,
        /*computeValues=*/false));
    ASSERT_TRUE(d1.admitted());
    EXPECT_EQ(d1.rank, 0u);
    const ServingResult r1 = scheduler.wait(d1.id);
    EXPECT_GT(r1.sample.lutBroadcastSeconds, 0.0);

    // With both ranks idle again, S re-runs warm on rank 0, while the
    // unseen shape T prefers the idle-but-cold rank 1 over queueing
    // behind S on rank 0.
    scheduler.advanceTo(r1.sample.completionSeconds + 1.0);
    const AdmissionDecision d2 = scheduler.submit(ServingRequest::gemm(
        s, DesignPoint::LoCaLut, DeadlineClass::Batch, kInf,
        /*computeValues=*/false));
    const AdmissionDecision d3 = scheduler.submit(ServingRequest::gemm(
        t, DesignPoint::LoCaLut, DeadlineClass::Batch, kInf,
        /*computeValues=*/false));
    EXPECT_EQ(d2.rank, 0u);
    EXPECT_EQ(d3.rank, 1u);
    const ServingResult r2 = scheduler.wait(d2.id);
    EXPECT_DOUBLE_EQ(r2.sample.lutBroadcastSeconds, 0.0);
    const ServingResult r3 = scheduler.wait(d3.id);
    EXPECT_GT(r3.sample.lutBroadcastSeconds, 0.0);

    // Steady state: both shapes warm on their home ranks.
    scheduler.advanceTo(r3.sample.completionSeconds + 1.0);
    const AdmissionDecision d4 = scheduler.submit(ServingRequest::gemm(
        t, DesignPoint::LoCaLut, DeadlineClass::Batch, kInf,
        /*computeValues=*/false));
    EXPECT_EQ(d4.rank, 1u);
    const ServingResult r4 = scheduler.wait(d4.id);
    EXPECT_DOUBLE_EQ(r4.sample.lutBroadcastSeconds, 0.0);
}

TEST(Scheduler, NodeLocalityPricesRemoteColdStartsHigher)
{
    // 2 nodes x 1 rank: flat rank 0 is node 0 (local broadcast link),
    // flat rank 1 is node 1 (CXL tier).
    SessionOptions sessionOptions;
    sessionOptions.numRanks = 1;
    sessionOptions.numNodes = 2;
    sessionOptions.residencyPolicy = ResidencyPolicy::CostAware;
    InferenceSession session(makeBackend("upmem"), sessionOptions);
    SchedulerOptions schedulerOptions;
    schedulerOptions.maxQueuedPerRank = 1;
    RequestScheduler scheduler(session, schedulerOptions);

    const GemmProblem s = makeRandomProblem(
        768, 768, 8, QuantConfig::preset("W4A4"), 7);

    // Both ranks idle and cold: the node-0 rank wins because its cold
    // start rides the intra-host broadcast, not the slower fabric.
    const AdmissionDecision d1 = scheduler.submit(ServingRequest::gemm(
        s, DesignPoint::LoCaLut, DeadlineClass::Batch, kInf,
        /*computeValues=*/false));
    ASSERT_TRUE(d1.admitted());
    EXPECT_EQ(d1.rank, 0u);
    const ServingResult r1 = scheduler.wait(d1.id);
    EXPECT_GT(r1.sample.lutBroadcastSeconds, 0.0);

    // Saturate rank 0 with a long-lived batch request, then resubmit S:
    // the only open rank is remote, so the placement pays the
    // inter-node projection — strictly more than the intra broadcast
    // the warm-path projection would have charged for the same bytes.
    scheduler.advanceTo(r1.sample.completionSeconds);
    const AdmissionDecision hold = scheduler.submit(ServingRequest::gemm(
        smallProblem(11), DesignPoint::LoCaLut, DeadlineClass::Batch,
        kInf, /*computeValues=*/false));
    ASSERT_TRUE(hold.admitted());
    EXPECT_EQ(hold.rank, 0u);
    const AdmissionDecision d2 = scheduler.submit(ServingRequest::gemm(
        s, DesignPoint::LoCaLut, DeadlineClass::Batch, kInf,
        /*computeValues=*/false));
    ASSERT_TRUE(d2.admitted());
    EXPECT_EQ(d2.rank, 1u);
    const GemmPlan plan = session.plan(s, DesignPoint::LoCaLut);
    const std::uint64_t bytes = tableSetBytes(plan);
    const ResidencyManager* residency = session.residency();
    EXPECT_DOUBLE_EQ(
        scheduler.wait(d2.id).sample.lutBroadcastSeconds,
        residency->projectedBroadcastSeconds(plan, bytes, 1));
    EXPECT_GT(residency->projectedBroadcastSeconds(plan, bytes, 1),
              residency->broadcastSeconds(bytes));
    scheduler.wait(hold.id);

    // The telemetry the placements and waits fed: one request per node,
    // LUT bytes resident on both nodes, and the inter-node broadcast
    // counters showing the codec shrank what crossed.
    const TelemetrySnapshot snap = scheduler.telemetry().snapshot();
    ASSERT_EQ(snap.nodeRequests.size(), 2u);
    EXPECT_EQ(snap.nodeRequests[0], 2u); // s cold + the hold request
    EXPECT_EQ(snap.nodeRequests[1], 1u);
    ASSERT_EQ(snap.nodeResidency.size(), 2u);
    EXPECT_GT(snap.nodeResidency[0].lutBytes, 0u);
    EXPECT_GT(snap.nodeResidency[1].lutBytes, 0u);
    EXPECT_GT(snap.broadcastTiers.interRawBytes, 0.0);
    EXPECT_LT(snap.broadcastTiers.interBytes,
              snap.broadcastTiers.interRawBytes);
}

TEST(Scheduler, EvictedTableSetsAreReprojectedCold)
{
    // Budget fits exactly one of the two table sets: serving T after S
    // evicts S's tables, so a later S request must be projected (and
    // charged) cold again — the planned-warm marker from the first
    // admission must not outlive the eviction.
    const GemmProblem s = makeRandomProblem(
        768, 768, 8, QuantConfig::preset("W4A4"), 21);
    const GemmProblem t = makeRandomProblem(
        512, 512, 8, QuantConfig::preset("W4A4"), 22);
    const BackendPtr backend = makeBackend("upmem");
    const std::uint64_t sBytes =
        tableSetBytes(backend->plan(s, DesignPoint::LoCaLut));
    const std::uint64_t tBytes =
        tableSetBytes(backend->plan(t, DesignPoint::LoCaLut));
    ASSERT_GT(sBytes, 0u);
    ASSERT_GT(tBytes, 0u);

    SessionOptions sessionOptions;
    sessionOptions.residencyPolicy = ResidencyPolicy::CostAware;
    sessionOptions.mramBudgetBytes = std::max(sBytes, tBytes);
    InferenceSession session(backend, sessionOptions);
    RequestScheduler scheduler(session);

    auto serve = [&](const GemmProblem& problem) {
        const AdmissionDecision d = scheduler.submit(ServingRequest::gemm(
            problem, DesignPoint::LoCaLut, DeadlineClass::Batch, kInf,
            /*computeValues=*/false));
        const ServingResult r = scheduler.wait(d.id);
        scheduler.advanceTo(r.sample.completionSeconds + 1.0);
        return r;
    };

    EXPECT_GT(serve(s).sample.lutBroadcastSeconds, 0.0); // first touch
    EXPECT_GT(serve(t).sample.lutBroadcastSeconds, 0.0); // evicts S
    EXPECT_GE(session.residencyStats().evictions, 1u);
    // S is cold again: the projection must say so and the real
    // execution re-broadcast must match it.
    const ServingResult again = serve(s);
    EXPECT_GT(again.sample.lutBroadcastSeconds, 0.0);
    EXPECT_GE(session.residencyStats().rebroadcasts, 1u);
}

TEST(Scheduler, ScheduledExecutionIsBitExactVsDirectSubmit)
{
    SessionOptions sessionOptions;
    sessionOptions.numRanks = 2;
    InferenceSession session(makeBackend("upmem"), sessionOptions);
    RequestScheduler scheduler(session);

    InferenceSession direct(makeBackend("upmem"));

    const char* presets[] = {"W1A3", "W4A4"};
    std::vector<AdmissionDecision> decisions;
    std::vector<GemmProblem> problems;
    for (int i = 0; i < 6; ++i) {
        problems.push_back(makeRandomProblem(
            96 + 32 * (i % 3), 128, 8, QuantConfig::preset(presets[i % 2]),
            100 + static_cast<std::uint64_t>(i)));
        decisions.push_back(scheduler.submit(ServingRequest::gemm(
            problems.back(), DesignPoint::LoCaLut,
            i % 2 ? DeadlineClass::Batch : DeadlineClass::Interactive,
            kInf)));
    }
    for (std::size_t i = 0; i < decisions.size(); ++i) {
        ASSERT_TRUE(decisions[i].admitted());
        const ServingResult scheduled = scheduler.wait(decisions[i].id);
        const GemmResult reference = direct.wait(direct.submit(
            problems[i], DesignPoint::LoCaLut, /*computeValues=*/true));
        EXPECT_EQ(scheduled.gemm.outInt, reference.outInt)
            << "request " << i << " diverged from direct submit";
    }
}

TEST(Scheduler, WorkloadRequestsDataParallelAndGang)
{
    SessionOptions sessionOptions;
    sessionOptions.numRanks = 2;
    InferenceSession session(makeBackend("upmem"), sessionOptions);
    RequestScheduler scheduler(session);

    const WorkloadSpec spec =
        WorkloadSpec::decode(TransformerConfig::opt125m(), 8, 64, 1);
    const QuantConfig quant = QuantConfig::preset("W4A4");

    // Unsharded compilation serves whole requests data-parallel: two
    // idle ranks take one request each.
    const auto replica = session.compileUnsharded(
        spec, quant, DesignPoint::LoCaLut);
    EXPECT_FALSE(replica.sharded());
    const double steady = session.projectCost(replica).totalSeconds();
    const AdmissionDecision w0 = scheduler.submit(
        ServingRequest::workloadRequest(replica, DeadlineClass::Batch));
    const AdmissionDecision w1 = scheduler.submit(
        ServingRequest::workloadRequest(replica, DeadlineClass::Batch));
    ASSERT_TRUE(w0.admitted());
    ASSERT_TRUE(w1.admitted());
    EXPECT_NE(w0.rank, w1.rank);
    const ServingResult rw0 = scheduler.wait(w0.id);
    EXPECT_NEAR(rw0.sample.serviceSeconds, steady, steady * 1e-9);
    EXPECT_NEAR(rw0.report.timing.total, steady, steady * 1e-9);
    scheduler.wait(w1.id);

    // A sharded compilation gangs across every rank.
    const auto sharded =
        session.compile(spec, quant, DesignPoint::LoCaLut);
    ASSERT_TRUE(sharded.sharded());
    const AdmissionDecision g = scheduler.submit(
        ServingRequest::workloadRequest(sharded, DeadlineClass::Batch));
    ASSERT_TRUE(g.admitted());
    EXPECT_EQ(g.rank, RequestScheduler::kAllRanks);
    const ServingResult rg = scheduler.wait(g.id);
    EXPECT_GT(rg.sample.collectiveSeconds, 0.0);
    EXPECT_NEAR(rg.report.collectiveSeconds, rg.sample.collectiveSeconds,
                rg.sample.collectiveSeconds * 1e-9);
}

TEST(Scheduler, AdmissionProtectsAlreadyAdmittedDeadlines)
{
    InferenceSession session(makeBackend("upmem"));
    RequestScheduler scheduler(session);

    const GemmProblem problem = smallProblem();
    const double service = serviceSeconds(session, problem);

    // Two interactive requests fit back-to-back within 2.5 services.
    const AdmissionDecision a = scheduler.submit(ServingRequest::gemm(
        problem, DesignPoint::LoCaLut, DeadlineClass::Interactive,
        2.5 * service, /*computeValues=*/false));
    const AdmissionDecision b = scheduler.submit(ServingRequest::gemm(
        problem, DesignPoint::LoCaLut, DeadlineClass::Interactive,
        2.5 * service, /*computeValues=*/false));
    ASSERT_TRUE(a.admitted());
    ASSERT_TRUE(b.admitted());

    // A third with a *tighter* deadline would jump the EDF queue and
    // push b past its budget: it must be shed, and b must still meet
    // its deadline.
    const AdmissionDecision c = scheduler.submit(ServingRequest::gemm(
        problem, DesignPoint::LoCaLut, DeadlineClass::Interactive,
        1.8 * service, /*computeValues=*/false));
    EXPECT_EQ(c.outcome, AdmissionOutcome::ShedDeadline);

    scheduler.wait(a.id);
    const ServingResult rb = scheduler.wait(b.id);
    EXPECT_TRUE(rb.sample.deadlineMet());
    scheduler.wait(c.id);
}

TEST(Scheduler, ConcurrentSubmitCollectStress)
{
    // Concurrent submitters and waiters over a multi-rank session with
    // residency enabled: every admitted value request must stay
    // bit-exact, and the telemetry counters must balance.  Run under
    // TSan in CI (the sanitize job builds this suite).
    SessionOptions sessionOptions;
    sessionOptions.numRanks = 2;
    sessionOptions.workers = 2;
    sessionOptions.residencyPolicy = ResidencyPolicy::CostAware;
    InferenceSession session(makeBackend("upmem"), sessionOptions);
    SchedulerOptions options;
    options.maxQueuedPerRank = 1024; // stress ordering, not admission
    RequestScheduler scheduler(session, options);

    constexpr unsigned kThreads = 4;
    constexpr unsigned kPerThread = 12;
    std::vector<std::thread> threads;
    std::vector<unsigned> mismatches(kThreads, 0);
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (unsigned i = 0; i < kPerThread; ++i) {
                const GemmProblem problem = makeRandomProblem(
                    64 + 16 * (i % 3), 96, 4,
                    QuantConfig::preset(i % 2 ? "W4A4" : "W1A3"),
                    1000 + t * 100 + i);
                const AdmissionDecision d =
                    scheduler.submit(ServingRequest::gemm(
                        problem, DesignPoint::LoCaLut,
                        i % 3 ? DeadlineClass::Batch
                              : DeadlineClass::Interactive,
                        kInf));
                const ServingResult r = scheduler.wait(d.id);
                if (r.gemm.outInt !=
                    referenceGemmInt(problem.w, problem.a)) {
                    ++mismatches[t];
                }
            }
        });
    }
    for (std::thread& thread : threads) {
        thread.join();
    }
    for (const unsigned m : mismatches) {
        EXPECT_EQ(m, 0u);
    }
    scheduler.drain();
    const TelemetrySnapshot snap = scheduler.telemetry().snapshot();
    EXPECT_EQ(snap.totalSubmitted(), kThreads * kPerThread);
    EXPECT_EQ(snap.totalAdmitted(), kThreads * kPerThread);
    std::uint64_t completed = 0;
    for (const LaneStats& lane : snap.lanes) {
        completed += lane.completed;
    }
    EXPECT_EQ(completed, kThreads * kPerThread);
}

} // namespace
} // namespace localut
