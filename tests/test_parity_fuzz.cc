/**
 * @file
 * Differential fuzzing of the cross-backend / sharded-vs-unsharded
 * parity invariant: ~200 randomized GemmProblem shapes x quantization
 * configs execute on the upmem, bankpim, host-cpu, and upmem-sim
 * backends (upmem-sim changes DPU timing only, never numerics), sharded
 * (nodes in {1, 2} x num_ranks in {2, 4, 8}, both strategies) and
 * unsharded, asserting
 *
 *  - bit-exact functional outputs everywhere (the reference is
 *    referenceGemmInt on the raw codes), and
 *  - monotone non-negative cost deltas: the sharded execution is never
 *    faster than its own critical shard, the collective charge is never
 *    negative, and collective bytes never shrink as ranks grow.
 *
 * Shapes are drawn from a deterministic SplitMix64 stream, so a failure
 * reproduces from the case index alone.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "backend/backend.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "kernels/exec_engine.h"
#include "nn/inference.h"
#include "serving/plan_cache.h"
#include "serving/sharding.h"

namespace localut {
namespace {

struct FuzzCase {
    std::size_t m, k, n;
    QuantConfig config{ValueCodec::signedBinary(),
                       ValueCodec::signedBinary()};
    std::string backend;
    unsigned ranks;
    unsigned nodes;
    ShardStrategy strategy;
    std::uint64_t seed;

    std::string
    describe() const
    {
        return "m=" + std::to_string(m) + " k=" + std::to_string(k) +
               " n=" + std::to_string(n) + " " + config.name() + " " +
               backend + " topology=" + std::to_string(nodes) + "x" +
               std::to_string(ranks) + " " + shardStrategyName(strategy);
    }
};

std::vector<FuzzCase>
drawCases(std::size_t count)
{
    Rng rng(0xf022);
    const std::vector<QuantConfig> configs = QuantConfig::paperConfigs();
    const char* backends[] = {"upmem", "bankpim", "host-cpu", "upmem-sim"};
    const unsigned rankChoices[] = {2, 4, 8};
    std::vector<FuzzCase> cases;
    cases.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        FuzzCase c;
        c.m = 1 + rng.nextBounded(96);
        c.k = 2 + rng.nextBounded(96);
        c.n = 1 + rng.nextBounded(32);
        c.config = configs[rng.nextBounded(configs.size())];
        c.backend = backends[rng.nextBounded(4)];
        c.ranks = rankChoices[rng.nextBounded(3)];
        // Topology dimension: half the cases scale the same cut out
        // across two CXL-attached nodes (ranks stay per-node).
        c.nodes = 1 + rng.nextBounded(2);
        // Row-parallel on a minority of the integer cases; k >= 2 keeps
        // the cut non-degenerate.
        c.strategy = rng.nextBounded(4) == 0
                         ? ShardStrategy::RowParallel
                         : ShardStrategy::ColumnParallel;
        c.seed = 1000 + i;
        cases.push_back(c);
    }
    return cases;
}

TEST(ParityFuzz, ShardedMatchesUnshardedAcrossBackends)
{
    const std::vector<FuzzCase> cases = drawCases(200);
    // One cache shared by all backends (PlanKey embeds the backend name
    // + fingerprint, so entries never alias): repeated slice shapes
    // reuse their sub-plans, which keeps 200 planner walks cheap.
    PlanCache cache;
    for (std::size_t i = 0; i < cases.size(); ++i) {
        const FuzzCase& c = cases[i];
        SCOPED_TRACE("case " + std::to_string(i) + ": " + c.describe());
        const BackendPtr backend = makeBackend(c.backend);
        const GemmProblem problem =
            makeRandomProblem(c.m, c.k, c.n, c.config, c.seed);
        const auto reference = referenceGemmInt(problem.w, problem.a);

        // Unsharded execution on this backend.
        const GemmPlan plain =
            cache.planFor(*backend, problem, DesignPoint::LoCaLut);
        const GemmResult unsharded = backend->execute(problem, plain);
        EXPECT_EQ(unsharded.outInt, reference);

        // Sharded execution: bit-exact with the unsharded output (the
        // node dimension widens the cut but never reorders any
        // element's accumulation).
        ShardSpec spec;
        spec.numRanks = c.ranks;
        spec.numNodes = c.nodes;
        spec.strategy = c.strategy;
        const ShardPlan plan = cache.shardPlanFor(
            *backend, problem, DesignPoint::LoCaLut, spec);
        const GemmResult sharded = executeSharded(*backend, problem, plan);
        EXPECT_EQ(sharded.outInt, unsharded.outInt);

        // Monotone non-negative cost deltas: the collective never gives
        // time or bytes back, and the reduced result is never faster
        // than its slowest shard.
        EXPECT_GE(plan.collectiveSeconds, 0.0);
        EXPECT_GE(plan.collectiveJoules, 0.0);
        EXPECT_GE(plan.collectiveBytes, 0.0);
        EXPECT_GE(plan.interNodeSeconds, 0.0);
        EXPECT_LE(plan.interNodeSeconds, plan.collectiveSeconds);
        if (c.nodes == 1) {
            EXPECT_DOUBLE_EQ(plan.interNodeBytes, 0.0);
        }
        double criticalShardSeconds = 0.0;
        for (unsigned s = 0; s < plan.shards.size(); ++s) {
            const GemmResult part = backend->execute(
                shardProblem(problem, plan, s), plan.shards[s].plan,
                /*computeValues=*/false);
            criticalShardSeconds =
                std::max(criticalShardSeconds, part.timing.total);
        }
        EXPECT_GE(sharded.timing.total + 1e-18,
                  criticalShardSeconds + plan.collectiveSeconds);
    }
}

/**
 * Prepared-operand parity: prepared (cached PreparedGemm + arena +
 * tile-parallel) execution is bit-exact against unprepared execution
 * across upmem/bankpim/host-cpu x ranks {1, 2, 4} x tile threads
 * {1, 4} x simd {off, on}, unsharded and sharded alike.
 */
TEST(ParityFuzz, PreparedMatchesUnpreparedAcrossBackendsRanksThreads)
{
    Rng rng(0x9e37);
    const std::vector<QuantConfig> configs = QuantConfig::paperConfigs();
    const char* backends[] = {"upmem", "bankpim", "host-cpu", "upmem-sim"};
    PlanCache cache;
    TilePool pool(4);
    for (unsigned i = 0; i < 48; ++i) {
        const std::size_t m = 1 + rng.nextBounded(80);
        const std::size_t k = 2 + rng.nextBounded(80);
        const std::size_t n = 1 + rng.nextBounded(24);
        const QuantConfig cfg = configs[rng.nextBounded(configs.size())];
        const BackendPtr backend = makeBackend(backends[rng.nextBounded(4)]);
        const GemmProblem problem =
            makeRandomProblem(m, k, n, cfg, 0xabc0 + i);
        SCOPED_TRACE("case " + std::to_string(i) + ": m=" +
                     std::to_string(m) + " k=" + std::to_string(k) +
                     " n=" + std::to_string(n) + " " + cfg.name() + " " +
                     backend->name());

        const GemmPlan plan =
            cache.planFor(*backend, problem, DesignPoint::LoCaLut);
        const GemmResult baseline = backend->execute(problem, plan);
        EXPECT_EQ(baseline.outInt,
                  referenceGemmInt(problem.w, problem.a));

        for (unsigned threads : {1u, 4u}) {
            for (bool simd : {false, true}) {
                ExecOptions options;
                const std::shared_ptr<const PreparedGemm> prepared =
                    cache.preparedFor(*backend, problem, plan);
                options.prepared = prepared.get();
                options.simd = simd;
                if (threads > 1) {
                    options.tiles = &pool;
                }
                const GemmResult prep =
                    backend->execute(problem, plan, options);
                EXPECT_EQ(prep.outInt, baseline.outInt)
                    << "threads=" << threads << " simd=" << simd;

                for (unsigned ranks : {2u, 4u}) {
                    ShardSpec spec;
                    spec.numRanks = ranks;
                    const ShardPlan shardPlan = cache.shardPlanFor(
                        *backend, problem, DesignPoint::LoCaLut, spec);
                    ExecOptions shardOptions;
                    shardOptions.tiles = options.tiles;
                    shardOptions.simd = simd;
                    const GemmResult sharded = executeSharded(
                        *backend, problem, shardPlan, shardOptions,
                        &cache);
                    EXPECT_EQ(sharded.outInt, baseline.outInt)
                        << "ranks=" << ranks << " threads=" << threads
                        << " simd=" << simd;
                }
            }
        }
    }
    // The prepared cache actually served repeats: every (shape, ranks,
    // threads) revisit of the same weights is a hit.
    const PlanCache::Stats stats = cache.stats();
    EXPECT_GT(stats.preparedHits, 0u);
    EXPECT_GT(stats.preparedMisses, 0u);
}

/**
 * ExecOptions::simd is a pure speed knob: vectorized fused
 * lookup-accumulate runs bit-exact against the scalar loops on ALL
 * four backends (including host-gpu), serial and tile-parallel, int
 * and float (streaming on and off — the float accumulation order is
 * part of the contract).
 */
TEST(ParityFuzz, SimdMatchesScalarAcrossAllBackends)
{
    Rng rng(0x51d0);
    const std::vector<QuantConfig> configs = QuantConfig::paperConfigs();
    const char* backends[] = {"upmem", "bankpim", "host-cpu", "host-gpu",
                              "upmem-sim"};
    PlanCache cache;
    TilePool pool(4);
    for (const char* name : backends) {
        const BackendPtr backend = makeBackend(name);
        for (unsigned i = 0; i < 8; ++i) {
            const std::size_t m = 1 + rng.nextBounded(80);
            const std::size_t k = 2 + rng.nextBounded(80);
            const std::size_t n = 1 + rng.nextBounded(24);
            const QuantConfig cfg =
                configs[rng.nextBounded(configs.size())];
            const GemmProblem problem =
                makeRandomProblem(m, k, n, cfg, 0x51d0 + i);
            SCOPED_TRACE(std::string(name) + " case " + std::to_string(i) +
                         ": m=" + std::to_string(m) + " k=" +
                         std::to_string(k) + " n=" + std::to_string(n) +
                         " " + cfg.name());
            const GemmPlan plan =
                cache.planFor(*backend, problem, DesignPoint::LoCaLut);
            const std::shared_ptr<const PreparedGemm> prepared =
                cache.preparedFor(*backend, problem, plan);
            for (unsigned threads : {1u, 4u}) {
                ExecOptions scalar;
                scalar.prepared = prepared.get();
                scalar.simd = false;
                if (threads > 1) {
                    scalar.tiles = &pool;
                }
                ExecOptions simd = scalar;
                simd.simd = true;
                const GemmResult a = backend->execute(problem, plan, scalar);
                const GemmResult b = backend->execute(problem, plan, simd);
                EXPECT_EQ(a.outInt, b.outInt) << "threads=" << threads;
                EXPECT_EQ(a.outInt, referenceGemmInt(problem.w, problem.a))
                    << "threads=" << threads;
            }
        }
    }

    // Float path: the vectorized dimension is independent output rows,
    // never the group reduction, so even float accumulation is
    // bit-identical — with and without slice streaming.
    const QuantConfig fpCfg = QuantConfig::fpPreset(1, 8);
    const GemmProblem fpProblem = makeRandomProblem(33, 48, 6, fpCfg, 17);
    for (bool streaming : {false, true}) {
        GemmPlan plan(DesignPoint::LoCaLut, fpProblem.config());
        plan.m = fpProblem.m();
        plan.k = fpProblem.k();
        plan.n = fpProblem.n();
        plan.p = 2;
        plan.streaming = streaming;
        plan.kSlices = streaming ? 4 : 1;
        plan.groups =
            static_cast<unsigned>((plan.k + plan.p - 1) / std::size_t{plan.p});
        const auto prepared = prepareGemm(fpProblem, plan);
        ExecOptions scalar;
        scalar.prepared = prepared.get();
        scalar.simd = false;
        scalar.tiles = &pool;
        ExecOptions simd = scalar;
        simd.simd = true;
        std::vector<float> scalarOut, simdOut;
        executeGemmFloat(fpProblem, plan, scalar, scalarOut);
        executeGemmFloat(fpProblem, plan, simd, simdOut);
        EXPECT_EQ(scalarOut, simdOut) << "streaming=" << streaming;
    }
}

TEST(ParityFuzz, CollectiveBytesMonotoneInRanks)
{
    Rng rng(0xbeef);
    const std::vector<QuantConfig> configs = QuantConfig::paperConfigs();
    const BackendPtr backend = makeBackend("upmem");
    PlanCache cache;
    for (unsigned i = 0; i < 24; ++i) {
        const std::size_t m = 8 + rng.nextBounded(120);
        const std::size_t k = 8 + rng.nextBounded(120);
        const std::size_t n = 1 + rng.nextBounded(32);
        const QuantConfig cfg = configs[rng.nextBounded(configs.size())];
        const GemmProblem problem = makeShapeOnlyProblem(m, k, n, cfg);
        SCOPED_TRACE("m=" + std::to_string(m) + " k=" + std::to_string(k) +
                     " n=" + std::to_string(n) + " " + cfg.name());
        double prevBytes = 0.0, prevSeconds = 0.0;
        for (unsigned ranks : {1u, 2u, 4u, 8u}) {
            ShardSpec spec;
            spec.numRanks = ranks;
            const ShardPlan plan = cache.shardPlanFor(
                *backend, problem, DesignPoint::LoCaLut, spec);
            EXPECT_GE(plan.collectiveBytes, prevBytes) << ranks;
            EXPECT_GE(plan.collectiveSeconds, prevSeconds) << ranks;
            prevBytes = plan.collectiveBytes;
            prevSeconds = plan.collectiveSeconds;
        }
    }
}

} // namespace
} // namespace localut
