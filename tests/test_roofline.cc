/**
 * @file
 * Roofline-model tests (Fig. 17 substrate): compute/memory/transfer
 * decomposition, the skinny-K derating, flat time across sub-byte
 * configs, and the CPU-vs-GPU ordering.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "hostsim/roofline.h"

namespace localut {
namespace {

TEST(Roofline, FlatAcrossSubByteConfigs)
{
    // Neither device has native sub-8-bit arithmetic: W1A3 and W4A4 run
    // through the same unpack path, so their times are ~identical.
    const RooflineDevice gpu = RooflineDevice::rtx2080Ti();
    const RooflineResult a = rooflineGemm(gpu, 1024, 1024, 1024, 1, 3);
    const RooflineResult b = rooflineGemm(gpu, 1024, 1024, 1024, 4, 4);
    EXPECT_NEAR(a.computeSeconds, b.computeSeconds,
                1e-6 * a.computeSeconds);
}

TEST(Roofline, SkinnyKDerating)
{
    const RooflineDevice gpu = RooflineDevice::rtx2080Ti();
    // Same MAC count; the skinny-K shape is slower.
    const RooflineResult wide = rooflineGemm(gpu, 1024, 1024, 1024, 4, 4);
    const RooflineResult skinny =
        rooflineGemm(gpu, 4096, 256, 1024, 4, 4);
    EXPECT_GT(skinny.computeSeconds, wide.computeSeconds * 1.5);
}

TEST(Roofline, GpuPaysPcieCpuDoesNot)
{
    const RooflineResult cpu = rooflineGemm(
        RooflineDevice::xeonGold5215(), 512, 512, 512, 4, 4);
    const RooflineResult gpu = rooflineGemm(
        RooflineDevice::rtx2080Ti(), 512, 512, 512, 4, 4);
    EXPECT_EQ(cpu.transferSeconds, 0.0);
    EXPECT_GT(gpu.transferSeconds, 0.0);
}

TEST(Roofline, GpuFasterThanCpuOnCompute)
{
    const RooflineResult cpu = rooflineGemm(
        RooflineDevice::xeonGold5215(), 4096, 1024, 4096, 4, 4);
    const RooflineResult gpu = rooflineGemm(
        RooflineDevice::rtx2080Ti(), 4096, 1024, 4096, 4, 4);
    EXPECT_LT(gpu.seconds, cpu.seconds);
}

TEST(Roofline, EnergyProportionalToTime)
{
    const RooflineDevice cpu = RooflineDevice::xeonGold5215();
    const RooflineResult r = rooflineGemm(cpu, 1024, 1024, 256, 2, 2);
    EXPECT_NEAR(r.energyJ, r.seconds * cpu.watts, 1e-12);
}

TEST(Roofline, MemoryBoundWhenArithmeticIntensityLow)
{
    // A GEMV-like shape (N = 1) is memory-bound on the CPU.
    const RooflineDevice cpu = RooflineDevice::xeonGold5215();
    const RooflineResult r = rooflineGemm(cpu, 8192, 8192, 1, 8, 8);
    EXPECT_GT(r.memorySeconds, r.computeSeconds);
    EXPECT_DOUBLE_EQ(r.seconds,
                     std::max(r.computeSeconds, r.memorySeconds) +
                         r.transferSeconds);
}

} // namespace
} // namespace localut
