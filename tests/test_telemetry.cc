/**
 * @file
 * Telemetry tests: LatencyHistogram bucket/quantile behavior, counter
 * coherence, merging, and the Prometheus text rendering.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "serving/telemetry.h"

namespace localut {
namespace {

TEST(LatencyHistogram, EmptyHistogramReportsZeros)
{
    LatencyHistogram hist;
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_DOUBLE_EQ(hist.sum(), 0.0);
    EXPECT_DOUBLE_EQ(hist.minSeconds(), 0.0);
    EXPECT_DOUBLE_EQ(hist.maxSeconds(), 0.0);
    EXPECT_DOUBLE_EQ(hist.quantile(0.5), 0.0);
}

TEST(LatencyHistogram, BucketsCoverSamplesWithBoundedError)
{
    LatencyHistogram hist;
    // One sample per bucket-ish decade point: every quantile bound must
    // bracket the true sample within one bucket's growth factor.
    const double growth =
        std::pow(10.0, 1.0 / LatencyHistogram::kBucketsPerDecade);
    for (double s = 1e-6; s < 1.0; s *= 3.7) {
        hist.record(s);
        const double q = hist.quantile(1.0);
        EXPECT_GE(q, s / growth);
        EXPECT_LE(q, s); // clamped to the recorded max
    }
}

TEST(LatencyHistogram, QuantilesAreMonotoneAndMatchKnownData)
{
    LatencyHistogram hist;
    // 100 samples: 1 ms .. 100 ms.
    for (int i = 1; i <= 100; ++i) {
        hist.record(1e-3 * i);
    }
    EXPECT_EQ(hist.count(), 100u);
    EXPECT_NEAR(hist.meanSeconds(), 50.5e-3, 1e-9);
    EXPECT_DOUBLE_EQ(hist.minSeconds(), 1e-3);
    EXPECT_DOUBLE_EQ(hist.maxSeconds(), 100e-3);

    const double growth =
        std::pow(10.0, 1.0 / LatencyHistogram::kBucketsPerDecade);
    const double p50 = hist.p50();
    const double p95 = hist.p95();
    const double p99 = hist.p99();
    // Bucket upper bounds: within one growth factor above the true
    // order statistic, never below it.
    EXPECT_GE(p50, 50e-3);
    EXPECT_LE(p50, 50e-3 * growth);
    EXPECT_GE(p95, 95e-3);
    EXPECT_LE(p95, 95e-3 * growth);
    EXPECT_GE(p99, 99e-3);
    EXPECT_LE(p99, 100e-3); // clamped to max
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    EXPECT_LE(p99, hist.maxSeconds());
    EXPECT_DOUBLE_EQ(hist.quantile(1.0), hist.maxSeconds());
}

TEST(LatencyHistogram, OutOfRangeSamplesClampToEdgeBuckets)
{
    LatencyHistogram hist;
    hist.record(0.0);                       // below the first bound
    hist.record(-1.0);                      // negative clamps to 0
    hist.record(1e9);                       // beyond the last bound
    EXPECT_EQ(hist.count(), 3u);
    EXPECT_EQ(hist.bucketCount(0), 2u);
    EXPECT_EQ(hist.bucketCount(LatencyHistogram::kBuckets - 1), 1u);
    EXPECT_DOUBLE_EQ(hist.maxSeconds(), 1e9);
    EXPECT_DOUBLE_EQ(hist.quantile(1.0), 1e9);
}

TEST(LatencyHistogram, MergeMatchesCombinedRecording)
{
    LatencyHistogram a, b, combined;
    for (int i = 1; i <= 40; ++i) {
        const double s = 1e-4 * i;
        ((i % 2) ? a : b).record(s);
        combined.record(s);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_DOUBLE_EQ(a.sum(), combined.sum());
    EXPECT_DOUBLE_EQ(a.minSeconds(), combined.minSeconds());
    EXPECT_DOUBLE_EQ(a.maxSeconds(), combined.maxSeconds());
    for (double q : {0.25, 0.5, 0.9, 0.99}) {
        EXPECT_DOUBLE_EQ(a.quantile(q), combined.quantile(q));
    }
}

RequestSample
sampleAt(DeadlineClass lane, double arrival, double start,
         double completion, double deadline)
{
    RequestSample sample;
    sample.lane = lane;
    sample.arrivalSeconds = arrival;
    sample.startSeconds = start;
    sample.completionSeconds = completion;
    sample.serviceSeconds = completion - start;
    sample.deadlineSeconds = deadline;
    return sample;
}

TEST(Telemetry, CountersBalanceAcrossOutcomes)
{
    Telemetry telemetry;
    telemetry.recordAdmission(DeadlineClass::Interactive,
                              AdmissionOutcome::Admitted);
    telemetry.recordAdmission(DeadlineClass::Interactive,
                              AdmissionOutcome::ShedDeadline);
    telemetry.recordAdmission(DeadlineClass::Batch,
                              AdmissionOutcome::Admitted);
    telemetry.recordAdmission(DeadlineClass::Batch,
                              AdmissionOutcome::RejectedSaturated);

    telemetry.recordCompletion(sampleAt(DeadlineClass::Interactive, 0.0,
                                        0.1, 0.2, /*deadline=*/0.5));
    telemetry.recordCompletion(sampleAt(DeadlineClass::Batch, 0.0, 1.0,
                                        2.0, /*deadline=*/1.5));

    const TelemetrySnapshot snap = telemetry.snapshot();
    const auto i = static_cast<std::size_t>(DeadlineClass::Interactive);
    const auto b = static_cast<std::size_t>(DeadlineClass::Batch);
    EXPECT_EQ(snap.totalSubmitted(), 4u);
    EXPECT_EQ(snap.totalAdmitted(), 2u);
    EXPECT_EQ(snap.submitted[i],
              snap.admitted[i] + snap.shedDeadline[i] +
                  snap.rejectedSaturated[i]);
    EXPECT_EQ(snap.submitted[b],
              snap.admitted[b] + snap.shedDeadline[b] +
                  snap.rejectedSaturated[b]);
    EXPECT_EQ(snap.lanes[i].completed, 1u);
    EXPECT_EQ(snap.lanes[i].deadlineMet, 1u);
    EXPECT_EQ(snap.lanes[i].deadlineMissed, 0u);
    EXPECT_EQ(snap.lanes[b].deadlineMet, 0u);
    EXPECT_EQ(snap.lanes[b].deadlineMissed, 1u);
    EXPECT_EQ(snap.lanes[i].queueDelay.count(), 1u);
    EXPECT_DOUBLE_EQ(snap.lanes[i].queueDelay.maxSeconds(), 0.1);

    // An infinite deadline counts as met (goodput semantics).
    telemetry.recordCompletion(
        sampleAt(DeadlineClass::Batch, 0.0, 0.0, 5.0,
                 std::numeric_limits<double>::infinity()));
    EXPECT_EQ(telemetry.snapshot().lanes[b].deadlineMet, 1u);

    telemetry.reset();
    EXPECT_EQ(telemetry.snapshot().totalSubmitted(), 0u);
}

TEST(Telemetry, PrometheusTextExposesAllSeries)
{
    Telemetry telemetry;
    telemetry.recordAdmission(DeadlineClass::Interactive,
                              AdmissionOutcome::Admitted);
    RequestSample sample = sampleAt(DeadlineClass::Interactive, 0.0,
                                    0.25e-3, 1.25e-3, /*deadline=*/5e-3);
    sample.collectiveSeconds = 1e-4;
    sample.lutBroadcastSeconds = 2e-4;
    telemetry.recordCompletion(sample);

    const std::string text = telemetry.prometheusText();
    for (const char* needle : {
             "# TYPE localut_requests_total counter",
             "localut_requests_total{lane=\"interactive\","
             "outcome=\"admitted\"} 1",
             "# TYPE localut_request_latency_seconds histogram",
             "localut_request_latency_seconds_bucket{lane="
             "\"interactive\",le=\"+Inf\"} 1",
             "localut_request_latency_seconds_count{lane="
             "\"interactive\"} 1",
             "localut_request_queue_delay_seconds_count{lane="
             "\"interactive\"} 1",
             "localut_request_service_seconds_count{lane="
             "\"interactive\"} 1",
             "localut_deadline_total{lane=\"interactive\","
             "verdict=\"met\"} 1",
             "localut_collective_seconds_total",
             "localut_lut_broadcast_seconds_total",
         }) {
        EXPECT_NE(text.find(needle), std::string::npos)
            << "missing series: " << needle << "\nin dump:\n" << text;
    }
}

TEST(Telemetry, TokenLanesNamesAndPriorities)
{
    // Prefill/Decode were appended to the enum (indices are part of the
    // dump format), and scheduling priority is decoupled from the index:
    // decode outranks everything, batch yields to everyone.
    static_assert(kDeadlineClasses == 4);
    EXPECT_EQ(static_cast<std::size_t>(DeadlineClass::Interactive), 0u);
    EXPECT_EQ(static_cast<std::size_t>(DeadlineClass::Batch), 1u);
    EXPECT_EQ(static_cast<std::size_t>(DeadlineClass::Prefill), 2u);
    EXPECT_EQ(static_cast<std::size_t>(DeadlineClass::Decode), 3u);
    EXPECT_STREQ(deadlineClassName(DeadlineClass::Prefill), "prefill");
    EXPECT_STREQ(deadlineClassName(DeadlineClass::Decode), "decode");
    EXPECT_LT(deadlineClassPriority(DeadlineClass::Decode),
              deadlineClassPriority(DeadlineClass::Interactive));
    EXPECT_LT(deadlineClassPriority(DeadlineClass::Interactive),
              deadlineClassPriority(DeadlineClass::Prefill));
    EXPECT_LT(deadlineClassPriority(DeadlineClass::Prefill),
              deadlineClassPriority(DeadlineClass::Batch));
}

TEST(Telemetry, TokenRecordersFeedPerLaneHistograms)
{
    Telemetry telemetry;
    telemetry.recordTtft(DeadlineClass::Prefill, 2e-3);
    telemetry.recordToken(DeadlineClass::Decode, 1e-3, /*met=*/true);
    telemetry.recordToken(DeadlineClass::Decode, 3e-3, /*met=*/false);
    // A re-batched stream's first token has no predecessor: a negative
    // gap records the verdict but skips the inter-token histogram.
    telemetry.recordToken(DeadlineClass::Decode, -1.0, /*met=*/true);

    const TelemetrySnapshot snap = telemetry.snapshot();
    const auto p = static_cast<std::size_t>(DeadlineClass::Prefill);
    const auto d = static_cast<std::size_t>(DeadlineClass::Decode);
    EXPECT_EQ(snap.lanes[p].ttft.count(), 1u);
    EXPECT_DOUBLE_EQ(snap.lanes[p].ttft.maxSeconds(), 2e-3);
    EXPECT_EQ(snap.lanes[d].interToken.count(), 2u);
    EXPECT_DOUBLE_EQ(snap.lanes[d].interToken.maxSeconds(), 3e-3);
    EXPECT_EQ(snap.lanes[d].tokens, 3u);
    EXPECT_EQ(snap.lanes[d].tokensMet, 2u);
    EXPECT_EQ(snap.lanes[d].tokensMissed, 1u);

    telemetry.reset();
    EXPECT_EQ(telemetry.snapshot().lanes[d].tokens, 0u);
    EXPECT_EQ(telemetry.snapshot().lanes[p].ttft.count(), 0u);
}

TEST(Telemetry, KvGaugesLandInSnapshotAndPrometheusDump)
{
    Telemetry telemetry;
    KvResidencyGauges gauges;
    gauges.residentBytes = 4096;
    gauges.streams = 3;
    gauges.spills = 2;
    gauges.refills = 1;
    gauges.sheds = 5;
    gauges.lutEvictions = 7;
    telemetry.recordKvResidency(gauges);
    telemetry.recordTtft(DeadlineClass::Prefill, 2e-3);
    telemetry.recordToken(DeadlineClass::Decode, 1e-3, true);
    telemetry.recordToken(DeadlineClass::Decode, 2e-3, false);

    const TelemetrySnapshot snap = telemetry.snapshot();
    EXPECT_EQ(snap.kv.residentBytes, 4096u);
    EXPECT_EQ(snap.kv.streams, 3u);
    EXPECT_EQ(snap.kv.lutEvictions, 7u);

    const std::string text = telemetry.prometheusText();
    for (const char* needle : {
             "# TYPE localut_kv_resident_bytes gauge",
             "localut_kv_resident_bytes 4096",
             "localut_kv_streams 3",
             "localut_kv_spills_total 2",
             "localut_kv_refills_total 1",
             "localut_kv_sheds_total 5",
             "localut_evictions_total{class=\"lut\"} 7",
             "localut_evictions_total{class=\"kv\"} 2",
             "localut_ttft_seconds_count{lane=\"prefill\"} 1",
             "localut_inter_token_seconds_count{lane=\"decode\"} 2",
             "localut_tokens_total{lane=\"decode\",verdict=\"met\"} 1",
             "localut_tokens_total{lane=\"decode\",verdict=\"missed\"} 1",
         }) {
        EXPECT_NE(text.find(needle), std::string::npos)
            << "missing series: " << needle << "\nin dump:\n" << text;
    }
}

TEST(Telemetry, NodeLabeledSeriesLandInPrometheusDump)
{
    Telemetry telemetry;
    telemetry.recordPlacement(0);
    telemetry.recordPlacement(0);
    telemetry.recordPlacement(1);
    telemetry.recordNodeResidency({{1024, 2048}, {512, 0}});
    BroadcastTierBytes tiers;
    tiers.intraBytes = 1e6;
    tiers.interRawBytes = 4e5;
    tiers.interBytes = 1e5;
    telemetry.recordBroadcastTiers(tiers);

    const TelemetrySnapshot snap = telemetry.snapshot();
    ASSERT_EQ(snap.nodeRequests.size(), 2u);
    EXPECT_EQ(snap.nodeRequests[0], 2u);
    EXPECT_EQ(snap.nodeRequests[1], 1u);
    ASSERT_EQ(snap.nodeResidency.size(), 2u);
    EXPECT_EQ(snap.nodeResidency[0].lutBytes, 1024u);
    EXPECT_EQ(snap.nodeResidency[0].kvBytes, 2048u);
    EXPECT_EQ(snap.nodeResidency[1].lutBytes, 512u);
    EXPECT_DOUBLE_EQ(snap.broadcastTiers.interRawBytes, 4e5);

    const std::string text = telemetry.prometheusText();
    for (const char* needle : {
             "# TYPE localut_node_requests_total counter",
             "localut_node_requests_total{node=\"0\"} 2",
             "localut_node_requests_total{node=\"1\"} 1",
             "localut_node_lut_resident_bytes{node=\"0\"} 1024",
             "localut_node_lut_resident_bytes{node=\"1\"} 512",
             "localut_node_kv_resident_bytes{node=\"0\"} 2048",
             "localut_broadcast_bytes_total{tier=\"intra\",kind=\"raw\"}",
             "localut_broadcast_bytes_total{tier=\"inter\",kind=\"raw\"}",
             "localut_broadcast_bytes_total{tier=\"inter\",kind=\"compressed\"}",
         }) {
        EXPECT_NE(text.find(needle), std::string::npos)
            << "missing series: " << needle << "\nin dump:\n" << text;
    }

    telemetry.reset();
    EXPECT_TRUE(telemetry.snapshot().nodeRequests.empty());
    EXPECT_TRUE(telemetry.snapshot().nodeResidency.empty());
}

} // namespace
} // namespace localut
