/**
 * @file
 * Bank-level PIM model tests (paper Section VI-K): packing-degree
 * selection under the 512 B unit constraint, and the Fig. 20/21 speedup
 * shapes (LUT wins at low bits, HBM-PIM's native fp16 wins at W1A16).
 */

#include <gtest/gtest.h>

#include "banklevel/bank_pim.h"

namespace localut {
namespace {

TEST(BankLevelPim, PackingDegreeRespectsUnitSize)
{
    const BankLevelPim pim((BankPimConfig()));
    // W1A3: 2^(1*8) * 2 B = 512 B exactly fills one LUT unit.
    EXPECT_EQ(pim.choosePackingDegree(QuantConfig::preset("W1A3")), 8u);
    // W4A4: 2^(4*2) * 2 B = 512 B -> p = 2.
    EXPECT_EQ(pim.choosePackingDegree(QuantConfig::preset("W4A4")), 2u);
    // FP16 activations: the canonical column count explodes; only p = 1
    // fits the bank budget.
    EXPECT_EQ(pim.choosePackingDegree(QuantConfig::fpPreset(1, 16)), 1u);
}

TEST(BankLevelPim, Fig20SpeedupShape)
{
    const BankLevelPim pim((BankPimConfig()));
    for (std::size_t dim : {1024u, 2048u, 4096u}) {
        const BankPimResult simd = pim.simdGemm(dim, dim, dim);
        const double w1a3 =
            simd.seconds /
            pim.lutGemm(dim, dim, dim, QuantConfig::preset("W1A3")).seconds;
        const double w4a4 =
            simd.seconds /
            pim.lutGemm(dim, dim, dim, QuantConfig::preset("W4A4")).seconds;
        // Paper: geomean 2.04x overall; W4A4 still 1.17x.
        EXPECT_GT(w1a3, 2.0) << dim;
        EXPECT_GT(w4a4, 1.0) << dim;
        EXPECT_LT(w4a4, 2.0) << dim;
        EXPECT_GT(w1a3, w4a4) << dim;
    }
}

TEST(BankLevelPim, Fig21FloatingPointShape)
{
    const BankLevelPim pim((BankPimConfig()));
    const std::size_t dim = 2048;
    const double simd = pim.simdGemm(dim, dim, dim).seconds;
    const double fp4 =
        simd / pim.lutGemm(dim, dim, dim, QuantConfig::fpPreset(1, 4))
                   .seconds;
    const double fp8 =
        simd / pim.lutGemm(dim, dim, dim, QuantConfig::fpPreset(1, 8))
                   .seconds;
    const double fp16 =
        simd / pim.lutGemm(dim, dim, dim, QuantConfig::fpPreset(1, 16))
                   .seconds;
    // Paper Fig. 21a: up to 2.99x at W1A4(fp), ~1.22x at W1A8, and a
    // slowdown (0.62x geomean) at W1A16 against native fp16 hardware.
    EXPECT_GT(fp4, 2.0);
    EXPECT_GT(fp8, 1.0);
    EXPECT_LT(fp16, 1.0);
    EXPECT_GT(fp4, fp8);
    EXPECT_GT(fp8, fp16);
}

TEST(BankLevelPim, EnergyAndCyclesPositive)
{
    const BankLevelPim pim((BankPimConfig()));
    const BankPimResult r =
        pim.lutGemm(512, 512, 512, QuantConfig::preset("W2A2"));
    EXPECT_GT(r.cycles, 0.0);
    EXPECT_GT(r.seconds, 0.0);
    EXPECT_GT(r.energyJ, 0.0);
    EXPECT_GE(r.p, 1u);
}

} // namespace
} // namespace localut
