/**
 * @file
 * TilePool / TileBatch contract tests: the tile-executor machinery must
 * survive concurrent run() callers (multiple in-flight batches),
 * nested run() from inside a tile (the historical self-deadlock),
 * throwing closures (deterministic first-error-wins, no lost
 * settlement notify), degenerate batch sizes, and destruction while
 * idle — all TSan-clean (the sanitize CI job runs this suite).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel.h"

namespace localut {
namespace {

TEST(TileBatchTest, ClaimChunkCoversRangeExactlyOnce)
{
    // Chunked claiming must still invoke every tile exactly once, for
    // chunk sizes that do and do not divide the range.
    for (std::size_t count : {1u, 2u, 7u, 64u, 129u}) {
        for (std::size_t chunk : {1u, 2u, 3u, 16u, 200u}) {
            std::vector<std::atomic<int>> hits(count);
            for (auto& h : hits) {
                h.store(0);
            }
            std::function<void(std::size_t)> fn = [&](std::size_t i) {
                hits[i].fetch_add(1);
            };
            TileBatch batch;
            batch.fn = &fn;
            batch.count = count;
            batch.claimChunk = chunk;
            EXPECT_TRUE(batch.drain());
            EXPECT_TRUE(batch.settled());
            EXPECT_TRUE(batch.fullyClaimed());
            for (std::size_t i = 0; i < count; ++i) {
                EXPECT_EQ(hits[i].load(), 1) << "tile " << i;
            }
        }
    }
}

TEST(TileBatchTest, ClaimChunkForBalancesLoad)
{
    // Every participant keeps several claims (load balance)...
    EXPECT_EQ(claimChunkFor(256, 4), 16u);
    EXPECT_EQ(claimChunkFor(32, 8), 1u);
    // ...tiny batches claim one tile at a time...
    EXPECT_EQ(claimChunkFor(3, 8), 1u);
    EXPECT_EQ(claimChunkFor(1, 2), 1u);
    // ...and a lone participant takes everything in one claim.
    EXPECT_EQ(claimChunkFor(100, 1), 100u);
    EXPECT_GE(claimChunkFor(0, 1), 1u);
}

TEST(TilePoolTest, RunsEveryTileExactlyOnce)
{
    TilePool pool(4);
    EXPECT_EQ(pool.concurrency(), 4u);
    for (std::size_t tiles : {0u, 1u, 2u, 5u, 64u, 1000u}) {
        std::vector<std::atomic<int>> hits(tiles);
        for (auto& h : hits) {
            h.store(0);
        }
        pool.run(tiles, [&](std::size_t i) { hits[i].fetch_add(1); });
        for (std::size_t i = 0; i < tiles; ++i) {
            EXPECT_EQ(hits[i].load(), 1) << "tiles=" << tiles << " i=" << i;
        }
    }
    EXPECT_EQ(pool.inFlightBatches(), 0u);
}

TEST(TilePoolTest, ZeroWorkerPoolDegradesToSerial)
{
    // TilePool(0) resolves to hardware_concurrency, never zero workers;
    // the serial fallback is exercised through the tiles==1 path.
    TilePool pool(1);
    std::atomic<int> hits{0};
    pool.run(1, [&](std::size_t) { hits.fetch_add(1); });
    EXPECT_EQ(hits.load(), 1);
}

TEST(TilePoolTest, ConcurrentRunCallersDoNotSerializeOrDeadlock)
{
    // Several threads sharing one pool, each submitting many batches:
    // the per-rank-session-queue pattern that used to degrade to
    // lockstep behind a single submit mutex.  Every batch must complete
    // with every tile run exactly once.
    TilePool pool(4);
    constexpr unsigned kSubmitters = 6;
    constexpr unsigned kBatches = 40;
    constexpr std::size_t kTiles = 33;
    std::vector<std::thread> submitters;
    std::vector<std::uint64_t> sums(kSubmitters, 0);
    for (unsigned s = 0; s < kSubmitters; ++s) {
        submitters.emplace_back([&pool, &sums, s] {
            std::uint64_t local = 0;
            for (unsigned b = 0; b < kBatches; ++b) {
                std::vector<std::atomic<std::uint32_t>> hits(kTiles);
                for (auto& h : hits) {
                    h.store(0);
                }
                pool.run(kTiles, [&hits](std::size_t i) {
                    hits[i].fetch_add(1);
                });
                for (std::size_t i = 0; i < kTiles; ++i) {
                    local += hits[i].load();
                }
            }
            sums[s] = local;
        });
    }
    for (std::thread& t : submitters) {
        t.join();
    }
    for (unsigned s = 0; s < kSubmitters; ++s) {
        EXPECT_EQ(sums[s], std::uint64_t{kBatches} * kTiles);
    }
    EXPECT_EQ(pool.inFlightBatches(), 0u);
}

TEST(TilePoolTest, NestedRunOnSamePoolDrainsInline)
{
    // Regression: a tile closure calling run() on the pool it is
    // already draining a tile of used to self-deadlock on the
    // submission state.  It must now drain inline and complete.
    TilePool pool(2);
    std::atomic<int> outer{0};
    std::atomic<int> inner{0};
    pool.run(8, [&](std::size_t) {
        outer.fetch_add(1);
        pool.run(4, [&](std::size_t) { inner.fetch_add(1); });
    });
    EXPECT_EQ(outer.load(), 8);
    EXPECT_EQ(inner.load(), 8 * 4);
}

TEST(TilePoolTest, DeeplyNestedRunStillCompletes)
{
    TilePool pool(2);
    std::atomic<int> leaves{0};
    pool.run(3, [&](std::size_t) {
        pool.run(3, [&](std::size_t) {
            pool.run(2, [&](std::size_t) { leaves.fetch_add(1); });
        });
    });
    EXPECT_EQ(leaves.load(), 3 * 3 * 2);
}

TEST(TilePoolTest, PropagatesSingleClosureException)
{
    TilePool pool(3);
    std::atomic<int> ran{0};
    try {
        pool.run(16, [&](std::size_t i) {
            ran.fetch_add(1);
            if (i == 7) {
                throw std::runtime_error("tile 7 failed");
            }
        });
        FAIL() << "expected the closure exception to propagate";
    } catch (const std::runtime_error& e) {
        EXPECT_STREQ(e.what(), "tile 7 failed");
    }
    // Every tile still ran (a throwing batch settles fully before the
    // submitter rethrows — no tiles are abandoned).
    EXPECT_EQ(ran.load(), 16);
    // The pool survives: the next batch runs normally.
    std::atomic<int> after{0};
    pool.run(8, [&](std::size_t) { after.fetch_add(1); });
    EXPECT_EQ(after.load(), 8);
}

TEST(TilePoolTest, FirstErrorWinsDeterministicallyWhenAllTilesThrow)
{
    // Concurrent throwers: the surviving exception is the one from the
    // LOWEST tile index, independent of thread interleaving — run many
    // rounds to give racing interleavings a chance to disagree.
    TilePool pool(4);
    for (unsigned round = 0; round < 25; ++round) {
        std::string caught;
        try {
            pool.run(32, [](std::size_t i) {
                throw std::runtime_error("tile " + std::to_string(i));
            });
        } catch (const std::runtime_error& e) {
            caught = e.what();
        }
        EXPECT_EQ(caught, "tile 0") << "round " << round;
    }
}

TEST(TilePoolTest, WorkersReleasedAfterThrowingBatch)
{
    // No notify may be lost on the throw path: after a batch where
    // every tile throws, all workers must be parked and reusable (a
    // lost release historically showed up as the NEXT run() hanging).
    TilePool pool(4);
    for (unsigned round = 0; round < 20; ++round) {
        EXPECT_THROW(pool.run(8,
                              [](std::size_t) {
                                  throw std::logic_error("boom");
                              }),
                     std::logic_error);
        std::atomic<int> ok{0};
        pool.run(12, [&](std::size_t) { ok.fetch_add(1); });
        EXPECT_EQ(ok.load(), 12);
    }
    EXPECT_EQ(pool.inFlightBatches(), 0u);
}

TEST(TilePoolTest, ExceptionInsideNestedRunPropagatesToOuterCaller)
{
    TilePool pool(2);
    EXPECT_THROW(pool.run(4,
                          [&](std::size_t) {
                              pool.run(2, [](std::size_t j) {
                                  if (j == 1) {
                                      throw std::runtime_error("inner");
                                  }
                              });
                          }),
                 std::runtime_error);
}

TEST(TilePoolTest, DestructorDuringIdleJoinsCleanly)
{
    // Construct, maybe run, destruct — including immediately after a
    // batch retires, when workers are mid-transition back to parking.
    for (unsigned round = 0; round < 10; ++round) {
        TilePool pool(3);
        if (round % 2 == 0) {
            std::atomic<int> hits{0};
            pool.run(5, [&](std::size_t) { hits.fetch_add(1); });
            EXPECT_EQ(hits.load(), 5);
        }
    }
}

TEST(TilePoolTest, StressManySmallBatchesAcrossSubmitters)
{
    // Fine-grained batches from racing submitters exercise the claim
    // chunking, the fully-claimed fast-pop, and batch-queue flow under
    // TSan.  Sum of all tile indices must come out exact.
    TilePool pool(3);
    constexpr unsigned kSubmitters = 4;
    constexpr unsigned kRounds = 150;
    std::vector<std::thread> submitters;
    std::vector<std::uint64_t> sums(kSubmitters, 0);
    for (unsigned s = 0; s < kSubmitters; ++s) {
        submitters.emplace_back([&pool, &sums, s] {
            std::uint64_t total = 0;
            for (unsigned r = 0; r < kRounds; ++r) {
                const std::size_t tiles = 1 + (r % 9);
                std::atomic<std::uint64_t> sum{0};
                pool.run(tiles, [&sum](std::size_t i) {
                    sum.fetch_add(i + 1);
                });
                total += sum.load();
            }
            sums[s] = total;
        });
    }
    for (std::thread& t : submitters) {
        t.join();
    }
    std::uint64_t expected = 0;
    for (unsigned r = 0; r < kRounds; ++r) {
        const std::size_t tiles = 1 + (r % 9);
        expected += tiles * (tiles + 1) / 2;
    }
    for (unsigned s = 0; s < kSubmitters; ++s) {
        EXPECT_EQ(sums[s], expected);
    }
}

TEST(TilePoolTest, SerialExecutorRunsInline)
{
    std::vector<std::size_t> order;
    serialTiles().run(5, [&](std::size_t i) { order.push_back(i); });
    const std::vector<std::size_t> expected = {0, 1, 2, 3, 4};
    EXPECT_EQ(order, expected);
    EXPECT_EQ(serialTiles().concurrency(), 1u);
}

} // namespace
} // namespace localut
