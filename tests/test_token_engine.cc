/**
 * @file
 * Token-level serving engine tests: continuous-batching decode is
 * bit-exact with serial and direct execution, per-step costs sum to the
 * whole-workload decode on every backend, steady-state decode pays zero
 * LUT rebroadcast while KV bytes grow monotonically, MRAM pressure
 * degrades from LUT eviction to KV shed, per-token SLO shedding, a
 * deadline-met goodput win for continuous batching under overload, and
 * thread-safety of engines sharing one session.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "backend/backend.h"
#include "serving/token_engine.h"

namespace localut {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TokenEngineOptions
smallEngineOptions()
{
    TokenEngineOptions options;
    options.model = TransformerConfig::opt125m();
    options.quant = QuantConfig::preset("W4A4");
    options.design = DesignPoint::LoCaLut;
    return options;
}

/** Raw KV bytes of one token across every layer of @p options' model. */
std::uint64_t
kvTokenBytes(const TokenEngineOptions& options)
{
    return static_cast<std::uint64_t>(options.model.layers) *
           options.model.kvBytesPerTokenPerLayer(options.kvBitsPerValue);
}

/** Sum of (end - start) over the decode steps of @p traces. */
double
decodeSeconds(const std::vector<StepTrace>& traces)
{
    double total = 0;
    for (const StepTrace& trace : traces) {
        if (trace.decode) {
            total += trace.endSeconds - trace.startSeconds;
        }
    }
    return total;
}

TEST(TokenEngine, PerStepDecodeSumsToWholeWorkloadOnEveryBackend)
{
    // The fig10-class invariant: serving a decode token-by-token through
    // TokenRequest costs exactly what the whole-workload decode() spec
    // costs (residency disabled isolates the steady-state shares; the
    // sums differ only by floating-point association).
    const unsigned promptLen = 16, steps = 5;
    for (const char* name : {"upmem", "bankpim", "host-cpu"}) {
        SCOPED_TRACE(name);
        InferenceSession session(name, SessionOptions{});
        TokenEngine engine(session, smallEngineOptions());
        TokenRequest request;
        request.promptLen = promptLen;
        request.decodeSteps = steps;
        engine.submit(request);
        const std::vector<StreamResult> results = engine.run();
        ASSERT_EQ(results.size(), 1u);
        EXPECT_EQ(results[0].status, StreamStatus::Completed);
        EXPECT_EQ(results[0].tokensEmitted(), steps);

        const TokenEngineOptions& opts = engine.options();
        const InferenceReport whole = session.run(session.compileUnsharded(
            WorkloadSpec::decode(opts.model, 1, promptLen, steps),
            opts.quant, opts.design));
        const double stepped = decodeSeconds(engine.stepTraces());
        EXPECT_NEAR(stepped, whole.timing.total,
                    1e-9 * whole.timing.total);
    }
}

TEST(TokenEngine, ContinuousBatchingIsBitExactWithSerialAndDirect)
{
    const GemmProblem probe = makeRandomProblem(
        96, 128, 8, QuantConfig::preset("W4A4"), 77);
    const unsigned steps = 3;

    SessionOptions sessionOptions;
    sessionOptions.residencyPolicy = ResidencyPolicy::CostAware;
    InferenceSession session("host-cpu", sessionOptions);

    // Direct: the probe executed straight through the session.
    TokenEngineOptions options = smallEngineOptions();
    const GemmResult direct = session.wait(session.submit(
        probe, options.design, /*computeValues=*/true, {}, {}));
    ASSERT_FALSE(direct.outInt.empty());

    const auto serve = [&](bool continuous) {
        TokenEngineOptions engineOptions = options;
        engineOptions.continuousBatching = continuous;
        TokenEngine engine(session, engineOptions);
        for (unsigned s = 0; s < 2; ++s) {
            TokenRequest request;
            request.promptLen = 4 + 4 * s;
            request.decodeSteps = steps;
            request.probe = true;
            request.probeProblem = probe;
            engine.submit(request);
        }
        return engine.run();
    };
    const std::vector<StreamResult> continuous = serve(true);
    const std::vector<StreamResult> serial = serve(false);
    ASSERT_EQ(continuous.size(), 2u);
    ASSERT_EQ(serial.size(), 2u);
    for (std::size_t s = 0; s < 2; ++s) {
        ASSERT_EQ(continuous[s].probeOutputs.size(), steps);
        ASSERT_EQ(serial[s].probeOutputs.size(), steps);
        for (unsigned t = 0; t < steps; ++t) {
            EXPECT_EQ(continuous[s].probeOutputs[t], direct.outInt);
            EXPECT_EQ(serial[s].probeOutputs[t], direct.outInt);
        }
    }
}

TEST(TokenEngine, SteadyDecodePaysNoRebroadcastWhileKvGrows)
{
    // The golden cold/steady ledger: the first decode step broadcasts
    // the tier's tables (Phase::LutBroadcast), every later step finds
    // them MRAM-resident and pays zero, while the stream's resident KV
    // bytes grow by exactly one token per step.
    const unsigned promptLen = 16, steps = 6;
    SessionOptions sessionOptions;
    sessionOptions.residencyPolicy = ResidencyPolicy::CostAware;
    InferenceSession session("upmem", sessionOptions);
    TokenEngine engine(session, smallEngineOptions());
    TokenRequest request;
    request.promptLen = promptLen;
    request.decodeSteps = steps;
    engine.submit(request);
    const std::vector<StreamResult> results = engine.run();
    ASSERT_EQ(results.size(), 1u);
    EXPECT_EQ(results[0].status, StreamStatus::Completed);

    const std::uint64_t perToken = kvTokenBytes(engine.options());
    std::vector<StepTrace> decodes;
    for (const StepTrace& trace : engine.stepTraces()) {
        if (trace.decode) {
            decodes.push_back(trace);
        }
    }
    ASSERT_EQ(decodes.size(), steps);
    EXPECT_GT(decodes[0].lutBroadcastSeconds, 0.0); // cold tier tables
    for (std::size_t t = 1; t < decodes.size(); ++t) {
        EXPECT_DOUBLE_EQ(decodes[t].lutBroadcastSeconds, 0.0);
    }
    for (std::size_t t = 0; t < decodes.size(); ++t) {
        EXPECT_GT(decodes[t].kvSeconds, 0.0); // every step appends KV
        // The last step's trace reads after the finished stream
        // released its KV; every earlier one shows the grown context.
        const std::uint64_t expected =
            t + 1 < decodes.size() ? perToken * (promptLen + t + 1) : 0;
        EXPECT_EQ(decodes[t].kvResidentBytes, expected);
    }
}

TEST(TokenEngine, MramPressureDegradesFromEvictionToShed)
{
    // Shrinking the shared MRAM budget flips the arbitration outcome:
    // generous budgets evict nothing, a budget that cannot hold tables
    // plus the grown KV forces evictions/spills (the stream still
    // completes), and a budget below the stream's own KV footprint
    // sheds it outright.
    const unsigned promptLen = 8, steps = 6;
    const auto serve = [&](std::uint64_t budget, InferenceSession** out) {
        SessionOptions sessionOptions;
        sessionOptions.residencyPolicy = ResidencyPolicy::CostAware;
        sessionOptions.mramBudgetBytes = budget;
        auto* session = new InferenceSession("host-cpu", sessionOptions);
        *out = session;
        TokenEngine engine(*session, smallEngineOptions());
        TokenRequest request;
        request.promptLen = promptLen;
        request.decodeSteps = steps;
        engine.submit(request);
        return engine.run();
    };

    // Calibrate: generous budget records the LUT bytes and the largest
    // KV footprint the trace ever needs.
    InferenceSession* calibration = nullptr;
    const std::vector<StreamResult> easy = serve(0, &calibration);
    ASSERT_EQ(easy[0].status, StreamStatus::Completed);
    const ResidencyStats calm = calibration->residencyStats();
    EXPECT_EQ(calm.evictions, 0u);
    EXPECT_EQ(calm.kvSpills, 0u);
    EXPECT_EQ(calm.kvSheds, 0u);
    const std::uint64_t lut = calibration->residency()->lutBytes(0);
    ASSERT_GT(lut, 0u);
    const unsigned units =
        std::max(1u, calibration->backend().memoryProfile().unitsPerRank);
    const std::uint64_t maxKvRaw =
        kvTokenBytes(smallEngineOptions()) * (promptLen + steps);
    const std::uint64_t maxKvFoot = (maxKvRaw + units - 1) / units;
    ASSERT_GT(maxKvFoot, 1u);
    ASSERT_GT(lut, 1u);
    delete calibration;

    // Pressure: the stream's grown KV always fits on its own, but
    // tables + full KV no longer coexist — something must go, and the
    // stream still completes.
    const std::uint64_t tightBudget = maxKvFoot + lut / 2;
    InferenceSession* pressured = nullptr;
    const std::vector<StreamResult> tight = serve(tightBudget, &pressured);
    EXPECT_EQ(tight[0].status, StreamStatus::Completed);
    const ResidencyStats strained = pressured->residencyStats();
    EXPECT_GE(strained.evictions + strained.kvSpills, 1u);
    EXPECT_EQ(strained.kvSheds, 0u);
    EXPECT_LE(pressured->residency()->lutBytes(0) +
                  pressured->residency()->kvBytes(0),
              tightBudget); // the budget invariant
    delete pressured;

    // Starvation: the stream's own KV can never fit — capacity shed.
    InferenceSession* starved = nullptr;
    const std::vector<StreamResult> shed =
        serve(maxKvFoot - 1, &starved);
    EXPECT_EQ(shed[0].status, StreamStatus::ShedCapacity);
    EXPECT_GE(starved->residencyStats().kvSheds, 1u);
    delete starved;
}

TEST(TokenEngine, SloShedsStreamsWithUnmeetableTokenDeadlines)
{
    SessionOptions sessionOptions;
    InferenceSession session("host-cpu", sessionOptions);
    const TokenEngineOptions base = smallEngineOptions();

    // Calibrate the per-token deadline against modeled costs: the TTFT
    // bound is met, but the absolute token schedule advances at half a
    // decode step per token, so virtual time overtakes it mid-stream.
    const double prefillSecs =
        session
            .projectCost(session.compileUnsharded(
                WorkloadSpec::prefill(base.model, 1, 4), base.quant,
                base.design))
            .totalSeconds();
    const double stepSecs =
        session
            .projectCost(session.compileUnsharded(
                WorkloadSpec::decodeStep(base.model, 1, 4), base.quant,
                base.design))
            .totalSeconds();
    TokenRequest request;
    request.promptLen = 4;
    request.decodeSteps = 64;
    request.ttftDeadlineSeconds = 2.0 * prefillSecs;
    request.tokenDeadlineSeconds = 0.5 * stepSecs;

    TokenEngineOptions slo = base;
    slo.policy = SchedulerPolicy::Slo;
    Telemetry telemetry;
    TokenEngine sloEngine(session, slo, &telemetry);
    sloEngine.submit(request);
    const std::vector<StreamResult> shed = sloEngine.run();
    ASSERT_EQ(shed.size(), 1u);
    EXPECT_EQ(shed[0].status, StreamStatus::ShedDeadline);
    EXPECT_TRUE(shed[0].ttftMet);
    EXPECT_LT(shed[0].tokensEmitted(), request.decodeSteps);
    const TelemetrySnapshot snap = telemetry.snapshot();
    EXPECT_GE(snap.shedDeadline[static_cast<std::size_t>(
                  DeadlineClass::Decode)],
              1u);

    // The Fifo baseline never sheds: every token is emitted, the late
    // ones just miss.
    TokenEngineOptions fifo = base;
    fifo.policy = SchedulerPolicy::Fifo;
    TokenEngine fifoEngine(session, fifo);
    fifoEngine.submit(request);
    const std::vector<StreamResult> served = fifoEngine.run();
    ASSERT_EQ(served.size(), 1u);
    EXPECT_EQ(served[0].status, StreamStatus::Completed);
    EXPECT_EQ(served[0].tokensEmitted(), request.decodeSteps);
    EXPECT_GE(served[0].tokensMissed, 1u);
}

TEST(TokenEngine, ContinuousBatchingBeatsSerialGoodputUnderOverload)
{
    // Four simultaneous conversations on one rank is >= 2x overload for
    // a serial server.  Deadlines are calibrated from the model: wide
    // enough that batched decode meets every token, tight enough that a
    // serial server's later streams cannot.
    const unsigned promptLen = 8, steps = 8, streams = 4;
    SessionOptions sessionOptions;
    sessionOptions.residencyPolicy = ResidencyPolicy::CostAware;
    InferenceSession session("host-cpu", sessionOptions);
    const TokenEngineOptions base = smallEngineOptions();

    const auto project = [&](const WorkloadSpec& spec) {
        return session
            .projectCost(session.compileUnsharded(spec, base.quant,
                                                  base.design))
            .totalSeconds();
    };
    const double prefillSecs =
        project(WorkloadSpec::prefill(base.model, 1, promptLen));
    const double step4 = project(WorkloadSpec::decodeStep(
        base.model, streams, promptLen + steps));
    const std::uint64_t tokenBytes = kvTokenBytes(base);
    const double kvToken =
        session.residency()->broadcastSeconds(tokenBytes);
    const double kvPrompt =
        session.residency()->broadcastSeconds(tokenBytes * promptLen);
    const double ttft =
        streams * (prefillSecs + kvPrompt) + 2.0 * (step4 + 4 * kvToken);
    const double perToken = 3.0 * step4 + 8.0 * kvToken;

    const auto goodput = [&](bool continuous, SchedulerPolicy policy) {
        TokenEngineOptions options = base;
        options.continuousBatching = continuous;
        options.policy = policy;
        TokenEngine engine(session, options);
        for (unsigned s = 0; s < streams; ++s) {
            TokenRequest request;
            request.promptLen = promptLen;
            request.decodeSteps = steps;
            request.ttftDeadlineSeconds = ttft;
            request.tokenDeadlineSeconds = perToken;
            engine.submit(request);
        }
        unsigned met = 0;
        for (const StreamResult& result : engine.run()) {
            met += result.tokensMet;
        }
        return met;
    };

    const unsigned continuous = goodput(true, SchedulerPolicy::Slo);
    const unsigned serial = goodput(false, SchedulerPolicy::Fifo);
    EXPECT_EQ(continuous, streams * steps); // batched: every token met
    EXPECT_LT(serial, continuous); // serial tail blows the schedule
}

TEST(TokenEngine, EnginesSharingASessionAreThreadSafe)
{
    SessionOptions sessionOptions;
    sessionOptions.residencyPolicy = ResidencyPolicy::CostAware;
    InferenceSession session("host-cpu", sessionOptions);
    Telemetry telemetry;

    const auto serve = [&] {
        TokenEngine engine(session, smallEngineOptions(), &telemetry);
        for (unsigned s = 0; s < 4; ++s) {
            TokenRequest request;
            request.promptLen = 4 + s;
            request.decodeSteps = 4;
            engine.submit(request);
        }
        const std::vector<StreamResult> results = engine.run();
        ASSERT_EQ(results.size(), 4u);
        for (const StreamResult& result : results) {
            EXPECT_EQ(result.status, StreamStatus::Completed);
            EXPECT_EQ(result.tokensEmitted(), 4u);
        }
    };
    std::thread a(serve), b(serve);
    a.join();
    b.join();
    EXPECT_EQ(telemetry.snapshot()
                  .lanes[static_cast<std::size_t>(DeadlineClass::Decode)]
                  .tokens,
              2u * 4u * 4u);
}

TEST(TokenEngine, AbsoluteDeadlineScheduleAnchorsAtTtftBound)
{
    InferenceSession session("host-cpu", SessionOptions{});
    TokenEngine engine(session, smallEngineOptions());
    TokenRequest request;
    request.promptLen = 4;
    request.decodeSteps = 3;
    request.ttftDeadlineSeconds = 100.0; // generous, finite anchor
    request.tokenDeadlineSeconds = 1.0;
    engine.submit(request);
    const std::vector<StreamResult> results = engine.run();
    ASSERT_EQ(results.size(), 1u);
    ASSERT_EQ(results[0].tokenDeadlines.size(), 3u);
    for (unsigned t = 0; t < 3; ++t) {
        EXPECT_DOUBLE_EQ(results[0].tokenDeadlines[t],
                         100.0 + (t + 1) * 1.0);
    }
    EXPECT_EQ(results[0].tokensMet, 3u);
    EXPECT_EQ(streamStatusName(results[0].status),
              std::string("completed"));
}

} // namespace
} // namespace localut
