/**
 * @file
 * End-to-end transformer runner tests: model configs, prefill/decode
 * scaling, batch-size behaviour, and the Fig. 10 end-to-end ordering.
 */

#include <gtest/gtest.h>

#include "nn/inference.h"

namespace localut {
namespace {

TEST(TransformerConfig, ParameterCounts)
{
    // BERT-base / ViT-Base transformer stacks are ~85M parameters
    // (embeddings excluded).
    const auto bert = TransformerConfig::bertBase();
    EXPECT_NEAR(static_cast<double>(bert.parameterCount()), 85e6, 1e6);
    EXPECT_EQ(bert.headDim(), 64u);
    EXPECT_EQ(TransformerConfig::vitBase().defaultSeqLen, 197u);
}

TEST(TransformerRunner, PrefillScalesWithLayersAndBatch)
{
    const PimSystemConfig sys = PimSystemConfig::upmemServer();
    const TransformerRunner runner(sys, QuantConfig::preset("W1A3"),
                                   DesignPoint::LoCaLut);
    auto model = TransformerConfig::bertBase();
    const double t1 = runner.prefill(model, 1, 128).timing.total;
    model.layers = 24;
    const double t2 = runner.prefill(model, 1, 128).timing.total;
    EXPECT_NEAR(t2 / t1, 2.0, 0.05);

    model.layers = 12;
    const double b1 = runner.prefill(model, 8, 128).timing.total;
    const double b4 = runner.prefill(model, 32, 128).timing.total;
    EXPECT_GT(b4, b1); // more tokens, more time
    EXPECT_LT(b4, 4.5 * b1);
}

TEST(TransformerRunner, DecodeScalesWithSteps)
{
    const PimSystemConfig sys = PimSystemConfig::upmemServer();
    const TransformerRunner runner(sys, QuantConfig::preset("W4A4"),
                                   DesignPoint::LoCaLut);
    const auto model = TransformerConfig::opt125m();
    const double t4 = runner.decode(model, 8, 128, 4).timing.total;
    const double t16 = runner.decode(model, 8, 128, 16).timing.total;
    EXPECT_NEAR(t16 / t4, 4.0, 0.5);
}

TEST(TransformerRunner, Fig10EndToEndOrdering)
{
    // Paper Fig. 10: LoCaLUT beats Naive and LTC end to end on all models.
    const PimSystemConfig sys = PimSystemConfig::upmemServer();
    struct Case {
        TransformerConfig model;
        const char* preset;
    };
    const Case cases[] = {
        {TransformerConfig::bertBase(), "W1A3"},
        {TransformerConfig::bertBase(), "W4A4"},
        {TransformerConfig::vitBase(), "W2A2"},
    };
    for (const auto& c : cases) {
        auto timeFor = [&](DesignPoint dp) {
            const TransformerRunner runner(sys, QuantConfig::preset(c.preset),
                                           dp);
            return runner.prefill(c.model, 32, c.model.defaultSeqLen)
                .timing.total;
        };
        const double naive = timeFor(DesignPoint::NaivePim);
        const double ltc = timeFor(DesignPoint::Ltc);
        const double op = timeFor(DesignPoint::OpLut);
        const double localut = timeFor(DesignPoint::LoCaLut);
        EXPECT_LT(localut, naive) << c.model.name << " " << c.preset;
        EXPECT_LT(localut, ltc) << c.model.name << " " << c.preset;
        EXPECT_LE(localut, op) << c.model.name << " " << c.preset;
    }
}

TEST(TransformerRunner, BreakdownHasGemmAndHostParts)
{
    const PimSystemConfig sys = PimSystemConfig::upmemServer();
    const TransformerRunner runner(sys, QuantConfig::preset("W1A3"),
                                   DesignPoint::LoCaLut);
    const InferenceReport r =
        runner.prefill(TransformerConfig::bertBase(), 8, 128);
    EXPECT_GT(r.gemmSeconds, 0.0);
    EXPECT_GT(r.hostOpSeconds, 0.0);
    EXPECT_NEAR(r.timing.total, r.gemmSeconds + r.hostOpSeconds, 1e-9);
}

TEST(MakeShapeOnlyProblem, HasShapesNoCodes)
{
    const auto p =
        makeShapeOnlyProblem(16, 32, 8, QuantConfig::preset("W2A2"));
    EXPECT_EQ(p.m(), 16u);
    EXPECT_EQ(p.k(), 32u);
    EXPECT_EQ(p.n(), 8u);
    EXPECT_TRUE(p.w.codes.empty());
}

} // namespace
} // namespace localut
