/**
 * @file
 * Unit + property tests for the LUT structures: operation-packed LUT,
 * canonical LUT (paper Fig. 4), reordering LUT (Fig. 5), capacity model
 * (Fig. 6), and the canonicalization invariant itself.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/bitops.h"
#include "common/rng.h"
#include "upmem/params.h"
#include "lut/canonical_lut.h"
#include "lut/canonicalizer.h"
#include "lut/capacity.h"
#include "lut/packed_lut.h"
#include "lut/reordering_lut.h"

namespace localut {
namespace {

struct ShapeParam {
    const char* preset;
    unsigned p;
};

std::ostream&
operator<<(std::ostream& os, const ShapeParam& s)
{
    return os << s.preset << "_p" << s.p;
}

class LutShapeSweep : public ::testing::TestWithParam<ShapeParam>
{
  protected:
    LutShape
    shape() const
    {
        return LutShape(QuantConfig::preset(GetParam().preset),
                        GetParam().p);
    }
};

/** Brute-force dot product of decoded codes. */
std::int32_t
dotInt(const LutShape& s, std::span<const std::uint16_t> w,
       std::span<const std::uint16_t> a)
{
    std::int32_t acc = 0;
    for (unsigned i = 0; i < s.p; ++i) {
        acc += s.wCodec.decodeInt(w[i]) * s.aCodec.decodeInt(a[i]);
    }
    return acc;
}

TEST_P(LutShapeSweep, PackedLutMatchesBruteForce)
{
    const LutShape s = shape();
    if (s.opColumns() * s.weightRows() > (1u << 22)) {
        GTEST_SKIP() << "too large for exhaustive check";
    }
    const OperationPackedLut lut(s);
    Rng rng(99);
    std::vector<std::uint16_t> w(s.p), a(s.p);
    for (int iter = 0; iter < 500; ++iter) {
        for (unsigned i = 0; i < s.p; ++i) {
            w[i] = static_cast<std::uint16_t>(
                rng.nextBounded(s.wCodec.cardinality()));
            a[i] = static_cast<std::uint16_t>(
                rng.nextBounded(s.aCodec.cardinality()));
        }
        EXPECT_EQ(lut.lookupInt(packCodes(w, s.bw()), packCodes(a, s.ba())),
                  dotInt(s, w, a));
    }
}

TEST_P(LutShapeSweep, CanonicalLutMatchesBruteForceViaCanonicalization)
{
    const LutShape s = shape();
    const CanonicalLut canon(s);
    const ActivationCanonicalizer canonicalizer(s);
    Rng rng(7);
    std::vector<std::uint16_t> w(s.p), a(s.p), wSorted(s.p);
    std::vector<std::uint8_t> perm(s.p);
    for (int iter = 0; iter < 500; ++iter) {
        for (unsigned i = 0; i < s.p; ++i) {
            w[i] = static_cast<std::uint16_t>(
                rng.nextBounded(s.wCodec.cardinality()));
            a[i] = static_cast<std::uint16_t>(
                rng.nextBounded(s.aCodec.cardinality()));
        }
        const CanonicalGroup g = canonicalizer.canonicalize(a);
        permutationUnrank(g.permRank, perm);
        for (unsigned i = 0; i < s.p; ++i) {
            wSorted[i] = w[perm[i]];
        }
        EXPECT_EQ(
            canon.lookupInt(g.multisetRank, packCodes(wSorted, s.bw())),
            dotInt(s, w, a));
    }
}

TEST_P(LutShapeSweep, ReorderingLutMatchesExplicitPermutation)
{
    const LutShape s = shape();
    const ReorderingLut reorder(s);
    Rng rng(21);
    std::vector<std::uint16_t> w(s.p), expected(s.p);
    std::vector<std::uint8_t> perm(s.p);
    for (int iter = 0; iter < 300; ++iter) {
        for (unsigned i = 0; i < s.p; ++i) {
            w[i] = static_cast<std::uint16_t>(
                rng.nextBounded(s.wCodec.cardinality()));
        }
        const std::uint32_t permRank = static_cast<std::uint32_t>(
            rng.nextBounded(factorial(s.p)));
        permutationUnrank(permRank, perm);
        for (unsigned i = 0; i < s.p; ++i) {
            expected[i] = w[perm[i]];
        }
        EXPECT_EQ(reorder.lookup(permRank, packCodes(w, s.bw())),
                  packCodes(expected, s.bw()));
    }
}

TEST_P(LutShapeSweep, JointPermutationInvariance)
{
    // The core canonicalization insight (paper Fig. 4a): the inner product
    // is invariant under any joint permutation of (w_i, a_i) pairs, so the
    // canonical column must agree for all permuted variants.
    const LutShape s = shape();
    const ActivationCanonicalizer canonicalizer(s);
    Rng rng(3);
    std::vector<std::uint16_t> a(s.p), aPerm(s.p);
    std::vector<std::uint8_t> perm(s.p);
    for (int iter = 0; iter < 200; ++iter) {
        for (unsigned i = 0; i < s.p; ++i) {
            a[i] = static_cast<std::uint16_t>(
                rng.nextBounded(s.aCodec.cardinality()));
        }
        const std::uint32_t permRank = static_cast<std::uint32_t>(
            rng.nextBounded(factorial(s.p)));
        permutationUnrank(permRank, perm);
        for (unsigned i = 0; i < s.p; ++i) {
            aPerm[i] = a[perm[i]];
        }
        EXPECT_EQ(canonicalizer.canonicalize(a).multisetRank,
                  canonicalizer.canonicalize(aPerm).multisetRank);
    }
}

TEST_P(LutShapeSweep, ColumnSliceMatchesPointLookups)
{
    const LutShape s = shape();
    const CanonicalLut canon(s);
    Rng rng(17);
    for (int iter = 0; iter < 20; ++iter) {
        const std::uint64_t col = rng.nextBounded(canon.cols());
        const auto slice = canon.columnInt(col);
        ASSERT_EQ(slice.size(), canon.rows());
        for (std::uint64_t r = 0; r < canon.rows(); r += 7) {
            EXPECT_EQ(slice[r], canon.lookupInt(col, r));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LutShapeSweep,
    ::testing::Values(ShapeParam{"W1A3", 1}, ShapeParam{"W1A3", 2},
                      ShapeParam{"W1A3", 3}, ShapeParam{"W1A3", 4},
                      ShapeParam{"W1A3", 5}, ShapeParam{"W1A3", 6},
                      ShapeParam{"W1A3", 7}, ShapeParam{"W1A3", 8},
                      ShapeParam{"W1A4", 2}, ShapeParam{"W1A4", 4},
                      ShapeParam{"W1A4", 6}, ShapeParam{"W2A2", 2},
                      ShapeParam{"W2A2", 3}, ShapeParam{"W2A2", 4},
                      ShapeParam{"W2A2", 5}, ShapeParam{"W4A4", 1},
                      ShapeParam{"W4A4", 2}, ShapeParam{"W4A4", 3},
                      ShapeParam{"W1A2", 6}, ShapeParam{"W1A2", 8},
                      ShapeParam{"W2A4", 2}, ShapeParam{"W2A4", 3},
                      ShapeParam{"W1A8", 2}, ShapeParam{"W1A8", 3}));

TEST(CanonicalLut, VirtualModeMatchesMaterialized)
{
    const LutShape s(QuantConfig::preset("W1A3"), 4);
    const CanonicalLut mat(s);
    const CanonicalLut virt(s, /*materializeLimitBytes=*/0);
    ASSERT_TRUE(mat.materialized());
    ASSERT_FALSE(virt.materialized());
    for (std::uint64_t col = 0; col < mat.cols(); ++col) {
        for (std::uint64_t r = 0; r < mat.rows(); ++r) {
            ASSERT_EQ(mat.lookupInt(col, r), virt.lookupInt(col, r));
        }
        EXPECT_EQ(mat.columnInt(col), virt.columnInt(col));
    }
}

TEST(Capacity, MatchesClosedForms)
{
    const LutShape s(QuantConfig::preset("W1A3"), 4);
    EXPECT_EQ(opPackedLutBytes(s), 2ull << (4 * 4));
    EXPECT_EQ(canonicalLutBytes(s), 2ull * 16 * binomial(11, 4));
    EXPECT_EQ(reorderingLutBytes(s), 2ull * 16 * 24);
}

TEST(Capacity, PaperFig6ExactEndpoints)
{
    // Paper Fig. 6 (W1A3): total reduction rate 1.68x at p = 2 and 358x
    // at p = 8; these are exact with 2-byte-aligned reordering entries.
    const QuantConfig cfg = QuantConfig::preset("W1A3");
    EXPECT_NEAR(totalReductionRate(LutShape(cfg, 2)), 1.684, 0.01);
    EXPECT_NEAR(totalReductionRate(LutShape(cfg, 8)), 358.4, 1.0);
}

TEST(Capacity, PaperReductionRange)
{
    // Fig. 6: total reduction (OP vs canonical+reordering) spans roughly
    // 1.68x at p = 2 to 358x at p = 8 for W1A3.
    const QuantConfig cfg = QuantConfig::preset("W1A3");
    const double r2 = totalReductionRate(LutShape(cfg, 2));
    const double r8 = totalReductionRate(LutShape(cfg, 8));
    EXPECT_GT(r2, 1.3);
    EXPECT_LT(r2, 2.5);
    EXPECT_GT(r8, 250.0);
    EXPECT_LT(r8, 700.0);
    // Monotonically improving with p.
    double prev = 0.0;
    for (unsigned p = 2; p <= 8; ++p) {
        const double r = totalReductionRate(LutShape(cfg, p));
        EXPECT_GT(r, prev);
        prev = r;
    }
}

TEST(Capacity, PaperPackingDegrees)
{
    // Paper Section V: with half of MRAM/WRAM devoted to LUTs, W1A3
    // reaches p_DRAM ~ 8; without canonicalization p_local drops to 3.
    const DpuParams dpu;
    const QuantConfig cfg = QuantConfig::preset("W1A3");
    EXPECT_EQ(maxPackingDegree(dpu.mramLutBudget(), cfg, true, true), 8u);
    EXPECT_EQ(maxPackingDegree(dpu.wramLutBudget(), cfg, false, false), 3u);
    EXPECT_EQ(maxPackingDegree(dpu.wramLutBudget(), cfg, true, true), 4u);
}

TEST(Capacity, OverflowSaturates)
{
    const LutShape s(QuantConfig::preset("W4A4"), 12);
    EXPECT_EQ(opPackedLutBytes(s),
              std::numeric_limits<std::uint64_t>::max());
    EXPECT_TRUE(lutBytesSaturated(opPackedLutBytes(s)));
    EXPECT_FALSE(lutBytesSaturated(localutBytes(
        LutShape(QuantConfig::preset("W1A3"), 8))));
}

TEST(Capacity, SaturatedReductionRateIsInfiniteNotBogusFinite)
{
    // W4A4 at p = 8: (bw+ba)*p = 64 bits, so opPackedLutBytes saturates
    // at UINT64_MAX while the LoCaLUT pair stays real.  The reduction
    // rate must report +inf — the old UINT64_MAX / localutBytes quotient
    // was a huge-but-finite bogus ratio.
    const LutShape sat(QuantConfig::preset("W4A4"), 8);
    ASSERT_TRUE(lutBytesSaturated(opPackedLutBytes(sat)));
    ASSERT_FALSE(lutBytesSaturated(localutBytes(sat)));
    EXPECT_TRUE(std::isinf(totalReductionRate(sat)));
    EXPECT_GT(totalReductionRate(sat), 0.0);

    // Just below the boundary the ratio is still finite and real.
    const LutShape below(QuantConfig::preset("W4A4"), 7);
    ASSERT_FALSE(lutBytesSaturated(opPackedLutBytes(below)));
    EXPECT_TRUE(std::isfinite(totalReductionRate(below)));
}

TEST(Capacity, MaxPackingDegreeSaturationGuards)
{
    const QuantConfig cfg = QuantConfig::preset("W4A4");

    // A zero budget fits nothing.
    EXPECT_EQ(maxPackingDegree(0, cfg, false, false), 0u);
    EXPECT_EQ(maxPackingDegree(0, cfg, true, true), 0u);

    // A saturated budget must not admit a saturated byte count: W4A4
    // op-packed saturates at p = 8, so the best honest answer under an
    // unbounded budget is p = 7 — not pMax picked by comparing two
    // UINT64_MAX sentinels.
    constexpr std::uint64_t kMaxBudget =
        std::numeric_limits<std::uint64_t>::max();
    EXPECT_EQ(maxPackingDegree(kMaxBudget, cfg, false, false), 7u);

    // Exactly at the largest representable fit the degree is accepted...
    const std::uint64_t p7Bytes =
        opPackedLutBytes(LutShape(cfg, 7));
    ASSERT_FALSE(lutBytesSaturated(p7Bytes));
    EXPECT_EQ(maxPackingDegree(p7Bytes, cfg, false, false), 7u);
    // ...and one byte less rolls back to the previous degree.
    EXPECT_EQ(maxPackingDegree(p7Bytes - 1, cfg, false, false), 6u);
}

} // namespace
} // namespace localut
