/**
 * @file
 * Delta/RLE broadcast codec: bit-exact round trips (fuzzed over random
 * LUT table sets and packed-weight buffers, plus empty and
 * incompressible inputs), determinism, the worst-case size bound, and
 * the measured compression ratio on real materialized tables.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "lut/broadcast_codec.h"
#include "lut/canonical_lut.h"
#include "lut/lut_shape.h"
#include "quant/quantizer.h"

namespace localut {
namespace {

std::vector<std::uint8_t>
roundTrip(const std::vector<std::uint8_t>& raw)
{
    const std::vector<std::uint8_t> encoded = lutBroadcastEncode(raw);
    EXPECT_LE(encoded.size(), lutBroadcastMaxEncodedSize(raw.size()));
    return lutBroadcastDecode(encoded);
}

TEST(BroadcastCodec, EmptyInput)
{
    const std::vector<std::uint8_t> raw;
    const std::vector<std::uint8_t> encoded = lutBroadcastEncode(raw);
    EXPECT_EQ(encoded.size(), kLutBroadcastHeaderBytes);
    EXPECT_TRUE(lutBroadcastDecode(encoded).empty());
}

TEST(BroadcastCodec, TinyInputs)
{
    for (std::size_t size : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                             std::size_t{127}, std::size_t{128},
                             std::size_t{129}, std::size_t{255},
                             std::size_t{256}, std::size_t{257}}) {
        std::vector<std::uint8_t> raw(size);
        for (std::size_t i = 0; i < size; ++i) {
            raw[i] = static_cast<std::uint8_t>(i * 7 + 3);
        }
        EXPECT_EQ(roundTrip(raw), raw) << "size " << size;
    }
}

TEST(BroadcastCodec, AllZeros)
{
    const std::vector<std::uint8_t> raw(100000, 0);
    const std::vector<std::uint8_t> encoded = lutBroadcastEncode(raw);
    EXPECT_EQ(lutBroadcastDecode(encoded), raw);
    // 100000 zeros collapse into ceil(100000/128) run tokens.
    EXPECT_LT(encoded.size(), raw.size() / 100);
}

TEST(BroadcastCodec, IncompressibleRandomBytes)
{
    Rng rng(7);
    std::vector<std::uint8_t> raw(65537);
    for (auto& byte : raw) {
        byte = static_cast<std::uint8_t>(rng.nextU64());
    }
    const std::vector<std::uint8_t> encoded = lutBroadcastEncode(raw);
    EXPECT_EQ(lutBroadcastDecode(encoded), raw);
    // Random bytes cannot shrink, but the expansion bound must hold.
    EXPECT_LE(encoded.size(), lutBroadcastMaxEncodedSize(raw.size()));
}

TEST(BroadcastCodec, Deterministic)
{
    Rng rng(11);
    std::vector<std::uint8_t> raw(4096);
    for (auto& byte : raw) {
        byte = static_cast<std::uint8_t>(rng.nextBounded(16));
    }
    EXPECT_EQ(lutBroadcastEncode(raw), lutBroadcastEncode(raw));
}

TEST(BroadcastCodec, FuzzRandomTableSets)
{
    Rng rng(42);
    for (int iter = 0; iter < 200; ++iter) {
        const std::size_t elems = rng.nextBounded(5000);
        std::vector<std::int32_t> table(elems);
        // Small-magnitude entries with slow column-major drift — the
        // shape real canonical/op-packed LUT tables have.
        std::int32_t value = static_cast<std::int32_t>(
            rng.nextBounded(65) - 32);
        for (auto& entry : table) {
            value += static_cast<std::int32_t>(rng.nextBounded(5)) - 2;
            entry = value;
        }
        std::vector<std::uint8_t> raw(table.size() * sizeof(std::int32_t));
        if (!raw.empty()) {
            std::memcpy(raw.data(), table.data(), raw.size());
        }
        EXPECT_EQ(roundTrip(raw), raw) << "iter " << iter;
    }
}

TEST(BroadcastCodec, FuzzPackedWeightBuffers)
{
    Rng rng(1234);
    for (int iter = 0; iter < 200; ++iter) {
        const std::size_t size = rng.nextBounded(20000);
        std::vector<std::uint8_t> raw(size);
        // Packed low-bit weight codes: few distinct symbols, bursty.
        std::uint8_t symbol = 0;
        for (auto& byte : raw) {
            if (rng.nextBounded(8) == 0) {
                symbol = static_cast<std::uint8_t>(rng.nextBounded(256));
            }
            byte = symbol;
        }
        EXPECT_EQ(roundTrip(raw), raw) << "iter " << iter;
    }
}

TEST(BroadcastCodec, TryDecodeRejectsTruncationAtEveryLength)
{
    // A valid stream cut at *any* prefix length must come back as a
    // typed error with no partial bytes — never decode garbage, never
    // abort.  Short prefixes lose the header; longer ones lose body
    // bytes the checksum or block walker catches.
    Rng rng(99);
    std::vector<std::uint8_t> raw(777);
    std::uint8_t symbol = 0;
    for (auto& byte : raw) {
        if (rng.nextBounded(6) == 0) {
            symbol = static_cast<std::uint8_t>(rng.nextBounded(256));
        }
        byte = symbol;
    }
    const std::vector<std::uint8_t> encoded = lutBroadcastEncode(raw);
    for (std::size_t cut = 0; cut < encoded.size(); ++cut) {
        std::vector<std::uint8_t> out;
        const LutCodecStatus status =
            lutBroadcastTryDecode(encoded.data(), cut, out);
        EXPECT_NE(status, LutCodecStatus::Ok) << "cut " << cut;
        EXPECT_TRUE(out.empty()) << "cut " << cut;
    }
    // The intact stream still decodes exactly.
    std::vector<std::uint8_t> out;
    ASSERT_EQ(lutBroadcastTryDecode(encoded.data(), encoded.size(), out),
              LutCodecStatus::Ok);
    EXPECT_EQ(out, raw);
}

TEST(BroadcastCodec, TryDecodeDetectsEverySingleBitFlip)
{
    // CRC32 guarantees detection of any 1-bit corruption: flip each bit
    // of the stream in turn and require a non-Ok status (or, for flips
    // inside the CRC field itself, a checksum mismatch).
    std::vector<std::uint8_t> raw(512);
    for (std::size_t i = 0; i < raw.size(); ++i) {
        raw[i] = static_cast<std::uint8_t>(i * 31 + 7);
    }
    const std::vector<std::uint8_t> encoded = lutBroadcastEncode(raw);
    for (std::size_t byte = 0; byte < encoded.size(); ++byte) {
        for (unsigned bit = 0; bit < 8; ++bit) {
            std::vector<std::uint8_t> flipped = encoded;
            flipped[byte] =
                static_cast<std::uint8_t>(flipped[byte] ^ (1u << bit));
            std::vector<std::uint8_t> out;
            const LutCodecStatus status = lutBroadcastTryDecode(
                flipped.data(), flipped.size(), out);
            EXPECT_NE(status, LutCodecStatus::Ok)
                << "byte " << byte << " bit " << bit;
            EXPECT_TRUE(out.empty());
        }
    }
}

TEST(BroadcastCodec, TryDecodeSurvivesRandomGarbage)
{
    // Arbitrary byte soup (including soup wearing a valid magic) must
    // produce a typed rejection, never a crash or over-allocation.
    Rng rng(2718);
    for (int iter = 0; iter < 500; ++iter) {
        std::vector<std::uint8_t> junk(rng.nextBounded(4096));
        for (auto& byte : junk) {
            byte = static_cast<std::uint8_t>(rng.nextU64());
        }
        if (iter % 2 == 0 && junk.size() >= 4) {
            junk[0] = 'L';
            junk[1] = 'B';
            junk[2] = 'C';
            junk[3] = '1';
        }
        std::vector<std::uint8_t> out;
        const LutCodecStatus status =
            lutBroadcastTryDecode(junk.data(), junk.size(), out);
        EXPECT_NE(status, LutCodecStatus::Ok) << "iter " << iter;
        EXPECT_TRUE(out.empty());
    }
}

TEST(BroadcastCodec, StatusNamesAreStable)
{
    EXPECT_STREQ(lutCodecStatusName(LutCodecStatus::Ok), "ok");
    EXPECT_STREQ(lutCodecStatusName(LutCodecStatus::BadChecksum),
                 "bad_checksum");
    EXPECT_STREQ(lutCodecStatusName(LutCodecStatus::Truncated),
                 "truncated");
}

TEST(BroadcastCodec, StructuredTablesCompressWell)
{
    // A real materialized canonical LUT (the bytes a LoCaLut table-set
    // broadcast actually moves) must shrink substantially: entries are
    // small-magnitude int32s whose high bytes are almost all 0/0xff.
    const LutShape shape(QuantConfig::preset("W4A4"), 2);
    const CanonicalLut lut(shape);
    ASSERT_NE(lut.dataInt(), nullptr);
    const std::size_t bytes = static_cast<std::size_t>(
        lut.rows() * lut.cols() * sizeof(std::int32_t));
    std::vector<std::uint8_t> raw(bytes);
    std::memcpy(raw.data(), lut.dataInt(), bytes);
    const std::vector<std::uint8_t> encoded = lutBroadcastEncode(raw);
    EXPECT_EQ(lutBroadcastDecode(encoded), raw);
    EXPECT_GE(static_cast<double>(raw.size()) /
                  static_cast<double>(encoded.size()),
              2.0);
}

TEST(BroadcastCodec, MeasuredRatioOptClassTableSets)
{
    // The CI gate's premise: OPT-class (W4A4 LoCaLut) table sets
    // compress >= 2x over the inter-node link.
    const QuantConfig config = QuantConfig::preset("W4A4");
    for (unsigned p : {1u, 2u, 4u}) {
        const double ratio =
            measuredTableSetRatio(DesignPoint::LoCaLut, config, p);
        EXPECT_GE(ratio, 2.0) << "p=" << p;
        // Memoized second call returns the identical value.
        EXPECT_EQ(ratio,
                  measuredTableSetRatio(DesignPoint::LoCaLut, config, p));
    }
    // Designs without broadcast tables report the neutral ratio.
    EXPECT_EQ(measuredTableSetRatio(DesignPoint::NaivePim, config, 1), 1.0);
    EXPECT_EQ(measuredTableSetRatio(DesignPoint::Ltc, config, 1), 1.0);
}

} // namespace
} // namespace localut
