/**
 * @file
 * The central integration property: every design point — naive MAC, LTC
 * bit-serial, OP, OP+LC, OP+LC+RC, and LoCaLUT with slice streaming — must
 * produce the bit-identical integer GEMM output, because LUT execution is
 * exact on quantized inputs.  Also checks cost-model sanity (nonzero
 * phases, speedup ordering).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "kernels/functional.h"
#include "kernels/gemm.h"

namespace localut {
namespace {

struct KernelParam {
    const char* preset;
    std::size_t m, k, n;
    std::uint64_t seed;
};

std::ostream&
operator<<(std::ostream& os, const KernelParam& p)
{
    return os << p.preset << "_" << p.m << "x" << p.k << "x" << p.n;
}

class AllDesignsAgree : public ::testing::TestWithParam<KernelParam>
{};

TEST_P(AllDesignsAgree, BitIdenticalOutputs)
{
    const auto& param = GetParam();
    const QuantConfig cfg = QuantConfig::preset(param.preset);
    const GemmProblem problem =
        makeRandomProblem(param.m, param.k, param.n, cfg, param.seed);
    const GemmEngine engine(PimSystemConfig::upmemServer());

    const auto reference = referenceGemmInt(problem.w, problem.a);
    for (DesignPoint dp :
         {DesignPoint::NaivePim, DesignPoint::Ltc, DesignPoint::OpLut,
          DesignPoint::OpLutDram, DesignPoint::OpLc, DesignPoint::OpLcRc,
          DesignPoint::LoCaLut}) {
        const GemmResult r = engine.run(problem, dp);
        ASSERT_EQ(r.outInt.size(), reference.size())
            << designPointName(dp);
        EXPECT_EQ(r.outInt, reference) << designPointName(dp);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllDesignsAgree,
    ::testing::Values(KernelParam{"W1A3", 16, 24, 8, 1},
                      KernelParam{"W1A3", 33, 47, 9, 2},  // non-divisible K
                      KernelParam{"W1A4", 12, 32, 16, 3},
                      KernelParam{"W2A2", 24, 40, 8, 4},
                      KernelParam{"W2A2", 7, 13, 5, 5},
                      KernelParam{"W4A4", 16, 24, 8, 6},
                      KernelParam{"W4A4", 9, 10, 3, 7},
                      KernelParam{"W1A2", 20, 30, 10, 8},
                      KernelParam{"W2A4", 11, 17, 6, 9},
                      KernelParam{"W1A8", 8, 12, 4, 10},
                      KernelParam{"W1A3", 1, 1, 1, 11},   // degenerate
                      KernelParam{"W1A3", 5, 3, 2, 12},   // K < default p
                      KernelParam{"W2A2", 64, 64, 1, 13}, // GEMV
                      KernelParam{"W4A4", 1, 40, 24, 14}, // single row
                      KernelParam{"W1A4", 48, 96, 2, 15}));

TEST(FunctionalModes, SliceStreamKInsensitive)
{
    // The k slice window changes scheduling, never values.
    const QuantConfig cfg = QuantConfig::preset("W1A3");
    const GemmProblem problem = makeRandomProblem(9, 26, 7, cfg, 11);
    const auto ref = referenceGemmInt(problem.w, problem.a);
    for (unsigned k : {1u, 2u, 3u, 4u, 8u}) {
        EXPECT_EQ(functional::canonicalInt(
                      problem, 4, functional::ReorderMode::SliceStream, k),
                  ref)
            << "k=" << k;
    }
}

TEST(FunctionalModes, AllPackingDegreesAgree)
{
    const QuantConfig cfg = QuantConfig::preset("W2A2");
    const GemmProblem problem = makeRandomProblem(10, 23, 6, cfg, 12);
    const auto ref = referenceGemmInt(problem.w, problem.a);
    for (unsigned p = 1; p <= 6; ++p) {
        EXPECT_EQ(functional::opInt(problem, p), ref) << "p=" << p;
        EXPECT_EQ(functional::canonicalInt(
                      problem, p, functional::ReorderMode::ReorderLut),
                  ref)
            << "p=" << p;
        EXPECT_EQ(functional::canonicalInt(
                      problem, p, functional::ReorderMode::Explicit),
                  ref)
            << "p=" << p;
    }
}

TEST(FloatKernels, CanonicalMatchesReferenceClosely)
{
    // FP4 activations, signed-binary weights (Fig. 21 configuration).
    const QuantConfig cfg = QuantConfig::fpPreset(1, 4);
    const GemmProblem problem = makeRandomProblem(8, 16, 4, cfg, 13);
    const auto ref = referenceGemmFloat(problem.w, problem.a);
    for (auto mode : {functional::ReorderMode::Explicit,
                      functional::ReorderMode::ReorderLut,
                      functional::ReorderMode::SliceStream}) {
        const auto out = functional::canonicalFloat(problem, 3, mode, 2);
        ASSERT_EQ(out.size(), ref.size());
        for (std::size_t i = 0; i < ref.size(); ++i) {
            // fp16 entry rounding bounds the per-group error.
            EXPECT_NEAR(out[i], ref[i], 0.1f + 0.01f * std::fabs(ref[i]));
        }
    }
}

TEST(GemmEngine, PlanRespectsWramBudget)
{
    const PimSystemConfig sys = PimSystemConfig::upmemServer();
    const GemmEngine engine(sys);
    for (const char* preset : {"W1A3", "W1A4", "W2A2", "W4A4"}) {
        const QuantConfig cfg = QuantConfig::preset(preset);
        const GemmProblem problem = makeRandomProblem(64, 96, 16, cfg, 14);
        for (DesignPoint dp :
             {DesignPoint::OpLut, DesignPoint::OpLc, DesignPoint::OpLcRc,
              DesignPoint::LoCaLut}) {
            const GemmPlan plan = engine.plan(problem, dp);
            EXPECT_LE(plan.lutWramBytes, sys.dpu.wramLutBudget())
                << preset << " " << designPointName(dp);
            EXPECT_LE(plan.lutMramBytes, sys.dpu.mramLutBudget())
                << preset << " " << designPointName(dp);
            EXPECT_GE(plan.p, 1u);
        }
    }
}

TEST(GemmEngine, TimingIsPositiveAndDecomposed)
{
    const GemmEngine engine(PimSystemConfig::upmemServer());
    const GemmProblem problem =
        makeRandomProblem(64, 96, 16, QuantConfig::preset("W1A3"), 15);
    const GemmResult r =
        engine.run(problem, DesignPoint::LoCaLut, /*computeValues=*/false);
    EXPECT_GT(r.timing.total, 0.0);
    EXPECT_GT(r.timing.dpuSeconds, 0.0);
    EXPECT_GT(r.timing.linkSeconds, 0.0);
    EXPECT_GT(r.timing.hostSeconds, 0.0);
    EXPECT_NEAR(r.timing.seconds.total(), r.timing.total, 1e-12);
    EXPECT_GT(r.energy.total, 0.0);
}

TEST(GemmEngine, PaperShapeSpeedupOrdering)
{
    // On the paper's GEMM shapes, LoCaLUT must beat the naive PIM baseline
    // and the LTC baseline (Fig. 9's qualitative claim).
    const GemmEngine engine(PimSystemConfig::upmemServer());
    for (const char* preset : {"W1A3", "W1A4", "W2A2", "W4A4"}) {
        const QuantConfig cfg = QuantConfig::preset(preset);
        const GemmProblem problem =
            makeRandomProblem(768, 768, 128, cfg, 16);
        const double tNaive =
            engine.run(problem, DesignPoint::NaivePim, false).timing.total;
        const double tLtc =
            engine.run(problem, DesignPoint::Ltc, false).timing.total;
        const double tLocalut =
            engine.run(problem, DesignPoint::LoCaLut, false).timing.total;
        EXPECT_LT(tLocalut, tNaive) << preset;
        EXPECT_LT(tLocalut, tLtc) << preset;
    }
}

TEST(GemmEngine, ForcedGridOverride)
{
    const GemmEngine engine(PimSystemConfig::upmemServer());
    const GemmProblem problem =
        makeRandomProblem(64, 64, 32, QuantConfig::preset("W2A2"), 17);
    PlanOverrides ov;
    ov.gM = 4;
    ov.gN = 8;
    const GemmPlan plan = engine.plan(problem, DesignPoint::OpLcRc, ov);
    EXPECT_EQ(plan.gM, 4u);
    EXPECT_EQ(plan.gN, 8u);
    EXPECT_EQ(plan.tileM, 16u);
    EXPECT_EQ(plan.tileN, 4u);
    EXPECT_EQ(plan.dpusUsed(), 32u);
}

TEST(GemmEngine, ForcedKSlicesOverride)
{
    const GemmEngine engine(PimSystemConfig::upmemServer());
    const GemmProblem problem =
        makeRandomProblem(64, 64, 32, QuantConfig::preset("W1A3"), 18);
    for (unsigned k : {1u, 2u, 4u, 8u}) {
        PlanOverrides ov;
        ov.kSlices = k;
        const GemmPlan plan = engine.plan(problem, DesignPoint::LoCaLut, ov);
        EXPECT_EQ(plan.kSlices, k);
        EXPECT_TRUE(plan.streaming);
    }
}

} // namespace
} // namespace localut
