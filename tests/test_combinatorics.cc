/**
 * @file
 * Unit + property tests for the combinatorial primitives behind LUT
 * canonicalization.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/combinatorics.h"
#include "common/rng.h"

namespace localut {
namespace {

TEST(Binomial, SmallValues)
{
    EXPECT_EQ(binomial(0, 0), 1u);
    EXPECT_EQ(binomial(5, 0), 1u);
    EXPECT_EQ(binomial(5, 5), 1u);
    EXPECT_EQ(binomial(5, 2), 10u);
    EXPECT_EQ(binomial(10, 3), 120u);
    EXPECT_EQ(binomial(3, 5), 0u);
}

TEST(Binomial, PascalIdentity)
{
    for (unsigned n = 1; n < 40; ++n) {
        for (unsigned k = 1; k <= n; ++k) {
            EXPECT_EQ(binomial(n, k),
                      binomial(n - 1, k - 1) + binomial(n - 1, k));
        }
    }
}

TEST(Binomial, PaperCanonicalColumnCounts)
{
    // Paper Section IV-A: for 3-bit activations the column reduction is
    // 12.4x at p = 4 and 611.1x at p = 7.
    const double r4 = static_cast<double>(1ull << (3 * 4)) /
                      static_cast<double>(multisetCount(8, 4));
    const double r7 = static_cast<double>(1ull << (3 * 7)) /
                      static_cast<double>(multisetCount(8, 7));
    EXPECT_NEAR(r4, 12.4, 0.05);
    EXPECT_NEAR(r7, 611.1, 0.5);
}

TEST(Factorial, Values)
{
    EXPECT_EQ(factorial(0), 1u);
    EXPECT_EQ(factorial(1), 1u);
    EXPECT_EQ(factorial(8), 40320u);
    EXPECT_EQ(factorial(20), 2432902008176640000ull);
}

TEST(MultisetCount, MatchesFormula)
{
    // C(alphabet + p - 1, p)
    EXPECT_EQ(multisetCount(8, 3), binomial(10, 3));
    EXPECT_EQ(multisetCount(2, 7), binomial(8, 7));
    EXPECT_EQ(multisetCount(16, 4), binomial(19, 4));
}

/** Enumerates all sorted tuples of length p over [0, s). */
std::vector<std::vector<std::uint16_t>>
allSortedTuples(unsigned s, unsigned p)
{
    std::vector<std::vector<std::uint16_t>> out;
    std::vector<std::uint16_t> cur(p, 0);
    while (true) {
        out.push_back(cur);
        // Next multiset in lexicographic order.
        int i = static_cast<int>(p) - 1;
        while (i >= 0 && cur[static_cast<unsigned>(i)] == s - 1) {
            --i;
        }
        if (i < 0) {
            break;
        }
        const std::uint16_t v = static_cast<std::uint16_t>(
            cur[static_cast<unsigned>(i)] + 1);
        for (unsigned j = static_cast<unsigned>(i); j < p; ++j) {
            cur[j] = v;
        }
    }
    return out;
}

struct MultisetParam {
    unsigned alphabet;
    unsigned p;
};

class MultisetRankBijection
    : public ::testing::TestWithParam<MultisetParam>
{};

TEST_P(MultisetRankBijection, RankIsBijective)
{
    const auto [s, p] = GetParam();
    const auto tuples = allSortedTuples(s, p);
    ASSERT_EQ(tuples.size(), multisetCount(s, p));
    std::set<std::uint64_t> seen;
    for (const auto& t : tuples) {
        const std::uint64_t r = multisetRank(t, s);
        EXPECT_LT(r, multisetCount(s, p));
        EXPECT_TRUE(seen.insert(r).second) << "duplicate rank " << r;
        // Round trip.
        std::vector<std::uint16_t> back(p);
        multisetUnrank(r, s, back);
        EXPECT_EQ(back, t);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MultisetRankBijection,
    ::testing::Values(MultisetParam{2, 1}, MultisetParam{2, 4},
                      MultisetParam{2, 8}, MultisetParam{4, 3},
                      MultisetParam{4, 6}, MultisetParam{8, 2},
                      MultisetParam{8, 4}, MultisetParam{8, 5},
                      MultisetParam{16, 3}, MultisetParam{3, 7}));

TEST(MultisetRank, LargeAlphabetRoundTrip)
{
    // FP16 activations: alphabet 65536, p = 2 (used by the W1A16 study).
    Rng rng(7);
    for (int iter = 0; iter < 200; ++iter) {
        std::vector<std::uint16_t> t(2);
        t[0] = static_cast<std::uint16_t>(rng.nextBounded(65536));
        t[1] = static_cast<std::uint16_t>(rng.nextBounded(65536));
        std::sort(t.begin(), t.end());
        const std::uint64_t r = multisetRank(t, 65536);
        EXPECT_LT(r, multisetCount(65536, 2));
        std::vector<std::uint16_t> back(2);
        multisetUnrank(r, 65536, back);
        EXPECT_EQ(back, t);
    }
}

class PermutationRankBijection : public ::testing::TestWithParam<unsigned>
{};

TEST_P(PermutationRankBijection, RankIsBijectiveAndLex)
{
    const unsigned n = GetParam();
    std::vector<std::uint8_t> perm(n);
    for (unsigned i = 0; i < n; ++i) {
        perm[i] = static_cast<std::uint8_t>(i);
    }
    std::uint32_t expected = 0;
    do {
        EXPECT_EQ(permutationRank(perm), expected);
        std::vector<std::uint8_t> back(n);
        permutationUnrank(expected, back);
        EXPECT_EQ(back, perm);
        ++expected;
    } while (std::next_permutation(perm.begin(), perm.end()));
    EXPECT_EQ(expected, factorial(n));
}

INSTANTIATE_TEST_SUITE_P(Sweep, PermutationRankBijection,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u));

TEST(StableArgsort, SortsAndIsStable)
{
    const std::vector<std::uint16_t> codes = {3, 1, 3, 0, 1};
    const auto perm = stableArgsort(codes);
    // Sorted order: 0(idx 3), 1(idx 1), 1(idx 4), 3(idx 0), 3(idx 2)
    const std::vector<std::uint8_t> expected = {3, 1, 4, 0, 2};
    EXPECT_EQ(perm, expected);
}

TEST(StableArgsort, ProducesSortedSequence)
{
    Rng rng(13);
    for (int iter = 0; iter < 100; ++iter) {
        std::vector<std::uint16_t> codes(8);
        for (auto& c : codes) {
            c = static_cast<std::uint16_t>(rng.nextBounded(8));
        }
        const auto perm = stableArgsort(codes);
        for (unsigned i = 1; i < codes.size(); ++i) {
            EXPECT_LE(codes[perm[i - 1]], codes[perm[i]]);
        }
    }
}

} // namespace
} // namespace localut
