/**
 * @file
 * Golden cost-model regression tests: the modeled time and energy of a
 * small matrix of design points — the fig09-class GEMM shapes, a
 * bank-level and host comparison point, sharded executions, and the
 * fig10-class end-to-end workloads — are frozen against checked-in
 * values, so a refactor that silently shifts the paper's numbers fails
 * here instead of surfacing as a quiet drift in the bench output.
 *
 * The golden values were produced by this very model (commit that
 * introduced this file); they are not paper numbers.  If a change
 * intentionally alters the cost model, re-generate the table and say so
 * in the commit message.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "backend/backend.h"
#include "dram/timing.h"
#include "nn/inference.h"
#include "serving/scheduler.h"
#include "serving/session.h"
#include "serving/sharding.h"

namespace localut {
namespace {

/** Tight relative tolerance: catches any real model change while
 * allowing float summation differences across optimizers. */
constexpr double kRelTol = 1e-6;

struct GoldenGemm {
    const char* backend;
    const char* preset;
    DesignPoint design;
    std::size_t m, k, n;
    unsigned ranks; ///< 1 = unsharded; > 1 = column-parallel sharded
    double seconds;
    double joules;
};

const GoldenGemm kGoldenGemms[] = {
    {"upmem", "W1A3", DesignPoint::NaivePim, 768, 768, 128, 1,
     9.607323428571e-04, 7.435332017006e-02},
    {"upmem", "W1A3", DesignPoint::NaivePim, 3072, 768, 32, 1,
     9.484443428571e-04, 7.300685028206e-02},
    {"upmem", "W1A3", DesignPoint::Ltc, 768, 768, 128, 1,
     4.779894857143e-04, 3.480702531291e-02},
    {"upmem", "W1A3", DesignPoint::Ltc, 3072, 768, 32, 1,
     4.657014857143e-04, 3.346055542491e-02},
    {"upmem", "W1A3", DesignPoint::OpLut, 768, 768, 128, 1,
     4.366192761905e-04, 3.054907524632e-02},
    {"upmem", "W1A3", DesignPoint::OpLut, 3072, 768, 32, 1,
     4.161392761905e-04, 2.830495876632e-02},
    {"upmem", "W1A3", DesignPoint::LoCaLut, 768, 768, 128, 1,
     3.642930541832e-04, 2.623380510861e-02},
    {"upmem", "W1A3", DesignPoint::LoCaLut, 3072, 768, 32, 1,
     3.156330349744e-04, 2.090183484378e-02},
    {"upmem", "W4A4", DesignPoint::NaivePim, 768, 768, 128, 1,
     9.771913142857e-04, 7.530045393189e-02},
    {"upmem", "W4A4", DesignPoint::NaivePim, 3072, 768, 32, 1,
     9.649033142857e-04, 7.395398404389e-02},
    {"upmem", "W4A4", DesignPoint::Ltc, 768, 768, 128, 1,
     1.442379885714e-03, 1.134087017033e-01},
    {"upmem", "W4A4", DesignPoint::Ltc, 3072, 768, 32, 1,
     1.430091885714e-03, 1.120622318153e-01},
    {"upmem", "W4A4", DesignPoint::OpLut, 768, 768, 128, 1,
     1.041856914286e-03, 7.909391354149e-02},
    {"upmem", "W4A4", DesignPoint::OpLut, 3072, 768, 32, 1,
     1.017280914286e-03, 7.640097376549e-02},
    {"upmem", "W4A4", DesignPoint::LoCaLut, 768, 768, 128, 1,
     9.669232128059e-04, 7.320967127842e-02},
    {"upmem", "W4A4", DesignPoint::LoCaLut, 3072, 768, 32, 1,
     9.233932032015e-04, 6.843982694601e-02},
    {"bankpim", "W1A3", DesignPoint::NaivePim, 768, 768, 128, 1,
     2.230637500000e-05, 1.394492864000e-03},
    {"bankpim", "W1A3", DesignPoint::LoCaLut, 768, 768, 128, 1,
     1.139575000000e-05, 6.643720228571e-04},
    {"host-cpu", "W4A4", DesignPoint::LoCaLut, 768, 768, 128, 1,
     1.348169142857e-03, 1.145943771429e-01},
    {"host-gpu", "W4A4", DesignPoint::LoCaLut, 768, 768, 128, 1,
     1.524791716120e-04, 3.811979290301e-02},
    // Sharded (column-parallel) decode-shape GEMMs: time drops with
    // ranks, energy grows (more devices + the collective hop).
    {"upmem", "W4A4", DesignPoint::LoCaLut, 768, 768, 32, 2,
     2.464009142857e-04, 2.698280356297e-02},
    {"upmem", "W4A4", DesignPoint::LoCaLut, 768, 768, 32, 4,
     1.895266285714e-04, 3.574844063909e-02},
};

TEST(GoldenCosts, GemmDesignPointsMatchFrozenValues)
{
    for (const GoldenGemm& g : kGoldenGemms) {
        SCOPED_TRACE(std::string(g.backend) + " " + g.preset + " " +
                     designPointName(g.design) + " m=" +
                     std::to_string(g.m) + " n=" + std::to_string(g.n) +
                     " ranks=" + std::to_string(g.ranks));
        const BackendPtr backend = makeBackend(g.backend);
        const GemmProblem problem = makeShapeOnlyProblem(
            g.m, g.k, g.n, QuantConfig::preset(g.preset));
        double seconds, joules;
        if (g.ranks > 1) {
            ShardSpec spec;
            spec.numRanks = g.ranks;
            const ShardPlan plan =
                makeShardPlan(*backend, problem, g.design, spec);
            const GemmResult r = executeSharded(*backend, problem, plan,
                                                /*computeValues=*/false);
            seconds = r.timing.total;
            joules = r.energy.total;
        } else {
            const GemmResult r =
                backend->execute(problem, backend->plan(problem, g.design),
                                 /*computeValues=*/false);
            seconds = r.timing.total;
            joules = r.energy.total;
        }
        EXPECT_NEAR(seconds, g.seconds, g.seconds * kRelTol);
        EXPECT_NEAR(joules, g.joules, g.joules * kRelTol);
    }
}

/**
 * The single-node collective charge, pinned against the pre-topology
 * flat closed form evaluated inline: launch latency plus the slower of
 * the per-rank bank drain and the host link serializing the aggregate,
 * with drain energy on every byte plus link energy per byte.  The
 * hierarchical two-hop refactor (serving/sharding.cc chargeCollective +
 * dram/timing's collectiveHopCost) must reproduce these numbers
 * bit-for-bit at numNodes = 1 — EXPECT_DOUBLE_EQ, no tolerance.
 */
TEST(GoldenCosts, SingleNodeCollectiveMatchesFlatClosedForm)
{
    const BackendPtr backend = makeBackend("upmem");
    const QuantConfig cfg = QuantConfig::preset("W4A4");
    const GemmProblem problem = makeShapeOnlyProblem(768, 768, 32, cfg);
    const CollectiveLinkProfile prof = backend->collectiveProfile();

    for (const ShardStrategy strategy :
         {ShardStrategy::ColumnParallel, ShardStrategy::RowParallel}) {
        for (const unsigned ranks : {2u, 4u}) {
            SCOPED_TRACE(std::string(shardStrategyName(strategy)) +
                         " ranks=" + std::to_string(ranks));
            ShardSpec spec;
            spec.numRanks = ranks;
            spec.strategy = strategy;
            const ShardPlan plan = makeShardPlan(
                *backend, problem, DesignPoint::LoCaLut, spec);

            // The flat model: per-shard drained bytes are the output
            // slice (ColumnParallel) or a full MxN partial (RowParallel).
            const double outElems = 768.0 * 32.0;
            double perRank = 0, total = 0;
            for (const GemmShard& shard : plan.shards) {
                const double bytes =
                    strategy == ShardStrategy::RowParallel
                        ? outElems * 4.0
                        : static_cast<double>(shard.extent()) * 32.0 * 4.0;
                perRank = std::max(perRank, bytes);
                total += bytes;
            }
            const CollectiveCost drainPace = collectiveDrainCost(
                prof.dram, prof.dramEnergy, prof.banksPerRank, perRank);
            const CollectiveCost drainAll = collectiveDrainCost(
                prof.dram, prof.dramEnergy, prof.banksPerRank, total);
            const double seconds =
                prof.link.launchLatencyUs * 1e-6 +
                std::max(drainPace.seconds,
                         total / (prof.link.pimToHostGBs * 1e9));
            const double joules =
                drainAll.joules + prof.pjPerLinkByte * total * 1e-12;

            EXPECT_DOUBLE_EQ(plan.collectiveBytes, total);
            EXPECT_DOUBLE_EQ(plan.collectiveSeconds, seconds);
            EXPECT_DOUBLE_EQ(plan.collectiveJoules, joules);
            EXPECT_DOUBLE_EQ(plan.interNodeBytes, 0.0);
            EXPECT_DOUBLE_EQ(plan.interNodeSeconds, 0.0);
            if (strategy == ShardStrategy::RowParallel) {
                // Flat reduce: shards-1 partial-sum adds over the output.
                EXPECT_DOUBLE_EQ(
                    plan.hostReduceOps,
                    static_cast<double>(plan.shards.size() - 1) * outElems);
            }
        }
    }
}

struct GoldenWorkload {
    DesignPoint design;
    double prefillSeconds, prefillJoules; ///< BERT-base, batch 32, seq 128
    double decodeSeconds, decodeJoules;   ///< OPT-125M, batch 32, 8 steps
};

/** The fig10-class end-to-end numbers (upmem server, W4A4). */
const GoldenWorkload kGoldenWorkloads[] = {
    {DesignPoint::NaivePim, 4.427408201143e+00, 3.584439612492e+02,
     3.251803721143e-01, 2.388990306790e+01},
    {DesignPoint::LoCaLut, 2.857068156343e+00, 2.418699077307e+02,
     3.618707879645e-01, 2.532742443946e+01},
};

TEST(GoldenCosts, Fig10WorkloadsMatchFrozenValues)
{
    const PimSystemConfig sys = PimSystemConfig::upmemServer();
    for (const GoldenWorkload& g : kGoldenWorkloads) {
        SCOPED_TRACE(designPointName(g.design));
        const TransformerRunner runner(sys, QuantConfig::preset("W4A4"),
                                       g.design);
        const InferenceReport pre =
            runner.prefill(TransformerConfig::bertBase(), 32, 128);
        EXPECT_NEAR(pre.timing.total, g.prefillSeconds,
                    g.prefillSeconds * kRelTol);
        EXPECT_NEAR(pre.energy.total, g.prefillJoules,
                    g.prefillJoules * kRelTol);
        const InferenceReport dec =
            runner.decode(TransformerConfig::opt125m(), 32, 128, 8);
        EXPECT_NEAR(dec.timing.total, g.decodeSeconds,
                    g.decodeSeconds * kRelTol);
        EXPECT_NEAR(dec.energy.total, g.decodeJoules,
                    g.decodeJoules * kRelTol);
    }
}

TEST(GoldenCosts, ColdVsWarmFig10DecodeMatchesFrozenValues)
{
    // The fig10-class OPT-125M 32-step decode (upmem server, W4A4)
    // served through a residency-enabled session: the first run pays
    // the per-layer table broadcast (cold start), the second finds
    // every table set MRAM-resident (steady state).  Frozen by the
    // commit introducing the residency manager; the warm run must also
    // equal the residency-disabled model exactly.
    const TransformerConfig model = TransformerConfig::opt125m();
    const QuantConfig cfg = QuantConfig::preset("W4A4");
    SessionOptions on;
    on.residencyPolicy = ResidencyPolicy::CostAware;
    InferenceSession session(makeBackend("upmem"), on);
    const auto workload = session.compile(
        WorkloadSpec::decode(model, 32, 128, 32), cfg,
        DesignPoint::LoCaLut);
    const InferenceReport coldRun = session.run(workload);
    const InferenceReport warmRun = session.run(workload);

    constexpr double kColdSeconds = 1.453023049458e+00;
    constexpr double kColdBroadcastSeconds = 8.402560000000e-05;
    constexpr double kColdJoules = 1.017736444251e+02;
    constexpr double kWarmSeconds = 1.452939023858e+00;
    constexpr double kWarmJoules = 1.017735123483e+02;

    EXPECT_NEAR(coldRun.timing.total, kColdSeconds,
                kColdSeconds * kRelTol);
    EXPECT_NEAR(coldRun.lutBroadcastSeconds, kColdBroadcastSeconds,
                kColdBroadcastSeconds * kRelTol);
    EXPECT_NEAR(coldRun.energy.total, kColdJoules, kColdJoules * kRelTol);
    EXPECT_NEAR(warmRun.timing.total, kWarmSeconds,
                kWarmSeconds * kRelTol);
    EXPECT_NEAR(warmRun.energy.total, kWarmJoules, kWarmJoules * kRelTol);
    EXPECT_DOUBLE_EQ(warmRun.lutBroadcastSeconds, 0.0);
    EXPECT_LT(warmRun.timing.total, coldRun.timing.total);

    // Warm == the pre-residency model, bit for bit.
    InferenceSession plain(makeBackend("upmem"));
    const InferenceReport base = plain.run(plain.compile(
        WorkloadSpec::decode(model, 32, 128, 32), cfg,
        DesignPoint::LoCaLut));
    EXPECT_DOUBLE_EQ(warmRun.timing.total, base.timing.total);
    EXPECT_DOUBLE_EQ(warmRun.energy.total, base.energy.total);
}

TEST(GoldenCosts, ServingTelemetryQuantilesMatchFrozenBounds)
{
    // A deterministic single-submitter fig10-class trace: 24 OPT-125M
    // W4A4 decode-step requests arrive open-loop at 1.25x the service
    // rate (inter-arrival 0.8x service), so the queue builds steadily
    // and the latency distribution spreads — p50 strictly below p95.
    // The frozen values are LatencyHistogram *bucket bounds*, which
    // only move when a sample crosses a log-bucket edge; like every
    // golden here, regenerate them (and say so) if the cost model
    // intentionally changes.
    InferenceSession session(makeBackend("upmem"));
    RequestScheduler scheduler(session);
    const auto step = session.compile(
        WorkloadSpec::decode(TransformerConfig::opt125m(), 32, 128, 1),
        QuantConfig::preset("W4A4"), DesignPoint::LoCaLut);
    const double service = session.projectCost(step).totalSeconds();

    std::vector<AdmissionDecision> decisions;
    for (int i = 0; i < 24; ++i) {
        ServingRequest request = ServingRequest::workloadRequest(
            step, DeadlineClass::Interactive,
            /*deadline=*/40.0 * service);
        request.arrivalSeconds = 0.8 * service * i;
        decisions.push_back(scheduler.submit(std::move(request)));
    }
    for (const AdmissionDecision& decision : decisions) {
        ASSERT_TRUE(decision.admitted());
        scheduler.wait(decision.id);
    }

    const TelemetrySnapshot snap = scheduler.telemetry().snapshot();
    const LaneStats& lane =
        snap.lanes[static_cast<std::size_t>(DeadlineClass::Interactive)];
    EXPECT_EQ(lane.completed, 24u);
    EXPECT_EQ(lane.deadlineMissed, 0u);
    EXPECT_LT(lane.latency.p50(), lane.latency.p95());

    constexpr double kP50Bound = 1.584893192461e-01;
    constexpr double kP95Bound = 2.511886431510e-01;
    constexpr double kMeanSeconds = 1.491075976353e-01;
    EXPECT_NEAR(lane.latency.p50(), kP50Bound, kP50Bound * kRelTol);
    EXPECT_NEAR(lane.latency.p95(), kP95Bound, kP95Bound * kRelTol);
    EXPECT_NEAR(lane.latency.meanSeconds(), kMeanSeconds,
                kMeanSeconds * kRelTol);
}

} // namespace
} // namespace localut
