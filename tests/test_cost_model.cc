/**
 * @file
 * Cost-evaluator and utility-layer tests: phase classification, event
 * accounting, timing/energy properties (monotonicity, issue-rate and DMA
 * effects), report aggregation, and the common helpers (stats, table,
 * dense solver, RNG determinism).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/linalg.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "quant/quantizer.h"
#include "upmem/cost_model.h"

namespace localut {
namespace {

TEST(Phases, ClassificationIsPartition)
{
    for (unsigned i = 0; i < static_cast<unsigned>(Phase::kNumPhases); ++i) {
        const Phase p = static_cast<Phase>(i);
        EXPECT_FALSE(isHostPhase(p) && isLinkPhase(p)) << phaseName(p);
        EXPECT_NE(phaseName(p), nullptr);
    }
    EXPECT_TRUE(isHostPhase(Phase::HostQuantize));
    EXPECT_TRUE(isLinkPhase(Phase::LinkOut));
    EXPECT_FALSE(isHostPhase(Phase::CanonicalAccess));
    EXPECT_FALSE(isLinkPhase(Phase::CanonicalAccess));
}

TEST(KernelCost, AccumulatesAndMerges)
{
    KernelCost a;
    a.addInstr(Phase::IndexCalc, 100);
    a.addDma(Phase::LutLoadDma, 4096, 2);
    a.addHostOps(Phase::HostQuantize, 50);
    a.addLinkBytes(Phase::LinkActIn, 1024);

    KernelCost b;
    b.addInstr(Phase::IndexCalc, 20);
    b.addInstr(Phase::Accumulate, 30);
    a.merge(b);

    EXPECT_DOUBLE_EQ(a.phase(Phase::IndexCalc).instructions, 120);
    EXPECT_DOUBLE_EQ(a.totalInstructions(), 150);
    EXPECT_DOUBLE_EQ(a.totalDmaBytes(), 4096);
    EXPECT_DOUBLE_EQ(a.totalDmaTransfers(), 2);
    EXPECT_DOUBLE_EQ(a.totalLinkBytes(), 1024);
}

TEST(KernelCost, NegativeChargesPanic)
{
    KernelCost cost;
    EXPECT_ANY_THROW(cost.addInstr(Phase::Other, -1));
    EXPECT_ANY_THROW(cost.addDma(Phase::Other, -1, 0));
    EXPECT_ANY_THROW(cost.addHostOps(Phase::Other, -5));
    EXPECT_ANY_THROW(cost.addLinkBytes(Phase::Other, -2));
}

TEST(CostEvaluator, InstructionTimeScalesWithIssueRate)
{
    PimSystemConfig few = PimSystemConfig::upmemServer();
    few.dpu.tasklets = 4; // under-populated pipeline: issueRate 4/11
    const PimSystemConfig full = PimSystemConfig::upmemServer();

    KernelCost cost;
    cost.addInstr(Phase::MacCompute, 1e6);
    const double tFew = CostEvaluator(few).timing(cost, 1).total;
    const double tFull = CostEvaluator(full).timing(cost, 1).total;
    EXPECT_NEAR(tFew / tFull, 11.0 / 4.0, 1e-9);
}

// Pins the doc-vs-code derivation of DpuParams::dmaBytesPerCycle: the
// paper profiles L_D = 1.36 ns per streamed (canonical + reordering)
// entry pair of ~3 bytes ("0.5 B/cycle ... considering a three-stage
// pipelined access", Section VI-I), which at 350 MHz (2.857 ns/cycle)
// is an effective aggregate rate of 3 / 1.36 * 2.857 = 6.30 B/cycle.
// The adopted constant of 6.0 rounds that profiled figure; if either
// the constant or the clock drifts away from the derivation, this
// fails and params.h's comment must be reconciled with the code.
TEST(DpuParams, DmaRateMatchesPaperEntryPairDerivation)
{
    const DpuParams dpu;
    const double nsPerCycle = 1e3 / dpu.clockMhz;       // 2.857 at 350 MHz
    const double entryPairBytes = 3.0;                  // canonical+reorder
    const double nsPerEntryPair = 1.36;                 // paper's L_D
    const double derived = entryPairBytes / nsPerEntryPair * nsPerCycle;
    EXPECT_NEAR(derived, 6.30, 0.01);
    EXPECT_NEAR(dpu.dmaBytesPerCycle / derived, 1.0, 0.05);
}

TEST(CostEvaluator, DmaSetupChargedPerTransfer)
{
    const PimSystemConfig sys = PimSystemConfig::upmemServer();
    const CostEvaluator eval(sys);
    // Same bytes, more transfers -> strictly slower.
    EXPECT_LT(eval.dmaSeconds(65536, 1), eval.dmaSeconds(65536, 64));
    // Setup cost matches the parameter.
    const double delta = eval.dmaSeconds(0, 1);
    EXPECT_NEAR(delta,
                sys.dpu.cyclesToSeconds(sys.dpu.dmaSetupCycles), 1e-15);
}

TEST(CostEvaluator, TimingMonotonicInEveryEventKind)
{
    const CostEvaluator eval(PimSystemConfig::upmemServer());
    KernelCost base;
    base.addInstr(Phase::MacCompute, 1000);
    base.addDma(Phase::OperandDma, 1000, 1);
    base.addHostOps(Phase::HostQuantize, 1000);
    base.addLinkBytes(Phase::LinkActIn, 1000);
    const double t0 = eval.timing(base, 16).total;

    for (int kind = 0; kind < 4; ++kind) {
        KernelCost more = base;
        switch (kind) {
          case 0: more.addInstr(Phase::MacCompute, 5000); break;
          case 1: more.addDma(Phase::OperandDma, 5000, 2); break;
          case 2: more.addHostOps(Phase::HostQuantize, 5000); break;
          case 3: more.addLinkBytes(Phase::LinkActIn, 5000); break;
        }
        EXPECT_GT(eval.timing(more, 16).total, t0) << "kind " << kind;
        EXPECT_GT(eval.energy(more, 16).total,
                  eval.energy(base, 16).total)
            << "kind " << kind;
    }
}

TEST(CostEvaluator, EnergyScalesWithDpuCount)
{
    const CostEvaluator eval(PimSystemConfig::upmemServer());
    KernelCost cost;
    cost.addInstr(Phase::MacCompute, 1e6);
    const double e1 = eval.energy(cost, 1).total;
    const double e64 = eval.energy(cost, 64).total;
    // Per-DPU dynamic + static energy scales ~linearly with DPUs.
    EXPECT_NEAR(e64 / e1, 64.0, 1.0);
}

TEST(CostEvaluator, BreakdownSumsToTotal)
{
    const CostEvaluator eval(PimSystemConfig::upmemServer());
    KernelCost cost;
    cost.addInstr(Phase::IndexCalc, 1e5);
    cost.addInstr(Phase::CanonicalAccess, 2e4);
    cost.addDma(Phase::LutLoadDma, 1e5, 100);
    cost.addHostOps(Phase::HostPackSort, 3e4);
    cost.addLinkBytes(Phase::LinkOut, 4e4);
    const TimingReport t = eval.timing(cost, 8);
    EXPECT_NEAR(t.seconds.total(), t.total, 1e-15);
    EXPECT_NEAR(t.total, t.dpuSeconds + t.hostSeconds + t.linkSeconds,
                1e-15);
    const EnergyReport e = eval.energy(cost, 8);
    EXPECT_NEAR(e.joules.total(), e.total, 1e-15);
}

TEST(Reports, AccumulateScales)
{
    const CostEvaluator eval(PimSystemConfig::upmemServer());
    KernelCost cost;
    cost.addInstr(Phase::MacCompute, 1e5);
    cost.addLinkBytes(Phase::LinkOut, 1e5);
    const TimingReport part = eval.timing(cost, 4);

    TimingReport sum;
    accumulate(sum, part, 3.0);
    accumulate(sum, part, 1.0);
    EXPECT_NEAR(sum.total, 4.0 * part.total, 1e-12);
    EXPECT_NEAR(sum.seconds.total(), 4.0 * part.seconds.total(), 1e-12);
    EXPECT_NEAR(sum.dpuSeconds, 4.0 * part.dpuSeconds, 1e-12);
}

TEST(Stats, GeomeanAndBreakdown)
{
    const std::vector<double> v = {2.0, 8.0};
    EXPECT_DOUBLE_EQ(geomean(v), 4.0);
    EXPECT_DOUBLE_EQ(mean(v), 5.0);

    Breakdown b;
    b.add("x", 1.0);
    b.add("y", 3.0);
    b.add("x", 1.0);
    EXPECT_DOUBLE_EQ(b.get("x"), 2.0);
    EXPECT_DOUBLE_EQ(b.total(), 5.0);
    EXPECT_DOUBLE_EQ(b.fraction("y"), 0.6);
    b.scale(2.0);
    EXPECT_DOUBLE_EQ(b.total(), 10.0);
    // Insertion order preserved.
    EXPECT_EQ(b.items()[0].first, "x");
}

TEST(Table, RendersAlignedAndCsv)
{
    Table t({"a", "bb"});
    t.addRow({"1", "2"});
    t.addRow({"333", "4"});
    const std::string out = t.render();
    EXPECT_NE(out.find("333"), std::string::npos);
    EXPECT_EQ(t.renderCsv(), "a,bb\n1,2\n333,4\n");
    EXPECT_ANY_THROW(t.addRow({"only one"}));
}

TEST(Linalg, SolveSpdRoundTrip)
{
    // A = M^T M + I is SPD; check (A) X = B recovers X.
    Rng rng(3);
    const std::size_t n = 12, r = 3;
    std::vector<float> mtx(n * n);
    for (auto& v : mtx) {
        v = static_cast<float>(rng.nextGaussian());
    }
    std::vector<float> a(n * n, 0.0f);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            double s = 0;
            for (std::size_t k = 0; k < n; ++k) {
                s += static_cast<double>(mtx[k * n + i]) * mtx[k * n + j];
            }
            a[i * n + j] = static_cast<float>(s) + (i == j ? 1.0f : 0.0f);
        }
    }
    std::vector<float> x(n * r);
    for (auto& v : x) {
        v = static_cast<float>(rng.nextGaussian());
    }
    const std::vector<float> b = matmul(a, x, n, n, r);
    const std::vector<float> solved = solveSpd(a, b, n, r, 0.0f);
    for (std::size_t i = 0; i < x.size(); ++i) {
        EXPECT_NEAR(solved[i], x[i], 1e-3);
    }
}

TEST(Rng, DeterministicPerSeed)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.nextU64(), b.nextU64());
    }
    EXPECT_NE(Rng(42).nextU64(), c.nextU64());
    // Gaussian moments sanity.
    Rng g(7);
    double sum = 0, sumSq = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = g.nextGaussian();
        sum += v;
        sumSq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sumSq / n, 1.0, 0.05);
}

TEST(QuantizerClipped, ClipsOutliers)
{
    // One huge outlier: plain quantization wastes the range on it,
    // clipped quantization keeps resolution for the bulk.
    Rng rng(9);
    std::vector<float> data(1024);
    for (auto& v : data) {
        v = static_cast<float>(rng.nextGaussian());
    }
    data[0] = 100.0f;
    const ValueCodec codec = ValueCodec::twosComplement(4);
    const auto plain = Quantizer::quantize(data, 32, 32, codec);
    const auto clipped = Quantizer::quantizeClipped(
        data, 32, 32, codec, Quantizer::recommendedClipStds(4));
    EXPECT_LT(clipped.scale, plain.scale);

    auto mseOf = [&](const QuantizedMatrix& qm) {
        const auto back = Quantizer::dequantize(qm);
        double mse = 0;
        for (std::size_t i = 1; i < data.size(); ++i) { // skip the outlier
            mse += (back[i] - data[i]) * (back[i] - data[i]);
        }
        return mse;
    };
    EXPECT_LT(mseOf(clipped), mseOf(plain));
}

} // namespace
} // namespace localut
