/**
 * @file
 * PlanCache tests: a second plan() with an identical key returns the
 * cached plan (hit counter increments), while any key-field change — the
 * shape, the quantization config, the design point, the overrides, the
 * shard configuration, or the backend — misses.  The concurrency stress
 * tests hammer a shared cache (and a shared session) from many threads;
 * run them under -fsanitize=thread locally to verify lock discipline.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "backend/backend.h"
#include "backend/upmem_backend.h"
#include "nn/inference.h"
#include "serving/plan_cache.h"
#include "serving/session.h"

namespace localut {
namespace {

/** Field-by-field plan equality (GemmPlan has no operator==). */
void
expectSamePlan(const GemmPlan& a, const GemmPlan& b)
{
    EXPECT_EQ(a.design, b.design);
    EXPECT_EQ(a.p, b.p);
    EXPECT_EQ(a.kSlices, b.kSlices);
    EXPECT_EQ(a.streaming, b.streaming);
    EXPECT_EQ(a.gM, b.gM);
    EXPECT_EQ(a.gN, b.gN);
    EXPECT_EQ(a.tileM, b.tileM);
    EXPECT_EQ(a.tileN, b.tileN);
    EXPECT_EQ(a.m, b.m);
    EXPECT_EQ(a.k, b.k);
    EXPECT_EQ(a.n, b.n);
    EXPECT_EQ(a.groups, b.groups);
    EXPECT_DOUBLE_EQ(a.predictedSeconds, b.predictedSeconds);
    EXPECT_EQ(a.lutWramBytes, b.lutWramBytes);
    EXPECT_EQ(a.lutMramBytes, b.lutMramBytes);
}

TEST(PlanCache, SecondIdenticalLookupHits)
{
    const BackendPtr backend = makeBackend("upmem");
    PlanCache cache;
    const GemmProblem problem = makeShapeOnlyProblem(
        768, 768, 32, QuantConfig::preset("W1A3"));

    const GemmPlan first =
        cache.planFor(*backend, problem, DesignPoint::LoCaLut);
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().entries, 1u);

    const GemmPlan second =
        cache.planFor(*backend, problem, DesignPoint::LoCaLut);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().entries, 1u);
    expectSamePlan(first, second);

    // The cached plan is what the backend would have planned.
    expectSamePlan(second, backend->plan(problem, DesignPoint::LoCaLut));
    EXPECT_DOUBLE_EQ(cache.stats().hitRate(), 0.5);
}

TEST(PlanCache, EveryKeyFieldDiscriminates)
{
    const BackendPtr upmem = makeBackend("upmem");
    const BackendPtr host = makeBackend("host-cpu");
    PlanCache cache;
    const QuantConfig cfg = QuantConfig::preset("W1A3");
    const GemmProblem base = makeShapeOnlyProblem(768, 768, 32, cfg);

    cache.planFor(*upmem, base, DesignPoint::LoCaLut);

    // Different shape.
    cache.planFor(*upmem, makeShapeOnlyProblem(768, 768, 64, cfg),
                  DesignPoint::LoCaLut);
    // Different quantization config.
    cache.planFor(*upmem,
                  makeShapeOnlyProblem(768, 768, 32,
                                       QuantConfig::preset("W4A4")),
                  DesignPoint::LoCaLut);
    // Different design point.
    cache.planFor(*upmem, base, DesignPoint::OpLut);
    // Different overrides.
    PlanOverrides forced;
    forced.p = 2;
    cache.planFor(*upmem, base, DesignPoint::LoCaLut, forced);
    // Different backend, same everything else.
    cache.planFor(*host, base, DesignPoint::LoCaLut);

    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().misses, 6u);
    EXPECT_EQ(cache.stats().entries, 6u);

    // And each of them hits on re-lookup.
    cache.planFor(*upmem, base, DesignPoint::LoCaLut, forced);
    cache.planFor(*host, base, DesignPoint::LoCaLut);
    EXPECT_EQ(cache.stats().hits, 2u);
}

TEST(PlanCache, ClearDropsEntriesAndResetStatsZeroesCounters)
{
    const BackendPtr backend = makeBackend("upmem");
    PlanCache cache;
    const GemmProblem problem = makeShapeOnlyProblem(
        256, 256, 16, QuantConfig::preset("W2A2"));

    cache.planFor(*backend, problem, DesignPoint::LoCaLut);
    cache.planFor(*backend, problem, DesignPoint::LoCaLut);
    EXPECT_EQ(cache.size(), 1u);

    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.stats().hits, 1u); // counters survive clear()

    cache.resetStats();
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().misses, 0u);

    cache.planFor(*backend, problem, DesignPoint::LoCaLut);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(PlanCache, SameNameDifferentConfigDoesNotAlias)
{
    // Two backends named "upmem" with different device configurations
    // must not share plans: the config fingerprint is part of the key.
    PimSystemConfig small = PimSystemConfig::upmemServer();
    small.ranks = 2;
    const UpmemBackend server;
    const UpmemBackend tiny(small);

    PlanCache cache;
    const GemmProblem problem = makeShapeOnlyProblem(
        768, 768, 128, QuantConfig::preset("W1A3"));
    const GemmPlan serverPlan =
        cache.planFor(server, problem, DesignPoint::LoCaLut);
    const GemmPlan tinyPlan =
        cache.planFor(tiny, problem, DesignPoint::LoCaLut);
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_LE(tinyPlan.dpusUsed(), small.totalDpus());
    EXPECT_GT(serverPlan.dpusUsed(), small.totalDpus());
}

TEST(PlanCache, ShardedLookupCountsOneLogicalGemmNotNRankHits)
{
    // One sharded lookup is ONE logical GEMM.  A 4-rank column cut of
    // M = 256 produces four equal 64-row slices that share a single
    // sub-plan key, so the cold cut is 1 logical miss + 1 shard miss +
    // 3 shard hits — the per-shard reuse must not inflate the logical
    // hit counters (the pre-split accounting reported it as 3 hits).
    const BackendPtr backend = makeBackend("upmem");
    PlanCache cache;
    const GemmProblem problem = makeShapeOnlyProblem(
        256, 256, 16, QuantConfig::preset("W1A3"));
    ShardSpec spec;
    spec.numRanks = 4;

    const ShardPlan plan =
        cache.shardPlanFor(*backend, problem, DesignPoint::LoCaLut, spec);
    ASSERT_EQ(plan.shards.size(), 4u);
    PlanCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.shardMisses, 1u);
    EXPECT_EQ(stats.shardHits, 3u);
    EXPECT_DOUBLE_EQ(stats.hitRate(), 0.0);
    EXPECT_DOUBLE_EQ(stats.shardHitRate(), 0.75);

    // A warm logical lookup is one logical hit; no shard traffic at all.
    cache.shardPlanFor(*backend, problem, DesignPoint::LoCaLut, spec);
    stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.shardHits, 3u);
    EXPECT_EQ(stats.shardMisses, 1u);
}

TEST(PlanCache, ShardConfigIsPartOfTheKey)
{
    const BackendPtr backend = makeBackend("upmem");
    PlanCache cache;
    const GemmProblem problem = makeShapeOnlyProblem(
        256, 256, 16, QuantConfig::preset("W1A3"));

    ShardSpec two;
    two.numRanks = 2;
    ShardSpec four;
    four.numRanks = 4;
    ShardSpec fourAligned = four;
    fourAligned.align = 64;
    ShardSpec fourRow = four;
    fourRow.strategy = ShardStrategy::RowParallel;

    cache.shardPlanFor(*backend, problem, DesignPoint::LoCaLut, two);
    cache.shardPlanFor(*backend, problem, DesignPoint::LoCaLut, four);
    cache.shardPlanFor(*backend, problem, DesignPoint::LoCaLut,
                       fourAligned);
    cache.shardPlanFor(*backend, problem, DesignPoint::LoCaLut, fourRow);
    const auto cold = cache.stats();

    // Re-lookups of each distinct shard config hit.
    cache.shardPlanFor(*backend, problem, DesignPoint::LoCaLut, two);
    cache.shardPlanFor(*backend, problem, DesignPoint::LoCaLut, fourRow);
    EXPECT_EQ(cache.stats().misses, cold.misses);
    EXPECT_EQ(cache.stats().hits, cold.hits + 2);
}

TEST(PlanCacheStress, ManyThreadsHammeringSharedShapes)
{
    const BackendPtr backend = makeBackend("upmem");
    PlanCache cache;
    const QuantConfig cfg = QuantConfig::preset("W1A3");
    // Six distinct keys (three shapes, sharded and unsharded).
    const std::size_t shapes[3][3] = {
        {96, 96, 8}, {192, 96, 8}, {96, 192, 16}};
    constexpr unsigned kThreads = 8;
    constexpr unsigned kIters = 120;

    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            while (!go.load()) {
            }
            for (unsigned i = 0; i < kIters; ++i) {
                const auto& s = shapes[(t + i) % 3];
                const GemmProblem problem =
                    makeShapeOnlyProblem(s[0], s[1], s[2], cfg);
                if ((t + i) % 2 == 0) {
                    cache.planFor(*backend, problem, DesignPoint::LoCaLut);
                } else {
                    ShardSpec spec;
                    spec.numRanks = 4;
                    cache.shardPlanFor(*backend, problem,
                                       DesignPoint::LoCaLut, spec);
                }
            }
        });
    }
    go.store(true);
    for (std::thread& thread : threads) {
        thread.join();
    }

    const PlanCache::Stats stats = cache.stats();
    // planFor() deliberately plans outside the lock, so concurrent
    // workers racing on a cold key may each count a miss — but never
    // more than one per (thread, key), and every other lookup hits.
    // Logical lookups count exactly the top-level calls; per-shard
    // sub-plan traffic lands in the separate shard counters.
    EXPECT_EQ(stats.hits + stats.misses, kThreads * kIters);
    const std::uint64_t logicalKeys = 3 /*plain*/ + 3 /*sharded*/;
    EXPECT_LE(stats.misses, kThreads * logicalKeys);
    // Each sharded shape cuts into equal slices, so it adds at most one
    // slice sub-plan key; sub-plan lookups happen only on cold cuts
    // (at most one per thread per sharded shape, 4 slice lookups each).
    EXPECT_LE(stats.shardMisses, kThreads * 3);
    EXPECT_LE(stats.shardHits + stats.shardMisses, 4 * kThreads * 3);
    const std::uint64_t distinctKeys = logicalKeys +
                                       3 /*shard slice sub-plans*/;
    EXPECT_GE(stats.entries, 6u);
    EXPECT_LE(stats.entries, distinctKeys);
    EXPECT_GT(stats.hits, 0u);
}

/**
 * Concurrent PreparedGemm cache stress (run under -fsanitize=thread to
 * verify lock discipline): many threads hammer preparedFor() on a
 * handful of shared problems while executing through the returned
 * operands; every execution stays bit-exact, eviction races are
 * harmless, and outstanding shared_ptrs survive eviction.
 */
TEST(PlanCacheStress, ConcurrentPreparedOperands)
{
    const BackendPtr backend = makeBackend("upmem");
    PlanCache cache;
    cache.setMaxPreparedEntries(3); // force eviction churn under load
    const QuantConfig cfg = QuantConfig::preset("W1A4");
    constexpr unsigned kProblems = 4;
    std::vector<GemmProblem> problems;
    std::vector<GemmPlan> plans;
    std::vector<std::vector<std::int32_t>> references;
    for (unsigned i = 0; i < kProblems; ++i) {
        problems.push_back(
            makeRandomProblem(24 + 8 * i, 48, 3 + i, cfg, 100 + i));
        plans.push_back(cache.planFor(*backend, problems[i],
                                      DesignPoint::LoCaLut));
        references.push_back(
            referenceGemmInt(problems[i].w, problems[i].a));
    }

    constexpr unsigned kThreads = 8;
    constexpr unsigned kIters = 40;
    std::atomic<bool> go{false};
    std::atomic<unsigned> mismatches{0};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            while (!go.load()) {
            }
            for (unsigned i = 0; i < kIters; ++i) {
                const unsigned which = (t + i) % kProblems;
                const auto prepared = cache.preparedFor(
                    *backend, problems[which], plans[which]);
                ExecOptions options;
                options.prepared = prepared.get();
                const GemmResult result = backend->execute(
                    problems[which], plans[which], options);
                if (result.outInt != references[which]) {
                    mismatches.fetch_add(1);
                }
            }
        });
    }
    go.store(true);
    for (std::thread& thread : threads) {
        thread.join();
    }
    EXPECT_EQ(mismatches.load(), 0u);

    const PlanCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.preparedHits + stats.preparedMisses,
              kThreads * kIters);
    EXPECT_GT(stats.preparedHits, 0u);
    EXPECT_LE(stats.preparedEntries, 3u);
    EXPECT_GT(stats.preparedBytes, 0u);

    // clear() drops the operands; the next lookup rebuilds.
    cache.clear();
    EXPECT_EQ(cache.stats().preparedEntries, 0u);
    const auto rebuilt =
        cache.preparedFor(*backend, problems[0], plans[0]);
    EXPECT_TRUE(rebuilt->matches(problems[0], plans[0]));
}

TEST(PlanCacheStress, SharedSessionCompileAndSubmit)
{
    SessionOptions options;
    options.numRanks = 2;
    InferenceSession session(makeBackend("upmem"), options);
    const TransformerConfig model = TransformerConfig::opt125m();
    const QuantConfig cfg = QuantConfig::preset("W4A4");

    constexpr unsigned kThreads = 6;
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            while (!go.load()) {
            }
            for (unsigned i = 0; i < 8; ++i) {
                const auto workload = session.compile(
                    WorkloadSpec::decode(model, 8, 32, 1 + (t + i) % 3),
                    cfg, DesignPoint::LoCaLut);
                const auto id = session.submit(workload);
                EXPECT_GT(session.waitReport(id).timing.total, 0.0);
            }
        });
    }
    go.store(true);
    for (std::thread& thread : threads) {
        thread.join();
    }
    session.drain();
    EXPECT_EQ(session.pendingRequests(), 0u);
    // All threads share three decode-step shard configs over four GEMM
    // shapes; after the cold misses everything hits.
    EXPECT_GT(session.planCacheStats().hitRate(), 0.5);
}

TEST(PlanKey, EqualityAndHashAgree)
{
    const BackendPtr backend = makeBackend("upmem");
    const GemmProblem problem = makeShapeOnlyProblem(
        64, 128, 8, QuantConfig::preset("W1A4"));
    const PlanKey a =
        PlanKey::of(*backend, problem, DesignPoint::LoCaLut, {});
    const PlanKey b =
        PlanKey::of(*backend, problem, DesignPoint::LoCaLut, {});
    EXPECT_EQ(a, b);
    EXPECT_EQ(PlanKeyHash{}(a), PlanKeyHash{}(b));

    PlanKey c = a;
    c.design = DesignPoint::OpLut;
    EXPECT_FALSE(a == c);
}

} // namespace
} // namespace localut
