/**
 * @file
 * PlanCache tests: a second plan() with an identical key returns the
 * cached plan (hit counter increments), while any key-field change — the
 * shape, the quantization config, the design point, the overrides, or the
 * backend — misses.
 */

#include <gtest/gtest.h>

#include "backend/backend.h"
#include "backend/upmem_backend.h"
#include "nn/inference.h"
#include "serving/plan_cache.h"

namespace localut {
namespace {

/** Field-by-field plan equality (GemmPlan has no operator==). */
void
expectSamePlan(const GemmPlan& a, const GemmPlan& b)
{
    EXPECT_EQ(a.design, b.design);
    EXPECT_EQ(a.p, b.p);
    EXPECT_EQ(a.kSlices, b.kSlices);
    EXPECT_EQ(a.streaming, b.streaming);
    EXPECT_EQ(a.gM, b.gM);
    EXPECT_EQ(a.gN, b.gN);
    EXPECT_EQ(a.tileM, b.tileM);
    EXPECT_EQ(a.tileN, b.tileN);
    EXPECT_EQ(a.m, b.m);
    EXPECT_EQ(a.k, b.k);
    EXPECT_EQ(a.n, b.n);
    EXPECT_EQ(a.groups, b.groups);
    EXPECT_DOUBLE_EQ(a.predictedSeconds, b.predictedSeconds);
    EXPECT_EQ(a.lutWramBytes, b.lutWramBytes);
    EXPECT_EQ(a.lutMramBytes, b.lutMramBytes);
}

TEST(PlanCache, SecondIdenticalLookupHits)
{
    const BackendPtr backend = makeBackend("upmem");
    PlanCache cache;
    const GemmProblem problem = makeShapeOnlyProblem(
        768, 768, 32, QuantConfig::preset("W1A3"));

    const GemmPlan first =
        cache.planFor(*backend, problem, DesignPoint::LoCaLut);
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().entries, 1u);

    const GemmPlan second =
        cache.planFor(*backend, problem, DesignPoint::LoCaLut);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().entries, 1u);
    expectSamePlan(first, second);

    // The cached plan is what the backend would have planned.
    expectSamePlan(second, backend->plan(problem, DesignPoint::LoCaLut));
    EXPECT_DOUBLE_EQ(cache.stats().hitRate(), 0.5);
}

TEST(PlanCache, EveryKeyFieldDiscriminates)
{
    const BackendPtr upmem = makeBackend("upmem");
    const BackendPtr host = makeBackend("host-cpu");
    PlanCache cache;
    const QuantConfig cfg = QuantConfig::preset("W1A3");
    const GemmProblem base = makeShapeOnlyProblem(768, 768, 32, cfg);

    cache.planFor(*upmem, base, DesignPoint::LoCaLut);

    // Different shape.
    cache.planFor(*upmem, makeShapeOnlyProblem(768, 768, 64, cfg),
                  DesignPoint::LoCaLut);
    // Different quantization config.
    cache.planFor(*upmem,
                  makeShapeOnlyProblem(768, 768, 32,
                                       QuantConfig::preset("W4A4")),
                  DesignPoint::LoCaLut);
    // Different design point.
    cache.planFor(*upmem, base, DesignPoint::OpLut);
    // Different overrides.
    PlanOverrides forced;
    forced.p = 2;
    cache.planFor(*upmem, base, DesignPoint::LoCaLut, forced);
    // Different backend, same everything else.
    cache.planFor(*host, base, DesignPoint::LoCaLut);

    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().misses, 6u);
    EXPECT_EQ(cache.stats().entries, 6u);

    // And each of them hits on re-lookup.
    cache.planFor(*upmem, base, DesignPoint::LoCaLut, forced);
    cache.planFor(*host, base, DesignPoint::LoCaLut);
    EXPECT_EQ(cache.stats().hits, 2u);
}

TEST(PlanCache, ClearDropsEntriesAndResetStatsZeroesCounters)
{
    const BackendPtr backend = makeBackend("upmem");
    PlanCache cache;
    const GemmProblem problem = makeShapeOnlyProblem(
        256, 256, 16, QuantConfig::preset("W2A2"));

    cache.planFor(*backend, problem, DesignPoint::LoCaLut);
    cache.planFor(*backend, problem, DesignPoint::LoCaLut);
    EXPECT_EQ(cache.size(), 1u);

    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.stats().hits, 1u); // counters survive clear()

    cache.resetStats();
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(cache.stats().misses, 0u);

    cache.planFor(*backend, problem, DesignPoint::LoCaLut);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(PlanCache, SameNameDifferentConfigDoesNotAlias)
{
    // Two backends named "upmem" with different device configurations
    // must not share plans: the config fingerprint is part of the key.
    PimSystemConfig small = PimSystemConfig::upmemServer();
    small.ranks = 2;
    const UpmemBackend server;
    const UpmemBackend tiny(small);

    PlanCache cache;
    const GemmProblem problem = makeShapeOnlyProblem(
        768, 768, 128, QuantConfig::preset("W1A3"));
    const GemmPlan serverPlan =
        cache.planFor(server, problem, DesignPoint::LoCaLut);
    const GemmPlan tinyPlan =
        cache.planFor(tiny, problem, DesignPoint::LoCaLut);
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_LE(tinyPlan.dpusUsed(), small.totalDpus());
    EXPECT_GT(serverPlan.dpusUsed(), small.totalDpus());
}

TEST(PlanKey, EqualityAndHashAgree)
{
    const BackendPtr backend = makeBackend("upmem");
    const GemmProblem problem = makeShapeOnlyProblem(
        64, 128, 8, QuantConfig::preset("W1A4"));
    const PlanKey a =
        PlanKey::of(*backend, problem, DesignPoint::LoCaLut, {});
    const PlanKey b =
        PlanKey::of(*backend, problem, DesignPoint::LoCaLut, {});
    EXPECT_EQ(a, b);
    EXPECT_EQ(PlanKeyHash{}(a), PlanKeyHash{}(b));

    PlanKey c = a;
    c.design = DesignPoint::OpLut;
    EXPECT_FALSE(a == c);
}

} // namespace
} // namespace localut
