/**
 * @file
 * PQ baseline tests: k-means convergence, PQ GEMM approximation quality
 * and its cost structure (host centroid selection dominates, Fig. 16a),
 * and the accuracy-proxy harness ordering (fp32 >= LoCaLUT-quantized >=
 * PQ on feature fidelity).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/kmeans.h"
#include "baselines/pq_gemm.h"
#include "common/linalg.h"
#include "common/rng.h"
#include "nn/accuracy_proxy.h"

namespace localut {
namespace {

TEST(KMeans, RecoversWellSeparatedClusters)
{
    Rng rng(5);
    const unsigned k = 3, dim = 4;
    const std::size_t perCluster = 40;
    std::vector<float> pts;
    for (unsigned c = 0; c < k; ++c) {
        for (std::size_t i = 0; i < perCluster; ++i) {
            for (unsigned d = 0; d < dim; ++d) {
                pts.push_back(10.0f * static_cast<float>(c) +
                              static_cast<float>(0.1 * rng.nextGaussian()));
            }
        }
    }
    const KMeansResult r =
        kmeans(pts, k * perCluster, dim, k, 15, DistanceMetric::L2, 7);
    // All points of one cluster share an assignment.
    for (unsigned c = 0; c < k; ++c) {
        const std::uint32_t rep = r.assignments[c * perCluster];
        for (std::size_t i = 1; i < perCluster; ++i) {
            EXPECT_EQ(r.assignments[c * perCluster + i], rep);
        }
    }
    EXPECT_LT(r.inertia / (k * perCluster), 0.5);
}

TEST(KMeans, L1MetricWorks)
{
    Rng rng(6);
    std::vector<float> pts(200 * 8);
    for (auto& v : pts) {
        v = static_cast<float>(rng.nextGaussian());
    }
    const KMeansResult r =
        kmeans(pts, 200, 8, 16, 10, DistanceMetric::L1, 8);
    EXPECT_EQ(r.centroids.size(), 16u * 8);
    for (auto a : r.assignments) {
        EXPECT_LT(a, 16u);
    }
}

TEST(PqGemm, ApproximatesTrueProduct)
{
    Rng rng(9);
    const std::size_t m = 24, k = 32, n = 64;
    std::vector<float> w(m * k), a(k * n);
    for (auto& v : w) {
        v = static_cast<float>(rng.nextGaussian());
    }
    for (auto& v : a) {
        v = static_cast<float>(rng.nextGaussian());
    }
    const PqGemmEngine engine(PimSystemConfig::upmemServer(),
                              pimDlParams());
    const PqGemmResult r = engine.run(w, a, m, k, n);
    const std::vector<float> exact = matmul(w, a, m, k, n);

    double errNum = 0, errDen = 0;
    for (std::size_t i = 0; i < exact.size(); ++i) {
        errNum += (r.out[i] - exact[i]) * (r.out[i] - exact[i]);
        errDen += exact[i] * exact[i];
    }
    const double relErr = std::sqrt(errNum / errDen);
    // PQ is approximate but must correlate strongly with the true product.
    EXPECT_LT(relErr, 0.9);
    EXPECT_GT(relErr, 1e-4); // and it is genuinely approximate
}

TEST(PqGemm, HostCentroidSelectionDominatesHostTime)
{
    // Paper Fig. 16a: PIM-DL's host-side centroid search is the largest
    // host component by far.
    Rng rng(10);
    const std::size_t m = 128, k = 256, n = 128;
    std::vector<float> w(m * k), a(k * n);
    for (auto& v : w) {
        v = static_cast<float>(rng.nextGaussian());
    }
    for (auto& v : a) {
        v = static_cast<float>(rng.nextGaussian());
    }
    const PqGemmEngine engine(PimSystemConfig::upmemServer(),
                              pimDlParams());
    const PqGemmResult r = engine.run(w, a, m, k, n, false);
    const double centroid =
        r.timing.seconds.get(phaseName(Phase::HostCentroid));
    EXPECT_GT(centroid, 0.5 * r.timing.hostSeconds);
}

TEST(PqGemm, LutDlaCentroidSelectionIsCheaper)
{
    Rng rng(11);
    const std::size_t m = 64, k = 128, n = 64;
    std::vector<float> w(m * k), a(k * n);
    for (auto& v : w) {
        v = static_cast<float>(rng.nextGaussian());
    }
    for (auto& v : a) {
        v = static_cast<float>(rng.nextGaussian());
    }
    const PqGemmEngine pimdl(PimSystemConfig::upmemServer(),
                             pimDlParams());
    const PqGemmEngine dla(PimSystemConfig::upmemServer(),
                           lutDlaParams(DistanceMetric::L1));
    const double tPimdl = pimdl.run(w, a, m, k, n, false).timing.total;
    const double tDla = dla.run(w, a, m, k, n, false).timing.total;
    EXPECT_LT(tDla, tPimdl);
}

TEST(AccuracyProxy, OrderingFp32GeQuantGePq)
{
    ProxyTaskConfig cfg;
    cfg.trainSamples = 256;
    cfg.testSamples = 256;
    const AccuracyProxy proxy(cfg);
    const double fp32 = proxy.evaluateFp32().accuracy;
    const double w4a4 =
        proxy.evaluateQuantized(QuantConfig::preset("W4A4")).accuracy;
    const double w1a3 =
        proxy.evaluateQuantized(QuantConfig::preset("W1A3")).accuracy;
    const ProxyScore pq = proxy.evaluatePq(pimDlParams());

    EXPECT_GT(fp32, 80.0);
    // Quantization costs little on this task; PQ's feature error is the
    // largest (the paper's Fig. 15 mechanism).
    EXPECT_GE(fp32 + 1e-9, w4a4);
    EXPECT_GT(w4a4, 50.0);
    EXPECT_GT(w1a3, 40.0);
    const double quantMse =
        proxy.evaluateQuantized(QuantConfig::preset("W4A4")).featureMse;
    EXPECT_GT(pq.featureMse, quantMse);
}

TEST(AccuracyProxy, Fig21bReorderingIsHarmless)
{
    // Paper Fig. 21b: floating-point LUT execution with the reordering
    // LUT shows negligible accuracy impact vs plain OP ordering.
    ProxyTaskConfig cfg;
    cfg.trainSamples = 192;
    cfg.testSamples = 192;
    const AccuracyProxy proxy(cfg);
    const QuantConfig fp = QuantConfig::fpPreset(1, 4);
    for (unsigned p : {1u, 2u, 3u}) {
        const double op = proxy.evaluateFpLut(fp, p, false).accuracy;
        const double localut = proxy.evaluateFpLut(fp, p, true).accuracy;
        EXPECT_NEAR(op, localut, 6.0) << "p=" << p;
    }
}

} // namespace
} // namespace localut
