/**
 * @file
 * The prepared-operand execution engine (kernels/exec_engine.h):
 *
 *  - prepared vs unprepared bit-exactness on every design point, int
 *    and float, serial and tile-parallel;
 *  - the zero-allocation steady state: with a prepared operand, a warm
 *    arena, and a warm output vector, executing a GEMM performs ZERO
 *    heap allocations — asserted with a counting global allocator;
 *  - ExecArena growth semantics, weight fingerprinting, the shared
 *    LUT table cache, and TilePool determinism/exception propagation.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <stdexcept>

#include "common/parallel.h"
#include "kernels/exec_engine.h"
#include "kernels/functional.h"
#include "kernels/gemm.h"
#include "lut/table_cache.h"

// ------------------------------------------------- counting allocator
//
// Binary-wide operator new/delete replacement counting this thread's
// allocations.  Only deltas around a measured region are asserted, so
// gtest's own allocations elsewhere are harmless.

namespace {

thread_local std::uint64_t tlsAllocations = 0;

void*
countedAlloc(std::size_t size)
{
    ++tlsAllocations;
    if (void* p = std::malloc(size)) {
        return p;
    }
    throw std::bad_alloc();
}

void*
countedAlignedAlloc(std::size_t size, std::align_val_t align)
{
    ++tlsAllocations;
    const std::size_t alignment = static_cast<std::size_t>(align);
    const std::size_t rounded = (size + alignment - 1) & ~(alignment - 1);
    if (void* p = std::aligned_alloc(alignment, rounded)) {
        return p;
    }
    throw std::bad_alloc();
}

} // namespace

void*
operator new(std::size_t size)
{
    return countedAlloc(size);
}

void*
operator new[](std::size_t size)
{
    return countedAlloc(size);
}

void*
operator new(std::size_t size, std::align_val_t align)
{
    return countedAlignedAlloc(size, align);
}

void*
operator new[](std::size_t size, std::align_val_t align)
{
    return countedAlignedAlloc(size, align);
}

void
operator delete(void* p) noexcept
{
    std::free(p);
}

void
operator delete[](void* p) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace localut {
namespace {

GemmPlan
syntheticPlan(const GemmProblem& problem, DesignPoint design, unsigned p,
              bool streaming = false, unsigned kSlices = 1)
{
    GemmPlan plan(design, problem.config());
    plan.m = problem.m();
    plan.k = problem.k();
    plan.n = problem.n();
    plan.p = p;
    plan.streaming = streaming;
    plan.kSlices = kSlices;
    plan.groups = static_cast<unsigned>(
        (plan.k + plan.p - 1) / std::size_t{plan.p});
    return plan;
}

TEST(ExecEngine, PreparedMatchesUnpreparedOnEveryDesignPoint)
{
    const QuantConfig cfg = QuantConfig::preset("W4A4");
    const GemmProblem problem = makeRandomProblem(37, 53, 9, cfg, 7);
    const auto reference = referenceGemmInt(problem.w, problem.a);

    struct Case {
        DesignPoint design;
        unsigned p;
        bool streaming;
        unsigned kSlices;
    };
    const Case cases[] = {
        {DesignPoint::NaivePim, 1, false, 1},
        {DesignPoint::Ltc, 1, false, 1},
        {DesignPoint::OpLut, 2, false, 1},
        {DesignPoint::OpLutDram, 2, false, 1},
        {DesignPoint::OpLc, 2, false, 1},
        {DesignPoint::OpLcRc, 2, false, 1},
        {DesignPoint::LoCaLut, 2, false, 1},
        {DesignPoint::LoCaLut, 2, true, 4},
        {DesignPoint::LoCaLut, 3, true, 2},
    };
    for (const Case& c : cases) {
        SCOPED_TRACE(designPointName(c.design));
        const GemmPlan plan = syntheticPlan(problem, c.design, c.p,
                                            c.streaming, c.kSlices);
        std::vector<std::int32_t> unprepared;
        executeGemmInt(problem, plan, {}, unprepared);
        EXPECT_EQ(unprepared, reference);

        const auto prepared = prepareGemm(problem, plan);
        ExecOptions options;
        options.prepared = prepared.get();
        std::vector<std::int32_t> out;
        executeGemmInt(problem, plan, options, out);
        EXPECT_EQ(out, unprepared);

        // Tile-parallel execution is bit-identical too.
        TilePool pool(3);
        options.tiles = &pool;
        std::vector<std::int32_t> tiled;
        executeGemmInt(problem, plan, options, tiled);
        EXPECT_EQ(tiled, unprepared);
    }
}

TEST(ExecEngine, FloatPathsMatchLegacySemantics)
{
    const QuantConfig cfg = QuantConfig::fpPreset(1, 8);
    const GemmProblem problem = makeRandomProblem(21, 40, 5, cfg, 11);
    const auto reference = referenceGemmFloat(problem.w, problem.a);

    // The naive float path replicates the reference exactly.
    {
        const GemmPlan plan =
            syntheticPlan(problem, DesignPoint::NaivePim, 1);
        std::vector<float> out;
        executeGemmFloat(problem, plan, {}, out);
        EXPECT_EQ(out, reference);
    }
    // Prepared == unprepared bit-for-bit on the LUT float paths
    // (including the batched slice-stream accumulation order).
    for (bool streaming : {false, true}) {
        const GemmPlan plan = syntheticPlan(
            problem, DesignPoint::LoCaLut, 2, streaming, 4);
        std::vector<float> unprepared;
        executeGemmFloat(problem, plan, {}, unprepared);

        const auto prepared = prepareGemm(problem, plan);
        ExecOptions options;
        options.prepared = prepared.get();
        TilePool pool(2);
        options.tiles = &pool;
        std::vector<float> out;
        executeGemmFloat(problem, plan, options, out);
        EXPECT_EQ(out, unprepared);
    }
}

TEST(ExecEngine, SteadyStateExecutionPerformsZeroAllocations)
{
    const QuantConfig cfg = QuantConfig::preset("W4A4");
    const GemmProblem problem = makeRandomProblem(64, 96, 12, cfg, 3);
    const GemmPlan plan =
        syntheticPlan(problem, DesignPoint::LoCaLut, 2, true, 4);
    const auto prepared = prepareGemm(problem, plan);

    ExecArena arena;
    ExecOptions options;
    options.prepared = prepared.get();
    options.arena = &arena;

    // Warm-up: grows the arena buffers and the output vector.
    std::vector<std::int32_t> out;
    executeGemmInt(problem, plan, options, out);
    const auto reference = out;
    const std::uint64_t grownBuffers = arena.allocations();
    EXPECT_GT(grownBuffers, 0u);

    // Steady state: repeated execution allocates NOTHING — no arena
    // growth and zero operator-new calls on this thread.
    for (int i = 0; i < 3; ++i) {
        const std::uint64_t before = tlsAllocations;
        executeGemmInt(problem, plan, options, out);
        EXPECT_EQ(tlsAllocations - before, 0u) << "iteration " << i;
    }
    EXPECT_EQ(arena.allocations(), grownBuffers);
    EXPECT_EQ(out, reference);
}

TEST(ExecEngine, ArenaBuffersGrowButNeverShrink)
{
    ExecArena arena;
    std::int32_t* big = arena.i32(0, 1000);
    ASSERT_NE(big, nullptr);
    const std::uint64_t allocs = arena.allocations();
    const std::uint64_t reserved = arena.bytesReserved();
    // Smaller and equal requests reuse the buffer.
    EXPECT_EQ(arena.i32(0, 10), big);
    EXPECT_EQ(arena.i32(0, 1000), big);
    EXPECT_EQ(arena.allocations(), allocs);
    EXPECT_EQ(arena.bytesReserved(), reserved);
    // A different slot is a different buffer.
    EXPECT_NE(arena.i32(1, 10), big);
    // Growth allocates once and keeps the larger capacity.
    arena.i32(0, 100000);
    const std::uint64_t grown = arena.allocations();
    arena.i32(0, 50000);
    EXPECT_EQ(arena.allocations(), grown);
}

TEST(ExecEngine, WeightFingerprintSeparatesContent)
{
    const QuantConfig cfg = QuantConfig::preset("W4A4");
    const GemmProblem a = makeRandomProblem(16, 24, 4, cfg, 1);
    const GemmProblem b = makeRandomProblem(16, 24, 4, cfg, 2);
    EXPECT_EQ(weightsFingerprint(a.w), weightsFingerprint(a.w));
    EXPECT_NE(weightsFingerprint(a.w), weightsFingerprint(b.w));

    // One flipped code flips the fingerprint.
    GemmProblem c = a;
    c.w.codes[5] = static_cast<std::uint16_t>(c.w.codes[5] ^ 1u);
    EXPECT_NE(weightsFingerprint(a.w), weightsFingerprint(c.w));
}

TEST(ExecEngine, TableCacheSharesTablesAcrossPreparations)
{
    LutTableCache cache(8);
    const LutShape shape(QuantConfig::preset("W2A2"), 2);
    const auto first = cache.canonicalLut(shape);
    const auto second = cache.canonicalLut(shape);
    EXPECT_EQ(first.get(), second.get());
    const auto stats = cache.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, 1u);

    // Eviction keeps the cache bounded; outstanding pointers survive.
    for (unsigned p = 1; p <= 6; ++p) {
        cache.reorderingLut(LutShape(QuantConfig::preset("W1A3"), p));
        cache.opLut(LutShape(QuantConfig::preset("W1A3"), p));
    }
    EXPECT_LE(cache.stats().entries, 8u);
    EXPECT_EQ(first->rows(), shape.weightRows());
}

TEST(TilePool, RunsEveryTileExactlyOnceAndPropagatesExceptions)
{
    TilePool pool(4);
    EXPECT_EQ(pool.concurrency(), 4u);

    std::vector<std::atomic<int>> hits(257);
    pool.run(hits.size(), [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < hits.size(); ++i) {
        EXPECT_EQ(hits[i].load(), 1) << i;
    }

    EXPECT_THROW(pool.run(64,
                          [&](std::size_t i) {
                              if (i == 17) {
                                  throw std::runtime_error("tile 17");
                              }
                          }),
                 std::runtime_error);

    // The pool survives an exception and keeps executing batches.
    std::atomic<int> count{0};
    pool.run(100, [&](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 100);
}

} // namespace
} // namespace localut
