/**
 * @file
 * LUT residency manager tests: the fill -> evict -> re-broadcast cycle
 * against a tight MRAM budget, cold-vs-warm serving through the
 * InferenceSession (a repeated decode pays table broadcast once per
 * layer, not once per step), per-rank budget consumption under sharding,
 * and the differential invariant — residency changes costs, never
 * functional values, on every backend and rank count.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "backend/backend.h"
#include "lut/capacity.h"
#include "nn/inference.h"
#include "serving/residency.h"
#include "serving/session.h"

namespace localut {
namespace {

/** A fabricated LoCaLUT plan with a forced packing degree, so table
 * sizes are exact and independent of the planner. */
GemmPlan
fabricatedPlan(const QuantConfig& cfg, unsigned p, std::size_t m = 768,
               std::size_t k = 768, std::size_t n = 32)
{
    GemmPlan plan(DesignPoint::LoCaLut, cfg);
    plan.p = p;
    plan.m = m;
    plan.k = k;
    plan.n = n;
    return plan;
}

TEST(TableSetBytes, FollowsTheCapacityModelPerDesign)
{
    const QuantConfig cfg = QuantConfig::preset("W1A3");
    const LutShape shape(cfg, 3);
    EXPECT_EQ(tableSetBytes(fabricatedPlan(cfg, 3)), localutBytes(shape));

    GemmPlan op(DesignPoint::OpLut, cfg);
    op.p = 3;
    EXPECT_EQ(tableSetBytes(op), opPackedLutBytes(shape));

    GemmPlan lc(DesignPoint::OpLc, cfg);
    lc.p = 3;
    EXPECT_EQ(tableSetBytes(lc), canonicalLutBytes(shape));

    // No host-built tables: nothing to place or broadcast.
    GemmPlan naive(DesignPoint::NaivePim, cfg);
    EXPECT_EQ(tableSetBytes(naive), 0u);
    GemmPlan ltc(DesignPoint::Ltc, cfg);
    EXPECT_EQ(tableSetBytes(ltc), 0u);
}

TEST(ResidencyManager, FillEvictRebroadcast)
{
    const BackendPtr backend = makeBackend("upmem");
    const QuantConfig cfg = QuantConfig::preset("W4A4");
    const std::uint64_t setBytes = tableSetBytes(fabricatedPlan(cfg, 2));
    ASSERT_GT(setBytes, 0u);

    // Budget holds exactly two sets.
    ResidencyManager manager(backend, /*numRanks=*/1,
                             /*budgetBytesPerUnit=*/2 * setBytes,
                             ResidencyPolicy::CostAware);

    const GemmPlan plan = fabricatedPlan(cfg, 2);
    // Fill: A and B broadcast on first touch and then stay resident.
    EXPECT_FALSE(manager.acquire(plan, "a").hit);
    EXPECT_FALSE(manager.acquire(plan, "b").hit);
    EXPECT_TRUE(manager.acquire(plan, "a").hit);
    EXPECT_TRUE(manager.acquire(plan, "b").hit);
    EXPECT_EQ(manager.residentBytes(0), 2 * setBytes);

    // C does not fit; the lowest (rebroadcast cost x observed reuse)
    // resident set goes.  A and B share a rebroadcast cost, and A has
    // more observed uses, so B is the victim.
    EXPECT_TRUE(manager.acquire(plan, "a").hit);
    const ResidencyCharge cCharge = manager.acquire(plan, "c");
    EXPECT_FALSE(cCharge.hit);
    EXPECT_GT(cCharge.seconds, 0.0);
    EXPECT_EQ(manager.residentBytes(0), 2 * setBytes);
    EXPECT_EQ(manager.stats().evictions, 1u);

    // B (the victim) re-broadcasts at the same charge; A survived.
    EXPECT_TRUE(manager.acquire(plan, "a").hit);
    const ResidencyCharge bAgain = manager.acquire(plan, "b");
    EXPECT_FALSE(bAgain.hit);
    EXPECT_DOUBLE_EQ(bAgain.seconds, cCharge.seconds);
    EXPECT_EQ(manager.stats().rebroadcasts, 1u);

    const ResidencyStats stats = manager.stats();
    EXPECT_EQ(stats.misses, 4u); // a, b, c, b-again
    EXPECT_EQ(stats.hits, 4u);
    EXPECT_EQ(stats.tableSets, 2u);
    EXPECT_DOUBLE_EQ(stats.broadcastBytes,
                     4.0 * static_cast<double>(setBytes));
}

TEST(ResidencyManager, OversizedSetStreamsWithoutEvictingTheWorld)
{
    const BackendPtr backend = makeBackend("upmem");
    const QuantConfig cfg = QuantConfig::preset("W4A4");
    const std::uint64_t setBytes = tableSetBytes(fabricatedPlan(cfg, 2));
    ResidencyManager manager(backend, 1, 2 * setBytes,
                             ResidencyPolicy::CostAware);

    EXPECT_FALSE(manager.acquire(fabricatedPlan(cfg, 2), "small").hit);
    // 100 layer instances of the same tables exceed the whole budget:
    // the set can never be resident, so every acquire pays the
    // broadcast — and the small resident set is left alone.
    for (int i = 0; i < 2; ++i) {
        const ResidencyCharge charge = manager.acquire(
            fabricatedPlan(cfg, 2), "huge", /*instances=*/100);
        EXPECT_FALSE(charge.hit);
        EXPECT_DOUBLE_EQ(charge.bytes,
                         100.0 * static_cast<double>(setBytes));
    }
    EXPECT_EQ(manager.stats().evictions, 0u);
    EXPECT_TRUE(manager.acquire(fabricatedPlan(cfg, 2), "small").hit);
}

TEST(ResidencyManager, DisabledPolicyChargesAndRetainsNothing)
{
    const BackendPtr backend = makeBackend("upmem");
    ResidencyManager manager(backend, 1, 0, ResidencyPolicy::Disabled);
    const ResidencyCharge charge =
        manager.acquire(fabricatedPlan(QuantConfig::preset("W1A3"), 3));
    EXPECT_TRUE(charge.hit);
    EXPECT_DOUBLE_EQ(charge.seconds, 0.0);
    EXPECT_EQ(manager.stats().hits + manager.stats().misses, 0u);
    EXPECT_EQ(manager.residentBytes(0), 0u);
}

TEST(ResidencyManager, BudgetDefaultsToTheBackendMemoryProfile)
{
    const BackendPtr backend = makeBackend("upmem");
    ResidencyManager manager(backend, 1, 0, ResidencyPolicy::CostAware);
    EXPECT_EQ(manager.budgetBytesPerUnit(),
              backend->memoryProfile().lutBytesPerUnit);
    EXPECT_GT(manager.budgetBytesPerUnit(), 0u);
}

TEST(ResidencyManager, ShardedTableSetsConsumePerRankBudgets)
{
    const BackendPtr backend = makeBackend("upmem");
    const QuantConfig cfg = QuantConfig::preset("W1A3");
    const GemmProblem problem = makeShapeOnlyProblem(256, 256, 16, cfg);
    ShardSpec spec;
    spec.numRanks = 4;
    const ShardPlan plan =
        makeShardPlan(*backend, problem, DesignPoint::LoCaLut, spec);
    ASSERT_EQ(plan.shards.size(), 4u);

    ResidencyManager manager(backend, 4, 0, ResidencyPolicy::CostAware);
    const ResidencyCharge charge = manager.acquire(plan);
    EXPECT_FALSE(charge.hit);
    double total = 0;
    for (unsigned r = 0; r < 4; ++r) {
        EXPECT_EQ(manager.residentBytes(r),
                  tableSetBytes(plan.shards[r].plan));
        total += static_cast<double>(manager.residentBytes(r));
    }
    EXPECT_DOUBLE_EQ(charge.bytes, total);
    EXPECT_TRUE(manager.acquire(plan).hit);

    // A different shard cut of the same GEMM keys separately.
    ShardSpec two;
    two.numRanks = 2;
    const ShardPlan otherPlan =
        makeShardPlan(*backend, problem, DesignPoint::LoCaLut, two);
    EXPECT_FALSE(manager.acquire(otherPlan).hit);
}

TEST(ResidencyManager, InstanceCountIsPartOfTheIdentity)
{
    // Two owner groups that agree on everything but the layer count are
    // different table sets: more layers = more bytes, more broadcast.
    const BackendPtr backend = makeBackend("upmem");
    const QuantConfig cfg = QuantConfig::preset("W4A4");
    ResidencyManager manager(backend, 1, 0, ResidencyPolicy::CostAware);
    const GemmPlan plan = fabricatedPlan(cfg, 2);
    const double setBytes =
        static_cast<double>(tableSetBytes(plan));

    const ResidencyCharge twelve = manager.acquire(plan, "qkv", 12);
    EXPECT_FALSE(twelve.hit);
    EXPECT_DOUBLE_EQ(twelve.bytes, 12.0 * setBytes);
    // A 24-layer sibling must NOT hit the 12-layer set for free.
    const ResidencyCharge twentyFour = manager.acquire(plan, "qkv", 24);
    EXPECT_FALSE(twentyFour.hit);
    EXPECT_DOUBLE_EQ(twentyFour.bytes, 24.0 * setBytes);
    EXPECT_TRUE(manager.acquire(plan, "qkv", 12).hit);
    EXPECT_TRUE(manager.acquire(plan, "qkv", 24).hit);
}

TEST(ResidencyManager, WrappedShardRanksAreBudgetCheckedAsAnAggregate)
{
    // A shard plan carrying more shards than the manager has ranks maps
    // several entries onto one rank; the budget check must see their
    // SUM, not admit each entry individually and overflow the ledger.
    const BackendPtr backend = makeBackend("upmem");
    const QuantConfig cfg = QuantConfig::preset("W1A3");
    const GemmProblem problem = makeShapeOnlyProblem(256, 256, 16, cfg);
    ShardSpec spec;
    spec.numRanks = 4;
    const ShardPlan plan =
        makeShardPlan(*backend, problem, DesignPoint::LoCaLut, spec);
    ASSERT_EQ(plan.shards.size(), 4u);
    const std::uint64_t sliceBytes = tableSetBytes(plan.shards[0].plan);

    // Budget fits two slices; all four wrap onto rank 0.
    ResidencyManager manager(backend, 1, 2 * sliceBytes,
                             ResidencyPolicy::CostAware);
    EXPECT_FALSE(manager.acquire(plan).hit);
    EXPECT_FALSE(manager.acquire(plan).hit); // never admitted: oversized
    EXPECT_LE(manager.residentBytes(0), manager.budgetBytesPerUnit());
    EXPECT_EQ(manager.stats().tableSets, 0u);

    // With room for all four aggregated slices it is admitted whole.
    ResidencyManager roomy(backend, 1, 4 * sliceBytes,
                           ResidencyPolicy::CostAware);
    EXPECT_FALSE(roomy.acquire(plan).hit);
    EXPECT_TRUE(roomy.acquire(plan).hit);
    EXPECT_EQ(roomy.residentBytes(0), 4 * sliceBytes);
}

TEST(ResidencyManager, ClearDropsResidencyButKeepsRebroadcastHistory)
{
    const BackendPtr backend = makeBackend("upmem");
    const QuantConfig cfg = QuantConfig::preset("W4A4");
    ResidencyManager manager(backend, 1, 0, ResidencyPolicy::CostAware);
    const GemmPlan plan = fabricatedPlan(cfg, 2);

    EXPECT_FALSE(manager.acquire(plan, "a").hit);
    manager.clear();
    EXPECT_EQ(manager.residentBytes(0), 0u);
    EXPECT_EQ(manager.stats().tableSets, 0u);
    // The post-reset miss is a re-broadcast of a known set.
    EXPECT_FALSE(manager.acquire(plan, "a").hit);
    EXPECT_EQ(manager.stats().rebroadcasts, 1u);
}

TEST(ResidencySession, RepeatedDecodePaysBroadcastOncePerLayer)
{
    const TransformerConfig model = TransformerConfig::opt125m();
    const QuantConfig cfg = QuantConfig::preset("W4A4");

    SessionOptions off;
    InferenceSession cold(makeBackend("upmem"), off);
    const auto baseline = cold.run(cold.compile(
        WorkloadSpec::decode(model, 32, 128, 8), cfg,
        DesignPoint::LoCaLut));
    EXPECT_DOUBLE_EQ(baseline.lutBroadcastSeconds, 0.0);
    EXPECT_FALSE(baseline.coldStart());

    SessionOptions on;
    on.residencyPolicy = ResidencyPolicy::CostAware;
    InferenceSession session(makeBackend("upmem"), on);
    const auto workload = session.compile(
        WorkloadSpec::decode(model, 32, 128, 8), cfg,
        DesignPoint::LoCaLut);

    const InferenceReport first =
        session.waitReport(session.submit(workload));
    const InferenceReport second =
        session.waitReport(session.submit(workload));

    // Cold start pays one broadcast per (layer, projection) table set —
    // the decode loop itself does NOT multiply it by the step count.
    EXPECT_TRUE(first.coldStart());
    EXPECT_GT(first.lutBroadcastSeconds, 0.0);
    double expectedBytes = 0;
    for (const auto& node : workload.nodes) {
        expectedBytes += static_cast<double>(tableSetBytes(node.plan)) *
                         (node.gemm.count / 8.0 /*steps*/);
    }
    const ResidencyStats stats = session.residencyStats();
    EXPECT_EQ(stats.misses, workload.nodes.size());
    EXPECT_DOUBLE_EQ(stats.broadcastBytes, expectedBytes);

    // Steady state: tables are resident, nothing is transferred, and
    // the modeled time is exactly the residency-disabled time.
    EXPECT_FALSE(second.coldStart());
    EXPECT_DOUBLE_EQ(second.lutBroadcastSeconds, 0.0);
    EXPECT_LT(second.timing.total, first.timing.total);
    EXPECT_DOUBLE_EQ(second.timing.total, baseline.timing.total);
    EXPECT_DOUBLE_EQ(first.steadySeconds(), second.timing.total);
}

TEST(ResidencySession, Fig10PerStepDecodeColdStepStrictlyAboveSteady)
{
    // The acceptance shape: a fig10-class OPT 32-step decode, served one
    // step at a time.  Step 1 broadcasts every layer's tables; steps
    // 2..32 find them resident, so the steady-state per-step time is
    // strictly below the cold-start step time.
    const TransformerConfig model = TransformerConfig::opt125m();
    const QuantConfig cfg = QuantConfig::preset("W4A4");

    SessionOptions on;
    on.residencyPolicy = ResidencyPolicy::CostAware;
    InferenceSession session(makeBackend("upmem"), on);
    const auto step = session.compile(
        WorkloadSpec::decode(model, 32, 128, 1), cfg,
        DesignPoint::LoCaLut);

    std::vector<double> stepSeconds;
    for (unsigned s = 0; s < 32; ++s) {
        stepSeconds.push_back(
            session.waitReport(session.submit(step)).timing.total);
    }
    for (unsigned s = 1; s < 32; ++s) {
        EXPECT_LT(stepSeconds[s], stepSeconds[0]) << "step " << s;
        EXPECT_DOUBLE_EQ(stepSeconds[s], stepSeconds[1]) << "step " << s;
    }
    // Exactly one broadcast per table set across the whole loop.
    const ResidencyStats stats = session.residencyStats();
    EXPECT_EQ(stats.misses, step.nodes.size());
    EXPECT_EQ(stats.hits, 31u * step.nodes.size());
    EXPECT_EQ(stats.evictions, 0u);
}

TEST(ResidencySession, TinyBudgetThrashesButStaysExact)
{
    const QuantConfig cfg = QuantConfig::preset("W4A4");
    SessionOptions on;
    on.residencyPolicy = ResidencyPolicy::CostAware;
    // Budget fits roughly one table set: alternating shapes contend.
    on.mramBudgetBytes = tableSetBytes(fabricatedPlan(cfg, 2)) + 1;
    InferenceSession session(makeBackend("upmem"), on);
    InferenceSession plain(makeBackend("upmem"));

    const GemmProblem a = makeRandomProblem(96, 96, 8, cfg, 7);
    const GemmProblem b = makeRandomProblem(192, 96, 8, cfg, 8);
    for (int round = 0; round < 3; ++round) {
        for (const GemmProblem& problem : {a, b}) {
            const GemmResult withRes = session.wait(session.submit(
                problem, DesignPoint::LoCaLut, /*computeValues=*/true));
            const GemmResult without = plain.wait(plain.submit(
                problem, DesignPoint::LoCaLut, /*computeValues=*/true));
            EXPECT_EQ(withRes.outInt, without.outInt);
            EXPECT_GE(withRes.timing.total, without.timing.total);
        }
    }
    // Whether the two sets thrash depends on their relative table
    // sizes; what must hold is that residency never exceeded the budget
    // and the counters stayed coherent.
    const ResidencyStats stats = session.residencyStats();
    EXPECT_EQ(stats.hits + stats.misses, 6u);
    EXPECT_LE(session.residency()->residentBytes(0),
              session.residency()->budgetBytesPerUnit());
}

TEST(ResidencySession, ReportColdStartPlusSteadyAccountsForTotal)
{
    // The InferenceReport accounting identity behind DESIGN.md Section
    // 3/4: the cold-start share (lutBroadcastSeconds, what coldStart()
    // flags) plus steadySeconds() is the end-to-end total, and the
    // classified shares (gemm + host + collective + broadcast) account
    // for the same total within float-summation tolerance.
    SessionOptions on;
    on.residencyPolicy = ResidencyPolicy::CostAware;
    on.numRanks = 2;
    InferenceSession session(makeBackend("upmem"), on);
    const auto workload = session.compile(
        WorkloadSpec::decode(TransformerConfig::opt125m(), 32, 128, 4),
        QuantConfig::preset("W4A4"), DesignPoint::LoCaLut);

    const InferenceReport cold =
        session.waitReport(session.submit(workload));
    ASSERT_TRUE(cold.coldStart());
    EXPECT_GT(cold.collectiveSeconds, 0.0);
    EXPECT_NEAR(cold.lutBroadcastSeconds + cold.steadySeconds(),
                cold.timing.total, cold.timing.total * 1e-12);
    EXPECT_NEAR(cold.gemmSeconds + cold.hostOpSeconds +
                    cold.collectiveSeconds + cold.lutBroadcastSeconds,
                cold.timing.total, cold.timing.total * 1e-9);

    const InferenceReport warm =
        session.waitReport(session.submit(workload));
    EXPECT_FALSE(warm.coldStart());
    EXPECT_DOUBLE_EQ(warm.steadySeconds(), warm.timing.total);
    EXPECT_DOUBLE_EQ(warm.steadySeconds(), cold.steadySeconds());
}

TEST(ResidencyManager, PerRankHomePlacementAndConstQueries)
{
    // Data-parallel replicas: the same plan acquired on two home ranks
    // occupies two distinct table sets, each against its own rank's
    // ledger; isResident() answers without charging or counting a use.
    const BackendPtr backend = makeBackend("upmem");
    const GemmProblem problem = makeShapeOnlyProblem(
        768, 768, 8, QuantConfig::preset("W4A4"));
    const GemmPlan plan = backend->plan(problem, DesignPoint::LoCaLut);
    ASSERT_GT(tableSetBytes(plan), 0u);

    ResidencyManager manager(backend, /*numRanks=*/2,
                             /*budgetBytesPerUnit=*/0,
                             ResidencyPolicy::CostAware);
    const TableSetKey rank0 = tableSetKeyFor(plan, "", 1.0, 0);
    const TableSetKey rank1 = tableSetKeyFor(plan, "", 1.0, 1);
    EXPECT_FALSE(manager.isResident(rank0));

    const ResidencyCharge first = manager.acquire(plan, "", 1.0, 0);
    EXPECT_FALSE(first.hit);
    EXPECT_DOUBLE_EQ(first.seconds, manager.broadcastSeconds(
                                        tableSetBytes(plan)));
    EXPECT_TRUE(manager.isResident(rank0));
    EXPECT_FALSE(manager.isResident(rank1));
    EXPECT_EQ(manager.residentBytes(0), tableSetBytes(plan));
    EXPECT_EQ(manager.residentBytes(1), 0u);

    // Same plan, other rank: a distinct set, a second broadcast.
    const ResidencyCharge second = manager.acquire(plan, "", 1.0, 1);
    EXPECT_FALSE(second.hit);
    EXPECT_TRUE(manager.isResident(rank1));
    EXPECT_EQ(manager.residentBytes(1), tableSetBytes(plan));

    // Warm on both home ranks now.
    EXPECT_TRUE(manager.acquire(plan, "", 1.0, 0).hit);
    EXPECT_TRUE(manager.acquire(plan, "", 1.0, 1).hit);
    EXPECT_EQ(manager.stats().hits, 2u);
    EXPECT_EQ(manager.stats().misses, 2u);
}

TEST(ResidencyManager, RemoteHomeRankChargesTheInterNodeTier)
{
    const BackendPtr backend = makeBackend("upmem");
    const QuantConfig cfg = QuantConfig::preset("W4A4");
    const GemmPlan plan = fabricatedPlan(cfg, 2);
    const std::uint64_t setBytes = tableSetBytes(plan);
    ASSERT_GT(setBytes, 0u);
    const MemoryProfile profile = backend->memoryProfile();

    // 2 nodes x 2 ranks, codec off: flat rank 2 lives on node 1.
    ResidencyManager manager(backend, Topology{2, 2},
                             /*budgetBytesPerUnit=*/0,
                             ResidencyPolicy::CostAware,
                             /*interNodeCodec=*/false);

    // Node-0 home: the whole set rides the intra-host broadcast link.
    const ResidencyCharge local = manager.acquire(plan, "a", 1.0, 0);
    EXPECT_FALSE(local.hit);
    EXPECT_DOUBLE_EQ(local.interNodeRawBytes, 0.0);
    EXPECT_DOUBLE_EQ(local.seconds, manager.broadcastSeconds(setBytes));

    // Remote home: the same set crosses the inter-node tier instead —
    // uncompressed (codec off), at the slower fabric rate.
    const ResidencyCharge remote = manager.acquire(plan, "a", 1.0, 2);
    EXPECT_FALSE(remote.hit);
    EXPECT_DOUBLE_EQ(remote.interNodeRawBytes,
                     static_cast<double>(setBytes));
    EXPECT_DOUBLE_EQ(remote.interNodeBytes, remote.interNodeRawBytes);
    EXPECT_DOUBLE_EQ(remote.codecSeconds, 0.0);
    EXPECT_DOUBLE_EQ(remote.seconds,
                     profile.interNodeLatencyUs * 1e-6 +
                         static_cast<double>(setBytes) /
                             (profile.interNodeGBs * 1e9));
    EXPECT_GT(remote.seconds, local.seconds);

    // The projection the scheduler's placement runs agrees exactly.
    EXPECT_DOUBLE_EQ(manager.projectedBroadcastSeconds(plan, setBytes, 0),
                     local.seconds);
    EXPECT_DOUBLE_EQ(manager.projectedBroadcastSeconds(plan, setBytes, 2),
                     remote.seconds);

    // Tier split shows up in the stats and the per-node gauges.
    const ResidencyStats stats = manager.stats();
    EXPECT_DOUBLE_EQ(stats.broadcastIntraBytes,
                     static_cast<double>(setBytes));
    EXPECT_DOUBLE_EQ(stats.broadcastInterRawBytes,
                     static_cast<double>(setBytes));
    const auto nodes = manager.nodeResidency();
    ASSERT_EQ(nodes.size(), 2u);
    EXPECT_EQ(nodes[0].lutBytes, setBytes);
    EXPECT_EQ(nodes[1].lutBytes, setBytes);
}

TEST(ResidencyManager, InterNodeCodecShrinksTheCrossingBytes)
{
    const BackendPtr backend = makeBackend("upmem");
    const QuantConfig cfg = QuantConfig::preset("W4A4");
    const GemmPlan plan = fabricatedPlan(cfg, 2);
    const std::uint64_t setBytes = tableSetBytes(plan);

    ResidencyManager manager(backend, Topology{2, 2}, 0,
                             ResidencyPolicy::CostAware,
                             /*interNodeCodec=*/true);
    const ResidencyCharge remote = manager.acquire(plan, "a", 1.0, 2);
    EXPECT_FALSE(remote.hit);
    EXPECT_DOUBLE_EQ(remote.interNodeRawBytes,
                     static_cast<double>(setBytes));
    // The ISSUE acceptance bar: the measured delta/RLE ratio on
    // LoCaLUT W4A4 table sets shrinks the crossing bytes >= 2x, and the
    // explicit encode-time term is charged inside seconds.
    EXPECT_LE(remote.interNodeBytes, remote.interNodeRawBytes / 2.0);
    EXPECT_GT(remote.codecSeconds, 0.0);

    // Node-0 homes never touch the codec.
    const ResidencyCharge local = manager.acquire(plan, "a", 1.0, 0);
    EXPECT_DOUBLE_EQ(local.codecSeconds, 0.0);
    EXPECT_DOUBLE_EQ(local.seconds, manager.broadcastSeconds(setBytes));
}

TEST(ResidencyManager, SingleNodeTopologyMatchesTheFlatConstructor)
{
    const BackendPtr backend = makeBackend("upmem");
    const QuantConfig cfg = QuantConfig::preset("W4A4");
    const GemmPlan plan = fabricatedPlan(cfg, 2);

    ResidencyManager flat(backend, /*numRanks=*/2, 0,
                          ResidencyPolicy::CostAware);
    // Codec on is irrelevant on one node: nothing ever crosses.
    ResidencyManager hier(backend, Topology{1, 2}, 0,
                          ResidencyPolicy::CostAware,
                          /*interNodeCodec=*/true);
    for (const unsigned rank : {0u, 1u}) {
        const ResidencyCharge a = flat.acquire(plan, "x", 1.0, rank);
        const ResidencyCharge b = hier.acquire(plan, "x", 1.0, rank);
        EXPECT_DOUBLE_EQ(a.seconds, b.seconds) << rank;
        EXPECT_DOUBLE_EQ(a.joules, b.joules) << rank;
        EXPECT_DOUBLE_EQ(b.interNodeRawBytes, 0.0) << rank;
        EXPECT_DOUBLE_EQ(b.codecSeconds, 0.0) << rank;
    }
}

TEST(ResidencyManager, ShardedAcquireSplitsTiersByRankNode)
{
    const BackendPtr backend = makeBackend("upmem");
    const QuantConfig cfg = QuantConfig::preset("W4A4");
    const GemmProblem problem = makeShapeOnlyProblem(768, 768, 8, cfg);

    ShardSpec spec;
    spec.numRanks = 2;
    spec.numNodes = 2;
    const ShardPlan plan =
        makeShardPlan(*backend, problem, DesignPoint::LoCaLut, spec);
    ASSERT_EQ(plan.shards.size(), 4u);

    ResidencyManager manager(backend, Topology{2, 2}, 0,
                             ResidencyPolicy::CostAware,
                             /*interNodeCodec=*/true);
    const ResidencyCharge charge = manager.acquire(plan, "qkv");
    EXPECT_FALSE(charge.hit);
    // Shards 2 and 3 home on node 1: their tables cross compressed.
    EXPECT_GT(charge.interNodeRawBytes, 0.0);
    EXPECT_LT(charge.interNodeBytes, charge.interNodeRawBytes);
    EXPECT_GT(charge.codecSeconds, 0.0);
    const auto nodes = manager.nodeResidency();
    ASSERT_EQ(nodes.size(), 2u);
    EXPECT_GT(nodes[0].lutBytes, 0u);
    EXPECT_GT(nodes[1].lutBytes, 0u);
}

TEST(ResidencyDifferential, CostsChangeValuesNeverDo)
{
    // The differential invariant across backends and rank counts:
    // enabling residency must not change a single output bit, and a
    // warm request costs exactly the disabled-model time.
    const QuantConfig cfg = QuantConfig::preset("W1A3");
    const GemmProblem problem = makeRandomProblem(96, 128, 16, cfg, 11);

    for (const char* backendName : {"upmem", "bankpim", "host-cpu"}) {
        for (unsigned ranks : {1u, 2u, 4u}) {
            SCOPED_TRACE(std::string(backendName) + " ranks=" +
                         std::to_string(ranks));
            SessionOptions off;
            off.numRanks = ranks;
            SessionOptions on = off;
            on.residencyPolicy = ResidencyPolicy::CostAware;

            InferenceSession plain(makeBackend(backendName), off);
            InferenceSession managed(makeBackend(backendName), on);

            const GemmResult base = plain.wait(plain.submit(
                problem, DesignPoint::LoCaLut, /*computeValues=*/true));
            const GemmResult coldRun = managed.wait(managed.submit(
                problem, DesignPoint::LoCaLut, /*computeValues=*/true));
            const GemmResult warmRun = managed.wait(managed.submit(
                problem, DesignPoint::LoCaLut, /*computeValues=*/true));

            EXPECT_EQ(coldRun.outInt, base.outInt);
            EXPECT_EQ(warmRun.outInt, base.outInt);
            // Cold adds the broadcast on top of the disabled model...
            EXPECT_GT(coldRun.timing.total, base.timing.total);
            EXPECT_GT(coldRun.cost.phase(Phase::LutBroadcast).linkBytes,
                      0.0);
            // ...and warm is the disabled model exactly.
            EXPECT_DOUBLE_EQ(warmRun.timing.total, base.timing.total);
            EXPECT_DOUBLE_EQ(warmRun.energy.total, base.energy.total);
        }
    }
}

TEST(ResidencyDifferential, WorkloadsMatchDisabledOnEveryBackend)
{
    const TransformerConfig model = TransformerConfig::opt125m();
    const QuantConfig cfg = QuantConfig::preset("W4A4");
    for (const char* backendName : {"upmem", "bankpim", "host-cpu"}) {
        for (unsigned ranks : {1u, 4u}) {
            SCOPED_TRACE(std::string(backendName) + " ranks=" +
                         std::to_string(ranks));
            SessionOptions off;
            off.numRanks = ranks;
            SessionOptions on = off;
            on.residencyPolicy = ResidencyPolicy::CostAware;

            InferenceSession plain(makeBackend(backendName), off);
            InferenceSession managed(makeBackend(backendName), on);
            const auto spec = WorkloadSpec::decode(model, 8, 32, 2);
            const auto base =
                plain.run(plain.compile(spec, cfg, DesignPoint::LoCaLut));
            const auto workload =
                managed.compile(spec, cfg, DesignPoint::LoCaLut);
            const auto coldRep = managed.run(workload);
            const auto warmRep = managed.run(workload);

            EXPECT_GT(coldRep.lutBroadcastSeconds, 0.0);
            EXPECT_DOUBLE_EQ(coldRep.steadySeconds(), base.timing.total);
            EXPECT_DOUBLE_EQ(warmRep.timing.total, base.timing.total);
            EXPECT_DOUBLE_EQ(warmRep.lutBroadcastSeconds, 0.0);
        }
    }
}

// --------------------------------------------------------------- KV class

/** KV tests run on host-cpu: unitsPerRank == 1, so the per-unit KV
 * footprint equals the raw byte count and the arithmetic is exact. */
BackendPtr
kvBackend()
{
    return makeBackend("host-cpu");
}

TEST(ResidencyKv, GrowAppendHitAndRelease)
{
    const BackendPtr backend = kvBackend();
    ResidencyManager manager(backend, 1, /*budget=*/1 << 20,
                             ResidencyPolicy::CostAware);

    // First touch moves the whole prompt context.
    const KvCharge prompt = manager.acquireKv(
        /*stream=*/1, /*rank=*/0, /*layers=*/2,
        /*bytesPerTokenPerLayer=*/100, /*contextTokens=*/8);
    EXPECT_FALSE(prompt.shed);
    EXPECT_FALSE(prompt.refill);
    EXPECT_FALSE(prompt.hit());
    EXPECT_DOUBLE_EQ(prompt.appendBytes, 2.0 * 100 * 8);
    EXPECT_DOUBLE_EQ(prompt.appendSeconds,
                     manager.broadcastSeconds(2 * 100 * 8));
    EXPECT_TRUE(manager.kvResident({1, 0}));
    EXPECT_TRUE(manager.kvResident({1, 1}));
    EXPECT_FALSE(manager.kvResident({1, 2})); // beyond layer count
    EXPECT_FALSE(manager.kvResident({2, 0})); // unknown stream
    EXPECT_EQ(manager.kvBytes(0), 2u * 100 * 8);
    EXPECT_EQ(manager.lutBytes(0), 0u);
    EXPECT_EQ(manager.residentBytes(0), 2u * 100 * 8);

    // One decode step appends exactly one token across the layers.
    const KvCharge step = manager.acquireKv(1, 0, 2, 100, 9);
    EXPECT_DOUBLE_EQ(step.appendBytes, 2.0 * 100);
    EXPECT_EQ(manager.kvBytes(0), 2u * 100 * 9);

    // Re-touching the same context moves nothing.
    EXPECT_TRUE(manager.acquireKv(1, 0, 2, 100, 9).hit());

    const ResidencyStats stats = manager.stats();
    EXPECT_EQ(stats.kvStreams, 1u);
    EXPECT_EQ(stats.kvResidentBytes, 2u * 100 * 9);
    EXPECT_DOUBLE_EQ(stats.kvMovedBytes, 2.0 * 100 * 9);
    EXPECT_EQ(stats.kvSpills, 0u);
    EXPECT_EQ(stats.kvSheds, 0u);

    manager.releaseKv(1);
    EXPECT_FALSE(manager.kvResident({1, 0}));
    EXPECT_EQ(manager.kvBytes(0), 0u);
    EXPECT_EQ(manager.stats().kvStreams, 0u);
    EXPECT_EQ(manager.stats().kvResidentBytes, 0u);
}

TEST(ResidencyKv, CrossClassEvictionPicksTheCheaperClass)
{
    // One LUT set (bytes S, one use) and one KV stream (raw 2S) share a
    // 4S budget; an incoming 2S KV stream needs room.  CostAware scores:
    // LUT = broadcastSeconds(S) * 1 use, KV = 2 * broadcastSeconds(2S)
    // (spill + refill round trip), so the LUT set is strictly cheaper
    // to sacrifice and must be the victim.
    const BackendPtr backend = kvBackend();
    const QuantConfig cfg = QuantConfig::preset("W4A4");
    const GemmPlan plan = fabricatedPlan(cfg, 2);
    const std::uint64_t S = tableSetBytes(plan);
    ASSERT_GT(S, 0u);
    ResidencyManager manager(backend, 1, 4 * S,
                             ResidencyPolicy::CostAware);

    EXPECT_FALSE(manager.acquire(plan, "a").hit);
    EXPECT_FALSE(manager.acquireKv(1, 0, 1, S, 2).shed);
    EXPECT_EQ(manager.residentBytes(0), 3 * S);

    const KvCharge incoming = manager.acquireKv(2, 0, 1, S, 2);
    EXPECT_FALSE(incoming.shed);
    EXPECT_DOUBLE_EQ(incoming.spillBytes, 0.0); // the LUT class paid
    EXPECT_FALSE(manager.isResident(tableSetKeyFor(plan, "a", 1.0, 0)));
    EXPECT_TRUE(manager.kvResident({1, 0}));
    EXPECT_TRUE(manager.kvResident({2, 0}));
    EXPECT_EQ(manager.stats().evictions, 1u);
    EXPECT_EQ(manager.stats().kvSpills, 0u);
    EXPECT_EQ(manager.lutBytes(0), 0u);
    EXPECT_EQ(manager.kvBytes(0), 4 * S);
    EXPECT_LE(manager.residentBytes(0), manager.budgetBytesPerUnit());
}

TEST(ResidencyKv, HotLutSetDeflectsEvictionOntoKvAndSpilledStreamRefills)
{
    // Same geometry, but the LUT set is acquired 5 times: its score
    // 5 * broadcastSeconds(S) exceeds the KV round trip
    // 2 * broadcastSeconds(2S) <= 4 * broadcastSeconds(S) for every
    // latency/bandwidth profile, so the cold KV stream is spilled — and
    // its next acquire pays a whole-context refill.
    const BackendPtr backend = kvBackend();
    const QuantConfig cfg = QuantConfig::preset("W4A4");
    const GemmPlan plan = fabricatedPlan(cfg, 2);
    const std::uint64_t S = tableSetBytes(plan);
    ResidencyManager manager(backend, 1, 4 * S,
                             ResidencyPolicy::CostAware);

    EXPECT_FALSE(manager.acquire(plan, "a").hit);
    for (int i = 0; i < 4; ++i) {
        EXPECT_TRUE(manager.acquire(plan, "a").hit);
    }
    EXPECT_FALSE(manager.acquireKv(1, 0, 1, S, 2).shed);

    // Stream 2 arrives: stream 1 (not the acquirer, colder than "a") is
    // spilled, and the writeback is charged to stream 2's access.
    const KvCharge second = manager.acquireKv(2, 0, 1, S, 2);
    EXPECT_FALSE(second.shed);
    EXPECT_DOUBLE_EQ(second.spillBytes, 2.0 * static_cast<double>(S));
    EXPECT_DOUBLE_EQ(second.spillSeconds,
                     manager.broadcastSeconds(2 * S));
    EXPECT_TRUE(manager.isResident(tableSetKeyFor(plan, "a", 1.0, 0)));
    EXPECT_FALSE(manager.kvResident({1, 0}));
    EXPECT_EQ(manager.stats().kvSpills, 1u);
    EXPECT_EQ(manager.stats().evictions, 0u);

    // Stream 1 returns: stream 2 is now the cold one and swaps out,
    // while stream 1 refills its whole spilled context (plus one new
    // token) host -> PIM.
    const KvCharge refill = manager.acquireKv(1, 0, 1, S, 3);
    EXPECT_FALSE(refill.shed);
    EXPECT_TRUE(refill.refill);
    EXPECT_DOUBLE_EQ(refill.appendBytes, 3.0 * static_cast<double>(S));
    EXPECT_DOUBLE_EQ(refill.spillBytes, 2.0 * static_cast<double>(S));
    EXPECT_EQ(manager.stats().kvRefills, 1u);
    EXPECT_EQ(manager.stats().kvSpills, 2u);
    EXPECT_EQ(manager.kvBytes(0), 3 * S);
    EXPECT_EQ(manager.lutBytes(0), S);
    EXPECT_LE(manager.residentBytes(0), manager.budgetBytesPerUnit());
}

TEST(ResidencyKv, LruPolicyArbitratesAcrossClassesByRecency)
{
    const BackendPtr backend = kvBackend();
    const QuantConfig cfg = QuantConfig::preset("W4A4");
    const GemmPlan plan = fabricatedPlan(cfg, 2);
    const std::uint64_t S = tableSetBytes(plan);

    // KV touched after the LUT set: the LUT set is the LRU victim.
    ResidencyManager stale(backend, 1, 4 * S, ResidencyPolicy::Lru);
    EXPECT_FALSE(stale.acquire(plan, "a").hit);
    EXPECT_FALSE(stale.acquireKv(1, 0, 1, S, 2).shed);
    EXPECT_FALSE(stale.acquireKv(2, 0, 1, S, 2).shed);
    EXPECT_FALSE(stale.isResident(tableSetKeyFor(plan, "a", 1.0, 0)));
    EXPECT_EQ(stale.stats().evictions, 1u);
    EXPECT_EQ(stale.stats().kvSpills, 0u);

    // LUT set touched after the KV stream: the KV stream goes instead.
    ResidencyManager fresh(backend, 1, 4 * S, ResidencyPolicy::Lru);
    EXPECT_FALSE(fresh.acquireKv(1, 0, 1, S, 2).shed);
    EXPECT_FALSE(fresh.acquire(plan, "a").hit);
    EXPECT_TRUE(fresh.acquire(plan, "a").hit); // a is the most recent
    EXPECT_FALSE(fresh.acquireKv(2, 0, 1, S, 2).shed);
    EXPECT_TRUE(fresh.isResident(tableSetKeyFor(plan, "a", 1.0, 0)));
    EXPECT_FALSE(fresh.kvResident({1, 0}));
    EXPECT_EQ(fresh.stats().kvSpills, 1u);
    EXPECT_EQ(fresh.stats().evictions, 0u);
}

TEST(ResidencyKv, OversizedStreamIsShedAndReleased)
{
    const BackendPtr backend = kvBackend();
    ResidencyManager manager(backend, 1, /*budget=*/1000,
                             ResidencyPolicy::CostAware);

    // Never fits: shed on first touch, nothing left behind.
    const KvCharge huge = manager.acquireKv(1, 0, 2, 100, 6); // 1200 raw
    EXPECT_TRUE(huge.shed);
    EXPECT_FALSE(manager.kvResident({1, 0}));
    EXPECT_EQ(manager.stats().kvSheds, 1u);
    EXPECT_EQ(manager.kvBytes(0), 0u);

    // Fits at first, outgrows the rank later: shed mid-stream, and the
    // previously resident bytes are returned to the ledger.
    EXPECT_FALSE(manager.acquireKv(2, 0, 2, 100, 4).shed); // 800 raw
    EXPECT_EQ(manager.stats().kvStreams, 1u);
    const KvCharge outgrown = manager.acquireKv(2, 0, 2, 100, 6);
    EXPECT_TRUE(outgrown.shed);
    EXPECT_EQ(manager.stats().kvSheds, 2u);
    EXPECT_EQ(manager.stats().kvStreams, 0u);
    EXPECT_EQ(manager.stats().kvResidentBytes, 0u);
    EXPECT_EQ(manager.kvBytes(0), 0u);
}

TEST(ResidencyKv, DisabledPolicyIsAFreeHit)
{
    const BackendPtr backend = kvBackend();
    ResidencyManager manager(backend, 1, 0, ResidencyPolicy::Disabled);
    const KvCharge charge = manager.acquireKv(1, 0, 2, 100, 8);
    EXPECT_TRUE(charge.hit());
    EXPECT_DOUBLE_EQ(charge.seconds(), 0.0);
    EXPECT_EQ(manager.kvBytes(0), 0u);
    EXPECT_EQ(manager.stats().kvStreams, 0u);
}

TEST(ResidencyKv, LutAcquirerPaysForTheKvItSpills)
{
    // The symmetric arbitration direction: an incoming LUT set evicts a
    // cold KV stream, and the spill writeback lands on the *LUT*
    // acquirer's charge (kvSpillBytes/Seconds), flowing into its
    // Phase::LinkOut when applied to a report.
    const BackendPtr backend = kvBackend();
    const QuantConfig cfg = QuantConfig::preset("W4A4");
    const GemmPlan plan = fabricatedPlan(cfg, 2);
    const std::uint64_t S = tableSetBytes(plan);
    ResidencyManager manager(backend, 1, 2 * S,
                             ResidencyPolicy::CostAware);

    EXPECT_FALSE(manager.acquireKv(1, 0, 1, S, 2).shed); // fills 2S
    const ResidencyCharge lut = manager.acquire(plan, "a");
    EXPECT_FALSE(lut.hit);
    EXPECT_DOUBLE_EQ(lut.kvSpillBytes, 2.0 * static_cast<double>(S));
    EXPECT_DOUBLE_EQ(lut.kvSpillSeconds, manager.broadcastSeconds(2 * S));
    EXPECT_GT(lut.kvSpillJoules, 0.0);
    EXPECT_FALSE(manager.kvResident({1, 0}));
    EXPECT_EQ(manager.stats().kvSpills, 1u);
    EXPECT_EQ(manager.lutBytes(0), S);
    EXPECT_EQ(manager.kvBytes(0), 0u);

    TimingReport timing;
    EnergyReport energy;
    lut.apply(timing, energy);
    EXPECT_DOUBLE_EQ(timing.seconds.get(phaseName(Phase::LinkOut)),
                     lut.kvSpillSeconds);
    EXPECT_DOUBLE_EQ(timing.seconds.get(phaseName(Phase::LutBroadcast)),
                     lut.seconds);
}

} // namespace
} // namespace localut
