/**
 * @file
 * Property tests on the charging laws (the single source of truth for
 * every "measured" number): scaling in M/N/K, the p = 1 degeneracy, the
 * streaming DMA term, link-byte replication across the grid, and
 * design-point ordering invariants.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "kernels/cost_tables.h"
#include "kernels/gemm.h"
#include "lut/capacity.h"
#include "nn/inference.h"

namespace localut {
namespace {

GemmPlan
planFor(const GemmEngine& engine, std::size_t m, std::size_t k,
        std::size_t n, const char* preset, DesignPoint dp,
        PlanOverrides ov = {})
{
    return engine.plan(makeShapeOnlyProblem(m, k, n,
                                            QuantConfig::preset(preset)),
                       dp, ov);
}

TEST(Charges, NaiveMacCountExact)
{
    const GemmEngine engine(PimSystemConfig::upmemServer());
    PlanOverrides ov;
    ov.gM = 4;
    ov.gN = 8;
    const GemmPlan plan =
        planFor(engine, 64, 96, 32, "W1A3", DesignPoint::NaivePim, ov);
    const KernelCost cost = engine.chargeCosts(plan);
    const double expected =
        16.0 * 4.0 * 96.0 * cost::naiveInstrPerMac(1, 3); // tileM*tileN*K
    EXPECT_DOUBLE_EQ(cost.phase(Phase::MacCompute).instructions, expected);
}

TEST(Charges, LookupInstructionsScaleLinearlyWithTileM)
{
    const GemmEngine engine(PimSystemConfig::upmemServer());
    PlanOverrides ov;
    ov.gM = 1;
    ov.gN = 1;
    ov.p = 4;
    const GemmPlan p1 =
        planFor(engine, 64, 96, 8, "W1A3", DesignPoint::OpLcRc, ov);
    const GemmPlan p2 =
        planFor(engine, 128, 96, 8, "W1A3", DesignPoint::OpLcRc, ov);
    const KernelCost c1 = engine.chargeCosts(p1);
    const KernelCost c2 = engine.chargeCosts(p2);
    EXPECT_DOUBLE_EQ(c2.phase(Phase::IndexCalc).instructions,
                     2.0 * c1.phase(Phase::IndexCalc).instructions);
    EXPECT_DOUBLE_EQ(c2.phase(Phase::ReorderAccess).instructions,
                     2.0 * c1.phase(Phase::ReorderAccess).instructions);
}

TEST(Charges, RcLookupIsTwelveInstructionsPerGroup)
{
    // The paper's Section VI-I headline: 12 instructions per lookup.
    const GemmEngine engine(PimSystemConfig::upmemServer());
    PlanOverrides ov;
    ov.gM = 1;
    ov.gN = 1;
    ov.p = 4;
    const GemmPlan plan =
        planFor(engine, 32, 64, 4, "W1A3", DesignPoint::OpLcRc, ov);
    const KernelCost cost = engine.chargeCosts(plan);
    const double lookups = 32.0 * 16.0 * 4.0; // tileM * groups * tileN
    const double lookupInstr =
        cost.phase(Phase::IndexCalc).instructions +
        cost.phase(Phase::ReorderAccess).instructions +
        cost.phase(Phase::CanonicalAccess).instructions +
        cost.phase(Phase::Accumulate).instructions;
    EXPECT_DOUBLE_EQ(lookupInstr, 12.0 * lookups);
}

TEST(Charges, PEqualsOneDegeneratesToOpDatapath)
{
    // At p = 1 sorting/reordering are identities, so OP, OP+LC+RC and
    // LoCaLUT must charge identical instruction totals.
    const GemmEngine engine(PimSystemConfig::upmemServer());
    PlanOverrides ov;
    ov.gM = 2;
    ov.gN = 2;
    ov.p = 1;
    const KernelCost op = engine.chargeCosts(
        planFor(engine, 32, 48, 8, "W4A4", DesignPoint::OpLut, ov));
    const KernelCost rc = engine.chargeCosts(
        planFor(engine, 32, 48, 8, "W4A4", DesignPoint::OpLcRc, ov));
    EXPECT_DOUBLE_EQ(op.totalInstructions(), rc.totalInstructions());
    EXPECT_DOUBLE_EQ(rc.phase(Phase::ReorderAccess).instructions, 0.0);
}

TEST(Charges, StreamingAddsLutLoadDmaOnly)
{
    const GemmEngine engine(PimSystemConfig::upmemServer());
    PlanOverrides buf;
    buf.gM = 4;
    buf.gN = 4;
    buf.p = 4;
    buf.streaming = 0;
    PlanOverrides strm = buf;
    strm.streaming = 1;
    const KernelCost cBuf = engine.chargeCosts(
        planFor(engine, 64, 96, 16, "W1A3", DesignPoint::LoCaLut, buf));
    const KernelCost cStrm = engine.chargeCosts(
        planFor(engine, 64, 96, 16, "W1A3", DesignPoint::LoCaLut, strm));
    EXPECT_DOUBLE_EQ(cBuf.phase(Phase::LutLoadDma).dmaBytes, 0.0);
    EXPECT_GT(cStrm.phase(Phase::LutLoadDma).dmaBytes, 0.0);
    // Slice bytes: (groups * tileN) pairs of 2^(bw p) * (bo + reorder).
    const LutShape shape(QuantConfig::preset("W1A3"), 4);
    const double slices = 24.0 * 4.0;
    EXPECT_DOUBLE_EQ(
        cStrm.phase(Phase::LutLoadDma).dmaBytes,
        slices * static_cast<double>(shape.weightRows()) *
            (2.0 + static_cast<double>(reorderEntryBytes(shape))));
}

TEST(Charges, LinkBytesReplicateAcrossGm)
{
    // Activation payload is replicated to every M-row group (gM).
    const GemmEngine engine(PimSystemConfig::upmemServer());
    PlanOverrides g1;
    g1.gM = 1;
    g1.gN = 4;
    g1.p = 4;
    PlanOverrides g4 = g1;
    g4.gM = 4;
    const KernelCost c1 = engine.chargeCosts(
        planFor(engine, 64, 96, 16, "W1A3", DesignPoint::OpLcRc, g1));
    const KernelCost c4 = engine.chargeCosts(
        planFor(engine, 64, 96, 16, "W1A3", DesignPoint::OpLcRc, g4));
    EXPECT_DOUBLE_EQ(c4.phase(Phase::LinkActIn).linkBytes,
                     4.0 * c1.phase(Phase::LinkActIn).linkBytes);
    // Output gather does not replicate.
    EXPECT_DOUBLE_EQ(c4.phase(Phase::LinkOut).linkBytes,
                     c1.phase(Phase::LinkOut).linkBytes);
}

TEST(Charges, OutputTrafficMatchesShape)
{
    const GemmEngine engine(PimSystemConfig::upmemServer());
    PlanOverrides ov;
    ov.gM = 2;
    ov.gN = 4;
    const GemmPlan plan =
        planFor(engine, 40, 64, 20, "W2A2", DesignPoint::NaivePim, ov);
    const KernelCost cost = engine.chargeCosts(plan);
    EXPECT_DOUBLE_EQ(cost.phase(Phase::LinkOut).linkBytes,
                     40.0 * 20.0 * 4.0);
    EXPECT_DOUBLE_EQ(cost.phase(Phase::OutputDma).dmaBytes,
                     plan.tileM * static_cast<double>(plan.tileN) * 4.0);
}

TEST(Charges, LcReorderOverheadGrowsWithP)
{
    const GemmEngine engine(PimSystemConfig::upmemServer());
    double prevPerLookup = 0.0;
    for (unsigned p = 2; p <= 4; ++p) {
        PlanOverrides ov;
        ov.gM = 1;
        ov.gN = 1;
        ov.p = p;
        const GemmPlan plan =
            planFor(engine, 16, 48, 4, "W1A3", DesignPoint::OpLc, ov);
        const KernelCost cost = engine.chargeCosts(plan);
        const double lookups = 16.0 * std::ceil(48.0 / p) * 4.0;
        const double perLookup =
            cost.phase(Phase::IndexCalc).instructions / lookups;
        EXPECT_GT(perLookup, prevPerLookup);
        prevPerLookup = perLookup;
    }
}

TEST(Charges, SsAmortizationImprovesWithK)
{
    EXPECT_GT(cost::ssInstrPerLookup(1), cost::ssInstrPerLookup(2));
    EXPECT_GT(cost::ssInstrPerLookup(2), cost::ssInstrPerLookup(8));
    EXPECT_DOUBLE_EQ(cost::ssInstrPerLookup(1), cost::kRcInstrPerLookup);
}

TEST(Charges, HigherPackingReducesKernelInstructions)
{
    const GemmEngine engine(PimSystemConfig::upmemServer());
    double prev = 1e30;
    for (unsigned p : {2u, 4u, 8u}) {
        PlanOverrides ov;
        ov.gM = 1;
        ov.gN = 1;
        ov.p = p;
        const KernelCost cost = engine.chargeCosts(
            planFor(engine, 64, 96, 8, "W1A3", DesignPoint::LoCaLut, ov));
        EXPECT_LT(cost.totalInstructions(), prev) << "p=" << p;
        prev = cost.totalInstructions();
    }
}

TEST(Charges, DramResidentOpChargesDmaPerLookup)
{
    const GemmEngine engine(PimSystemConfig::upmemServer());
    PlanOverrides ov;
    ov.gM = 1;
    ov.gN = 1;
    ov.p = 2;
    const KernelCost cost = engine.chargeCosts(
        planFor(engine, 16, 32, 4, "W1A3", DesignPoint::OpLutDram, ov));
    const double lookups = 16.0 * 16.0 * 4.0;
    EXPECT_DOUBLE_EQ(cost.phase(Phase::CanonicalAccess).dmaTransfers,
                     lookups);
}

} // namespace
} // namespace localut
