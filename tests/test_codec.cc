/**
 * @file
 * Unit tests for value codecs and quantizers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "quant/codec.h"
#include "quant/quantizer.h"

namespace localut {
namespace {

TEST(Codec, TwosComplementDecode)
{
    const ValueCodec c = ValueCodec::twosComplement(3);
    // Paper Fig. 2: 3-bit two's complement activations.
    EXPECT_EQ(c.decodeInt(0b011), 3);
    EXPECT_EQ(c.decodeInt(0b000), 0);
    EXPECT_EQ(c.decodeInt(0b010), 2);
    EXPECT_EQ(c.decodeInt(0b111), -1);
    EXPECT_EQ(c.decodeInt(0b100), -4);
    EXPECT_EQ(c.cardinality(), 8u);
}

TEST(Codec, SignedBinaryDecode)
{
    const ValueCodec c = ValueCodec::signedBinary();
    EXPECT_EQ(c.decodeInt(0), -1);
    EXPECT_EQ(c.decodeInt(1), 1);
    EXPECT_EQ(c.maxAbsValue(), 1.0f);
}

TEST(Codec, UnsignedDecode)
{
    const ValueCodec c = ValueCodec::unsignedInt(2);
    EXPECT_EQ(c.decodeInt(3), 3);
    EXPECT_EQ(c.decodeInt(0), 0);
}

TEST(Codec, EncodeDecodeRoundTripInt)
{
    for (unsigned bits : {2u, 3u, 4u, 8u}) {
        const ValueCodec c = ValueCodec::twosComplement(bits);
        const std::int32_t lo = -static_cast<std::int32_t>(c.cardinality()) / 2;
        const std::int32_t hi = static_cast<std::int32_t>(c.cardinality()) / 2 - 1;
        for (std::int32_t v = lo; v <= hi; ++v) {
            const std::uint32_t code =
                c.encodeNearest(static_cast<float>(v));
            EXPECT_EQ(c.decodeInt(code), v) << "bits=" << bits;
        }
    }
}

TEST(Codec, EncodeClampsToRange)
{
    const ValueCodec c = ValueCodec::twosComplement(3);
    EXPECT_EQ(c.decodeInt(c.encodeNearest(100.0f)), 3);
    EXPECT_EQ(c.decodeInt(c.encodeNearest(-100.0f)), -4);
}

TEST(Codec, Fp4ValueSet)
{
    const ValueCodec c = ValueCodec::fp4();
    const std::vector<float> expected = {0.0f, 0.5f, 1.0f, 1.5f,
                                         2.0f, 3.0f, 4.0f, 6.0f};
    for (unsigned i = 0; i < 8; ++i) {
        EXPECT_FLOAT_EQ(c.decode(i), expected[i]);
        EXPECT_FLOAT_EQ(c.decode(i | 0x8), -expected[i]);
    }
    EXPECT_FLOAT_EQ(c.maxAbsValue(), 6.0f);
}

TEST(Codec, Fp8KeyValues)
{
    const ValueCodec c = ValueCodec::fp8();
    EXPECT_FLOAT_EQ(c.decode(0), 0.0f);
    // 0.0111.000 -> exp 7 (bias 7) -> 1.0
    EXPECT_FLOAT_EQ(c.decode(0b00111000), 1.0f);
    // Max normal: 0.1111.110 -> (1 + 6/8) * 2^8 = 448
    EXPECT_FLOAT_EQ(c.decode(0b01111110), 448.0f);
    // NaN: S.1111.111
    EXPECT_TRUE(std::isnan(c.decode(0b01111111)));
    // Smallest subnormal: 2^-9
    EXPECT_FLOAT_EQ(c.decode(0b00000001), std::ldexp(1.0f, -9));
}

TEST(Codec, Fp16KeyValues)
{
    const ValueCodec c = ValueCodec::fp16();
    EXPECT_FLOAT_EQ(c.decode(0x3c00), 1.0f);
    EXPECT_FLOAT_EQ(c.decode(0xc000), -2.0f);
    EXPECT_FLOAT_EQ(c.decode(0x7bff), 65504.0f);
    EXPECT_FLOAT_EQ(c.decode(0x0001), std::ldexp(1.0f, -24));
    EXPECT_TRUE(std::isinf(c.decode(0x7c00)));
}

TEST(Codec, RoundToFp16MatchesDecodeGrid)
{
    const ValueCodec c = ValueCodec::fp16();
    Rng rng(5);
    for (int iter = 0; iter < 500; ++iter) {
        // Any decodable finite value must round to itself.
        const std::uint32_t code =
            static_cast<std::uint32_t>(rng.nextBounded(0x7c00));
        const float v = c.decode(code);
        EXPECT_EQ(roundToFp16(v), v) << "code=" << code;
    }
    // Values between fp16 grid points round to a representable neighbor.
    EXPECT_EQ(roundToFp16(1.0002f), 1.0f);
    EXPECT_EQ(roundToFp16(0.0f), 0.0f);
}

TEST(Quantizer, SymmetricScale)
{
    const std::vector<float> data = {-2.0f, 1.0f, 0.5f, 2.0f};
    const auto qm =
        Quantizer::quantize(data, 2, 2, ValueCodec::twosComplement(4));
    EXPECT_FLOAT_EQ(qm.scale, 2.0f / 7.0f);
    const auto back = Quantizer::dequantize(qm);
    for (unsigned i = 0; i < data.size(); ++i) {
        EXPECT_NEAR(back[i], data[i], qm.scale * 0.51f);
    }
}

TEST(Quantizer, AllZeroInput)
{
    const std::vector<float> data(16, 0.0f);
    const auto qm =
        Quantizer::quantize(data, 4, 4, ValueCodec::twosComplement(4));
    EXPECT_FLOAT_EQ(qm.scale, 1.0f);
    for (auto code : qm.codes) {
        EXPECT_EQ(qm.codec.decodeInt(code), 0);
    }
}

TEST(Quantizer, SignedBinaryKeepsSigns)
{
    const std::vector<float> data = {-0.3f, 0.7f, -1.2f, 0.01f};
    const auto qm = Quantizer::quantize(data, 1, 4, ValueCodec::signedBinary());
    EXPECT_EQ(qm.codec.decodeInt(qm.codes[0]), -1);
    EXPECT_EQ(qm.codec.decodeInt(qm.codes[1]), 1);
    EXPECT_EQ(qm.codec.decodeInt(qm.codes[2]), -1);
    EXPECT_EQ(qm.codec.decodeInt(qm.codes[3]), 1);
}

TEST(Quantizer, PackedBytes)
{
    QuantizedMatrix qm;
    qm.rows = 7;
    qm.cols = 3;
    qm.codec = ValueCodec::twosComplement(3);
    qm.codes.assign(21, 0);
    EXPECT_EQ(qm.packedBytes(), (21u * 3 + 7) / 8);
}

TEST(QuantConfig, Presets)
{
    const auto w1a3 = QuantConfig::preset("W1A3");
    EXPECT_EQ(w1a3.bw(), 1u);
    EXPECT_EQ(w1a3.ba(), 3u);
    EXPECT_EQ(w1a3.weightCodec.kind(), CodecKind::SignedBinary);
    EXPECT_EQ(w1a3.actCodec.kind(), CodecKind::TwosComplement);
    EXPECT_EQ(w1a3.name(), "W1A3");

    const auto w4a4 = QuantConfig::preset("W4A4");
    EXPECT_EQ(w4a4.weightCodec.kind(), CodecKind::TwosComplement);

    const auto fp = QuantConfig::fpPreset(1, 4);
    EXPECT_EQ(fp.actCodec.kind(), CodecKind::Fp4E2M1);
    EXPECT_EQ(QuantConfig::paperConfigs().size(), 4u);
}

TEST(ReferenceGemm, SmallKnownProduct)
{
    // W = [[1, -1], [0, 2]] (int2 codes), A = [[3, 0], [-2, 1]] (int3)
    QuantizedMatrix w;
    w.rows = 2;
    w.cols = 2;
    w.codec = ValueCodec::twosComplement(2);
    w.codes = {
        static_cast<std::uint16_t>(w.codec.encodeNearest(1.0f)),
        static_cast<std::uint16_t>(w.codec.encodeNearest(-1.0f)),
        static_cast<std::uint16_t>(w.codec.encodeNearest(0.0f)),
        static_cast<std::uint16_t>(w.codec.encodeNearest(1.0f)),
    };
    QuantizedMatrix a;
    a.rows = 2;
    a.cols = 2;
    a.codec = ValueCodec::twosComplement(3);
    a.codes = {
        static_cast<std::uint16_t>(a.codec.encodeNearest(3.0f)),
        static_cast<std::uint16_t>(a.codec.encodeNearest(0.0f)),
        static_cast<std::uint16_t>(a.codec.encodeNearest(-2.0f)),
        static_cast<std::uint16_t>(a.codec.encodeNearest(1.0f)),
    };
    const auto out = referenceGemmInt(w, a);
    // [[1*3 + -1*-2, 1*0 + -1*1], [0*3 + 1*-2, 0*0 + 1*1]]
    EXPECT_EQ(out, (std::vector<std::int32_t>{5, -1, -2, 1}));
}

} // namespace
} // namespace localut
