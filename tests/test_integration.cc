/**
 * @file
 * Cross-module integration sweeps: planner feasibility and correctness
 * over the full preset x shape grid, engine determinism, equivalence of
 * the reordering LUT with explicit permutation across every paper config,
 * and end-to-end sanity for every design point on every model config.
 */

#include <gtest/gtest.h>

#include "kernels/functional.h"
#include "kernels/gemm.h"
#include "nn/inference.h"

namespace localut {
namespace {

struct GridCase {
    const char* preset;
    std::size_t m, k, n;
};

std::ostream&
operator<<(std::ostream& os, const GridCase& c)
{
    return os << c.preset << "_" << c.m << "x" << c.k << "x" << c.n;
}

class PlannerGrid : public ::testing::TestWithParam<GridCase>
{};

TEST_P(PlannerGrid, PlanIsFeasibleAndRunnable)
{
    const auto& c = GetParam();
    const PimSystemConfig sys = PimSystemConfig::upmemServer();
    const GemmEngine engine(sys);
    const GemmProblem problem =
        makeShapeOnlyProblem(c.m, c.k, c.n, QuantConfig::preset(c.preset));
    for (DesignPoint dp :
         {DesignPoint::NaivePim, DesignPoint::Ltc, DesignPoint::OpLut,
          DesignPoint::OpLc, DesignPoint::OpLcRc, DesignPoint::LoCaLut}) {
        const GemmPlan plan = engine.plan(problem, dp);
        EXPECT_GE(plan.p, 1u);
        EXPECT_LE(plan.dpusUsed(), sys.totalDpus());
        EXPECT_GE(plan.tileM * plan.gM, c.m);
        EXPECT_GE(plan.tileN * static_cast<std::size_t>(plan.gN), c.n);
        EXPECT_LE(plan.lutWramBytes, sys.dpu.wramLutBudget());
        const GemmResult r = engine.run(problem, plan, false);
        EXPECT_GT(r.timing.total, 0.0) << designPointName(dp);
        EXPECT_GT(r.energy.total, 0.0) << designPointName(dp);
    }
}

TEST_P(PlannerGrid, LoCaLutNeverLosesToItsOwnAblations)
{
    // The planner-driven design point subsumes OP+LC+RC (it may pick the
    // same configuration), so it must never be slower.
    const auto& c = GetParam();
    const GemmEngine engine(PimSystemConfig::upmemServer());
    const GemmProblem problem =
        makeShapeOnlyProblem(c.m, c.k, c.n, QuantConfig::preset(c.preset));
    const double tRc =
        engine.run(problem, DesignPoint::OpLcRc, false).timing.total;
    const double tLocalut =
        engine.run(problem, DesignPoint::LoCaLut, false).timing.total;
    EXPECT_LE(tLocalut, tRc * 1.0001);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlannerGrid,
    ::testing::Values(GridCase{"W1A3", 768, 768, 128},
                      GridCase{"W1A3", 3072, 768, 128},
                      GridCase{"W1A4", 768, 768, 128},
                      GridCase{"W2A2", 3072, 768, 128},
                      GridCase{"W4A4", 768, 768, 128},
                      GridCase{"W1A3", 128, 128, 32},
                      GridCase{"W2A2", 768, 3072, 4096},
                      GridCase{"W4A4", 768, 768, 32},
                      GridCase{"W1A8", 512, 512, 64},
                      GridCase{"W1A3", 12288, 192, 1024}));

TEST(Determinism, SameSeedSameEverything)
{
    const QuantConfig cfg = QuantConfig::preset("W2A2");
    const GemmProblem p1 = makeRandomProblem(32, 48, 16, cfg, 77);
    const GemmProblem p2 = makeRandomProblem(32, 48, 16, cfg, 77);
    EXPECT_EQ(p1.w.codes, p2.w.codes);
    EXPECT_EQ(p1.a.codes, p2.a.codes);

    const GemmEngine engine(PimSystemConfig::upmemServer());
    const GemmResult r1 = engine.run(p1, DesignPoint::LoCaLut);
    const GemmResult r2 = engine.run(p2, DesignPoint::LoCaLut);
    EXPECT_EQ(r1.outInt, r2.outInt);
    EXPECT_DOUBLE_EQ(r1.timing.total, r2.timing.total);
    EXPECT_DOUBLE_EQ(r1.energy.total, r2.energy.total);
}

class ReorderEquivalence : public ::testing::TestWithParam<const char*>
{};

TEST_P(ReorderEquivalence, ExplicitPermutationMatchesReorderLut)
{
    // The reordering LUT must be a pure strength-reduction: identical
    // values to explicit unpack/permute/repack at every feasible p.
    const QuantConfig cfg = QuantConfig::preset(GetParam());
    const GemmProblem problem = makeRandomProblem(12, 29, 5, cfg, 31);
    const unsigned pMax = cfg.bw() >= 4 ? 3u : 5u;
    for (unsigned p = 2; p <= pMax; ++p) {
        EXPECT_EQ(functional::canonicalInt(
                      problem, p, functional::ReorderMode::Explicit),
                  functional::canonicalInt(
                      problem, p, functional::ReorderMode::ReorderLut))
            << "p=" << p;
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ReorderEquivalence,
                         ::testing::Values("W1A3", "W1A4", "W2A2", "W4A4",
                                           "W2A4", "W1A2"));

TEST(EndToEnd, EveryDesignRunsEveryModelConfig)
{
    const PimSystemConfig sys = PimSystemConfig::upmemServer();
    const TransformerConfig models[] = {TransformerConfig::bertBase(),
                                        TransformerConfig::vitBase(),
                                        TransformerConfig::opt125m()};
    for (const auto& model : models) {
        for (const char* preset : {"W1A3", "W4A4"}) {
            for (DesignPoint dp :
                 {DesignPoint::NaivePim, DesignPoint::OpLut,
                  DesignPoint::LoCaLut}) {
                const TransformerRunner runner(
                    sys, QuantConfig::preset(preset), dp);
                const InferenceReport r = runner.prefill(model, 8, 64);
                EXPECT_GT(r.timing.total, 0.0)
                    << model.name << " " << preset;
                EXPECT_GT(r.gemmSeconds, 0.0);
            }
        }
    }
}

TEST(EndToEnd, DecodeNeverSlowerThanPrefillPerToken)
{
    // A decode step (N = batch) does strictly less GEMM work than a
    // prefill over the same tokens.
    const PimSystemConfig sys = PimSystemConfig::upmemServer();
    const TransformerRunner runner(sys, QuantConfig::preset("W4A4"),
                                   DesignPoint::LoCaLut);
    const auto model = TransformerConfig::opt125m();
    const double prefill128 =
        runner.prefill(model, 16, 128).timing.total / 128.0;
    const double decode1 =
        runner.decode(model, 16, 128, 8).timing.total / 8.0;
    // Per generated token decode costs more than prefill's amortized
    // per-token cost (the classic prefill/decode asymmetry).
    EXPECT_GT(decode1, prefill128);
}

TEST(KSlices, MeasuredTimeImprovesOrPHolds)
{
    // For W1Ax, forcing larger k must not reduce the feasible p and must
    // not slow the measured kernel (Fig. 13's left half).
    const GemmEngine engine(PimSystemConfig::upmemServer());
    const GemmProblem problem =
        makeShapeOnlyProblem(3072, 768, 128, QuantConfig::preset("W1A3"));
    double prev = 1e30;
    for (unsigned k : {1u, 2u, 4u, 8u}) {
        PlanOverrides ov;
        ov.kSlices = k;
        const GemmPlan plan = engine.plan(problem, DesignPoint::LoCaLut, ov);
        EXPECT_EQ(plan.p, 8u) << "k=" << k;
        const double t = engine.run(problem, plan, false).timing.total;
        EXPECT_LE(t, prev * 1.0001) << "k=" << k;
        prev = t;
    }
}

} // namespace
} // namespace localut
