/**
 * @file
 * Ablation (beyond the paper's figures): the DPU partition-grid
 * optimizer.  Compares the cost-model-driven grid choice against naive
 * square and fully-N-parallel grids across GEMM shapes.
 */

#include <cmath>

#include "bench_util.h"

#include "common/table.h"
#include "nn/inference.h"

using namespace localut;

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::header("Ablation", "partition-grid optimizer");
    const PimSystemConfig sys = PimSystemConfig::upmemServer();
    const GemmEngine engine(sys);
    const QuantConfig cfg = QuantConfig::preset("W1A3");

    struct Shape {
        std::size_t m, k, n;
    };
    const Shape shapes[] = {{768, 768, 128},
                            {3072, 768, 128},
                            {768, 768, 4096},
                            {128, 768, 32}};

    Table table({"(M,K,N)", "optimizer grid", "optimized", "square grid",
                 "N-parallel grid", "gain vs worst"});
    for (const Shape& s : shapes) {
        const GemmProblem problem = makeShapeOnlyProblem(s.m, s.k, s.n, cfg);
        const GemmPlan best = engine.plan(problem, DesignPoint::LoCaLut);
        const double tBest = engine.run(problem, best, false).timing.total;

        auto timeWithGrid = [&](unsigned gM, unsigned gN) {
            PlanOverrides ov;
            ov.gM = static_cast<unsigned>(
                std::min<std::size_t>(gM, s.m));
            ov.gN = static_cast<unsigned>(
                std::min<std::size_t>(gN, s.n));
            return engine
                .run(problem, DesignPoint::LoCaLut, false, ov)
                .timing.total;
        };
        const unsigned side = static_cast<unsigned>(
            std::sqrt(static_cast<double>(sys.totalDpus())));
        const double tSquare = timeWithGrid(side, side);
        const double tNPar = timeWithGrid(1, sys.totalDpus());
        const double worst = std::max(tSquare, tNPar);
        table.addRow({"(" + std::to_string(s.m) + "," + std::to_string(s.k) +
                          "," + std::to_string(s.n) + ")",
                      std::to_string(best.gM) + "x" +
                          std::to_string(best.gN),
                      bench::fmtSeconds(tBest), bench::fmtSeconds(tSquare),
                      bench::fmtSeconds(tNPar),
                      Table::fmt(worst / tBest, 3) + "x"});
    }
    table.print();
    return 0;
}
