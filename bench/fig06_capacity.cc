/**
 * @file
 * Reproduces paper Fig. 6: LUT capacity requirements across packing
 * degrees p = 2..8 at W1A3 for the operation-packed LUT, the canonical
 * LUT, the reordering LUT, and the canonical+reordering pair, plus the
 * total reduction-rate line (paper: 1.68x to 358x).
 */

#include "bench_util.h"

#include <cmath>

#include "common/table.h"

using namespace localut;

namespace {

/** Bytes, or "saturated" when the count overflowed 64 bits. */
std::string
fmtLutBytes(std::uint64_t bytes)
{
    return lutBytesSaturated(bytes) ? "saturated (>2^64)"
                                    : bench::fmtBytes(
                                          static_cast<double>(bytes));
}

/** Reduction rate, or "inf (saturated)" past the overflow boundary. */
std::string
fmtReduction(double reduction)
{
    if (std::isinf(reduction)) {
        return "inf (saturated)";
    }
    if (std::isnan(reduction)) {
        return "saturated/saturated";
    }
    return Table::fmt(reduction, 4) + "x";
}

} // namespace

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::header("Fig. 6", "LUT capacity vs packing degree (W1A3)");
    const QuantConfig cfg = QuantConfig::preset("W1A3");
    bench::note("Paper reference: total reduction rate 1.68x (p=2) to "
                "358x (p=8); canonical columns shrink 12.4x at p=4 and "
                "611.1x at p=7.");

    Table table({"p", "op-packed", "canonical", "reordering",
                 "canonical+reordering", "reduction"});
    std::vector<double> reductions;
    for (unsigned p = 2; p <= 8; ++p) {
        const LutShape shape(cfg, p);
        const double reduction = totalReductionRate(shape);
        reductions.push_back(reduction);
        table.addRow({
            std::to_string(p),
            fmtLutBytes(opPackedLutBytes(shape)),
            fmtLutBytes(canonicalLutBytes(shape)),
            fmtLutBytes(reorderingLutBytes(shape)),
            fmtLutBytes(localutBytes(shape)),
            fmtReduction(reduction),
        });
    }
    table.print();

    // The op-packed LUT grows as 2^((bw+ba)*p): at W4A4, p = 8 crosses
    // 2^64 bytes and the count saturates.  The reduction rate reports
    // +inf there (the true ratio is unrepresentably large) instead of
    // the bogus finite UINT64_MAX / localutBytes quotient.
    bench::section("saturation boundary (W4A4: (bw+ba)*p hits 64 bits)");
    Table sat({"p", "op-packed", "canonical+reordering", "reduction"});
    const QuantConfig w4a4 = QuantConfig::preset("W4A4");
    for (unsigned p : {7u, 8u}) {
        const LutShape shape(w4a4, p);
        sat.addRow({std::to_string(p), fmtLutBytes(opPackedLutBytes(shape)),
                    fmtLutBytes(localutBytes(shape)),
                    fmtReduction(totalReductionRate(shape))});
    }
    sat.print();

    bench::section("canonical column reduction (paper Section IV-A)");
    Table cols({"p", "op columns", "canonical columns", "ratio"});
    for (unsigned p : {4u, 7u}) {
        const LutShape shape(cfg, p);
        cols.addRow({std::to_string(p),
                     std::to_string(shape.opColumns()),
                     std::to_string(shape.canonicalColumns()),
                     Table::fmt(static_cast<double>(shape.opColumns()) /
                                    static_cast<double>(
                                        shape.canonicalColumns()),
                                4) + "x"});
    }
    cols.print();
    bench::note("measured reduction range: " +
                Table::fmt(reductions.front(), 3) + "x .. " +
                Table::fmt(reductions.back(), 4) + "x  (paper: 1.68x .. 358x)");
    return 0;
}
