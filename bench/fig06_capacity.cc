/**
 * @file
 * Reproduces paper Fig. 6: LUT capacity requirements across packing
 * degrees p = 2..8 at W1A3 for the operation-packed LUT, the canonical
 * LUT, the reordering LUT, and the canonical+reordering pair, plus the
 * total reduction-rate line (paper: 1.68x to 358x).
 */

#include "bench_util.h"

#include "common/table.h"

using namespace localut;

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::header("Fig. 6", "LUT capacity vs packing degree (W1A3)");
    const QuantConfig cfg = QuantConfig::preset("W1A3");
    bench::note("Paper reference: total reduction rate 1.68x (p=2) to "
                "358x (p=8); canonical columns shrink 12.4x at p=4 and "
                "611.1x at p=7.");

    Table table({"p", "op-packed", "canonical", "reordering",
                 "canonical+reordering", "reduction"});
    std::vector<double> reductions;
    for (unsigned p = 2; p <= 8; ++p) {
        const LutShape shape(cfg, p);
        const double reduction = totalReductionRate(shape);
        reductions.push_back(reduction);
        table.addRow({
            std::to_string(p),
            bench::fmtBytes(static_cast<double>(opPackedLutBytes(shape))),
            bench::fmtBytes(static_cast<double>(canonicalLutBytes(shape))),
            bench::fmtBytes(static_cast<double>(reorderingLutBytes(shape))),
            bench::fmtBytes(static_cast<double>(localutBytes(shape))),
            Table::fmt(reduction, 4) + "x",
        });
    }
    table.print();

    bench::section("canonical column reduction (paper Section IV-A)");
    Table cols({"p", "op columns", "canonical columns", "ratio"});
    for (unsigned p : {4u, 7u}) {
        const LutShape shape(cfg, p);
        cols.addRow({std::to_string(p),
                     std::to_string(shape.opColumns()),
                     std::to_string(shape.canonicalColumns()),
                     Table::fmt(static_cast<double>(shape.opColumns()) /
                                    static_cast<double>(
                                        shape.canonicalColumns()),
                                4) + "x"});
    }
    cols.print();
    bench::note("measured reduction range: " +
                Table::fmt(reductions.front(), 3) + "x .. " +
                Table::fmt(reductions.back(), 4) + "x  (paper: 1.68x .. 358x)");
    return 0;
}
