/**
 * @file
 * Ablation (beyond the paper's figures): isolates the runtime weight-
 * reordering overhead that the reordering LUT eliminates — the "LC dip"
 * visible in Fig. 9.  Sweeps p and reports OP+LC vs OP+LC+RC kernel
 * time, plus the modeled per-lookup instruction counts.
 */

#include "bench_util.h"

#include "common/table.h"
#include "kernels/cost_tables.h"
#include "nn/inference.h"

using namespace localut;

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::header("Ablation", "runtime reordering vs reordering LUT");
    const GemmEngine engine(PimSystemConfig::upmemServer());
    const QuantConfig cfg = QuantConfig::preset("W1A3");
    const GemmProblem problem = makeShapeOnlyProblem(768, 768, 128, cfg);

    Table table({"p", "LC instr/lookup", "RC instr/lookup", "OP+LC time",
                 "OP+LC+RC time", "RC gain"});
    for (unsigned p = 1; p <= 4; ++p) {
        PlanOverrides ov;
        ov.p = p;
        const double tLc =
            engine.run(problem, DesignPoint::OpLc, false, ov).timing.total;
        const double tRc =
            engine.run(problem, DesignPoint::OpLcRc, false, ov)
                .timing.total;
        const double lcInstr = cost::lcReorderInstr(p) +
                               cost::kLcIndexCalcInstr +
                               cost::kLcLutLoadInstr +
                               cost::kLcAccumulateInstr;
        table.addRow({std::to_string(p), Table::fmt(lcInstr, 3),
                      Table::fmt(cost::kRcInstrPerLookup, 3),
                      bench::fmtSeconds(tLc), bench::fmtSeconds(tRc),
                      Table::fmt(tLc / tRc, 3) + "x"});
    }
    table.print();
    bench::note("The reordering overhead grows ~6p+4 instructions per "
                "lookup; the reordering LUT replaces it with a flat "
                "12-instruction datapath (paper Section IV-B).");
    return 0;
}
