/**
 * @file
 * Reproduces paper Fig. 3(c): DRAM-bank-sized vs buffer-sized
 * operation-packed LUT, execution time across packing degrees p = 1..6
 * for a 512x512x512 GEMM at W1A3.  Expected shape: the buffer-sized LUT
 * outperforms the DRAM-resident LUT at every feasible p because each
 * DRAM-LUT lookup pays a DMA access instead of a single-cycle WRAM load.
 */

#include "bench_util.h"

#include "common/table.h"

using namespace localut;

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::header("Fig. 3(c)", "operation-packed LUT placement candidates");
    const PimSystemConfig sys = PimSystemConfig::upmemServer();
    const GemmEngine engine(sys);
    const QuantConfig cfg = QuantConfig::preset("W1A3");
    const GemmProblem problem = makeShapeOnlyProblem(512, 512, 512, cfg);

    bench::note("GEMM 512x512x512, W1A3 (paper Section III-C)");
    bench::note("Paper reference: buffer-sized LUT consistently wins; "
                "DRAM-sized LUT suffers per-lookup access cost.");

    Table table({"p", "DRAM-sized LUT", "buffer-sized LUT",
                 "DRAM/buffer ratio"});
    for (unsigned p = 1; p <= 6; ++p) {
        PlanOverrides ov;
        ov.p = p;
        const double tDram =
            engine.run(problem, DesignPoint::OpLutDram, false, ov)
                .timing.total;
        std::string bufCell = "n/f (exceeds WRAM)";
        std::string ratioCell = "-";
        const LutShape shape(cfg, p);
        if (opPackedLutBytes(shape) <= sys.dpu.wramLutBudget()) {
            const double tBuf =
                engine.run(problem, DesignPoint::OpLut, false, ov)
                    .timing.total;
            bufCell = bench::fmtSeconds(tBuf);
            ratioCell = Table::fmt(tDram / tBuf, 3) + "x";
        }
        table.addRow({std::to_string(p), bench::fmtSeconds(tDram), bufCell,
                      ratioCell});
    }
    table.print();
    bench::note("Conclusion (matches paper): the buffer-sized LUT is the "
                "right base design; DRAM capacity is exploited via slice "
                "streaming instead (Section IV-C).");
    return 0;
}
