#ifndef LOCALUT_BENCH_BENCH_UTIL_H_
#define LOCALUT_BENCH_BENCH_UTIL_H_

/**
 * @file
 * Shared helpers for the per-figure benchmark harnesses.  Every bench
 * prints: a header naming the paper figure, the parameters in use, the
 * measured series (same rows the figure plots), and the paper's reference
 * values for comparison (EXPERIMENTS.md records both).
 */

#include <string>
#include <vector>

#include "localut.h"

namespace localut {
namespace bench {

/**
 * Parses the bench CLI flags.  Every bench calls this first thing in
 * main(); the only flag is --smoke, which marks a reduced run for the
 * `ctest -L smoke` registration (heavy sweeps trim their case lists via
 * smoke()), so the per-figure harnesses cannot bit-rot unnoticed.
 */
void init(int argc, char** argv);

/** True when running as a ctest smoke test. */
bool smoke();

/** @p full normally, @p reduced under --smoke. */
template <typename T>
T
smokeTrim(T full, T reduced)
{
    return smoke() ? reduced : full;
}

/** Prints the figure banner. */
void header(const std::string& figure, const std::string& description);

/** Prints a labelled note (e.g. the paper's reference values). */
void note(const std::string& text);

/** Prints a section separator. */
void section(const std::string& title);

/** Formats seconds in engineering units. */
std::string fmtSeconds(double seconds);

/** Formats bytes in engineering units. */
std::string fmtBytes(double bytes);

/** Geomean convenience over a vector. */
double geomeanOf(const std::vector<double>& values);

} // namespace bench
} // namespace localut

#endif // LOCALUT_BENCH_BENCH_UTIL_H_
