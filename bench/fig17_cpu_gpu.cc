/**
 * @file
 * Reproduces paper Fig. 17: execution time and energy for GEMM
 * (M,K,N) = (12288, 192, 65536) against a Xeon Gold 5215 CPU and an RTX
 * 2080 Ti GPU across bitwidths.  Paper reference: LoCaLUT consistently
 * beats the CPU; the GPU advantage appears at W4A4 while LoCaLUT holds
 * or wins at the lower bitwidths (neither device has native sub-8-bit
 * arithmetic, so their time is flat across configs).
 */

#include "bench_util.h"

#include "common/table.h"
#include "hostsim/roofline.h"
#include "nn/inference.h"

using namespace localut;

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::header("Fig. 17", "CPU / GPU / LoCaLUT comparison "
                             "(M,K,N) = (12288, 192, 65536)");
    const std::size_t m = 12288, k = 192, n = 65536;
    const GemmEngine engine(PimSystemConfig::upmemServer());
    const RooflineDevice cpu = RooflineDevice::xeonGold5215();
    const RooflineDevice gpu = RooflineDevice::rtx2080Ti();

    Table time({"config", "CPU", "GPU", "LoCaLUT", "CPU/LoCaLUT",
                "GPU/LoCaLUT"});
    Table energy({"config", "CPU (J)", "GPU (J)", "LoCaLUT (J)"});
    for (const char* preset : {"W1A3", "W1A4", "W2A2", "W4A4"}) {
        const QuantConfig cfg = QuantConfig::preset(preset);
        const RooflineResult rc =
            rooflineGemm(cpu, m, k, n, cfg.bw(), cfg.ba());
        const RooflineResult rg =
            rooflineGemm(gpu, m, k, n, cfg.bw(), cfg.ba());
        const GemmProblem problem = makeShapeOnlyProblem(m, k, n, cfg);
        const GemmResult rl =
            engine.run(problem, DesignPoint::LoCaLut, false);
        time.addRow({preset, bench::fmtSeconds(rc.seconds),
                     bench::fmtSeconds(rg.seconds),
                     bench::fmtSeconds(rl.timing.total),
                     Table::fmt(rc.seconds / rl.timing.total, 3) + "x",
                     Table::fmt(rg.seconds / rl.timing.total, 3) + "x"});
        energy.addRow({preset, Table::fmt(rc.energyJ, 4),
                       Table::fmt(rg.energyJ, 4),
                       Table::fmt(rl.energy.total, 4)});
    }
    bench::section("(a) execution time");
    time.print();
    bench::section("(b) energy");
    energy.print();
    bench::note("Paper reference: LoCaLUT > CPU at every bitwidth; the GPU "
                "overtakes at W4A4 where the packing degree shrinks.");
    return 0;
}
