/**
 * @file
 * Reproduces paper Fig. 11: LoCaLUT speedup over Naive PIM while sweeping
 * the weight matrix dimensions M, K from 128 to 1024 (N = 128) at W1A3
 * and W2A2.  Paper reference: consistent wins across all sizes, geomean
 * 2.86x under both settings.
 */

#include <algorithm>

#include "bench_util.h"

#include "common/table.h"

using namespace localut;

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::header("Fig. 11", "matrix-size sensitivity heatmap (N = 128)");
    const GemmEngine engine(PimSystemConfig::upmemServer());
    const std::vector<std::size_t> dims = {128, 256, 384, 512,
                                           640, 768, 896, 1024};

    std::vector<double> all;
    for (const char* preset : {"W1A3", "W2A2"}) {
        bench::section(std::string(preset) +
                       ": speedup LoCaLUT / NaivePIM  (rows = M, cols = K)");
        std::vector<std::string> headers = {"M\\K"};
        for (auto k : dims) {
            headers.push_back(std::to_string(k));
        }
        Table table(headers);
        const QuantConfig cfg = QuantConfig::preset(preset);
        for (auto m : dims) {
            std::vector<std::string> row = {std::to_string(m)};
            for (auto k : dims) {
                const GemmProblem problem =
                    makeShapeOnlyProblem(m, k, 128, cfg);
                // Kernel-time ratio: the paper's per-size speedups are
                // GEMM-kernel measurements; at the smallest sizes a
                // total-time ratio would be washed out by the fixed
                // per-launch transfer latencies that both designs share.
                const double tNaive =
                    engine.run(problem, DesignPoint::NaivePim, false)
                        .timing.dpuSeconds;
                const double tLocalut =
                    engine.run(problem, DesignPoint::LoCaLut, false)
                        .timing.dpuSeconds;
                const double s = tNaive / tLocalut;
                all.push_back(s);
                row.push_back(Table::fmt(s, 3));
            }
            table.addRow(std::move(row));
        }
        table.print();
    }

    bench::section("aggregates (paper Section VI-D)");
    bench::note("geomean speedup over the sweep: " +
                Table::fmt(bench::geomeanOf(all), 3) +
                "x   (paper: 2.86x)");
    bench::note("min speedup: " +
                Table::fmt(*std::min_element(all.begin(), all.end()), 3) +
                "x   (paper: wins at every tested size)");
    return 0;
}
