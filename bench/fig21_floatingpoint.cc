/**
 * @file
 * Reproduces paper Fig. 21: floating-point support.  (a) bank-level GEMM
 * speedup over HBM-PIM for FP activation symbols — paper: up to 2.99x at
 * W1A4(fp4), 1.22x at W1A8(fp8), 1.17x at W4A4(fp4), and a 0.62x
 * slowdown at W1A16 against native fp16 hardware.  (b) proxy accuracy
 * under fp16-rounded LUT entries across packing degrees, with (LoCaLUT)
 * and without (OP) reordering — paper: reordering is numerically
 * harmless up to p = 5.
 */

#include "bench_util.h"

#include "common/table.h"
#include "nn/accuracy_proxy.h"

using namespace localut;

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::header("Fig. 21", "floating-point support");

    bench::section("(a) bank-level FP GEMM speedup vs HBM-PIM");
    {
        const BankLevelPim pim((BankPimConfig()));
        struct Case {
            const char* label;
            QuantConfig cfg;
            const char* paperRef;
        };
        const Case cases[] = {
            {"W1A4 (fp4)", QuantConfig::fpPreset(1, 4), "up to 2.99x"},
            {"W1A8 (fp8)", QuantConfig::fpPreset(1, 8), "up to 1.22x"},
            {"W1A16 (fp16)", QuantConfig::fpPreset(1, 16),
             "0.62x geomean (native fp16 wins)"},
            {"W4A4 (fp4)", QuantConfig::fpPreset(4, 4), "up to 1.17x"},
        };
        const std::vector<std::size_t> dims =
            bench::smokeTrim<std::vector<std::size_t>>({1024, 2048, 4096},
                                                       {1024});
        std::vector<std::string> columns = {"config", "p"};
        for (const std::size_t dim : dims) {
            columns.push_back(std::to_string(dim / 1024) + "K");
        }
        columns.push_back("paper");
        Table table(std::move(columns));
        for (const Case& c : cases) {
            std::vector<std::string> row = {c.label};
            row.push_back(std::to_string(pim.choosePackingDegree(c.cfg)));
            for (std::size_t dim : dims) {
                const double s =
                    pim.simdGemm(dim, dim, dim).seconds /
                    pim.lutGemm(dim, dim, dim, c.cfg).seconds;
                row.push_back(Table::fmt(s, 3) + "x");
            }
            row.push_back(c.paperRef);
            table.addRow(std::move(row));
        }
        table.print();
    }

    bench::section("(b) proxy accuracy vs packing degree (fp symbols, "
                   "W4A4-fp)");
    {
        ProxyTaskConfig cfg;
        cfg.trainSamples = 256;
        cfg.testSamples = 256;
        // Harder task so precision effects are visible (ViT-like regime).
        cfg.classes = 8;
        cfg.clusterSpread = 1.8;
        const AccuracyProxy proxy(cfg);
        const double fp32 = proxy.evaluateFp32().accuracy;
        const QuantConfig fpCfg = QuantConfig::fpPreset(4, 4);
        Table table({"p", "FP32", "OP (no reorder)", "LoCaLUT (reorder)",
                     "delta"});
        const unsigned maxP = bench::smokeTrim(5u, 2u);
        for (unsigned p = 1; p <= maxP; ++p) {
            const double op = proxy.evaluateFpLut(fpCfg, p, false).accuracy;
            const double lc = proxy.evaluateFpLut(fpCfg, p, true).accuracy;
            table.addRow({std::to_string(p), Table::fmt(fp32, 4) + "%",
                          Table::fmt(op, 4) + "%", Table::fmt(lc, 4) + "%",
                          Table::fmt(lc - op, 3) + "pp"});
        }
        table.print();
        bench::note("Paper reference: negligible accuracy impact from the "
                    "reordering LUT across packing degrees up to 5.");
    }
    return 0;
}
