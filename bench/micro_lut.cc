/**
 * @file
 * google-benchmark micro-benchmarks of the host-side LUT machinery:
 * canonical/reordering LUT construction (the init-time cost of Section
 * V-A), canonicalization throughput (the host "packing & sorting" phase),
 * and multiset ranking.
 */

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "lut/canonical_lut.h"
#include "lut/canonicalizer.h"
#include "lut/packed_lut.h"
#include "lut/reordering_lut.h"

namespace localut {
namespace {

void
BM_CanonicalLutBuild(benchmark::State& state)
{
    const unsigned p = static_cast<unsigned>(state.range(0));
    const LutShape shape(QuantConfig::preset("W1A3"), p);
    for (auto _ : state) {
        CanonicalLut lut(shape);
        benchmark::DoNotOptimize(lut.rows());
    }
    state.counters["bytes"] =
        static_cast<double>(shape.weightRows() * shape.canonicalColumns() *
                            shape.outBytes);
}
BENCHMARK(BM_CanonicalLutBuild)->Arg(3)->Arg(5)->Arg(7);

void
BM_ReorderingLutBuild(benchmark::State& state)
{
    const unsigned p = static_cast<unsigned>(state.range(0));
    const LutShape shape(QuantConfig::preset("W1A3"), p);
    for (auto _ : state) {
        ReorderingLut lut(shape);
        benchmark::DoNotOptimize(lut.cols());
    }
}
BENCHMARK(BM_ReorderingLutBuild)->Arg(3)->Arg(5)->Arg(7);

void
BM_OperationPackedLutBuild(benchmark::State& state)
{
    const unsigned p = static_cast<unsigned>(state.range(0));
    const LutShape shape(QuantConfig::preset("W1A3"), p);
    for (auto _ : state) {
        OperationPackedLut lut(shape);
        benchmark::DoNotOptimize(lut.rows());
    }
}
BENCHMARK(BM_OperationPackedLutBuild)->Arg(2)->Arg(3)->Arg(4);

void
BM_Canonicalize(benchmark::State& state)
{
    const unsigned p = static_cast<unsigned>(state.range(0));
    const LutShape shape(QuantConfig::preset("W1A3"), p);
    const ActivationCanonicalizer canon(shape);
    Rng rng(1);
    std::vector<std::uint16_t> codes(p);
    for (auto& c : codes) {
        c = static_cast<std::uint16_t>(rng.nextBounded(8));
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(canon.canonicalize(codes).multisetRank);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_Canonicalize)->Arg(4)->Arg(8);

void
BM_MultisetRank(benchmark::State& state)
{
    const unsigned p = static_cast<unsigned>(state.range(0));
    std::vector<std::uint16_t> sorted(p);
    for (unsigned i = 0; i < p; ++i) {
        sorted[i] = static_cast<std::uint16_t>(i % 8);
    }
    std::sort(sorted.begin(), sorted.end());
    for (auto _ : state) {
        benchmark::DoNotOptimize(multisetRank(sorted, 8));
    }
}
BENCHMARK(BM_MultisetRank)->Arg(4)->Arg(8);

} // namespace
} // namespace localut

BENCHMARK_MAIN();
