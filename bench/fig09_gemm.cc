/**
 * @file
 * Reproduces paper Fig. 9: GEMM speedup over Naive PIM for every design
 * point at (M,K,N) = (768,768,128) and (3072,768,128) across W1A3 /
 * W1A4 / W2A2 / W4A4.  Paper reference: LoCaLUT geomean 2.87x over Naive
 * and 1.77x over LTC, up to 4.73x / 1.93x; OP+LC regresses below OP from
 * the runtime reordering overhead; LTC and OP drop below Naive at W4A4.
 */

#include <algorithm>

#include "bench_util.h"

#include "common/table.h"

using namespace localut;

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::header("Fig. 9", "GEMM speedup over Naive PIM per design point");
    const GemmEngine engine(PimSystemConfig::upmemServer());

    const DesignPoint designs[] = {DesignPoint::NaivePim, DesignPoint::Ltc,
                                   DesignPoint::OpLut, DesignPoint::OpLc,
                                   DesignPoint::OpLcRc,
                                   DesignPoint::LoCaLut};
    struct Shape {
        std::size_t m, k, n;
    };
    const Shape shapes[] = {{768, 768, 128}, {3072, 768, 128}};

    std::vector<double> vsNaive, vsLtc;
    for (const Shape& s : shapes) {
        bench::section("(M,K,N) = (" + std::to_string(s.m) + ", " +
                       std::to_string(s.k) + ", " + std::to_string(s.n) +
                       ")");
        Table table({"config", "NaivePIM", "LTC", "OP", "OP+LC", "OP+LC+RC",
                     "LoCaLUT", "p*", "stream"});
        for (const char* preset : {"W1A3", "W1A4", "W2A2", "W4A4"}) {
            const QuantConfig cfg = QuantConfig::preset(preset);
            const GemmProblem problem =
                makeShapeOnlyProblem(s.m, s.k, s.n, cfg);
            double tNaive = 0, tLtc = 0;
            std::vector<std::string> row = {preset};
            GemmPlan lastPlan(DesignPoint::LoCaLut, cfg);
            for (DesignPoint dp : designs) {
                const GemmPlan plan = engine.plan(problem, dp);
                const double t =
                    engine.run(problem, plan, false).timing.total;
                if (dp == DesignPoint::NaivePim) {
                    tNaive = t;
                }
                if (dp == DesignPoint::Ltc) {
                    tLtc = t;
                }
                if (dp == DesignPoint::LoCaLut) {
                    vsNaive.push_back(tNaive / t);
                    vsLtc.push_back(tLtc / t);
                    lastPlan = plan;
                }
                row.push_back(Table::fmt(tNaive / t, 3) + "x");
            }
            row.push_back(std::to_string(lastPlan.p));
            row.push_back(lastPlan.streaming ? "yes" : "no");
            table.addRow(std::move(row));
        }
        table.print();
    }

    bench::section("aggregates (paper Section VI-B)");
    bench::note("geomean LoCaLUT vs Naive: " +
                Table::fmt(bench::geomeanOf(vsNaive), 3) +
                "x   (paper: 2.87x)");
    bench::note("geomean LoCaLUT vs LTC:   " +
                Table::fmt(bench::geomeanOf(vsLtc), 3) +
                "x   (paper: 1.77x)");
    bench::note("max LoCaLUT vs Naive:     " +
                Table::fmt(*std::max_element(vsNaive.begin(),
                                             vsNaive.end()),
                           3) +
                "x   (paper: up to 4.73x)");
    bench::note("max LoCaLUT vs LTC:       " +
                Table::fmt(*std::max_element(vsLtc.begin(), vsLtc.end()),
                           3) +
                "x   (paper: up to 1.93x)");
    return 0;
}
