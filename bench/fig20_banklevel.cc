/**
 * @file
 * Reproduces paper Fig. 20(b): the LoCaLUT-enabled bank-level PIM (16x
 * 512 B canonical LUT units per bank, slice streaming) vs the HBM-PIM
 * SIMD baseline on (M,K,N) = 1K/2K/4K cubes across W1A3/W1A4/W2A2/W4A4.
 * Paper reference: geomean 2.04x; W4A4 still 1.17x despite its low
 * packing degree.
 */

#include "bench_util.h"

#include "common/table.h"

using namespace localut;

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::header("Fig. 20(b)",
                  "bank-level PIM: LoCaLUT redesign vs HBM-PIM SIMD");
    const BankLevelPim pim((BankPimConfig()));
    bench::note("per bank: 16 SIMD fp16 lanes (baseline) vs sixteen 512 B "
                "canonical LUT units + reordering storage (LoCaLUT)");

    Table table({"config", "p", "1K cube", "2K cube", "4K cube"});
    std::vector<double> all, w4a4;
    for (const char* preset : {"W1A3", "W1A4", "W2A2", "W4A4"}) {
        const QuantConfig cfg = QuantConfig::preset(preset);
        std::vector<std::string> row = {preset};
        row.push_back(std::to_string(pim.choosePackingDegree(cfg)));
        for (std::size_t dim : {1024u, 2048u, 4096u}) {
            const double tSimd = pim.simdGemm(dim, dim, dim).seconds;
            const double tLut = pim.lutGemm(dim, dim, dim, cfg).seconds;
            const double s = tSimd / tLut;
            all.push_back(s);
            if (std::string(preset) == "W4A4") {
                w4a4.push_back(s);
            }
            row.push_back(Table::fmt(s, 3) + "x");
        }
        table.addRow(std::move(row));
    }
    table.print();

    bench::section("aggregates (paper Section VI-K)");
    bench::note("geomean speedup: " + Table::fmt(bench::geomeanOf(all), 3) +
                "x   (paper: 2.04x)");
    bench::note("W4A4 geomean:    " +
                Table::fmt(bench::geomeanOf(w4a4), 3) +
                "x   (paper: 1.17x)");
    return 0;
}
