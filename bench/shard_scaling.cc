/**
 * @file
 * Beyond-paper scaling study: tensor-parallel rank sharding of the
 * fig10 OPT decode workload (serving/sharding.h).  Sweeps the number of
 * logical PIM ranks and reports end-to-end latency, the collective
 * (all-gather) share, and the speedup over the unsharded baseline —
 * the capacity-computation tradeoff at the multi-rank level: more ranks
 * cut the per-rank GEMM slice but pay a fixed reduction transfer, so
 * scaling is sublinear and saturates on the skinny decode GEMMs.
 */

#include "bench_util.h"

#include "common/table.h"

using namespace localut;

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::header("shard scaling",
                  "OPT decode latency vs tensor-parallel rank count");

    const TransformerConfig model = TransformerConfig::opt125m();
    const QuantConfig cfg = QuantConfig::preset("W4A4");
    const unsigned steps = bench::smokeTrim(8u, 2u);
    const WorkloadSpec spec = WorkloadSpec::decode(model, 32, 128, steps);

    bench::section("end-to-end decode (batch 32, prompt 128, " +
                   std::to_string(steps) + " steps, W4A4, upmem)");
    double baseline = 0;
    Table table({"ranks", "total", "gemm", "collective", "host",
                 "speedup"});
    const std::vector<unsigned> rankCounts =
        bench::smokeTrim<std::vector<unsigned>>({1, 2, 4, 8, 16}, {1, 4});
    for (const unsigned ranks : rankCounts) {
        SessionOptions options;
        options.numRanks = ranks;
        InferenceSession session(makeBackend("upmem"), options);
        const auto workload =
            session.compile(spec, cfg, DesignPoint::LoCaLut);
        const InferenceReport report =
            session.waitReport(session.submit(workload));
        if (ranks == 1) {
            baseline = report.timing.total;
        }
        table.addRow({std::to_string(ranks),
                      bench::fmtSeconds(report.timing.total),
                      bench::fmtSeconds(report.gemmSeconds),
                      bench::fmtSeconds(report.collectiveSeconds),
                      bench::fmtSeconds(report.hostOpSeconds),
                      Table::fmt(baseline / report.timing.total, 3) + "x"});
    }
    table.print();

    bench::section("single decode GEMM (768x768x32), strategy comparison");
    const BackendPtr backend = makeBackend("upmem");
    const GemmProblem decodeGemm =
        makeShapeOnlyProblem(model.hidden, model.hidden, 32, cfg);
    Table strat({"strategy", "ranks", "critical shard", "collective",
                 "total"});
    for (const ShardStrategy strategy :
         {ShardStrategy::ColumnParallel, ShardStrategy::RowParallel}) {
        for (const unsigned ranks : {2u, 4u}) {
            ShardSpec shard;
            shard.numRanks = ranks;
            shard.strategy = strategy;
            const ShardPlan plan = makeShardPlan(
                *backend, decodeGemm, DesignPoint::LoCaLut, shard);
            const GemmResult r = executeSharded(
                *backend, decodeGemm, plan, /*computeValues=*/false);
            strat.addRow(
                {shardStrategyName(strategy), std::to_string(ranks),
                 bench::fmtSeconds(r.timing.total -
                                   plan.collectiveSeconds),
                 bench::fmtSeconds(plan.collectiveSeconds),
                 bench::fmtSeconds(r.timing.total)});
        }
    }
    strat.print();
    bench::note("column-parallel gathers M*N*4 bytes once; row-parallel "
                "gathers one MxN partial per rank plus a host reduce — a "
                "heavier collective that can still win on skinny decode "
                "GEMMs, where cutting K shortens the per-DPU reduction.");
    return 0;
}
