/**
 * @file
 * Beyond-paper scaling study: tensor-parallel rank sharding of the
 * fig10 OPT decode workload (serving/sharding.h).  Sweeps the number of
 * logical PIM ranks and reports end-to-end latency, the collective
 * (all-gather) share, and the speedup over the unsharded baseline —
 * the capacity-computation tradeoff at the multi-rank level: more ranks
 * cut the per-rank GEMM slice but pay a fixed reduction transfer, so
 * scaling is sublinear and saturates on the skinny decode GEMMs.
 *
 * The node sweep extends the study across the hierarchical topology
 * (nodes x ranks-per-node): each point is a *cold* session (LUT
 * broadcasts included), so the fig10_2x4 row it splices into
 * BENCH_exec.json carries the scale-out claim end to end.  Under
 * --smoke the run gates CI: 2x4 must beat 1x4 on cold-inclusive decode
 * time, and the delta/RLE codec must shrink the inter-node broadcast
 * bytes by >= 2x on the OPT-class table sets.
 */

#include "bench_util.h"

#include "common/table.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace localut;

namespace {

/** One cold topology point of the node sweep. */
struct TopoPoint {
    unsigned nodes = 1;
    unsigned ranksPerNode = 1;
    double totalSeconds = 0;
    double collectiveSeconds = 0;
    double interNodeSeconds = 0;
    double interRawBytes = 0;
    double interBytes = 0;

    std::string
    name() const
    {
        return std::to_string(nodes) + "x" + std::to_string(ranksPerNode);
    }

    double
    compressionRatio() const
    {
        return interBytes > 0 ? interRawBytes / interBytes : 0.0;
    }
};

/** Runs the fig10 OPT decode cold on a fresh (nodes x ranks) session. */
TopoPoint
runTopology(const WorkloadSpec& spec, const QuantConfig& cfg,
            unsigned nodes, unsigned ranksPerNode)
{
    SessionOptions options;
    options.numRanks = ranksPerNode;
    options.numNodes = nodes;
    options.residencyPolicy = ResidencyPolicy::CostAware;
    InferenceSession session(makeBackend("upmem"), options);
    const InferenceReport report = session.waitReport(
        session.submit(session.compile(spec, cfg, DesignPoint::LoCaLut)));
    const ResidencyStats stats = session.residencyStats();
    TopoPoint point;
    point.nodes = nodes;
    point.ranksPerNode = ranksPerNode;
    point.totalSeconds = report.timing.total;
    point.collectiveSeconds = report.collectiveSeconds;
    point.interNodeSeconds = report.interNodeSeconds;
    point.interRawBytes = stats.broadcastInterRawBytes;
    point.interBytes = stats.broadcastInterBytes;
    return point;
}

/** Serializes the node sweep as the "shard_scaling" JSON object. */
std::string
sweepJson(const std::vector<TopoPoint>& points, const TopoPoint* fig,
          double vs1x4)
{
    std::string out = "\"shard_scaling\": {\n";
    char buf[512];
    std::snprintf(buf, sizeof buf, "    \"smoke\": %s,\n",
                  bench::smoke() ? "true" : "false");
    out += buf;
    if (fig != nullptr) {
        std::snprintf(
            buf, sizeof buf,
            "    \"fig10_2x4\": {\"total_seconds\": %.6e, "
            "\"inter_node_seconds\": %.6e, "
            "\"broadcast_inter_raw_bytes\": %.0f, "
            "\"broadcast_inter_bytes\": %.0f, "
            "\"compression_ratio\": %.3f, \"vs_1x4_speedup\": %.3f},\n",
            fig->totalSeconds, fig->interNodeSeconds, fig->interRawBytes,
            fig->interBytes, fig->compressionRatio(), vs1x4);
        out += buf;
    }
    out += "    \"rows\": [\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const TopoPoint& p = points[i];
        std::snprintf(buf, sizeof buf,
                      "      {\"topology\": \"%s\", \"nodes\": %u, "
                      "\"ranks_per_node\": %u, \"total_seconds\": %.6e, "
                      "\"collective_seconds\": %.6e, "
                      "\"inter_node_seconds\": %.6e, "
                      "\"compression_ratio\": %.3f}%s\n",
                      p.name().c_str(), p.nodes, p.ranksPerNode,
                      p.totalSeconds, p.collectiveSeconds,
                      p.interNodeSeconds, p.compressionRatio(),
                      i + 1 < points.size() ? "," : "");
        out += buf;
    }
    out += "    ]\n  }";
    return out;
}

/**
 * Splices the node-sweep object into BENCH_exec.json next to the
 * exec_throughput numbers (creating a minimal file when the exec bench
 * has not run), so one artifact carries the whole perf trajectory.
 */
void
spliceIntoBenchJson(const std::string& object)
{
    std::string existing;
    if (std::FILE* f = std::fopen("BENCH_exec.json", "rb")) {
        char chunk[4096];
        std::size_t n = 0;
        while ((n = std::fread(chunk, 1, sizeof chunk, f)) > 0) {
            existing.append(chunk, n);
        }
        std::fclose(f);
    }
    // Drop a stale "shard_scaling" block (previous splice) by brace
    // matching from the key to its closing brace.
    const std::size_t key = existing.find("\"shard_scaling\":");
    if (key != std::string::npos) {
        std::size_t start = existing.find_last_of(',', key);
        if (start == std::string::npos) {
            start = key;
        }
        std::size_t pos = existing.find('{', key);
        int depth = 0;
        while (pos < existing.size()) {
            if (existing[pos] == '{') {
                ++depth;
            } else if (existing[pos] == '}' && --depth == 0) {
                break;
            }
            ++pos;
        }
        if (pos < existing.size()) {
            existing.erase(start, pos + 1 - start);
        }
    }
    const std::size_t close = existing.find_last_of('}');
    std::string out;
    if (close == std::string::npos) {
        out = "{\n  \"bench\": \"shard_scaling\",\n  " + object + "\n}\n";
    } else {
        out = existing.substr(0, close) + ",\n  " + object + "\n" +
              existing.substr(close);
    }
    if (std::FILE* f = std::fopen("BENCH_exec.json", "wb")) {
        std::fwrite(out.data(), 1, out.size(), f);
        std::fclose(f);
        bench::note("spliced shard_scaling into BENCH_exec.json");
    } else {
        bench::note("could not open BENCH_exec.json for writing");
    }
}

} // namespace

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::header("shard scaling",
                  "OPT decode latency vs tensor-parallel rank count");

    const TransformerConfig model = TransformerConfig::opt125m();
    const QuantConfig cfg = QuantConfig::preset("W4A4");
    const unsigned steps = bench::smokeTrim(8u, 2u);
    const WorkloadSpec spec = WorkloadSpec::decode(model, 32, 128, steps);

    bench::section("end-to-end decode (batch 32, prompt 128, " +
                   std::to_string(steps) + " steps, W4A4, upmem)");
    double baseline = 0;
    Table table({"ranks", "total", "gemm", "collective", "host",
                 "speedup"});
    const std::vector<unsigned> rankCounts =
        bench::smokeTrim<std::vector<unsigned>>({1, 2, 4, 8, 16}, {1, 4});
    for (const unsigned ranks : rankCounts) {
        SessionOptions options;
        options.numRanks = ranks;
        InferenceSession session(makeBackend("upmem"), options);
        const auto workload =
            session.compile(spec, cfg, DesignPoint::LoCaLut);
        const InferenceReport report =
            session.waitReport(session.submit(workload));
        if (ranks == 1) {
            baseline = report.timing.total;
        }
        table.addRow({std::to_string(ranks),
                      bench::fmtSeconds(report.timing.total),
                      bench::fmtSeconds(report.gemmSeconds),
                      bench::fmtSeconds(report.collectiveSeconds),
                      bench::fmtSeconds(report.hostOpSeconds),
                      Table::fmt(baseline / report.timing.total, 3) + "x"});
    }
    table.print();

    bench::section("single decode GEMM (768x768x32), strategy comparison");
    const BackendPtr backend = makeBackend("upmem");
    const GemmProblem decodeGemm =
        makeShapeOnlyProblem(model.hidden, model.hidden, 32, cfg);
    Table strat({"strategy", "ranks", "critical shard", "collective",
                 "total"});
    for (const ShardStrategy strategy :
         {ShardStrategy::ColumnParallel, ShardStrategy::RowParallel}) {
        for (const unsigned ranks : {2u, 4u}) {
            ShardSpec shard;
            shard.numRanks = ranks;
            shard.strategy = strategy;
            const ShardPlan plan = makeShardPlan(
                *backend, decodeGemm, DesignPoint::LoCaLut, shard);
            const GemmResult r = executeSharded(
                *backend, decodeGemm, plan, /*computeValues=*/false);
            strat.addRow(
                {shardStrategyName(strategy), std::to_string(ranks),
                 bench::fmtSeconds(r.timing.total -
                                   plan.collectiveSeconds),
                 bench::fmtSeconds(plan.collectiveSeconds),
                 bench::fmtSeconds(r.timing.total)});
        }
    }
    strat.print();
    bench::note("column-parallel gathers M*N*4 bytes once; row-parallel "
                "gathers one MxN partial per rank plus a host reduce — a "
                "heavier collective that can still win on skinny decode "
                "GEMMs, where cutting K shortens the per-DPU reduction.");

    bench::section("node sweep: cold sessions, LUT broadcasts included");
    const std::vector<std::pair<unsigned, unsigned>> topologies =
        bench::smokeTrim<std::vector<std::pair<unsigned, unsigned>>>(
            {{1, 1}, {1, 2}, {1, 4}, {2, 2}, {2, 4}}, {{1, 4}, {2, 4}});
    std::vector<TopoPoint> points;
    Table topo({"topology", "total", "collective", "inter-node",
                "inter raw", "inter sent", "ratio", "speedup"});
    double topoBaseline = 0;
    for (const auto& [nodes, ranks] : topologies) {
        const TopoPoint p = runTopology(spec, cfg, nodes, ranks);
        if (points.empty()) {
            topoBaseline = p.totalSeconds;
        }
        topo.addRow({p.name(), bench::fmtSeconds(p.totalSeconds),
                     bench::fmtSeconds(p.collectiveSeconds),
                     bench::fmtSeconds(p.interNodeSeconds),
                     bench::fmtBytes(p.interRawBytes),
                     bench::fmtBytes(p.interBytes),
                     Table::fmt(p.compressionRatio(), 2) + "x",
                     Table::fmt(topoBaseline / p.totalSeconds, 3) + "x"});
        points.push_back(p);
    }
    topo.print();
    bench::note("every point is a fresh session, so the totals include "
                "the cold LUT table-set broadcasts; multi-node points "
                "pay the CXL tier but the compressed broadcasts and the "
                "wider rank pool still have to win end to end.");

    const TopoPoint* p1x4 = nullptr;
    const TopoPoint* p2x4 = nullptr;
    for (const TopoPoint& p : points) {
        if (p.nodes == 1 && p.ranksPerNode == 4) {
            p1x4 = &p;
        } else if (p.nodes == 2 && p.ranksPerNode == 4) {
            p2x4 = &p;
        }
    }
    const double vs1x4 = (p1x4 != nullptr && p2x4 != nullptr)
                             ? p1x4->totalSeconds / p2x4->totalSeconds
                             : 0.0;
    spliceIntoBenchJson(sweepJson(points, p2x4, vs1x4));

    // CI gates (--smoke): scale-out must be real, compression must hold.
    int failures = 0;
    if (p1x4 != nullptr && p2x4 != nullptr &&
        p2x4->totalSeconds > p1x4->totalSeconds) {
        bench::note("GATE FAILED: cold 2x4 decode is slower than 1x4 (" +
                    bench::fmtSeconds(p2x4->totalSeconds) + " vs " +
                    bench::fmtSeconds(p1x4->totalSeconds) + ")");
        ++failures;
    }
    if (p2x4 != nullptr && p2x4->compressionRatio() < 2.0) {
        bench::note("GATE FAILED: inter-node broadcast compression " +
                    Table::fmt(p2x4->compressionRatio(), 2) +
                    "x is below the 2x floor");
        ++failures;
    }
    if (failures == 0) {
        bench::note("gates: 2x4 beats 1x4 cold (" +
                    Table::fmt(vs1x4, 3) +
                    "x) and inter-node compression >= 2x (" +
                    Table::fmt(p2x4 != nullptr ? p2x4->compressionRatio()
                                               : 0.0,
                               2) +
                    "x)");
    }
    return failures == 0 ? 0 : 1;
}
