/**
 * @file
 * Reproduces paper Fig. 19: (a) prefill-only (BERT, W1A3) and
 * prefill+decode (OPT, W4A4, output lengths 4/8/16) execution compared
 * between OP and LoCaLUT — paper: prefill 1.34x, decode 1.27x; (b) batch
 * size sweep 32..512 (BERT-W1A3, ViT-W2A2, OPT-W4A4), speedup over OP —
 * paper: consistent gains, strongest at high batch via bank parallelism.
 */

#include "bench_util.h"

#include "common/table.h"
#include "nn/inference.h"

using namespace localut;

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::header("Fig. 19", "real-world inference scenarios");
    const PimSystemConfig sys = PimSystemConfig::upmemServer();

    bench::section("(a) prefill / decode phases (OP vs LoCaLUT)");
    {
        Table table({"model", "phase", "OP", "LoCaLUT", "speedup"});
        std::vector<double> prefillSp, decodeSp;
        // BERT (W1A3): prefill-only.
        {
            const TransformerRunner op(sys, QuantConfig::preset("W1A3"),
                                       DesignPoint::OpLut);
            const TransformerRunner lc(sys, QuantConfig::preset("W1A3"),
                                       DesignPoint::LoCaLut);
            const auto model = TransformerConfig::bertBase();
            const double tOp = op.prefill(model, 32, 128).timing.total;
            const double tLc = lc.prefill(model, 32, 128).timing.total;
            prefillSp.push_back(tOp / tLc);
            table.addRow({"BERT (W1A3)", "prefill", bench::fmtSeconds(tOp),
                          bench::fmtSeconds(tLc),
                          Table::fmt(tOp / tLc, 3) + "x"});
        }
        // OPT (W4A4): prefill + decode with out lengths 4/8/16.
        const TransformerRunner op(sys, QuantConfig::preset("W4A4"),
                                   DesignPoint::OpLut);
        const TransformerRunner lc(sys, QuantConfig::preset("W4A4"),
                                   DesignPoint::LoCaLut);
        const auto model = TransformerConfig::opt125m();
        const double preOp = op.prefill(model, 32, 128).timing.total;
        const double preLc = lc.prefill(model, 32, 128).timing.total;
        prefillSp.push_back(preOp / preLc);
        table.addRow({"OPT (W4A4)", "prefill", bench::fmtSeconds(preOp),
                      bench::fmtSeconds(preLc),
                      Table::fmt(preOp / preLc, 3) + "x"});
        for (unsigned out : {4u, 8u, 16u}) {
            const double dOp =
                op.decode(model, 32, 128, out).timing.total;
            const double dLc =
                lc.decode(model, 32, 128, out).timing.total;
            decodeSp.push_back(dOp / dLc);
            table.addRow({"OPT (W4A4)", "decode out=" + std::to_string(out),
                          bench::fmtSeconds(dOp), bench::fmtSeconds(dLc),
                          Table::fmt(dOp / dLc, 3) + "x"});
        }
        table.print();
        bench::note("geomean prefill speedup: " +
                    Table::fmt(bench::geomeanOf(prefillSp), 3) +
                    "x   (paper: 1.34x)");
        bench::note("geomean decode speedup:  " +
                    Table::fmt(bench::geomeanOf(decodeSp), 3) +
                    "x   (paper: 1.27x)");
    }

    bench::section("(b) batch-size sweep (speedup over OP)");
    {
        struct Case {
            TransformerConfig model;
            const char* preset;
        };
        const Case cases[] = {
            {TransformerConfig::bertBase(), "W1A3"},
            {TransformerConfig::vitBase(), "W2A2"},
            {TransformerConfig::opt125m(), "W4A4"},
        };
        Table table({"model", "config", "b=32", "b=64", "b=128", "b=256",
                     "b=512"});
        for (const Case& c : cases) {
            const TransformerRunner op(sys, QuantConfig::preset(c.preset),
                                       DesignPoint::OpLut);
            const TransformerRunner lc(sys, QuantConfig::preset(c.preset),
                                       DesignPoint::LoCaLut);
            std::vector<std::string> row = {c.model.name, c.preset};
            for (unsigned b : {32u, 64u, 128u, 256u, 512u}) {
                double tOp, tLc;
                if (c.model.name == "OPT-125M") {
                    tOp = op.decode(c.model, b, 128, 8).timing.total;
                    tLc = lc.decode(c.model, b, 128, 8).timing.total;
                } else {
                    tOp = op.prefill(c.model, b, c.model.defaultSeqLen)
                              .timing.total;
                    tLc = lc.prefill(c.model, b, c.model.defaultSeqLen)
                              .timing.total;
                }
                row.push_back(Table::fmt(tOp / tLc, 3) + "x");
            }
            table.addRow(std::move(row));
        }
        table.print();
        bench::note("Paper reference: consistent speedup, growing with "
                    "batch size through bank-level parallelism.");
    }
    return 0;
}
