/**
 * @file
 * Reproduces paper Fig. 15: speedup vs accuracy against the
 * product-quantization LUT methods (PIM-DL, LUT-DLA L1/L2).  Accuracy
 * uses the synthetic ridge-readout proxy task (see DESIGN.md: the GLUE
 * datasets are substituted; the mechanism — PQ approximation error vs
 * LoCaLUT's exact quantized arithmetic — is preserved).  Speedups are
 * end-to-end BERT-base times over Naive PIM.
 */

#include "bench_util.h"

#include "common/table.h"
#include "nn/accuracy_proxy.h"
#include "nn/inference.h"

using namespace localut;

namespace {

double
bertSeconds(DesignPoint dp, const char* preset)
{
    const PimSystemConfig sys = PimSystemConfig::upmemServer();
    const TransformerRunner runner(sys, QuantConfig::preset(preset), dp);
    return runner.prefill(TransformerConfig::bertBase(), 32, 128)
        .timing.total;
}

/** End-to-end BERT time with every GEMM running through the PQ engine. */
double
bertPqSeconds(const PqParams& params)
{
    const PimSystemConfig sys = PimSystemConfig::upmemServer();
    const PqGemmEngine engine(sys, params);
    const TransformerConfig model = TransformerConfig::bertBase();
    const std::size_t tokens = 32 * 128;
    // Dummy float operands: timing is shape-driven.
    auto gemmTime = [&](std::size_t m, std::size_t k, std::size_t n,
                        double count) {
        const std::vector<float> w(m * k, 0.5f);
        const std::vector<float> a(k * n, 0.25f);
        return engine.run(w, a, m, k, n, false).timing.total * count;
    };
    double t = 0;
    t += gemmTime(model.hidden, model.hidden, tokens, 3.0 * model.layers);
    t += gemmTime(model.hidden, model.hidden, tokens, model.layers);
    t += gemmTime(model.ffnHidden, model.hidden, tokens, model.layers);
    t += gemmTime(model.hidden, model.ffnHidden, tokens, model.layers);
    return t;
}

} // namespace

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::header("Fig. 15",
                  "speedup vs accuracy against PQ-based LUT methods");
    bench::note("Accuracy axis: synthetic ridge-readout proxy task "
                "(substitution documented in DESIGN.md).");

    ProxyTaskConfig taskCfg;
    // Harder task (more classes, wider clusters) so precision and
    // approximation effects separate the methods, as the GLUE tasks do.
    taskCfg.classes = 8;
    taskCfg.clusterSpread = 1.8;
    const AccuracyProxy proxy(taskCfg);
    const double fp32Acc = proxy.evaluateFp32().accuracy;
    bench::note("fp32 reference accuracy: " + Table::fmt(fp32Acc, 4) + "%");

    const double tNaive = bertSeconds(DesignPoint::NaivePim, "W1A3");

    Table table({"method", "config", "speedup vs Naive", "accuracy (%)",
                 "feature MSE"});
    for (const char* preset : {"W1A3", "W1A4", "W2A2", "W4A4"}) {
        const ProxyScore score =
            proxy.evaluateQuantized(QuantConfig::preset(preset));
        const double t = bertSeconds(DesignPoint::LoCaLut, preset);
        table.addRow({"LoCaLUT", preset, Table::fmt(tNaive / t, 3) + "x",
                      Table::fmt(score.accuracy, 4),
                      Table::fmt(score.featureMse, 3)});
    }
    {
        const ProxyScore score = proxy.evaluatePq(pimDlParams());
        const double t = bertPqSeconds(pimDlParams());
        table.addRow({"PIM-DL", "PQ(16c/8d)",
                      Table::fmt(tNaive / t, 3) + "x",
                      Table::fmt(score.accuracy, 4),
                      Table::fmt(score.featureMse, 3)});
    }
    for (DistanceMetric metric : {DistanceMetric::L1, DistanceMetric::L2}) {
        const PqParams params = lutDlaParams(metric);
        const ProxyScore score = proxy.evaluatePq(params);
        const double t = bertPqSeconds(params);
        table.addRow({metric == DistanceMetric::L1 ? "LUT-DLA (L1)"
                                                   : "LUT-DLA (L2)",
                      "PQ(16c/8d)", Table::fmt(tNaive / t, 3) + "x",
                      Table::fmt(score.accuracy, 4),
                      Table::fmt(score.featureMse, 3)});
    }
    table.print();
    bench::note("Paper reference: LoCaLUT dominates the PQ methods on the "
                "speed/accuracy frontier across all four GLUE tasks.");
    return 0;
}
