/**
 * @file
 * Reproduces paper Fig. 16: (a) end-to-end BERT execution breakdown for
 * PIM-DL vs LoCaLUT (W2A2, W1A3) — PIM-DL spends less on PIM GEMM but
 * pays a large host centroid-selection share; (b) the LoCaLUT GEMM kernel
 * breakdown — reordering-LUT *index calculation* dominates, the
 * reordering-LUT *access* itself is only ~6.9%.
 */

#include "bench_util.h"

#include "common/table.h"
#include "nn/inference.h"

using namespace localut;

namespace {

void
printShares(const Breakdown& seconds,
            const std::vector<std::pair<std::string,
                                        std::vector<std::string>>>& groups)
{
    const double total = seconds.total();
    Table table({"category", "share"});
    double covered = 0;
    for (const auto& [label, phases] : groups) {
        double part = 0;
        for (const auto& ph : phases) {
            part += seconds.get(ph);
        }
        covered += part;
        table.addRow({label, Table::fmt(100.0 * part / total, 3) + "%"});
    }
    table.addRow({"others",
                  Table::fmt(100.0 * (total - covered) / total, 3) + "%"});
    table.print();
}

} // namespace

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::header("Fig. 16", "execution time breakdowns");
    const PimSystemConfig sys = PimSystemConfig::upmemServer();

    bench::section("(a) BERT end-to-end breakdown");
    for (const char* preset : {"W1A3", "W2A2"}) {
        bench::note("LoCaLUT (" + std::string(preset) + "):");
        const TransformerRunner runner(sys, QuantConfig::preset(preset),
                                       DesignPoint::LoCaLut);
        const InferenceReport r =
            runner.prefill(TransformerConfig::bertBase(), 32, 128);
        printShares(
            r.timing.seconds,
            {{"GEMM on PIM",
              {phaseName(Phase::IndexCalc), phaseName(Phase::ReorderAccess),
               phaseName(Phase::CanonicalAccess),
               phaseName(Phase::Accumulate), phaseName(Phase::LutLoadDma),
               phaseName(Phase::OperandDma), phaseName(Phase::OutputDma)}},
             {"matrix transfer",
              {phaseName(Phase::LinkActIn), phaseName(Phase::LinkOut)}},
             {"quantization",
              {phaseName(Phase::HostQuantize),
               phaseName(Phase::HostDequant)}},
             {"packing & sorting", {phaseName(Phase::HostPackSort)}},
             {"host ops (attn/norm/GELU)", {phaseName(Phase::HostOther)}}});
    }
    bench::note("PIM-DL: host centroid selection dominates (see "
                "fig15_pq_accuracy and test_baselines for the cost "
                "structure); its PIM GEMM share is smaller than LoCaLUT's.");

    bench::section("(b) LoCaLUT GEMM kernel breakdown, W1A3 "
                   "(M,K,N)=(3072,768,128)");
    const GemmEngine engine(sys);
    const GemmProblem problem =
        makeShapeOnlyProblem(3072, 768, 128, QuantConfig::preset("W1A3"));
    const GemmResult r =
        engine.run(problem, DesignPoint::LoCaLut, /*computeValues=*/false);
    // Kernel-only shares (DPU phases), matching the paper's kernel plot.
    Breakdown kernel;
    for (const auto& [name, val] : r.timing.seconds.items()) {
        if (name.rfind("dpu.", 0) == 0) {
            kernel.add(name, val);
        }
    }
    printShares(kernel,
                {{"reordering LUT index calc", {phaseName(Phase::IndexCalc)}},
                 {"reordering LUT access", {phaseName(Phase::ReorderAccess)}},
                 {"canonical LUT access",
                  {phaseName(Phase::CanonicalAccess)}},
                 {"act/weight transfer",
                  {phaseName(Phase::OperandDma),
                   phaseName(Phase::LutLoadDma)}},
                 {"accumulate", {phaseName(Phase::Accumulate)}}});
    bench::note("Paper reference: index calculation dominates; the "
                "reordering LUT access itself is ~6.9% of kernel time.");
    return 0;
}
