/**
 * @file
 * Serving load: an open-loop Poisson generator drives the SLO-aware
 * RequestScheduler and the FIFO placement baseline across backends x
 * ranks x arrival rates, on a 70/30 interactive/batch GEMM mix with
 * per-lane deadlines.  Reports admission outcomes, deadline goodput,
 * and interactive latency quantiles (all in modeled virtual seconds),
 * verifies every admitted value request bit-exact against a direct
 * submit, and emits BENCH_serving.json (archived by the CI perf-smoke
 * job).
 *
 * Under --smoke it exits non-zero when (a) any admitted interactive
 * request misses its deadline under the SLO policy, or (b) the SLO
 * policy fails to sustain strictly more deadline-met requests than
 * FIFO at the overload rate — the PR's acceptance gate.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.h"

#include "common/logging.h"
#include "common/rng.h"
#include "common/table.h"

using namespace localut;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** Deadline budgets, as multiples of the lane's own service time. */
constexpr double kInteractiveDeadlineX = 4.0;
constexpr double kBatchDeadlineX = 40.0;
constexpr double kInteractiveShare = 0.7;

struct LaneShape {
    std::size_t m, k, n;
};

/** One measured (backend, ranks, rate, mode) point. */
struct RunStats {
    std::string backend;
    unsigned ranks = 0;
    std::string mode;
    double arrivalPerSec = 0;
    double offeredLoad = 0; ///< rate / aggregate capacity
    std::uint64_t offered = 0;
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t met = 0;        ///< admitted requests meeting deadline
    std::uint64_t interMissed = 0;///< interactive deadline misses
    double goodputPerSec = 0;     ///< met / makespan
    double interP50 = 0, interP95 = 0, interP99 = 0;
};

std::vector<RunStats> gRuns;

/** The request stream is deterministic per (seed); both modes replay
 * the identical arrival process. */
struct Arrival {
    double time;
    bool interactive;
    unsigned problemIndex;
};

RunStats
runOne(const std::string& backendName, unsigned ranks,
       SchedulerPolicy policy, double rate, double offeredLoad,
       unsigned requests, const std::vector<GemmProblem>& interPool,
       const std::vector<GemmProblem>& batchPool,
       const std::vector<std::vector<std::int32_t>>& interRef,
       const std::vector<std::vector<std::int32_t>>& batchRef,
       double interService, double batchService,
       const std::vector<Arrival>& arrivals)
{
    SessionOptions sessionOptions;
    sessionOptions.numRanks = ranks;
    InferenceSession session(makeBackend(backendName), sessionOptions);
    SchedulerOptions options;
    options.policy = policy;
    options.maxQueuedPerRank = 16;
    RequestScheduler scheduler(session, options);

    struct Pending {
        AdmissionDecision decision;
        bool interactive;
        unsigned problemIndex;
    };
    std::vector<Pending> submitted;
    submitted.reserve(requests);
    for (unsigned i = 0; i < requests; ++i) {
        const Arrival& arrival = arrivals[i];
        const auto& pool = arrival.interactive ? interPool : batchPool;
        ServingRequest request = ServingRequest::gemm(
            pool[arrival.problemIndex], DesignPoint::LoCaLut,
            arrival.interactive ? DeadlineClass::Interactive
                                : DeadlineClass::Batch,
            arrival.interactive ? kInteractiveDeadlineX * interService
                                : kBatchDeadlineX * batchService);
        request.arrivalSeconds = arrival.time;
        submitted.push_back({scheduler.submit(std::move(request)),
                             arrival.interactive, arrival.problemIndex});
    }

    double makespan = 0;
    std::uint64_t mismatches = 0;
    for (const Pending& pending : submitted) {
        const ServingResult result = scheduler.wait(pending.decision.id);
        if (!result.decision.admitted()) {
            continue;
        }
        makespan = std::max(makespan, result.sample.completionSeconds);
        const auto& ref = pending.interactive
                              ? interRef[pending.problemIndex]
                              : batchRef[pending.problemIndex];
        if (result.gemm.outInt != ref) {
            ++mismatches;
        }
    }
    if (mismatches != 0) {
        LOCALUT_FATAL(mismatches, " admitted request(s) diverged from "
                                  "the direct-submit reference");
    }

    const TelemetrySnapshot snap = scheduler.telemetry().snapshot();
    const auto i = static_cast<std::size_t>(DeadlineClass::Interactive);
    RunStats stats;
    stats.backend = backendName;
    stats.ranks = ranks;
    stats.mode = schedulerPolicyName(policy);
    stats.arrivalPerSec = rate;
    stats.offeredLoad = offeredLoad;
    stats.offered = snap.totalSubmitted();
    stats.admitted = snap.totalAdmitted();
    for (std::size_t lane = 0; lane < kDeadlineClasses; ++lane) {
        stats.shed += snap.shedDeadline[lane];
        stats.rejected += snap.rejectedSaturated[lane];
        stats.met += snap.lanes[lane].deadlineMet;
    }
    stats.interMissed = snap.lanes[i].deadlineMissed;
    stats.goodputPerSec =
        makespan > 0 ? static_cast<double>(stats.met) / makespan : 0;
    stats.interP50 = snap.lanes[i].latency.p50();
    stats.interP95 = snap.lanes[i].latency.p95();
    stats.interP99 = snap.lanes[i].latency.p99();
    return stats;
}

void
writeJson(bool smoke, bool gatePassed)
{
    std::FILE* f = std::fopen("BENCH_serving.json", "w");
    if (f == nullptr) {
        bench::note("could not open BENCH_serving.json for writing");
        return;
    }
    std::fprintf(f, "{\n  \"bench\": \"serving_load\",\n");
    std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(f, "  \"slo_gate_passed\": %s,\n",
                 gatePassed ? "true" : "false");
    std::fprintf(f, "  \"interactive_deadline_x\": %.1f,\n",
                 kInteractiveDeadlineX);
    std::fprintf(f, "  \"runs\": [\n");
    for (std::size_t r = 0; r < gRuns.size(); ++r) {
        const RunStats& s = gRuns[r];
        std::fprintf(
            f,
            "    {\"backend\": \"%s\", \"ranks\": %u, \"mode\": \"%s\", "
            "\"arrival_per_sec\": %.3f, \"offered_load\": %.3f, "
            "\"offered\": %llu, \"admitted\": %llu, \"shed\": %llu, "
            "\"rejected\": %llu, \"deadline_met\": %llu, "
            "\"interactive_deadline_missed\": %llu, "
            "\"goodput_per_sec\": %.3f, \"interactive_p50_s\": %.6e, "
            "\"interactive_p95_s\": %.6e, \"interactive_p99_s\": "
            "%.6e}%s\n",
            s.backend.c_str(), s.ranks, s.mode.c_str(), s.arrivalPerSec,
            s.offeredLoad, static_cast<unsigned long long>(s.offered),
            static_cast<unsigned long long>(s.admitted),
            static_cast<unsigned long long>(s.shed),
            static_cast<unsigned long long>(s.rejected),
            static_cast<unsigned long long>(s.met),
            static_cast<unsigned long long>(s.interMissed),
            s.goodputPerSec, s.interP50, s.interP95, s.interP99,
            r + 1 < gRuns.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    bench::note("wrote BENCH_serving.json");
}

} // namespace

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::header("Serving",
                  "SLO scheduler vs FIFO under open-loop Poisson load");

    const bool smoke = bench::smoke();
    const unsigned requests = bench::smokeTrim(240u, 60u);
    const std::vector<std::string> backends =
        bench::smokeTrim<std::vector<std::string>>({"upmem", "host-cpu"},
                                                   {"upmem"});
    const std::vector<unsigned> rankCounts =
        bench::smokeTrim<std::vector<unsigned>>({1, 4}, {2});
    const std::vector<double> loadFactors = bench::smokeTrim<
        std::vector<double>>({0.5, 0.9, 1.5, 3.0}, {0.6, 2.5});

    // Lane shapes: decode-style skinny GEMMs interactively, prefill-ish
    // fat-N GEMMs in the batch lane; a small problem pool keeps plans,
    // prepared operands, and references shared across the sweep.
    const LaneShape interShape = {768, 768, 8};
    const LaneShape batchShape = {768, 768, 64};
    const QuantConfig quant = QuantConfig::preset("W4A4");
    constexpr unsigned kPoolSize = 4;

    std::vector<GemmProblem> interPool, batchPool;
    std::vector<std::vector<std::int32_t>> interRef, batchRef;
    for (unsigned p = 0; p < kPoolSize; ++p) {
        interPool.push_back(makeRandomProblem(
            interShape.m, interShape.k, interShape.n, quant, 50 + p));
        batchPool.push_back(makeRandomProblem(
            batchShape.m, batchShape.k, batchShape.n, quant, 70 + p));
        // The direct-submit reference for the bit-exactness criterion:
        // every backend's execute() must reproduce it, so it doubles as
        // the cross-backend reference here.
        interRef.push_back(
            referenceGemmInt(interPool.back().w, interPool.back().a));
        batchRef.push_back(
            referenceGemmInt(batchPool.back().w, batchPool.back().a));
    }

    bench::note("mix: " +
                std::to_string(static_cast<int>(100 * kInteractiveShare)) +
                "% interactive (deadline " +
                std::to_string(static_cast<int>(kInteractiveDeadlineX)) +
                "x service, " + std::to_string(interShape.m) + "x" +
                std::to_string(interShape.k) + "x" +
                std::to_string(interShape.n) + "), rest batch (deadline " +
                std::to_string(static_cast<int>(kBatchDeadlineX)) +
                "x service, n=" + std::to_string(batchShape.n) + "); " +
                std::to_string(requests) + " requests per point");

    bool gatePassed = true;
    for (const std::string& backendName : backends) {
        // Per-lane steady service on this backend (modeled seconds).
        const BackendPtr backend = makeBackend(backendName);
        const double interService =
            backend
                ->execute(interPool[0],
                          backend->plan(interPool[0],
                                        DesignPoint::LoCaLut),
                          /*computeValues=*/false)
                .timing.total;
        const double batchService =
            backend
                ->execute(batchPool[0],
                          backend->plan(batchPool[0],
                                        DesignPoint::LoCaLut),
                          /*computeValues=*/false)
                .timing.total;
        const double meanService = kInteractiveShare * interService +
                                   (1 - kInteractiveShare) * batchService;

        for (const unsigned ranks : rankCounts) {
            const double capacity = ranks / meanService;
            bench::section(backendName + ", " + std::to_string(ranks) +
                           " rank(s): capacity ~" +
                           Table::fmt(capacity, 1) + " req/s (svc " +
                           bench::fmtSeconds(interService) + " / " +
                           bench::fmtSeconds(batchService) + ")");
            Table table({"load", "mode", "admit", "shed", "reject",
                         "met", "goodput/s", "p99 int", "int miss"});
            for (const double load : loadFactors) {
                const double rate = load * capacity;
                // One arrival trace per (point), replayed identically
                // under both policies.
                Rng rng(0x10ca107ull ^
                        (static_cast<std::uint64_t>(ranks) *
                         1315423911ull) ^
                        static_cast<std::uint64_t>(load * 1e3));
                std::vector<Arrival> arrivals;
                double t = 0;
                for (unsigned i = 0; i < requests; ++i) {
                    t += -std::log(1.0 - rng.nextDouble()) / rate;
                    arrivals.push_back(
                        {t, rng.nextDouble() < kInteractiveShare,
                         static_cast<unsigned>(
                             rng.nextBounded(kPoolSize))});
                }
                RunStats slo, fifo;
                for (const SchedulerPolicy policy :
                     {SchedulerPolicy::Slo, SchedulerPolicy::Fifo}) {
                    RunStats stats = runOne(
                        backendName, ranks, policy, rate, load, requests,
                        interPool, batchPool, interRef, batchRef,
                        interService, batchService, arrivals);
                    (policy == SchedulerPolicy::Slo ? slo : fifo) =
                        stats;
                    gRuns.push_back(stats);
                    table.addRow(
                        {Table::fmt(load, 2) + "x", stats.mode,
                         std::to_string(stats.admitted),
                         std::to_string(stats.shed),
                         std::to_string(stats.rejected),
                         std::to_string(stats.met),
                         Table::fmt(stats.goodputPerSec, 1),
                         bench::fmtSeconds(stats.interP99),
                         std::to_string(stats.interMissed)});
                }
                // The acceptance gate: the SLO policy never misses an
                // admitted interactive deadline, and past saturation it
                // sustains strictly more deadline-met requests than
                // FIFO placement.
                if (slo.interMissed != 0) {
                    gatePassed = false;
                    bench::note("GATE: slo admitted an interactive "
                                "request past its deadline at load " +
                                Table::fmt(load, 2) + "x");
                }
                if (load > 1.0 && slo.met <= fifo.met) {
                    gatePassed = false;
                    bench::note("GATE: slo goodput did not beat fifo at "
                                "overload " + Table::fmt(load, 2) + "x");
                }
            }
            table.print();
        }
    }
    bench::note("expected shape: below capacity both modes admit nearly "
                "everything; past it FIFO queues blow the interactive "
                "p99 while the SLO policy sheds early and keeps every "
                "admitted deadline.");

    writeJson(smoke, gatePassed);
    if (smoke && !gatePassed) {
        bench::note("FAIL: SLO scheduler gate (see GATE notes above)");
        return 1;
    }
    return 0;
}
