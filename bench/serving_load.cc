/**
 * @file
 * Serving load: an open-loop Poisson generator drives the SLO-aware
 * RequestScheduler and the FIFO placement baseline across backends x
 * ranks x arrival rates, on a 70/30 interactive/batch GEMM mix with
 * per-lane deadlines.  Reports admission outcomes, deadline goodput,
 * and interactive latency quantiles (all in modeled virtual seconds),
 * verifies every admitted value request bit-exact against a direct
 * submit, and emits BENCH_serving.json (archived by the CI perf-smoke
 * job).
 *
 * Under --smoke it exits non-zero when (a) any admitted interactive
 * request misses its deadline under the SLO policy, or (b) the SLO
 * policy fails to sustain strictly more deadline-met requests than
 * FIFO at the overload rate — the PR's acceptance gate.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "bench_util.h"

#include "common/logging.h"
#include "common/rng.h"
#include "common/table.h"
#include "serving/token_engine.h"

using namespace localut;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/** Deadline budgets, as multiples of the lane's own service time. */
constexpr double kInteractiveDeadlineX = 4.0;
constexpr double kBatchDeadlineX = 40.0;
constexpr double kInteractiveShare = 0.7;

struct LaneShape {
    std::size_t m, k, n;
};

/** One measured (backend, ranks, rate, mode) point. */
struct RunStats {
    std::string backend;
    unsigned ranks = 0;
    std::string mode;
    double arrivalPerSec = 0;
    double offeredLoad = 0; ///< rate / aggregate capacity
    std::uint64_t offered = 0;
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;
    std::uint64_t rejected = 0;
    std::uint64_t met = 0;        ///< admitted requests meeting deadline
    std::uint64_t interMissed = 0;///< interactive deadline misses
    double goodputPerSec = 0;     ///< met / makespan
    double interP50 = 0, interP95 = 0, interP99 = 0;
};

std::vector<RunStats> gRuns;

/** The request stream is deterministic per (seed); both modes replay
 * the identical arrival process. */
struct Arrival {
    double time;
    bool interactive;
    unsigned problemIndex;
};

// ------------------------------------------------- conversation trace

/** Per-token deadline budgets for the conversation trace, as multiples
 * of the modeled full-tier decode-step / prefill service times.  Wide
 * enough that a continuously batched rank meets the schedule, tight
 * enough that a serial per-request server cannot once conversations
 * overlap. */
constexpr double kConvTokenDeadlineX = 3.0;
constexpr double kConvTtftStepSlack = 2.0;

struct ConvArrival {
    double time;
    unsigned promptLen;
    unsigned decodeLen;
};

/** One measured conversation-trace (mode, load) point. */
struct ConvStats {
    std::string backend;
    unsigned ranks = 0;
    std::string mode; ///< "continuous" or "serial"
    double offeredLoad = 0;
    std::uint64_t streams = 0;
    std::uint64_t completed = 0;
    std::uint64_t shedDeadline = 0;
    std::uint64_t shedCapacity = 0;
    std::uint64_t tokens = 0;    ///< decode tokens offered by the trace
    std::uint64_t tokensMet = 0; ///< emitted within their deadline
    double ttftP50 = 0, ttftP95 = 0, ttftP99 = 0;
    double tokenP50 = 0, tokenP95 = 0, tokenP99 = 0; ///< inter-token gap
};

std::vector<ConvStats> gConvRuns;

ConvStats
runConversation(const std::string& backendName, unsigned ranks,
                double offeredLoad, bool continuous,
                const std::vector<ConvArrival>& arrivals, double ttft,
                double tokenDeadline)
{
    SessionOptions sessionOptions;
    sessionOptions.numRanks = ranks;
    sessionOptions.residencyPolicy = ResidencyPolicy::CostAware;
    InferenceSession session(makeBackend(backendName), sessionOptions);

    TokenEngineOptions options;
    options.quant = QuantConfig::preset("W4A4");
    options.continuousBatching = continuous;
    options.policy =
        continuous ? SchedulerPolicy::Slo : SchedulerPolicy::Fifo;
    Telemetry telemetry;
    TokenEngine engine(session, options, &telemetry);
    for (const ConvArrival& arrival : arrivals) {
        TokenRequest request;
        request.promptLen = arrival.promptLen;
        request.decodeSteps = arrival.decodeLen;
        request.arrivalSeconds = arrival.time;
        request.ttftDeadlineSeconds = ttft; // arrival-relative
        request.tokenDeadlineSeconds = tokenDeadline;
        engine.submit(request);
    }

    ConvStats stats;
    stats.backend = backendName;
    stats.ranks = ranks;
    stats.mode = continuous ? "continuous" : "serial";
    stats.offeredLoad = offeredLoad;
    for (const StreamResult& result : engine.run()) {
        ++stats.streams;
        stats.completed += result.status == StreamStatus::Completed;
        stats.shedDeadline += result.status == StreamStatus::ShedDeadline;
        stats.shedCapacity += result.status == StreamStatus::ShedCapacity;
        stats.tokensMet += result.tokensMet;
    }
    for (const ConvArrival& arrival : arrivals) {
        stats.tokens += arrival.decodeLen;
    }
    const TelemetrySnapshot snap = telemetry.snapshot();
    const auto& prefill =
        snap.lanes[static_cast<std::size_t>(DeadlineClass::Prefill)];
    const auto& decode =
        snap.lanes[static_cast<std::size_t>(DeadlineClass::Decode)];
    stats.ttftP50 = prefill.ttft.p50();
    stats.ttftP95 = prefill.ttft.p95();
    stats.ttftP99 = prefill.ttft.p99();
    stats.tokenP50 = decode.interToken.p50();
    stats.tokenP95 = decode.interToken.p95();
    stats.tokenP99 = decode.interToken.p99();
    return stats;
}

RunStats
runOne(const std::string& backendName, unsigned ranks,
       SchedulerPolicy policy, double rate, double offeredLoad,
       unsigned requests, const std::vector<GemmProblem>& interPool,
       const std::vector<GemmProblem>& batchPool,
       const std::vector<std::vector<std::int32_t>>& interRef,
       const std::vector<std::vector<std::int32_t>>& batchRef,
       double interService, double batchService,
       const std::vector<Arrival>& arrivals)
{
    SessionOptions sessionOptions;
    sessionOptions.numRanks = ranks;
    InferenceSession session(makeBackend(backendName), sessionOptions);
    SchedulerOptions options;
    options.policy = policy;
    options.maxQueuedPerRank = 16;
    RequestScheduler scheduler(session, options);

    struct Pending {
        AdmissionDecision decision;
        bool interactive;
        unsigned problemIndex;
    };
    std::vector<Pending> submitted;
    submitted.reserve(requests);
    for (unsigned i = 0; i < requests; ++i) {
        const Arrival& arrival = arrivals[i];
        const auto& pool = arrival.interactive ? interPool : batchPool;
        ServingRequest request = ServingRequest::gemm(
            pool[arrival.problemIndex], DesignPoint::LoCaLut,
            arrival.interactive ? DeadlineClass::Interactive
                                : DeadlineClass::Batch,
            arrival.interactive ? kInteractiveDeadlineX * interService
                                : kBatchDeadlineX * batchService);
        request.arrivalSeconds = arrival.time;
        submitted.push_back({scheduler.submit(std::move(request)),
                             arrival.interactive, arrival.problemIndex});
    }

    double makespan = 0;
    std::uint64_t mismatches = 0;
    for (const Pending& pending : submitted) {
        const ServingResult result = scheduler.wait(pending.decision.id);
        if (!result.decision.admitted()) {
            continue;
        }
        makespan = std::max(makespan, result.sample.completionSeconds);
        const auto& ref = pending.interactive
                              ? interRef[pending.problemIndex]
                              : batchRef[pending.problemIndex];
        if (result.gemm.outInt != ref) {
            ++mismatches;
        }
    }
    if (mismatches != 0) {
        LOCALUT_FATAL(mismatches, " admitted request(s) diverged from "
                                  "the direct-submit reference");
    }

    const TelemetrySnapshot snap = scheduler.telemetry().snapshot();
    const auto i = static_cast<std::size_t>(DeadlineClass::Interactive);
    RunStats stats;
    stats.backend = backendName;
    stats.ranks = ranks;
    stats.mode = schedulerPolicyName(policy);
    stats.arrivalPerSec = rate;
    stats.offeredLoad = offeredLoad;
    stats.offered = snap.totalSubmitted();
    stats.admitted = snap.totalAdmitted();
    for (std::size_t lane = 0; lane < kDeadlineClasses; ++lane) {
        stats.shed += snap.shedDeadline[lane];
        stats.rejected += snap.rejectedSaturated[lane];
        stats.met += snap.lanes[lane].deadlineMet;
    }
    stats.interMissed = snap.lanes[i].deadlineMissed;
    stats.goodputPerSec =
        makespan > 0 ? static_cast<double>(stats.met) / makespan : 0;
    stats.interP50 = snap.lanes[i].latency.p50();
    stats.interP95 = snap.lanes[i].latency.p95();
    stats.interP99 = snap.lanes[i].latency.p99();
    return stats;
}

void
writeConvRuns(std::FILE* f)
{
    std::fprintf(f, "  \"conversation_runs\": [\n");
    for (std::size_t r = 0; r < gConvRuns.size(); ++r) {
        const ConvStats& s = gConvRuns[r];
        std::fprintf(
            f,
            "    {\"backend\": \"%s\", \"ranks\": %u, \"mode\": \"%s\", "
            "\"offered_load\": %.3f, \"streams\": %llu, "
            "\"completed\": %llu, \"shed_deadline\": %llu, "
            "\"shed_capacity\": %llu, \"tokens\": %llu, "
            "\"tokens_met\": %llu, \"ttft_p50_s\": %.6e, "
            "\"ttft_p95_s\": %.6e, \"ttft_p99_s\": %.6e, "
            "\"token_p50_s\": %.6e, \"token_p95_s\": %.6e, "
            "\"token_p99_s\": %.6e}%s\n",
            s.backend.c_str(), s.ranks, s.mode.c_str(), s.offeredLoad,
            static_cast<unsigned long long>(s.streams),
            static_cast<unsigned long long>(s.completed),
            static_cast<unsigned long long>(s.shedDeadline),
            static_cast<unsigned long long>(s.shedCapacity),
            static_cast<unsigned long long>(s.tokens),
            static_cast<unsigned long long>(s.tokensMet), s.ttftP50,
            s.ttftP95, s.ttftP99, s.tokenP50, s.tokenP95, s.tokenP99,
            r + 1 < gConvRuns.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
}

void
writeJson(bool smoke, bool gatePassed)
{
    std::FILE* f = std::fopen("BENCH_serving.json", "w");
    if (f == nullptr) {
        bench::note("could not open BENCH_serving.json for writing");
        return;
    }
    std::fprintf(f, "{\n  \"bench\": \"serving_load\",\n");
    std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(f, "  \"slo_gate_passed\": %s,\n",
                 gatePassed ? "true" : "false");
    std::fprintf(f, "  \"interactive_deadline_x\": %.1f,\n",
                 kInteractiveDeadlineX);
    writeConvRuns(f);
    std::fprintf(f, "  \"runs\": [\n");
    for (std::size_t r = 0; r < gRuns.size(); ++r) {
        const RunStats& s = gRuns[r];
        std::fprintf(
            f,
            "    {\"backend\": \"%s\", \"ranks\": %u, \"mode\": \"%s\", "
            "\"arrival_per_sec\": %.3f, \"offered_load\": %.3f, "
            "\"offered\": %llu, \"admitted\": %llu, \"shed\": %llu, "
            "\"rejected\": %llu, \"deadline_met\": %llu, "
            "\"interactive_deadline_missed\": %llu, "
            "\"goodput_per_sec\": %.3f, \"interactive_p50_s\": %.6e, "
            "\"interactive_p95_s\": %.6e, \"interactive_p99_s\": "
            "%.6e}%s\n",
            s.backend.c_str(), s.ranks, s.mode.c_str(), s.arrivalPerSec,
            s.offeredLoad, static_cast<unsigned long long>(s.offered),
            static_cast<unsigned long long>(s.admitted),
            static_cast<unsigned long long>(s.shed),
            static_cast<unsigned long long>(s.rejected),
            static_cast<unsigned long long>(s.met),
            static_cast<unsigned long long>(s.interMissed),
            s.goodputPerSec, s.interP50, s.interP95, s.interP99,
            r + 1 < gRuns.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    bench::note("wrote BENCH_serving.json");
}

} // namespace

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::header("Serving",
                  "SLO scheduler vs FIFO under open-loop Poisson load");

    const bool smoke = bench::smoke();
    const unsigned requests = bench::smokeTrim(240u, 60u);
    const std::vector<std::string> backends =
        bench::smokeTrim<std::vector<std::string>>({"upmem", "host-cpu"},
                                                   {"upmem"});
    const std::vector<unsigned> rankCounts =
        bench::smokeTrim<std::vector<unsigned>>({1, 4}, {2});
    const std::vector<double> loadFactors = bench::smokeTrim<
        std::vector<double>>({0.5, 0.9, 1.5, 3.0}, {0.6, 2.5});

    // Lane shapes: decode-style skinny GEMMs interactively, prefill-ish
    // fat-N GEMMs in the batch lane; a small problem pool keeps plans,
    // prepared operands, and references shared across the sweep.
    const LaneShape interShape = {768, 768, 8};
    const LaneShape batchShape = {768, 768, 64};
    const QuantConfig quant = QuantConfig::preset("W4A4");
    constexpr unsigned kPoolSize = 4;

    std::vector<GemmProblem> interPool, batchPool;
    std::vector<std::vector<std::int32_t>> interRef, batchRef;
    for (unsigned p = 0; p < kPoolSize; ++p) {
        interPool.push_back(makeRandomProblem(
            interShape.m, interShape.k, interShape.n, quant, 50 + p));
        batchPool.push_back(makeRandomProblem(
            batchShape.m, batchShape.k, batchShape.n, quant, 70 + p));
        // The direct-submit reference for the bit-exactness criterion:
        // every backend's execute() must reproduce it, so it doubles as
        // the cross-backend reference here.
        interRef.push_back(
            referenceGemmInt(interPool.back().w, interPool.back().a));
        batchRef.push_back(
            referenceGemmInt(batchPool.back().w, batchPool.back().a));
    }

    bench::note("mix: " +
                std::to_string(static_cast<int>(100 * kInteractiveShare)) +
                "% interactive (deadline " +
                std::to_string(static_cast<int>(kInteractiveDeadlineX)) +
                "x service, " + std::to_string(interShape.m) + "x" +
                std::to_string(interShape.k) + "x" +
                std::to_string(interShape.n) + "), rest batch (deadline " +
                std::to_string(static_cast<int>(kBatchDeadlineX)) +
                "x service, n=" + std::to_string(batchShape.n) + "); " +
                std::to_string(requests) + " requests per point");

    bool gatePassed = true;
    for (const std::string& backendName : backends) {
        // Per-lane steady service on this backend (modeled seconds).
        const BackendPtr backend = makeBackend(backendName);
        const double interService =
            backend
                ->execute(interPool[0],
                          backend->plan(interPool[0],
                                        DesignPoint::LoCaLut),
                          /*computeValues=*/false)
                .timing.total;
        const double batchService =
            backend
                ->execute(batchPool[0],
                          backend->plan(batchPool[0],
                                        DesignPoint::LoCaLut),
                          /*computeValues=*/false)
                .timing.total;
        const double meanService = kInteractiveShare * interService +
                                   (1 - kInteractiveShare) * batchService;

        for (const unsigned ranks : rankCounts) {
            const double capacity = ranks / meanService;
            bench::section(backendName + ", " + std::to_string(ranks) +
                           " rank(s): capacity ~" +
                           Table::fmt(capacity, 1) + " req/s (svc " +
                           bench::fmtSeconds(interService) + " / " +
                           bench::fmtSeconds(batchService) + ")");
            Table table({"load", "mode", "admit", "shed", "reject",
                         "met", "goodput/s", "p99 int", "int miss"});
            for (const double load : loadFactors) {
                const double rate = load * capacity;
                // One arrival trace per (point), replayed identically
                // under both policies.
                Rng rng(0x10ca107ull ^
                        (static_cast<std::uint64_t>(ranks) *
                         1315423911ull) ^
                        static_cast<std::uint64_t>(load * 1e3));
                std::vector<Arrival> arrivals;
                double t = 0;
                for (unsigned i = 0; i < requests; ++i) {
                    t += -std::log(1.0 - rng.nextDouble()) / rate;
                    arrivals.push_back(
                        {t, rng.nextDouble() < kInteractiveShare,
                         static_cast<unsigned>(
                             rng.nextBounded(kPoolSize))});
                }
                RunStats slo, fifo;
                for (const SchedulerPolicy policy :
                     {SchedulerPolicy::Slo, SchedulerPolicy::Fifo}) {
                    RunStats stats = runOne(
                        backendName, ranks, policy, rate, load, requests,
                        interPool, batchPool, interRef, batchRef,
                        interService, batchService, arrivals);
                    (policy == SchedulerPolicy::Slo ? slo : fifo) =
                        stats;
                    gRuns.push_back(stats);
                    table.addRow(
                        {Table::fmt(load, 2) + "x", stats.mode,
                         std::to_string(stats.admitted),
                         std::to_string(stats.shed),
                         std::to_string(stats.rejected),
                         std::to_string(stats.met),
                         Table::fmt(stats.goodputPerSec, 1),
                         bench::fmtSeconds(stats.interP99),
                         std::to_string(stats.interMissed)});
                }
                // The acceptance gate: the SLO policy never misses an
                // admitted interactive deadline, and past saturation it
                // sustains strictly more deadline-met requests than
                // FIFO placement.
                if (slo.interMissed != 0) {
                    gatePassed = false;
                    bench::note("GATE: slo admitted an interactive "
                                "request past its deadline at load " +
                                Table::fmt(load, 2) + "x");
                }
                if (load > 1.0 && slo.met <= fifo.met) {
                    gatePassed = false;
                    bench::note("GATE: slo goodput did not beat fifo at "
                                "overload " + Table::fmt(load, 2) + "x");
                }
            }
            table.print();
        }
    }
    bench::note("expected shape: below capacity both modes admit nearly "
                "everything; past it FIFO queues blow the interactive "
                "p99 while the SLO policy sheds early and keeps every "
                "admitted deadline.");

    // ---------------------------------------------- conversation trace
    // Token-level serving: a Poisson stream of {prompt_len, decode_len}
    // conversations drives the TokenEngine twice over the identical
    // trace — continuous batching + SLO lanes vs serial per-request
    // decode + FIFO (the no-batching baseline).  Deadlines are absolute
    // per-token schedules calibrated from the modeled full-tier decode
    // step, so a backlogged serial server cannot recover; the gate is
    // that continuous batching wins deadline-met token goodput at every
    // >= 2x overload point.
    const unsigned conversations = bench::smokeTrim(32u, 12u);
    const std::vector<double> convLoads = bench::smokeTrim<
        std::vector<double>>({0.5, 1.0, 2.0, 3.0}, {2.5});
    const std::vector<std::string> convBackends =
        bench::smokeTrim<std::vector<std::string>>({"upmem", "host-cpu"},
                                                   {"upmem"});
    constexpr unsigned kPromptLens[] = {8, 16, 32};
    constexpr unsigned kDecodeLens[] = {4, 8, 16};

    for (const std::string& backendName : convBackends) {
        SessionOptions probeOptions;
        probeOptions.residencyPolicy = ResidencyPolicy::CostAware;
        InferenceSession probe(makeBackend(backendName), probeOptions);
        TokenEngineOptions engineDefaults;
        const TransformerConfig model = engineDefaults.model;
        const QuantConfig convQuant = QuantConfig::preset("W4A4");
        const auto project = [&](const WorkloadSpec& spec) {
            return probe
                .projectCost(probe.compileUnsharded(spec, convQuant,
                                                    DesignPoint::LoCaLut))
                .totalSeconds();
        };
        const unsigned maxPrompt = kPromptLens[2];
        const unsigned maxCtx = maxPrompt + kDecodeLens[2];
        const unsigned tier = engineDefaults.maxStreamsPerRank;
        const double prefillMax =
            project(WorkloadSpec::prefill(model, 1, maxPrompt));
        const double stepFull =
            project(WorkloadSpec::decodeStep(model, tier, maxCtx));
        const double stepOne =
            project(WorkloadSpec::decodeStep(model, 1, maxCtx));
        const std::uint64_t tokenBytes =
            static_cast<std::uint64_t>(model.layers) *
            model.kvBytesPerTokenPerLayer(engineDefaults.kvBitsPerValue);
        const double kvToken =
            probe.residency()->broadcastSeconds(tokenBytes);
        const double kvPrompt =
            probe.residency()->broadcastSeconds(tokenBytes * maxPrompt);
        const double ttft =
            tier * (prefillMax + kvPrompt) +
            kConvTtftStepSlack * (stepFull + tier * kvToken);
        const double tokenDeadline =
            kConvTokenDeadlineX * stepFull + 2.0 * tier * kvToken;
        // A serial server's mean per-conversation service, for sizing
        // the offered load.
        const double meanDecodeLen =
            (kDecodeLens[0] + kDecodeLens[1] + kDecodeLens[2]) / 3.0;
        const double serialService =
            prefillMax + kvPrompt + meanDecodeLen * (stepOne + kvToken);

        // Continuous batching only wins where the backend amortizes a
        // batched step (PIM: one table broadcast serves the whole
        // tier).  On a backend whose decode cost is linear in batch
        // (host-cpu), serial service is already optimal — the trace is
        // still reported, but the win gate binds only where the modeled
        // batch economy exists.
        const double batchEconomy = stepFull / (tier * stepOne);
        const bool gated = batchEconomy < 0.75;
        bench::section(backendName +
                       " conversations: continuous batching vs serial "
                       "decode (svc ~" + bench::fmtSeconds(serialService) +
                       "/conv, token deadline " +
                       bench::fmtSeconds(tokenDeadline) +
                       ", batch economy " + Table::fmt(batchEconomy, 2) +
                       (gated ? ")" : ", gate informational)"));
        Table table({"load", "mode", "done", "shed", "tok met",
                     "tok total", "ttft p95", "token p95"});
        for (const double load : convLoads) {
            const double rate = load / serialService;
            Rng rng(0xdec0de5ull ^
                    static_cast<std::uint64_t>(load * 1e3));
            std::vector<ConvArrival> trace;
            double t = 0;
            for (unsigned i = 0; i < conversations; ++i) {
                t += -std::log(1.0 - rng.nextDouble()) / rate;
                trace.push_back({t, kPromptLens[rng.nextBounded(3)],
                                 kDecodeLens[rng.nextBounded(3)]});
            }
            ConvStats continuous, serial;
            for (const bool batched : {true, false}) {
                ConvStats stats =
                    runConversation(backendName, /*ranks=*/1, load,
                                    batched, trace, ttft, tokenDeadline);
                (batched ? continuous : serial) = stats;
                gConvRuns.push_back(stats);
                table.addRow(
                    {Table::fmt(load, 2) + "x", stats.mode,
                     std::to_string(stats.completed),
                     std::to_string(stats.shedDeadline +
                                    stats.shedCapacity),
                     std::to_string(stats.tokensMet),
                     std::to_string(stats.tokens),
                     bench::fmtSeconds(stats.ttftP95),
                     bench::fmtSeconds(stats.tokenP95)});
            }
            if (gated && load >= 2.0 &&
                continuous.tokensMet <= serial.tokensMet) {
                gatePassed = false;
                bench::note("GATE: continuous batching did not beat "
                            "serial decode on deadline-met tokens at " +
                            Table::fmt(load, 2) + "x overload (" +
                            std::to_string(continuous.tokensMet) +
                            " vs " + std::to_string(serial.tokensMet) +
                            ")");
            }
        }
        table.print();
    }
    bench::note("expected shape: at low load the modes tie; past 2x a "
                "serial server falls behind the absolute token schedule "
                "while re-batching every step keeps emitted tokens on "
                "deadline.");

    writeJson(smoke, gatePassed);
    if (smoke && !gatePassed) {
        bench::note("FAIL: SLO scheduler gate (see GATE notes above)");
        return 1;
    }
    return 0;
}
