/**
 * @file
 * Functional execution throughput: prepared-operand engine vs ad-hoc
 * (unprepared) execution vs the frozen pre-engine kernels, on the
 * fig09-class GEMM and an OPT-125M decode step, across 1/2/4/8 tile
 * threads.  Emits BENCH_exec.json (the perf trajectory artifact the CI
 * perf-smoke job archives) and, under --smoke, exits non-zero when
 * prepared execution fails to keep up with unprepared execution.
 *
 * The "legacy" baseline is a frozen copy of the PR-3 canonical
 * executor (per-call table construction, per-element LUT-object
 * lookups, per-group allocating canonicalization).  It is kept here —
 * not in the library — precisely so the engine's speedup stays
 * measurable after the library kernels were rewritten.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"

#include "common/bitops.h"
#include "common/logging.h"
#include "common/table.h"

using namespace localut;

namespace legacy {

/** Frozen PR-3 packWeights: row-major packed weight vectors. */
std::vector<std::uint64_t>
packWeights(const QuantizedMatrix& w, unsigned p, unsigned groups)
{
    const unsigned bw = w.codec.bits();
    std::vector<std::uint64_t> packed(w.rows * groups);
    std::vector<std::uint16_t> codes(p);
    for (std::size_t m = 0; m < w.rows; ++m) {
        for (unsigned g = 0; g < groups; ++g) {
            for (unsigned i = 0; i < p; ++i) {
                const std::size_t kk = static_cast<std::size_t>(g) * p + i;
                codes[i] = kk < w.cols ? w.at(m, kk) : std::uint16_t{0};
            }
            packed[m * groups + g] = packCodes(codes, bw);
        }
    }
    return packed;
}

struct CanonicalPrep {
    std::vector<std::uint64_t> msRank;
    std::vector<std::uint32_t> permRank;
};

/** Frozen PR-3 per-call canonicalization (allocating, per group). */
CanonicalPrep
prepare(const QuantizedMatrix& a, unsigned p, unsigned groups)
{
    const std::size_t n = a.cols;
    const LutShape probe(ValueCodec::signedBinary(), a.codec, p);
    const ActivationCanonicalizer canon(probe);
    CanonicalPrep prep;
    prep.msRank.resize(groups * n);
    prep.permRank.resize(groups * n);
    std::vector<std::uint16_t> codes(p);
    for (unsigned g = 0; g < groups; ++g) {
        for (std::size_t nn = 0; nn < n; ++nn) {
            for (unsigned i = 0; i < p; ++i) {
                const std::size_t kk = static_cast<std::size_t>(g) * p + i;
                codes[i] = kk < a.rows ? a.at(kk, nn) : std::uint16_t{0};
            }
            const CanonicalGroup cg = canon.canonicalize(codes);
            prep.msRank[g * n + nn] = cg.multisetRank;
            prep.permRank[g * n + nn] = cg.permRank;
        }
    }
    return prep;
}

/** Frozen PR-3 canonical executor (ReorderLut and SliceStream modes),
 * including per-call LUT construction. */
std::vector<std::int32_t>
canonicalInt(const GemmProblem& problem, unsigned p, bool sliceStream,
             unsigned kSlices)
{
    const QuantizedMatrix& w = problem.w;
    const QuantizedMatrix& a = problem.a;
    const std::size_t m = w.rows, k = w.cols, n = a.cols;
    const unsigned groups = static_cast<unsigned>(ceilDiv(k, std::size_t{p}));
    const LutShape shape(problem.config(), p);
    const CanonicalLut canon(shape);
    const ReorderingLut reorderLut(shape);

    const std::vector<std::uint64_t> wIdx = packWeights(w, p, groups);
    const CanonicalPrep prep = prepare(a, p, groups);

    std::vector<std::int32_t> out(m * n, 0);
    if (!sliceStream) {
        for (std::size_t mm = 0; mm < m; ++mm) {
            for (std::size_t nn = 0; nn < n; ++nn) {
                std::int32_t acc = 0;
                for (unsigned g = 0; g < groups; ++g) {
                    const std::size_t at = g * n + nn;
                    const std::uint64_t wi = wIdx[mm * groups + g];
                    const std::uint64_t reordered =
                        reorderLut.lookup(prep.permRank[at], wi);
                    acc += canon.lookupInt(prep.msRank[at], reordered);
                }
                out[mm * n + nn] = acc;
            }
        }
        return out;
    }

    const std::uint64_t rows = shape.weightRows();
    std::vector<std::int32_t> canonSlices;
    std::vector<std::uint32_t> reorderSlices;
    for (std::size_t nn = 0; nn < n; ++nn) {
        for (unsigned g0 = 0; g0 < groups; g0 += kSlices) {
            const unsigned batch = std::min(kSlices, groups - g0);
            canonSlices.assign(static_cast<std::size_t>(batch) * rows, 0);
            reorderSlices.assign(static_cast<std::size_t>(batch) * rows, 0);
            for (unsigned b = 0; b < batch; ++b) {
                const std::size_t at =
                    static_cast<std::size_t>(g0 + b) * n + nn;
                const auto col = canon.columnInt(prep.msRank[at]);
                std::copy(col.begin(), col.end(),
                          canonSlices.begin() +
                              static_cast<std::ptrdiff_t>(b * rows));
                for (std::uint64_t r = 0; r < rows; ++r) {
                    reorderSlices[b * rows + r] =
                        reorderLut.lookup(prep.permRank[at], r);
                }
            }
            for (std::size_t mm = 0; mm < m; ++mm) {
                std::int32_t acc = 0;
                for (unsigned b = 0; b < batch; ++b) {
                    const std::uint64_t wi = wIdx[mm * groups + (g0 + b)];
                    const std::uint32_t reordered =
                        reorderSlices[b * rows + wi];
                    acc += canonSlices[b * rows + reordered];
                }
                out[mm * n + nn] += acc;
            }
        }
    }
    return out;
}

} // namespace legacy

namespace {

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Median wall-clock seconds per call of @p fn. */
template <typename Fn>
double
secondsPerCall(const Fn& fn, double minSeconds, unsigned maxReps)
{
    std::vector<double> reps;
    double elapsed = 0;
    while ((elapsed < minSeconds && reps.size() < maxReps) || reps.empty()) {
        const double t0 = now();
        fn();
        const double dt = now() - t0;
        reps.push_back(dt);
        elapsed += dt;
    }
    std::sort(reps.begin(), reps.end());
    return reps[reps.size() / 2];
}

struct CaseResult {
    std::string label;
    std::string mode;
    unsigned threads = 1;
    /** Hands that could actually run tiles concurrently: the requested
     * thread count clamped by the machine.  A TilePool(8) reports 8
     * workers even on a 2-core box; scaling expectations (and the CI
     * gate) key off this, not off `threads`. */
    unsigned effectiveConcurrency = 1;
    double seconds = 0;

    double gemmPerSec() const { return seconds > 0 ? 1.0 / seconds : 0; }
};

std::vector<CaseResult> gResults;

unsigned
hardwareConcurrency()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

void
record(const std::string& label, const std::string& mode, unsigned threads,
       double seconds)
{
    gResults.push_back({label, mode, threads,
                        std::min(threads, hardwareConcurrency()), seconds});
}

const CaseResult*
find(const std::string& label, const std::string& mode, unsigned threads)
{
    for (const CaseResult& r : gResults) {
        if (r.label == label && r.mode == mode && r.threads == threads) {
            return &r;
        }
    }
    return nullptr;
}

void
writeJson(bool smoke, double vsLegacy, double vsUnprepared,
          double simdVsScalar, double scale8t, double decodePrepared,
          double decodeUnprepared)
{
    std::FILE* f = std::fopen("BENCH_exec.json", "w");
    if (f == nullptr) {
        bench::note("could not open BENCH_exec.json for writing");
        return;
    }
    std::fprintf(f, "{\n  \"bench\": \"exec_throughput\",\n");
    std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(f, "  \"hardware_concurrency\": %u,\n",
                 hardwareConcurrency());
    std::fprintf(f, "  \"prepared_vs_legacy_1t\": %.3f,\n", vsLegacy);
    std::fprintf(f, "  \"prepared_vs_unprepared_1t\": %.3f,\n",
                 vsUnprepared);
    std::fprintf(f, "  \"simd_vs_scalar_1t\": %.3f,\n", simdVsScalar);
    std::fprintf(f, "  \"prepared_8t_vs_1t\": %.3f,\n", scale8t);
    std::fprintf(f, "  \"decode_step_prepared_ms\": %.3f,\n",
                 decodePrepared * 1e3);
    std::fprintf(f, "  \"decode_step_unprepared_ms\": %.3f,\n",
                 decodeUnprepared * 1e3);
    std::fprintf(f, "  \"cases\": [\n");
    for (std::size_t i = 0; i < gResults.size(); ++i) {
        const CaseResult& r = gResults[i];
        std::fprintf(f,
                     "    {\"case\": \"%s\", \"mode\": \"%s\", "
                     "\"threads\": %u, \"effective_concurrency\": %u, "
                     "\"seconds_per_gemm\": %.6e, "
                     "\"gemm_per_sec\": %.3f}%s\n",
                     r.label.c_str(), r.mode.c_str(), r.threads,
                     r.effectiveConcurrency, r.seconds, r.gemmPerSec(),
                     i + 1 < gResults.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    bench::note("wrote BENCH_exec.json");
}

} // namespace

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::header("Exec", "prepared-operand engine throughput "
                          "(GEMM/s, prepared vs unprepared vs legacy)");

    const bool smoke = bench::smoke();
    const double minSeconds = smoke ? 0.03 : 0.3;
    const unsigned maxReps = smoke ? 5 : 25;

    // The fig09-class GEMM (LoCaLUT plan) is the acceptance shape, in
    // the paper's W1A4 and W4A4 configurations; smoke shrinks it so
    // `ctest -L smoke` stays fast.
    const std::size_t m = bench::smokeTrim<std::size_t>(3072, 512);
    const std::size_t k = bench::smokeTrim<std::size_t>(768, 256);
    const std::size_t n = bench::smokeTrim<std::size_t>(128, 32);
    const GemmEngine engine(PimSystemConfig::upmemServer());
    ExecArena arena;
    // Headline numbers (last preset iterated = W4A4).
    double vsLegacy = 0, vsUnprepared = 0;
    double simdVsScalar = 0, scale8t = 0;

    for (const char* preset : {"W1A4", "W4A4"}) {
        const QuantConfig cfg = QuantConfig::preset(preset);
        const GemmProblem problem = makeRandomProblem(m, k, n, cfg, 42);
        // The reduced smoke shape would plan p = 1 (no tables, nothing
        // to prepare, a knife-edge gate); force a LUT packing so the
        // smoke gate measures the path the engine actually serves.
        PlanOverrides overrides;
        if (smoke) {
            overrides.p = 2;
        }
        const GemmPlan plan =
            engine.plan(problem, DesignPoint::LoCaLut, overrides);
        const std::string label = "fig09_gemm_" + cfg.name();

        bench::section("fig09-class GEMM " + std::to_string(m) + "x" +
                       std::to_string(k) + "x" + std::to_string(n) + " " +
                       cfg.name() + " (p=" + std::to_string(plan.p) +
                       (plan.streaming ? ", streaming" : "") + ")");

        // Reference output for bit-exactness checks across every mode.
        const std::vector<std::int32_t> reference =
            referenceGemmInt(problem.w, problem.a);

        auto check = [&](const std::vector<std::int32_t>& out,
                         const char* mode) {
            if (out != reference) {
                LOCALUT_FATAL("mode ", mode,
                              " diverged from the reference GEMM");
            }
        };

        // Legacy (frozen PR-3 kernels, per-call tables), single-thread.
        {
            std::vector<std::int32_t> out;
            const double s = secondsPerCall(
                [&] {
                    out = legacy::canonicalInt(problem, plan.p,
                                               plan.streaming,
                                               plan.kSlices);
                },
                minSeconds, maxReps);
            check(out, "legacy");
            record(label, "legacy", 1, s);
        }

        // Unprepared engine (ad-hoc preparation each call), 1 thread.
        {
            std::vector<std::int32_t> out;
            const double s = secondsPerCall(
                [&] { executeGemmInt(problem, plan, {}, out); },
                minSeconds, maxReps);
            check(out, "unprepared");
            record(label, "unprepared", 1, s);
        }

        // Prepared engine across tile-thread counts, simd and scalar.
        // Each sweep point constructs its own TilePool(threads) — the
        // executor the kernels see really has `threads` workers; the
        // session's default worker cap never touches this sweep (the
        // pool is standalone), and what the machine can actually run
        // concurrently is recorded per row as effective_concurrency.
        const std::shared_ptr<const PreparedGemm> prepared =
            prepareGemm(problem, plan);
        for (unsigned threads : {1u, 2u, 4u, 8u}) {
            std::unique_ptr<TilePool> pool;
            if (threads > 1) {
                pool = std::make_unique<TilePool>(threads);
                LOCALUT_REQUIRE(pool->concurrency() == threads,
                                "thread sweep lost its pool width");
            }
            for (const bool simd : {false, true}) {
                ExecOptions options;
                options.prepared = prepared.get();
                options.arena = &arena;
                options.tiles = pool.get();
                options.simd = simd;
                std::vector<std::int32_t> out;
                const double s = secondsPerCall(
                    [&] { executeGemmInt(problem, plan, options, out); },
                    minSeconds, maxReps);
                check(out, simd ? "prepared" : "prepared_scalar");
                record(label, simd ? "prepared" : "prepared_scalar",
                       threads, s);
            }
        }

        Table table({"mode", "threads", "eff. conc", "s/GEMM", "GEMM/s",
                     "vs legacy 1t"});
        const double legacySeconds = find(label, "legacy", 1)->seconds;
        for (const CaseResult& r : gResults) {
            if (r.label != label) {
                continue;
            }
            table.addRow({r.mode, std::to_string(r.threads),
                          std::to_string(r.effectiveConcurrency),
                          bench::fmtSeconds(r.seconds),
                          Table::fmt(r.gemmPerSec(), 1),
                          Table::fmt(legacySeconds / r.seconds, 2) + "x"});
        }
        table.print();

        vsLegacy = legacySeconds / find(label, "prepared", 1)->seconds;
        vsUnprepared = find(label, "unprepared", 1)->seconds /
                       find(label, "prepared", 1)->seconds;
        simdVsScalar = find(label, "prepared_scalar", 1)->seconds /
                       find(label, "prepared", 1)->seconds;
        scale8t = find(label, "prepared", 1)->seconds /
                  find(label, "prepared", 8)->seconds;
        bench::note("prepared 1t vs legacy:     " +
                    Table::fmt(vsLegacy, 2) + "x   (target: >= 5x)");
        bench::note("prepared 1t vs unprepared: " +
                    Table::fmt(vsUnprepared, 2) + "x");
        bench::note("simd 1t vs scalar 1t:      " +
                    Table::fmt(simdVsScalar, 2) + "x");
        bench::note("prepared 8t vs 1t:         " +
                    Table::fmt(scale8t, 2) + "x   (target: >= 3x on >= 8 "
                    "hw threads; this machine has " +
                    std::to_string(hardwareConcurrency()) + ")");
    }

    // OPT-125M decode step: every decode GEMM shape weighted by its
    // per-step execution count, prepared vs unprepared.
    bench::section("OPT-125M decode step (batch 8, prompt 128)");
    const QuantConfig decodeCfg = QuantConfig::preset("W4A4");
    const WorkloadSpec spec =
        WorkloadSpec::decode(TransformerConfig::opt125m(), 8, 128, 1);
    double decodePrepared = 0, decodeUnprepared = 0;
    unsigned shapeIndex = 0;
    for (const WorkloadGemm& gemm : workloadGemms(spec)) {
        const GemmProblem p =
            makeRandomProblem(gemm.m, gemm.k, gemm.n, decodeCfg,
                              1000 + shapeIndex++);
        const GemmPlan nodePlan = engine.plan(p, DesignPoint::LoCaLut);
        std::vector<std::int32_t> out;
        const double unprep = secondsPerCall(
            [&] { executeGemmInt(p, nodePlan, {}, out); },
            minSeconds / 4, maxReps);
        const std::shared_ptr<const PreparedGemm> nodePrepared =
            prepareGemm(p, nodePlan);
        ExecOptions options;
        options.prepared = nodePrepared.get();
        options.arena = &arena;
        const double prep = secondsPerCall(
            [&] { executeGemmInt(p, nodePlan, options, out); },
            minSeconds / 4, maxReps);
        decodeUnprepared += unprep * gemm.count;
        decodePrepared += prep * gemm.count;
        record("opt125m_decode_" + std::string(gemm.role), "unprepared", 1,
               unprep);
        record("opt125m_decode_" + std::string(gemm.role), "prepared", 1,
               prep);
    }
    bench::note("decode step, unprepared: " +
                bench::fmtSeconds(decodeUnprepared));
    bench::note("decode step, prepared:   " +
                bench::fmtSeconds(decodePrepared));

    writeJson(smoke, vsLegacy, vsUnprepared, simdVsScalar, scale8t,
              decodePrepared, decodeUnprepared);

    // CI gates (perf-smoke job).  Noise factors absorb scheduler jitter
    // without letting a real regression through.
    int failures = 0;
    // 1. Prepared execution must keep up with unprepared execution.
    if (smoke && vsUnprepared < 0.85) {
        bench::note("FAIL: prepared execution slower than unprepared (" +
                    Table::fmt(vsUnprepared, 2) + "x < 0.85x)");
        ++failures;
    }
    // 2. The simd inner loops must never lose to the scalar ones.
    if (smoke && simdVsScalar < 0.9) {
        bench::note("FAIL: simd inner loops slower than scalar (" +
                    Table::fmt(simdVsScalar, 2) + "x < 0.9x)");
        ++failures;
    }
    // 3. Tile-parallel scaling, gated on what the machine can actually
    // run: a TilePool(8) on a 2-core runner cannot (and should not
    // pretend to) triple throughput.  Thresholds are well under linear
    // to absorb memory-bandwidth ceilings on shared runners.
    if (smoke) {
        const unsigned hw = hardwareConcurrency();
        const double scale4t =
            find("fig09_gemm_W4A4", "prepared", 1)->seconds /
            find("fig09_gemm_W4A4", "prepared", 4)->seconds;
        if (hw >= 8 && scale8t < 3.0) {
            bench::note("FAIL: prepared 8-thread only " +
                        Table::fmt(scale8t, 2) + "x of 1-thread (>= 3x "
                        "required on >= 8 hw threads)");
            ++failures;
        } else if (hw >= 4 && hw < 8 && scale4t < 2.0) {
            bench::note("FAIL: prepared 4-thread only " +
                        Table::fmt(scale4t, 2) + "x of 1-thread (>= 2x "
                        "required on >= 4 hw threads)");
            ++failures;
        } else if (hw < 4) {
            bench::note("scaling gate skipped: only " +
                        std::to_string(hw) + " hardware thread(s)");
        }
    }
    return failures == 0 ? 0 : 1;
}
