/**
 * @file
 * Reproduces paper Fig. 18: validating the Section IV-D cost model
 * against the full event-accounting simulation across packing degrees —
 * W4A4 at p = 1..3 and W2A2 at p = 4..6, on (768,768,768) and
 * (3072,768,768).  Paper reference: the model identifies the correct p in
 * three of four cases, with one near-miss for W2A2 at the smaller matrix
 * (the model ignores input-value loading); streaming at higher p pays off
 * only for the larger weight matrix.
 */

#include "bench_util.h"

#include "common/table.h"
#include "nn/inference.h"

using namespace localut;

namespace {

void
runCase(const GemmEngine& engine, const char* preset, unsigned pLo,
        unsigned pHi, std::size_t m)
{
    const PimSystemConfig& sys = engine.system();
    const QuantConfig cfg = QuantConfig::preset(preset);
    const GemmProblem problem = makeShapeOnlyProblem(m, 768, 768, cfg);

    bench::section(std::string(preset) + "  (M,K,N) = (" +
                   std::to_string(m) + ", 768, 768)");
    Table table({"p", "model: LUT access", "model: LUT load",
                 "model total", "sim kernel time", "placement"});
    unsigned bestModelP = pLo, bestSimP = pLo;
    double bestModel = 1e30, bestSim = 1e30;
    for (unsigned p = pLo; p <= pHi; ++p) {
        PlanOverrides ov;
        ov.p = p;
        const GemmPlan plan = engine.plan(problem, DesignPoint::LoCaLut, ov);
        const PerfModel model(sys.dpu, cfg);
        const double access =
            model.bufferSeconds(plan.tileM, static_cast<double>(plan.k),
                                plan.tileN, p);
        const double load =
            plan.streaming
                ? model.streamingSeconds(plan.tileM,
                                         static_cast<double>(plan.k),
                                         plan.tileN, p) -
                      access
                : 0.0;
        const double modelTotal = access + load;
        const GemmResult r = engine.run(problem, plan, false);
        const double sim = r.timing.dpuSeconds;
        if (modelTotal < bestModel) {
            bestModel = modelTotal;
            bestModelP = p;
        }
        if (sim < bestSim) {
            bestSim = sim;
            bestSimP = p;
        }
        table.addRow({std::to_string(p), bench::fmtSeconds(access),
                      bench::fmtSeconds(load),
                      bench::fmtSeconds(modelTotal), bench::fmtSeconds(sim),
                      plan.streaming ? "stream" : "buffer"});
    }
    table.print();
    bench::note("model argmin p = " + std::to_string(bestModelP) +
                ", simulator argmin p = " + std::to_string(bestSimP) +
                (bestModelP == bestSimP ? "  (model predicts correctly)"
                                        : "  (near-miss, as in the paper)"));
}

} // namespace

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::header("Fig. 18", "cost-model validation (Eq. 2-6 vs simulation)");
    const GemmEngine engine(PimSystemConfig::upmemServer());
    const PerfModelConstants c = PerfModelConstants::profile(
        PimSystemConfig::upmemServer().dpu,
        LutShape(QuantConfig::preset("W1A3"), 8));
    bench::note("profiled constants: L_D = " + Table::fmt(c.lD * 1e9, 3) +
                " ns/entry-pair, L_local = " + Table::fmt(c.lLocal * 1e9, 3) +
                " ns/lookup   (paper: 1.36 ns, 32.7 ns)");

    runCase(engine, "W4A4", 1, 3, 768);
    runCase(engine, "W4A4", 1, 3, 3072);
    runCase(engine, "W2A2", 4, 6, 768);
    runCase(engine, "W2A2", 4, 6, 3072);
    return 0;
}
