/**
 * @file
 * Fault sweep: seeded fault plans (one scheduled rank death plus
 * any-rank transient execute faults at a swept rate) drive the SLO
 * scheduler on a 2-node x 4-rank session, comparing the full recovery
 * stack — capped-backoff retries, health-aware placement, failover —
 * against a fail-stop baseline (one attempt, no failover, fault-blind
 * placement) over the identical arrival trace.  Reports completed /
 * fault-shed counts, deadline-met goodput, the injector's recovery
 * counters, and the degraded-capacity gauge; verifies every completed
 * request bit-exact against the direct reference, and emits
 * BENCH_fault.json (archived by the CI perf-smoke job).
 *
 * Under --smoke it exits non-zero when failover fails to at least
 * double the fail-stop baseline's deadline-met requests at the highest
 * transient rate — ISSUE 9's acceptance gate.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

#include "common/logging.h"
#include "common/rng.h"
#include "common/table.h"
#include "serving/fault.h"
#include "serving/scheduler.h"

using namespace localut;

namespace {

/** Deadline budget as a multiple of the healthy steady service time:
 * wide enough that maxAttempts retries plus backoff plus moderate
 * queueing still land in time, so the sweep measures fault sheds, not
 * deadline tightness. */
constexpr double kDeadlineX = 40.0;
/** Offered load (fraction of the healthy 8-rank capacity). */
constexpr double kLoadFactor = 0.5;
constexpr unsigned kDeadRank = 2;

/** One measured (rate, mode) point. */
struct FaultRunStats {
    std::string mode; ///< "failover" or "fail-stop"
    double rate = 0;  ///< per-attempt transient fault probability
    std::uint64_t offered = 0;
    std::uint64_t completed = 0;  ///< admitted and sequenced to the end
    std::uint64_t met = 0;        ///< completed within the deadline
    std::uint64_t shedFault = 0;  ///< fault sheds (admission + post-admit)
    std::uint64_t retries = 0;
    std::uint64_t failovers = 0;
    std::uint64_t quarantines = 0;
    std::uint64_t ranksDead = 0;
    double capacityRatio = 1.0;
    double backoffSeconds = 0;
    double makespan = 0;
    double goodputPerSec = 0; ///< met / makespan
};

std::vector<FaultRunStats> gRuns;

struct Arrival {
    double time;
    unsigned problemIndex;
};

FaultRunStats
runOne(double rate, bool recover, double deathAt, double deadline,
       const std::vector<Arrival>& arrivals,
       const std::vector<GemmProblem>& pool,
       const std::vector<std::vector<std::int32_t>>& refs)
{
    // The identical seeded fault plan drives both modes: rank 2 dies a
    // quarter of the way through the trace, and every execute attempt
    // on any rank fails with probability `rate`.
    FaultPlan plan;
    plan.seed = 0xfa017u;
    plan.transientExecute(rate);
    plan.rankDeath(kDeadRank, deathAt);
    FaultInjector injector(plan, Topology{2, 4});

    SessionOptions sessionOptions;
    sessionOptions.numNodes = 2;
    sessionOptions.numRanks = 4;
    sessionOptions.faultInjector = &injector;
    // Quarantine targets asymmetric persistent faults; under uniform
    // any-rank transient noise it would eventually fence every rank, so
    // the sweep disables it in both modes to isolate retry + failover.
    sessionOptions.faultPolicy.quarantineThreshold = 1ull << 40;
    if (!recover) {
        sessionOptions.faultPolicy.maxAttempts = 1; // fail-stop
        sessionOptions.faultPolicy.failover = false;
    }
    InferenceSession session(makeBackend("upmem"), sessionOptions);

    SchedulerOptions options;
    options.policy = SchedulerPolicy::Slo;
    options.faultAware = recover;
    options.maxQueuedPerRank = 16;
    RequestScheduler scheduler(session, options);

    struct Pending {
        AdmissionDecision decision;
        unsigned problemIndex;
    };
    std::vector<Pending> submitted;
    submitted.reserve(arrivals.size());
    for (const Arrival& arrival : arrivals) {
        ServingRequest request = ServingRequest::gemm(
            pool[arrival.problemIndex], DesignPoint::LoCaLut,
            DeadlineClass::Interactive, deadline);
        request.arrivalSeconds = arrival.time;
        submitted.push_back(
            {scheduler.submit(std::move(request)), arrival.problemIndex});
    }

    FaultRunStats stats;
    stats.mode = recover ? "failover" : "fail-stop";
    stats.rate = rate;
    std::uint64_t mismatches = 0;
    for (const Pending& pending : submitted) {
        const ServingResult result = scheduler.wait(pending.decision.id);
        if (!result.decision.admitted() ||
            result.decision.outcome == AdmissionOutcome::ShedFault) {
            continue;
        }
        stats.makespan =
            std::max(stats.makespan, result.sample.completionSeconds);
        // Every surviving request must still be bit-exact: retries,
        // re-homes, and re-shards never change functional values.
        if (result.gemm.outInt != refs[pending.problemIndex]) {
            ++mismatches;
        }
    }
    if (mismatches != 0) {
        LOCALUT_FATAL(mismatches, " completed request(s) diverged from "
                                  "the direct-submit reference");
    }

    const TelemetrySnapshot snap = scheduler.telemetry().snapshot();
    stats.offered = snap.totalSubmitted();
    for (std::size_t lane = 0; lane < kDeadlineClasses; ++lane) {
        stats.completed += snap.lanes[lane].completed;
        stats.met += snap.lanes[lane].deadlineMet;
        stats.shedFault += snap.shedFault[lane];
    }
    stats.retries = snap.faults.retries;
    stats.failovers = snap.faults.failovers;
    stats.quarantines = snap.faults.quarantines;
    stats.ranksDead = snap.faults.ranksDead;
    stats.capacityRatio = snap.faults.capacityRatio;
    stats.backoffSeconds = snap.faults.backoffSeconds;
    stats.goodputPerSec =
        stats.makespan > 0
            ? static_cast<double>(stats.met) / stats.makespan
            : 0;
    return stats;
}

void
writeJson(bool smoke, bool gatePassed)
{
    std::FILE* f = std::fopen("BENCH_fault.json", "w");
    if (f == nullptr) {
        bench::note("could not open BENCH_fault.json for writing");
        return;
    }
    std::fprintf(f, "{\n  \"bench\": \"fault_sweep\",\n");
    std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
    std::fprintf(f, "  \"failover_gate_passed\": %s,\n",
                 gatePassed ? "true" : "false");
    std::fprintf(f, "  \"deadline_x\": %.1f,\n", kDeadlineX);
    std::fprintf(f, "  \"load_factor\": %.2f,\n", kLoadFactor);
    std::fprintf(f, "  \"runs\": [\n");
    for (std::size_t r = 0; r < gRuns.size(); ++r) {
        const FaultRunStats& s = gRuns[r];
        std::fprintf(
            f,
            "    {\"mode\": \"%s\", \"transient_rate\": %.3f, "
            "\"offered\": %llu, \"completed\": %llu, "
            "\"deadline_met\": %llu, \"shed_fault\": %llu, "
            "\"retries\": %llu, \"failovers\": %llu, "
            "\"quarantines\": %llu, \"ranks_dead\": %llu, "
            "\"capacity_ratio\": %.4f, \"backoff_s\": %.6e, "
            "\"makespan_s\": %.6e, \"goodput_per_sec\": %.3f}%s\n",
            s.mode.c_str(), s.rate,
            static_cast<unsigned long long>(s.offered),
            static_cast<unsigned long long>(s.completed),
            static_cast<unsigned long long>(s.met),
            static_cast<unsigned long long>(s.shedFault),
            static_cast<unsigned long long>(s.retries),
            static_cast<unsigned long long>(s.failovers),
            static_cast<unsigned long long>(s.quarantines),
            static_cast<unsigned long long>(s.ranksDead),
            s.capacityRatio, s.backoffSeconds, s.makespan,
            s.goodputPerSec, r + 1 < gRuns.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    bench::note("wrote BENCH_fault.json");
}

} // namespace

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::header("Faults", "failover vs fail-stop under seeded faults");

    const bool smoke = bench::smoke();
    const unsigned requests = bench::smokeTrim(160u, 48u);
    const std::vector<double> rates =
        bench::smokeTrim<std::vector<double>>({0.1, 0.3, 0.6}, {0.6});
    const double gateRate = rates.back();

    // A small pool of decode-shaped interactive GEMMs with shared
    // direct references for the bit-exactness criterion.
    const QuantConfig quant = QuantConfig::preset("W4A4");
    constexpr unsigned kPoolSize = 4;
    std::vector<GemmProblem> pool;
    std::vector<std::vector<std::int32_t>> refs;
    for (unsigned p = 0; p < kPoolSize; ++p) {
        pool.push_back(makeRandomProblem(512, 512, 8, quant, 90 + p));
        refs.push_back(referenceGemmInt(pool.back().w, pool.back().a));
    }

    // Healthy steady service time sizes the arrival rate and deadline.
    const BackendPtr probe = makeBackend("upmem");
    const double service =
        probe
            ->execute(pool[0], probe->plan(pool[0], DesignPoint::LoCaLut),
                      /*computeValues=*/false)
            .timing.total;
    const double capacity = 8.0 / service; // 2 nodes x 4 ranks
    const double rateArrivals = kLoadFactor * capacity;
    const double deadline = kDeadlineX * service;

    // One Poisson trace, replayed identically by every (rate, mode)
    // point; rank 2 dies an eighth of the way in.
    Rng rng(0xfa0175ull);
    std::vector<Arrival> arrivals;
    double t = 0;
    for (unsigned i = 0; i < requests; ++i) {
        t += -std::log(1.0 - rng.nextDouble()) / rateArrivals;
        arrivals.push_back(
            {t, static_cast<unsigned>(rng.nextBounded(kPoolSize))});
    }
    const double deathAt = arrivals[requests / 8].time;

    bench::note("2x4 topology, " + std::to_string(requests) +
                " requests at " + Table::fmt(kLoadFactor, 2) +
                "x capacity, deadline " + bench::fmtSeconds(deadline) +
                "; rank " + std::to_string(kDeadRank) + " dies at " +
                bench::fmtSeconds(deathAt));

    bool gatePassed = true;
    Table table({"rate", "mode", "done", "met", "shed", "retries",
                 "failovers", "capacity", "goodput/s"});
    for (const double rate : rates) {
        FaultRunStats failover, failstop;
        for (const bool recover : {true, false}) {
            FaultRunStats stats = runOne(rate, recover, deathAt, deadline,
                                         arrivals, pool, refs);
            (recover ? failover : failstop) = stats;
            gRuns.push_back(stats);
            table.addRow({Table::fmt(rate, 2), stats.mode,
                          std::to_string(stats.completed),
                          std::to_string(stats.met),
                          std::to_string(stats.shedFault),
                          std::to_string(stats.retries),
                          std::to_string(stats.failovers),
                          Table::fmt(stats.capacityRatio, 2),
                          Table::fmt(stats.goodputPerSec, 1)});
        }
        // The acceptance gate binds at the highest transient rate:
        // retries + failover must at least double the fail-stop
        // baseline's deadline-met requests over the identical trace.
        if (rate == gateRate &&
            (failover.met == 0 || failover.met < 2 * failstop.met)) {
            gatePassed = false;
            bench::note("GATE: failover met " +
                        std::to_string(failover.met) + " vs fail-stop " +
                        std::to_string(failstop.met) + " at rate " +
                        Table::fmt(rate, 2) + " (needs >= 2x)");
        }
    }
    table.print();
    bench::note("expected shape: fail-stop sheds every faulted attempt "
                "and everything routed to the dead rank; failover "
                "retries transients, fences the dead rank, and keeps "
                "goodput near the 7/8 degraded capacity.");

    writeJson(smoke, gatePassed);
    if (smoke && !gatePassed) {
        bench::note("FAIL: failover gate (see GATE notes above)");
        return 1;
    }
    return 0;
}
