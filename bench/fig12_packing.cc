/**
 * @file
 * Reproduces paper Fig. 12: packing-degree sensitivity at W2A2 with
 * K = 768, N = 128 and M in {192, 768, 3072}: speedup over Naive PIM and
 * LUT capacity across p = 1..6.  Paper reference: performance improves
 * with p while capacity grows; at p = 6 (slice streaming) performance
 * improves as M grows because the loaded slices are reused more.
 */

#include "bench_util.h"

#include "common/table.h"

using namespace localut;

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::header("Fig. 12", "packing degree sensitivity (W2A2, K=768, N=128)");
    const PimSystemConfig sys = PimSystemConfig::upmemServer();
    const GemmEngine engine(sys);
    const QuantConfig cfg = QuantConfig::preset("W2A2");
    const PerfModel model(sys.dpu, cfg);
    bench::note("p_local = " + std::to_string(model.pLocalMax()) +
                ", p_DRAM = " + std::to_string(model.pDramMax()) +
                " (streaming engages for p > p_local)");

    for (std::size_t m : {192u, 768u, 3072u}) {
        bench::section("M = " + std::to_string(m));
        Table table({"p", "speedup vs Naive", "LUT capacity", "placement"});
        const GemmProblem problem = makeShapeOnlyProblem(m, 768, 128, cfg);
        const double tNaive =
            engine.run(problem, DesignPoint::NaivePim, false).timing.total;
        for (unsigned p = 1; p <= 6; ++p) {
            PlanOverrides ov;
            ov.p = p;
            const GemmPlan plan =
                engine.plan(problem, DesignPoint::LoCaLut, ov);
            const double t = engine.run(problem, plan, false).timing.total;
            const LutShape shape(cfg, p);
            table.addRow({std::to_string(p),
                          Table::fmt(tNaive / t, 3) + "x",
                          bench::fmtBytes(static_cast<double>(
                              localutBytes(shape))),
                          plan.streaming ? "DRAM (stream)" : "buffer"});
        }
        table.print();
    }
    bench::note("Paper reference: at p = 6 the speedup rises with M "
                "(slice reuse grows with the weight rows).");
    return 0;
}
