/**
 * @file
 * Residency sweep: cold vs warm OPT decode serving across per-unit MRAM
 * table budgets.  A fig10-class OPT-125M decode is served one step at a
 * time through an InferenceSession with the LUT residency manager
 * enabled; with a generous budget the first step broadcasts every
 * (layer, projection) table set host -> PIM and later steps run warm,
 * while shrinking budgets force cost-aware eviction and re-broadcast
 * until, at the low end, every step pays the transfer again (thrash).
 */

#include "bench_util.h"

#include "common/table.h"

using namespace localut;

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::header("residency", "cold vs warm decode across MRAM budgets");

    const TransformerConfig model = TransformerConfig::opt125m();
    const QuantConfig config = QuantConfig::preset("W4A4");
    const unsigned batch = 32;
    const unsigned prompt = 128;
    const unsigned steps = bench::smokeTrim(32u, 4u);

    bench::note("OPT-125M W4A4, batch 32, prompt 128, " +
                std::to_string(steps) +
                " decode steps served one step at a time; budget is "
                "per-DPU MRAM bytes for resident table sets.");

    // Working-set size: sum of every node's per-layer table instances.
    InferenceSession probe(makeBackend("upmem"));
    const auto probeStep = probe.compile(
        WorkloadSpec::decode(model, batch, prompt, 1), config,
        DesignPoint::LoCaLut);
    double workingSet = 0;
    for (const auto& node : probeStep.nodes) {
        workingSet += static_cast<double>(tableSetBytes(node.plan)) *
                      node.gemm.count;
    }
    const MemoryProfile mem = probe.backend().memoryProfile();
    bench::note("table working set: " + bench::fmtBytes(workingSet) +
                " across " + std::to_string(probeStep.nodes.size()) +
                " table-set groups (physical, replicated to all " +
                std::to_string(mem.unitsPerRank) + " DPUs of a rank: " +
                bench::fmtBytes(workingSet *
                                static_cast<double>(mem.unitsPerRank)) +
                "; rank table capacity " +
                bench::fmtBytes(
                    static_cast<double>(mem.lutBytesPerRank())) +
                ")");

    const std::vector<std::uint64_t> budgets = bench::smokeTrim<
        std::vector<std::uint64_t>>(
        {0 /*backend default*/, std::uint64_t{16} << 20,
         std::uint64_t{4} << 20, std::uint64_t{1} << 20,
         std::uint64_t{256} << 10, std::uint64_t{64} << 10},
        {0 /*backend default*/, std::uint64_t{1} << 20});

    Table table({"budget", "cold step", "warm step", "cold/warm",
                 "hit rate", "evict", "rebroadcast", "bcast bytes"});
    for (const std::uint64_t budget : budgets) {
        SessionOptions options;
        options.residencyPolicy = ResidencyPolicy::CostAware;
        options.mramBudgetBytes = budget;
        InferenceSession session(makeBackend("upmem"), options);
        const auto step = session.compile(
            WorkloadSpec::decode(model, batch, prompt, 1), config,
            DesignPoint::LoCaLut);

        double coldStep = 0, warmSum = 0;
        for (unsigned s = 0; s < steps; ++s) {
            const double t =
                session.waitReport(session.submit(step)).timing.total;
            if (s == 0) {
                coldStep = t;
            } else {
                warmSum += t;
            }
        }
        const double warmStep = warmSum / (steps - 1);
        const ResidencyStats stats = session.residencyStats();
        table.addRow({
            budget == 0 ? "default (" +
                              bench::fmtBytes(static_cast<double>(
                                  mem.lutBytesPerUnit)) +
                              ")"
                        : bench::fmtBytes(static_cast<double>(budget)),
            bench::fmtSeconds(coldStep),
            bench::fmtSeconds(warmStep),
            Table::fmt(coldStep / warmStep, 4) + "x",
            Table::fmt(100.0 * stats.hitRate(), 4) + "%",
            std::to_string(stats.evictions),
            std::to_string(stats.rebroadcasts),
            bench::fmtBytes(stats.broadcastBytes),
        });
    }
    table.print();
    bench::note("expected shape: generous budgets pay the broadcast once "
                "(cold/warm > 1, zero evictions); budgets below the "
                "working set thrash (hit rate drops toward 0, warm step "
                "approaches cold step).");
    return 0;
}
