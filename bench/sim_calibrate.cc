/**
 * @file
 * Cost-model calibration harness: sweeps the Fig. 9 design-point grid
 * and the Fig. 18 forced-packing sweep on both the analytical "upmem"
 * cost model and the cycle-level "upmem-sim" micro-simulator, reports
 * the per-DPU-phase relative deltas, and gates them against the frozen
 * tolerance bands (the same values tests/test_upmemsim.cc pins: 0.5%
 * for instruction-only phases, 5% for tile-DMA phases, 10% for
 * streamed LUT slice pairs — all far inside the 15% acceptance
 * target).  Also reports refit suggestions: the effective
 * dmaSetupCycles / dmaBytesPerCycle constants that would make the
 * analytical closed form reproduce the simulated DMA occupancy under
 * the analytical event counts.  Emits BENCH_sim.json (archived by the
 * CI perf-smoke job) and exits non-zero when any phase delta leaves
 * its frozen band.
 */

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"

#include "lut/capacity.h"
#include "nn/inference.h"
#include "upmem/cost_model.h"
#include "upmemsim/sim_backend.h"

using namespace localut;

namespace {

// Frozen bands — keep in lockstep with tests/test_upmemsim.cc.
constexpr double kComputeBand = 0.005;
constexpr double kDmaBand = 0.05;
constexpr double kLutStreamBand = 0.10;

double
frozenBand(Phase p)
{
    switch (p) {
      case Phase::LutLoadDma:
        return kLutStreamBand;
      case Phase::OperandDma:
      case Phase::OutputDma:
      case Phase::CanonicalAccess:
        return kDmaBand;
      default:
        return kComputeBand;
    }
}

/** Worst observed delta of one phase across the grid. */
struct PhaseWorst {
    double delta = 0;
    double analytical = 0;
    double simulated = 0;
    std::string label;
};

struct GridStats {
    std::vector<PhaseWorst> worst{
        static_cast<unsigned>(Phase::kNumPhases)};
    unsigned points = 0;
    unsigned violations = 0;
    // Aggregate DMA counters for the refit suggestions.
    double analyticalTransfers = 0;
    double analyticalBytes = 0;
    double simSetupCycles = 0;
    double simStreamCycles = 0;
};

void
measure(const UpmemSimBackend& backend, const GemmPlan& plan,
        const std::string& label, GridStats& stats)
{
    const KernelCost cost = backend.chargeCosts(plan);
    const CostEvaluator eval(backend.system());
    const TimingReport analytical = eval.timing(cost, plan.dpusUsed());
    const upmemsim::SimResult sim = backend.simulated(plan);

    ++stats.points;
    stats.simSetupCycles += sim.dmaSetupCycles;
    stats.simStreamCycles += sim.dmaStreamCycles;
    double pointWorst = 0;
    const char* pointWorstPhase = "-";
    for (unsigned i = 0; i < static_cast<unsigned>(Phase::kNumPhases);
         ++i) {
        const Phase p = static_cast<Phase>(i);
        if (isHostPhase(p) || isLinkPhase(p)) {
            continue;
        }
        stats.analyticalTransfers += cost.phase(p).dmaTransfers;
        stats.analyticalBytes += cost.phase(p).dmaBytes;
        const double a = analytical.seconds.get(phaseName(p));
        const double s =
            backend.system().dpu.cyclesToSeconds(sim.cycles(p));
        if (a < 1e-12 && s < 1e-12) {
            continue;
        }
        const double delta = std::abs(s - a) / std::max(a, 1e-30);
        if (delta > stats.worst[i].delta) {
            stats.worst[i] =
                PhaseWorst{delta, a, s, label};
        }
        if (delta > pointWorst) {
            pointWorst = delta;
            pointWorstPhase = phaseName(p);
        }
        if (delta > frozenBand(p)) {
            ++stats.violations;
            std::printf("  VIOLATION %-28s %-20s delta %.2f%% > band "
                        "%.2f%%\n",
                        label.c_str(), phaseName(p), delta * 100,
                        frozenBand(p) * 100);
        }
    }
    std::printf("  %-28s worst %6.2f%%  (%s)\n", label.c_str(),
                pointWorst * 100, pointWorstPhase);
}

const char*
designName(DesignPoint d)
{
    switch (d) {
      case DesignPoint::NaivePim: return "NaivePim";
      case DesignPoint::Ltc: return "LTC";
      case DesignPoint::OpLutDram: return "OP-LUT-DRAM";
      case DesignPoint::OpLut: return "OP-LUT";
      case DesignPoint::OpLc: return "OP-LC";
      case DesignPoint::OpLcRc: return "OP-LC-RC";
      case DesignPoint::LoCaLut: return "LoCaLUT";
    }
    return "?";
}

} // namespace

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::header("sim-calibrate",
                  "cycle-level simulator vs analytical cost model: "
                  "per-phase calibration deltas over the Fig. 9/18 grid");

    const UpmemSimBackend backend;
    GridStats stats;

    bench::section("Fig. 9 design-point grid");
    const std::vector<std::array<std::size_t, 3>> fig09Shapes =
        bench::smokeTrim(std::vector<std::array<std::size_t, 3>>{
                             {768, 768, 128}, {3072, 768, 128}},
                         std::vector<std::array<std::size_t, 3>>{
                             {768, 768, 128}});
    for (const auto& shape : fig09Shapes) {
        for (const QuantConfig& cfg : QuantConfig::paperConfigs()) {
            const GemmProblem problem = makeShapeOnlyProblem(
                shape[0], shape[1], shape[2], cfg);
            for (const DesignPoint d :
                 {DesignPoint::NaivePim, DesignPoint::Ltc,
                  DesignPoint::OpLut, DesignPoint::OpLc,
                  DesignPoint::OpLcRc, DesignPoint::LoCaLut}) {
                const std::string label =
                    cfg.name() + "/" + designName(d) + "/m" +
                    std::to_string(shape[0]);
                measure(backend, backend.plan(problem, d), label,
                        stats);
            }
        }
    }

    bench::section("Fig. 18 forced packing-degree sweep");
    const std::vector<std::array<std::size_t, 3>> fig18Shapes =
        bench::smokeTrim(std::vector<std::array<std::size_t, 3>>{
                             {768, 768, 768}, {3072, 768, 768}},
                         std::vector<std::array<std::size_t, 3>>{
                             {768, 768, 768}});
    const std::size_t budget = backend.system().dpu.mramLutBudget();
    for (const auto& shape : fig18Shapes) {
        for (const char* preset : {"W4A4", "W2A2"}) {
            const QuantConfig cfg = QuantConfig::preset(preset);
            const unsigned pMax =
                maxPackingDegree(budget, cfg, true, true, 2, 8);
            const GemmProblem problem = makeShapeOnlyProblem(
                shape[0], shape[1], shape[2], cfg);
            for (unsigned p = 1; p <= pMax; ++p) {
                PlanOverrides overrides;
                overrides.p = p;
                const std::string label = std::string(preset) + "/p" +
                                          std::to_string(p) + "/m" +
                                          std::to_string(shape[0]);
                measure(backend,
                        backend.plan(problem, DesignPoint::LoCaLut,
                                     overrides),
                        label, stats);
            }
        }
    }

    bench::section("Worst per-phase deltas across the grid");
    for (unsigned i = 0; i < static_cast<unsigned>(Phase::kNumPhases);
         ++i) {
        const Phase p = static_cast<Phase>(i);
        if (isHostPhase(p) || isLinkPhase(p) ||
            stats.worst[i].label.empty()) {
            continue;
        }
        std::printf("  %-20s worst %6.2f%%  band %5.2f%%  at %s\n",
                    phaseName(p), stats.worst[i].delta * 100,
                    frozenBand(p) * 100, stats.worst[i].label.c_str());
    }

    // Refit suggestions: the constants that, with the ANALYTICAL event
    // counts, reproduce the simulated DMA occupancy — i.e., what
    // DpuParams would absorb chunk-splitting (setup) and alignment
    // (streaming rate) back into the closed form.
    const DpuParams& dpu = backend.system().dpu;
    const double fitSetup =
        stats.analyticalTransfers > 0
            ? stats.simSetupCycles / stats.analyticalTransfers
            : dpu.dmaSetupCycles;
    const double fitRate = stats.simStreamCycles > 0
                               ? stats.analyticalBytes /
                                     stats.simStreamCycles
                               : dpu.dmaBytesPerCycle;
    bench::section("Refit suggestions (effective DpuParams)");
    std::printf("  dmaSetupCycles    current %6.2f  fitted %6.2f\n",
                dpu.dmaSetupCycles, fitSetup);
    std::printf("  dmaBytesPerCycle  current %6.2f  fitted %6.2f\n",
                dpu.dmaBytesPerCycle, fitRate);
    bench::note("fitted values fold chunk-split / alignment effects into "
                "the closed form; adopt only with a golden refresh");

    const bool pass = stats.violations == 0;
    std::printf("\n%u grid points, %u band violations -> %s\n",
                stats.points, stats.violations,
                pass ? "PASS" : "FAIL");

    std::FILE* f = std::fopen("BENCH_sim.json", "w");
    if (f) {
        std::fprintf(f, "{\n  \"bench\": \"sim_calibrate\",\n");
        std::fprintf(f, "  \"smoke\": %s,\n",
                     bench::smoke() ? "true" : "false");
        std::fprintf(f, "  \"gate_passed\": %s,\n",
                     pass ? "true" : "false");
        std::fprintf(f, "  \"points\": %u,\n", stats.points);
        std::fprintf(f, "  \"violations\": %u,\n", stats.violations);
        std::fprintf(f,
                     "  \"bands\": {\"compute\": %.3f, \"dma\": %.3f, "
                     "\"lut_stream\": %.3f},\n",
                     kComputeBand, kDmaBand, kLutStreamBand);
        std::fprintf(f,
                     "  \"refit\": {\"dma_setup_cycles\": {\"current\": "
                     "%.4f, \"fitted\": %.4f}, \"dma_bytes_per_cycle\": "
                     "{\"current\": %.4f, \"fitted\": %.4f}},\n",
                     dpu.dmaSetupCycles, fitSetup, dpu.dmaBytesPerCycle,
                     fitRate);
        std::fprintf(f, "  \"worst_phase_deltas\": [\n");
        bool first = true;
        for (unsigned i = 0;
             i < static_cast<unsigned>(Phase::kNumPhases); ++i) {
            const Phase p = static_cast<Phase>(i);
            if (isHostPhase(p) || isLinkPhase(p) ||
                stats.worst[i].label.empty()) {
                continue;
            }
            std::fprintf(f,
                         "%s    {\"phase\": \"%s\", \"delta\": %.6f, "
                         "\"band\": %.3f, \"analytical_s\": %.9e, "
                         "\"simulated_s\": %.9e, \"at\": \"%s\"}",
                         first ? "" : ",\n", phaseName(p),
                         stats.worst[i].delta, frozenBand(p),
                         stats.worst[i].analytical,
                         stats.worst[i].simulated,
                         stats.worst[i].label.c_str());
            first = false;
        }
        std::fprintf(f, "\n  ]\n}\n");
        std::fclose(f);
        bench::note("wrote BENCH_sim.json");
    } else {
        bench::note("could not open BENCH_sim.json for writing");
    }

    return pass ? 0 : 1;
}
