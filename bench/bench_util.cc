#include "bench_util.h"

#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/logging.h"
#include "common/stats.h"

namespace localut {
namespace bench {

namespace {
bool gSmoke = false;
} // namespace

void
init(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            gSmoke = true;
        } else {
            LOCALUT_FATAL("unknown bench flag \"", argv[i],
                          "\" (supported: --smoke)");
        }
    }
    if (gSmoke) {
        std::printf("[smoke mode: reduced case lists]\n");
    }
}

bool
smoke()
{
    return gSmoke;
}

void
header(const std::string& figure, const std::string& description)
{
    std::printf("\n================================================================\n");
    std::printf("%s — %s\n", figure.c_str(), description.c_str());
    std::printf("================================================================\n");
}

void
note(const std::string& text)
{
    std::printf("  %s\n", text.c_str());
}

void
section(const std::string& title)
{
    std::printf("\n--- %s ---\n", title.c_str());
}

std::string
fmtSeconds(double seconds)
{
    char buf[64];
    if (seconds >= 1.0) {
        std::snprintf(buf, sizeof(buf), "%.3f s", seconds);
    } else if (seconds >= 1e-3) {
        std::snprintf(buf, sizeof(buf), "%.3f ms", seconds * 1e3);
    } else {
        std::snprintf(buf, sizeof(buf), "%.3f us", seconds * 1e6);
    }
    return buf;
}

std::string
fmtBytes(double bytes)
{
    char buf[64];
    if (bytes >= 1024.0 * 1024.0 * 1024.0) {
        std::snprintf(buf, sizeof(buf), "%.2f GiB",
                      bytes / (1024.0 * 1024.0 * 1024.0));
    } else if (bytes >= 1024.0 * 1024.0) {
        std::snprintf(buf, sizeof(buf), "%.2f MiB", bytes / (1024.0 * 1024.0));
    } else if (bytes >= 1024.0) {
        std::snprintf(buf, sizeof(buf), "%.2f KiB", bytes / 1024.0);
    } else {
        std::snprintf(buf, sizeof(buf), "%.0f B", bytes);
    }
    return buf;
}

double
geomeanOf(const std::vector<double>& values)
{
    return geomean(values);
}

} // namespace bench
} // namespace localut
