/**
 * @file
 * Reproduces paper Fig. 13: sensitivity to the slice window k in
 * {1, 2, 4, 8} across the model/bitwidth cases.  For each forced k the
 * planner picks the highest feasible p (paper methodology).  Paper
 * reference: larger k helps W1Ax (better reuse/amortization at unchanged
 * p); for W2A2 and W4A4, k = 4 forces a lower p and degrades performance.
 */

#include "bench_util.h"

#include "common/table.h"
#include "nn/inference.h"

using namespace localut;

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::header("Fig. 13", "k-slice sensitivity (speedup normalized to k=1)");
    const PimSystemConfig sys = PimSystemConfig::upmemServer();

    struct Case {
        TransformerConfig model;
        const char* preset;
    };
    const Case cases[] = {
        {TransformerConfig::bertBase(), "W1A3"},
        {TransformerConfig::bertBase(), "W1A4"},
        {TransformerConfig::bertBase(), "W2A2"},
        {TransformerConfig::bertBase(), "W4A4"},
        {TransformerConfig::vitBase(), "W2A2"},
        {TransformerConfig::vitBase(), "W4A4"},
        {TransformerConfig::opt125m(), "W4A4"},
    };

    Table table({"model", "config", "k=1", "k=2", "k=4", "k=8",
                 "p(k=1)", "p(k=4)", "p(k=8)"});
    for (const Case& c : cases) {
        double base = 0;
        std::vector<std::string> row = {c.model.name, c.preset};
        unsigned p1 = 0, p4 = 0, p8 = 0;
        for (unsigned k : {1u, 2u, 4u, 8u}) {
            PlanOverrides ov;
            ov.kSlices = k;
            const TransformerRunner runner(sys, QuantConfig::preset(c.preset),
                                           DesignPoint::LoCaLut, ov);
            const double t =
                runner.prefill(c.model, 32, c.model.defaultSeqLen)
                    .timing.total;
            if (k == 1) {
                base = t;
            }
            row.push_back(Table::fmt(base / t, 3) + "x");
            // Record the planner's p for the annotation columns.
            const LutPlanner planner(sys.dpu, QuantConfig::preset(c.preset));
            const unsigned p =
                planner.chooseWithForcedK(768, 768, 1, k).p;
            if (k == 1) p1 = p;
            if (k == 4) p4 = p;
            if (k == 8) p8 = p;
        }
        row.push_back(std::to_string(p1));
        row.push_back(std::to_string(p4));
        row.push_back(std::to_string(p8));
        table.addRow(std::move(row));
    }
    table.print();
    bench::note("Paper reference: W1Ax keeps improving with k; W2A2/W4A4 "
                "lose at k = 4 because the slices no longer fit WRAM at "
                "the larger p (p drops).");
    return 0;
}
