/**
 * @file
 * Reproduces paper Fig. 14: end-to-end energy for Naive PIM, LTC, OP-LUT
 * and LoCaLUT across BERT/ViT/OPT bitwidth configurations.  Paper
 * reference: at W1Ax LoCaLUT uses 3.37x less energy than Naive and 1.88x
 * less than LTC; at W2A2 it is on par with OP (sorting overheads offset
 * the fewer lookups); at W4A4 it still beats Naive by 1.16x while LTC and
 * OP fall behind Naive.
 */

#include "bench_util.h"

#include "common/table.h"
#include "nn/inference.h"

using namespace localut;

namespace {

double
endToEndJoules(const TransformerConfig& model, const char* preset,
               DesignPoint dp)
{
    const PimSystemConfig sys = PimSystemConfig::upmemServer();
    const TransformerRunner runner(sys, QuantConfig::preset(preset), dp);
    if (model.name == "OPT-125M") {
        return runner.prefill(model, 32, 128).energy.total +
               runner.decode(model, 32, 128, 8).energy.total;
    }
    return runner.prefill(model, 32, model.defaultSeqLen).energy.total;
}

} // namespace

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::header("Fig. 14", "end-to-end energy comparison");
    struct Case {
        TransformerConfig model;
        const char* preset;
    };
    const Case cases[] = {
        {TransformerConfig::bertBase(), "W1A3"},
        {TransformerConfig::bertBase(), "W1A4"},
        {TransformerConfig::bertBase(), "W2A2"},
        {TransformerConfig::bertBase(), "W4A4"},
        {TransformerConfig::vitBase(), "W2A2"},
        {TransformerConfig::vitBase(), "W4A4"},
        {TransformerConfig::opt125m(), "W4A4"},
    };

    Table table({"model", "config", "Naive (J)", "LTC (J)", "OP (J)",
                 "LoCaLUT (J)", "Naive/LoCaLUT", "LTC/LoCaLUT"});
    std::vector<double> w1VsNaive, w1VsLtc;
    for (const Case& c : cases) {
        const double eNaive =
            endToEndJoules(c.model, c.preset, DesignPoint::NaivePim);
        const double eLtc =
            endToEndJoules(c.model, c.preset, DesignPoint::Ltc);
        const double eOp =
            endToEndJoules(c.model, c.preset, DesignPoint::OpLut);
        const double eLocalut =
            endToEndJoules(c.model, c.preset, DesignPoint::LoCaLut);
        if (std::string(c.preset).rfind("W1", 0) == 0) {
            w1VsNaive.push_back(eNaive / eLocalut);
            w1VsLtc.push_back(eLtc / eLocalut);
        }
        table.addRow({c.model.name, c.preset, Table::fmt(eNaive, 4),
                      Table::fmt(eLtc, 4), Table::fmt(eOp, 4),
                      Table::fmt(eLocalut, 4),
                      Table::fmt(eNaive / eLocalut, 3) + "x",
                      Table::fmt(eLtc / eLocalut, 3) + "x"});
    }
    table.print();

    bench::section("aggregates (paper Section VI-E)");
    bench::note("W1Ax geomean energy reduction vs Naive: " +
                Table::fmt(bench::geomeanOf(w1VsNaive), 3) +
                "x   (paper: 3.37x)");
    bench::note("W1Ax geomean energy reduction vs LTC:   " +
                Table::fmt(bench::geomeanOf(w1VsLtc), 3) +
                "x   (paper: 1.88x)");
    return 0;
}
