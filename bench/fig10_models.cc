/**
 * @file
 * Reproduces paper Fig. 10: end-to-end speedup on BERT (W1A3/W1A4/W2A2/
 * W4A4), ViT (W2A2/W4A4), and OPT (W4A4) for Naive PIM, LTC, OP, and
 * LoCaLUT.  Paper reference: LoCaLUT 1.77x over Naive and 1.82x over LTC
 * geomean; the Section IV optimizations add ~22% over OP.
 */

#include "bench_util.h"

#include "common/table.h"
#include "nn/inference.h"

using namespace localut;

namespace {

double
endToEndSeconds(const TransformerConfig& model, const char* preset,
                DesignPoint dp)
{
    const PimSystemConfig sys = PimSystemConfig::upmemServer();
    const TransformerRunner runner(sys, QuantConfig::preset(preset), dp);
    if (model.name == "OPT-125M") {
        // Decoder model: prefill plus 8 decode steps (batch 32).
        const InferenceReport pre = runner.prefill(model, 32, 128);
        const InferenceReport dec = runner.decode(model, 32, 128, 8);
        return pre.timing.total + dec.timing.total;
    }
    return runner.prefill(model, 32, model.defaultSeqLen).timing.total;
}

} // namespace

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::header("Fig. 10", "end-to-end DNN model speedup over Naive PIM");
    struct Case {
        TransformerConfig model;
        const char* preset;
    };
    const Case cases[] = {
        {TransformerConfig::bertBase(), "W1A3"},
        {TransformerConfig::bertBase(), "W1A4"},
        {TransformerConfig::bertBase(), "W2A2"},
        {TransformerConfig::bertBase(), "W4A4"},
        {TransformerConfig::vitBase(), "W2A2"},
        {TransformerConfig::vitBase(), "W4A4"},
        {TransformerConfig::opt125m(), "W4A4"},
    };

    Table table({"model", "config", "NaivePIM", "LTC", "OP", "LoCaLUT"});
    std::vector<double> vsNaive, vsLtc, vsOp;
    for (const Case& c : cases) {
        const double tNaive =
            endToEndSeconds(c.model, c.preset, DesignPoint::NaivePim);
        const double tLtc =
            endToEndSeconds(c.model, c.preset, DesignPoint::Ltc);
        const double tOp =
            endToEndSeconds(c.model, c.preset, DesignPoint::OpLut);
        const double tLocalut =
            endToEndSeconds(c.model, c.preset, DesignPoint::LoCaLut);
        vsNaive.push_back(tNaive / tLocalut);
        vsLtc.push_back(tLtc / tLocalut);
        vsOp.push_back(tOp / tLocalut);
        table.addRow({c.model.name, c.preset, "1.000x",
                      Table::fmt(tNaive / tLtc, 3) + "x",
                      Table::fmt(tNaive / tOp, 3) + "x",
                      Table::fmt(tNaive / tLocalut, 3) + "x"});
    }
    table.print();

    bench::section("aggregates (paper Section VI-C)");
    bench::note("geomean LoCaLUT vs Naive: " +
                Table::fmt(bench::geomeanOf(vsNaive), 3) +
                "x   (paper: 1.77x)");
    bench::note("geomean LoCaLUT vs LTC:   " +
                Table::fmt(bench::geomeanOf(vsLtc), 3) +
                "x   (paper: 1.82x)");
    bench::note("geomean LoCaLUT vs OP:    " +
                Table::fmt(bench::geomeanOf(vsOp), 3) +
                "x   (paper: ~1.22x — the Section IV optimizations)");
    return 0;
}
