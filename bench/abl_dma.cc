/**
 * @file
 * Ablation (beyond the paper's figures): sensitivity of the slice-
 * streaming decision to the MRAM<->WRAM DMA rate.  Eq. 6 predicts the
 * break-even M grows as the DRAM-to-buffer bandwidth gap widens; this
 * sweep shows the planner flipping from streaming to buffer-resident as
 * DMA slows.
 */

#include "bench_util.h"

#include "common/table.h"
#include "nn/inference.h"

using namespace localut;

int
main(int argc, char** argv)
{
    bench::init(argc, argv);
    bench::header("Ablation", "DMA-rate sensitivity of slice streaming");
    const QuantConfig cfg = QuantConfig::preset("W2A2");

    Table table({"DMA B/cycle", "break-even M (Eq. 6)",
                 "plan @ M=768", "plan @ M=3072", "t(768)", "t(3072)"});
    for (double rate : {1.0, 2.0, 4.0, 6.0, 12.0}) {
        PimSystemConfig sys = PimSystemConfig::upmemServer();
        sys.dpu.dmaBytesPerCycle = rate;
        const GemmEngine engine(sys);
        const PerfModel model(sys.dpu, cfg);
        const double breakEven =
            model.pDramMax() > model.pLocalMax()
                ? model.breakEvenM(model.pDramMax(), model.pLocalMax())
                : 0.0;
        std::vector<std::string> row = {Table::fmt(rate, 3),
                                        Table::fmt(breakEven, 4)};
        std::vector<std::string> times;
        for (std::size_t m : {768u, 3072u}) {
            const GemmProblem problem =
                makeShapeOnlyProblem(m, 768, 128, cfg);
            const GemmPlan plan = engine.plan(problem, DesignPoint::LoCaLut);
            const double t = engine.run(problem, plan, false).timing.total;
            row.push_back(std::string(plan.streaming ? "stream" : "buffer") +
                          " p=" + std::to_string(plan.p));
            times.push_back(bench::fmtSeconds(t));
        }
        row.insert(row.end(), times.begin(), times.end());
        table.addRow(std::move(row));
    }
    table.print();
    bench::note("Slower DMA raises the slice-load term of Eq. 2, pushing "
                "the Eq. 6 break-even M up until streaming stops paying "
                "off at these shapes.");
    return 0;
}
