/**
 * @file
 * Design-space explorer: walks the capacity model (paper Eq. 1 / Fig. 6)
 * and the performance model (Eq. 2-6) interactively over the command-line
 * arguments, showing how p*, placement, and k are chosen — then runs the
 * same GEMM through every registered backend for a cross-device view.
 *
 * Usage: example_design_explorer [preset [M K N]]
 *        e.g. example_design_explorer W2A2 3072 768 128
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "localut.h"

int
main(int argc, char** argv)
{
    using namespace localut;

    const std::string preset = argc > 1 ? argv[1] : "W1A3";
    const std::size_t m = argc > 4 ? std::strtoul(argv[2], nullptr, 10) : 3072;
    const std::size_t k = argc > 4 ? std::strtoul(argv[3], nullptr, 10) : 768;
    const std::size_t n = argc > 4 ? std::strtoul(argv[4], nullptr, 10) : 128;

    const QuantConfig config = QuantConfig::preset(preset);
    const PimSystemConfig system = PimSystemConfig::upmemServer();

    std::printf("config %s on (M,K,N) = (%zu, %zu, %zu)\n\n",
                config.name().c_str(), m, k, n);

    std::printf("capacity model (paper Eq. 1 / Fig. 6):\n");
    std::printf("%-3s %-14s %-14s %-14s %-10s\n", "p", "op-packed",
                "canonical", "reordering", "reduction");
    const auto fmtBytes = [](std::uint64_t bytes) {
        // A saturated count is a floor on a size that overflowed 64
        // bits, not a value; never print the sentinel as if it were one.
        return lutBytesSaturated(bytes)
                   ? std::string(">2^64")
                   : std::to_string(bytes);
    };
    for (unsigned p = 1; p <= 8; ++p) {
        const LutShape shape(config, p);
        std::printf("%-3u %-14s %-14s %-14s %-10.3f\n", p,
                    fmtBytes(opPackedLutBytes(shape)).c_str(),
                    fmtBytes(canonicalLutBytes(shape)).c_str(),
                    fmtBytes(reorderingLutBytes(shape)).c_str(),
                    totalReductionRate(shape));
    }

    const PerfModel model(system.dpu, config);
    std::printf("\nperformance model (paper Eq. 2-6): p_local = %u, "
                "p_DRAM = %u\n", model.pLocalMax(), model.pDramMax());
    if (model.pDramMax() > model.pLocalMax()) {
        std::printf("Eq. 6 break-even per-DPU M for streaming at p = %u: "
                    "%.1f rows\n", model.pDramMax(),
                    model.breakEvenM(model.pDramMax(), model.pLocalMax()));
    }

    InferenceSession session(makeBackend("upmem"));
    const GemmProblem problem = makeShapeOnlyProblem(m, k, n, config);
    const GemmPlan plan = session.plan(problem, DesignPoint::LoCaLut);
    const GemmResult result = session.backend().execute(problem, plan,
                                                        false);
    std::printf("\nplanner decision: p* = %u, k = %u, %s, grid %ux%u\n",
                plan.p, plan.kSlices,
                plan.streaming ? "slice streaming" : "buffer-resident LUT",
                plan.gM, plan.gN);
    std::printf("predicted (Eq. 2/4, LUT terms only): %.3f ms\n",
                plan.predictedSeconds * 1e3);
    std::printf("simulated end-to-end:                %.3f ms\n",
                result.timing.total * 1e3);
    std::printf("  of which DPU kernel %.3f ms, host %.3f ms, link %.3f ms\n",
                result.timing.dpuSeconds * 1e3,
                result.timing.hostSeconds * 1e3,
                result.timing.linkSeconds * 1e3);

    // Cross-backend view: the same GEMM on every registered device model
    // (LoCaLUT where supported, each backend's best fit otherwise).
    std::printf("\ncross-backend view (LoCaLUT where supported):\n");
    for (const std::string& name : backendNames()) {
        const BackendPtr backend = makeBackend(name);
        const DesignPoint dp =
            backend->capabilities().supports(DesignPoint::LoCaLut)
                ? DesignPoint::LoCaLut
                : backend->capabilities().designPoints.front();
        const GemmResult r = backend->execute(problem, dp, false);
        std::printf("  %-10s [%-9s] %10.3f ms  %8.2f mJ  (%s)\n",
                    name.c_str(), designPointName(dp),
                    r.timing.total * 1e3, r.energy.total * 1e3,
                    backend->capabilities().description.c_str());
    }
    return 0;
}
