/**
 * @file
 * Serving demo: the SLO-aware request scheduler over a multi-rank
 * session.  Interactive decode steps and batch prefills arrive with
 * deadlines; the scheduler projects their cost from the PlanCache,
 * sheds what cannot meet its deadline, places what can onto warm ranks
 * (LUT residency aware), and the telemetry layer reports per-lane
 * latency quantiles plus a Prometheus-style dump.
 *
 * Build & run:  cmake -B build && cmake --build build -j
 *               ./build/example_serving_demo
 */

#include <cstdio>
#include <vector>

#include "localut.h"

int
main()
{
    using namespace localut;

    // 1. A 4-rank session with LUT residency: each rank is a data-
    //    parallel replica with its own MRAM table budget.
    SessionOptions sessionOptions;
    sessionOptions.numRanks = 4;
    sessionOptions.residencyPolicy = ResidencyPolicy::CostAware;
    InferenceSession session(makeBackend("upmem"), sessionOptions);
    RequestScheduler scheduler(session);

    // 2. Compile the two request classes once.  compileUnsharded()
    //    plans whole-request replicas (one rank each); the session's
    //    compile() would instead cut tensor-parallel gangs across all
    //    four ranks.
    const QuantConfig quant = QuantConfig::preset("W4A4");
    const auto decodeStep = session.compileUnsharded(
        WorkloadSpec::decode(TransformerConfig::opt125m(), 8, 128, 1),
        quant, DesignPoint::LoCaLut);
    const auto prefill = session.compileUnsharded(
        WorkloadSpec::prefill(TransformerConfig::opt125m(), 4, 128),
        quant, DesignPoint::LoCaLut);
    const double decodeService =
        session.projectCost(decodeStep).totalSeconds();
    const double prefillService =
        session.projectCost(prefill).totalSeconds();
    std::printf("projected service: decode step %.3f ms, prefill %.3f "
                "ms\n\n",
                decodeService * 1e3, prefillService * 1e3);

    // 3. An open-loop arrival burst: decode steps every 0.4 decode-
    //    services (2.5x one rank's capacity — the scheduler must spread
    //    and shed), one batch prefill every 8th arrival.
    std::vector<AdmissionDecision> decisions;
    double t = 0;
    for (int i = 0; i < 48; ++i) {
        t += 0.4 * decodeService;
        const bool isPrefill = i % 8 == 7;
        ServingRequest request =
            isPrefill
                ? ServingRequest::workloadRequest(
                      prefill, DeadlineClass::Batch,
                      /*deadline=*/20.0 * prefillService)
                : ServingRequest::workloadRequest(
                      decodeStep, DeadlineClass::Interactive,
                      /*deadline=*/3.0 * decodeService);
        request.arrivalSeconds = t;
        decisions.push_back(scheduler.submit(std::move(request)));
    }

    // 4. Collect.  Every admitted request reports its virtual-time
    //    sample; shed ones return just the decision.
    std::printf("%-4s %-11s %-8s %-6s %10s %10s %9s\n", "id", "lane",
                "outcome", "rank", "queue", "latency", "deadline");
    for (const AdmissionDecision& decision : decisions) {
        const ServingResult r = scheduler.wait(decision.id);
        if (!r.decision.admitted()) {
            std::printf("%-4llu %-11s %-8s %-6s %10s %10s %9s\n",
                        static_cast<unsigned long long>(r.decision.id),
                        deadlineClassName(r.decision.lane),
                        admissionOutcomeName(r.decision.outcome), "-",
                        "-", "-", "-");
            continue;
        }
        std::printf(
            "%-4llu %-11s %-8s %-6u %8.3f ms %8.3f ms %9s\n",
            static_cast<unsigned long long>(r.decision.id),
            deadlineClassName(r.decision.lane), "admitted",
            r.decision.rank, r.sample.queueDelaySeconds() * 1e3,
            r.sample.latencySeconds() * 1e3,
            r.sample.deadlineMet() ? "met" : "MISSED");
    }

    // 5. Telemetry: per-lane quantiles and the admission counters.
    const TelemetrySnapshot snap = scheduler.telemetry().snapshot();
    const auto inter =
        static_cast<std::size_t>(DeadlineClass::Interactive);
    std::printf("\ninteractive: %llu admitted, %llu shed; latency p50 "
                "%.3f ms, p95 %.3f ms, p99 %.3f ms; deadlines met "
                "%llu/%llu\n",
                static_cast<unsigned long long>(snap.admitted[inter]),
                static_cast<unsigned long long>(
                    snap.shedDeadline[inter]),
                snap.lanes[inter].latency.p50() * 1e3,
                snap.lanes[inter].latency.p95() * 1e3,
                snap.lanes[inter].latency.p99() * 1e3,
                static_cast<unsigned long long>(
                    snap.lanes[inter].deadlineMet),
                static_cast<unsigned long long>(
                    snap.lanes[inter].completed));
    const ResidencyStats residency = session.residencyStats();
    std::printf("residency: %llu table sets resident, hit rate %.1f%%\n",
                static_cast<unsigned long long>(residency.tableSets),
                100.0 * residency.hitRate());

    // 6. The Prometheus text dump a scrape endpoint would serve.
    std::printf("\n--- telemetry scrape (excerpt) ---\n");
    const std::string text = scheduler.telemetry().prometheusText();
    std::printf("%.*s...\n", 600, text.c_str());
    return 0;
}
