/**
 * @file
 * OPT-125M autoregressive generation through the serving API: prefill of
 * a 128-token prompt followed by decode steps (paper Fig. 19a scenario),
 * dispatched as batched asynchronous requests on an InferenceSession.
 * Shows how the planner adapts the packing configuration to the skinny
 * decode GEMMs (N = batch) vs the wide prefill GEMMs (N = batch x seq),
 * how the PlanCache removes planner cost from repeated decode steps, and
 * that every design point produces the identical functional output on the
 * UPMEM backend and the host (reference) backend.
 */

#include <cstdio>
#include <vector>

#include "localut.h"

int
main()
{
    using namespace localut;

    const TransformerConfig model = TransformerConfig::opt125m();
    const QuantConfig config = QuantConfig::preset("W4A4");
    const unsigned batch = 32;
    const unsigned prompt = 128;

    std::printf("%s, W4A4, batch %u, prompt %u tokens\n\n",
                model.name.c_str(), batch, prompt);

    InferenceSession session(makeBackend("upmem"));

    // Show the planner's per-phase choices on the core GEMM shapes.
    for (const auto& [label, n] :
         std::initializer_list<std::pair<const char*, std::size_t>>{
             {"prefill GEMM (N = batch*seq)", std::size_t{batch} * prompt},
             {"decode GEMM  (N = batch)", std::size_t{batch}}}) {
        const GemmProblem gemm =
            makeShapeOnlyProblem(model.hidden, model.hidden, n, config);
        const GemmPlan plan = session.plan(gemm, DesignPoint::LoCaLut);
        std::printf("%-30s -> p=%u, k=%u, %s, grid %ux%u\n", label, plan.p,
                    plan.kSlices,
                    plan.streaming ? "streaming" : "buffer-resident",
                    plan.gM, plan.gN);
    }

    // Compile the phases once, then submit every decode length as an
    // asynchronous batched request; the session's workers overlap them.
    const auto prefillWork =
        session.compile(WorkloadSpec::prefill(model, batch, prompt), config,
                        DesignPoint::LoCaLut);

    const std::vector<unsigned> outputLengths = {4, 8, 16, 32};
    std::vector<InferenceSession::RequestId> localutIds, opIds;
    for (unsigned out : outputLengths) {
        localutIds.push_back(session.submit(
            session.compile(WorkloadSpec::decode(model, batch, prompt, out),
                            config, DesignPoint::LoCaLut)));
        opIds.push_back(session.submit(
            session.compile(WorkloadSpec::decode(model, batch, prompt, out),
                            config, DesignPoint::OpLut)));
    }
    const auto prefillId = session.submit(prefillWork);
    const double pre = session.waitReport(prefillId).timing.total;

    std::printf("\n%-14s %-12s %-12s %-12s %s\n", "output tokens",
                "prefill", "decode", "total", "decode speedup vs OP");
    for (std::size_t i = 0; i < outputLengths.size(); ++i) {
        const double dec = session.waitReport(localutIds[i]).timing.total;
        const double decOp = session.waitReport(opIds[i]).timing.total;
        std::printf("%-14u %9.2f ms %9.2f ms %9.2f ms   %.2fx\n",
                    outputLengths[i], pre * 1e3, dec * 1e3,
                    (pre + dec) * 1e3, decOp / dec);
    }

    // The decode shapes repeat across requests, so after the first
    // compile every further decode length reuses cached plans.
    const PlanCache::Stats stats = session.planCacheStats();
    std::printf("\nplan cache: %llu hits / %llu misses (%.0f%% hit rate, "
                "%zu plans)\n",
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses),
                100.0 * stats.hitRate(), stats.entries);
    if (stats.hits == 0) {
        std::printf("ERROR: decode steps did not reuse cached plans\n");
        return 1;
    }

    // Multi-backend parity: every design point, executed functionally on
    // the decode GEMM shape, must be bit-exact across the UPMEM backend
    // and the host reference backend.
    std::printf("\nfunctional parity on the decode GEMM "
                "(UPMEM vs host-cpu):\n");
    InferenceSession hostSession(makeBackend("host-cpu"));
    const GemmProblem decodeGemm = makeRandomProblem(
        model.hidden, model.hidden, batch, config, /*seed=*/1);
    bool allMatch = true;
    for (DesignPoint dp :
         {DesignPoint::NaivePim, DesignPoint::Ltc, DesignPoint::OpLutDram,
          DesignPoint::OpLut, DesignPoint::OpLc, DesignPoint::OpLcRc,
          DesignPoint::LoCaLut}) {
        const auto upmemId =
            session.submit(decodeGemm, dp, /*computeValues=*/true);
        const auto hostId =
            hostSession.submit(decodeGemm, dp, /*computeValues=*/true);
        const GemmResult upmemResult = session.wait(upmemId);
        const GemmResult hostResult = hostSession.wait(hostId);
        const bool match = upmemResult.outInt == hostResult.outInt;
        allMatch = allMatch && match;
        std::printf("  %-10s upmem %9.3f us | host-cpu %9.3f us | %s\n",
                    designPointName(dp), upmemResult.timing.total * 1e6,
                    hostResult.timing.total * 1e6,
                    match ? "bit-exact" : "MISMATCH!");
    }
    if (!allMatch) {
        std::printf("ERROR: backend outputs diverged\n");
        return 1;
    }

    // Tensor-parallel rank sharding: a session with numRanks > 1 cuts
    // every GEMM column-parallel across that many logical PIM ranks
    // (head-aligned for QKV), executes the shards concurrently on
    // per-rank work queues, and charges the all-gather explicitly —
    // bit-exact with the unsharded path, faster end to end.
    std::printf("\nsharded decode (8 output tokens) vs ranks:\n");
    double unshardedDecode = 0;
    for (unsigned ranks : {1u, 2u, 4u}) {
        SessionOptions options;
        options.numRanks = ranks;
        InferenceSession sharded(makeBackend("upmem"), options);
        const auto work =
            sharded.compile(WorkloadSpec::decode(model, batch, prompt, 8),
                            config, DesignPoint::LoCaLut);
        const InferenceReport report =
            sharded.waitReport(sharded.submit(work));
        if (ranks == 1) {
            unshardedDecode = report.timing.total;
        }
        const auto gemmId = sharded.submit(decodeGemm, DesignPoint::LoCaLut,
                                           /*computeValues=*/true);
        const bool exact = sharded.wait(gemmId).outInt ==
                           referenceGemmInt(decodeGemm.w, decodeGemm.a);
        std::printf("  ranks=%u  decode %9.2f ms  (all-gather %6.2f ms, "
                    "%.2fx vs 1 rank)  GEMM %s\n",
                    ranks, report.timing.total * 1e3,
                    report.collectiveSeconds * 1e3,
                    unshardedDecode / report.timing.total,
                    exact ? "bit-exact" : "MISMATCH!");
        if (!exact) {
            return 1;
        }
    }

    // LUT residency: with a residency policy enabled, the session tracks
    // which (layer, projection) table sets are MRAM-resident.  The first
    // decode step broadcasts every layer's canonical + reordering tables
    // host -> PIM (Phase::LutBroadcast); later steps find them resident
    // and pay nothing — cold-start vs steady-state serving, distinguished
    // in the report for the first time.
    std::printf("\nwarm decode with LUT residency "
                "(mramBudgetBytes = backend default):\n");
    SessionOptions resident;
    resident.residencyPolicy = ResidencyPolicy::CostAware;
    InferenceSession warmSession(makeBackend("upmem"), resident);
    const auto oneStep = warmSession.compile(
        WorkloadSpec::decode(model, batch, prompt, 1), config,
        DesignPoint::LoCaLut);
    double coldStep = 0, warmStep = 0;
    for (unsigned step = 0; step < 8; ++step) {
        const InferenceReport r =
            warmSession.waitReport(warmSession.submit(oneStep));
        if (step == 0) {
            coldStep = r.timing.total;
            std::printf("  step 1 (cold): %8.3f ms  (table broadcast "
                        "%.3f ms, %s)\n",
                        r.timing.total * 1e3,
                        r.lutBroadcastSeconds * 1e3,
                        r.coldStart() ? "cold start" : "warm");
        } else {
            warmStep = r.timing.total;
        }
    }
    const ResidencyStats resStats = warmSession.residencyStats();
    std::printf("  steps 2..8:    %8.3f ms  (steady state, no broadcast)\n",
                warmStep * 1e3);
    std::printf("  residency: %llu hits / %llu misses, %.2f MiB "
                "broadcast, %llu resident sets\n",
                static_cast<unsigned long long>(resStats.hits),
                static_cast<unsigned long long>(resStats.misses),
                resStats.broadcastBytes / (1024.0 * 1024.0),
                static_cast<unsigned long long>(resStats.tableSets));
    if (!(warmStep < coldStep)) {
        std::printf("ERROR: steady-state step is not below cold start\n");
        return 1;
    }
    return 0;
}
