/**
 * @file
 * OPT-125M autoregressive generation on the PIM system model: prefill of
 * a 128-token prompt followed by decode steps (paper Fig. 19a scenario).
 * Shows how the planner adapts the packing configuration to the skinny
 * decode GEMMs (N = batch) vs the wide prefill GEMMs (N = batch x seq).
 */

#include <cstdio>

#include "localut.h"

int
main()
{
    using namespace localut;

    const PimSystemConfig system = PimSystemConfig::upmemServer();
    const TransformerConfig model = TransformerConfig::opt125m();
    const QuantConfig config = QuantConfig::preset("W4A4");
    const unsigned batch = 32;
    const unsigned prompt = 128;

    std::printf("%s, W4A4, batch %u, prompt %u tokens\n\n",
                model.name.c_str(), batch, prompt);

    // Show the planner's per-phase choices on the core GEMM shapes.
    const GemmEngine engine(system);
    for (const auto& [label, n] :
         std::initializer_list<std::pair<const char*, std::size_t>>{
             {"prefill GEMM (N = batch*seq)", std::size_t{batch} * prompt},
             {"decode GEMM  (N = batch)", std::size_t{batch}}}) {
        const GemmProblem gemm =
            makeShapeOnlyProblem(model.hidden, model.hidden, n, config);
        const GemmPlan plan = engine.plan(gemm, DesignPoint::LoCaLut);
        std::printf("%-30s -> p=%u, k=%u, %s, grid %ux%u\n", label, plan.p,
                    plan.kSlices,
                    plan.streaming ? "streaming" : "buffer-resident",
                    plan.gM, plan.gN);
    }

    std::printf("\n%-14s %-12s %-12s %-12s %s\n", "output tokens",
                "prefill", "decode", "total", "decode speedup vs OP");
    for (unsigned out : {4u, 8u, 16u, 32u}) {
        const TransformerRunner op(system, config, DesignPoint::OpLut);
        const TransformerRunner lc(system, config, DesignPoint::LoCaLut);
        const double pre = lc.prefill(model, batch, prompt).timing.total;
        const double dec =
            lc.decode(model, batch, prompt, out).timing.total;
        const double decOp =
            op.decode(model, batch, prompt, out).timing.total;
        std::printf("%-14u %9.2f ms %9.2f ms %9.2f ms   %.2fx\n", out,
                    pre * 1e3, dec * 1e3, (pre + dec) * 1e3, decOp / dec);
    }
    return 0;
}
