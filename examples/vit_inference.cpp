/**
 * @file
 * ViT-Base image classification through the serving API, on two PIM
 * backends side by side: the UPMEM server model and the bank-level PIM
 * redesign (paper Section VI-K).  Also exercises the floating-point
 * symbol path (Fig. 21): LUT entries are precision-agnostic, so the same
 * machinery serves FP4 activation symbols — this example runs a real FP4
 * canonical-LUT GEMM and checks its numerics against the float reference.
 */

#include <cmath>
#include <cstdio>

#include "localut.h"

int
main()
{
    using namespace localut;

    const TransformerConfig model = TransformerConfig::vitBase();
    std::printf("%s: %u tokens per image (196 patches + CLS)\n\n",
                model.name.c_str(), model.defaultSeqLen);
    const WorkloadSpec prefill =
        WorkloadSpec::prefill(model, 32, model.defaultSeqLen);

    // Integer path: W2A2 and W4A4 as in the paper's Fig. 10, on both PIM
    // backends (LoCaLUT vs each backend's MAC baseline).
    for (const char* backendName : {"upmem", "bankpim"}) {
        InferenceSession session{std::string(backendName)};
        std::printf("%s backend:\n", backendName);
        for (const char* preset : {"W2A2", "W4A4"}) {
            const QuantConfig config = QuantConfig::preset(preset);
            const auto naiveId = session.submit(
                session.compile(prefill, config, DesignPoint::NaivePim));
            const auto localutId = session.submit(
                session.compile(prefill, config, DesignPoint::LoCaLut));
            const double tn = session.waitReport(naiveId).timing.total;
            const double tl = session.waitReport(localutId).timing.total;
            std::printf("  %s: MAC baseline %7.2f ms | LoCaLUT %7.2f ms "
                        "| %.2fx\n",
                        preset, tn * 1e3, tl * 1e3, tn / tl);
        }
    }

    // Floating-point symbols: FP4 activations through a canonical LUT
    // with fp16-rounded entries (numbers are just symbols to a LUT).
    std::printf("\nFP4-activation canonical-LUT GEMM (W1A4-fp):\n");
    const QuantConfig fpConfig = QuantConfig::fpPreset(1, 4);
    const GemmProblem problem = makeRandomProblem(64, 96, 16, fpConfig, 7);
    const auto exact = referenceGemmFloat(problem.w, problem.a);
    const auto viaLut = functional::canonicalFloat(
        problem, 4, functional::ReorderMode::SliceStream, 2);
    double maxRel = 0.0;
    for (std::size_t i = 0; i < exact.size(); ++i) {
        const double denom =
            std::max(1.0, static_cast<double>(std::fabs(exact[i])));
        maxRel = std::max(
            maxRel, static_cast<double>(std::fabs(viaLut[i] - exact[i])) /
                        denom);
    }
    std::printf("  max relative deviation vs float reference: %.4g "
                "(fp16 entry rounding only)\n", maxRel);
    return 0;
}
