/**
 * @file
 * ViT-Base image classification on the PIM system model, including the
 * floating-point symbol path (paper Section VI-K / Fig. 21): LUT entries
 * are precision-agnostic, so the same machinery serves FP4 activation
 * symbols — this example runs a real FP4 canonical-LUT GEMM and checks
 * its numerics against the float reference.
 */

#include <cmath>
#include <cstdio>

#include "localut.h"

int
main()
{
    using namespace localut;

    const PimSystemConfig system = PimSystemConfig::upmemServer();
    const TransformerConfig model = TransformerConfig::vitBase();
    std::printf("%s: %u tokens per image (196 patches + CLS)\n\n",
                model.name.c_str(), model.defaultSeqLen);

    // Integer path: W2A2 and W4A4 as in the paper's Fig. 10.
    for (const char* preset : {"W2A2", "W4A4"}) {
        const TransformerRunner naive(system, QuantConfig::preset(preset),
                                      DesignPoint::NaivePim);
        const TransformerRunner localut(system, QuantConfig::preset(preset),
                                        DesignPoint::LoCaLut);
        const double tn =
            naive.prefill(model, 32, model.defaultSeqLen).timing.total;
        const double tl =
            localut.prefill(model, 32, model.defaultSeqLen).timing.total;
        std::printf("%s: NaivePIM %7.2f ms | LoCaLUT %7.2f ms | %.2fx\n",
                    preset, tn * 1e3, tl * 1e3, tn / tl);
    }

    // Floating-point symbols: FP4 activations through a canonical LUT
    // with fp16-rounded entries (numbers are just symbols to a LUT).
    std::printf("\nFP4-activation canonical-LUT GEMM (W1A4-fp):\n");
    const QuantConfig fpConfig = QuantConfig::fpPreset(1, 4);
    const GemmProblem problem = makeRandomProblem(64, 96, 16, fpConfig, 7);
    const auto exact = referenceGemmFloat(problem.w, problem.a);
    const auto viaLut = functional::canonicalFloat(
        problem, 4, functional::ReorderMode::SliceStream, 2);
    double maxRel = 0.0;
    for (std::size_t i = 0; i < exact.size(); ++i) {
        const double denom =
            std::max(1.0, static_cast<double>(std::fabs(exact[i])));
        maxRel = std::max(
            maxRel, static_cast<double>(std::fabs(viaLut[i] - exact[i])) /
                        denom);
    }
    std::printf("  max relative deviation vs float reference: %.4g "
                "(fp16 entry rounding only)\n", maxRel);
    return 0;
}
