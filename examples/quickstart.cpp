/**
 * @file
 * Quickstart: quantize a small GEMM, run it through every design point on
 * the modeled UPMEM server, verify all LUT designs agree bit-exactly with
 * the reference, and print the modeled time/energy.
 *
 * Build & run:  cmake -B build -G Ninja && cmake --build build
 *               ./build/examples/example_quickstart
 */

#include <cstdio>

#include "localut.h"

int
main()
{
    using namespace localut;

    // 1. A PIM system model: the paper's 32-rank UPMEM server (2048 DPUs,
    //    64 MB MRAM + 64 KB WRAM per DPU, 350 MHz in-order cores).
    const PimSystemConfig system = PimSystemConfig::upmemServer();
    const GemmEngine engine(system);

    // 2. A quantized GEMM problem: W1A3 = signed-binary weights, 3-bit
    //    two's-complement activations (paper Fig. 2).
    const QuantConfig config = QuantConfig::preset("W1A3");
    const GemmProblem problem = makeRandomProblem(256, 256, 64, config);

    // 3. Run the full LoCaLUT stack and the baselines.
    const auto reference = referenceGemmInt(problem.w, problem.a);
    std::printf("%-10s %-12s %-8s %-6s %-9s %s\n", "design", "time",
                "energy", "p", "stream", "bit-exact");
    for (DesignPoint dp :
         {DesignPoint::NaivePim, DesignPoint::Ltc, DesignPoint::OpLut,
          DesignPoint::OpLc, DesignPoint::OpLcRc, DesignPoint::LoCaLut}) {
        const GemmPlan plan = engine.plan(problem, dp);
        const GemmResult result = engine.run(problem, plan);
        std::printf("%-10s %9.3f us %6.2f mJ %-6u %-9s %s\n",
                    designPointName(dp), result.timing.total * 1e6,
                    result.energy.total * 1e3, plan.p,
                    plan.streaming ? "yes" : "no",
                    result.outInt == reference ? "yes" : "NO!");
    }

    // 4. Inspect the planner's reasoning for LoCaLUT.
    const GemmPlan plan = engine.plan(problem, DesignPoint::LoCaLut);
    std::printf("\nLoCaLUT plan: p=%u, k=%u, %s, grid %ux%u "
                "(%u DPUs), WRAM LUT bytes=%llu\n",
                plan.p, plan.kSlices,
                plan.streaming ? "slice streaming" : "buffer-resident",
                plan.gM, plan.gN, plan.dpusUsed(),
                static_cast<unsigned long long>(plan.lutWramBytes));
    return 0;
}
