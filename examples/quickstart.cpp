/**
 * @file
 * Quickstart: pick a backend by name, open an InferenceSession on it,
 * submit a small quantized GEMM under every design point as batched
 * asynchronous requests, verify all LUT designs agree bit-exactly with
 * the reference, and print the modeled time/energy.
 *
 * Build & run:  cmake -B build && cmake --build build -j
 *               ./build/example_quickstart
 */

#include <cstdio>
#include <vector>

#include "localut.h"

int
main()
{
    using namespace localut;

    // 1. A backend: the paper's 32-rank UPMEM server (2048 DPUs, 64 MB
    //    MRAM + 64 KB WRAM per DPU, 350 MHz in-order cores).  "bankpim",
    //    "host-cpu" and "host-gpu" name the other built-in device models.
    const BackendPtr backend = makeBackend("upmem");
    std::printf("backend: %s (%s)\n", backend->name().c_str(),
                backend->capabilities().description.c_str());

    // 2. A quantized GEMM problem: W1A3 = signed-binary weights, 3-bit
    //    two's-complement activations (paper Fig. 2).
    const QuantConfig config = QuantConfig::preset("W1A3");
    const GemmProblem problem = makeRandomProblem(256, 256, 64, config);

    // 3. Submit the full LoCaLUT stack and the baselines as one batch;
    //    the session executes them concurrently on its worker pool.
    InferenceSession session(backend);
    const std::vector<DesignPoint> designs = {
        DesignPoint::NaivePim, DesignPoint::Ltc,  DesignPoint::OpLut,
        DesignPoint::OpLc,     DesignPoint::OpLcRc, DesignPoint::LoCaLut};
    std::vector<InferenceSession::RequestId> ids;
    for (DesignPoint dp : designs) {
        ids.push_back(session.submit(problem, dp, /*computeValues=*/true));
    }

    const auto reference = referenceGemmInt(problem.w, problem.a);
    std::printf("\n%-10s %-12s %-8s %-6s %-9s %s\n", "design", "time",
                "energy", "p", "stream", "bit-exact");
    for (std::size_t i = 0; i < designs.size(); ++i) {
        const GemmPlan plan = session.plan(problem, designs[i]);
        const GemmResult result = session.wait(ids[i]);
        std::printf("%-10s %9.3f us %6.2f mJ %-6u %-9s %s\n",
                    designPointName(designs[i]),
                    result.timing.total * 1e6, result.energy.total * 1e3,
                    plan.p, plan.streaming ? "yes" : "no",
                    result.outInt == reference ? "yes" : "NO!");
    }

    // 4. Inspect the planner's reasoning for LoCaLUT.  session.plan() is
    //    memoized: this lookup hits the plans the submits already cached.
    const GemmPlan plan = session.plan(problem, DesignPoint::LoCaLut);
    std::printf("\nLoCaLUT plan: p=%u, k=%u, %s, grid %ux%u "
                "(%u DPUs), WRAM LUT bytes=%llu\n",
                plan.p, plan.kSlices,
                plan.streaming ? "slice streaming" : "buffer-resident",
                plan.gM, plan.gN, plan.dpusUsed(),
                static_cast<unsigned long long>(plan.lutWramBytes));
    const PlanCache::Stats stats = session.planCacheStats();
    std::printf("plan cache: %llu hits / %llu misses\n",
                static_cast<unsigned long long>(stats.hits),
                static_cast<unsigned long long>(stats.misses));
    return 0;
}
