/**
 * @file
 * End-to-end BERT-base inference on the PIM system model (paper Fig. 8
 * execution flow): all GEMMs on the PIM banks under LoCaLUT, attention /
 * softmax / norms / GELU on the host.  Prints the phase breakdown that
 * corresponds to the paper's Fig. 16(a).
 */

#include <cstdio>

#include "localut.h"

int
main()
{
    using namespace localut;

    const PimSystemConfig system = PimSystemConfig::upmemServer();
    const TransformerConfig model = TransformerConfig::bertBase();
    std::printf("%s: %u layers, hidden %u, ~%.1fM transformer parameters\n",
                model.name.c_str(), model.layers, model.hidden,
                static_cast<double>(model.parameterCount()) / 1e6);

    const unsigned batch = 32;
    const unsigned seq = 128;
    std::printf("batch %u x seq %u  (GLUE-style maximum length)\n\n", batch,
                seq);

    for (const char* preset : {"W1A3", "W1A4", "W2A2", "W4A4"}) {
        const TransformerRunner naive(system, QuantConfig::preset(preset),
                                      DesignPoint::NaivePim);
        const TransformerRunner localut(system, QuantConfig::preset(preset),
                                        DesignPoint::LoCaLut);
        const InferenceReport rn = naive.prefill(model, batch, seq);
        const InferenceReport rl = localut.prefill(model, batch, seq);
        std::printf("%s: NaivePIM %7.2f ms | LoCaLUT %7.2f ms | "
                    "speedup %.2fx | energy %.1f J -> %.1f J\n",
                    preset, rn.timing.total * 1e3, rl.timing.total * 1e3,
                    rn.timing.total / rl.timing.total, rn.energy.total,
                    rl.energy.total);
    }

    // Phase breakdown for W1A3 (the paper's Fig. 16a categories).
    const TransformerRunner runner(system, QuantConfig::preset("W1A3"),
                                   DesignPoint::LoCaLut);
    const InferenceReport report = runner.prefill(model, batch, seq);
    std::printf("\nW1A3 phase breakdown (total %.2f ms):\n",
                report.timing.total * 1e3);
    for (const auto& [name, seconds] : report.timing.seconds.items()) {
        std::printf("  %-22s %8.3f ms  (%5.1f%%)\n", name.c_str(),
                    seconds * 1e3,
                    100.0 * seconds / report.timing.total);
    }
    return 0;
}
