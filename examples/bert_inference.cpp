/**
 * @file
 * End-to-end BERT-base inference through the serving API (paper Fig. 8
 * execution flow): compile the prefill workload once per configuration,
 * submit all configurations as batched asynchronous requests, and print
 * the phase breakdown that corresponds to the paper's Fig. 16(a).
 */

#include <cstdio>
#include <vector>

#include "localut.h"

int
main()
{
    using namespace localut;

    const TransformerConfig model = TransformerConfig::bertBase();
    std::printf("%s: %u layers, hidden %u, ~%.1fM transformer parameters\n",
                model.name.c_str(), model.layers, model.hidden,
                static_cast<double>(model.parameterCount()) / 1e6);

    const unsigned batch = 32;
    const unsigned seq = 128;
    std::printf("batch %u x seq %u  (GLUE-style maximum length)\n\n", batch,
                seq);
    const WorkloadSpec prefill = WorkloadSpec::prefill(model, batch, seq);

    // One session serves every configuration; submit the NaivePIM and
    // LoCaLUT variants of all four presets in one batch.
    InferenceSession session(makeBackend("upmem"));
    const std::vector<const char*> presets = {"W1A3", "W1A4", "W2A2",
                                              "W4A4"};
    std::vector<InferenceSession::RequestId> naiveIds, localutIds;
    for (const char* preset : presets) {
        const QuantConfig config = QuantConfig::preset(preset);
        naiveIds.push_back(session.submit(
            session.compile(prefill, config, DesignPoint::NaivePim)));
        localutIds.push_back(session.submit(
            session.compile(prefill, config, DesignPoint::LoCaLut)));
    }
    for (std::size_t i = 0; i < presets.size(); ++i) {
        const InferenceReport rn = session.waitReport(naiveIds[i]);
        const InferenceReport rl = session.waitReport(localutIds[i]);
        std::printf("%s: NaivePIM %7.2f ms | LoCaLUT %7.2f ms | "
                    "speedup %.2fx | energy %.1f J -> %.1f J\n",
                    presets[i], rn.timing.total * 1e3,
                    rl.timing.total * 1e3,
                    rn.timing.total / rl.timing.total, rn.energy.total,
                    rl.energy.total);
    }

    // Phase breakdown for W1A3 (the paper's Fig. 16a categories).
    const auto id = session.submit(session.compile(
        prefill, QuantConfig::preset("W1A3"), DesignPoint::LoCaLut));
    const InferenceReport report = session.waitReport(id);
    std::printf("\nW1A3 phase breakdown (total %.2f ms):\n",
                report.timing.total * 1e3);
    for (const auto& [name, seconds] : report.timing.seconds.items()) {
        std::printf("  %-22s %8.3f ms  (%5.1f%%)\n", name.c_str(),
                    seconds * 1e3,
                    100.0 * seconds / report.timing.total);
    }
    return 0;
}
