#include "kernels/functional.h"

#include "common/bitops.h"
#include "common/logging.h"
#include "kernels/exec_engine.h"

namespace localut {
namespace functional {

namespace {

/**
 * Synthetic plan for a direct functional call: the legacy entry points
 * specify (design point, p, reorder mode, slice window) explicitly, so
 * translate that into the engine's plan vocabulary.  All legacy entry
 * points run on the prepared-operand engine with an ad-hoc preparation
 * — one inner-loop implementation, identical outputs — while shared LUT
 * tables come from the global table cache so repeated calls stop
 * rebuilding them.
 */
GemmPlan
planFor(const GemmProblem& problem, DesignPoint design, unsigned p,
        bool streaming, unsigned kSlices)
{
    GemmPlan plan(design, problem.config());
    plan.m = problem.m();
    plan.k = problem.k();
    plan.n = problem.n();
    plan.p = p;
    plan.streaming = streaming;
    plan.kSlices = std::max(1u, kSlices);
    plan.groups =
        static_cast<unsigned>(ceilDiv(plan.k, std::size_t{plan.p}));
    return plan;
}

DesignPoint
designForMode(ReorderMode mode)
{
    switch (mode) {
      case ReorderMode::Explicit:    return DesignPoint::OpLc;
      case ReorderMode::ReorderLut:  return DesignPoint::OpLcRc;
      case ReorderMode::SliceStream: return DesignPoint::LoCaLut;
    }
    LOCALUT_PANIC("invalid reorder mode");
}

} // namespace

std::vector<std::int32_t>
naiveInt(const GemmProblem& problem)
{
    return referenceGemmInt(problem.w, problem.a);
}

std::vector<float>
naiveFloat(const GemmProblem& problem)
{
    return referenceGemmFloat(problem.w, problem.a);
}

std::vector<std::int32_t>
ltcInt(const GemmProblem& problem)
{
    const GemmPlan plan =
        planFor(problem, DesignPoint::Ltc, 1, false, 1);
    std::vector<std::int32_t> out;
    executeGemmInt(problem, plan, {}, out);
    return out;
}

std::vector<std::int32_t>
opInt(const GemmProblem& problem, unsigned p)
{
    const GemmPlan plan =
        planFor(problem, DesignPoint::OpLut, p, false, 1);
    std::vector<std::int32_t> out;
    executeGemmInt(problem, plan, {}, out);
    return out;
}

std::vector<float>
opFloat(const GemmProblem& problem, unsigned p)
{
    const GemmPlan plan =
        planFor(problem, DesignPoint::OpLut, p, false, 1);
    std::vector<float> out;
    executeGemmFloat(problem, plan, {}, out);
    return out;
}

std::vector<std::int32_t>
canonicalInt(const GemmProblem& problem, unsigned p, ReorderMode mode,
             unsigned kSlices)
{
    const GemmPlan plan =
        planFor(problem, designForMode(mode), p,
                mode == ReorderMode::SliceStream, kSlices);
    std::vector<std::int32_t> out;
    executeGemmInt(problem, plan, {}, out);
    return out;
}

std::vector<float>
canonicalFloat(const GemmProblem& problem, unsigned p, ReorderMode mode,
               unsigned kSlices)
{
    const GemmPlan plan =
        planFor(problem, designForMode(mode), p,
                mode == ReorderMode::SliceStream, kSlices);
    std::vector<float> out;
    executeGemmFloat(problem, plan, {}, out);
    return out;
}

std::vector<float>
opFloatVirtual(const GemmProblem& problem, unsigned p)
{
    const QuantizedMatrix& w = problem.w;
    const QuantizedMatrix& a = problem.a;
    const std::size_t m = w.rows, k = w.cols, n = a.cols;
    const unsigned groups = static_cast<unsigned>(ceilDiv(k, std::size_t{p}));
    std::vector<float> out(m * n, 0.0f);
    for (std::size_t mm = 0; mm < m; ++mm) {
        for (std::size_t nn = 0; nn < n; ++nn) {
            float acc = 0.0f;
            for (unsigned g = 0; g < groups; ++g) {
                float entry = 0.0f;
                for (unsigned i = 0; i < p; ++i) {
                    const std::size_t kk =
                        static_cast<std::size_t>(g) * p + i;
                    const std::uint16_t wc =
                        kk < k ? w.at(mm, kk) : std::uint16_t{0};
                    const std::uint16_t ac =
                        kk < k ? a.at(kk, nn) : std::uint16_t{0};
                    entry += w.codec.decode(wc) * a.codec.decode(ac);
                }
                // The entry the packed LUT would have stored (b_o = 2).
                acc += roundToFp16(entry);
            }
            out[mm * n + nn] = acc;
        }
    }
    return out;
}

} // namespace functional
} // namespace localut
