#include "kernels/functional.h"

#include <array>
#include <memory>

#include "common/bitops.h"
#include "common/logging.h"
#include "kernels/cost_tables.h"
#include "lut/canonical_lut.h"
#include "lut/canonicalizer.h"
#include "lut/packed_lut.h"
#include "lut/reordering_lut.h"

namespace localut {
namespace functional {

namespace {

/** Padded activation group codes at (group, column): code 0 decodes to a
 *  zero value for every activation codec, annihilating any weight pad. */
std::uint16_t
actCodeAt(const QuantizedMatrix& a, std::size_t k, std::size_t n)
{
    return k < a.rows ? a.at(k, n) : std::uint16_t{0};
}

std::uint16_t
wCodeAt(const QuantizedMatrix& w, std::size_t m, std::size_t k)
{
    return k < w.cols ? w.at(m, k) : std::uint16_t{0};
}

/** Packed weight vectors, wIdx[m * groups + g]. */
std::vector<std::uint64_t>
packWeights(const QuantizedMatrix& w, unsigned p, unsigned groups)
{
    const unsigned bw = w.codec.bits();
    std::vector<std::uint64_t> packed(w.rows * groups);
    std::vector<std::uint16_t> codes(p);
    for (std::size_t m = 0; m < w.rows; ++m) {
        for (unsigned g = 0; g < groups; ++g) {
            for (unsigned i = 0; i < p; ++i) {
                codes[i] = wCodeAt(w, m, static_cast<std::size_t>(g) * p + i);
            }
            packed[m * groups + g] = packCodes(codes, bw);
        }
    }
    return packed;
}

/**
 * Affine bit decomposition of an integer codec: decodeInt(code) =
 * sum_j coeff[j] * bit_j(code) + base.  Holds for all integer codecs
 * (unsigned, two's complement, signed binary) and is the algebra behind
 * the LTC bit-serial baseline.
 */
struct BitAffine {
    std::vector<std::int64_t> coeff;
    std::int64_t base = 0;
};

BitAffine
bitAffine(ValueCodec codec)
{
    BitAffine ba;
    ba.base = codec.decodeInt(0);
    ba.coeff.resize(codec.bits());
    for (unsigned j = 0; j < codec.bits(); ++j) {
        // decode is affine in the bits: coeff_j = f(2^j) - f(0).
        ba.coeff[j] = codec.decodeInt(1u << j) - ba.base;
    }
    return ba;
}

} // namespace

std::vector<std::int32_t>
naiveInt(const GemmProblem& problem)
{
    return referenceGemmInt(problem.w, problem.a);
}

std::vector<float>
naiveFloat(const GemmProblem& problem)
{
    return referenceGemmFloat(problem.w, problem.a);
}

std::vector<std::int32_t>
ltcInt(const GemmProblem& problem)
{
    const QuantizedMatrix& w = problem.w;
    const QuantizedMatrix& a = problem.a;
    const std::size_t m = w.rows, k = w.cols, n = a.cols;
    const unsigned g = cost::kLtcGroupSize;
    const unsigned groups = static_cast<unsigned>(ceilDiv(k, std::size_t{g}));
    const BitAffine wb = bitAffine(w.codec);
    const unsigned bw = w.codec.bits();

    std::vector<std::int32_t> out(m * n, 0);
    // Tables are built per activation column and reused across all weight
    // rows, exactly like the kernel.
    std::vector<std::int32_t> table(groups * cost::kLtcTableEntries);
    for (std::size_t nn = 0; nn < n; ++nn) {
        std::int64_t colSum = 0;
        for (unsigned gg = 0; gg < groups; ++gg) {
            std::array<std::int32_t, 4> av{};
            for (unsigned i = 0; i < g; ++i) {
                const std::size_t kk = static_cast<std::size_t>(gg) * g + i;
                av[i] = kk < k ? a.codec.decodeInt(a.at(kk, nn)) : 0;
                colSum += av[i];
            }
            for (unsigned idx = 0; idx < cost::kLtcTableEntries; ++idx) {
                std::int32_t sum = 0;
                for (unsigned i = 0; i < g; ++i) {
                    if (idx & (1u << i)) {
                        sum += av[i];
                    }
                }
                table[gg * cost::kLtcTableEntries + idx] = sum;
            }
        }
        for (std::size_t mm = 0; mm < m; ++mm) {
            std::int64_t acc = 0;
            for (unsigned j = 0; j < bw; ++j) {
                std::int64_t planeSum = 0;
                for (unsigned gg = 0; gg < groups; ++gg) {
                    unsigned idx = 0;
                    for (unsigned i = 0; i < g; ++i) {
                        const std::size_t kk =
                            static_cast<std::size_t>(gg) * g + i;
                        if (kk < k && ((w.at(mm, kk) >> j) & 1u)) {
                            idx |= 1u << i;
                        }
                    }
                    planeSum += table[gg * cost::kLtcTableEntries + idx];
                }
                acc += wb.coeff[j] * planeSum;
            }
            acc += wb.base * colSum;
            out[mm * n + nn] = static_cast<std::int32_t>(acc);
        }
    }
    return out;
}

std::vector<std::int32_t>
opInt(const GemmProblem& problem, unsigned p)
{
    const QuantizedMatrix& w = problem.w;
    const QuantizedMatrix& a = problem.a;
    const std::size_t m = w.rows, k = w.cols, n = a.cols;
    const unsigned groups = static_cast<unsigned>(ceilDiv(k, std::size_t{p}));
    const LutShape shape(problem.config(), p);
    const OperationPackedLut lut(shape);

    const std::vector<std::uint64_t> wIdx = packWeights(w, p, groups);
    std::vector<std::uint64_t> aIdx(groups * n);
    std::vector<std::uint16_t> codes(p);
    for (unsigned g = 0; g < groups; ++g) {
        for (std::size_t nn = 0; nn < n; ++nn) {
            for (unsigned i = 0; i < p; ++i) {
                codes[i] =
                    actCodeAt(a, static_cast<std::size_t>(g) * p + i, nn);
            }
            aIdx[g * n + nn] = packCodes(codes, a.codec.bits());
        }
    }

    std::vector<std::int32_t> out(m * n, 0);
    for (std::size_t mm = 0; mm < m; ++mm) {
        for (std::size_t nn = 0; nn < n; ++nn) {
            std::int32_t acc = 0;
            for (unsigned g = 0; g < groups; ++g) {
                acc += lut.lookupInt(wIdx[mm * groups + g],
                                     aIdx[g * n + nn]);
            }
            out[mm * n + nn] = acc;
        }
    }
    return out;
}

std::vector<float>
opFloat(const GemmProblem& problem, unsigned p)
{
    const QuantizedMatrix& w = problem.w;
    const QuantizedMatrix& a = problem.a;
    const std::size_t m = w.rows, k = w.cols, n = a.cols;
    const unsigned groups = static_cast<unsigned>(ceilDiv(k, std::size_t{p}));
    const LutShape shape(problem.config(), p);
    const OperationPackedLut lut(shape);

    const std::vector<std::uint64_t> wIdx = packWeights(w, p, groups);
    std::vector<std::uint64_t> aIdx(groups * n);
    std::vector<std::uint16_t> codes(p);
    for (unsigned g = 0; g < groups; ++g) {
        for (std::size_t nn = 0; nn < n; ++nn) {
            for (unsigned i = 0; i < p; ++i) {
                codes[i] =
                    actCodeAt(a, static_cast<std::size_t>(g) * p + i, nn);
            }
            aIdx[g * n + nn] = packCodes(codes, a.codec.bits());
        }
    }

    std::vector<float> out(m * n, 0.0f);
    for (std::size_t mm = 0; mm < m; ++mm) {
        for (std::size_t nn = 0; nn < n; ++nn) {
            float acc = 0.0f;
            for (unsigned g = 0; g < groups; ++g) {
                acc += lut.lookupFloat(wIdx[mm * groups + g],
                                       aIdx[g * n + nn]);
            }
            out[mm * n + nn] = acc;
        }
    }
    return out;
}

std::vector<float>
opFloatVirtual(const GemmProblem& problem, unsigned p)
{
    const QuantizedMatrix& w = problem.w;
    const QuantizedMatrix& a = problem.a;
    const std::size_t m = w.rows, k = w.cols, n = a.cols;
    const unsigned groups = static_cast<unsigned>(ceilDiv(k, std::size_t{p}));
    std::vector<float> out(m * n, 0.0f);
    for (std::size_t mm = 0; mm < m; ++mm) {
        for (std::size_t nn = 0; nn < n; ++nn) {
            float acc = 0.0f;
            for (unsigned g = 0; g < groups; ++g) {
                float entry = 0.0f;
                for (unsigned i = 0; i < p; ++i) {
                    const std::size_t kk =
                        static_cast<std::size_t>(g) * p + i;
                    entry += w.codec.decode(wCodeAt(w, mm, kk)) *
                             a.codec.decode(actCodeAt(a, kk, nn));
                }
                // The entry the packed LUT would have stored (b_o = 2).
                acc += roundToFp16(entry);
            }
            out[mm * n + nn] = acc;
        }
    }
    return out;
}

namespace {

/** Host-side canonicalization of every activation group instance. */
struct CanonicalPrep {
    std::vector<std::uint64_t> msRank;  ///< [g * n + nn]
    std::vector<std::uint32_t> permRank;
    std::vector<std::uint8_t> perm;     ///< [(g * n + nn) * p + i]
};

CanonicalPrep
prepare(const QuantizedMatrix& a, unsigned p, unsigned groups)
{
    const std::size_t n = a.cols;
    const LutShape probe(ValueCodec::signedBinary(), a.codec, p);
    const ActivationCanonicalizer canon(probe);
    CanonicalPrep prep;
    prep.msRank.resize(groups * n);
    prep.permRank.resize(groups * n);
    prep.perm.resize(static_cast<std::size_t>(groups) * n * p);
    std::vector<std::uint16_t> codes(p);
    for (unsigned g = 0; g < groups; ++g) {
        for (std::size_t nn = 0; nn < n; ++nn) {
            for (unsigned i = 0; i < p; ++i) {
                codes[i] =
                    actCodeAt(a, static_cast<std::size_t>(g) * p + i, nn);
            }
            const CanonicalGroup cg = canon.canonicalize(codes);
            const std::size_t at = g * n + nn;
            prep.msRank[at] = cg.multisetRank;
            prep.permRank[at] = cg.permRank;
            std::vector<std::uint8_t> perm(p);
            permutationUnrank(cg.permRank, perm);
            std::copy(perm.begin(), perm.end(),
                      prep.perm.begin() +
                          static_cast<std::ptrdiff_t>(at * p));
        }
    }
    return prep;
}

/** Explicit unpack/permute/repack — the work the reordering LUT removes. */
std::uint64_t
explicitReorder(std::uint64_t wIdx, const std::uint8_t* perm, unsigned p,
                unsigned bw)
{
    std::uint64_t reordered = 0;
    for (unsigned i = 0; i < p; ++i) {
        const std::uint64_t code = extractField(wIdx, perm[i], bw);
        reordered |= code << (i * bw);
    }
    return reordered;
}

} // namespace

namespace {

/** Builds the reordering LUT only for the modes that index it (the
 *  Explicit mode is numerically identical and avoids materializing huge
 *  tables during large-p accuracy sweeps). */
std::unique_ptr<ReorderingLut>
maybeReorderLut(const LutShape& shape, ReorderMode mode)
{
    if (mode == ReorderMode::Explicit) {
        return nullptr;
    }
    return std::make_unique<ReorderingLut>(shape);
}

} // namespace

std::vector<std::int32_t>
canonicalInt(const GemmProblem& problem, unsigned p, ReorderMode mode,
             unsigned kSlices)
{
    const QuantizedMatrix& w = problem.w;
    const QuantizedMatrix& a = problem.a;
    const std::size_t m = w.rows, k = w.cols, n = a.cols;
    const unsigned bw = w.codec.bits();
    const unsigned groups = static_cast<unsigned>(ceilDiv(k, std::size_t{p}));
    const LutShape shape(problem.config(), p);
    const CanonicalLut canon(shape);
    const std::unique_ptr<ReorderingLut> reorderLut =
        maybeReorderLut(shape, mode);

    const std::vector<std::uint64_t> wIdx = packWeights(w, p, groups);
    const CanonicalPrep prep = prepare(a, p, groups);

    std::vector<std::int32_t> out(m * n, 0);
    if (mode != ReorderMode::SliceStream) {
        for (std::size_t mm = 0; mm < m; ++mm) {
            for (std::size_t nn = 0; nn < n; ++nn) {
                std::int32_t acc = 0;
                for (unsigned g = 0; g < groups; ++g) {
                    const std::size_t at = g * n + nn;
                    const std::uint64_t wi = wIdx[mm * groups + g];
                    const std::uint64_t reordered =
                        mode == ReorderMode::Explicit
                            ? explicitReorder(wi, &prep.perm[at * p], p, bw)
                            : reorderLut->lookup(prep.permRank[at], wi);
                    acc += canon.lookupInt(prep.msRank[at], reordered);
                }
                out[mm * n + nn] = acc;
            }
        }
        return out;
    }

    // Slice streaming: iterate (column, slice batch) exactly like the
    // kernel — materialize k (canonical, reordering) column-slice pairs,
    // then sweep all weight rows against them.
    const std::uint64_t rows = shape.weightRows();
    std::vector<std::int32_t> canonSlices;
    std::vector<std::uint32_t> reorderSlices;
    for (std::size_t nn = 0; nn < n; ++nn) {
        for (unsigned g0 = 0; g0 < groups; g0 += kSlices) {
            const unsigned batch =
                std::min(kSlices, groups - g0);
            canonSlices.assign(static_cast<std::size_t>(batch) * rows, 0);
            reorderSlices.assign(static_cast<std::size_t>(batch) * rows, 0);
            for (unsigned b = 0; b < batch; ++b) {
                const std::size_t at =
                    static_cast<std::size_t>(g0 + b) * n + nn;
                const auto col = canon.columnInt(prep.msRank[at]);
                std::copy(col.begin(), col.end(),
                          canonSlices.begin() +
                              static_cast<std::ptrdiff_t>(b * rows));
                for (std::uint64_t r = 0; r < rows; ++r) {
                    reorderSlices[b * rows + r] =
                        reorderLut->lookup(prep.permRank[at], r);
                }
            }
            for (std::size_t mm = 0; mm < m; ++mm) {
                std::int32_t acc = 0;
                for (unsigned b = 0; b < batch; ++b) {
                    const std::uint64_t wi =
                        wIdx[mm * groups + (g0 + b)];
                    const std::uint32_t reordered =
                        reorderSlices[b * rows + wi];
                    acc += canonSlices[b * rows + reordered];
                }
                out[mm * n + nn] += acc;
            }
        }
    }
    return out;
}

std::vector<float>
canonicalFloat(const GemmProblem& problem, unsigned p, ReorderMode mode,
               unsigned kSlices)
{
    const QuantizedMatrix& w = problem.w;
    const QuantizedMatrix& a = problem.a;
    const std::size_t m = w.rows, k = w.cols, n = a.cols;
    const unsigned bw = w.codec.bits();
    const unsigned groups = static_cast<unsigned>(ceilDiv(k, std::size_t{p}));
    const LutShape shape(problem.config(), p);
    const CanonicalLut canon(shape);
    const std::unique_ptr<ReorderingLut> reorderLut =
        maybeReorderLut(shape, mode);

    const std::vector<std::uint64_t> wIdx = packWeights(w, p, groups);
    const CanonicalPrep prep = prepare(a, p, groups);

    std::vector<float> out(m * n, 0.0f);
    if (mode != ReorderMode::SliceStream) {
        for (std::size_t mm = 0; mm < m; ++mm) {
            for (std::size_t nn = 0; nn < n; ++nn) {
                float acc = 0.0f;
                for (unsigned g = 0; g < groups; ++g) {
                    const std::size_t at = g * n + nn;
                    const std::uint64_t wi = wIdx[mm * groups + g];
                    const std::uint64_t reordered =
                        mode == ReorderMode::Explicit
                            ? explicitReorder(wi, &prep.perm[at * p], p, bw)
                            : reorderLut->lookup(prep.permRank[at], wi);
                    acc += canon.lookupFloat(prep.msRank[at], reordered);
                }
                out[mm * n + nn] = acc;
            }
        }
        return out;
    }

    const std::uint64_t rows = shape.weightRows();
    std::vector<float> canonSlices;
    std::vector<std::uint32_t> reorderSlices;
    for (std::size_t nn = 0; nn < n; ++nn) {
        for (unsigned g0 = 0; g0 < groups; g0 += kSlices) {
            const unsigned batch = std::min(kSlices, groups - g0);
            canonSlices.assign(static_cast<std::size_t>(batch) * rows, 0.0f);
            reorderSlices.assign(static_cast<std::size_t>(batch) * rows, 0);
            for (unsigned b = 0; b < batch; ++b) {
                const std::size_t at =
                    static_cast<std::size_t>(g0 + b) * n + nn;
                const auto col = canon.columnFloat(prep.msRank[at]);
                std::copy(col.begin(), col.end(),
                          canonSlices.begin() +
                              static_cast<std::ptrdiff_t>(b * rows));
                for (std::uint64_t r = 0; r < rows; ++r) {
                    reorderSlices[b * rows + r] =
                        reorderLut->lookup(prep.permRank[at], r);
                }
            }
            for (std::size_t mm = 0; mm < m; ++mm) {
                float acc = 0.0f;
                for (unsigned b = 0; b < batch; ++b) {
                    const std::uint64_t wi = wIdx[mm * groups + (g0 + b)];
                    const std::uint32_t reordered =
                        reorderSlices[b * rows + wi];
                    acc += canonSlices[b * rows + reordered];
                }
                out[mm * n + nn] += acc;
            }
        }
    }
    return out;
}

} // namespace functional
} // namespace localut
