#ifndef LOCALUT_KERNELS_FUNCTIONAL_H_
#define LOCALUT_KERNELS_FUNCTIONAL_H_

/**
 * @file
 * Functional (value-computing) executors for every design point.  Each
 * indexes the real LUT data structures — the canonical/reordering
 * executors go through the canonical + reordering tables, the
 * slice-streaming executor through materialized column slices — so the
 * test suite can assert that every design point reproduces the
 * reference GEMM bit-exactly.
 *
 * These entry points are thin wrappers over the prepared-operand
 * execution engine (kernels/exec_engine.h): they prepare ad hoc on
 * every call (sharing LUT tables through the global table cache) and
 * run the same tiled kernels serially.  Callers that re-execute the
 * same weights should hold a PreparedGemm (or go through
 * PlanCache::preparedFor()) instead.
 */

#include <cstdint>
#include <vector>

#include "kernels/gemm.h"

namespace localut {
namespace functional {

/** Naive MAC (identical to the reference). */
std::vector<std::int32_t> naiveInt(const GemmProblem& problem);

/** LTC-style bit-serial execution with runtime activation tables. */
std::vector<std::int32_t> ltcInt(const GemmProblem& problem);

/** Operation-packed LUT at packing degree @p p. */
std::vector<std::int32_t> opInt(const GemmProblem& problem, unsigned p);

/** How the canonical executor obtains the reordered weight vector. */
enum class ReorderMode {
    Explicit,     ///< runtime unpack/permute/repack (the LC design point)
    ReorderLut,   ///< reordering LUT lookup (RC)
    SliceStream,  ///< reordering + canonical column slices (SS)
};

/** Canonical-LUT execution (LC / RC / SS share this entry point). */
std::vector<std::int32_t> canonicalInt(const GemmProblem& problem,
                                       unsigned p, ReorderMode mode,
                                       unsigned kSlices = 1);

/** Float variants for floating-point symbol configurations. */
std::vector<float> naiveFloat(const GemmProblem& problem);
std::vector<float> opFloat(const GemmProblem& problem, unsigned p);
std::vector<float> canonicalFloat(const GemmProblem& problem, unsigned p,
                                  ReorderMode mode, unsigned kSlices = 1);

/**
 * Numerically identical to opFloat() but computes LUT entries on demand,
 * for shapes whose full operation-packed table cannot be materialized
 * (large-p accuracy sweeps, Fig. 21b).
 */
std::vector<float> opFloatVirtual(const GemmProblem& problem, unsigned p);

} // namespace functional
} // namespace localut

#endif // LOCALUT_KERNELS_FUNCTIONAL_H_
