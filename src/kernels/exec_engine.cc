#include "kernels/exec_engine.h"

#include <algorithm>
#include <cstring>
#include <new>
#include <type_traits>

#include "common/bitops.h"
#include "common/logging.h"
#include "kernels/cost_tables.h"
#include "lut/table_cache.h"

// Portable vectorization hints for the fused lookup-accumulate loops.
// LOCALUT_SIMD_PRAGMA is defined by the build when the compiler accepts
// -fopenmp-simd (the pragma alone, no OpenMP runtime); without it the
// "simd" path compiles to the same scalar loop and the ExecOptions::simd
// flag is a no-op.  Correctness never depends on the pragma: the
// vectorized dimension is independent output elements.
#if defined(LOCALUT_SIMD_PRAGMA)
#define LOCALUT_OMP_SIMD _Pragma("omp simd")
#else
#define LOCALUT_OMP_SIMD
#endif
#if defined(__GNUC__) || defined(__clang__)
#define LOCALUT_RESTRICT __restrict__
#else
#define LOCALUT_RESTRICT
#endif

namespace localut {

// ---------------------------------------------------------------- arena

ExecArena::Buffer::~Buffer()
{
    if (data != nullptr) {
        ::operator delete(data, std::align_val_t{64});
    }
}

void*
ExecArena::raw(Buffer& buffer, std::size_t bytes)
{
    if (bytes <= buffer.bytes) {
        return buffer.data;
    }
    // Round up to a page so repeated slightly-growing requests do not
    // churn; buffers never shrink (that is the steady-state guarantee).
    const std::size_t rounded = (bytes + 4095) & ~std::size_t{4095};
    if (buffer.data != nullptr) {
        ::operator delete(buffer.data, std::align_val_t{64});
        bytesReserved_ -= buffer.bytes;
        // Cleared before the new allocation: if it throws, the buffer
        // must not keep a dangling pointer with a stale size.
        buffer.data = nullptr;
        buffer.bytes = 0;
    }
    buffer.data = ::operator new(rounded, std::align_val_t{64});
    buffer.bytes = rounded;
    ++allocations_;
    bytesReserved_ += rounded;
    return buffer.data;
}

std::int32_t*
ExecArena::i32(unsigned slot, std::size_t n)
{
    LOCALUT_ASSERT(slot < kSlots, "arena slot out of range");
    return typed<std::int32_t>(i32_, slot, n);
}

float*
ExecArena::f32(unsigned slot, std::size_t n)
{
    LOCALUT_ASSERT(slot < kSlots, "arena slot out of range");
    return typed<float>(f32_, slot, n);
}

std::uint64_t*
ExecArena::u64(unsigned slot, std::size_t n)
{
    LOCALUT_ASSERT(slot < kSlots, "arena slot out of range");
    return typed<std::uint64_t>(u64_, slot, n);
}

std::uint32_t*
ExecArena::u32(unsigned slot, std::size_t n)
{
    LOCALUT_ASSERT(slot < kSlots, "arena slot out of range");
    return typed<std::uint32_t>(u32_, slot, n);
}

std::uint16_t*
ExecArena::u16(unsigned slot, std::size_t n)
{
    LOCALUT_ASSERT(slot < kSlots, "arena slot out of range");
    return typed<std::uint16_t>(u16_, slot, n);
}

std::uint8_t*
ExecArena::u8(unsigned slot, std::size_t n)
{
    LOCALUT_ASSERT(slot < kSlots, "arena slot out of range");
    return typed<std::uint8_t>(u8_, slot, n);
}

const void**
ExecArena::ptrs(unsigned slot, std::size_t n)
{
    LOCALUT_ASSERT(slot < kSlots, "arena slot out of range");
    return typed<const void*>(ptrs_, slot, n);
}

ExecArena&
ExecArena::threadLocal()
{
    static thread_local ExecArena arena;
    return arena;
}

// ---------------------------------------------------------- fingerprint

namespace {

constexpr std::uint64_t kFpSeed = 0x51'7a'b1'e0'0c'a1'07'00ull;

std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

std::uint64_t
weightsFingerprint(const QuantizedMatrix& w)
{
    std::uint64_t h = splitmix64(kFpSeed ^ w.rows);
    h = splitmix64(h ^ w.cols);
    h = splitmix64(h ^ static_cast<std::uint64_t>(w.codec.kind()));
    h = splitmix64(h ^ w.codec.bits());
    const std::uint16_t* codes = w.codes.data();
    const std::size_t count = w.codes.size();
    std::size_t i = 0;
    for (; i + 4 <= count; i += 4) {
        std::uint64_t chunk;
        std::memcpy(&chunk, codes + i, sizeof chunk);
        h = splitmix64(h ^ chunk);
    }
    std::uint64_t tail = 0;
    for (; i < count; ++i) {
        tail = (tail << 16) | codes[i];
    }
    return splitmix64(h ^ tail ^ count);
}

// ---------------------------------------------------------- preparation

namespace {

/** Padded code at a K offset (code 0 decodes to an annihilating value). */
std::uint16_t
wCodeAt(const QuantizedMatrix& w, std::size_t mm, std::size_t kk)
{
    return kk < w.cols ? w.at(mm, kk) : std::uint16_t{0};
}

std::uint16_t
actCodeAt(const QuantizedMatrix& a, std::size_t kk, std::size_t nn)
{
    return kk < a.rows ? a.at(kk, nn) : std::uint16_t{0};
}

/** Functional reorder-mode resolution shared with the legacy API. */
enum class Mode { Naive, Ltc, Op, CanonExplicit, CanonReorder, CanonStream };

Mode
modeFor(DesignPoint design, bool streaming)
{
    switch (design) {
      case DesignPoint::NaivePim:  return Mode::Naive;
      case DesignPoint::Ltc:       return Mode::Ltc;
      case DesignPoint::OpLutDram:
      case DesignPoint::OpLut:     return Mode::Op;
      case DesignPoint::OpLc:      return Mode::CanonExplicit;
      case DesignPoint::OpLcRc:    return Mode::CanonReorder;
      case DesignPoint::LoCaLut:
        return streaming ? Mode::CanonStream : Mode::CanonReorder;
    }
    LOCALUT_PANIC("invalid design point");
}

std::vector<std::int32_t>
intCodebook(ValueCodec codec)
{
    std::vector<std::int32_t> book;
    if (!codec.isInteger()) {
        return book;
    }
    book.resize(codec.cardinality());
    for (std::uint64_t c = 0; c < book.size(); ++c) {
        book[c] = codec.decodeInt(static_cast<std::uint32_t>(c));
    }
    return book;
}

std::vector<float>
floatCodebook(ValueCodec codec)
{
    std::vector<float> book(codec.cardinality());
    for (std::uint64_t c = 0; c < book.size(); ++c) {
        book[c] = codec.decode(static_cast<std::uint32_t>(c));
    }
    return book;
}

} // namespace

bool
PreparedGemm::matches(const GemmProblem& problem, const GemmPlan& plan) const
{
    // Weight-content agreement is the caller's contract: the prepared
    // cache keys on weightsFingerprint(), and direct users hold one
    // PreparedGemm per problem.  Re-hashing here would put an O(M*K)
    // pass back on every call — the exact cost this engine removes.
    return m == problem.m() && k == problem.k() &&
           config == problem.config() && design == plan.design &&
           p == plan.p && kSlices == plan.kSlices &&
           streaming == plan.streaming;
}

std::uint64_t
PreparedGemm::bytes() const
{
    return wIdxT8.size() + wIdxT16.size() * sizeof(std::uint16_t) +
           wIdxT64.size() * sizeof(std::uint64_t) + ltcIdx.size() +
           ltcCoeff.size() * sizeof(std::int64_t) +
           msBinom.size() * sizeof(std::uint64_t) +
           (wDecode.size() + aDecode.size()) * sizeof(std::int32_t) +
           (wDecodeF.size() + aDecodeF.size()) * sizeof(float);
}

std::shared_ptr<PreparedGemm>
prepareGemm(const GemmProblem& problem, const GemmPlan& plan,
            bool useTableCache)
{
    LOCALUT_REQUIRE(problem.m() == plan.m && problem.k() == plan.k,
                    "prepareGemm: plan was resolved for a different shape");
    LOCALUT_REQUIRE(!problem.w.codes.empty(),
                    "prepareGemm needs materialized weight codes");

    auto prep = std::make_shared<PreparedGemm>();
    prep->design = plan.design;
    prep->config = problem.config();
    prep->p = plan.p;
    prep->kSlices = plan.kSlices;
    prep->streaming = plan.streaming;
    prep->m = problem.m();
    prep->k = problem.k();
    // `weights` stays 0 here: hashing the codes is an O(M*K) pass, so
    // the caching layer (PlanCache::preparedFor) stamps the fingerprint
    // it already computed for the cache key.

    prep->wDecode = intCodebook(problem.w.codec);
    prep->wDecodeF = floatCodebook(problem.w.codec);
    prep->aDecode = intCodebook(problem.a.codec);
    prep->aDecodeF = floatCodebook(problem.a.codec);

    const QuantizedMatrix& w = problem.w;
    const std::size_t m = prep->m, k = prep->k;
    const Mode mode = modeFor(plan.design, plan.streaming);

    if (mode == Mode::Ltc) {
        LOCALUT_REQUIRE(prep->config.weightCodec.isInteger() &&
                            prep->config.actCodec.isInteger(),
                        "LTC functional path is integer-only");
        const unsigned g = cost::kLtcGroupSize;
        const unsigned groups =
            static_cast<unsigned>(ceilDiv(k, std::size_t{g}));
        prep->groups = groups;
        // Affine bit decomposition: decodeInt(code) =
        // sum_j coeff[j] * bit_j(code) + base.
        const ValueCodec codec = w.codec;
        prep->ltcBase = codec.decodeInt(0);
        prep->ltcCoeff.resize(codec.bits());
        for (unsigned j = 0; j < codec.bits(); ++j) {
            prep->ltcCoeff[j] = codec.decodeInt(1u << j) - prep->ltcBase;
        }
        // Per-(row, plane, group) table indices, hoisted out of the
        // executor's innermost loop.
        const unsigned bw = codec.bits();
        prep->ltcIdx.resize(m * bw * groups);
        for (std::size_t mm = 0; mm < m; ++mm) {
            for (unsigned j = 0; j < bw; ++j) {
                std::uint8_t* dst =
                    &prep->ltcIdx[(mm * bw + j) * groups];
                for (unsigned gg = 0; gg < groups; ++gg) {
                    unsigned idx = 0;
                    for (unsigned i = 0; i < g; ++i) {
                        const std::size_t kk =
                            static_cast<std::size_t>(gg) * g + i;
                        if (kk < k && ((w.at(mm, kk) >> j) & 1u)) {
                            idx |= 1u << i;
                        }
                    }
                    dst[gg] = static_cast<std::uint8_t>(idx);
                }
            }
        }
        return prep;
    }

    if (mode == Mode::Naive) {
        prep->groups = static_cast<unsigned>(ceilDiv(k, std::size_t{1}));
        return prep;
    }

    // LUT designs: packed (group-major) weight indices + shared tables.
    const unsigned p = plan.p;
    const unsigned groups =
        static_cast<unsigned>(ceilDiv(k, std::size_t{p}));
    prep->groups = groups;
    const unsigned bw = w.codec.bits();
    const unsigned idxBits = bw * p;
    std::uint16_t codes[64];
    LOCALUT_REQUIRE(p <= 64, "packing degree out of range");
    auto packInto = [&](auto& vec) {
        vec.resize(static_cast<std::size_t>(groups) * m);
        for (unsigned g = 0; g < groups; ++g) {
            auto* dst = &vec[static_cast<std::size_t>(g) * m];
            for (std::size_t mm = 0; mm < m; ++mm) {
                for (unsigned i = 0; i < p; ++i) {
                    codes[i] =
                        wCodeAt(w, mm, static_cast<std::size_t>(g) * p + i);
                }
                dst[mm] = static_cast<
                    typename std::decay_t<decltype(vec)>::value_type>(
                    packCodes({codes, p}, bw));
            }
        }
    };
    // Narrowest storage that holds the packed index: the row sweep is
    // memory-bound on this stream.
    if (idxBits <= 8) {
        packInto(prep->wIdxT8);
    } else if (idxBits <= 16) {
        packInto(prep->wIdxT16);
    } else {
        packInto(prep->wIdxT64);
    }

    const LutShape shape(prep->config, p);
    LutTableCache& cache = LutTableCache::global();
    switch (mode) {
      case Mode::Op:
        prep->opLut = useTableCache
                          ? cache.opLut(shape)
                          : std::make_shared<const OperationPackedLut>(shape);
        break;
      case Mode::CanonReorder:
      case Mode::CanonStream:
        prep->reorderLut =
            useTableCache
                ? cache.reorderingLut(shape)
                : std::make_shared<const ReorderingLut>(shape);
        [[fallthrough]];
      case Mode::CanonExplicit:
        prep->canonicalLut =
            useTableCache
                ? cache.canonicalLut(shape)
                : std::make_shared<const CanonicalLut>(shape);
        break;
      default:
        LOCALUT_PANIC("unreachable");
    }

    if (mode != Mode::Op) {
        // Rank tables for the per-call activation canonicalization:
        // msBinom[i * span + z] = C(z, i + 1), so multiset ranking is a
        // table walk instead of repeated binomial evaluation.
        const std::uint64_t alphabet = prep->config.actCodec.cardinality();
        const std::size_t span = alphabet + p;
        prep->msBinom.resize(static_cast<std::size_t>(p) * span);
        for (unsigned i = 0; i < p; ++i) {
            for (std::size_t z = 0; z < span; ++z) {
                prep->msBinom[i * span + z] = binomial(z, i + 1);
            }
        }
    }
    return prep;
}

// ------------------------------------------------------------ execution

namespace {

// Arena slot conventions.  Caller-thread (shared preparation) buffers
// and tile-thread scratch use distinct slots per element type, so the
// serial path can run both out of one arena.
constexpr unsigned kSlotActA = 0;    ///< u64: aIdx / msRank (column-major)
constexpr unsigned kSlotPermRank = 0; ///< u32
constexpr unsigned kSlotPerm = 0;     ///< u8
constexpr unsigned kSlotAcc = 0;      ///< i32/f32: per-tile accumulator
constexpr unsigned kSlotFused = 1;    ///< i32/f32: fused slices / tables
constexpr unsigned kSlotCol = 2;      ///< i32/f32: decoded column scratch
constexpr unsigned kSlotBatch = 3;    ///< f32: per-batch accumulator
constexpr unsigned kSlotBuilt = 1;    ///< u8: fused-combo built flags
constexpr unsigned kSlotSlicePtr = 1; ///< u64: per-group slice pointers

/** One output tile: rows [m0, m1) x columns [n0, n1). */
struct TileRange {
    std::size_t m0, m1, n0, n1;
};

/**
 * Column tiles are never cut finer than one cache line of the
 * row-major output (16 x 4-byte columns = 64 bytes): slivered column
 * tiles — the historical bug on fig09-class shapes, which emitted
 * 4-column tiles — put four concurrent writers on every output line,
 * and the resulting false sharing erased the entire tile-parallel
 * speedup.
 */
constexpr std::size_t kMinColChunk = 16;

/**
 * Cuts the output into a disjoint [rowTiles x colTiles] grid.  Columns
 * are cut first (per-column setup — fused slices, LTC tables, decoded
 * columns — is paid once per column regardless of how the columns are
 * divided, but is DUPLICATED by every row cut), no finer than
 * kMinColChunk; rows are cut only when the columns alone cannot feed
 * the target tile count, and keep >= 16 rows per tile.  rangeOf()
 * recovers the bounds from a tile index.
 */
struct Tiling {
    std::size_t m = 0, n = 0;
    std::size_t tiles = 1;
    std::size_t rowTiles = 1, colTiles = 1;
    std::size_t rowChunk = 0, colChunk = 0;

    TileRange
    rangeOf(std::size_t tile) const
    {
        if (tiles <= 1) {
            return {0, m, 0, n};
        }
        const std::size_t m0 =
            std::min(m, (tile / colTiles) * rowChunk);
        const std::size_t n0 =
            std::min(n, (tile % colTiles) * colChunk);
        return {m0, std::min(m, m0 + rowChunk), n0,
                std::min(n, n0 + colChunk)};
    }
};

Tiling
chooseTiling(std::size_t m, std::size_t n, const TileExecutor* tiles)
{
    Tiling t;
    t.m = m;
    t.n = n;
    t.rowChunk = m;
    t.colChunk = n;
    const unsigned conc = tiles != nullptr ? tiles->concurrency() : 1;
    if (conc <= 1 || m * n == 0) {
        return t;
    }
    // A few tiles per worker for load balance.
    const std::size_t target = static_cast<std::size_t>(conc) * 4;
    t.colTiles = std::max<std::size_t>(
        1, std::min(ceilDiv(n, kMinColChunk), target));
    t.colChunk = ceilDiv(n, t.colTiles);
    t.colTiles = ceilDiv(n, t.colChunk);
    if (t.colTiles < target && m >= 32) {
        const std::size_t want = ceilDiv(target, t.colTiles);
        t.rowTiles = std::min(ceilDiv(m, std::size_t{16}), want);
        t.rowChunk = ceilDiv(m, t.rowTiles);
        t.rowTiles = ceilDiv(m, t.rowChunk);
    }
    t.tiles = t.rowTiles * t.colTiles;
    return t;
}

/**
 * Shrinks the ROW dimension of a tiling to at most @p maxRowTiles
 * (kernels whose per-column setup is duplicated across row tiles call
 * this with the row-cut count that keeps the duplicated work a small
 * fraction of the sweep).  Column tiles are untouched — they duplicate
 * nothing.
 */
void
capRowTiles(Tiling& t, std::size_t maxRowTiles)
{
    maxRowTiles = std::max<std::size_t>(1, maxRowTiles);
    if (t.rowTiles <= maxRowTiles) {
        return;
    }
    t.rowTiles = maxRowTiles;
    t.rowChunk = ceilDiv(t.m, t.rowTiles);
    t.rowTiles = ceilDiv(t.m, t.rowChunk);
    t.tiles = t.rowTiles * t.colTiles;
}

/** Runs @p fn over every tile — inline when serial (no std::function
 * materialization, preserving the zero-allocation steady state). */
template <typename Fn>
void
runTiles(const Tiling& tiling, const TileExecutor* tiles, const Fn& fn)
{
    if (tiling.tiles <= 1 || tiles == nullptr) {
        for (std::size_t i = 0; i < tiling.tiles; ++i) {
            fn(i);
        }
        return;
    }
    tiles->run(tiling.tiles, std::function<void(std::size_t)>(fn));
}

/** The tile-local arena: the shared one when serial, per-thread when
 * the tile may be running on a pool worker. */
ExecArena&
tileArena(const Tiling& tiling, const TileExecutor* tiles,
          ExecArena& callerArena)
{
    return (tiling.tiles <= 1 || tiles == nullptr)
               ? callerArena
               : ExecArena::threadLocal();
}

/** Explicit unpack/permute/repack (the LC design point's runtime work). */
std::uint64_t
explicitReorder(std::uint64_t wIdx, const std::uint8_t* perm, unsigned p,
                unsigned bw)
{
    std::uint64_t reordered = 0;
    for (unsigned i = 0; i < p; ++i) {
        const std::uint64_t code = extractField(wIdx, perm[i], bw);
        reordered |= code << (i * bw);
    }
    return reordered;
}

// ----------------------------------------------- activation preparation

/**
 * Column-major canonicalization of every activation group instance:
 * msRank/permRank/perm at [nn * groups + g].  Stable insertion argsort
 * + table-driven multiset rank, allocation-free.
 */
struct CanonicalActs {
    const std::uint64_t* msRank = nullptr;
    const std::uint32_t* permRank = nullptr;
    const std::uint8_t* perm = nullptr;
};

CanonicalActs
prepCanonicalActs(const QuantizedMatrix& a, unsigned p, unsigned groups,
                  const PreparedGemm& prep, ExecArena& arena)
{
    const std::size_t n = a.cols;
    const std::size_t instances = static_cast<std::size_t>(groups) * n;
    std::uint64_t* msRank = arena.u64(kSlotActA, instances);
    std::uint32_t* permRank = arena.u32(kSlotPermRank, instances);
    std::uint8_t* perm = arena.u8(kSlotPerm, instances * p);
    const std::size_t span = prep.config.actCodec.cardinality() + p;
    const std::uint64_t* binom = prep.msBinom.data();

    std::uint16_t codes[64];
    std::uint8_t order[64];
    for (std::size_t nn = 0; nn < n; ++nn) {
        for (unsigned g = 0; g < groups; ++g) {
            for (unsigned i = 0; i < p; ++i) {
                codes[i] =
                    actCodeAt(a, static_cast<std::size_t>(g) * p + i, nn);
            }
            // Stable insertion argsort (p <= 12).
            for (unsigned i = 0; i < p; ++i) {
                const std::uint16_t code = codes[i];
                unsigned j = i;
                while (j > 0 && codes[order[j - 1]] > code) {
                    order[j] = order[j - 1];
                    --j;
                }
                order[j] = static_cast<std::uint8_t>(i);
            }
            // Multiset rank of the sorted codes (colex rank sum).
            std::uint64_t ms = 0;
            for (unsigned i = 0; i < p; ++i) {
                ms += binom[i * span + codes[order[i]] + i];
            }
            // Lehmer rank of the argsort permutation.
            std::uint32_t pr = 0;
            for (unsigned i = 0; i < p; ++i) {
                unsigned smaller = 0;
                for (unsigned j = i + 1; j < p; ++j) {
                    if (order[j] < order[i]) {
                        ++smaller;
                    }
                }
                pr = pr * (p - i) + smaller;
            }
            const std::size_t at = nn * groups + g;
            msRank[at] = ms;
            permRank[at] = pr;
            std::uint8_t* dst = perm + at * p;
            for (unsigned i = 0; i < p; ++i) {
                dst[i] = order[i];
            }
        }
    }
    return {msRank, permRank, perm};
}

/** Column-major packed activation indices aIdx[nn * groups + g]. */
const std::uint64_t*
prepPackedActs(const QuantizedMatrix& a, unsigned p, unsigned groups,
               ExecArena& arena)
{
    const std::size_t n = a.cols;
    std::uint64_t* aIdx =
        arena.u64(kSlotActA, static_cast<std::size_t>(groups) * n);
    const unsigned ba = a.codec.bits();
    std::uint16_t codes[64];
    for (std::size_t nn = 0; nn < n; ++nn) {
        for (unsigned g = 0; g < groups; ++g) {
            for (unsigned i = 0; i < p; ++i) {
                codes[i] =
                    actCodeAt(a, static_cast<std::size_t>(g) * p + i, nn);
            }
            aIdx[nn * groups + g] = packCodes({codes, p}, ba);
        }
    }
    return aIdx;
}

// ------------------------------------------------------------- kernels

/**
 * Shared accumulate-into-column helper: zeroes @p acc, then the caller
 * streams group slices into it; writeColumn() scatters to the strided
 * output column.
 */
template <typename T>
void
writeColumn(const T* acc, T* out, std::size_t n, std::size_t nn,
            std::size_t m0, std::size_t m1)
{
    for (std::size_t mm = m0; mm < m1; ++mm) {
        out[mm * n + nn] = acc[mm - m0];
    }
}

// ------------------------------------------- fused inner-loop helpers
//
// The fused lookup-accumulate sweeps vectorize along the OUTPUT-ROW
// dimension: acc[i] += slice[idx[i]] advances independent output
// elements in lockstep, so no per-element accumulation order changes —
// the simd and scalar paths are bit-exact on integer AND float data
// (reordering would only occur if the reduction dimension, the groups,
// were vectorized; it never is).  The scalar variants are kept as
// separate loops (not just a disabled pragma) so the bench's
// simd-vs-scalar comparison measures real codegen, with restrict
// qualifiers confined to the simd path.

/** acc[i] += slice[idx[i]] over [0, span). */
template <typename T, typename I>
inline void
gatherAccumulate(bool simd, T* acc, const T* slice, const I* idx,
                 std::size_t span)
{
    if (simd) {
        T* LOCALUT_RESTRICT a = acc;
        const T* LOCALUT_RESTRICT s = slice;
        const I* LOCALUT_RESTRICT ix = idx;
        LOCALUT_OMP_SIMD
        for (std::size_t i = 0; i < span; ++i) {
            a[i] += s[ix[i]];
        }
    } else {
        for (std::size_t i = 0; i < span; ++i) {
            acc[i] += slice[idx[i]];
        }
    }
}

/** dst[i] = src[idx[i]] over [0, span) (fused-slice construction). */
template <typename T, typename I>
inline void
gatherInto(bool simd, T* dst, const T* src, const I* idx, std::size_t span)
{
    if (simd) {
        T* LOCALUT_RESTRICT d = dst;
        const T* LOCALUT_RESTRICT s = src;
        const I* LOCALUT_RESTRICT ix = idx;
        LOCALUT_OMP_SIMD
        for (std::size_t i = 0; i < span; ++i) {
            d[i] = s[ix[i]];
        }
    } else {
        for (std::size_t i = 0; i < span; ++i) {
            dst[i] = src[idx[i]];
        }
    }
}

/** acc[i] += addend[i] over [0, span) (slice-window fold). */
template <typename T>
inline void
vectorAdd(bool simd, T* acc, const T* addend, std::size_t span)
{
    if (simd) {
        T* LOCALUT_RESTRICT a = acc;
        const T* LOCALUT_RESTRICT b = addend;
        LOCALUT_OMP_SIMD
        for (std::size_t i = 0; i < span; ++i) {
            a[i] += b[i];
        }
    } else {
        for (std::size_t i = 0; i < span; ++i) {
            acc[i] += addend[i];
        }
    }
}

/** Narrow-width packed weight index dispatch: invokes @p fn with the
 * populated wIdxT pointer (exactly one variant is filled). */
template <typename Fn>
void
withWeightIndices(const PreparedGemm& prep, const Fn& fn)
{
    if (!prep.wIdxT8.empty()) {
        fn(prep.wIdxT8.data());
    } else if (!prep.wIdxT16.empty()) {
        fn(prep.wIdxT16.data());
    } else {
        fn(prep.wIdxT64.data());
    }
}

/** OP sweep: out(mm, nn) = sum_g opLut[aIdx(nn, g)][wIdxT(g, mm)]. */
template <typename T, typename I>
void
opKernel(const PreparedGemm& prep, const I* wIdxT,
         const std::uint64_t* aIdx, const T* table, std::uint64_t rows,
         bool simd, std::size_t n, const TileRange& range, ExecArena& arena,
         T* out)
{
    const std::size_t m = prep.m;
    const unsigned groups = prep.groups;
    const std::size_t span = range.m1 - range.m0;
    T* acc;
    if constexpr (std::is_same_v<T, std::int32_t>) {
        acc = arena.i32(kSlotAcc, span);
    } else {
        acc = arena.f32(kSlotAcc, span);
    }
    for (std::size_t nn = range.n0; nn < range.n1; ++nn) {
        std::fill(acc, acc + span, T{});
        const std::uint64_t* aCol = aIdx + nn * groups;
        for (unsigned g = 0; g < groups; ++g) {
            const T* slice = table + aCol[g] * rows;
            const I* wg = wIdxT + static_cast<std::size_t>(g) * m;
            gatherAccumulate(simd, acc, slice, wg + range.m0, span);
        }
        writeColumn(acc, out, n, nn, range.m0, range.m1);
    }
}

/**
 * Canonical fused sweep: per column, collapse (reordering o canonical)
 * into one direct slice per group — fused[wIdx] =
 * canonical[msRank][reorder(wIdx)] — then stream rows against the fused
 * slices exactly like the OP kernel.  Float accumulation is batched by
 * @p batch groups (the slice window under streaming) to reproduce the
 * legacy slice-streaming summation order bit-exactly.
 */
template <typename T, bool kInt, typename I>
void
canonicalFusedKernel(const PreparedGemm& prep, const I* wIdxT,
                     const CanonicalActs& acts, Mode mode, unsigned batch,
                     bool simd, std::size_t n, const TileRange& range,
                     ExecArena& arena, T* out)
{
    const std::size_t m = prep.m;
    const unsigned groups = prep.groups;
    const unsigned p = prep.p;
    const unsigned bw = prep.config.weightCodec.bits();
    const CanonicalLut& canon = *prep.canonicalLut;
    const std::uint64_t rows = canon.rows();
    const T* canonData;
    if constexpr (kInt) {
        canonData = canon.dataInt();
    } else {
        canonData = canon.dataFloat();
    }
    const std::uint32_t* reorderData =
        prep.reorderLut != nullptr ? prep.reorderLut->data() : nullptr;

    // A fused slice is a pure function of (msRank, permRank).  When
    // that combo space is small — the common small-p case — memoize
    // slices per combo for the whole tile instead of rebuilding them
    // per (column, group): a 3072x768x128 W4A4 GEMM has ~49k group
    // instances but only 272 distinct combos.
    const std::uint64_t permCols =
        prep.reorderLut != nullptr ? prep.reorderLut->cols()
                                   : factorial(p);
    // Overflow-safe: only multiply once both factors are small.
    const bool smallCombo = canon.cols() <= 4096 && permCols <= 4096;
    const std::uint64_t combos =
        smallCombo ? canon.cols() * permCols : 0;
    const bool memoize = canonData != nullptr && smallCombo &&
                         combos <= 4096 &&
                         combos * rows <= (std::uint64_t{1} << 22);
    const std::size_t fusedSlices =
        memoize ? static_cast<std::size_t>(combos)
                : static_cast<std::size_t>(groups);

    const std::size_t span = range.m1 - range.m0;
    T *acc, *accBatch, *fused, *colScratch;
    if constexpr (kInt) {
        acc = arena.i32(kSlotAcc, span);
        accBatch = nullptr;
        fused = arena.i32(kSlotFused, fusedSlices * rows);
        colScratch = canonData == nullptr ? arena.i32(kSlotCol, rows)
                                          : nullptr;
    } else {
        acc = arena.f32(kSlotAcc, span);
        accBatch = arena.f32(kSlotBatch, span);
        fused = arena.f32(kSlotFused, fusedSlices * rows);
        colScratch = canonData == nullptr ? arena.f32(kSlotCol, rows)
                                          : nullptr;
    }
    std::uint8_t* built = nullptr;
    if (memoize) {
        built = arena.u8(kSlotBuilt, static_cast<std::size_t>(combos));
        std::fill(built, built + combos, std::uint8_t{0});
    }
    const void** slice = arena.ptrs(kSlotSlicePtr, groups);

    auto buildSlice = [&](std::size_t at, T* dst) {
        const T* col;
        if (canonData != nullptr) {
            col = canonData + acts.msRank[at] * rows;
        } else {
            if constexpr (kInt) {
                canon.columnIntInto(acts.msRank[at], colScratch);
            } else {
                canon.columnFloatInto(acts.msRank[at], colScratch);
            }
            col = colScratch;
        }
        if (mode == Mode::CanonExplicit) {
            const std::uint8_t* perm = acts.perm + at * p;
            for (std::uint64_t wi = 0; wi < rows; ++wi) {
                dst[wi] = col[explicitReorder(wi, perm, p, bw)];
            }
        } else {
            const std::uint32_t* rCol =
                reorderData + acts.permRank[at] * rows;
            gatherInto(simd, dst, col, rCol,
                       static_cast<std::size_t>(rows));
        }
    };

    for (std::size_t nn = range.n0; nn < range.n1; ++nn) {
        // Resolve this column's fused slices (lookups hoisted out of
        // the row sweep), building each distinct combo at most once
        // per tile when memoizing.
        for (unsigned g = 0; g < groups; ++g) {
            const std::size_t at = nn * groups + g;
            if (memoize) {
                const std::size_t combo = static_cast<std::size_t>(
                    acts.msRank[at] * permCols + acts.permRank[at]);
                T* dst = fused + combo * rows;
                if (!built[combo]) {
                    buildSlice(at, dst);
                    built[combo] = 1;
                }
                slice[g] = dst;
            } else {
                T* dst = fused + static_cast<std::size_t>(g) * rows;
                buildSlice(at, dst);
                slice[g] = dst;
            }
        }
        // Row sweep against the fused slices.  Integer accumulation is
        // order-independent; float accumulation must reproduce the
        // legacy order exactly: direct group-ascending sums normally,
        // per-slice-window partial sums folded in under streaming.
        std::fill(acc, acc + span, T{});
        if (kInt || mode != Mode::CanonStream) {
            for (unsigned g = 0; g < groups; ++g) {
                const T* f = static_cast<const T*>(slice[g]);
                const I* wg = wIdxT + static_cast<std::size_t>(g) * m;
                gatherAccumulate(simd, acc, f, wg + range.m0, span);
            }
        } else {
            for (unsigned g0 = 0; g0 < groups; g0 += batch) {
                const unsigned gEnd = std::min(groups, g0 + batch);
                std::fill(accBatch, accBatch + span, T{});
                for (unsigned g = g0; g < gEnd; ++g) {
                    const T* f = static_cast<const T*>(slice[g]);
                    const I* wg = wIdxT + static_cast<std::size_t>(g) * m;
                    gatherAccumulate(simd, accBatch, f, wg + range.m0,
                                     span);
                }
                vectorAdd(simd, acc, accBatch, span);
            }
        }
        writeColumn(acc, out, n, nn, range.m0, range.m1);
    }
}

/**
 * Canonical direct sweep (no fused slices): the per-element double
 * lookup, for shapes whose weight-row space dwarfs the row count (slice
 * fusion would cost more than it saves).
 */
template <typename T, bool kInt, typename I>
void
canonicalDirectKernel(const PreparedGemm& prep, const I* wIdxT,
                      const CanonicalActs& acts, Mode mode, unsigned batch,
                      std::size_t n, const TileRange& range, T* out)
{
    const std::size_t m = prep.m;
    const unsigned groups = prep.groups;
    const unsigned p = prep.p;
    const unsigned bw = prep.config.weightCodec.bits();
    const CanonicalLut& canon = *prep.canonicalLut;
    const std::uint64_t rows = canon.rows();
    const T* canonData;
    if constexpr (kInt) {
        canonData = canon.dataInt();
    } else {
        canonData = canon.dataFloat();
    }
    const std::uint32_t* reorderData =
        prep.reorderLut != nullptr ? prep.reorderLut->data() : nullptr;

    auto entry = [&](unsigned g, std::size_t nn, std::size_t mm) {
        const std::size_t at = nn * groups + g;
        const std::uint64_t wi = wIdxT[static_cast<std::size_t>(g) * m + mm];
        std::uint64_t reordered;
        if (mode == Mode::CanonExplicit) {
            reordered = explicitReorder(wi, acts.perm + at * p, p, bw);
        } else {
            reordered = reorderData[acts.permRank[at] * rows + wi];
        }
        if (canonData != nullptr) {
            return canonData[acts.msRank[at] * rows + reordered];
        }
        if constexpr (kInt) {
            return canon.lookupInt(acts.msRank[at], reordered);
        } else {
            return canon.lookupFloat(acts.msRank[at], reordered);
        }
    };

    for (std::size_t nn = range.n0; nn < range.n1; ++nn) {
        for (std::size_t mm = range.m0; mm < range.m1; ++mm) {
            T acc{};
            if (kInt || mode != Mode::CanonStream) {
                for (unsigned g = 0; g < groups; ++g) {
                    acc += entry(g, nn, mm);
                }
            } else {
                // Legacy streaming order: per-window partials folded in.
                for (unsigned g0 = 0; g0 < groups; g0 += batch) {
                    const unsigned gEnd = std::min(groups, g0 + batch);
                    T accB{};
                    for (unsigned g = g0; g < gEnd; ++g) {
                        accB += entry(g, nn, mm);
                    }
                    acc += accB;
                }
            }
            out[mm * n + nn] = acc;
        }
    }
}

/** LTC sweep (integer-only): per-column runtime tables + precomputed
 * weight plane indices. */
void
ltcKernel(const PreparedGemm& prep, const QuantizedMatrix& a, std::size_t n,
          const TileRange& range, ExecArena& arena, std::int32_t* out)
{
    const unsigned g = cost::kLtcGroupSize;
    const unsigned entries = cost::kLtcTableEntries;
    const unsigned groups = prep.groups;
    const unsigned bw = prep.config.weightCodec.bits();
    const std::size_t k = prep.k;
    const std::int32_t* aDec = prep.aDecode.data();
    std::int32_t* table =
        arena.i32(kSlotFused, static_cast<std::size_t>(groups) * entries);

    for (std::size_t nn = range.n0; nn < range.n1; ++nn) {
        std::int64_t colSum = 0;
        for (unsigned gg = 0; gg < groups; ++gg) {
            std::int32_t av[cost::kLtcGroupSize] = {};
            for (unsigned i = 0; i < g; ++i) {
                const std::size_t kk = static_cast<std::size_t>(gg) * g + i;
                av[i] = kk < k ? aDec[a.at(kk, nn)] : 0;
                colSum += av[i];
            }
            for (unsigned idx = 0; idx < entries; ++idx) {
                std::int32_t sum = 0;
                for (unsigned i = 0; i < g; ++i) {
                    if (idx & (1u << i)) {
                        sum += av[i];
                    }
                }
                table[gg * entries + idx] = sum;
            }
        }
        for (std::size_t mm = range.m0; mm < range.m1; ++mm) {
            std::int64_t acc = 0;
            const std::uint8_t* rowIdx = &prep.ltcIdx[mm * bw * groups];
            for (unsigned j = 0; j < bw; ++j) {
                std::int64_t planeSum = 0;
                const std::uint8_t* idx = rowIdx + j * groups;
                for (unsigned gg = 0; gg < groups; ++gg) {
                    planeSum += table[gg * entries + idx[gg]];
                }
                acc += prep.ltcCoeff[j] * planeSum;
            }
            acc += prep.ltcBase * colSum;
            out[mm * n + nn] = static_cast<std::int32_t>(acc);
        }
    }
}

/** Plain MAC (NaivePim + the host reference), codebook-decoded. */
void
naiveIntKernel(const PreparedGemm& prep, const GemmProblem& problem,
               std::size_t n, const TileRange& range, ExecArena& arena,
               std::int32_t* out)
{
    const std::size_t k = prep.k;
    const std::int32_t* wDec = prep.wDecode.data();
    const std::int32_t* aDec = prep.aDecode.data();
    const std::uint16_t* wCodes = problem.w.codes.data();
    std::int32_t* aCol = arena.i32(kSlotCol, k);
    for (std::size_t nn = range.n0; nn < range.n1; ++nn) {
        for (std::size_t kk = 0; kk < k; ++kk) {
            aCol[kk] = aDec[problem.a.at(kk, nn)];
        }
        for (std::size_t mm = range.m0; mm < range.m1; ++mm) {
            const std::uint16_t* wRow = wCodes + mm * k;
            std::int32_t acc = 0;
            for (std::size_t kk = 0; kk < k; ++kk) {
                acc += wDec[wRow[kk]] * aCol[kk];
            }
            out[mm * n + nn] = acc;
        }
    }
}

/** Float MAC, replicating referenceGemmFloat()'s zero-weight skip (a
 * NaN activation times a skipped zero weight must stay skipped). */
void
naiveFloatKernel(const PreparedGemm& prep, const GemmProblem& problem,
                 std::size_t n, const TileRange& range, ExecArena& arena,
                 float* out)
{
    const std::size_t k = prep.k;
    const float* wDec = prep.wDecodeF.data();
    const float* aDec = prep.aDecodeF.data();
    const std::uint16_t* wCodes = problem.w.codes.data();
    float* aCol = arena.f32(kSlotCol, k);
    for (std::size_t nn = range.n0; nn < range.n1; ++nn) {
        for (std::size_t kk = 0; kk < k; ++kk) {
            aCol[kk] = aDec[problem.a.at(kk, nn)];
        }
        for (std::size_t mm = range.m0; mm < range.m1; ++mm) {
            const std::uint16_t* wRow = wCodes + mm * k;
            float acc = 0.0f;
            for (std::size_t kk = 0; kk < k; ++kk) {
                const float wv = wDec[wRow[kk]];
                if (wv == 0.0f) {
                    continue;
                }
                acc += wv * aCol[kk];
            }
            out[mm * n + nn] = acc;
        }
    }
}

// ----------------------------------------------------------- dispatch

/** Fused-slice heuristic: fusing costs groups * rows per column and
 * saves a dependent lookup per (row, group); profitable unless the
 * weight-row space dwarfs the row count. */
bool
useFusedSlices(std::uint64_t rows, std::size_t m)
{
    return rows <= std::max<std::uint64_t>(4 * m, 64);
}

template <typename T, bool kInt>
void
executeTyped(const GemmProblem& problem, const GemmPlan& plan,
             const ExecOptions& options, std::vector<T>& out)
{
    LOCALUT_REQUIRE(!problem.w.codes.empty() && !problem.a.codes.empty(),
                    "functional execution needs materialized codes");
    std::shared_ptr<const PreparedGemm> owned;
    const PreparedGemm* prep = options.prepared;
    if (prep == nullptr) {
        owned = prepareGemm(problem, plan);
        prep = owned.get();
    } else {
        LOCALUT_REQUIRE(prep->matches(problem, plan),
                        "prepared operand does not match this "
                        "(problem, plan)");
    }
    ExecArena& arena =
        options.arena != nullptr ? *options.arena : ExecArena::threadLocal();
    const std::size_t m = problem.m(), n = problem.n();
    out.resize(m * n);
    T* outData = out.data();
    const Mode mode = modeFor(plan.design, plan.streaming);
    const Tiling tiling = chooseTiling(m, n, options.tiles);
    const TileExecutor* tiles = options.tiles;

    switch (mode) {
      case Mode::Naive: {
        runTiles(tiling, tiles, [&](std::size_t tile) {
            ExecArena& ta = tileArena(tiling, tiles, arena);
            if constexpr (kInt) {
                naiveIntKernel(*prep, problem, n, tiling.rangeOf(tile), ta,
                               outData);
            } else {
                naiveFloatKernel(*prep, problem, n, tiling.rangeOf(tile),
                                 ta, outData);
            }
        });
        return;
      }
      case Mode::Ltc: {
        if constexpr (!kInt) {
            LOCALUT_PANIC("LTC functional path is integer-only");
        } else {
            // Row tiles rebuild every column's runtime tables (16
            // entries per group); cap the duplication at ~25% of the
            // per-tile sweep (chunk rows x bw planes x groups).
            Tiling ltcTiling = tiling;
            capRowTiles(ltcTiling,
                        std::max<std::size_t>(
                            1, m * prep->config.weightCodec.bits() /
                                   (4 * cost::kLtcTableEntries)));
            runTiles(ltcTiling, tiles, [&](std::size_t tile) {
                ltcKernel(*prep, problem.a, n, ltcTiling.rangeOf(tile),
                          tileArena(ltcTiling, tiles, arena), outData);
            });
        }
        return;
      }
      case Mode::Op: {
        const std::uint64_t* aIdx =
            prepPackedActs(problem.a, prep->p, prep->groups, arena);
        const OperationPackedLut& lut = *prep->opLut;
        const T* table;
        if constexpr (kInt) {
            table = lut.dataInt();
        } else {
            table = lut.dataFloat();
        }
        LOCALUT_REQUIRE(table != nullptr,
                        "operation-packed LUT has no entries for this "
                        "element type");
        runTiles(tiling, tiles, [&](std::size_t tile) {
            withWeightIndices(*prep, [&](const auto* wIdxT) {
                opKernel<T>(*prep, wIdxT, aIdx, table, lut.rows(),
                            options.simd, n, tiling.rangeOf(tile),
                            tileArena(tiling, tiles, arena), outData);
            });
        });
        return;
      }
      case Mode::CanonExplicit:
      case Mode::CanonReorder:
      case Mode::CanonStream: {
        const CanonicalActs acts = prepCanonicalActs(
            problem.a, prep->p, prep->groups, *prep, arena);
        const unsigned batch = mode == Mode::CanonStream
                                   ? std::max(1u, prep->kSlices)
                                   : prep->groups;
        if (useFusedSlices(prep->canonicalLut->rows(), m)) {
            // Row tiles rebuild every column's fused slices (rows
            // entries per group); keep that duplication under ~25% of
            // the per-tile sweep (chunk rows x groups lookups).
            Tiling fusedTiling = tiling;
            capRowTiles(fusedTiling,
                        std::max<std::size_t>(
                            1, m / (4 * prep->canonicalLut->rows())));
            runTiles(fusedTiling, tiles, [&](std::size_t tile) {
                withWeightIndices(*prep, [&](const auto* wIdxT) {
                    canonicalFusedKernel<T, kInt>(
                        *prep, wIdxT, acts, mode, batch, options.simd, n,
                        fusedTiling.rangeOf(tile),
                        tileArena(fusedTiling, tiles, arena), outData);
                });
            });
        } else {
            runTiles(tiling, tiles, [&](std::size_t tile) {
                withWeightIndices(*prep, [&](const auto* wIdxT) {
                    canonicalDirectKernel<T, kInt>(
                        *prep, wIdxT, acts, mode, batch, n,
                        tiling.rangeOf(tile), outData);
                });
            });
        }
        return;
      }
    }
    LOCALUT_PANIC("invalid execution mode");
}

} // namespace

void
executeGemmInt(const GemmProblem& problem, const GemmPlan& plan,
               const ExecOptions& options, std::vector<std::int32_t>& out)
{
    LOCALUT_REQUIRE(problem.config().weightCodec.isInteger() &&
                        problem.config().actCodec.isInteger(),
                    "integer execution on float codecs");
    executeTyped<std::int32_t, true>(problem, plan, options, out);
}

void
executeGemmFloat(const GemmProblem& problem, const GemmPlan& plan,
                 const ExecOptions& options, std::vector<float>& out)
{
    executeTyped<float, false>(problem, plan, options, out);
}

namespace {

template <typename T, bool kInt>
void
executeReferenceTyped(const GemmProblem& problem,
                      const ExecOptions& options, std::vector<T>& out)
{
    LOCALUT_REQUIRE(!problem.w.codes.empty() && !problem.a.codes.empty(),
                    "functional execution needs materialized codes");
    // The reference MAC only needs the decode codebooks, so any
    // preparation of the same problem fits regardless of design point.
    std::shared_ptr<const PreparedGemm> owned;
    const PreparedGemm* prep = options.prepared;
    if (prep == nullptr) {
        GemmPlan plan(DesignPoint::NaivePim, problem.config());
        plan.m = problem.m();
        plan.k = problem.k();
        plan.n = problem.n();
        owned = prepareGemm(problem, plan);
        prep = owned.get();
    } else {
        LOCALUT_REQUIRE(prep->m == problem.m() && prep->k == problem.k() &&
                            prep->config == problem.config(),
                        "prepared operand does not match this problem");
    }
    ExecArena& arena =
        options.arena != nullptr ? *options.arena : ExecArena::threadLocal();
    const std::size_t m = problem.m(), n = problem.n();
    out.resize(m * n);
    T* outData = out.data();
    const Tiling tiling = chooseTiling(m, n, options.tiles);
    const TileExecutor* tiles = options.tiles;
    runTiles(tiling, tiles, [&](std::size_t tile) {
        ExecArena& ta = tileArena(tiling, tiles, arena);
        if constexpr (kInt) {
            naiveIntKernel(*prep, problem, n, tiling.rangeOf(tile), ta,
                           outData);
        } else {
            naiveFloatKernel(*prep, problem, n, tiling.rangeOf(tile), ta,
                             outData);
        }
    });
}

} // namespace

void
executeReferenceInt(const GemmProblem& problem, const ExecOptions& options,
                    std::vector<std::int32_t>& out)
{
    LOCALUT_REQUIRE(problem.config().weightCodec.isInteger() &&
                        problem.config().actCodec.isInteger(),
                    "integer execution on float codecs");
    executeReferenceTyped<std::int32_t, true>(problem, options, out);
}

void
executeReferenceFloat(const GemmProblem& problem,
                      const ExecOptions& options, std::vector<float>& out)
{
    executeReferenceTyped<float, false>(problem, options, out);
}

} // namespace localut
