#ifndef LOCALUT_KERNELS_EXEC_ENGINE_H_
#define LOCALUT_KERNELS_EXEC_ENGINE_H_

/**
 * @file
 * The prepared-operand functional execution engine.  The legacy
 * functional executors (kernels/functional.h) rebuilt every
 * weight-dependent artifact — packed weight indices, materialized
 * LUT/coefficient tables, decode codebooks — on every GEMM call, and
 * allocated fresh scratch and output vectors each time.  This engine
 * splits execution into:
 *
 *  - PreparedGemm: everything derivable from (weights, plan) alone,
 *    constructed once via prepareGemm() and reusable across calls
 *    (and cacheable: PlanCache::preparedFor() memoizes them alongside
 *    the plans, keyed by the plan key plus a weight-content
 *    fingerprint);
 *  - ExecArena: reusable 64-byte-aligned scratch buffers, so
 *    steady-state execution performs zero heap allocations;
 *  - cache-blocked tile kernels: the output is cut into disjoint
 *    [row-range x column-range] tiles executed through a TileExecutor
 *    (common/parallel.h) — serially by default, or fanned onto the
 *    InferenceSession worker pool / a TilePool.  Each output element's
 *    accumulation order is fixed (activation groups ascending, slice
 *    batches ascending under streaming), so results are bit-exact
 *    against the legacy executors on every backend regardless of tile
 *    scheduling, for integer and floating-point configurations alike.
 *
 * The legacy functional:: entry points now run on this engine with an
 * ad-hoc (uncached) preparation, so there is exactly one inner-loop
 * implementation; "unprepared" execution keeps paying the per-call
 * operand construction and is the baseline bench/exec_throughput.cc
 * compares prepared execution against.
 */

#include <cstdint>
#include <memory>
#include <vector>

#include "common/parallel.h"
#include "kernels/design_point.h"
#include "kernels/gemm.h"
#include "lut/canonical_lut.h"
#include "lut/packed_lut.h"
#include "lut/reordering_lut.h"

namespace localut {

/**
 * Reusable aligned scratch buffers.  Buffers grow but never shrink, so
 * once a shape has been executed, re-executing it (or anything smaller)
 * allocates nothing.  Arenas are not thread-safe; tile closures running
 * on pool threads use their own threadLocal() arena.
 */
class ExecArena
{
  public:
    /** Distinct concurrently-live scratch buffers per element type. */
    static constexpr unsigned kSlots = 4;

    ExecArena() = default;
    ExecArena(const ExecArena&) = delete;
    ExecArena& operator=(const ExecArena&) = delete;

    std::int32_t* i32(unsigned slot, std::size_t n);
    float* f32(unsigned slot, std::size_t n);
    std::uint64_t* u64(unsigned slot, std::size_t n);
    std::uint32_t* u32(unsigned slot, std::size_t n);
    std::uint16_t* u16(unsigned slot, std::size_t n);
    std::uint8_t* u8(unsigned slot, std::size_t n);
    /** Pointer scratch (elements are `const void*`; cast per read). */
    const void** ptrs(unsigned slot, std::size_t n);

    /** Times any buffer grew (== heap allocations performed). */
    std::uint64_t allocations() const { return allocations_; }

    /** Total bytes currently reserved across all buffers. */
    std::uint64_t bytesReserved() const { return bytesReserved_; }

    /** The calling thread's arena (created on first use). */
    static ExecArena& threadLocal();

  private:
    struct Buffer {
        void* data = nullptr;
        std::size_t bytes = 0;

        ~Buffer();
    };

    void* raw(Buffer& buffer, std::size_t bytes);

    template <typename T>
    T*
    typed(Buffer (&buffers)[kSlots], unsigned slot, std::size_t n)
    {
        return static_cast<T*>(raw(buffers[slot], n * sizeof(T)));
    }

    Buffer i32_[kSlots];
    Buffer f32_[kSlots];
    Buffer u64_[kSlots];
    Buffer u32_[kSlots];
    Buffer u16_[kSlots];
    Buffer u8_[kSlots];
    Buffer ptrs_[kSlots];
    std::uint64_t allocations_ = 0;
    std::uint64_t bytesReserved_ = 0;
};

/**
 * Everything execution needs that depends only on (weights, plan):
 * packed weight indices, shared LUT tables, decode codebooks, the LTC
 * bit-affine decomposition, and the canonicalization rank tables.
 * Immutable after construction and safe to share across threads.
 */
struct PreparedGemm {
    DesignPoint design = DesignPoint::LoCaLut;
    QuantConfig config{ValueCodec::signedBinary(),
                       ValueCodec::signedBinary()};
    unsigned p = 1;
    unsigned kSlices = 1;
    bool streaming = false;
    std::size_t m = 0, k = 0;
    unsigned groups = 0;
    /** weightsFingerprint() of the weight matrix this was built from;
     * 0 until the caching layer stamps it (prepareGemm() itself never
     * hashes — that would put an O(M*K) pass on every ad-hoc call). */
    std::uint64_t weights = 0;

    /** Group-major packed weight indices, wIdxT*[g * m + mm] (LUT
     * designs) — transposed so the per-(column, group) inner row sweep
     * streams contiguously, and stored at the narrowest width that
     * holds bw * p bits (the sweep is memory-bound on this stream). */
    std::vector<std::uint8_t> wIdxT8;   ///< bw * p <= 8
    std::vector<std::uint16_t> wIdxT16; ///< bw * p <= 16
    std::vector<std::uint64_t> wIdxT64; ///< wider packings

    /** Decode codebooks, indexed by raw code (always present). */
    std::vector<std::int32_t> wDecode; ///< integer weight codecs only
    std::vector<float> wDecodeF;
    std::vector<std::int32_t> aDecode; ///< integer activation codecs only
    std::vector<float> aDecodeF;

    /** LTC bit-affine decomposition + per-(row, plane, group) table
     * indices, ltcIdx[(mm * bw + j) * groups + g]. */
    std::vector<std::int64_t> ltcCoeff;
    std::int64_t ltcBase = 0;
    std::vector<std::uint8_t> ltcIdx;

    /** Canonicalization rank tables: binom[i * (alphabet + p) + z] =
     * C(z, i + 1), so per-group multiset ranking is table lookups
     * instead of repeated binomial evaluation. */
    std::vector<std::uint64_t> msBinom;

    /** Shared LUT tables (null for designs that do not use them). */
    std::shared_ptr<const OperationPackedLut> opLut;
    std::shared_ptr<const CanonicalLut> canonicalLut;
    std::shared_ptr<const ReorderingLut> reorderLut;

    /**
     * True when this preparation fits (@p problem, @p plan): same
     * shape, quantization config, and design/packing resolution.
     * Weight CONTENT agreement is deliberately not checked — that
     * would put an O(M*K) hash back on every call — and is the
     * caller's contract: PlanCache::preparedFor() keys operands by
     * weightsFingerprint(), and direct users hold one PreparedGemm per
     * problem.
     */
    bool matches(const GemmProblem& problem, const GemmPlan& plan) const;

    /** Bytes held by the weight-dependent members (cache sizing). */
    std::uint64_t bytes() const;
};

/**
 * Content fingerprint of a weight matrix (shape, codec, codes).  Part
 * of the prepared-operand cache key: two same-shaped problems with
 * different weights must never share a PreparedGemm.
 */
std::uint64_t weightsFingerprint(const QuantizedMatrix& w);

/**
 * Builds the prepared operand for (@p problem, @p plan).  LUT tables
 * come from the shared LutTableCache when @p useTableCache (the
 * default — every execution path, including the ad-hoc "unprepared"
 * one, amortizes table construction across the process).  Pass false
 * to force a private table build, e.g. to measure cold-construction
 * cost; bench/exec_throughput.cc's "legacy" lane freezes the old
 * per-call-everything kernels instead.
 */
std::shared_ptr<PreparedGemm> prepareGemm(const GemmProblem& problem,
                                          const GemmPlan& plan,
                                          bool useTableCache = true);

/** Per-execution knobs threaded through Backend::execute(). */
struct ExecOptions {
    /** Run the functional pass (false = cost accounting only). */
    bool computeValues = true;
    /**
     * Prepared operand for this (problem, plan); null prepares ad hoc.
     * Must satisfy prepared->matches(problem, plan) — shape/config/
     * plan-resolution mismatches fatal.  matches() does NOT re-hash
     * weight content (see its doc); supplying an operand built from
     * different same-shaped weights is undetected caller error.
     */
    const PreparedGemm* prepared = nullptr;
    /** Scratch arena; null uses the calling thread's arena. */
    ExecArena* arena = nullptr;
    /** Tile executor; null runs tiles serially on the calling thread. */
    const TileExecutor* tiles = nullptr;
    /**
     * Vectorize the fused lookup-accumulate inner loops (portable
     * `omp simd`-style autovectorization hints; no ISA assumptions).
     * Bit-exact against the scalar path on every backend: the
     * vectorized dimension is the OUTPUT rows, so each element's
     * accumulation order (activation groups ascending, slice windows
     * ascending under streaming) is untouched — only independent
     * output elements advance in lockstep.  False turns the hints off
     * (the scalar baseline the bench and parity fuzz compare against).
     */
    bool simd = true;
    /**
     * Flat (node-major) rank this execution is placed on — purely
     * informational provenance for multi-node serving: the sharded
     * executors and the session's rank queues stamp each shard's home
     * rank here so arena reuse, tracing hooks, and tests can attribute
     * work to a Topology position.  Never read by the kernels
     * themselves (values and costs are rank-independent).
     */
    unsigned flatRank = 0;
};

/**
 * Functional execution of (@p problem, @p plan) into @p out (resized to
 * m * n; reusing a warm vector keeps the steady state allocation-free).
 * Integer configurations only; bit-exact against the legacy
 * functional:: executors for every design point.
 */
void executeGemmInt(const GemmProblem& problem, const GemmPlan& plan,
                    const ExecOptions& options,
                    std::vector<std::int32_t>& out);

/** Float counterpart (floating-point symbol configurations). */
void executeGemmFloat(const GemmProblem& problem, const GemmPlan& plan,
                      const ExecOptions& options, std::vector<float>& out);

/**
 * The host-backend reference GEMM (plain MAC, design-independent) on
 * the engine: prepared decode codebooks, tiled execution.  Bit-exact
 * against referenceGemmInt()/referenceGemmFloat().
 */
void executeReferenceInt(const GemmProblem& problem,
                         const ExecOptions& options,
                         std::vector<std::int32_t>& out);
void executeReferenceFloat(const GemmProblem& problem,
                           const ExecOptions& options,
                           std::vector<float>& out);

} // namespace localut

#endif // LOCALUT_KERNELS_EXEC_ENGINE_H_
