#ifndef LOCALUT_KERNELS_GEMM_H_
#define LOCALUT_KERNELS_GEMM_H_

/**
 * @file
 * The GEMM engine: plans and executes O(MxN) = W(MxK) * A(KxN) on the PIM
 * system model under any design point.  Kernels are functional + timed:
 * run() optionally computes the real numeric output with the real LUT data
 * structures while the cost accounting (shared between the planner's
 * estimates and the execution) charges instructions, DMA, host ops, and
 * link bytes.
 */

#include <cstdint>
#include <vector>

#include "kernels/design_point.h"
#include "lut/planner.h"
#include "quant/quantizer.h"
#include "upmem/cost_model.h"
#include "upmem/params.h"

namespace localut {

struct ExecOptions; // kernels/exec_engine.h

/** A quantized GEMM instance. */
struct GemmProblem {
    QuantizedMatrix w; ///< M x K
    QuantizedMatrix a; ///< K x N

    std::size_t m() const { return w.rows; }
    std::size_t k() const { return w.cols; }
    std::size_t n() const { return a.cols; }

    QuantConfig
    config() const
    {
        return {w.codec, a.codec};
    }
};

/** Planner overrides for sensitivity studies (0 / unset = automatic). */
struct PlanOverrides {
    unsigned p = 0;                ///< force packing degree
    unsigned kSlices = 0;          ///< force slice window (Fig. 13)
    int streaming = -1;            ///< -1 auto, 0 buffer-resident, 1 stream
    unsigned gM = 0, gN = 0;       ///< force the partition grid

    bool operator==(const PlanOverrides&) const = default;
};

/** A fully-resolved execution plan for one GEMM. */
struct GemmPlan {
    GemmPlan(DesignPoint d, const QuantConfig& c) : design(d), config(c) {}

    DesignPoint design;
    QuantConfig config;

    unsigned p = 1;         ///< packing degree (LUT designs)
    unsigned kSlices = 1;   ///< resident slice pairs (streaming)
    bool streaming = false; ///< LUTs in MRAM with slice streaming

    unsigned gM = 1, gN = 1;     ///< partition grid (K is never split)
    unsigned tileM = 0, tileN = 0; ///< per-DPU tile (ceil)
    std::size_t m = 0, k = 0, n = 0;
    unsigned groups = 0;         ///< ceil(K / p) activation groups

    double predictedSeconds = 0; ///< paper Eq. 2/4 prediction (LoCaLut)
    std::uint64_t lutWramBytes = 0; ///< LUT bytes resident in WRAM
    std::uint64_t lutMramBytes = 0; ///< LUT bytes resident in MRAM

    unsigned dpusUsed() const { return gM * gN; }
};

/** Execution outcome: values (optional) + timing/energy reports. */
struct GemmResult {
    std::vector<std::int32_t> outInt; ///< M x N (integer configs)
    std::vector<float> outFloat;      ///< M x N (floating-point configs)
    KernelCost cost;
    TimingReport timing;
    EnergyReport energy;
};

/**
 * Plans and runs GEMMs on a PIM system model.
 *
 * Typical use:
 *     GemmEngine engine(PimSystemConfig::upmemServer());
 *     GemmResult r = engine.run(problem, DesignPoint::LoCaLut);
 */
class GemmEngine
{
  public:
    explicit GemmEngine(const PimSystemConfig& config);

    const PimSystemConfig& system() const { return config_; }

    /**
     * Resolves a full execution plan: packing degree / placement / slice
     * window via the paper's performance model (Section IV-D and V), and
     * the partition grid by minimizing the modeled end-to-end time.
     */
    GemmPlan plan(const GemmProblem& problem, DesignPoint design,
                  const PlanOverrides& overrides = {}) const;

    /**
     * Charges the full event cost of executing @p plan (no values).  This
     * is the single source of truth used by both planning estimates and
     * run(), so planner and "measurement" can never diverge structurally.
     */
    KernelCost chargeCosts(const GemmPlan& plan) const;

    /** Executes a plan; @p computeValues controls the functional pass. */
    GemmResult run(const GemmProblem& problem, const GemmPlan& plan,
                   bool computeValues = true) const;

    /**
     * Executes a plan under explicit execution options (prepared
     * operand / arena / tile executor; see kernels/exec_engine.h).
     * Values are identical to the bare run() for any options.
     */
    GemmResult run(const GemmProblem& problem, const GemmPlan& plan,
                   const ExecOptions& options) const;

    /** plan() + run() convenience. */
    GemmResult run(const GemmProblem& problem, DesignPoint design,
                   bool computeValues = true,
                   const PlanOverrides& overrides = {}) const;

  private:
    void choosePartition(const GemmProblem& problem, GemmPlan& plan,
                         const PlanOverrides& overrides) const;

    /**
     * Cross-checks the Eq. 2-6 choice against every (p, placement)
     * candidate using the full event model (the paper model ignores DMA
     * setup and the degenerate p = 1 datapath).
     */
    void refineLocalutPlan(GemmPlan& plan,
                           const PlanOverrides& overrides) const;

    PimSystemConfig config_;
};

/**
 * Index payload bytes per (group, column) sent host -> PIM for @p plan
 * (raw packed codes, packed vector index, or multiset + Lehmer ranks
 * depending on the design point).  Shared by chargeCosts() and the DPU
 * micro-simulator's trace generator (src/upmemsim/trace.cc) so the two
 * can never disagree on operand-DMA byte totals.
 */
double activationIndexBytesPerGroup(const GemmPlan& plan);

/** Builds a random quantized GEMM problem (deterministic per seed). */
GemmProblem makeRandomProblem(std::size_t m, std::size_t k, std::size_t n,
                              const QuantConfig& config,
                              std::uint64_t seed = 42);

} // namespace localut

#endif // LOCALUT_KERNELS_GEMM_H_
