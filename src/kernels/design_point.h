#ifndef LOCALUT_KERNELS_DESIGN_POINT_H_
#define LOCALUT_KERNELS_DESIGN_POINT_H_

/**
 * @file
 * The design points evaluated in the paper's Fig. 9/10: the two baselines
 * (naive MAC PIM, LUT-Tensor-Core-style bit-serial) and the incremental
 * LoCaLUT stack (OP -> +LC -> +RC -> +SS).
 */

namespace localut {

/** GEMM execution strategies on the PIM system. */
enum class DesignPoint {
    NaivePim,   ///< int MAC on the in-order cores, no LUTs
    Ltc,        ///< LUT Tensor Core adaptation: runtime activation tables,
                ///< bit-serial weights (g = 4 activations per lookup)
    OpLutDram,  ///< operation-packed LUT resident in the DRAM bank
                ///< (Fig. 3a candidate: every lookup is a DMA access)
    OpLut,      ///< operation-packed LUT sized for the local buffer
    OpLc,       ///< + LUT canonicalization (runtime weight reordering)
    OpLcRc,     ///< + reordering LUT
    LoCaLut,    ///< + LUT slice streaming with planner-chosen p*, k, placement
};

/** Stable short name, e.g. "OP+LC+RC". */
const char* designPointName(DesignPoint dp);

} // namespace localut

#endif // LOCALUT_KERNELS_DESIGN_POINT_H_
