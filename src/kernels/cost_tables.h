#ifndef LOCALUT_KERNELS_COST_TABLES_H_
#define LOCALUT_KERNELS_COST_TABLES_H_

/**
 * @file
 * Instruction-cost tables for every kernel's inner loop, hand-derived from
 * UPMEM-ISA loop sketches (the DPU is a single-issue in-order core: every
 * address computation, extract, load, and branch is a full instruction).
 * These constants are this reproduction's analog of the paper's profiled
 * kernel costs; the headline one — 12 instructions per canonical+reordering
 * lookup — is taken directly from the paper (Section VI-I).
 *
 * Derivations (one iteration, amortized costs in parentheses):
 *
 * Naive MAC, per multiply-accumulate:
 *     lbu/extract weight  (byte load amortized over packed codes + shift
 *                          + and)              ~2.5
 *     lbu/extract act                          ~2.5
 *     mul (native 8x8)                          1
 *     add                                       1
 *     loop bookkeeping                          1     => ~8
 *
 * LTC lookup, per (weight bit-plane, group of 4 activations).  The DPU has
 * no bit-field extract, no free addressing modes, and 32-bit registers
 * (accumulation is 64-bit across bit-planes):
 *     gather 4 weight bits (load amort + 2x shift/and)   3.5
 *     table address (shl + add)                          2
 *     load entry                                         1
 *     shift-accumulate into 64-bit (shl + addc pair)     2
 *     signed-weight affine fix (amortized per group)     1.5
 *     loop bookkeeping                                   2   => 12
 *
 * LTC table build, per entry (16 entries per group): the raw activation
 * codes must be decoded (extract + sign-extend) before summing:
 *     decode (amortized) + add + store + addressing      5
 *
 * OP lookup, per group of p MACs:
 *     load packed activation index (host-precomputed)    1
 *     load packed weight vector                           1
 *     fused row+column address (shl + add + add)          3
 *     load entry                                          1
 *     accumulate                                          1
 *     loop bookkeeping                                    1   => 8
 *
 * LC runtime reordering, per group (replaced by the reordering LUT in RC):
 *     unpack p weight codes (shift + and)               2p
 *     gather by permutation (load idx + select)         2p
 *     repack (shl + or)                                 2p
 *     setup                                              4   => 6p + 4
 *
 * RC lookup (reordering LUT + canonical LUT + accumulate): the paper
 * measures 12 instructions; we decompose them for the Fig. 16(b)
 * breakdown (index calculation dominates — operand fetch, rank fetch,
 * and both LUT address computations; the LUT loads themselves are one
 * instruction each, matching the paper's ~6.9% reordering-access share):
 *     index calculation (operand + rank fetch + addresses)     6
 *     reordering LUT load                                      1
 *     canonical LUT load                                       2
 *     accumulate + loop                                        3   => 12
 *
 * SS lookup: identical datapath, but holding k slices resident lets the
 * kernel hoist the per-row weight fetch and loop bookkeeping out of the
 * per-slice loop, amortizing ~3 of the 12 instructions across k.
 */

#include <cmath>

namespace localut {
namespace cost {

/** Naive MAC instructions per multiply-accumulate. */
inline double
naiveInstrPerMac(unsigned bw, unsigned ba)
{
    const double wExtract = bw < 8 ? 2.5 : 1.0;
    const double aExtract = ba < 8 ? 2.5 : 1.5;
    return wExtract + aExtract + 3.0; // + mul, add, loop
}

// ---- LTC (LUT-Tensor-Core-style activation tables) ----
inline constexpr unsigned kLtcGroupSize = 4;     ///< activations per lookup
inline constexpr unsigned kLtcTableEntries = 16; ///< 2^group subsets
inline constexpr double kLtcInstrPerLookup = 12.0;
inline constexpr double kLtcTableBuildPerEntry = 5.0;
inline constexpr double kLtcTableEntryBytes = 2.0;

// ---- OP ----
inline constexpr double kOpIndexCalcInstr = 5.0;
inline constexpr double kOpLutLoadInstr = 1.0;
inline constexpr double kOpAccumulateInstr = 2.0;
inline constexpr double kOpInstrPerLookup =
    kOpIndexCalcInstr + kOpLutLoadInstr + kOpAccumulateInstr; // 8

// ---- LC ----
/** Runtime unpack/permute/repack cost the reordering LUT eliminates. */
inline double
lcReorderInstr(unsigned p)
{
    return 6.0 * p + 4.0;
}
inline constexpr double kLcIndexCalcInstr = 3.0;
inline constexpr double kLcLutLoadInstr = 2.0;
inline constexpr double kLcAccumulateInstr = 3.0;

// ---- RC: the paper's 12-instruction lookup ----
inline constexpr double kRcIndexCalcInstr = 6.0;
inline constexpr double kRcReorderLoadInstr = 1.0;
inline constexpr double kRcCanonicalLoadInstr = 2.0;
inline constexpr double kRcAccumulateInstr = 3.0;
inline constexpr double kRcInstrPerLookup =
    kRcIndexCalcInstr + kRcReorderLoadInstr + kRcCanonicalLoadInstr +
    kRcAccumulateInstr; // 12

/** Instructions amortized across the k resident slices by SS. */
inline constexpr double kSsAmortizableInstr = 3.0;

/** SS per-lookup instructions with k resident slices. */
inline double
ssInstrPerLookup(unsigned kSlices)
{
    return kRcInstrPerLookup - kSsAmortizableInstr +
           kSsAmortizableInstr / static_cast<double>(kSlices);
}

// ---- Host-side costs (scalar-equivalent operations) ----
/** Quantize one activation element (scale, round, clamp, store). */
inline constexpr double kHostQuantOpsPerElem = 4.0;
/** Dequantize one output element. */
inline constexpr double kHostDequantOpsPerElem = 2.0;

/** Sort + rank + pack one activation group of p (sorting network). */
inline double
hostPackSortOpsPerGroup(unsigned p)
{
    const double sortOps = p * std::log2(static_cast<double>(p) + 1.0) * 2.0;
    const double rankOps = 3.0 * p; // multiset + permutation ranking
    const double packOps = 2.0 * p;
    return sortOps + rankOps + packOps + 4.0;
}

/** Pack one activation group (OP path: no sorting). */
inline double
hostPackOpsPerGroup(unsigned p)
{
    return 2.0 * p + 2.0;
}

} // namespace cost
} // namespace localut

#endif // LOCALUT_KERNELS_COST_TABLES_H_
