/**
 * @file
 * Event-cost charging for every design point: the single source of truth
 * shared by plan-time estimation and execution (GemmEngine::chargeCosts).
 * See kernels/cost_tables.h for the per-instruction derivations.
 */

#include <algorithm>

#include "common/bitops.h"
#include "common/logging.h"
#include "kernels/cost_tables.h"
#include "kernels/gemm.h"
#include "lut/capacity.h"
#include "lut/lut_shape.h"

namespace localut {

double
activationIndexBytesPerGroup(const GemmPlan& plan)
{
    const LutShape shape(plan.config, plan.p);
    switch (plan.design) {
      case DesignPoint::NaivePim:
      case DesignPoint::Ltc:
        // Raw packed activation codes.
        return static_cast<double>(plan.p) * plan.config.ba() / 8.0;
      case DesignPoint::OpLut:
      case DesignPoint::OpLutDram:
        // Packed activation vector index.
        return static_cast<double>(
            bytesForBits(static_cast<std::uint64_t>(plan.config.ba()) *
                         plan.p));
      case DesignPoint::OpLc:
        // Multiset rank + the raw sorted permutation vector.
        return static_cast<double>(
            bytesForBits(ceilLog2(shape.canonicalColumns())) +
            bytesForBits(static_cast<std::uint64_t>(plan.p) *
                         ceilLog2(plan.p)));
      case DesignPoint::OpLcRc:
      case DesignPoint::LoCaLut:
        // Multiset rank + Lehmer permutation rank.
        return static_cast<double>(
            bytesForBits(ceilLog2(shape.canonicalColumns())) +
            bytesForBits(ceilLog2(shape.reorderColumns())));
    }
    LOCALUT_PANIC("invalid design point");
}

KernelCost
GemmEngine::chargeCosts(const GemmPlan& plan) const
{
    KernelCost cost;
    const double m = static_cast<double>(plan.m);
    const double k = static_cast<double>(plan.k);
    const double n = static_cast<double>(plan.n);
    const double tileM = plan.tileM;
    const double tileN = plan.tileN;
    const double groups = plan.groups;
    const double dpus = plan.dpusUsed();
    const unsigned bw = plan.config.bw();
    const unsigned ba = plan.config.ba();
    const LutShape shape(plan.config, plan.p);
    const double wVecBytes = static_cast<double>(
        bytesForBits(static_cast<std::uint64_t>(bw) * plan.p));

    // ---- Host: activation quantization, output dequantization ----
    cost.addHostOps(Phase::HostQuantize, cost::kHostQuantOpsPerElem * k * n);
    cost.addHostOps(Phase::HostDequant, cost::kHostDequantOpsPerElem * m * n);

    // ---- Host: group packing / canonicalization ----
    switch (plan.design) {
      case DesignPoint::NaivePim:
      case DesignPoint::Ltc:
        break; // raw codes, packing folded into quantization
      case DesignPoint::OpLut:
      case DesignPoint::OpLutDram:
        cost.addHostOps(Phase::HostPackSort,
                        cost::hostPackOpsPerGroup(plan.p) * groups * n);
        break;
      default:
        cost.addHostOps(Phase::HostPackSort,
                        cost::hostPackSortOpsPerGroup(plan.p) * groups * n);
        break;
    }

    // ---- Link: activation payload in (replicated across gM), output ----
    const double ibPerGroup = activationIndexBytesPerGroup(plan);
    double actBytesPerDpu;
    if (plan.design == DesignPoint::NaivePim ||
        plan.design == DesignPoint::Ltc) {
        actBytesPerDpu =
            static_cast<double>(bytesForBits(static_cast<std::uint64_t>(
                plan.k) * ba)) * tileN;
    } else {
        actBytesPerDpu = ibPerGroup * groups * tileN;
    }
    cost.addLinkBytes(Phase::LinkActIn, actBytesPerDpu * dpus);
    cost.addLinkBytes(Phase::LinkOut, m * n * 4.0);

    // ---- DPU: operand DMA (per representative DPU) ----
    // Weight tile: one DMA per row; packed layout.
    double wRowBytes;
    if (plan.design == DesignPoint::NaivePim ||
        plan.design == DesignPoint::Ltc) {
        wRowBytes = static_cast<double>(
            bytesForBits(static_cast<std::uint64_t>(plan.k) * bw));
    } else {
        wRowBytes = groups * wVecBytes;
    }
    cost.addDma(Phase::OperandDma, tileM * wRowBytes, tileM);
    // Activation tile: one DMA per column.
    cost.addDma(Phase::OperandDma, actBytesPerDpu, tileN);
    // Output writeback.
    cost.addDma(Phase::OutputDma, tileM * tileN * 4.0, tileM);

    // ---- DPU: compute ----
    switch (plan.design) {
      case DesignPoint::NaivePim: {
        cost.addInstr(Phase::MacCompute,
                      tileM * tileN * k * cost::naiveInstrPerMac(bw, ba));
        break;
      }
      case DesignPoint::Ltc: {
        const double groups4 = std::ceil(k / cost::kLtcGroupSize);
        cost.addInstr(Phase::TableBuild,
                      groups4 * tileN * cost::kLtcTableEntries *
                          cost::kLtcTableBuildPerEntry);
        cost.addInstr(Phase::CanonicalAccess,
                      tileM * groups4 * tileN * bw *
                          cost::kLtcInstrPerLookup);
        break;
      }
      case DesignPoint::OpLut: {
        const double lookups = tileM * groups * tileN;
        cost.addInstr(Phase::IndexCalc, lookups * cost::kOpIndexCalcInstr);
        cost.addInstr(Phase::CanonicalAccess,
                      lookups * cost::kOpLutLoadInstr);
        cost.addInstr(Phase::Accumulate,
                      lookups * cost::kOpAccumulateInstr);
        break;
      }
      case DesignPoint::OpLutDram: {
        // Fig. 3(a): the LUT lives in the DRAM bank, so every lookup is a
        // minimum-granule DMA access instead of a WRAM load.
        const double lookups = tileM * groups * tileN;
        cost.addInstr(Phase::IndexCalc, lookups * cost::kOpIndexCalcInstr);
        cost.addDma(Phase::CanonicalAccess, lookups * 8.0, lookups);
        cost.addInstr(Phase::Accumulate,
                      lookups * cost::kOpAccumulateInstr);
        break;
      }
      case DesignPoint::OpLc: {
        const double lookups = tileM * groups * tileN;
        cost.addInstr(Phase::IndexCalc,
                      lookups * (cost::lcReorderInstr(plan.p) +
                                 cost::kLcIndexCalcInstr));
        cost.addInstr(Phase::CanonicalAccess,
                      lookups * cost::kLcLutLoadInstr);
        cost.addInstr(Phase::Accumulate,
                      lookups * cost::kLcAccumulateInstr);
        break;
      }
      case DesignPoint::OpLcRc:
      case DesignPoint::LoCaLut: {
        const double lookups = tileM * groups * tileN;
        if (plan.p == 1) {
            // Degenerate packing: sorting and reordering are identities,
            // so the kernel datapath is exactly the OP one.
            cost.addInstr(Phase::IndexCalc,
                          lookups * cost::kOpIndexCalcInstr);
            cost.addInstr(Phase::CanonicalAccess,
                          lookups * cost::kOpLutLoadInstr);
            cost.addInstr(Phase::Accumulate,
                          lookups * cost::kOpAccumulateInstr);
            break;
        }
        double indexCalc = cost::kRcIndexCalcInstr;
        if (plan.design == DesignPoint::LoCaLut && plan.streaming) {
            // Slice batching hoists weight fetch + loop bookkeeping.
            indexCalc = cost::kRcIndexCalcInstr -
                        cost::kSsAmortizableInstr +
                        cost::kSsAmortizableInstr / plan.kSlices;
            // Slice streaming DMA: one (canonical, reordering) column pair
            // per distinct activation group instance.
            const double slices = groups * tileN;
            const double slicePair = static_cast<double>(
                shape.weightRows() * shape.outBytes +
                shape.weightRows() * reorderEntryBytes(shape));
            cost.addDma(Phase::LutLoadDma, slices * slicePair, 2.0 * slices);
        }
        cost.addInstr(Phase::IndexCalc, lookups * indexCalc);
        cost.addInstr(Phase::ReorderAccess,
                      lookups * cost::kRcReorderLoadInstr);
        cost.addInstr(Phase::CanonicalAccess,
                      lookups * cost::kRcCanonicalLoadInstr);
        cost.addInstr(Phase::Accumulate,
                      lookups * cost::kRcAccumulateInstr);
        break;
      }
    }
    return cost;
}

} // namespace localut
