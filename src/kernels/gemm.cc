#include "kernels/gemm.h"

#include <algorithm>
#include <limits>

#include "common/bitops.h"
#include "common/logging.h"
#include "common/rng.h"
#include "kernels/cost_tables.h"
#include "kernels/exec_engine.h"
#include "lut/capacity.h"

namespace localut {

const char*
designPointName(DesignPoint dp)
{
    switch (dp) {
      case DesignPoint::NaivePim:  return "NaivePIM";
      case DesignPoint::Ltc:       return "LTC";
      case DesignPoint::OpLutDram: return "OP(DRAM)";
      case DesignPoint::OpLut:     return "OP";
      case DesignPoint::OpLc:      return "OP+LC";
      case DesignPoint::OpLcRc:    return "OP+LC+RC";
      case DesignPoint::LoCaLut:   return "LoCaLUT";
    }
    LOCALUT_PANIC("invalid design point");
}

GemmEngine::GemmEngine(const PimSystemConfig& config) : config_(config) {}

namespace {

/** Fills the design-specific fields (p, k, streaming, LUT residency). */
void
resolveDesign(GemmPlan& plan, const PimSystemConfig& sys,
              const PlanOverrides& overrides)
{
    const QuantConfig& cfg = plan.config;
    const std::uint64_t wramBudget = sys.dpu.wramLutBudget();
    const std::uint64_t mramBudget = sys.dpu.mramLutBudget();

    switch (plan.design) {
      case DesignPoint::NaivePim:
        plan.p = 1;
        break;
      case DesignPoint::Ltc:
        plan.p = 1;
        plan.lutWramBytes = static_cast<std::uint64_t>(
            ceilDiv(plan.k, std::size_t{cost::kLtcGroupSize}) *
            cost::kLtcTableEntries * cost::kLtcTableEntryBytes);
        break;
      case DesignPoint::OpLutDram: {
        plan.p = overrides.p
                     ? overrides.p
                     : maxPackingDegree(mramBudget, cfg, false, false);
        LOCALUT_REQUIRE(plan.p >= 1, "no DRAM-resident OP LUT fits for ",
                        cfg.name());
        plan.lutMramBytes = opPackedLutBytes(LutShape(cfg, plan.p));
        break;
      }
      case DesignPoint::OpLut: {
        plan.p = overrides.p
                     ? overrides.p
                     : maxPackingDegree(wramBudget, cfg, false, false);
        LOCALUT_REQUIRE(plan.p >= 1, "no buffer-resident OP LUT fits for ",
                        cfg.name());
        plan.lutWramBytes = opPackedLutBytes(LutShape(cfg, plan.p));
        break;
      }
      case DesignPoint::OpLc: {
        plan.p = overrides.p
                     ? overrides.p
                     : maxPackingDegree(wramBudget, cfg, true, false);
        LOCALUT_REQUIRE(plan.p >= 1, "no canonical LUT fits for ",
                        cfg.name());
        plan.lutWramBytes = canonicalLutBytes(LutShape(cfg, plan.p));
        break;
      }
      case DesignPoint::OpLcRc: {
        plan.p = overrides.p
                     ? overrides.p
                     : maxPackingDegree(wramBudget, cfg, true, true);
        LOCALUT_REQUIRE(plan.p >= 1,
                        "no canonical+reordering LUT fits for ", cfg.name());
        plan.lutWramBytes = localutBytes(LutShape(cfg, plan.p));
        break;
      }
      case DesignPoint::LoCaLut: {
        const LutPlanner planner(sys.dpu, cfg);
        LutPlan lp;
        if (overrides.kSlices) {
            lp = planner.chooseWithForcedK(plan.tileM,
                                           static_cast<double>(plan.k),
                                           plan.tileN, overrides.kSlices);
        } else {
            lp = planner.choose(plan.tileM, static_cast<double>(plan.k),
                                plan.tileN);
        }
        if (overrides.p) {
            lp.p = overrides.p;
            lp.streaming = overrides.p > planner.perfModel().pLocalMax();
            lp.kSlices = lp.streaming
                             ? std::max(1u, planner.maxKFor(lp.p))
                             : 1u;
            lp.predictedSeconds =
                lp.streaming
                    ? planner.perfModel().streamingSeconds(
                          plan.tileM, static_cast<double>(plan.k),
                          plan.tileN, lp.p)
                    : planner.perfModel().bufferSeconds(
                          plan.tileM, static_cast<double>(plan.k),
                          plan.tileN, lp.p);
        }
        if (overrides.streaming >= 0) {
            lp.streaming = overrides.streaming == 1;
        }
        plan.p = lp.p;
        plan.kSlices = std::max(1u, lp.kSlices);
        plan.streaming = lp.streaming;
        plan.predictedSeconds = lp.predictedSeconds;
        const LutShape shape(cfg, plan.p);
        if (plan.streaming) {
            plan.lutMramBytes = localutBytes(shape);
            plan.lutWramBytes =
                plan.kSlices * planner.slicePairBytes(plan.p);
        } else {
            plan.lutWramBytes = localutBytes(shape);
        }
        break;
      }
    }
    plan.groups =
        static_cast<unsigned>(ceilDiv(plan.k, std::size_t{plan.p}));
}

} // namespace

void
GemmEngine::refineLocalutPlan(GemmPlan& plan,
                              const PlanOverrides& overrides) const
{
    // The paper's Eq. 2-6 model considers LUT traffic only; for skinny
    // GEMMs (decode GEMVs) DMA setup and the cheaper p = 1 datapath can
    // flip the decision.  Cross-check every (p, placement) candidate with
    // the full event model and keep the best — the predictedSeconds field
    // still reports the paper model for Fig. 18.
    if (overrides.p || overrides.kSlices || overrides.streaming >= 0) {
        return; // explicit overrides are exact experiments; keep them
    }
    const LutPlanner planner(config_.dpu, plan.config);
    const PerfModel& model = planner.perfModel();
    const CostEvaluator eval(config_);

    GemmPlan best = plan;
    double bestSeconds =
        eval.timing(chargeCosts(plan), plan.dpusUsed()).total;
    for (unsigned p = 1; p <= model.pDramMax(); ++p) {
        for (int streaming = 0; streaming <= 1; ++streaming) {
            GemmPlan cand = plan;
            cand.p = p;
            cand.streaming = streaming == 1;
            if (cand.streaming) {
                const unsigned maxK = planner.maxKFor(p);
                if (maxK == 0) {
                    continue;
                }
                cand.kSlices = maxK;
                cand.lutMramBytes = localutBytes(LutShape(plan.config, p));
                cand.lutWramBytes = cand.kSlices * planner.slicePairBytes(p);
            } else {
                if (p > model.pLocalMax()) {
                    continue;
                }
                cand.kSlices = 1;
                cand.lutMramBytes = 0;
                cand.lutWramBytes = localutBytes(LutShape(plan.config, p));
            }
            cand.groups = static_cast<unsigned>(
                ceilDiv(cand.k, std::size_t{p}));
            const double t =
                eval.timing(chargeCosts(cand), cand.dpusUsed()).total;
            if (t < bestSeconds) {
                bestSeconds = t;
                best = cand;
            }
        }
    }
    best.predictedSeconds = plan.predictedSeconds;
    plan = best;
}

void
GemmEngine::choosePartition(const GemmProblem& problem, GemmPlan& plan,
                            const PlanOverrides& overrides) const
{
    const unsigned totalDpus = config_.totalDpus();
    const std::size_t m = problem.m(), n = problem.n();
    const CostEvaluator eval(config_);

    auto buildCandidate = [&](unsigned gM, unsigned gN) {
        GemmPlan cand(plan.design, plan.config);
        cand.m = plan.m;
        cand.k = plan.k;
        cand.n = plan.n;
        cand.gM = gM;
        cand.gN = gN;
        cand.tileM = static_cast<unsigned>(ceilDiv(m, std::size_t{gM}));
        cand.tileN = static_cast<unsigned>(ceilDiv(n, std::size_t{gN}));
        resolveDesign(cand, config_, overrides);
        if (cand.design == DesignPoint::LoCaLut) {
            refineLocalutPlan(cand, overrides);
        }
        return cand;
    };

    if (overrides.gM && overrides.gN) {
        LOCALUT_REQUIRE(overrides.gM * overrides.gN <= totalDpus,
                        "forced grid exceeds available DPUs");
        plan = buildCandidate(overrides.gM, overrides.gN);
        return;
    }

    double bestSeconds = std::numeric_limits<double>::infinity();
    GemmPlan best = plan;
    bool found = false;
    for (unsigned gN = 1;; gN *= 2) {
        const unsigned gNc =
            std::min<unsigned>(gN, static_cast<unsigned>(
                                       std::min<std::size_t>(n, totalDpus)));
        const unsigned gM = static_cast<unsigned>(std::min<std::size_t>(
            m, std::max<unsigned>(1, totalDpus / gNc)));
        GemmPlan cand = buildCandidate(gM, gNc);
        const KernelCost cost = chargeCosts(cand);
        const double t = eval.timing(cost, cand.dpusUsed()).total;
        if (t < bestSeconds) {
            bestSeconds = t;
            best = cand;
            found = true;
        }
        if (gNc != gN) {
            break; // clamped: further doubling changes nothing
        }
        if (static_cast<std::size_t>(gN) >= std::min<std::size_t>(
                                                n, totalDpus)) {
            break;
        }
    }
    LOCALUT_ASSERT(found, "partition search found no candidate");
    plan = best;
}

GemmPlan
GemmEngine::plan(const GemmProblem& problem, DesignPoint design,
                 const PlanOverrides& overrides) const
{
    LOCALUT_REQUIRE(problem.w.cols == problem.a.rows,
                    "GEMM shape mismatch: W ", problem.w.rows, "x",
                    problem.w.cols, " A ", problem.a.rows, "x",
                    problem.a.cols);
    GemmPlan plan(design, problem.config());
    plan.m = problem.m();
    plan.k = problem.k();
    plan.n = problem.n();
    choosePartition(problem, plan, overrides);
    return plan;
}

GemmResult
GemmEngine::run(const GemmProblem& problem, const GemmPlan& plan,
                bool computeValues) const
{
    ExecOptions options;
    options.computeValues = computeValues;
    return run(problem, plan, options);
}

GemmResult
GemmEngine::run(const GemmProblem& problem, const GemmPlan& plan,
                const ExecOptions& options) const
{
    GemmResult result;
    result.cost = chargeCosts(plan);
    const CostEvaluator eval(config_);
    result.timing = eval.timing(result.cost, plan.dpusUsed());
    result.energy = eval.energy(result.cost, plan.dpusUsed());

    if (!options.computeValues) {
        return result;
    }
    // The functional pass runs on the prepared-operand execution engine
    // (kernels/exec_engine.h): every design point maps onto one of its
    // tiled kernels, reusing the options' prepared operand / arena /
    // tile executor when the caller supplies them.
    const bool isInt = plan.config.weightCodec.isInteger() &&
                       plan.config.actCodec.isInteger();
    if (isInt) {
        executeGemmInt(problem, plan, options, result.outInt);
    } else {
        LOCALUT_REQUIRE(plan.design != DesignPoint::Ltc,
                        "LTC functional path is integer-only");
        executeGemmFloat(problem, plan, options, result.outFloat);
    }
    return result;
}

GemmResult
GemmEngine::run(const GemmProblem& problem, DesignPoint design,
                bool computeValues, const PlanOverrides& overrides) const
{
    return run(problem, plan(problem, design, overrides), computeValues);
}

GemmProblem
makeRandomProblem(std::size_t m, std::size_t k, std::size_t n,
                  const QuantConfig& config, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> wData(m * k);
    for (auto& v : wData) {
        v = static_cast<float>(rng.nextGaussian());
    }
    std::vector<float> aData(k * n);
    for (auto& v : aData) {
        v = static_cast<float>(rng.nextGaussian());
    }
    GemmProblem problem;
    problem.w = Quantizer::quantize(wData, m, k, config.weightCodec);
    problem.a = Quantizer::quantize(aData, k, n, config.actCodec);
    return problem;
}

} // namespace localut
