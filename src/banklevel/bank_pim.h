#ifndef LOCALUT_BANKLEVEL_BANK_PIM_H_
#define LOCALUT_BANKLEVEL_BANK_PIM_H_

/**
 * @file
 * Command-level model of bank-level PIM (paper Section VI-K, Fig. 20/21):
 *
 *  - the HBM-PIM-style SIMD baseline: one PIM instruction per CAS command,
 *    16 fp16 MAC lanes per bank fed by 256-bit bursts;
 *  - the LoCaLUT redesign: sixteen 512 B canonical-LUT units per bank plus
 *    reordering-LUT storage, with LUT slice streaming from the bank.
 *
 * Both designs are driven by DRAM command streams through the same HBM2
 * bank timing state machine (src/dram), so their ratio depends only on
 * command counts — the same abstraction the paper's Ramulator-based study
 * uses.
 */

#include "dram/timing.h"
#include "quant/quantizer.h"

namespace localut {

/** Bank-level PIM system parameters. */
struct BankPimConfig {
    DramTimingParams dram = DramTimingParams::hbm2();
    DramEnergyParams dramEnergy = DramEnergyParams::hbm2();
    unsigned channels = 32;        ///< pseudo-channels across the stack
    unsigned banksPerChannel = 16;
    unsigned simdLanes = 16;       ///< fp16 MACs per command (HBM-PIM)
    unsigned lutUnits = 16;        ///< canonical LUT units per bank
    unsigned lutUnitBytes = 512;   ///< SRAM per canonical LUT unit
    /**
     * Sustained LUT-unit utilization: slice-switch bubbles, index-stream
     * alignment, and bank-group command restrictions keep the lookup
     * pipeline below one full 16-lookup command per tCCD.
     */
    double lutUtilization = 0.7;
    double bankLutFraction = 0.5;  ///< bank capacity devoted to LUTs
    std::size_t bankBytes = std::size_t{64} << 20;
    double pjPerMacFp16 = 1.5;     ///< SIMD lane energy per MAC
    double pjPerLookup = 1.0;      ///< LUT unit energy (both SRAM accesses)

    unsigned totalBanks() const { return channels * banksPerChannel; }
};

/** Outcome of one bank-level GEMM. */
struct BankPimResult {
    double cycles = 0;   ///< DRAM-clock cycles on the critical bank
    double seconds = 0;
    double commands = 0; ///< column commands issued on the critical bank
    double energyJ = 0;  ///< whole-device energy
    unsigned p = 1;      ///< packing degree (LUT design only)
};

/** Bank-level PIM GEMM models. */
class BankLevelPim
{
  public:
    explicit BankLevelPim(const BankPimConfig& config) : config_(config) {}

    const BankPimConfig& config() const { return config_; }

    /** HBM-PIM SIMD baseline (fp16 MAC lanes). */
    BankPimResult simdGemm(std::size_t m, std::size_t k,
                           std::size_t n) const;

    /** LoCaLUT redesign with slice streaming. */
    BankPimResult lutGemm(std::size_t m, std::size_t k, std::size_t n,
                          const QuantConfig& config,
                          unsigned outBytes = 2) const;

    /** Largest packing degree for @p config under unit + bank budgets. */
    unsigned choosePackingDegree(const QuantConfig& config,
                                 unsigned outBytes = 2) const;

    /**
     * Cycles to stream @p nReads sequential column bursts through rows,
     * measured on the DramBank state machine (not a closed form).
     */
    double streamingReadCycles(double nReads) const;

  private:
    BankPimConfig config_;
};

} // namespace localut

#endif // LOCALUT_BANKLEVEL_BANK_PIM_H_
