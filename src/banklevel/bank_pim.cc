#include "banklevel/bank_pim.h"

#include <algorithm>
#include <cmath>

#include "common/bitops.h"
#include "common/logging.h"
#include "lut/capacity.h"
#include "lut/lut_shape.h"

namespace localut {

double
BankLevelPim::streamingReadCycles(double nReads) const
{
    if (nReads <= 0) {
        return 0;
    }
    // Measure one full row's streaming cost on the FSM, then scale.
    // Successive reads to the open row pipeline at tCCD (issue-time
    // chaining); the row switch pays PRE + ACT + tRCD.
    const unsigned readsPerRow =
        config_.dram.rowBytes / config_.dram.burstBytes;
    DramBank bank(config_.dram);
    std::uint64_t t = bank.issue(DramCommand::Act, 0, 0);
    for (unsigned r = 0; r < readsPerRow; ++r) {
        t = bank.issue(DramCommand::Rd, 0, t);
    }
    const std::uint64_t afterRow0 = t;
    t = bank.issue(DramCommand::Pre, 0, t);
    t = bank.issue(DramCommand::Act, 1, t);
    for (unsigned r = 0; r < readsPerRow; ++r) {
        t = bank.issue(DramCommand::Rd, 1, t);
    }
    const double perRow = static_cast<double>(t - afterRow0);
    const double rows = nReads / readsPerRow;
    return static_cast<double>(afterRow0) + std::max(0.0, rows - 1) * perRow;
}

namespace {

/** Bank-grid partition mirroring the DPU partitioner: maximize usage. */
void
partition(std::size_t m, std::size_t n, unsigned banks, double& tileM,
          double& tileN, unsigned& used)
{
    const unsigned gN = static_cast<unsigned>(
        std::min<std::size_t>(n, banks));
    const unsigned gM = static_cast<unsigned>(std::min<std::size_t>(
        m, std::max<unsigned>(1, banks / gN)));
    tileM = std::ceil(static_cast<double>(m) / gM);
    tileN = std::ceil(static_cast<double>(n) / gN);
    used = gM * gN;
}

} // namespace

BankPimResult
BankLevelPim::simdGemm(std::size_t m, std::size_t k, std::size_t n) const
{
    double tileM, tileN;
    unsigned used;
    partition(m, n, config_.totalBanks(), tileM, tileN, used);

    // Weights stream as 256-bit bursts; one PIM MAC command per burst.
    const double macs = tileM * static_cast<double>(k) * tileN;
    const double weightCmds = macs / config_.simdLanes;
    // Input vector loads (fp16) and output writebacks.
    const double actCmds =
        static_cast<double>(k) * tileN * 2.0 / config_.dram.burstBytes;
    const double outCmds = tileM * tileN * 2.0 / config_.dram.burstBytes;

    BankPimResult result;
    result.commands = weightCmds + actCmds + outCmds;
    result.cycles = streamingReadCycles(result.commands);
    result.seconds = result.cycles * config_.dram.tCkNs * 1e-9;

    const double rowActs =
        result.commands /
        (config_.dram.rowBytes / config_.dram.burstBytes);
    const double dynamicPj =
        rowActs * config_.dramEnergy.pjPerAct +
        result.commands * config_.dramEnergy.pjPerRdBurst +
        macs * config_.pjPerMacFp16;
    result.energyJ =
        used * dynamicPj * 1e-12 +
        config_.totalBanks() * config_.dramEnergy.backgroundMwPerBank *
            1e-3 * result.seconds;
    return result;
}

unsigned
BankLevelPim::choosePackingDegree(const QuantConfig& config,
                                  unsigned outBytes) const
{
    const std::uint64_t bankBudget = static_cast<std::uint64_t>(
        config_.bankLutFraction * static_cast<double>(config_.bankBytes));
    unsigned best = 0;
    for (unsigned p = 1; p <= 12; ++p) {
        const LutShape shape(config, p, outBytes);
        // The canonical slice must fit one 512 B LUT unit...
        if (shape.weightRows() * outBytes > config_.lutUnitBytes) {
            break;
        }
        // ...and the full canonical + reordering LUTs must fit the bank.
        if (localutBytes(shape) > bankBudget) {
            continue;
        }
        best = p;
    }
    return best;
}

BankPimResult
BankLevelPim::lutGemm(std::size_t m, std::size_t k, std::size_t n,
                      const QuantConfig& config, unsigned outBytes) const
{
    const unsigned p = choosePackingDegree(config, outBytes);
    LOCALUT_REQUIRE(p >= 1, "no packing degree fits the LUT units for ",
                    config.name());
    const LutShape shape(config, p, outBytes);

    double tileM, tileN;
    unsigned used;
    partition(m, n, config_.totalBanks(), tileM, tileN, used);

    const double groups = std::ceil(static_cast<double>(k) / p);
    const double lookups = tileM * groups * tileN;
    // Each command feeds all lutUnits with packed weight vectors; the
    // sustained rate is derated by the utilization factor.
    const double lookupCmds =
        lookups / config_.lutUnits / config_.lutUtilization;
    // Slice streaming: one (canonical + reordering) column pair per
    // activation group instance, read from the bank as bursts.
    const double slicePairBytes =
        static_cast<double>(shape.weightRows()) *
        (outBytes + static_cast<double>(reorderEntryBytes(shape)));
    const double sliceCmds =
        groups * tileN * slicePairBytes / config_.dram.burstBytes;
    const double outCmds = tileM * tileN * 4.0 / config_.dram.burstBytes;

    BankPimResult result;
    result.p = p;
    result.commands = lookupCmds + sliceCmds + outCmds;
    result.cycles = streamingReadCycles(result.commands);
    result.seconds = result.cycles * config_.dram.tCkNs * 1e-9;

    const double rowActs =
        result.commands /
        (config_.dram.rowBytes / config_.dram.burstBytes);
    const double dynamicPj =
        rowActs * config_.dramEnergy.pjPerAct +
        result.commands * config_.dramEnergy.pjPerRdBurst +
        lookups * config_.pjPerLookup;
    result.energyJ =
        used * dynamicPj * 1e-12 +
        config_.totalBanks() * config_.dramEnergy.backgroundMwPerBank *
            1e-3 * result.seconds;
    return result;
}

} // namespace localut
