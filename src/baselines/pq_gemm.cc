#include "baselines/pq_gemm.h"

#include "common/bitops.h"
#include "common/logging.h"
#include "kernels/cost_tables.h"

namespace localut {

PqParams
pimDlParams()
{
    // PIM-DL-class configuration: large codebooks keep accuracy near the
    // baseline, at the price of a host-side centroid search that
    // dominates end-to-end time (paper Fig. 16a).
    PqParams p;
    p.subvecLen = 8;
    p.centroids = 256;
    p.metric = DistanceMetric::L2;
    p.centroidSelectSpeedup = 1.0;
    return p;
}

PqParams
lutDlaParams(DistanceMetric metric)
{
    // LUT-DLA: smaller codebooks plus a similarity engine make centroid
    // selection cheaper than PIM-DL's CPU search (L1 is the cheaper
    // datapath); accuracy gives a little back.
    PqParams p;
    p.subvecLen = 8;
    p.centroids = 64;
    p.metric = metric;
    p.centroidSelectSpeedup = metric == DistanceMetric::L1 ? 4.0 : 3.0;
    return p;
}

PqGemmResult
PqGemmEngine::run(const std::vector<float>& w, const std::vector<float>& a,
                  std::size_t m, std::size_t k, std::size_t n,
                  bool computeValues) const
{
    LOCALUT_REQUIRE(w.size() == m * k && a.size() == k * n,
                    "PQ GEMM shape mismatch");
    const unsigned d = params_.subvecLen;
    const unsigned c = params_.centroids;
    const std::size_t subspaces = ceilDiv(k, std::size_t{d});

    PqGemmResult result;

    // ---- Offline codebook training on a calibration split ----
    // Codebooks are learned from the first half of the columns (at most
    // 512 calibration points) and then applied to every column — the
    // calibration-data practice of PIM-DL/LUT-DLA; training cost is
    // offline and not charged.  Skipped entirely for timing-only runs.
    std::vector<std::vector<float>> codebooks(subspaces);
    std::vector<std::uint32_t> codes;
    if (computeValues) {
        codes.resize(subspaces * n);
        const std::size_t calib =
            std::min<std::size_t>(512, std::max<std::size_t>(1, n / 2));
        for (std::size_t s = 0; s < subspaces; ++s) {
            std::vector<float> pts(calib * d, 0.0f);
            for (std::size_t j = 0; j < calib; ++j) {
                for (unsigned e = 0; e < d; ++e) {
                    const std::size_t kk = s * d + e;
                    pts[j * d + e] = kk < k ? a[kk * n + j] : 0.0f;
                }
            }
            const unsigned kEff = static_cast<unsigned>(
                std::min<std::size_t>(c, calib));
            KMeansResult km =
                kmeans(pts, calib, d, kEff, params_.kmeansIters,
                       params_.metric, params_.seed + s);
            result.codebookInertia += km.inertia;
            codebooks[s] = std::move(km.centroids);
            // Runtime centroid selection for every column (the host work
            // charged below).
            std::vector<float> sub(d);
            for (std::size_t j = 0; j < n; ++j) {
                for (unsigned e = 0; e < d; ++e) {
                    const std::size_t kk = s * d + e;
                    sub[e] = kk < k ? a[kk * n + j] : 0.0f;
                }
                codes[s * n + j] = nearestCentroid(sub.data(), codebooks[s],
                                                   d, params_.metric);
            }
        }
    }

    // ---- Cost accounting ----
    // Partitioning mirrors the GemmEngine: maximize DPU usage over (M, N).
    const unsigned totalDpus = system_.totalDpus();
    const unsigned gN = static_cast<unsigned>(
        std::min<std::size_t>(n, totalDpus));
    const unsigned gM = static_cast<unsigned>(std::min<std::size_t>(
        m, std::max<unsigned>(1, totalDpus / gN)));
    const double tileM = static_cast<double>(ceilDiv(m, std::size_t{gM}));
    const double tileN = static_cast<double>(ceilDiv(n, std::size_t{gN}));
    const unsigned dpusUsed = gM * gN;

    KernelCost& cost = result.cost;
    // Host: centroid selection — c distance evaluations of length d per
    // (subspace, column); each distance op is ~2 scalar ops.
    cost.addHostOps(Phase::HostCentroid,
                    static_cast<double>(subspaces) * n * c * d * 2.0 /
                        params_.centroidSelectSpeedup);
    cost.addHostOps(Phase::HostDequant,
                    cost::kHostDequantOpsPerElem * static_cast<double>(m) *
                        static_cast<double>(n));
    // Link: one code byte per (subspace, column), replicated across gM.
    cost.addLinkBytes(Phase::LinkActIn,
                      static_cast<double>(subspaces) * tileN * dpusUsed);
    cost.addLinkBytes(Phase::LinkOut,
                      static_cast<double>(m) * static_cast<double>(n) * 4.0);
    // DPU: LUT rows for the tile streamed from MRAM (entries are fp16-
    // scale 2-byte fixed point in PIM-DL), reused across all columns.
    const double lutRowBytes = static_cast<double>(subspaces) * c * 2.0;
    cost.addDma(Phase::LutLoadDma, tileM * lutRowBytes, tileM);
    cost.addDma(Phase::OperandDma, static_cast<double>(subspaces) * tileN,
                tileN);
    cost.addDma(Phase::OutputDma, tileM * tileN * 4.0, tileM);
    // DPU: gather-and-add per (m, subspace, column): load code (1),
    // address (2), load entry (1), add (1), loop (1) => 6.
    cost.addInstr(Phase::CanonicalAccess,
                  tileM * static_cast<double>(subspaces) * tileN * 6.0);

    const CostEvaluator eval(system_);
    result.timing = eval.timing(cost, dpusUsed);
    result.energy = eval.energy(cost, dpusUsed);

    if (!computeValues) {
        return result;
    }

    // ---- Functional: LUT[m][s][centroid] built offline, gathered ----
    result.out.assign(m * n, 0.0f);
    std::vector<float> lut(static_cast<std::size_t>(m) * c);
    for (std::size_t s = 0; s < subspaces; ++s) {
        // Build this subspace's LUT slice: dot(W_m subvec, centroid).
        for (std::size_t i = 0; i < m; ++i) {
            for (unsigned cc = 0; cc < c && cc * d < codebooks[s].size();
                 ++cc) {
                float dot = 0.0f;
                for (unsigned e = 0; e < d; ++e) {
                    const std::size_t kk = s * d + e;
                    if (kk < k) {
                        dot += w[i * k + kk] * codebooks[s][cc * d + e];
                    }
                }
                lut[i * c + cc] = dot;
            }
        }
        for (std::size_t i = 0; i < m; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
                result.out[i * n + j] += lut[i * c + codes[s * n + j]];
            }
        }
    }
    return result;
}

} // namespace localut
