#ifndef LOCALUT_BASELINES_KMEANS_H_
#define LOCALUT_BASELINES_KMEANS_H_

/**
 * @file
 * Deterministic k-means (k-means++ seeding, Lloyd iterations) for the
 * product-quantization baselines (PIM-DL, LUT-DLA).
 */

#include <cstdint>
#include <vector>

namespace localut {

/** Distance metric for centroid assignment (LUT-DLA supports L1 and L2). */
enum class DistanceMetric { L1, L2 };

/** k-means result: centroids (k x dim) and per-point assignments. */
struct KMeansResult {
    std::vector<float> centroids; ///< k x dim row-major
    std::vector<std::uint32_t> assignments;
    double inertia = 0.0; ///< sum of distances to assigned centroids
};

/**
 * Clusters @p points (n x dim row-major) into @p k centroids.
 * Deterministic for a fixed seed.
 */
KMeansResult kmeans(const std::vector<float>& points, std::size_t n,
                    std::size_t dim, unsigned k, unsigned iterations,
                    DistanceMetric metric, std::uint64_t seed = 1);

/** Index of the nearest centroid to @p point under @p metric. */
std::uint32_t nearestCentroid(const float* point,
                              const std::vector<float>& centroids,
                              std::size_t dim, DistanceMetric metric);

} // namespace localut

#endif // LOCALUT_BASELINES_KMEANS_H_
