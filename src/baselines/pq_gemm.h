#ifndef LOCALUT_BASELINES_PQ_GEMM_H_
#define LOCALUT_BASELINES_PQ_GEMM_H_

/**
 * @file
 * Product-quantization GEMM baselines (paper Section VI-F/G):
 *
 *  - PIM-DL: activation sub-vectors are approximated by codebook
 *    centroids; the PIM gathers precomputed LUT entries
 *    LUT[m][subspace][centroid] = dot(W_m subvector, centroid) and adds
 *    them.  Centroid *selection* (nearest-centroid search per activation
 *    sub-vector) runs on the host and dominates there (paper Fig. 16a).
 *
 *  - LUT-DLA: the same scheme with hardware-accelerated centroid
 *    selection and a choice of L1 or L2 similarity.
 *
 * Unlike the LoCaLUT design points, PQ execution is approximate: it
 * returns float outputs whose error comes from codebook reconstruction.
 */

#include <vector>

#include "baselines/kmeans.h"
#include "upmem/cost_model.h"
#include "upmem/params.h"

namespace localut {

/** PQ configuration. */
struct PqParams {
    unsigned subvecLen = 8;    ///< d: activation sub-vector length along K
    unsigned centroids = 16;   ///< c: codebook size per subspace
    unsigned kmeansIters = 12;
    DistanceMetric metric = DistanceMetric::L2;
    /**
     * Host-op discount for hardware-accelerated centroid selection
     * (LUT-DLA integrates a similarity engine; PIM-DL runs on CPU cores).
     */
    double centroidSelectSpeedup = 1.0;
    std::uint64_t seed = 3;
};

/** Named baselines from the paper. */
PqParams pimDlParams();
PqParams lutDlaParams(DistanceMetric metric);

/** PQ execution outcome. */
struct PqGemmResult {
    std::vector<float> out; ///< M x N approximate product
    KernelCost cost;
    TimingReport timing;
    EnergyReport energy;
    double codebookInertia = 0.0; ///< training reconstruction error
};

/**
 * Runs an approximate GEMM O = W * A with float inputs (row-major).
 * Codebooks are trained on the activation matrix itself (the calibration
 * best case for PQ; see DESIGN.md).
 */
class PqGemmEngine
{
  public:
    PqGemmEngine(const PimSystemConfig& system, const PqParams& params)
        : system_(system), params_(params)
    {}

    PqGemmResult run(const std::vector<float>& w, const std::vector<float>& a,
                     std::size_t m, std::size_t k, std::size_t n,
                     bool computeValues = true) const;

  private:
    PimSystemConfig system_;
    PqParams params_;
};

} // namespace localut

#endif // LOCALUT_BASELINES_PQ_GEMM_H_
