#include "baselines/kmeans.h"

#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/rng.h"

namespace localut {

namespace {

double
distance(const float* a, const float* b, std::size_t dim,
         DistanceMetric metric)
{
    double d = 0.0;
    if (metric == DistanceMetric::L2) {
        for (std::size_t i = 0; i < dim; ++i) {
            const double diff = a[i] - b[i];
            d += diff * diff;
        }
    } else {
        for (std::size_t i = 0; i < dim; ++i) {
            d += std::fabs(a[i] - b[i]);
        }
    }
    return d;
}

} // namespace

std::uint32_t
nearestCentroid(const float* point, const std::vector<float>& centroids,
                std::size_t dim, DistanceMetric metric)
{
    const std::size_t k = centroids.size() / dim;
    std::uint32_t best = 0;
    double bestD = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < k; ++c) {
        const double d = distance(point, &centroids[c * dim], dim, metric);
        if (d < bestD) {
            bestD = d;
            best = static_cast<std::uint32_t>(c);
        }
    }
    return best;
}

KMeansResult
kmeans(const std::vector<float>& points, std::size_t n, std::size_t dim,
       unsigned k, unsigned iterations, DistanceMetric metric,
       std::uint64_t seed)
{
    LOCALUT_REQUIRE(points.size() == n * dim, "kmeans shape mismatch");
    LOCALUT_REQUIRE(k >= 1 && n >= k, "need at least k points");
    Rng rng(seed);

    KMeansResult result;
    result.centroids.resize(static_cast<std::size_t>(k) * dim);
    result.assignments.resize(n);

    // k-means++ seeding.
    std::vector<double> minDist(n, std::numeric_limits<double>::infinity());
    std::size_t first = static_cast<std::size_t>(rng.nextBounded(n));
    std::copy(points.begin() + static_cast<std::ptrdiff_t>(first * dim),
              points.begin() + static_cast<std::ptrdiff_t>((first + 1) * dim),
              result.centroids.begin());
    for (unsigned c = 1; c < k; ++c) {
        double total = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            const double d = distance(&points[i * dim],
                                      &result.centroids[(c - 1) * dim], dim,
                                      metric);
            minDist[i] = std::min(minDist[i], d);
            total += minDist[i];
        }
        double target = rng.nextDouble() * total;
        std::size_t chosen = n - 1;
        for (std::size_t i = 0; i < n; ++i) {
            target -= minDist[i];
            if (target <= 0.0) {
                chosen = i;
                break;
            }
        }
        std::copy(
            points.begin() + static_cast<std::ptrdiff_t>(chosen * dim),
            points.begin() + static_cast<std::ptrdiff_t>((chosen + 1) * dim),
            result.centroids.begin() + static_cast<std::ptrdiff_t>(
                                           static_cast<std::size_t>(c) * dim));
    }

    // Lloyd iterations.
    std::vector<double> sums(static_cast<std::size_t>(k) * dim);
    std::vector<std::size_t> counts(k);
    for (unsigned iter = 0; iter < iterations; ++iter) {
        std::fill(sums.begin(), sums.end(), 0.0);
        std::fill(counts.begin(), counts.end(), std::size_t{0});
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint32_t c = nearestCentroid(
                &points[i * dim], result.centroids, dim, metric);
            result.assignments[i] = c;
            ++counts[c];
            for (std::size_t d = 0; d < dim; ++d) {
                sums[c * dim + d] += points[i * dim + d];
            }
        }
        for (unsigned c = 0; c < k; ++c) {
            if (counts[c] == 0) {
                continue; // keep the old centroid for empty clusters
            }
            for (std::size_t d = 0; d < dim; ++d) {
                result.centroids[c * dim + d] = static_cast<float>(
                    sums[c * dim + d] / static_cast<double>(counts[c]));
            }
        }
    }

    result.inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        result.assignments[i] = nearestCentroid(
            &points[i * dim], result.centroids, dim, metric);
        result.inertia += distance(
            &points[i * dim],
            &result.centroids[result.assignments[i] * dim], dim, metric);
    }
    return result;
}

} // namespace localut
