#include "baselines/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/rng.h"

namespace localut {

namespace {

double
distance(const float* a, const float* b, std::size_t dim,
         DistanceMetric metric)
{
    double d = 0.0;
    if (metric == DistanceMetric::L2) {
        for (std::size_t i = 0; i < dim; ++i) {
            const double diff = a[i] - b[i];
            d += diff * diff;
        }
    } else {
        for (std::size_t i = 0; i < dim; ++i) {
            d += std::fabs(a[i] - b[i]);
        }
    }
    return d;
}

/**
 * Assigns every point to its nearest centroid.  The metric branch and
 * per-point base pointers are hoisted out of the n x k x dim loop (the
 * k-means hot loop); distances accumulate in registers, no scratch.
 * Returns the summed distance of the assignment (the inertia under the
 * final centroids).
 */
template <DistanceMetric kMetric>
double
assignPoints(const std::vector<float>& points, std::size_t n,
             std::size_t dim, const std::vector<float>& centroids,
             std::vector<std::uint32_t>& assignments)
{
    const std::size_t k = centroids.size() / dim;
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const float* point = &points[i * dim];
        double bestD = std::numeric_limits<double>::infinity();
        std::uint32_t best = 0;
        for (std::size_t c = 0; c < k; ++c) {
            const float* centroid = &centroids[c * dim];
            double d = 0.0;
            if constexpr (kMetric == DistanceMetric::L2) {
                for (std::size_t j = 0; j < dim; ++j) {
                    const double diff = point[j] - centroid[j];
                    d += diff * diff;
                }
            } else {
                for (std::size_t j = 0; j < dim; ++j) {
                    d += std::fabs(point[j] - centroid[j]);
                }
            }
            if (d < bestD) {
                bestD = d;
                best = static_cast<std::uint32_t>(c);
            }
        }
        assignments[i] = best;
        total += bestD;
    }
    return total;
}

double
assignPoints(const std::vector<float>& points, std::size_t n,
             std::size_t dim, const std::vector<float>& centroids,
             DistanceMetric metric, std::vector<std::uint32_t>& assignments)
{
    return metric == DistanceMetric::L2
               ? assignPoints<DistanceMetric::L2>(points, n, dim, centroids,
                                                  assignments)
               : assignPoints<DistanceMetric::L1>(points, n, dim, centroids,
                                                  assignments);
}

} // namespace

std::uint32_t
nearestCentroid(const float* point, const std::vector<float>& centroids,
                std::size_t dim, DistanceMetric metric)
{
    const std::size_t k = centroids.size() / dim;
    std::uint32_t best = 0;
    double bestD = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < k; ++c) {
        const double d = distance(point, &centroids[c * dim], dim, metric);
        if (d < bestD) {
            bestD = d;
            best = static_cast<std::uint32_t>(c);
        }
    }
    return best;
}

KMeansResult
kmeans(const std::vector<float>& points, std::size_t n, std::size_t dim,
       unsigned k, unsigned iterations, DistanceMetric metric,
       std::uint64_t seed)
{
    LOCALUT_REQUIRE(points.size() == n * dim, "kmeans shape mismatch");
    LOCALUT_REQUIRE(k >= 1 && n >= k, "need at least k points");
    Rng rng(seed);

    KMeansResult result;
    result.centroids.resize(static_cast<std::size_t>(k) * dim);
    result.assignments.resize(n);

    // k-means++ seeding.  Each pick is O(n): one pass updates the
    // nearest-centroid distances against the newest centroid while
    // accumulating a running prefix sum, and the D^2 sample becomes a
    // binary search over that prefix array instead of a rescan.
    std::vector<double> minDist(n, std::numeric_limits<double>::infinity());
    std::vector<double> cumDist(n);
    const std::size_t first = static_cast<std::size_t>(rng.nextBounded(n));
    std::copy(points.begin() + static_cast<std::ptrdiff_t>(first * dim),
              points.begin() + static_cast<std::ptrdiff_t>((first + 1) * dim),
              result.centroids.begin());
    for (unsigned c = 1; c < k; ++c) {
        const float* newest = &result.centroids[(c - 1) * dim];
        double total = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            const double d = distance(&points[i * dim], newest, dim, metric);
            minDist[i] = std::min(minDist[i], d);
            total += minDist[i];
            cumDist[i] = total;
        }
        const double target = rng.nextDouble() * total;
        // First index whose cumulative mass reaches the target (the
        // last point absorbs floating-point shortfall).
        const auto it =
            std::lower_bound(cumDist.begin(), cumDist.end(), target);
        const std::size_t chosen =
            it == cumDist.end()
                ? n - 1
                : static_cast<std::size_t>(it - cumDist.begin());
        std::copy(
            points.begin() + static_cast<std::ptrdiff_t>(chosen * dim),
            points.begin() + static_cast<std::ptrdiff_t>((chosen + 1) * dim),
            result.centroids.begin() + static_cast<std::ptrdiff_t>(
                                           static_cast<std::size_t>(c) * dim));
    }

    // Lloyd iterations: assign (hoisted hot loop), then recenter.
    std::vector<double> sums(static_cast<std::size_t>(k) * dim);
    std::vector<std::size_t> counts(k);
    for (unsigned iter = 0; iter < iterations; ++iter) {
        assignPoints(points, n, dim, result.centroids, metric,
                     result.assignments);
        std::fill(sums.begin(), sums.end(), 0.0);
        std::fill(counts.begin(), counts.end(), std::size_t{0});
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint32_t c = result.assignments[i];
            ++counts[c];
            const float* point = &points[i * dim];
            double* sum = &sums[static_cast<std::size_t>(c) * dim];
            for (std::size_t d = 0; d < dim; ++d) {
                sum[d] += point[d];
            }
        }
        for (unsigned c = 0; c < k; ++c) {
            if (counts[c] == 0) {
                continue; // keep the old centroid for empty clusters
            }
            for (std::size_t d = 0; d < dim; ++d) {
                result.centroids[c * dim + d] = static_cast<float>(
                    sums[c * dim + d] / static_cast<double>(counts[c]));
            }
        }
    }

    // Final assignment against the updated centroids; its summed
    // distance is the inertia (no second distance pass).
    result.inertia = assignPoints(points, n, dim, result.centroids, metric,
                                  result.assignments);
    return result;
}

} // namespace localut
