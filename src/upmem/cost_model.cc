#include "upmem/cost_model.h"

#include "common/logging.h"

namespace localut {

namespace {

constexpr unsigned kNumPhases = static_cast<unsigned>(Phase::kNumPhases);

} // namespace

const char*
phaseName(Phase p)
{
    switch (p) {
      case Phase::HostQuantize:    return "host.quantize";
      case Phase::HostPackSort:    return "host.pack_sort";
      case Phase::HostCentroid:    return "host.centroid_select";
      case Phase::HostDequant:     return "host.dequantize";
      case Phase::HostOther:       return "host.other";
      case Phase::LinkActIn:       return "link.act_in";
      case Phase::LinkWeightIn:    return "link.weight_in";
      case Phase::LinkOut:         return "link.out";
      case Phase::LutBroadcast:    return "link.lut_broadcast";
      case Phase::LinkInterNode:   return "link.internode";
      case Phase::LutLoadDma:      return "dpu.lut_load_dma";
      case Phase::OperandDma:      return "dpu.operand_dma";
      case Phase::TableBuild:      return "dpu.table_build";
      case Phase::IndexCalc:       return "dpu.index_calc";
      case Phase::ReorderAccess:   return "dpu.reorder_access";
      case Phase::CanonicalAccess: return "dpu.canonical_access";
      case Phase::MacCompute:      return "dpu.mac_compute";
      case Phase::Accumulate:      return "dpu.accumulate";
      case Phase::OutputDma:       return "dpu.output_dma";
      case Phase::Other:           return "other";
      case Phase::kNumPhases:      break;
    }
    LOCALUT_PANIC("invalid phase");
}

bool
isHostPhase(Phase p)
{
    switch (p) {
      case Phase::HostQuantize:
      case Phase::HostPackSort:
      case Phase::HostCentroid:
      case Phase::HostDequant:
      case Phase::HostOther:
        return true;
      default:
        return false;
    }
}

bool
isLinkPhase(Phase p)
{
    switch (p) {
      case Phase::LinkActIn:
      case Phase::LinkWeightIn:
      case Phase::LinkOut:
      case Phase::LutBroadcast:
      case Phase::LinkInterNode:
        return true;
      default:
        return false;
    }
}

void
KernelCost::addInstr(Phase p, double count)
{
    LOCALUT_ASSERT(count >= 0, "negative instruction count");
    phases_[static_cast<unsigned>(p)].instructions += count;
}

void
KernelCost::addDma(Phase p, double bytes, double transfers)
{
    LOCALUT_ASSERT(bytes >= 0 && transfers >= 0, "negative DMA charge");
    phases_[static_cast<unsigned>(p)].dmaBytes += bytes;
    phases_[static_cast<unsigned>(p)].dmaTransfers += transfers;
}

void
KernelCost::addHostOps(Phase p, double ops)
{
    LOCALUT_ASSERT(ops >= 0, "negative host op count");
    phases_[static_cast<unsigned>(p)].hostOps += ops;
}

void
KernelCost::addLinkBytes(Phase p, double bytes)
{
    LOCALUT_ASSERT(bytes >= 0, "negative link byte count");
    phases_[static_cast<unsigned>(p)].linkBytes += bytes;
}

const PhaseCost&
KernelCost::phase(Phase p) const
{
    return phases_[static_cast<unsigned>(p)];
}

double
KernelCost::totalInstructions() const
{
    double sum = 0;
    for (const auto& pc : phases_) {
        sum += pc.instructions;
    }
    return sum;
}

double
KernelCost::totalDmaBytes() const
{
    double sum = 0;
    for (const auto& pc : phases_) {
        sum += pc.dmaBytes;
    }
    return sum;
}

double
KernelCost::totalDmaTransfers() const
{
    double sum = 0;
    for (const auto& pc : phases_) {
        sum += pc.dmaTransfers;
    }
    return sum;
}

double
KernelCost::totalLinkBytes() const
{
    double sum = 0;
    for (const auto& pc : phases_) {
        sum += pc.linkBytes;
    }
    return sum;
}

void
KernelCost::merge(const KernelCost& other)
{
    for (unsigned i = 0; i < kNumPhases; ++i) {
        phases_[i].instructions += other.phases_[i].instructions;
        phases_[i].dmaBytes += other.phases_[i].dmaBytes;
        phases_[i].dmaTransfers += other.phases_[i].dmaTransfers;
        phases_[i].hostOps += other.phases_[i].hostOps;
        phases_[i].linkBytes += other.phases_[i].linkBytes;
    }
}

void
accumulate(TimingReport& into, const TimingReport& part, double scale)
{
    Breakdown scaled = part.seconds;
    scaled.scale(scale);
    into.seconds.merge(scaled);
    into.dpuSeconds += part.dpuSeconds * scale;
    into.hostSeconds += part.hostSeconds * scale;
    into.linkSeconds += part.linkSeconds * scale;
    into.total += part.total * scale;
}

void
accumulate(EnergyReport& into, const EnergyReport& part, double scale)
{
    Breakdown scaled = part.joules;
    scaled.scale(scale);
    into.joules.merge(scaled);
    into.total += part.total * scale;
}

double
CostEvaluator::instrSeconds(double instructions) const
{
    const DpuParams& dpu = config_.dpu;
    return dpu.cyclesToSeconds(instructions / dpu.issueRate());
}

double
CostEvaluator::dmaSeconds(double bytes, double transfers) const
{
    const DpuParams& dpu = config_.dpu;
    const double cycles =
        transfers * dpu.dmaSetupCycles + bytes / dpu.dmaBytesPerCycle;
    return dpu.cyclesToSeconds(cycles);
}

TimingReport
CostEvaluator::timing(const KernelCost& cost, unsigned nDpusUsed) const
{
    LOCALUT_ASSERT(nDpusUsed >= 1 && nDpusUsed <= config_.totalDpus(),
                   "nDpusUsed out of range: ", nDpusUsed);
    TimingReport report;
    for (unsigned i = 0; i < kNumPhases; ++i) {
        const Phase p = static_cast<Phase>(i);
        const PhaseCost& pc = cost.phase(p);
        double seconds = 0.0;
        if (isHostPhase(p)) {
            seconds = pc.hostOps / (config_.host.effectiveGops * 1e9);
            report.hostSeconds += seconds;
        } else if (isLinkPhase(p)) {
            if (pc.linkBytes > 0) {
                // LinkInterNode bytes are priced here at the output-
                // gather rate as a conservative fallback; the serving
                // layers charge the actual tiered hop seconds directly.
                const double gbs = (p == Phase::LinkOut ||
                                    p == Phase::LinkInterNode)
                                       ? config_.link.pimToHostGBs
                                       : config_.link.hostToPimGBs;
                seconds = pc.linkBytes / (gbs * 1e9) +
                          config_.link.launchLatencyUs * 1e-6;
            }
            report.linkSeconds += seconds;
        } else {
            // DPU phase: instructions at sustained issue plus DMA engine
            // time; the DPU DMA blocks the issuing tasklet, so the additive
            // model is a faithful first-order serialization.
            seconds = instrSeconds(pc.instructions) +
                      dmaSeconds(pc.dmaBytes, pc.dmaTransfers);
            report.dpuSeconds += seconds;
        }
        if (seconds > 0.0) {
            report.seconds.add(phaseName(p), seconds);
        }
    }
    report.total =
        report.hostSeconds + report.linkSeconds + report.dpuSeconds;
    return report;
}

EnergyReport
CostEvaluator::energy(const KernelCost& cost, unsigned nDpusUsed) const
{
    const UpmemEnergyParams& e = config_.energy;
    EnergyReport report;
    const TimingReport t = timing(cost, nDpusUsed);
    const double dpus = static_cast<double>(nDpusUsed);

    for (unsigned i = 0; i < kNumPhases; ++i) {
        const Phase p = static_cast<Phase>(i);
        const PhaseCost& pc = cost.phase(p);
        double joules = 0.0;
        if (isHostPhase(p)) {
            joules = pc.hostOps / (config_.host.effectiveGops * 1e9) *
                     config_.host.activeWatts;
        } else if (isLinkPhase(p)) {
            joules = pc.linkBytes * e.pjPerLinkByte * 1e-12;
        } else {
            joules = dpus * (pc.instructions * e.pjPerInstr +
                             pc.dmaBytes * e.pjPerMramByte) *
                     1e-12;
        }
        if (joules > 0.0) {
            report.joules.add(phaseName(p), joules);
        }
    }
    // Static energy over the whole execution for every active DPU.
    const double staticJ = dpus * e.dpuStaticMw * 1e-3 * t.total;
    report.joules.add("static", staticJ);
    report.total = report.joules.total();
    return report;
}

} // namespace localut
