#ifndef LOCALUT_UPMEM_COST_MODEL_H_
#define LOCALUT_UPMEM_COST_MODEL_H_

/**
 * @file
 * Event accounting for functional+timed kernels.  Kernels compute real
 * numeric results while charging instructions, DMA traffic, host ops, and
 * link bytes into a KernelCost, tagged by pipeline phase; the cost model
 * then turns the counts into seconds and Joules (the "measured" numbers of
 * every experiment — see DESIGN.md Section 1 for why this level of fidelity
 * matches the paper's own methodology).
 *
 * Charging conventions:
 *  - DPU phases (instructions, DMA) are charged PER REPRESENTATIVE DPU —
 *    i.e., for the critical-path DPU of a homogeneous partition.
 *  - Host and link phases are charged GLOBALLY.
 */

#include <array>
#include <cstdint>

#include "common/stats.h"
#include "upmem/params.h"

namespace localut {

/** Pipeline phases (superset of the paper's Fig. 16 categories). */
enum class Phase : unsigned {
    HostQuantize,    ///< fp -> codes on host
    HostPackSort,    ///< packing & sorting activation groups (canonical form)
    HostCentroid,    ///< PQ centroid selection (PIM-DL / LUT-DLA)
    HostDequant,     ///< codes -> fp on host
    HostOther,       ///< softmax/layernorm/GELU and misc host work
    LinkActIn,       ///< host -> PIM activation (or index) transfer
    LinkWeightIn,    ///< host -> PIM weight transfer (init-time; reported)
    LinkOut,         ///< PIM -> host output gather
    LutBroadcast,    ///< host -> PIM LUT table-set broadcast (cold start)
    LinkInterNode,   ///< CXL/PCIe inter-node hop (multi-node collectives)
    LutLoadDma,      ///< MRAM -> WRAM LUT slice streaming
    OperandDma,      ///< MRAM -> WRAM weight/activation tile traffic
    TableBuild,      ///< runtime LUT construction (LTC-style baselines)
    IndexCalc,       ///< reordering/canonical LUT index arithmetic
    ReorderAccess,   ///< reordering LUT lookups
    CanonicalAccess, ///< canonical (or packed) LUT lookups
    MacCompute,      ///< arithmetic MACs (naive PIM baseline)
    Accumulate,      ///< partial-sum accumulation
    OutputDma,       ///< WRAM -> MRAM result writeback
    Other,
    kNumPhases,
};

/** Human-readable phase name (stable; used in breakdown tables). */
const char* phaseName(Phase p);

/** True for phases that execute on the host CPU. */
bool isHostPhase(Phase p);

/** True for host<->PIM link phases. */
bool isLinkPhase(Phase p);

/** Per-phase raw event counts. */
struct PhaseCost {
    double instructions = 0; ///< DPU instructions (per representative DPU)
    double dmaBytes = 0;     ///< MRAM<->WRAM bytes (per representative DPU)
    double dmaTransfers = 0; ///< DMA transfer count (per representative DPU)
    double hostOps = 0;      ///< host scalar-equivalent operations (global)
    double linkBytes = 0;    ///< host<->PIM bytes (global)
};

/** Accumulated cost of one kernel execution. */
class KernelCost
{
  public:
    void addInstr(Phase p, double count);
    void addDma(Phase p, double bytes, double transfers);
    void addHostOps(Phase p, double ops);
    void addLinkBytes(Phase p, double bytes);

    const PhaseCost& phase(Phase p) const;

    double totalInstructions() const;
    double totalDmaBytes() const;
    double totalDmaTransfers() const;
    double totalLinkBytes() const;

    /** Merges (sums) another cost into this one. */
    void merge(const KernelCost& other);

  private:
    std::array<PhaseCost, static_cast<unsigned>(Phase::kNumPhases)> phases_{};
};

/** Seconds, decomposed. */
struct TimingReport {
    Breakdown seconds;    ///< per phase
    double dpuSeconds = 0;  ///< critical-path DPU time (instr + DMA)
    double hostSeconds = 0; ///< host compute time
    double linkSeconds = 0; ///< host<->PIM transfer time
    double total = 0;       ///< end-to-end (serialized phases)
};

/** Joules, decomposed. */
struct EnergyReport {
    Breakdown joules;
    double total = 0;
};

/** Accumulates @p part (scaled) into @p into, merging breakdowns. */
void accumulate(TimingReport& into, const TimingReport& part,
                double scale = 1.0);
void accumulate(EnergyReport& into, const EnergyReport& part,
                double scale = 1.0);

/**
 * Converts event counts into time and energy under a system configuration.
 * @p nDpusUsed scales per-DPU dynamic energy and static power.
 */
class CostEvaluator
{
  public:
    explicit CostEvaluator(const PimSystemConfig& config)
        : config_(config)
    {}

    TimingReport timing(const KernelCost& cost, unsigned nDpusUsed) const;
    EnergyReport energy(const KernelCost& cost, unsigned nDpusUsed) const;

    /** Seconds a DPU spends on @p instructions at sustained issue. */
    double instrSeconds(double instructions) const;

    /** Seconds for a DMA of @p bytes in @p transfers chunks. */
    double dmaSeconds(double bytes, double transfers) const;

  private:
    PimSystemConfig config_;
};

} // namespace localut

#endif // LOCALUT_UPMEM_COST_MODEL_H_
