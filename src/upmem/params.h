#ifndef LOCALUT_UPMEM_PARAMS_H_
#define LOCALUT_UPMEM_PARAMS_H_

/**
 * @file
 * Parameters of the UPMEM-class PIM system model.  Defaults reproduce the
 * paper's evaluation platform (Section V/VI-A/VI-I): 32 ranks x 64 banks,
 * 350 MHz in-order DPUs, 64 MB MRAM + 64 KB WRAM per bank, roughly half of
 * each devoted to LUTs, DMA streaming at ~0.5 B/cycle per engine lane with
 * pipelined accesses (we model the effective aggregate rate), and full
 * pipeline issue with >= 11 resident tasklets.
 */

#include <algorithm>
#include <cstddef>
#include <cstdint>

namespace localut {

/** One DPU (bank-attached in-order processor plus its memories). */
struct DpuParams {
    double clockMhz = 350.0;
    unsigned tasklets = 16;          ///< resident hardware threads used
    unsigned fullIssueTasklets = 11; ///< pipeline fills at this occupancy

    /**
     * Effective MRAM<->WRAM DMA streaming rate.  The paper profiles
     * L_D = 1.36 ns per (canonical + reordering) entry pair (~3 bytes) on
     * its UPMEM platform — "0.5 B/cycle ... considering a three-stage
     * pipelined access" (Section VI-I) — which corresponds to an effective
     * ~6 B/cycle aggregate streaming rate at 350 MHz.  We adopt that
     * profiled effective rate so our cost-model constants match the
     * paper's.
     */
    double dmaBytesPerCycle = 6.0;
    double dmaSetupCycles = 32.0; ///< fixed cost per DMA transfer

    std::size_t wramBytes = 64 * 1024;
    std::size_t mramBytes = std::size_t{64} << 20;

    double wramLutFraction = 0.5; ///< WRAM budget for LUTs (paper Sec. V)
    double mramLutFraction = 0.5; ///< MRAM budget for LUTs (paper Sec. V)

    /** Sustained instruction issue rate (instructions/cycle). */
    double
    issueRate() const
    {
        return std::min(1.0, static_cast<double>(tasklets) /
                                 static_cast<double>(fullIssueTasklets));
    }

    std::size_t
    wramLutBudget() const
    {
        return static_cast<std::size_t>(wramLutFraction *
                                        static_cast<double>(wramBytes));
    }

    std::size_t
    mramLutBudget() const
    {
        return static_cast<std::size_t>(mramLutFraction *
                                        static_cast<double>(mramBytes));
    }

    double cyclesToSeconds(double cycles) const
    {
        return cycles / (clockMhz * 1e6);
    }
};

/**
 * Host <-> PIM interconnect.  Bulk transfers run rank-parallel across the
 * 32 DIMM ranks (the paper's group maintains PID-Comm, a rank-parallel
 * transfer framework for exactly this platform), so the aggregate
 * bandwidth is far above a single rank's.
 */
struct HostLinkParams {
    double hostToPimGBs = 20.0;  ///< aggregate scatter/broadcast bandwidth
    double pimToHostGBs = 12.0;  ///< aggregate gather bandwidth
    double launchLatencyUs = 10; ///< fixed cost per bulk transfer launch
};

/** Host processor compute model for the non-GEMM work it keeps. */
struct HostComputeParams {
    double effectiveGops = 24.0; ///< sustained scalar-equivalent ops/s (G)
    double activeWatts = 85.0;   ///< package power while busy
};

/** Per-event PIM energies (CACTI-class approximations, see DESIGN.md). */
struct UpmemEnergyParams {
    double pjPerInstr = 80.0;    ///< DPU pipeline + WRAM operand access
    double pjPerMramByte = 18.0; ///< DMA byte incl. amortized activation
    double pjPerLinkByte = 150.0;///< host link + channel I/O per byte
    double dpuStaticMw = 12.0;   ///< per-DPU background (bank + core)
};

/** Whole-system topology: the paper's 32-rank UPMEM server. */
struct PimSystemConfig {
    unsigned ranks = 32;
    unsigned dpusPerRank = 64;
    DpuParams dpu;
    HostLinkParams link;
    HostComputeParams host;
    UpmemEnergyParams energy;

    unsigned totalDpus() const { return ranks * dpusPerRank; }

    /** The paper's evaluation platform (2048 DPUs). */
    static PimSystemConfig upmemServer() { return {}; }
};

} // namespace localut

#endif // LOCALUT_UPMEM_PARAMS_H_
