#ifndef LOCALUT_LUT_PERF_MODEL_H_
#define LOCALUT_LUT_PERF_MODEL_H_

/**
 * @file
 * The paper's first-order performance model (Section IV-D, Eq. 2-6).  It
 * considers only LUT traffic: streaming a slice pair costs L_D per entry,
 * and each lookup (reordering access + canonical access + accumulate)
 * costs L_local.  The model selects the packing degree p* and decides
 * between slice streaming and a fully buffer-resident LUT.
 *
 * The constants L_D and L_local are *profiled* from the platform model
 * (DpuParams), mirroring how the paper profiles them from its UPMEM system
 * (Section VI-I).  Fig. 18's bench validates this model against the full
 * event-accounting simulation.
 */

#include <cstdint>

#include "lut/lut_shape.h"
#include "upmem/params.h"

namespace localut {

/** The model's two profiled constants (seconds). */
struct PerfModelConstants {
    double lD = 0.0;     ///< per (canonical + reordering) entry-pair load
    double lLocal = 0.0; ///< per lookup: reorder + canonical + accumulate

    /**
     * Profiles the constants from the platform model for a given shape:
     * L_D = entry-pair bytes / DMA rate; L_local = 12 instructions at
     * sustained issue (the instruction count the paper reports).
     */
    static PerfModelConstants profile(const DpuParams& dpu,
                                      const LutShape& shape);
};

/** Outcome of the model's configuration search. */
struct PerfChoice {
    unsigned p = 1;          ///< selected packing degree p*
    bool streaming = false;  ///< slice streaming vs buffer-resident LUT
    double seconds = 0.0;    ///< predicted LUT-access time (per-DPU tile)
    unsigned pLocal = 0;     ///< largest buffer-resident p
    unsigned pDram = 0;      ///< largest DRAM-resident p
};

/**
 * Evaluates Eq. 2/4 and performs the exhaustive p <= pDram search the
 * paper describes ("we simply test all p <= p_DRAM values").
 * Dimensions are the per-DPU tile sizes (M rows of W, K, N columns of A).
 */
class PerfModel
{
  public:
    PerfModel(const DpuParams& dpu, const QuantConfig& config,
              unsigned outBytes = 2);

    /** Eq. 2: streaming execution time for packing degree @p p. */
    double streamingSeconds(double m, double k, double n, unsigned p) const;

    /** Eq. 4: buffer-resident execution time for packing degree @p p. */
    double bufferSeconds(double m, double k, double n, unsigned p) const;

    /**
     * Eq. 6's break-even M: slice streaming at p (with pLocal as the
     * buffer-resident alternative) wins for M above this bound.
     */
    double breakEvenM(unsigned pStar, unsigned pLocal) const;

    /** Largest p whose canonical+reordering LUTs fit the WRAM budget. */
    unsigned pLocalMax() const { return pLocal_; }

    /** Largest p whose canonical+reordering LUTs fit the MRAM budget. */
    unsigned pDramMax() const { return pDram_; }

    /** Full search over p and placement (Eq. 3 + Eq. 5/6). */
    PerfChoice choose(double m, double k, double n) const;

    /** Profiled constants in use. */
    PerfModelConstants constants(unsigned p) const;

  private:
    DpuParams dpu_;
    QuantConfig config_;
    unsigned outBytes_;
    unsigned pLocal_ = 0;
    unsigned pDram_ = 0;
};

} // namespace localut

#endif // LOCALUT_LUT_PERF_MODEL_H_
