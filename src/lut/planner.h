#ifndef LOCALUT_LUT_PLANNER_H_
#define LOCALUT_LUT_PLANNER_H_

/**
 * @file
 * Configuration planner (paper Section V): at initialization the host runs
 * the performance model on the matrix dimensions to pick the packing
 * degree p*, decide between slice streaming and a buffer-resident LUT, and
 * size the slice window k.
 *
 * k selection: Eq. 2 is k-agnostic, so following the paper's Fig. 13
 * methodology the planner prefers the largest p first and then the largest
 * k in {8,4,2,1} whose k slice pairs still fit the WRAM LUT budget (larger
 * k amortizes per-row loop and DMA-setup overhead in the kernel).
 */

#include "lut/perf_model.h"

namespace localut {

/** A complete LUT execution configuration. */
struct LutPlan {
    unsigned p = 1;
    unsigned kSlices = 1;  ///< column slices resident at once (streaming)
    bool streaming = false;
    double predictedSeconds = 0.0; ///< Eq. 2/4 prediction (per-DPU tile)
};

/** Plans (p, k, streaming) for a per-DPU GEMM tile. */
class LutPlanner
{
  public:
    LutPlanner(const DpuParams& dpu, const QuantConfig& config,
               unsigned outBytes = 2);

    /** WRAM bytes of one (canonical + reordering) slice pair at @p p. */
    std::uint64_t slicePairBytes(unsigned p) const;

    /** Auto plan: p*, placement via the perf model, then largest k. */
    LutPlan choose(double tileM, double k, double tileN) const;

    /**
     * Fig. 13 mode: k is forced; returns the streaming plan with the
     * highest p whose k slice pairs fit WRAM (paper: "For each chosen k,
     * we select the highest p possible in the remaining memory space").
     */
    LutPlan chooseWithForcedK(double tileM, double k, double tileN,
                              unsigned forcedK) const;

    /** Largest k in {8,4,2,1} whose slice pairs at @p p fit WRAM (0=none). */
    unsigned maxKFor(unsigned p) const;

    const PerfModel& perfModel() const { return model_; }

  private:
    DpuParams dpu_;
    QuantConfig config_;
    unsigned outBytes_;
    PerfModel model_;
};

} // namespace localut

#endif // LOCALUT_LUT_PLANNER_H_
