#ifndef LOCALUT_LUT_CAPACITY_H_
#define LOCALUT_LUT_CAPACITY_H_

/**
 * @file
 * Capacity model for every LUT variant (paper Section III-A, IV-A/B and
 * Fig. 6).  All byte counts saturate at UINT64_MAX on overflow — the
 * non-canonical operation-packed LUT grows as 2^((bw+ba)*p) and overflows
 * 64 bits for large configurations; saturation keeps budget comparisons
 * correct (anything that large never fits).
 */

#include <cstdint>

#include "lut/lut_shape.h"

namespace localut {

/** Bytes of the plain operation-packed LUT: bo * 2^((bw+ba)*p). */
std::uint64_t opPackedLutBytes(const LutShape& shape);

/** Bytes of the canonical LUT: bo * 2^(bw*p) * C(2^ba + p - 1, p). */
std::uint64_t canonicalLutBytes(const LutShape& shape);

/**
 * Bytes per reordering-LUT entry: a packed weight vector stored in
 * 2-byte-aligned words, max(2, ceil(bw*p/8)).  (The 2-byte minimum
 * reproduces the paper's Fig. 6 totals exactly: reduction 1.68x at p=2
 * and 358x at p=8 for W1A3.)
 */
std::uint64_t reorderEntryBytes(const LutShape& shape);

/** Bytes of the reordering LUT: reorderEntryBytes * 2^(bw*p) * p!. */
std::uint64_t reorderingLutBytes(const LutShape& shape);

/** Canonical + reordering (the LoCaLUT pair). */
std::uint64_t localutBytes(const LutShape& shape);

/** Fig. 6's red line: opPacked / (canonical + reordering). */
double totalReductionRate(const LutShape& shape);

/**
 * Largest p in [1, pMax] whose LUT(s) fit @p budgetBytes.  When
 * @p canonicalized, counts canonical (+ reordering when @p withReorderLut)
 * bytes; otherwise the plain operation-packed LUT.  Returns 0 when even
 * p = 1 does not fit.
 */
unsigned maxPackingDegree(std::uint64_t budgetBytes, const QuantConfig& cfg,
                          bool canonicalized, bool withReorderLut,
                          unsigned outBytes = 2, unsigned pMax = 12);

} // namespace localut

#endif // LOCALUT_LUT_CAPACITY_H_
