#ifndef LOCALUT_LUT_CAPACITY_H_
#define LOCALUT_LUT_CAPACITY_H_

/**
 * @file
 * Capacity model for every LUT variant (paper Section III-A, IV-A/B and
 * Fig. 6).  All byte counts saturate at UINT64_MAX on overflow — the
 * non-canonical operation-packed LUT grows as 2^((bw+ba)*p) and overflows
 * 64 bits for large configurations; saturation keeps budget comparisons
 * correct (anything that large never fits).
 */

#include <cstdint>

#include "lut/lut_shape.h"

namespace localut {

/** Bytes of the plain operation-packed LUT: bo * 2^((bw+ba)*p). */
std::uint64_t opPackedLutBytes(const LutShape& shape);

/** Bytes of the canonical LUT: bo * 2^(bw*p) * C(2^ba + p - 1, p). */
std::uint64_t canonicalLutBytes(const LutShape& shape);

/**
 * Bytes per reordering-LUT entry: a packed weight vector stored in
 * 2-byte-aligned words, max(2, ceil(bw*p/8)).  (The 2-byte minimum
 * reproduces the paper's Fig. 6 totals exactly: reduction 1.68x at p=2
 * and 358x at p=8 for W1A3.)
 */
std::uint64_t reorderEntryBytes(const LutShape& shape);

/** Bytes of the reordering LUT: reorderEntryBytes * 2^(bw*p) * p!. */
std::uint64_t reorderingLutBytes(const LutShape& shape);

/** Canonical + reordering (the LoCaLUT pair). */
std::uint64_t localutBytes(const LutShape& shape);

/**
 * True when @p bytes is the saturation sentinel (UINT64_MAX): the real
 * count overflowed 64 bits, so the value is a floor, not a size.  Byte
 * counts this large must never be used in ratios or budget arithmetic as
 * if they were exact.
 */
bool lutBytesSaturated(std::uint64_t bytes);

/**
 * Fig. 6's red line: opPacked / (canonical + reordering).  When the
 * op-packed byte count saturates (it grows as 2^((bw+ba)*p)) while the
 * LoCaLUT pair does not, the true ratio is unrepresentably large and the
 * function returns +infinity rather than the bogus finite
 * UINT64_MAX / localutBytes quotient; when both sides saturate the ratio
 * is unknown and the function returns NaN.
 */
double totalReductionRate(const LutShape& shape);

/**
 * Largest p in [1, pMax] whose LUT(s) fit @p budgetBytes.  When
 * @p canonicalized, counts canonical (+ reordering when @p withReorderLut)
 * bytes; otherwise the plain operation-packed LUT.  Returns 0 when even
 * p = 1 does not fit — including a budget of 0.  Saturated byte counts
 * (lutBytesSaturated()) never "fit", even against a saturated budget:
 * comparing two UINT64_MAX sentinels would otherwise admit a LUT whose
 * real size overflowed 64 bits.
 */
unsigned maxPackingDegree(std::uint64_t budgetBytes, const QuantConfig& cfg,
                          bool canonicalized, bool withReorderLut,
                          unsigned outBytes = 2, unsigned pMax = 12);

} // namespace localut

#endif // LOCALUT_LUT_CAPACITY_H_
