#include "lut/reordering_lut.h"

#include "common/bitops.h"
#include "common/combinatorics.h"
#include "common/logging.h"

namespace localut {

ReorderingLut::ReorderingLut(const LutShape& shape,
                             std::uint64_t materializeLimitBytes)
    : shape_(shape), rows_(shape.weightRows()), cols_(shape.reorderColumns())
{
    const unsigned __int128 funcBytes =
        static_cast<unsigned __int128>(rows_) * cols_ * 4;
    LOCALUT_REQUIRE(funcBytes <= materializeLimitBytes,
                    "reordering LUT too large to materialize");

    const unsigned p = shape_.p;
    const unsigned bw = shape_.bw();
    entries_.resize(rows_ * cols_);
    std::vector<std::uint8_t> perm(p);
    std::vector<std::uint16_t> wCodes(p);
    std::vector<std::uint16_t> reordered(p);
    for (std::uint64_t permRank = 0; permRank < cols_; ++permRank) {
        permutationUnrank(static_cast<std::uint32_t>(permRank), perm);
        for (std::uint64_t wIdx = 0; wIdx < rows_; ++wIdx) {
            unpackCodes(wIdx, bw, wCodes);
            // sorted[i] = orig[perm[i]] on the host, so the weight paired
            // with sorted activation i is orig weight perm[i].
            for (unsigned i = 0; i < p; ++i) {
                reordered[i] = wCodes[perm[i]];
            }
            entries_[permRank * rows_ + wIdx] =
                static_cast<std::uint32_t>(packCodes(reordered, bw));
        }
    }
}

std::uint64_t
ReorderingLut::sliceBytes() const
{
    return rows_ * bytesForBits(static_cast<std::uint64_t>(shape_.bw()) *
                                shape_.p);
}

} // namespace localut
