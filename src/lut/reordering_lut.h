#ifndef LOCALUT_LUT_REORDERING_LUT_H_
#define LOCALUT_LUT_REORDERING_LUT_H_

/**
 * @file
 * The reordering LUT (paper Section IV-B, Fig. 5): indexed by the sorted
 * permutation of the activation group (column) and the packed weight
 * vector (row), it returns the packed weight vector permuted into the
 * activations' canonical order — replacing runtime unpack/permute/repack
 * with a single lookup.
 */

#include <cstdint>
#include <vector>

#include "lut/lut_shape.h"

namespace localut {

/** Materialized reordering LUT (column-major, like the canonical LUT). */
class ReorderingLut
{
  public:
    explicit ReorderingLut(const LutShape& shape,
                           std::uint64_t materializeLimitBytes =
                               std::uint64_t{1} << 28);

    const LutShape& shape() const { return shape_; }
    std::uint64_t rows() const { return rows_; }
    std::uint64_t cols() const { return cols_; }

    /** Bytes of one column slice at the modeled entry width. */
    std::uint64_t sliceBytes() const;

    /** Canonically-reordered packed weight vector. */
    std::uint32_t
    lookup(std::uint32_t permRank, std::uint64_t wIdx) const
    {
        return entries_[permRank * rows_ + wIdx];
    }

    /** Raw column-major entry storage (column @p permRank starts at
     * [permRank * rows()]), for the engine's fused-slice builds. */
    const std::uint32_t* data() const { return entries_.data(); }

  private:
    LutShape shape_;
    std::uint64_t rows_;
    std::uint64_t cols_;
    std::vector<std::uint32_t> entries_;
};

} // namespace localut

#endif // LOCALUT_LUT_REORDERING_LUT_H_
