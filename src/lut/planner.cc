#include "lut/planner.h"

#include <limits>

#include "common/bitops.h"
#include "common/logging.h"
#include "lut/capacity.h"

namespace localut {

LutPlanner::LutPlanner(const DpuParams& dpu, const QuantConfig& config,
                       unsigned outBytes)
    : dpu_(dpu), config_(config), outBytes_(outBytes),
      model_(dpu, config, outBytes)
{}

std::uint64_t
LutPlanner::slicePairBytes(unsigned p) const
{
    const LutShape shape(config_, p, outBytes_);
    const std::uint64_t canonical = shape.weightRows() * shape.outBytes;
    const std::uint64_t reorder =
        shape.weightRows() * reorderEntryBytes(shape);
    return canonical + reorder;
}

unsigned
LutPlanner::maxKFor(unsigned p) const
{
    const std::uint64_t budget = dpu_.wramLutBudget();
    for (unsigned k : {8u, 4u, 2u, 1u}) {
        if (static_cast<std::uint64_t>(k) * slicePairBytes(p) <= budget) {
            return k;
        }
    }
    return 0;
}

LutPlan
LutPlanner::choose(double tileM, double k, double tileN) const
{
    PerfChoice choice = model_.choose(tileM, k, tileN);
    // A streaming plan also needs at least one slice pair in WRAM.
    if (choice.streaming && maxKFor(choice.p) == 0) {
        // Fall back to the best feasible p.
        double bestSeconds = std::numeric_limits<double>::infinity();
        PerfChoice feasible = choice;
        bool found = false;
        for (unsigned p = 1; p <= model_.pDramMax(); ++p) {
            if (p <= model_.pLocalMax()) {
                const double t = model_.bufferSeconds(tileM, k, tileN, p);
                if (t < bestSeconds) {
                    bestSeconds = t;
                    feasible.p = p;
                    feasible.streaming = false;
                    feasible.seconds = t;
                    found = true;
                }
            }
            if (maxKFor(p) > 0) {
                const double t = model_.streamingSeconds(tileM, k, tileN, p);
                if (t < bestSeconds) {
                    bestSeconds = t;
                    feasible.p = p;
                    feasible.streaming = true;
                    feasible.seconds = t;
                    found = true;
                }
            }
        }
        LOCALUT_REQUIRE(found, "no feasible LUT plan for ", config_.name());
        choice = feasible;
    }

    LutPlan plan;
    plan.p = choice.p;
    plan.streaming = choice.streaming;
    plan.predictedSeconds = choice.seconds;
    plan.kSlices = choice.streaming ? maxKFor(choice.p) : 1;
    return plan;
}

LutPlan
LutPlanner::chooseWithForcedK(double tileM, double k, double tileN,
                              unsigned forcedK) const
{
    LOCALUT_REQUIRE(forcedK >= 1, "k must be >= 1");
    const std::uint64_t budget = dpu_.wramLutBudget();
    unsigned bestP = 0;
    for (unsigned p = 1; p <= model_.pDramMax(); ++p) {
        if (static_cast<std::uint64_t>(forcedK) * slicePairBytes(p) <=
            budget) {
            bestP = p;
        }
    }
    LOCALUT_REQUIRE(bestP >= 1, "k = ", forcedK,
                    " leaves no feasible packing degree for ",
                    config_.name());
    LutPlan plan;
    plan.p = bestP;
    plan.kSlices = forcedK;
    plan.streaming = true;
    plan.predictedSeconds = model_.streamingSeconds(tileM, k, tileN, bestP);
    return plan;
}

} // namespace localut
