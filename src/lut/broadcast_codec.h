#ifndef LOCALUT_LUT_BROADCAST_CODEC_H_
#define LOCALUT_LUT_BROADCAST_CODEC_H_

/**
 * @file
 * Deterministic delta/RLE codec for LUT table-set broadcasts over the
 * inter-node (CXL/PCIe) link.
 *
 * LUT tables are highly structured: canonical and operation-packed
 * tables store small-magnitude integers column-major, so consecutive
 * entries move slowly and the three high bytes of each little-endian
 * int32 are almost all sign extension.  A byte-plane shuffle (all
 * entries' byte 0, then all byte 1, ... — the blosc/HDF5 shuffle
 * filter) groups those near-constant planes, a byte-wise delta turns
 * them into zero runs, and a zero-run RLE removes them.  Nothing here
 * is entropy-coded — the point is a cheap, allocation-light transform
 * whose cost model (MemoryProfile::codecGBs) stays honest.
 *
 * Determinism: the encoder's only inputs are the raw bytes.  Transform
 * selection trial-encodes a fixed candidate list (identity, delta at
 * stride 1/2/4/8, and 4/8-byte plane shuffle + delta) and picks the
 * smallest body (first candidate wins ties), so the same bytes always
 * produce the same encoded stream on every host — a requirement for
 * charging "compressed bytes" as a reproducible cost and for bit-exact
 * decode on the receiving node (argued in DESIGN.md Section 8).
 *
 * Round trip is bit-exact for every input, including empty and
 * incompressible ones; worst-case expansion is bounded by
 * lutBroadcastMaxEncodedSize() (one control byte per 128 literals plus
 * the fixed header).
 */

#include <cstddef>
#include <cstdint>
#include <vector>

#include "kernels/design_point.h"
#include "quant/quantizer.h"

namespace localut {

/** Encoded-stream header size (magic + stride + raw size + CRC32). */
constexpr std::size_t kLutBroadcastHeaderBytes = 17;

/**
 * Outcome of lutBroadcastTryDecode().  Anything but Ok means the stream
 * is rejected whole: no partial table bytes are ever returned, so a
 * corrupted broadcast is detected and re-sent instead of decoded into
 * garbage.
 */
enum class LutCodecStatus {
    Ok,           ///< decoded; @p raw holds the exact original bytes
    BadHeader,    ///< too short for a header or wrong magic
    BadTransform, ///< transform byte names no known shuffle/stride pair
    BadChecksum,  ///< CRC32 over transform + size + body does not match
    Truncated,    ///< a literal block runs past the end of the stream
    SizeMismatch, ///< decoded byte count disagrees with the header size
};

/** Stable lower-case name of @p status (for logs and error text). */
const char* lutCodecStatusName(LutCodecStatus status);

/** Upper bound on lutBroadcastEncode() output for @p rawSize bytes. */
std::size_t lutBroadcastMaxEncodedSize(std::size_t rawSize);

/** Encodes @p size bytes at @p data; deterministic in the bytes alone. */
std::vector<std::uint8_t> lutBroadcastEncode(const std::uint8_t* data,
                                             std::size_t size);

/** Vector convenience overload of lutBroadcastEncode(). */
std::vector<std::uint8_t>
lutBroadcastEncode(const std::vector<std::uint8_t>& raw);

/**
 * Decodes a lutBroadcastEncode() stream into @p raw without aborting.
 * Every malformed input — truncated, bit-flipped, or outright garbage —
 * returns a typed error and leaves @p raw empty; only Ok fills it.
 * Allocation is bounded by the header's raw-size field, which is itself
 * validated against the maximum RLE expansion of the body before any
 * memory is reserved.
 */
LutCodecStatus lutBroadcastTryDecode(const std::uint8_t* data,
                                     std::size_t size,
                                     std::vector<std::uint8_t>& raw);

/**
 * Decodes a lutBroadcastEncode() stream back to the raw bytes.
 * Aborts (LOCALUT_REQUIRE) on any malformed stream — callers that can
 * recover (e.g. by requesting a re-send) use lutBroadcastTryDecode().
 */
std::vector<std::uint8_t> lutBroadcastDecode(const std::uint8_t* data,
                                             std::size_t size);

/** Vector convenience overload of lutBroadcastDecode(). */
std::vector<std::uint8_t>
lutBroadcastDecode(const std::vector<std::uint8_t>& encoded);

/**
 * Measured compression ratio (raw bytes / encoded bytes, >= some
 * epsilon above 0; > 1 when the codec wins) of the LUT table set a
 * (design, config, p) plan broadcasts, obtained by serializing the
 * actual materialized tables (through LutTableCache) and encoding a
 * bounded sample.  Returns 1.0 for designs that broadcast no tables.
 * Memoized per shape — the serving path calls this once per table-set
 * family, not per broadcast.
 */
double measuredTableSetRatio(DesignPoint design, const QuantConfig& config,
                             unsigned p);

} // namespace localut

#endif // LOCALUT_LUT_BROADCAST_CODEC_H_
