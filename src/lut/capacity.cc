#include "lut/capacity.h"

#include <algorithm>
#include <limits>

#include "common/bitops.h"

namespace localut {

namespace {

constexpr std::uint64_t kU64Max = std::numeric_limits<std::uint64_t>::max();

/** a * b saturating at UINT64_MAX. */
std::uint64_t
satMul(std::uint64_t a, std::uint64_t b)
{
    const unsigned __int128 wide =
        static_cast<unsigned __int128>(a) * static_cast<unsigned __int128>(b);
    return wide > kU64Max ? kU64Max : static_cast<std::uint64_t>(wide);
}

std::uint64_t
satAdd(std::uint64_t a, std::uint64_t b)
{
    return a > kU64Max - b ? kU64Max : a + b;
}

/** 2^bits saturating. */
std::uint64_t
satPow2(std::uint64_t bits)
{
    return bits >= 64 ? kU64Max : (std::uint64_t{1} << bits);
}

} // namespace

std::uint64_t
opPackedLutBytes(const LutShape& shape)
{
    const std::uint64_t idxBits =
        static_cast<std::uint64_t>(shape.bw() + shape.ba()) * shape.p;
    return satMul(shape.outBytes, satPow2(idxBits));
}

std::uint64_t
canonicalLutBytes(const LutShape& shape)
{
    return satMul(shape.outBytes,
                  satMul(shape.weightRows(), shape.canonicalColumns()));
}

std::uint64_t
reorderEntryBytes(const LutShape& shape)
{
    return std::max<std::uint64_t>(
        2, bytesForBits(static_cast<std::uint64_t>(shape.bw()) * shape.p));
}

std::uint64_t
reorderingLutBytes(const LutShape& shape)
{
    return satMul(reorderEntryBytes(shape),
                  satMul(shape.weightRows(), shape.reorderColumns()));
}

std::uint64_t
localutBytes(const LutShape& shape)
{
    return satAdd(canonicalLutBytes(shape), reorderingLutBytes(shape));
}

double
totalReductionRate(const LutShape& shape)
{
    return static_cast<double>(opPackedLutBytes(shape)) /
           static_cast<double>(localutBytes(shape));
}

unsigned
maxPackingDegree(std::uint64_t budgetBytes, const QuantConfig& cfg,
                 bool canonicalized, bool withReorderLut, unsigned outBytes,
                 unsigned pMax)
{
    unsigned best = 0;
    for (unsigned p = 1; p <= pMax; ++p) {
        const LutShape shape(cfg, p, outBytes);
        std::uint64_t bytes;
        if (!canonicalized) {
            bytes = opPackedLutBytes(shape);
        } else if (withReorderLut) {
            bytes = localutBytes(shape);
        } else {
            bytes = canonicalLutBytes(shape);
        }
        if (bytes <= budgetBytes) {
            best = p;
        }
    }
    return best;
}

} // namespace localut
