#include "lut/capacity.h"

#include <algorithm>
#include <limits>

#include "common/bitops.h"
#include "common/saturate.h"

namespace localut {

namespace {

constexpr std::uint64_t kU64Max = kSatU64Max;

/** 2^bits saturating. */
std::uint64_t
satPow2(std::uint64_t bits)
{
    return bits >= 64 ? kU64Max : (std::uint64_t{1} << bits);
}

} // namespace

std::uint64_t
opPackedLutBytes(const LutShape& shape)
{
    const std::uint64_t idxBits =
        static_cast<std::uint64_t>(shape.bw() + shape.ba()) * shape.p;
    return satMulU64(shape.outBytes, satPow2(idxBits));
}

std::uint64_t
canonicalLutBytes(const LutShape& shape)
{
    return satMulU64(shape.outBytes, satMulU64(shape.weightRows(),
                                               shape.canonicalColumns()));
}

std::uint64_t
reorderEntryBytes(const LutShape& shape)
{
    return std::max<std::uint64_t>(
        2, bytesForBits(static_cast<std::uint64_t>(shape.bw()) * shape.p));
}

std::uint64_t
reorderingLutBytes(const LutShape& shape)
{
    return satMulU64(reorderEntryBytes(shape),
                     satMulU64(shape.weightRows(), shape.reorderColumns()));
}

std::uint64_t
localutBytes(const LutShape& shape)
{
    return satAddU64(canonicalLutBytes(shape), reorderingLutBytes(shape));
}

bool
lutBytesSaturated(std::uint64_t bytes)
{
    return bytes == kU64Max;
}

double
totalReductionRate(const LutShape& shape)
{
    const std::uint64_t op = opPackedLutBytes(shape);
    const std::uint64_t pair = localutBytes(shape);
    if (lutBytesSaturated(op)) {
        // The true numerator overflowed 64 bits; dividing the sentinel by
        // real LoCaLUT bytes would report a huge-but-finite bogus ratio.
        return lutBytesSaturated(pair)
                   ? std::numeric_limits<double>::quiet_NaN()
                   : std::numeric_limits<double>::infinity();
    }
    return static_cast<double>(op) / static_cast<double>(pair);
}

unsigned
maxPackingDegree(std::uint64_t budgetBytes, const QuantConfig& cfg,
                 bool canonicalized, bool withReorderLut, unsigned outBytes,
                 unsigned pMax)
{
    if (budgetBytes == 0) {
        return 0;
    }
    unsigned best = 0;
    for (unsigned p = 1; p <= pMax; ++p) {
        const LutShape shape(cfg, p, outBytes);
        std::uint64_t bytes;
        if (!canonicalized) {
            bytes = opPackedLutBytes(shape);
        } else if (withReorderLut) {
            bytes = localutBytes(shape);
        } else {
            bytes = canonicalLutBytes(shape);
        }
        // A saturated count is a floor on a size that overflowed 64 bits:
        // it can never fit, even when the budget is saturated too.
        if (!lutBytesSaturated(bytes) && bytes <= budgetBytes) {
            best = p;
        }
    }
    return best;
}

} // namespace localut
