#include "lut/canonical_lut.h"

#include "common/bitops.h"
#include "common/logging.h"
#include "lut/capacity.h"

namespace localut {

CanonicalLut::CanonicalLut(const LutShape& shape,
                           std::uint64_t materializeLimitBytes)
    : shape_(shape), rows_(shape.weightRows()),
      cols_(shape.canonicalColumns())
{
    if (shape_.wCodec.isInteger()) {
        wDec_.resize(shape_.wCodec.cardinality());
        for (std::uint64_t c = 0; c < wDec_.size(); ++c) {
            wDec_[c] = shape_.wCodec.decodeInt(static_cast<std::uint32_t>(c));
        }
    }
    wDecF_.resize(shape_.wCodec.cardinality());
    for (std::uint64_t c = 0; c < wDecF_.size(); ++c) {
        wDecF_[c] = shape_.wCodec.decode(static_cast<std::uint32_t>(c));
    }

    const unsigned __int128 funcBytes =
        static_cast<unsigned __int128>(rows_) * cols_ * 4;
    materialized_ = funcBytes <= materializeLimitBytes;
    if (!materialized_) {
        return;
    }
    if (shape_.isInteger()) {
        entriesInt_.resize(rows_ * cols_);
        for (std::uint64_t col = 0; col < cols_; ++col) {
            computeColumnInt(col, &entriesInt_[col * rows_]);
        }
    } else {
        entriesFloat_.resize(rows_ * cols_);
        for (std::uint64_t col = 0; col < cols_; ++col) {
            computeColumnFloat(col, &entriesFloat_[col * rows_]);
        }
    }
}

void
CanonicalLut::computeColumnInt(std::uint64_t col, std::int32_t* out) const
{
    const unsigned p = shape_.p;
    std::vector<std::uint16_t> aCodes(p);
    multisetUnrank(col, shape_.aCodec.cardinality(), aCodes);
    std::vector<std::int32_t> aVal(p);
    for (unsigned i = 0; i < p; ++i) {
        aVal[i] = shape_.aCodec.decodeInt(aCodes[i]);
    }
    std::vector<std::uint16_t> wCodes(p);
    for (std::uint64_t wIdx = 0; wIdx < rows_; ++wIdx) {
        unpackCodes(wIdx, shape_.bw(), wCodes);
        std::int32_t acc = 0;
        for (unsigned i = 0; i < p; ++i) {
            acc += wDec_[wCodes[i]] * aVal[i];
        }
        out[wIdx] = acc;
    }
}

void
CanonicalLut::computeColumnFloat(std::uint64_t col, float* out) const
{
    const unsigned p = shape_.p;
    std::vector<std::uint16_t> aCodes(p);
    multisetUnrank(col, shape_.aCodec.cardinality(), aCodes);
    std::vector<float> aVal(p);
    for (unsigned i = 0; i < p; ++i) {
        aVal[i] = shape_.aCodec.decode(aCodes[i]);
    }
    std::vector<std::uint16_t> wCodes(p);
    for (std::uint64_t wIdx = 0; wIdx < rows_; ++wIdx) {
        unpackCodes(wIdx, shape_.bw(), wCodes);
        float acc = 0.0f;
        for (unsigned i = 0; i < p; ++i) {
            acc += wDecF_[wCodes[i]] * aVal[i];
        }
        // Model the 2-byte entry storage of the hardware LUT.
        out[wIdx] = shape_.outBytes <= 2 ? roundToFp16(acc) : acc;
    }
}

std::int32_t
CanonicalLut::lookupInt(std::uint64_t col, std::uint64_t wIdx) const
{
    LOCALUT_ASSERT(col < cols_ && wIdx < rows_, "canonical LUT index OOB");
    if (materialized_) {
        return entriesInt_[col * rows_ + wIdx];
    }
    // Virtual mode: compute just this entry.
    const unsigned p = shape_.p;
    std::vector<std::uint16_t> aCodes(p);
    multisetUnrank(col, shape_.aCodec.cardinality(), aCodes);
    std::vector<std::uint16_t> wCodes(p);
    unpackCodes(wIdx, shape_.bw(), wCodes);
    std::int32_t acc = 0;
    for (unsigned i = 0; i < p; ++i) {
        acc += wDec_[wCodes[i]] * shape_.aCodec.decodeInt(aCodes[i]);
    }
    return acc;
}

float
CanonicalLut::lookupFloat(std::uint64_t col, std::uint64_t wIdx) const
{
    LOCALUT_ASSERT(col < cols_ && wIdx < rows_, "canonical LUT index OOB");
    if (materialized_) {
        return entriesFloat_[col * rows_ + wIdx];
    }
    const unsigned p = shape_.p;
    std::vector<std::uint16_t> aCodes(p);
    multisetUnrank(col, shape_.aCodec.cardinality(), aCodes);
    std::vector<std::uint16_t> wCodes(p);
    unpackCodes(wIdx, shape_.bw(), wCodes);
    float acc = 0.0f;
    for (unsigned i = 0; i < p; ++i) {
        acc += wDecF_[wCodes[i]] * shape_.aCodec.decode(aCodes[i]);
    }
    return shape_.outBytes <= 2 ? roundToFp16(acc) : acc;
}

void
CanonicalLut::columnIntInto(std::uint64_t col, std::int32_t* out) const
{
    LOCALUT_ASSERT(col < cols_, "canonical LUT column OOB");
    if (materialized_) {
        std::copy(entriesInt_.begin() +
                      static_cast<std::ptrdiff_t>(col * rows_),
                  entriesInt_.begin() +
                      static_cast<std::ptrdiff_t>((col + 1) * rows_),
                  out);
    } else {
        computeColumnInt(col, out);
    }
}

void
CanonicalLut::columnFloatInto(std::uint64_t col, float* out) const
{
    LOCALUT_ASSERT(col < cols_, "canonical LUT column OOB");
    if (materialized_) {
        std::copy(entriesFloat_.begin() +
                      static_cast<std::ptrdiff_t>(col * rows_),
                  entriesFloat_.begin() +
                      static_cast<std::ptrdiff_t>((col + 1) * rows_),
                  out);
    } else {
        computeColumnFloat(col, out);
    }
}

std::vector<std::int32_t>
CanonicalLut::columnInt(std::uint64_t col) const
{
    LOCALUT_ASSERT(col < cols_, "canonical LUT column OOB");
    std::vector<std::int32_t> slice(rows_);
    if (materialized_) {
        std::copy(entriesInt_.begin() +
                      static_cast<std::ptrdiff_t>(col * rows_),
                  entriesInt_.begin() +
                      static_cast<std::ptrdiff_t>((col + 1) * rows_),
                  slice.begin());
    } else {
        computeColumnInt(col, slice.data());
    }
    return slice;
}

std::vector<float>
CanonicalLut::columnFloat(std::uint64_t col) const
{
    LOCALUT_ASSERT(col < cols_, "canonical LUT column OOB");
    std::vector<float> slice(rows_);
    if (materialized_) {
        std::copy(entriesFloat_.begin() +
                      static_cast<std::ptrdiff_t>(col * rows_),
                  entriesFloat_.begin() +
                      static_cast<std::ptrdiff_t>((col + 1) * rows_),
                  slice.begin());
    } else {
        computeColumnFloat(col, slice.data());
    }
    return slice;
}

} // namespace localut
