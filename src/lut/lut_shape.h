#ifndef LOCALUT_LUT_LUT_SHAPE_H_
#define LOCALUT_LUT_LUT_SHAPE_H_

/**
 * @file
 * The shape of an operation-packed LUT family: weight/activation codecs,
 * packing degree p, and the stored entry width (paper's b_o).
 */

#include <cstdint>

#include "common/combinatorics.h"
#include "quant/quantizer.h"

namespace localut {

/** Shape parameters shared by all LUT variants. */
struct LutShape {
    ValueCodec wCodec;
    ValueCodec aCodec;
    unsigned p = 1;        ///< packing degree: MACs per lookup
    unsigned outBytes = 2; ///< stored entry bytes (paper's b_o)

    LutShape(ValueCodec w, ValueCodec a, unsigned packing,
             unsigned entryBytes = 2)
        : wCodec(w), aCodec(a), p(packing), outBytes(entryBytes)
    {}

    LutShape(const QuantConfig& config, unsigned packing,
             unsigned entryBytes = 2)
        : LutShape(config.weightCodec, config.actCodec, packing, entryBytes)
    {}

    unsigned bw() const { return wCodec.bits(); }
    unsigned ba() const { return aCodec.bits(); }

    /** Rows indexed by the packed weight vector: 2^(bw*p). */
    std::uint64_t
    weightRows() const
    {
        return std::uint64_t{1} << (static_cast<std::uint64_t>(bw()) * p);
    }

    /** Columns of the non-canonical operation-packed LUT: 2^(ba*p). */
    std::uint64_t
    opColumns() const
    {
        return std::uint64_t{1} << (static_cast<std::uint64_t>(ba()) * p);
    }

    /** Columns of the canonical LUT: C(2^ba + p - 1, p)  (paper Eq. 1). */
    std::uint64_t
    canonicalColumns() const
    {
        return multisetCount(aCodec.cardinality(), p);
    }

    /** Columns of the reordering LUT: p!. */
    std::uint64_t
    reorderColumns() const
    {
        return factorial(p);
    }

    /** True when both codecs are integers (int32 LUT entries, exact). */
    bool
    isInteger() const
    {
        return wCodec.isInteger() && aCodec.isInteger();
    }
};

} // namespace localut

#endif // LOCALUT_LUT_LUT_SHAPE_H_
