#include "lut/broadcast_codec.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <map>
#include <mutex>
#include <tuple>

#include "common/logging.h"
#include "lut/lut_shape.h"
#include "lut/table_cache.h"

namespace localut {

namespace {

constexpr std::uint8_t kMagic[4] = {'L', 'B', 'C', '1'};

// RLE token space: control < 0x80 => (control + 1) literal bytes
// follow; control >= 0x80 => (control & 0x7f) + 1 zero bytes.
constexpr std::size_t kMaxRun = 128;
// A zero run shorter than this stays literal: a 1-2 byte run saves at
// most what its control byte costs, and splitting literal blocks adds
// control bytes of its own.
constexpr std::size_t kMinZeroRun = 3;

/**
 * One trial transform: an optional byte-plane shuffle (all entries'
 * byte 0, then all byte 1, ... — groups the near-constant sign-
 * extension planes of int32 entries into giant runs) followed by an
 * optional byte-wise delta at a small stride.  Trialed in a fixed
 * order; the first smallest body wins, so the encoding is a pure
 * function of the raw bytes.
 */
struct Transform {
    unsigned shuffle; ///< element width to plane-split (0 = none)
    unsigned stride;  ///< post-shuffle delta stride (0 = identity)
};

constexpr Transform kTransforms[] = {{0, 0}, {0, 1}, {0, 2}, {0, 4},
                                     {0, 8}, {4, 1}, {8, 1}};

bool
knownTransform(unsigned shuffle, unsigned stride)
{
    for (const Transform& t : kTransforms) {
        if (t.shuffle == shuffle && t.stride == stride) {
            return true;
        }
    }
    return false;
}

/**
 * CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320).  CRC detects every
 * single-bit and double-bit error in the payload, which is exactly the
 * guarantee the bit-flip fuzz tests and the fault injector's corruption
 * model rely on (an FNV-style hash would not give it).
 */
std::uint32_t
crc32Update(std::uint32_t crc, const std::uint8_t* data, std::size_t size)
{
    static const std::array<std::uint32_t, 256> table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t n = 0; n < 256; ++n) {
            std::uint32_t c = n;
            for (int k = 0; k < 8; ++k) {
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            }
            t[n] = c;
        }
        return t;
    }();
    for (std::size_t i = 0; i < size; ++i) {
        crc = table[(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
    }
    return crc;
}

std::uint32_t
crc32Finish(std::uint32_t crc)
{
    return crc ^ 0xffffffffu;
}

constexpr std::uint32_t kCrc32Init = 0xffffffffu;

std::size_t
zeroRunAt(const std::vector<std::uint8_t>& d, std::size_t i)
{
    std::size_t j = i;
    while (j < d.size() && d[j] == 0) {
        ++j;
    }
    return j - i;
}

/** RLE of @p delta appended to @p out; returns bytes appended. */
std::size_t
rleEncode(const std::vector<std::uint8_t>& delta,
          std::vector<std::uint8_t>& out)
{
    const std::size_t start = out.size();
    std::size_t i = 0;
    while (i < delta.size()) {
        std::size_t zeros = zeroRunAt(delta, i);
        if (zeros >= kMinZeroRun) {
            while (zeros > 0) {
                const std::size_t run = std::min(zeros, kMaxRun);
                out.push_back(static_cast<std::uint8_t>(0x80 | (run - 1)));
                zeros -= run;
                i += run;
            }
            continue;
        }
        // Literal block: up to the next worthwhile zero run or the cap.
        std::size_t end = i;
        while (end < delta.size() && end - i < kMaxRun) {
            if (delta[end] == 0 && zeroRunAt(delta, end) >= kMinZeroRun) {
                break;
            }
            ++end;
        }
        out.push_back(static_cast<std::uint8_t>(end - i - 1));
        out.insert(out.end(), delta.begin() + static_cast<std::ptrdiff_t>(i),
                   delta.begin() + static_cast<std::ptrdiff_t>(end));
        i = end;
    }
    return out.size() - start;
}

/**
 * Byte-plane shuffle: for elements of @p width bytes, emit every
 * element's byte 0, then every byte 1, ...; the tail (size % width)
 * passes through at the end.  Self-inverse via unshuffleBytes().
 */
std::vector<std::uint8_t>
shuffleBytes(const std::uint8_t* data, std::size_t size, unsigned width)
{
    std::vector<std::uint8_t> out(size);
    const std::size_t elems = size / width;
    std::size_t idx = 0;
    for (unsigned plane = 0; plane < width; ++plane) {
        for (std::size_t i = 0; i < elems; ++i) {
            out[idx++] = data[i * width + plane];
        }
    }
    for (std::size_t i = elems * width; i < size; ++i) {
        out[idx++] = data[i];
    }
    return out;
}

void
unshuffleBytes(std::vector<std::uint8_t>& data, unsigned width)
{
    const std::size_t elems = data.size() / width;
    std::vector<std::uint8_t> out(data.size());
    std::size_t idx = 0;
    for (unsigned plane = 0; plane < width; ++plane) {
        for (std::size_t i = 0; i < elems; ++i) {
            out[i * width + plane] = data[idx++];
        }
    }
    for (std::size_t i = elems * width; i < data.size(); ++i) {
        out[i] = data[idx++];
    }
    data = std::move(out);
}

std::vector<std::uint8_t>
applyTransform(const std::uint8_t* data, std::size_t size,
               const Transform& transform)
{
    std::vector<std::uint8_t> work =
        transform.shuffle > 0 ? shuffleBytes(data, size, transform.shuffle)
                              : std::vector<std::uint8_t>(data, data + size);
    if (transform.stride > 0) {
        for (std::size_t i = work.size(); i-- > transform.stride;) {
            work[i] =
                static_cast<std::uint8_t>(work[i] - work[i - transform.stride]);
        }
    }
    return work;
}

} // namespace

std::size_t
lutBroadcastMaxEncodedSize(std::size_t rawSize)
{
    // One control byte per literal block of up to kMaxRun bytes.
    return kLutBroadcastHeaderBytes + rawSize + rawSize / kMaxRun + 1;
}

std::vector<std::uint8_t>
lutBroadcastEncode(const std::uint8_t* data, std::size_t size)
{
    LOCALUT_REQUIRE(data != nullptr || size == 0,
                    "null broadcast codec input");
    Transform best{0, 0};
    std::vector<std::uint8_t> bestBody;
    bool haveBest = false;
    for (const Transform& transform : kTransforms) {
        const std::vector<std::uint8_t> delta =
            applyTransform(data, size, transform);
        std::vector<std::uint8_t> body;
        body.reserve(size + size / kMaxRun + 1);
        rleEncode(delta, body);
        if (!haveBest || body.size() < bestBody.size()) {
            haveBest = true;
            best = transform;
            bestBody = std::move(body);
        }
    }
    std::vector<std::uint8_t> out;
    out.reserve(kLutBroadcastHeaderBytes + bestBody.size());
    for (const std::uint8_t byte : kMagic) {
        out.push_back(byte);
    }
    out.push_back(
        static_cast<std::uint8_t>((best.shuffle << 4) | best.stride));
    for (unsigned b = 0; b < 8; ++b) {
        out.push_back(static_cast<std::uint8_t>(
            (static_cast<std::uint64_t>(size) >> (8 * b)) & 0xff));
    }
    // CRC32 over transform byte + raw-size field + body: any bit flip
    // outside the magic (caught by the magic check) or the checksum
    // itself (caught by the mismatch) is detected.
    std::uint32_t crc = crc32Update(kCrc32Init, out.data() + 4, 9);
    crc = crc32Finish(crc32Update(crc, bestBody.data(), bestBody.size()));
    for (unsigned b = 0; b < 4; ++b) {
        out.push_back(static_cast<std::uint8_t>((crc >> (8 * b)) & 0xff));
    }
    out.insert(out.end(), bestBody.begin(), bestBody.end());
    return out;
}

std::vector<std::uint8_t>
lutBroadcastEncode(const std::vector<std::uint8_t>& raw)
{
    return lutBroadcastEncode(raw.data(), raw.size());
}

const char*
lutCodecStatusName(LutCodecStatus status)
{
    switch (status) {
    case LutCodecStatus::Ok:
        return "ok";
    case LutCodecStatus::BadHeader:
        return "bad_header";
    case LutCodecStatus::BadTransform:
        return "bad_transform";
    case LutCodecStatus::BadChecksum:
        return "bad_checksum";
    case LutCodecStatus::Truncated:
        return "truncated";
    case LutCodecStatus::SizeMismatch:
        return "size_mismatch";
    }
    return "unknown";
}

LutCodecStatus
lutBroadcastTryDecode(const std::uint8_t* data, std::size_t size,
                      std::vector<std::uint8_t>& raw)
{
    raw.clear();
    if (data == nullptr || size < kLutBroadcastHeaderBytes ||
        std::memcmp(data, kMagic, 4) != 0) {
        return LutCodecStatus::BadHeader;
    }
    const unsigned shuffle = data[4] >> 4;
    const unsigned stride = data[4] & 0x0f;
    if (!knownTransform(shuffle, stride)) {
        return LutCodecStatus::BadTransform;
    }
    std::uint64_t rawSize = 0;
    for (unsigned b = 0; b < 8; ++b) {
        rawSize |= static_cast<std::uint64_t>(data[5 + b]) << (8 * b);
    }
    std::uint32_t stored = 0;
    for (unsigned b = 0; b < 4; ++b) {
        stored |= static_cast<std::uint32_t>(data[13 + b]) << (8 * b);
    }
    const std::size_t bodySize = size - kLutBroadcastHeaderBytes;
    std::uint32_t crc = crc32Update(kCrc32Init, data + 4, 9);
    crc = crc32Finish(
        crc32Update(crc, data + kLutBroadcastHeaderBytes, bodySize));
    if (crc != stored) {
        return LutCodecStatus::BadChecksum;
    }
    // Each body byte expands to at most kMaxRun raw bytes, so a header
    // claiming more than that is lying — reject before reserving.
    if (rawSize > static_cast<std::uint64_t>(bodySize) * kMaxRun) {
        return LutCodecStatus::SizeMismatch;
    }
    raw.reserve(static_cast<std::size_t>(rawSize));
    std::size_t i = kLutBroadcastHeaderBytes;
    while (i < size) {
        const std::uint8_t control = data[i++];
        if (control & 0x80) {
            const std::size_t zeros = (control & 0x7f) + std::size_t{1};
            if (raw.size() + zeros > rawSize) {
                raw.clear();
                return LutCodecStatus::SizeMismatch;
            }
            raw.insert(raw.end(), zeros, 0);
        } else {
            const std::size_t len = control + std::size_t{1};
            if (i + len > size) {
                raw.clear();
                return LutCodecStatus::Truncated;
            }
            if (raw.size() + len > rawSize) {
                raw.clear();
                return LutCodecStatus::SizeMismatch;
            }
            raw.insert(raw.end(), data + i, data + i + len);
            i += len;
        }
    }
    if (raw.size() != rawSize) {
        raw.clear();
        return LutCodecStatus::SizeMismatch;
    }
    if (stride > 0) {
        for (std::size_t j = stride; j < raw.size(); ++j) {
            raw[j] = static_cast<std::uint8_t>(raw[j] + raw[j - stride]);
        }
    }
    if (shuffle > 0) {
        unshuffleBytes(raw, shuffle);
    }
    return LutCodecStatus::Ok;
}

std::vector<std::uint8_t>
lutBroadcastDecode(const std::uint8_t* data, std::size_t size)
{
    std::vector<std::uint8_t> raw;
    const LutCodecStatus status = lutBroadcastTryDecode(data, size, raw);
    LOCALUT_REQUIRE(status == LutCodecStatus::Ok,
                    "malformed broadcast codec stream: ",
                    lutCodecStatusName(status));
    return raw;
}

std::vector<std::uint8_t>
lutBroadcastDecode(const std::vector<std::uint8_t>& encoded)
{
    return lutBroadcastDecode(encoded.data(), encoded.size());
}

namespace {

/** Sample cap: enough columns to be representative, cheap to encode. */
constexpr std::size_t kRatioSampleBytes = std::size_t{4} << 20;

void
appendBytes(std::vector<std::uint8_t>& out, const void* data,
            std::size_t bytes)
{
    const std::size_t take =
        std::min(bytes, kRatioSampleBytes - std::min(kRatioSampleBytes,
                                                     out.size()));
    if (take == 0) {
        return;
    }
    const auto* p = static_cast<const std::uint8_t*>(data);
    out.insert(out.end(), p, p + take);
}

/** Serializes a bounded sample of the tables @p design broadcasts. */
std::vector<std::uint8_t>
sampleTableSet(DesignPoint design, const QuantConfig& config, unsigned p)
{
    const LutShape shape(config, std::max(1u, p));
    std::vector<std::uint8_t> sample;
    LutTableCache& cache = LutTableCache::global();
    switch (design) {
      case DesignPoint::NaivePim:
      case DesignPoint::Ltc:
        return sample; // no broadcast tables
      case DesignPoint::OpLutDram:
      case DesignPoint::OpLut: {
        const auto lut = cache.opLut(shape);
        if (lut->dataInt() != nullptr) {
            appendBytes(sample, lut->dataInt(),
                        lut->rows() * lut->cols() * sizeof(std::int32_t));
        } else if (lut->dataFloat() != nullptr) {
            appendBytes(sample, lut->dataFloat(),
                        lut->rows() * lut->cols() * sizeof(float));
        }
        return sample;
      }
      case DesignPoint::OpLc:
      case DesignPoint::OpLcRc:
      case DesignPoint::LoCaLut: {
        const auto lut = cache.canonicalLut(shape);
        if (lut->dataInt() != nullptr) {
            appendBytes(sample, lut->dataInt(),
                        lut->rows() * lut->cols() * sizeof(std::int32_t));
        } else if (lut->dataFloat() != nullptr) {
            appendBytes(sample, lut->dataFloat(),
                        lut->rows() * lut->cols() * sizeof(float));
        } else {
            // Virtual canonical table (materialization limit): sample
            // column slices through the allocation-free accessor.
            const std::uint64_t rows = lut->rows();
            std::vector<std::int32_t> column(rows);
            for (std::uint64_t col = 0;
                 col < lut->cols() &&
                 sample.size() < kRatioSampleBytes;
                 ++col) {
                lut->columnIntInto(col, column.data());
                appendBytes(sample, column.data(),
                            rows * sizeof(std::int32_t));
            }
        }
        if (design != DesignPoint::OpLc) {
            const auto reorder = cache.reorderingLut(shape);
            appendBytes(sample, reorder->data(),
                        reorder->rows() * reorder->cols() *
                            sizeof(std::uint32_t));
        }
        return sample;
      }
    }
    LOCALUT_PANIC("invalid design point");
}

} // namespace

double
measuredTableSetRatio(DesignPoint design, const QuantConfig& config,
                      unsigned p)
{
    struct Key {
        int design;
        CodecKind wKind;
        unsigned wBits;
        CodecKind aKind;
        unsigned aBits;
        unsigned p;
        bool operator<(const Key& o) const
        {
            return std::tie(design, wKind, wBits, aKind, aBits, p) <
                   std::tie(o.design, o.wKind, o.wBits, o.aKind, o.aBits,
                            o.p);
        }
    };
    static std::mutex mutex;
    static std::map<Key, double> memo;
    const Key key{static_cast<int>(design),
                  config.weightCodec.kind(),
                  config.weightCodec.bits(),
                  config.actCodec.kind(),
                  config.actCodec.bits(),
                  std::max(1u, p)};
    {
        std::lock_guard<std::mutex> lock(mutex);
        const auto it = memo.find(key);
        if (it != memo.end()) {
            return it->second;
        }
    }
    const std::vector<std::uint8_t> sample =
        sampleTableSet(design, config, key.p);
    double ratio = 1.0;
    if (!sample.empty()) {
        const std::vector<std::uint8_t> encoded = lutBroadcastEncode(sample);
        if (!encoded.empty()) {
            ratio = static_cast<double>(sample.size()) /
                    static_cast<double>(encoded.size());
        }
    }
    std::lock_guard<std::mutex> lock(mutex);
    memo.emplace(key, ratio);
    return ratio;
}

} // namespace localut
