#include "lut/perf_model.h"

#include <cmath>
#include <limits>

#include "common/bitops.h"
#include "common/logging.h"
#include "lut/capacity.h"

namespace localut {

namespace {

/** The paper's measured per-lookup instruction count (Section VI-I). */
constexpr double kLookupInstructions = 12.0;

} // namespace

PerfModelConstants
PerfModelConstants::profile(const DpuParams& dpu, const LutShape& shape)
{
    PerfModelConstants c;
    const double entryPairBytes =
        static_cast<double>(shape.outBytes) +
        static_cast<double>(bytesForBits(
            static_cast<std::uint64_t>(shape.bw()) * shape.p));
    const double hz = dpu.clockMhz * 1e6;
    c.lD = entryPairBytes / dpu.dmaBytesPerCycle / hz;
    c.lLocal = kLookupInstructions / dpu.issueRate() / hz;
    return c;
}

PerfModel::PerfModel(const DpuParams& dpu, const QuantConfig& config,
                     unsigned outBytes)
    : dpu_(dpu), config_(config), outBytes_(outBytes)
{
    pLocal_ = maxPackingDegree(dpu.wramLutBudget(), config,
                               /*canonicalized=*/true,
                               /*withReorderLut=*/true, outBytes);
    pDram_ = maxPackingDegree(dpu.mramLutBudget(), config,
                              /*canonicalized=*/true,
                              /*withReorderLut=*/true, outBytes);
}

PerfModelConstants
PerfModel::constants(unsigned p) const
{
    return PerfModelConstants::profile(dpu_, LutShape(config_, p, outBytes_));
}

double
PerfModel::streamingSeconds(double m, double k, double n, unsigned p) const
{
    const PerfModelConstants c = constants(p);
    const double sliceEntries =
        std::pow(2.0, static_cast<double>(config_.bw()) * p);
    const double slices = std::ceil(k / p) * n;
    const double lookups = m * std::ceil(k / p) * n;
    return sliceEntries * slices * c.lD + lookups * c.lLocal;
}

double
PerfModel::bufferSeconds(double m, double k, double n, unsigned p) const
{
    const PerfModelConstants c = constants(p);
    const double lookups = m * std::ceil(k / p) * n;
    return lookups * c.lLocal;
}

double
PerfModel::breakEvenM(unsigned pStar, unsigned pLocal) const
{
    LOCALUT_REQUIRE(pStar > pLocal,
                    "break-even M defined only for pStar > pLocal");
    const PerfModelConstants c = constants(pStar);
    const double lutEntries =
        std::pow(2.0, static_cast<double>(config_.bw()) * pStar);
    // Eq. 6: M < 2^(bw p*) * (L_D / L_local) * pLocal / (p* - pLocal)
    return lutEntries * (c.lD / c.lLocal) *
           static_cast<double>(pLocal) /
           static_cast<double>(pStar - pLocal);
}

PerfChoice
PerfModel::choose(double m, double k, double n) const
{
    PerfChoice best;
    best.pLocal = pLocal_;
    best.pDram = pDram_;
    best.seconds = std::numeric_limits<double>::infinity();
    LOCALUT_REQUIRE(pDram_ >= 1,
                    "no packing degree fits the DRAM LUT budget for ",
                    config_.name());
    for (unsigned p = 1; p <= pDram_; ++p) {
        if (p <= pLocal_) {
            const double t = bufferSeconds(m, k, n, p);
            if (t < best.seconds) {
                best.seconds = t;
                best.p = p;
                best.streaming = false;
            }
        }
        const double t = streamingSeconds(m, k, n, p);
        if (t < best.seconds) {
            best.seconds = t;
            best.p = p;
            best.streaming = true;
        }
    }
    return best;
}

} // namespace localut
