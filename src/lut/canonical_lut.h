#ifndef LOCALUT_LUT_CANONICAL_LUT_H_
#define LOCALUT_LUT_CANONICAL_LUT_H_

/**
 * @file
 * The canonical LUT (paper Section IV-A, Fig. 4): the operation-packed LUT
 * with duplicate columns removed.  Columns are indexed by the multiset
 * rank of the sorted activation group; rows by the canonically-reordered
 * packed weight vector.
 *
 * Columns are the unit of slice streaming, so the interface is
 * column-centric: column(col) returns one contiguous slice, exactly what
 * the hardware DMAs into the local buffer.
 */

#include <cstdint>
#include <vector>

#include "lut/lut_shape.h"

namespace localut {

/**
 * Canonical LUT with two storage modes:
 *  - materialized: the whole table is built eagerly (column-major);
 *  - virtual: entries are computed on demand (for shapes whose full size
 *    exceeds the materialization limit, e.g. FP16-activation columns).
 * Both modes are functionally identical; the capacity model (not this
 * class) decides what fits which memory.
 */
class CanonicalLut
{
  public:
    explicit CanonicalLut(const LutShape& shape,
                          std::uint64_t materializeLimitBytes =
                              std::uint64_t{1} << 28);

    const LutShape& shape() const { return shape_; }
    bool materialized() const { return materialized_; }

    std::uint64_t rows() const { return rows_; }
    std::uint64_t cols() const { return cols_; }

    /** Bytes of one column slice at the modeled entry width. */
    std::uint64_t sliceBytes() const { return rows_ * shape_.outBytes; }

    /** Single integer entry. */
    std::int32_t lookupInt(std::uint64_t col, std::uint64_t wIdx) const;

    /** Single float entry (rounded to fp16 storage, see DESIGN.md). */
    float lookupFloat(std::uint64_t col, std::uint64_t wIdx) const;

    /** One full integer column slice (size rows()). */
    std::vector<std::int32_t> columnInt(std::uint64_t col) const;

    /** One full float column slice (size rows()). */
    std::vector<float> columnFloat(std::uint64_t col) const;

    /**
     * Allocation-free column slice into caller storage (size rows()):
     * a memcpy when materialized, a recompute in virtual mode.  The
     * execution engine's fused-slice builds and slice streaming use
     * these so steady-state execution performs no heap allocations.
     */
    void columnIntInto(std::uint64_t col, std::int32_t* out) const;
    void columnFloatInto(std::uint64_t col, float* out) const;

    /**
     * Raw column-major entry storage for the materialized fast path
     * (entry (col, wIdx) at [col * rows() + wIdx]); nullptr in virtual
     * mode or for the other element type.
     */
    const std::int32_t*
    dataInt() const
    {
        return materialized_ && !entriesInt_.empty() ? entriesInt_.data()
                                                     : nullptr;
    }

    const float*
    dataFloat() const
    {
        return materialized_ && !entriesFloat_.empty()
                   ? entriesFloat_.data()
                   : nullptr;
    }

  private:
    void computeColumnInt(std::uint64_t col, std::int32_t* out) const;
    void computeColumnFloat(std::uint64_t col, float* out) const;

    LutShape shape_;
    std::uint64_t rows_;
    std::uint64_t cols_;
    bool materialized_ = false;
    std::vector<std::int32_t> entriesInt_;  ///< column-major when materialized
    std::vector<float> entriesFloat_;
    std::vector<std::int32_t> wDec_; ///< pre-decoded weight alphabet (int)
    std::vector<float> wDecF_;       ///< pre-decoded weight alphabet (float)
};

} // namespace localut

#endif // LOCALUT_LUT_CANONICAL_LUT_H_
