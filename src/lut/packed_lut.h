#ifndef LOCALUT_LUT_PACKED_LUT_H_
#define LOCALUT_LUT_PACKED_LUT_H_

/**
 * @file
 * The plain operation-packed LUT (paper Section III-A, Fig. 2): one lookup
 * indexed by (packed weight vector, packed activation vector) returns the
 * p-element inner product.  This is the paper's OP baseline design point.
 */

#include <cstdint>
#include <vector>

#include "lut/lut_shape.h"

namespace localut {

/**
 * Materialized operation-packed LUT.  Entries are stored column-major
 * (column = packed activation index) to mirror the slice layout used by
 * the canonical LUT.  Integer shapes store int32 entries functionally; the
 * capacity model accounts shape.outBytes per entry (see DESIGN.md).
 */
class OperationPackedLut
{
  public:
    /**
     * Builds the full table.  Fatals when the entry count exceeds
     * @p materializeLimitBytes (at 4 functional bytes/entry) — callers are
     * expected to consult the capacity model first.
     */
    explicit OperationPackedLut(const LutShape& shape,
                                std::uint64_t materializeLimitBytes =
                                    std::uint64_t{1} << 30);

    const LutShape& shape() const { return shape_; }

    /** Integer entry for (packed weights, packed activations). */
    std::int32_t
    lookupInt(std::uint64_t wIdx, std::uint64_t aIdx) const
    {
        return entriesInt_[aIdx * rows_ + wIdx];
    }

    /** Float entry (float shapes only). */
    float
    lookupFloat(std::uint64_t wIdx, std::uint64_t aIdx) const
    {
        return entriesFloat_[aIdx * rows_ + wIdx];
    }

    std::uint64_t rows() const { return rows_; }
    std::uint64_t cols() const { return cols_; }

    /** Raw column-major entry storage (column @p aIdx starts at
     * [aIdx * rows()]); null for the other element type.  Used by the
     * execution engine to hoist the column base out of the row sweep. */
    const std::int32_t*
    dataInt() const
    {
        return entriesInt_.empty() ? nullptr : entriesInt_.data();
    }

    const float*
    dataFloat() const
    {
        return entriesFloat_.empty() ? nullptr : entriesFloat_.data();
    }

  private:
    LutShape shape_;
    std::uint64_t rows_;
    std::uint64_t cols_;
    std::vector<std::int32_t> entriesInt_;
    std::vector<float> entriesFloat_;
};

} // namespace localut

#endif // LOCALUT_LUT_PACKED_LUT_H_
