#include "lut/canonicalizer.h"

#include "common/logging.h"

namespace localut {

ActivationCanonicalizer::ActivationCanonicalizer(const LutShape& shape)
    : p_(shape.p), alphabet_(shape.aCodec.cardinality())
{
    LOCALUT_REQUIRE(p_ >= 1 && p_ <= 12, "packing degree out of range");
}

CanonicalGroup
ActivationCanonicalizer::canonicalize(
    std::span<const std::uint16_t> codes) const
{
    LOCALUT_ASSERT(codes.size() == p_, "group size ", codes.size(),
                   " != p ", p_);
    CanonicalGroup group;
    const std::vector<std::uint8_t> perm = stableArgsort(codes);
    group.sortedCodes.resize(p_);
    for (unsigned i = 0; i < p_; ++i) {
        group.sortedCodes[i] = codes[perm[i]];
    }
    group.multisetRank = multisetRank(group.sortedCodes, alphabet_);
    group.permRank = permutationRank(perm);
    return group;
}

} // namespace localut
