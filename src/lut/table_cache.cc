#include "lut/table_cache.h"

#include "common/hash.h"
#include "common/lru.h"

namespace localut {

LutTableCache::LutTableCache(std::size_t maxEntries,
                             std::uint64_t maxBytes)
    : maxEntries_(maxEntries == 0 ? 1 : maxEntries), maxBytes_(maxBytes)
{}

std::uint64_t
LutTableCache::totalBytesLocked() const
{
    std::uint64_t bytes = 0;
    for (const auto& [key, entry] : entries_) {
        bytes += entry.bytes;
    }
    return bytes;
}

LutTableCache&
LutTableCache::global()
{
    static LutTableCache cache;
    return cache;
}

std::size_t
LutTableCache::KeyHash::operator()(const Key& key) const
{
    std::size_t seed = 0;
    hashCombine(seed, static_cast<std::size_t>(key.wKind));
    hashCombine(seed, key.wBits);
    hashCombine(seed, static_cast<std::size_t>(key.aKind));
    hashCombine(seed, key.aBits);
    hashCombine(seed, key.p);
    hashCombine(seed, key.outBytes);
    hashCombine(seed, static_cast<std::size_t>(key.family));
    return seed;
}

template <typename T, typename Build, typename BytesOf>
std::shared_ptr<const T>
LutTableCache::acquire(const Key& key, const Build& build,
                       const BytesOf& bytesOf)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            ++hits_;
            it->second.lastUse = ++clock_;
            return std::static_pointer_cast<const T>(it->second.table);
        }
    }
    // Build outside the lock: construction is the expensive part, and a
    // racing build of the same shape produces an identical table.
    std::shared_ptr<const T> table = build();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++misses_;
        entries_[key] = Entry{table, bytesOf(*table), ++clock_};
        // Entry- and byte-bounded: the scan-based byte total is fine at
        // these cache sizes (<= maxEntries_ entries, evict-on-insert).
        evictLeastRecentlyUsedWhile(entries_, [this] {
            return entries_.size() > maxEntries_ ||
                   totalBytesLocked() > maxBytes_;
        });
    }
    return table;
}

std::shared_ptr<const OperationPackedLut>
LutTableCache::opLut(const LutShape& shape)
{
    const Key key{shape.wCodec.kind(), shape.bw(), shape.aCodec.kind(),
                  shape.ba(),          shape.p,    shape.outBytes,
                  Family::Op};
    return acquire<OperationPackedLut>(
        key,
        [&] { return std::make_shared<const OperationPackedLut>(shape); },
        [](const OperationPackedLut& lut) {
            return lut.rows() * lut.cols() * 4;
        });
}

std::shared_ptr<const CanonicalLut>
LutTableCache::canonicalLut(const LutShape& shape)
{
    const Key key{shape.wCodec.kind(), shape.bw(), shape.aCodec.kind(),
                  shape.ba(),          shape.p,    shape.outBytes,
                  Family::Canonical};
    return acquire<CanonicalLut>(
        key, [&] { return std::make_shared<const CanonicalLut>(shape); },
        [](const CanonicalLut& lut) {
            // Virtual (non-materialized) tables hold only the decode
            // alphabet.
            return lut.materialized() ? lut.rows() * lut.cols() * 4
                                      : std::uint64_t{4096};
        });
}

std::shared_ptr<const ReorderingLut>
LutTableCache::reorderingLut(const LutShape& shape)
{
    const Key key{shape.wCodec.kind(), shape.bw(), shape.aCodec.kind(),
                  shape.ba(),          shape.p,    shape.outBytes,
                  Family::Reorder};
    return acquire<ReorderingLut>(
        key, [&] { return std::make_shared<const ReorderingLut>(shape); },
        [](const ReorderingLut& lut) {
            return lut.rows() * lut.cols() * 4;
        });
}

LutTableCache::Stats
LutTableCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Stats s;
    s.hits = hits_;
    s.misses = misses_;
    s.entries = entries_.size();
    s.bytes = totalBytesLocked();
    return s;
}

void
LutTableCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
}

} // namespace localut
