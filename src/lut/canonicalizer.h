#ifndef LOCALUT_LUT_CANONICALIZER_H_
#define LOCALUT_LUT_CANONICALIZER_H_

/**
 * @file
 * Host-side activation canonicalization (paper Fig. 4b step 1): sort a
 * group of p activation codes, producing the canonical-LUT column index
 * (multiset rank) and the reordering-LUT column index (permutation rank of
 * the stable argsort).
 */

#include <cstdint>
#include <span>
#include <vector>

#include "lut/lut_shape.h"

namespace localut {

/** Result of canonicalizing one activation group of p codes. */
struct CanonicalGroup {
    std::uint64_t multisetRank = 0;         ///< canonical-LUT column
    std::uint32_t permRank = 0;             ///< reordering-LUT column
    std::vector<std::uint16_t> sortedCodes; ///< ascending activation codes
};

/** Canonicalizes activation groups for a fixed shape. */
class ActivationCanonicalizer
{
  public:
    explicit ActivationCanonicalizer(const LutShape& shape);

    /**
     * Canonicalizes @p codes (size p).  The stable argsort guarantees the
     * permutation is a deterministic function of the codes, so host and
     * device agree on the reordering-LUT column.
     */
    CanonicalGroup canonicalize(std::span<const std::uint16_t> codes) const;

    /** The alphabet size, 2^ba. */
    std::uint64_t alphabet() const { return alphabet_; }

  private:
    unsigned p_;
    std::uint64_t alphabet_;
};

} // namespace localut

#endif // LOCALUT_LUT_CANONICALIZER_H_
