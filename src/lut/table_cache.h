#ifndef LOCALUT_LUT_TABLE_CACHE_H_
#define LOCALUT_LUT_TABLE_CACHE_H_

/**
 * @file
 * Shared materialized-LUT memoization.  LUT tables depend only on the
 * shape (codecs, packing degree, entry width) — never on the weight or
 * activation data — yet the functional executors historically rebuilt
 * them on every GEMM call, which made table construction the wall-clock
 * bottleneck of every test, bench, and fuzz run.  The cache keys each
 * table family by its LutShape and hands out shared_ptrs, so a fig10
 * decode executing the same layer shape 32x per layer builds each table
 * once; a bounded LRU keeps long fuzz runs (thousands of distinct tiny
 * shapes) from accumulating tables forever.
 *
 * Thread-safe.  Two threads racing on the same cold shape may both
 * build (construction runs outside the lock); both results are
 * identical, so last-insert-wins is harmless.
 */

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "lut/canonical_lut.h"
#include "lut/lut_shape.h"
#include "lut/packed_lut.h"
#include "lut/reordering_lut.h"

namespace localut {

/** LRU-bounded (LutShape, family) -> table memo. */
class LutTableCache
{
  public:
    /**
     * At most @p maxEntries tables AND @p maxBytes of materialized
     * entry storage across all three families (large-p sweeps
     * materialize tables of tens of MB each; an entry-count bound
     * alone could pin GBs).
     */
    explicit LutTableCache(std::size_t maxEntries = 64,
                           std::uint64_t maxBytes = std::uint64_t{256}
                                                    << 20);

    /** The process-wide cache the execution engine uses. */
    static LutTableCache& global();

    std::shared_ptr<const OperationPackedLut> opLut(const LutShape& shape);
    std::shared_ptr<const CanonicalLut> canonicalLut(const LutShape& shape);
    std::shared_ptr<const ReorderingLut> reorderingLut(const LutShape& shape);

    struct Stats {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::size_t entries = 0;
        std::uint64_t bytes = 0; ///< resident materialized table bytes
    };

    Stats stats() const;

    /** Drops every cached table (outstanding shared_ptrs stay valid). */
    void clear();

  private:
    enum class Family { Op, Canonical, Reorder };

    struct Key {
        CodecKind wKind;
        unsigned wBits;
        CodecKind aKind;
        unsigned aBits;
        unsigned p;
        unsigned outBytes;
        Family family;

        bool operator==(const Key&) const = default;
    };

    struct KeyHash {
        std::size_t operator()(const Key& key) const;
    };

    struct Entry {
        std::shared_ptr<const void> table;
        std::uint64_t bytes = 0;
        std::uint64_t lastUse = 0;
    };

    /** Looks @p key up (bumping LRU) or builds via @p build; @p bytesOf
     * sizes the built table for the byte bound. */
    template <typename T, typename Build, typename BytesOf>
    std::shared_ptr<const T> acquire(const Key& key, const Build& build,
                                     const BytesOf& bytesOf);

    std::uint64_t totalBytesLocked() const;

    mutable std::mutex mutex_;
    std::unordered_map<Key, Entry, KeyHash> entries_;
    std::size_t maxEntries_;
    std::uint64_t maxBytes_;
    std::uint64_t clock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace localut

#endif // LOCALUT_LUT_TABLE_CACHE_H_
