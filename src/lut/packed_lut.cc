#include "lut/packed_lut.h"

#include "common/bitops.h"
#include "common/logging.h"

namespace localut {

OperationPackedLut::OperationPackedLut(const LutShape& shape,
                                       std::uint64_t materializeLimitBytes)
    : shape_(shape), rows_(shape.weightRows()), cols_(shape.opColumns())
{
    const std::uint64_t entries = rows_ * cols_;
    LOCALUT_REQUIRE(entries <= materializeLimitBytes / 4,
                    "operation-packed LUT too large to materialize: ",
                    entries, " entries");

    const unsigned p = shape_.p;
    std::vector<std::uint16_t> wCodes(p);
    std::vector<std::uint16_t> aCodes(p);

    if (shape_.isInteger()) {
        entriesInt_.resize(entries);
        // Pre-decode both alphabets once.
        std::vector<std::int32_t> wDec(shape_.wCodec.cardinality());
        for (std::uint64_t c = 0; c < wDec.size(); ++c) {
            wDec[c] = shape_.wCodec.decodeInt(static_cast<std::uint32_t>(c));
        }
        std::vector<std::int32_t> aDec(shape_.aCodec.cardinality());
        for (std::uint64_t c = 0; c < aDec.size(); ++c) {
            aDec[c] = shape_.aCodec.decodeInt(static_cast<std::uint32_t>(c));
        }
        for (std::uint64_t aIdx = 0; aIdx < cols_; ++aIdx) {
            unpackCodes(aIdx, shape_.ba(), aCodes);
            for (std::uint64_t wIdx = 0; wIdx < rows_; ++wIdx) {
                unpackCodes(wIdx, shape_.bw(), wCodes);
                std::int32_t acc = 0;
                for (unsigned i = 0; i < p; ++i) {
                    acc += wDec[wCodes[i]] * aDec[aCodes[i]];
                }
                entriesInt_[aIdx * rows_ + wIdx] = acc;
                LOCALUT_ASSERT(shape_.outBytes >= 4 ||
                                   (acc >= -32768 && acc <= 32767),
                               "entry exceeds the modeled b_o width");
            }
        }
    } else {
        entriesFloat_.resize(entries);
        for (std::uint64_t aIdx = 0; aIdx < cols_; ++aIdx) {
            unpackCodes(aIdx, shape_.ba(), aCodes);
            for (std::uint64_t wIdx = 0; wIdx < rows_; ++wIdx) {
                unpackCodes(wIdx, shape_.bw(), wCodes);
                float acc = 0.0f;
                for (unsigned i = 0; i < p; ++i) {
                    acc += shape_.wCodec.decode(wCodes[i]) *
                           shape_.aCodec.decode(aCodes[i]);
                }
                // Model the 2-byte entry storage (matches CanonicalLut).
                entriesFloat_[aIdx * rows_ + wIdx] =
                    shape_.outBytes <= 2 ? roundToFp16(acc) : acc;
            }
        }
    }
}

} // namespace localut
