#ifndef LOCALUT_UPMEMSIM_TRACE_H_
#define LOCALUT_UPMEMSIM_TRACE_H_

/**
 * @file
 * Kernel traces for the cycle-level DPU micro-simulator: per-tasklet
 * streams of compute blocks and MRAM<->WRAM DMA transfers generated from
 * a resolved GemmPlan.  The generator mirrors the prepared-execution
 * engine's tile loop (kernels/exec_engine.cc) — per activation column,
 * per packed group, per output-row chunk — and reproduces the event
 * totals of GemmEngine::chargeCosts() per DPU phase exactly (fractional
 * per-lookup instruction costs are emitted as integers under an
 * error-carry accumulator), so the simulator and the analytical cost
 * model price the *same* event stream and any per-phase delta is pure
 * pipeline/DMA-engine behavior, not bookkeeping drift.
 */

#include <cstdint>
#include <vector>

#include "kernels/gemm.h"
#include "upmem/cost_model.h"

namespace localut {
namespace upmemsim {

/** One step of a tasklet's kernel trace. */
struct TraceOp {
    Phase phase = Phase::Other;
    bool isDma = false;              ///< DMA transfer vs compute block
    std::uint32_t instructions = 0;  ///< compute: instructions to issue
    double bytes = 0.0;              ///< DMA: logical transfer bytes
};

/** Per-tasklet op streams for one representative (critical-path) DPU. */
struct KernelTrace {
    std::vector<std::vector<TraceOp>> tasklets;

    /**
     * Event totals of the trace (DPU phases only: instructions, DMA
     * bytes, DMA transfers).  Matches GemmEngine::chargeCosts() within
     * one instruction per phase (the error-carry residue).
     */
    KernelCost totals() const;
};

/**
 * Builds the representative-DPU trace for @p plan under @p dpu.
 * Supports every design point the UPMEM backend plans.
 */
KernelTrace buildTrace(const GemmPlan& plan, const DpuParams& dpu);

} // namespace upmemsim
} // namespace localut

#endif // LOCALUT_UPMEMSIM_TRACE_H_
