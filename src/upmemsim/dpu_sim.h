#ifndef LOCALUT_UPMEMSIM_DPU_SIM_H_
#define LOCALUT_UPMEMSIM_DPU_SIM_H_

/**
 * @file
 * Trace-driven cycle-level micro-simulator of one UPMEM-class DPU.
 *
 * Pipeline model (DESIGN.md Section 10):
 *  - In-order single-issue core with tasklet round-robin: one issue
 *    slot per cycle; after issuing, a tasklet re-enters the ready set
 *    `fullIssueTasklets` cycles later (the 11-deep pipeline of the real
 *    DPU), so aggregate issue throughput is min(1, tasklets/11) —
 *    exactly DpuParams::issueRate(), but produced by the machine rather
 *    than assumed.
 *  - A 3-stage pipelined MRAM<->WRAM DMA engine: a serial setup stage
 *    (dmaSetupCycles per transfer), a streaming stage with
 *    dmaBytesPerCycle aggregate bandwidth shared by up to
 *    `dmaPipelineDepth` in-flight transfers, and completion back to the
 *    issuing tasklet (which blocks for the duration, as on the real
 *    core).  Transfers are 8-byte aligned and split at the 2048-byte
 *    mram_read() cap, each chunk paying its own setup — the two effects
 *    the analytical closed form ignores, and the main source of the
 *    calibration deltas bench_sim_calibrate freezes.
 *
 * Per-phase attribution: an issued instruction accrues 1/issueRate
 * cycles to its phase; a setup cycle accrues to the transfer's phase;
 * a streaming cycle splits across the active transfers' phases by
 * bytes drained.  Summed per phase this is the simulated counterpart
 * of CostEvaluator's additive per-phase charge; compute/DMA overlap
 * and contention show up in makespanCycles instead, which the
 * simulator reports separately.
 */

#include <array>
#include <cstdint>

#include "upmem/params.h"
#include "upmemsim/trace.h"

namespace localut {
namespace upmemsim {

/** Micro-architectural knobs of the simulated DPU. */
struct SimParams {
    DpuParams dpu; ///< clock, tasklets, issue depth, DMA rate/setup

    /** Concurrent in-flight streaming transfers (3-stage pipeline). */
    unsigned dmaPipelineDepth = 3;
    /** MRAM access granularity: transfer bytes round up to this. */
    std::uint32_t dmaAlignBytes = 8;
    /** mram_read()/mram_write() size cap: larger transfers split. */
    std::uint32_t dmaMaxTransferBytes = 2048;
};

/** Outcome of simulating one kernel trace. */
struct SimResult {
    /** Attributed cycles per phase (DPU phases only). */
    std::array<double, static_cast<unsigned>(Phase::kNumPhases)>
        phaseCycles{};
    double makespanCycles = 0;  ///< wall-clock cycles start to drain
    std::uint64_t issuedInstructions = 0;
    std::uint64_t dmaTransfers = 0; ///< post-split chunk count
    double dmaBytes = 0;            ///< post-alignment bytes moved
    double dmaSetupCycles = 0;      ///< cycles the setup stage was busy
    double dmaStreamCycles = 0;     ///< streaming-stage busy cycles
    double idleIssueCycles = 0;     ///< cycles with no ready tasklet

    /** Attributed cycles of phase @p p. */
    double
    cycles(Phase p) const
    {
        return phaseCycles[static_cast<unsigned>(p)];
    }

    /** Sum of attributed cycles over all phases (the additive total). */
    double attributedCycles() const;

    /** Fraction of the makespan with an instruction issuing. */
    double issueOccupancy() const;

    bool operator==(const SimResult&) const = default;
};

/**
 * Runs @p trace through the pipeline model.  Pure function of its
 * arguments: deterministic, no global state, safe to call concurrently
 * from any number of threads.
 */
SimResult simulate(const KernelTrace& trace, const SimParams& params);

} // namespace upmemsim
} // namespace localut

#endif // LOCALUT_UPMEMSIM_DPU_SIM_H_
