#include "upmemsim/dpu_sim.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <vector>

#include "common/logging.h"

namespace localut {
namespace upmemsim {

double
SimResult::attributedCycles() const
{
    double sum = 0;
    for (const double c : phaseCycles) {
        sum += c;
    }
    return sum;
}

double
SimResult::issueOccupancy() const
{
    return makespanCycles > 0
               ? static_cast<double>(issuedInstructions) / makespanCycles
               : 0.0;
}

namespace {

/** One post-split DMA chunk waiting for (or in) the engine. */
struct DmaChunk {
    unsigned tasklet = 0;
    Phase phase = Phase::Other;
    double bytes = 0;
};

/** A chunk in the streaming stage. */
struct Stream {
    unsigned tasklet = 0;
    Phase phase = Phase::Other;
    double remaining = 0;
};

struct TaskletState {
    const std::vector<TraceOp>* ops = nullptr;
    std::size_t opIndex = 0;
    std::uint32_t instrLeft = 0;   ///< of the current compute op
    Phase phase = Phase::Other;    ///< of the current compute op
    std::uint64_t nextReady = 0;
    std::uint32_t outstanding = 0; ///< DMA chunks in flight
    bool blocked = false;

    bool
    done() const
    {
        return opIndex >= ops->size() && instrLeft == 0 && outstanding == 0;
    }
};

} // namespace

SimResult
simulate(const KernelTrace& trace, const SimParams& params)
{
    const unsigned T = static_cast<unsigned>(trace.tasklets.size());
    LOCALUT_REQUIRE(T >= 1, "simulate() needs at least one tasklet stream");
    const DpuParams& dpu = params.dpu;
    const double issueRate =
        std::min(1.0, static_cast<double>(T) /
                          static_cast<double>(dpu.fullIssueTasklets));
    const double align = std::max<std::uint32_t>(1, params.dmaAlignBytes);
    const double cap =
        std::max<std::uint32_t>(params.dmaAlignBytes ? params.dmaAlignBytes
                                                     : 1,
                                params.dmaMaxTransferBytes);

    SimResult result;
    std::vector<TaskletState> ts(T);
    std::deque<DmaChunk> pending;
    std::vector<Stream> streams;
    streams.reserve(params.dmaPipelineDepth);
    bool setupActive = false;
    DmaChunk setupChunk;
    double setupLeft = 0;

    // Splits one trace transfer into aligned, size-capped chunks and
    // queues them for the engine; the issuing tasklet blocks until the
    // last chunk drains (mram_read() is blocking on the real core).
    auto enqueueDma = [&](unsigned t, const TraceOp& op) {
        double bytes = std::ceil(op.bytes / align) * align;
        if (bytes <= 0) {
            bytes = align; // a zero-byte transfer still touches MRAM
        }
        result.dmaBytes += bytes;
        while (bytes > 0) {
            const double take = std::min(bytes, cap);
            pending.push_back(DmaChunk{t, op.phase, take});
            ++result.dmaTransfers;
            ++ts[t].outstanding;
            bytes -= take;
        }
        ts[t].blocked = true;
    };

    // Advances tasklet @p t to its next actionable op: loads the next
    // compute block, or queues the next DMA transfer and blocks.
    auto advance = [&](unsigned t) {
        TaskletState& s = ts[t];
        const std::vector<TraceOp>& ops = *s.ops;
        while (s.opIndex < ops.size()) {
            const TraceOp& op = ops[s.opIndex];
            if (op.isDma) {
                ++s.opIndex;
                enqueueDma(t, op);
                return;
            }
            if (op.instructions == 0) {
                ++s.opIndex;
                continue;
            }
            s.instrLeft = op.instructions;
            s.phase = op.phase;
            return;
        }
    };

    for (unsigned t = 0; t < T; ++t) {
        ts[t].ops = &trace.tasklets[t];
        advance(t);
    }

    std::uint64_t cycle = 0;
    unsigned cursor = 0;
    auto phaseIdx = [](Phase p) { return static_cast<unsigned>(p); };

    for (;;) {
        // ---- Termination / idle skip-ahead ----
        const bool dmaBusy =
            setupActive || !pending.empty() || !streams.empty();
        if (!dmaBusy) {
            std::uint64_t minReady =
                std::numeric_limits<std::uint64_t>::max();
            bool anyWork = false;
            for (const TaskletState& s : ts) {
                if (s.instrLeft > 0) {
                    anyWork = true;
                    minReady = std::min(minReady, s.nextReady);
                }
            }
            if (!anyWork) {
                break; // every tasklet drained, engine empty
            }
            if (minReady > cycle) {
                // Pure pipeline bubble: no tasklet refills for a while.
                result.idleIssueCycles +=
                    static_cast<double>(minReady - cycle);
                cycle = minReady;
            }
        }

        // ---- DMA streaming stage (shared aggregate bandwidth) ----
        if (!streams.empty()) {
            result.dmaStreamCycles += 1.0;
            const double share =
                dpu.dmaBytesPerCycle / static_cast<double>(streams.size());
            for (Stream& s : streams) {
                const double drained = std::min(share, s.remaining);
                s.remaining -= drained;
                result.phaseCycles[phaseIdx(s.phase)] +=
                    drained / dpu.dmaBytesPerCycle;
            }
            for (std::size_t i = 0; i < streams.size();) {
                if (streams[i].remaining <= 1e-12) {
                    TaskletState& owner = ts[streams[i].tasklet];
                    --owner.outstanding;
                    if (owner.outstanding == 0) {
                        owner.blocked = false;
                        owner.nextReady = cycle + 1;
                        advance(streams[i].tasklet);
                    }
                    streams[i] = streams.back();
                    streams.pop_back();
                } else {
                    ++i;
                }
            }
        }

        // ---- DMA setup stage (serial, one transfer at a time) ----
        if (!setupActive && !pending.empty()) {
            setupChunk = pending.front();
            pending.pop_front();
            setupLeft = dpu.dmaSetupCycles;
            setupActive = true;
        }
        if (setupActive) {
            if (setupLeft > 0) {
                result.phaseCycles[phaseIdx(setupChunk.phase)] += 1.0;
                result.dmaSetupCycles += 1.0;
                setupLeft -= 1.0;
            }
            if (setupLeft <= 0 &&
                streams.size() < params.dmaPipelineDepth) {
                streams.push_back(Stream{setupChunk.tasklet,
                                         setupChunk.phase,
                                         setupChunk.bytes});
                setupActive = false;
            }
        }

        // ---- Issue stage: round-robin over ready tasklets ----
        bool issued = false;
        for (unsigned i = 0; i < T; ++i) {
            const unsigned t = (cursor + i) % T;
            TaskletState& s = ts[t];
            if (s.instrLeft > 0 && !s.blocked && s.nextReady <= cycle) {
                --s.instrLeft;
                ++result.issuedInstructions;
                result.phaseCycles[phaseIdx(s.phase)] += 1.0 / issueRate;
                s.nextReady = cycle + dpu.fullIssueTasklets;
                cursor = (t + 1) % T;
                if (s.instrLeft == 0) {
                    ++s.opIndex;
                    advance(t);
                }
                issued = true;
                break;
            }
        }
        if (!issued) {
            for (const TaskletState& s : ts) {
                if (s.instrLeft > 0) {
                    result.idleIssueCycles += 1.0;
                    break;
                }
            }
        }

        ++cycle;
    }

    result.makespanCycles = static_cast<double>(cycle);
    return result;
}

} // namespace upmemsim
} // namespace localut
