#ifndef LOCALUT_UPMEMSIM_SIM_BACKEND_H_
#define LOCALUT_UPMEMSIM_SIM_BACKEND_H_

/**
 * @file
 * The "upmem-sim" backend: UpmemBackend's plan/charge/execute surface
 * with the per-phase analytical DPU cycle counts replaced by simulated
 * cycle counts from the trace-driven micro-simulator (upmemsim/dpu_sim.h).
 * Planning, event charging, energy, and the functional pass are shared
 * with "upmem" — numeric outputs are bit-exact across the two backends
 * (the parity invariant, fuzzed in tests/test_parity_fuzz.cc); only the
 * DPU-phase timing differs, by exactly the pipeline/DMA-engine effects
 * the analytical closed form abstracts away.
 */

#include <mutex>
#include <unordered_map>

#include "backend/upmem_backend.h"
#include "upmemsim/dpu_sim.h"

namespace localut {

/** UpmemBackend with simulated (not analytical) DPU-phase timing. */
class UpmemSimBackend : public UpmemBackend
{
  public:
    explicit UpmemSimBackend(
        const PimSystemConfig& config = PimSystemConfig::upmemServer(),
        const upmemsim::SimParams* simOverride = nullptr);

    const BackendCapabilities& capabilities() const override;

    using Backend::execute;
    GemmResult execute(const GemmProblem& problem, const GemmPlan& plan,
                       const ExecOptions& options) const override;

    std::uint64_t configFingerprint() const override;

    /** Simulator knobs in use (DpuParams + DMA engine geometry). */
    const upmemsim::SimParams& simParams() const { return sim_; }

    /**
     * Simulates the representative-DPU kernel of @p plan (memoized per
     * plan; safe to call concurrently).
     */
    upmemsim::SimResult simulated(const GemmPlan& plan) const;

    /**
     * The TimingReport execute() attaches: host/link phases priced by
     * the analytical evaluator (they run off-DPU), DPU phases priced
     * from the simulated per-phase cycle attribution.
     */
    TimingReport simulatedTiming(const GemmPlan& plan,
                                 const KernelCost& cost) const;

  private:
    std::uint64_t planKey(const GemmPlan& plan) const;

    upmemsim::SimParams sim_;
    BackendCapabilities simCaps_;
    mutable std::mutex cacheMutex_;
    mutable std::unordered_map<std::uint64_t, upmemsim::SimResult> cache_;
};

} // namespace localut

#endif // LOCALUT_UPMEMSIM_SIM_BACKEND_H_
