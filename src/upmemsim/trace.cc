#include "upmemsim/trace.h"

#include <algorithm>
#include <cmath>

#include "common/bitops.h"
#include "common/logging.h"
#include "kernels/cost_tables.h"
#include "lut/capacity.h"
#include "lut/lut_shape.h"

namespace localut {
namespace upmemsim {

namespace {

/**
 * Largest compute block emitted as one TraceOp.  Work is chopped into
 * sub-blocks of at most this many instructions and dealt round-robin
 * across tasklets, so the per-tasklet load imbalance (and with it the
 * makespan tail where fewer than fullIssueTasklets tasklets remain
 * runnable) is bounded by one block per tasklet.
 */
constexpr double kMaxBlockInstr = 512.0;

/**
 * Emits integer compute blocks and DMA transfers into per-tasklet
 * streams.  Fractional per-lookup instruction costs (e.g. the
 * slice-streaming 3 + 3/kSlices index calculation) carry their
 * rounding error forward per phase, so the emitted integer totals
 * match the analytical totals within one instruction per phase.
 */
class TraceBuilder
{
  public:
    explicit TraceBuilder(unsigned tasklets) { trace_.tasklets.resize(tasklets); }

    /** Round-robin owner for the next work block. */
    unsigned
    next()
    {
        const unsigned t = rr_ % static_cast<unsigned>(trace_.tasklets.size());
        ++rr_;
        return t;
    }

    /** Appends a compute block of @p exact instructions to tasklet @p t. */
    void
    compute(unsigned t, Phase phase, double exact)
    {
        LOCALUT_ASSERT(exact >= 0, "negative compute block");
        double& carry = carry_[static_cast<unsigned>(phase)];
        carry += exact;
        const double whole = std::floor(carry);
        carry -= whole;
        if (whole <= 0) {
            return;
        }
        auto& ops = trace_.tasklets[t];
        if (!ops.empty() && !ops.back().isDma && ops.back().phase == phase) {
            ops.back().instructions += static_cast<std::uint32_t>(whole);
            return;
        }
        TraceOp op;
        op.phase = phase;
        op.instructions = static_cast<std::uint32_t>(whole);
        ops.push_back(op);
    }

    /** Appends one DMA transfer of @p bytes to tasklet @p t. */
    void
    dma(unsigned t, Phase phase, double bytes)
    {
        LOCALUT_ASSERT(bytes >= 0, "negative DMA block");
        TraceOp op;
        op.phase = phase;
        op.isDma = true;
        op.bytes = bytes;
        trace_.tasklets[t].push_back(op);
    }

    /**
     * Splits @p rows rows of @p instrPerRow work into capped sub-blocks,
     * each dealt to the next round-robin tasklet, calling
     * @p emitChunk(tasklet, chunkRows) per sub-block.
     */
    template <typename Fn>
    void
    rowChunks(double rows, double instrPerRow, Fn&& emitChunk)
    {
        const double chunk = std::max(
            1.0, std::floor(kMaxBlockInstr / std::max(1.0, instrPerRow)));
        double left = rows;
        while (left > 0) {
            const double take = std::min(chunk, left);
            emitChunk(next(), take);
            left -= take;
        }
    }

    KernelTrace take() { return std::move(trace_); }

  private:
    KernelTrace trace_;
    unsigned rr_ = 0;
    double carry_[static_cast<unsigned>(Phase::kNumPhases)] = {};
};

} // namespace

KernelCost
KernelTrace::totals() const
{
    KernelCost cost;
    for (const auto& stream : tasklets) {
        for (const TraceOp& op : stream) {
            if (op.isDma) {
                cost.addDma(op.phase, op.bytes, 1.0);
            } else {
                cost.addInstr(op.phase, op.instructions);
            }
        }
    }
    return cost;
}

KernelTrace
buildTrace(const GemmPlan& plan, const DpuParams& dpu)
{
    LOCALUT_REQUIRE(dpu.tasklets >= 1, "trace needs at least one tasklet");
    TraceBuilder b(dpu.tasklets);

    const double tileM = plan.tileM;
    const double tileN = plan.tileN;
    const double groups = plan.groups;
    const unsigned bw = plan.config.bw();
    const unsigned ba = plan.config.ba();
    const LutShape shape(plan.config, plan.p);

    // Operand bytes: identical arithmetic to GemmEngine::chargeCosts().
    const double wVecBytes = static_cast<double>(
        bytesForBits(static_cast<std::uint64_t>(bw) * plan.p));
    const bool rawCodes = plan.design == DesignPoint::NaivePim ||
                          plan.design == DesignPoint::Ltc;
    const double wRowBytes =
        rawCodes ? static_cast<double>(bytesForBits(
                       static_cast<std::uint64_t>(plan.k) * bw))
                 : groups * wVecBytes;
    const double actColBytes =
        rawCodes ? static_cast<double>(bytesForBits(
                       static_cast<std::uint64_t>(plan.k) * ba))
                 : activationIndexBytesPerGroup(plan) * groups;

    // ---- Prologue: operand tiles MRAM -> WRAM ----
    for (double r = 0; r < tileM; ++r) {
        b.dma(b.next(), Phase::OperandDma, wRowBytes);
    }
    for (double c = 0; c < tileN; ++c) {
        b.dma(b.next(), Phase::OperandDma, actColBytes);
    }

    // ---- Body: the per-design inner loops ----
    switch (plan.design) {
      case DesignPoint::NaivePim: {
        const double perRow = plan.k * cost::naiveInstrPerMac(bw, ba);
        for (double c = 0; c < tileN; ++c) {
            b.rowChunks(tileM, perRow, [&](unsigned t, double rows) {
                b.compute(t, Phase::MacCompute, rows * perRow);
            });
        }
        break;
      }
      case DesignPoint::Ltc: {
        const double groups4 =
            std::ceil(static_cast<double>(plan.k) / cost::kLtcGroupSize);
        const double buildInstr =
            cost::kLtcTableEntries * cost::kLtcTableBuildPerEntry;
        const double perRow = bw * cost::kLtcInstrPerLookup;
        for (double c = 0; c < tileN; ++c) {
            for (double g = 0; g < groups4; ++g) {
                b.compute(b.next(), Phase::TableBuild, buildInstr);
                b.rowChunks(tileM, perRow, [&](unsigned t, double rows) {
                    b.compute(t, Phase::CanonicalAccess, rows * perRow);
                });
            }
        }
        break;
      }
      case DesignPoint::OpLutDram: {
        // Fig. 3(a): every lookup is a minimum-granule MRAM access.
        const double perRow = cost::kOpInstrPerLookup;
        for (double c = 0; c < tileN; ++c) {
            for (double g = 0; g < groups; ++g) {
                b.rowChunks(tileM, perRow, [&](unsigned t, double rows) {
                    b.compute(t, Phase::IndexCalc,
                              rows * cost::kOpIndexCalcInstr);
                    for (double r = 0; r < rows; ++r) {
                        b.dma(t, Phase::CanonicalAccess, 8.0);
                    }
                    b.compute(t, Phase::Accumulate,
                              rows * cost::kOpAccumulateInstr);
                });
            }
        }
        break;
      }
      case DesignPoint::OpLut:
      case DesignPoint::OpLc:
      case DesignPoint::OpLcRc:
      case DesignPoint::LoCaLut: {
        // The fused lookup datapath: per (column, group) the owning
        // tasklets sweep their output rows through the WRAM-resident
        // LUT access stream, identical to the canonical fused kernel.
        double idxInstr, reorderInstr, canonInstr, accInstr;
        const bool opPath = plan.design == DesignPoint::OpLut ||
                            ((plan.design == DesignPoint::OpLcRc ||
                              plan.design == DesignPoint::LoCaLut) &&
                             plan.p == 1);
        if (opPath) {
            idxInstr = cost::kOpIndexCalcInstr;
            reorderInstr = 0.0;
            canonInstr = cost::kOpLutLoadInstr;
            accInstr = cost::kOpAccumulateInstr;
        } else if (plan.design == DesignPoint::OpLc) {
            idxInstr = cost::lcReorderInstr(plan.p) + cost::kLcIndexCalcInstr;
            reorderInstr = 0.0;
            canonInstr = cost::kLcLutLoadInstr;
            accInstr = cost::kLcAccumulateInstr;
        } else {
            idxInstr = cost::kRcIndexCalcInstr;
            if (plan.design == DesignPoint::LoCaLut && plan.streaming) {
                idxInstr = cost::kRcIndexCalcInstr -
                           cost::kSsAmortizableInstr +
                           cost::kSsAmortizableInstr / plan.kSlices;
            }
            reorderInstr = cost::kRcReorderLoadInstr;
            canonInstr = cost::kRcCanonicalLoadInstr;
            accInstr = cost::kRcAccumulateInstr;
        }
        const bool streamSlices = plan.design == DesignPoint::LoCaLut &&
                                  plan.streaming;
        const double canonSliceBytes = static_cast<double>(
            shape.weightRows() * shape.outBytes);
        const double reorderSliceBytes = static_cast<double>(
            shape.weightRows() * reorderEntryBytes(shape));
        const double perRow = idxInstr + reorderInstr + canonInstr + accInstr;
        for (double c = 0; c < tileN; ++c) {
            for (double g = 0; g < groups; ++g) {
                if (streamSlices) {
                    // One (canonical, reordering) slice-column pair per
                    // distinct activation group instance.
                    const unsigned t = b.next();
                    b.dma(t, Phase::LutLoadDma, canonSliceBytes);
                    b.dma(t, Phase::LutLoadDma, reorderSliceBytes);
                }
                b.rowChunks(tileM, perRow, [&](unsigned t, double rows) {
                    b.compute(t, Phase::IndexCalc, rows * idxInstr);
                    if (reorderInstr > 0) {
                        b.compute(t, Phase::ReorderAccess,
                                  rows * reorderInstr);
                    }
                    b.compute(t, Phase::CanonicalAccess, rows * canonInstr);
                    b.compute(t, Phase::Accumulate, rows * accInstr);
                });
            }
        }
        break;
      }
    }

    // ---- Epilogue: result writeback WRAM -> MRAM ----
    for (double r = 0; r < tileM; ++r) {
        b.dma(b.next(), Phase::OutputDma, tileN * 4.0);
    }
    return b.take();
}

} // namespace upmemsim
} // namespace localut
