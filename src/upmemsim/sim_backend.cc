#include "upmemsim/sim_backend.h"

#include "upmemsim/trace.h"

namespace localut {

UpmemSimBackend::UpmemSimBackend(const PimSystemConfig& config,
                                 const upmemsim::SimParams* simOverride)
    : UpmemBackend(config)
{
    if (simOverride) {
        sim_ = *simOverride;
    }
    sim_.dpu = config.dpu; // the simulated core IS the modeled core
    simCaps_ = UpmemBackend::capabilities();
    simCaps_.name = "upmem-sim";
    simCaps_.description =
        "UPMEM server model with cycle-level simulated DPU timing";
}

const BackendCapabilities&
UpmemSimBackend::capabilities() const
{
    return simCaps_;
}

std::uint64_t
UpmemSimBackend::configFingerprint() const
{
    // Salt the UPMEM fingerprint: same system config, different timing
    // semantics — PlanCache entries must never alias across the two.
    return FingerprintBuilder()
        .add(std::string("upmem-sim"))
        .add(UpmemBackend::configFingerprint())
        .add(std::uint64_t{sim_.dmaPipelineDepth})
        .add(std::uint64_t{sim_.dmaAlignBytes})
        .add(std::uint64_t{sim_.dmaMaxTransferBytes})
        .value();
}

std::uint64_t
UpmemSimBackend::planKey(const GemmPlan& plan) const
{
    return FingerprintBuilder()
        .add(std::uint64_t{static_cast<unsigned>(plan.design)})
        .add(plan.config.name())
        .add(std::uint64_t{plan.p})
        .add(std::uint64_t{plan.kSlices})
        .add(std::uint64_t{plan.streaming ? 1u : 0u})
        .add(std::uint64_t{plan.gM})
        .add(std::uint64_t{plan.gN})
        .add(std::uint64_t{plan.tileM})
        .add(std::uint64_t{plan.tileN})
        .add(std::uint64_t{plan.m})
        .add(std::uint64_t{plan.k})
        .add(std::uint64_t{plan.n})
        .add(std::uint64_t{plan.groups})
        .value();
}

upmemsim::SimResult
UpmemSimBackend::simulated(const GemmPlan& plan) const
{
    const std::uint64_t key = planKey(plan);
    {
        std::lock_guard<std::mutex> lock(cacheMutex_);
        const auto it = cache_.find(key);
        if (it != cache_.end()) {
            return it->second;
        }
    }
    // Simulate outside the lock: traces can be large and concurrent
    // callers with distinct plans should not serialize.  A racing
    // duplicate computes the identical result (simulate() is pure).
    const upmemsim::KernelTrace trace =
        upmemsim::buildTrace(plan, sim_.dpu);
    const upmemsim::SimResult result = upmemsim::simulate(trace, sim_);
    std::lock_guard<std::mutex> lock(cacheMutex_);
    cache_.emplace(key, result);
    return result;
}

TimingReport
UpmemSimBackend::simulatedTiming(const GemmPlan& plan,
                                 const KernelCost& cost) const
{
    const CostEvaluator eval(system());
    const TimingReport analytical = eval.timing(cost, plan.dpusUsed());
    const upmemsim::SimResult sim = simulated(plan);

    TimingReport report;
    report.hostSeconds = analytical.hostSeconds;
    report.linkSeconds = analytical.linkSeconds;
    for (unsigned i = 0; i < static_cast<unsigned>(Phase::kNumPhases);
         ++i) {
        const Phase p = static_cast<Phase>(i);
        double seconds;
        if (isHostPhase(p) || isLinkPhase(p)) {
            seconds = analytical.seconds.get(phaseName(p));
        } else {
            seconds = system().dpu.cyclesToSeconds(sim.phaseCycles[i]);
            report.dpuSeconds += seconds;
        }
        if (seconds > 0.0) {
            report.seconds.add(phaseName(p), seconds);
        }
    }
    report.total =
        report.hostSeconds + report.linkSeconds + report.dpuSeconds;
    return report;
}

GemmResult
UpmemSimBackend::execute(const GemmProblem& problem, const GemmPlan& plan,
                         const ExecOptions& options) const
{
    GemmResult result = UpmemBackend::execute(problem, plan, options);
    result.timing = simulatedTiming(plan, result.cost);
    return result;
}

} // namespace localut
