#include "common/table.h"

#include <cstdio>
#include <sstream>

#include "common/logging.h"

namespace localut {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
    LOCALUT_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    LOCALUT_ASSERT(cells.size() == headers_.size(),
                   "row width ", cells.size(), " != header width ",
                   headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::fmt(double value, int precision)
{
    std::ostringstream os;
    os.precision(precision);
    os << value;
    return os.str();
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    std::ostringstream os;
    auto emitRow = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size()) {
                os << std::string(widths[c] - row[c].size() + 2, ' ');
            }
        }
        os << '\n';
    };

    emitRow(headers_);
    std::size_t totalWidth = 0;
    for (std::size_t c = 0; c < widths.size(); ++c) {
        totalWidth += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    }
    os << std::string(totalWidth, '-') << '\n';
    for (const auto& row : rows_) {
        emitRow(row);
    }
    return os.str();
}

std::string
Table::renderCsv() const
{
    std::ostringstream os;
    auto emitRow = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size()) {
                os << ',';
            }
        }
        os << '\n';
    };
    emitRow(headers_);
    for (const auto& row : rows_) {
        emitRow(row);
    }
    return os.str();
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
}

} // namespace localut
