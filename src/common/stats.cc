#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace localut {

double
geomean(std::span<const double> values)
{
    LOCALUT_ASSERT(!values.empty(), "geomean of empty set");
    double logSum = 0.0;
    for (double v : values) {
        LOCALUT_ASSERT(v > 0.0, "geomean requires positive values");
        logSum += std::log(v);
    }
    return std::exp(logSum / static_cast<double>(values.size()));
}

double
mean(std::span<const double> values)
{
    LOCALUT_ASSERT(!values.empty(), "mean of empty set");
    double sum = 0.0;
    for (double v : values) {
        sum += v;
    }
    return sum / static_cast<double>(values.size());
}

void
Breakdown::add(const std::string& name, double value)
{
    for (auto& [key, val] : items_) {
        if (key == name) {
            val += value;
            return;
        }
    }
    items_.emplace_back(name, value);
}

double
Breakdown::get(const std::string& name) const
{
    for (const auto& [key, val] : items_) {
        if (key == name) {
            return val;
        }
    }
    return 0.0;
}

double
Breakdown::total() const
{
    double sum = 0.0;
    for (const auto& [key, val] : items_) {
        sum += val;
    }
    return sum;
}

double
Breakdown::fraction(const std::string& name) const
{
    const double t = total();
    return t == 0.0 ? 0.0 : get(name) / t;
}

void
Breakdown::merge(const Breakdown& other)
{
    for (const auto& [key, val] : other.items_) {
        add(key, val);
    }
}

void
Breakdown::scale(double factor)
{
    for (auto& [key, val] : items_) {
        val *= factor;
    }
}

} // namespace localut
