#ifndef LOCALUT_COMMON_TOPOLOGY_H_
#define LOCALUT_COMMON_TOPOLOGY_H_

/**
 * @file
 * The node x rank grid the serving stack schedules over.
 *
 * The flat rank model (PR 2) stops at the ranks behind one host link.
 * Scale-out adds a second interconnect tier: CXL/PCIe-attached PIM
 * *nodes*, each carrying its own set of ranks behind its own local
 * host link.  Topology names that grid once so every layer that used
 * to hardcode `numRanks` (sharding, residency, scheduler placement,
 * rank queues) agrees on the same flat<->(node, rank) mapping.
 *
 * Flat rank ids are node-major: flat = node * ranksPerNode + local.
 * A single-node topology ({1, R}) is bit-identical to the old flat
 * model everywhere — the hierarchy only changes costs when nodes > 1.
 */

namespace localut {

/** A nodes x ranks-per-node grid of PIM ranks. */
struct Topology {
    /** CXL/PCIe-attached PIM nodes (1 = single host, the flat model). */
    unsigned nodes = 1;
    /** Ranks behind each node's local host link. */
    unsigned ranksPerNode = 1;

    bool operator==(const Topology&) const = default;

    /** Flat logical ranks across the whole grid. */
    unsigned totalRanks() const { return nodes * ranksPerNode; }

    /** True when an inter-node tier exists. */
    bool multiNode() const { return nodes > 1; }

    /** Node owning @p flatRank (node-major layout). */
    unsigned nodeOf(unsigned flatRank) const
    {
        return ranksPerNode ? (flatRank / ranksPerNode) % nodes : 0;
    }

    /** Rank index of @p flatRank within its node. */
    unsigned localRank(unsigned flatRank) const
    {
        return ranksPerNode ? flatRank % ranksPerNode : 0;
    }

    /** Flat id of local rank @p local on node @p node. */
    unsigned flatRank(unsigned node, unsigned local) const
    {
        return node * ranksPerNode + local;
    }
};

} // namespace localut

#endif // LOCALUT_COMMON_TOPOLOGY_H_
