#ifndef LOCALUT_COMMON_PARALLEL_H_
#define LOCALUT_COMMON_PARALLEL_H_

/**
 * @file
 * Tile-execution abstraction for the functional GEMM engine
 * (kernels/exec_engine.h).  A kernel splits its output into disjoint
 * tiles and hands the per-tile closure to a TileExecutor; where the
 * tiles actually run is the executor's business:
 *
 *  - serialTiles() runs them inline on the calling thread (the default
 *    and the zero-allocation steady-state path);
 *  - TilePool owns a persistent worker pool (benches, tests);
 *  - InferenceSession implements the interface on its own request
 *    worker pool, so GEMM tiles and serving requests share threads
 *    instead of oversubscribing the machine.
 *
 * Tiles write disjoint output ranges and read shared state only, so any
 * executor yields bit-identical results regardless of scheduling; the
 * contract is merely "invoke fn(0..tiles-1) exactly once each and
 * return when all have finished".
 *
 * Scaling model (why the batch looks the way it does):
 *
 *  - `next` and `done` live on their own cache lines.  Packed together
 *    (with the error mutex on top), every claim invalidated every
 *    retirement counter read across all participants — measurable
 *    false sharing once tiles get small.
 *  - Claims are CHUNKED: one fetch_add hands out `claimChunk` tiles,
 *    sized so the whole batch still splits into several chunks per
 *    participant (load balance) while fine-grained batches stop
 *    hammering the claim counter once per tile.
 *  - A TilePool holds a QUEUE of in-flight batches, not a single slot
 *    guarded by a submit mutex.  Concurrent submitters (per-rank
 *    session queues all fanning tiles at once) previously degraded to
 *    lockstep — each waited for the previous batch to fully settle
 *    before its own could start claiming.  Now a fully-claimed batch
 *    is popped so workers flow into the next one while the last tiles
 *    of the previous batch finish.
 *  - A tile closure that re-enters run() on the executor it is already
 *    draining (nested GEMM, a workload node executing inside a tile)
 *    is detected via a thread-local marker and drained INLINE on the
 *    calling thread instead of deadlocking on submission state.
 */

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace localut {

/**
 * One tile batch: an atomic claim counter over [0, count).  Shared by
 * every thread participating in the batch (heap-own it, so a
 * late-waking worker can still probe an exhausted batch).  The closure
 * pointer must stay valid until settled() — guaranteed because the
 * submitter blocks on settlement before returning.
 */
struct TileBatch {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t count = 0;
    /** Tiles handed out per claim (>= 1).  Coarser claims amortize the
     * fetch_add; finer claims balance load.  See claimChunkFor(). */
    std::size_t claimChunk = 1;

    /** Claim cursor, alone on its cache line: claims are the hot
     * cross-thread traffic and must not invalidate `done` readers. */
    alignas(64) std::atomic<std::size_t> next{0};
    /** Retirement counter, alone on its cache line. */
    alignas(64) std::atomic<std::size_t> done{0};

    alignas(64) std::mutex errorMutex;
    std::exception_ptr error;
    /** Tile index that raised `error`; first-error-wins is DETERMINISTIC:
     * the surviving exception is the one from the lowest-indexed failed
     * tile, regardless of which thread ran it or finished first. */
    std::size_t errorTile = static_cast<std::size_t>(-1);

    /** Claims and runs tile chunks until the range is exhausted; returns
     * true when this call retired the batch's last tile. */
    bool drain();

    /** Every tile has finished (not merely been claimed). */
    bool settled() const;

    /** Every tile has been claimed (workers should move on; the last
     * tiles may still be running on their claimants). */
    bool fullyClaimed() const;

    /** Rethrows the recorded error, if any.  Call only after settled(). */
    void rethrowIfError() const;
};

/** Claim granularity for @p tiles split across @p participants: the
 * largest chunk that still leaves every participant several claims for
 * load balance (at least 4 chunks per participant, min 1 tile). */
std::size_t claimChunkFor(std::size_t tiles, unsigned participants);

/** Runs a batch of independent tile closures to completion. */
class TileExecutor
{
  public:
    virtual ~TileExecutor() = default;

    /** Worker threads available to run() (1 = effectively serial). */
    virtual unsigned concurrency() const = 0;

    /**
     * Invokes fn(0), ..., fn(tiles - 1), each exactly once, possibly
     * concurrently, and returns once every invocation has finished.
     * Rethrows (one of) the closure exceptions, if any, after the batch
     * has settled.
     */
    virtual void run(std::size_t tiles,
                     const std::function<void(std::size_t)>& fn) const = 0;
};

/** The inline executor: runs every tile on the calling thread. */
const TileExecutor& serialTiles();

/**
 * A persistent worker pool implementing TileExecutor.  The calling
 * thread participates in the batch (a TilePool(1) still uses 2 threads'
 * worth of hands, its own plus the caller's claim loop).  Concurrent
 * run() callers enqueue independent batches that are claimed in FIFO
 * order but overlap in flight: a fully-claimed batch no longer blocks
 * the next batch from starting.  A nested run() from inside a tile of
 * this same pool drains inline on the calling thread (no deadlock).
 */
class TilePool final : public TileExecutor
{
  public:
    /** @p threads worker threads; 0 picks hardware_concurrency. */
    explicit TilePool(unsigned threads);
    ~TilePool() override;

    TilePool(const TilePool&) = delete;
    TilePool& operator=(const TilePool&) = delete;

    unsigned concurrency() const override;
    void run(std::size_t tiles,
             const std::function<void(std::size_t)>& fn) const override;

    /** Batches currently queued or claiming (test/diagnostic hook). */
    std::size_t inFlightBatches() const;

  private:
    void workerLoop();
    /** Pops @p batch from queue_ if still present (mutex_ held). */
    void retireLocked(const std::shared_ptr<TileBatch>& batch) const;

    mutable std::mutex mutex_;
    mutable std::condition_variable workCv_; ///< workers: queue non-empty
    mutable std::condition_variable doneCv_; ///< submitters: batch settled
    /** In-flight batches, claimed front-first (guarded by mutex_).  A
     * fully-claimed front batch is popped so workers flow onward. */
    mutable std::deque<std::shared_ptr<TileBatch>> queue_;
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

} // namespace localut

#endif // LOCALUT_COMMON_PARALLEL_H_
