#ifndef LOCALUT_COMMON_PARALLEL_H_
#define LOCALUT_COMMON_PARALLEL_H_

/**
 * @file
 * Tile-execution abstraction for the functional GEMM engine
 * (kernels/exec_engine.h).  A kernel splits its output into disjoint
 * tiles and hands the per-tile closure to a TileExecutor; where the
 * tiles actually run is the executor's business:
 *
 *  - serialTiles() runs them inline on the calling thread (the default
 *    and the zero-allocation steady-state path);
 *  - TilePool owns a persistent worker pool (benches, tests);
 *  - InferenceSession implements the interface on its own request
 *    worker pool, so GEMM tiles and serving requests share threads
 *    instead of oversubscribing the machine.
 *
 * Tiles write disjoint output ranges and read shared state only, so any
 * executor yields bit-identical results regardless of scheduling; the
 * contract is merely "invoke fn(0..tiles-1) exactly once each and
 * return when all have finished".
 */

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace localut {

/**
 * One tile batch: an atomic claim counter over [0, count).  Shared by
 * every thread participating in the batch (heap-own it, so a
 * late-waking worker can still probe an exhausted batch).  The closure
 * pointer must stay valid until settled() — guaranteed because the
 * submitter blocks on settlement before returning.
 */
struct TileBatch {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex errorMutex;
    std::exception_ptr error;

    /** Claims and runs tiles until the range is exhausted; returns true
     * when this call retired the batch's last tile. */
    bool drain();

    /** Every tile has finished (not merely been claimed). */
    bool settled() const;
};

/** Runs a batch of independent tile closures to completion. */
class TileExecutor
{
  public:
    virtual ~TileExecutor() = default;

    /** Worker threads available to run() (1 = effectively serial). */
    virtual unsigned concurrency() const = 0;

    /**
     * Invokes fn(0), ..., fn(tiles - 1), each exactly once, possibly
     * concurrently, and returns once every invocation has finished.
     * Rethrows (one of) the closure exceptions, if any, after the batch
     * has settled.
     */
    virtual void run(std::size_t tiles,
                     const std::function<void(std::size_t)>& fn) const = 0;
};

/** The inline executor: runs every tile on the calling thread. */
const TileExecutor& serialTiles();

/**
 * A persistent worker pool implementing TileExecutor.  The calling
 * thread participates in the batch (a TilePool(1) still uses 2 threads'
 * worth of hands, its own plus the caller's claim loop), and run() is
 * serialized internally so several threads may share one pool.
 */
class TilePool final : public TileExecutor
{
  public:
    /** @p threads worker threads; 0 picks hardware_concurrency. */
    explicit TilePool(unsigned threads);
    ~TilePool() override;

    TilePool(const TilePool&) = delete;
    TilePool& operator=(const TilePool&) = delete;

    unsigned concurrency() const override;
    void run(std::size_t tiles,
             const std::function<void(std::size_t)>& fn) const override;

  private:
    void workerLoop();

    mutable std::mutex submitMutex_; ///< serializes run() callers
    mutable std::mutex mutex_;
    mutable std::condition_variable workCv_;
    mutable std::condition_variable doneCv_;
    /** Current batch (guarded by mutex_; null = idle). */
    mutable std::shared_ptr<TileBatch> batch_;
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

} // namespace localut

#endif // LOCALUT_COMMON_PARALLEL_H_
