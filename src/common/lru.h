#ifndef LOCALUT_COMMON_LRU_H_
#define LOCALUT_COMMON_LRU_H_

/**
 * @file
 * Shared bounded-LRU eviction for the clock-stamped caches
 * (LutTableCache, PlanCache's prepared-operand memo).  Entries carry a
 * monotonically-increasing `lastUse` stamp; eviction linearly scans
 * for the minimum — these caches hold at most a few hundred entries,
 * and eviction only runs on insert past the bound, so O(entries) per
 * eviction beats maintaining an intrusive list.
 */

#include <cstddef>

namespace localut {

/**
 * Erases lowest-`lastUse` entries of @p map (mapped values expose a
 * `lastUse` member) while @p needEvict() holds (and the map is
 * non-empty).  Callers hold their own lock.
 */
template <typename Map, typename NeedEvict>
void
evictLeastRecentlyUsedWhile(Map& map, const NeedEvict& needEvict)
{
    while (!map.empty() && needEvict()) {
        auto victim = map.begin();
        for (auto it = map.begin(); it != map.end(); ++it) {
            if (it->second.lastUse < victim->second.lastUse) {
                victim = it;
            }
        }
        map.erase(victim);
    }
}

/** Count-bounded convenience: evicts until at most @p maxEntries. */
template <typename Map>
void
evictLeastRecentlyUsed(Map& map, std::size_t maxEntries)
{
    evictLeastRecentlyUsedWhile(
        map, [&map, maxEntries] { return map.size() > maxEntries; });
}

} // namespace localut

#endif // LOCALUT_COMMON_LRU_H_
