#ifndef LOCALUT_COMMON_BITOPS_H_
#define LOCALUT_COMMON_BITOPS_H_

/**
 * @file
 * Bit-field packing helpers used for packed weight/activation indices.
 * A packed vector of p fields of b bits each places element i at bit i*b
 * (element 0 in the least significant bits).
 */

#include <cstdint>
#include <span>

#include "common/logging.h"

namespace localut {

/** Mask with the low @p bits set. @p bits must be <= 63. */
constexpr std::uint64_t
lowMask(unsigned bits)
{
    return (std::uint64_t{1} << bits) - 1;
}

/** Extracts field @p i of width @p bits from @p packed. */
constexpr std::uint32_t
extractField(std::uint64_t packed, unsigned i, unsigned bits)
{
    return static_cast<std::uint32_t>((packed >> (i * bits)) & lowMask(bits));
}

/** Packs @p codes (each < 2^bits) into a single integer, element 0 low. */
inline std::uint64_t
packCodes(std::span<const std::uint16_t> codes, unsigned bits)
{
    LOCALUT_ASSERT(codes.size() * bits <= 64, "packed vector exceeds 64 bits");
    std::uint64_t packed = 0;
    for (std::size_t i = 0; i < codes.size(); ++i) {
        LOCALUT_ASSERT(codes[i] <= lowMask(bits), "code out of range");
        packed |= std::uint64_t{codes[i]} << (i * bits);
    }
    return packed;
}

/** Unpacks @p packed into @p out (size p), inverse of packCodes(). */
inline void
unpackCodes(std::uint64_t packed, unsigned bits, std::span<std::uint16_t> out)
{
    for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = static_cast<std::uint16_t>(extractField(packed, i, bits));
    }
}

/** Number of whole bytes needed to hold @p bits. */
constexpr std::uint64_t
bytesForBits(std::uint64_t bits)
{
    return (bits + 7) / 8;
}

/** Bits needed to index a space of @p count values: ceil(log2(count)). */
constexpr unsigned
ceilLog2(std::uint64_t count)
{
    unsigned bits = 0;
    std::uint64_t cap = 1;
    while (cap < count) {
        cap <<= 1;
        ++bits;
    }
    return bits;
}

/** Integer ceil division. */
template <typename T>
constexpr T
ceilDiv(T a, T b)
{
    return (a + b - 1) / b;
}

} // namespace localut

#endif // LOCALUT_COMMON_BITOPS_H_
