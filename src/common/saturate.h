#ifndef LOCALUT_COMMON_SATURATE_H_
#define LOCALUT_COMMON_SATURATE_H_

/**
 * @file
 * Saturating 64-bit arithmetic shared by the byte-count models
 * (lut/capacity.cc sizing, serving/residency.cc budget ledgers).
 * UINT64_MAX is the saturation sentinel: a count that large overflowed
 * and must be treated as "does not fit", never as an exact size.
 */

#include <cstdint>
#include <limits>

namespace localut {

inline constexpr std::uint64_t kSatU64Max =
    std::numeric_limits<std::uint64_t>::max();

/** a * b saturating at UINT64_MAX. */
inline std::uint64_t
satMulU64(std::uint64_t a, std::uint64_t b)
{
    const unsigned __int128 wide =
        static_cast<unsigned __int128>(a) * static_cast<unsigned __int128>(b);
    return wide > kSatU64Max ? kSatU64Max
                             : static_cast<std::uint64_t>(wide);
}

/** a + b saturating at UINT64_MAX. */
inline std::uint64_t
satAddU64(std::uint64_t a, std::uint64_t b)
{
    return a > kSatU64Max - b ? kSatU64Max : a + b;
}

} // namespace localut

#endif // LOCALUT_COMMON_SATURATE_H_
