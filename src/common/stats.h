#ifndef LOCALUT_COMMON_STATS_H_
#define LOCALUT_COMMON_STATS_H_

/**
 * @file
 * Small statistics helpers (geometric mean as used throughout the paper's
 * evaluation) and an order-preserving named breakdown used for the Fig. 16
 * style time/energy decompositions.
 */

#include <span>
#include <string>
#include <utility>
#include <vector>

namespace localut {

/** Geometric mean of strictly positive values. */
double geomean(std::span<const double> values);

/** Arithmetic mean. */
double mean(std::span<const double> values);

/**
 * A named accumulator that preserves insertion order, so breakdowns print
 * in the order the pipeline executes.
 */
class Breakdown
{
  public:
    /** Adds @p value to component @p name (creating it if new). */
    void add(const std::string& name, double value);

    /** Value of component @p name (0 when absent). */
    double get(const std::string& name) const;

    /** Sum over all components. */
    double total() const;

    /** Fraction of total() in component @p name (0 when total is 0). */
    double fraction(const std::string& name) const;

    /** Merges all components of @p other into this. */
    void merge(const Breakdown& other);

    /** Multiplies every component by @p factor. */
    void scale(double factor);

    const std::vector<std::pair<std::string, double>>&
    items() const
    {
        return items_;
    }

  private:
    std::vector<std::pair<std::string, double>> items_;
};

} // namespace localut

#endif // LOCALUT_COMMON_STATS_H_
