#ifndef LOCALUT_COMMON_COMBINATORICS_H_
#define LOCALUT_COMMON_COMBINATORICS_H_

/**
 * @file
 * Combinatorial primitives behind LUT canonicalization:
 *  - binomial coefficients (exact, 64-bit, overflow-checked),
 *  - multiset (sorted tuple) ranking/unranking — the canonical-LUT column
 *    index of paper Eq. (1),
 *  - permutation (Lehmer code) ranking/unranking — the reordering-LUT column
 *    index,
 *  - stable argsort used to derive the sorted permutation of an activation
 *    group.
 */

#include <cstdint>
#include <span>
#include <vector>

namespace localut {

/** Exact C(n, k); panics on 64-bit overflow. C(n,k)=0 when k > n. */
std::uint64_t binomial(std::uint64_t n, std::uint64_t k);

/** Exact n! for n <= 20; panics beyond. */
std::uint64_t factorial(unsigned n);

/**
 * Number of multisets of size @p p over an alphabet of @p alphabet symbols:
 * C(alphabet + p - 1, p).  This is the canonical-LUT column count
 * (paper Eq. 1, written there as 2^ba H p).
 */
std::uint64_t multisetCount(std::uint64_t alphabet, unsigned p);

/**
 * Rank of a sorted (ascending, repeats allowed) tuple over [0, alphabet)
 * within all such tuples, in [0, multisetCount(alphabet, p)).
 *
 * Implementation: map x_i -> z_i = x_i + i (strictly increasing) and take the
 * colexicographic rank sum C(z_i, i + 1) over the combinations of
 * alphabet + p - 1 choose p.
 */
std::uint64_t multisetRank(std::span<const std::uint16_t> sorted,
                           std::uint64_t alphabet);

/** Inverse of multisetRank(); fills @p out (size p) with the sorted tuple. */
void multisetUnrank(std::uint64_t rank, std::uint64_t alphabet,
                    std::span<std::uint16_t> out);

/**
 * Lehmer (factorial number system) rank of a permutation of [0, n) in
 * lexicographic order, in [0, n!).
 */
std::uint32_t permutationRank(std::span<const std::uint8_t> perm);

/** Inverse of permutationRank(); fills @p out (size n). */
void permutationUnrank(std::uint32_t rank, std::span<std::uint8_t> out);

/**
 * Stable argsort: returns perm such that codes[perm[0]] <= codes[perm[1]]
 * <= ... with ties broken by original position (so the permutation is a
 * deterministic function of the input, as required for host/device
 * agreement on reordering-LUT columns).
 */
std::vector<std::uint8_t> stableArgsort(std::span<const std::uint16_t> codes);

} // namespace localut

#endif // LOCALUT_COMMON_COMBINATORICS_H_
