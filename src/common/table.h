#ifndef LOCALUT_COMMON_TABLE_H_
#define LOCALUT_COMMON_TABLE_H_

/**
 * @file
 * Aligned table printer for the benchmark harnesses.  Every bench binary
 * prints the same rows/series the corresponding paper figure plots, so the
 * output needs to be easy to eyeball and to machine-parse (CSV mode).
 */

#include <string>
#include <vector>

namespace localut {

/** Column-aligned text table with an optional CSV rendering. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Appends a row; must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: formats doubles with @p precision significant digits. */
    static std::string fmt(double value, int precision = 4);

    /** Renders with aligned columns. */
    std::string render() const;

    /** Renders as CSV. */
    std::string renderCsv() const;

    /** Prints render() to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace localut

#endif // LOCALUT_COMMON_TABLE_H_
