#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace localut {

namespace {

class SerialTiles final : public TileExecutor
{
  public:
    unsigned concurrency() const override { return 1; }

    void
    run(std::size_t tiles,
        const std::function<void(std::size_t)>& fn) const override
    {
        for (std::size_t i = 0; i < tiles; ++i) {
            fn(i);
        }
    }
};

/**
 * The pool a thread is currently draining a tile of (null when not
 * inside a tile).  A nested run() on the same pool must not re-enter
 * the submission path: the historical single-slot design self-deadlocked
 * on the submit mutex, and even queue-based submission would have the
 * nested batch compete with the batch this thread is mid-tile in.
 * Inline draining is deadlock-free and keeps the fixed per-element
 * accumulation order (tiles are order-independent by contract).
 */
thread_local const TilePool* tlDrainingPool = nullptr;

struct DrainScope {
    const TilePool* previous;

    explicit DrainScope(const TilePool* pool) : previous(tlDrainingPool)
    {
        tlDrainingPool = pool;
    }
    ~DrainScope() { tlDrainingPool = previous; }
};

} // namespace

const TileExecutor&
serialTiles()
{
    static const SerialTiles executor;
    return executor;
}

std::size_t
claimChunkFor(std::size_t tiles, unsigned participants)
{
    if (participants <= 1) {
        return std::max<std::size_t>(tiles, 1);
    }
    // At least 4 claims per participant keeps stragglers from holding a
    // quarter of the batch; the max() keeps tiny batches at 1 tile per
    // claim (they need every hand).
    return std::max<std::size_t>(
        1, tiles / (static_cast<std::size_t>(participants) * 4));
}

bool
TileBatch::drain()
{
    bool last = false;
    const std::size_t chunk = std::max<std::size_t>(1, claimChunk);
    for (;;) {
        const std::size_t begin = next.fetch_add(chunk,
                                                 std::memory_order_relaxed);
        if (begin >= count) {
            return last;
        }
        const std::size_t end = std::min(count, begin + chunk);
        for (std::size_t i = begin; i < end; ++i) {
            try {
                (*fn)(i);
            } catch (...) {
                // Deterministic first-error-wins: the lowest-indexed
                // failing tile's exception survives, independent of
                // thread interleaving.
                std::lock_guard<std::mutex> lock(errorMutex);
                if (i < errorTile) {
                    errorTile = i;
                    error = std::current_exception();
                }
            }
        }
        // Retirement is counted per chunk, OUTSIDE the try block: a
        // throwing tile still retires, so the settlement wait (and the
        // doneCv_ notify chained off `last`) can never be lost to the
        // throw path.
        last = done.fetch_add(end - begin, std::memory_order_acq_rel) +
                   (end - begin) ==
               count;
    }
}

bool
TileBatch::settled() const
{
    return done.load(std::memory_order_acquire) >= count;
}

bool
TileBatch::fullyClaimed() const
{
    return next.load(std::memory_order_relaxed) >= count;
}

void
TileBatch::rethrowIfError() const
{
    if (error) {
        std::rethrow_exception(error);
    }
}

TilePool::TilePool(unsigned threads)
{
    if (threads == 0) {
        threads = std::max(1u, std::thread::hardware_concurrency());
    }
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) {
        workers_.emplace_back([this] { workerLoop(); });
    }
}

TilePool::~TilePool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workCv_.notify_all();
    for (std::thread& worker : workers_) {
        worker.join();
    }
}

unsigned
TilePool::concurrency() const
{
    return static_cast<unsigned>(workers_.size());
}

std::size_t
TilePool::inFlightBatches() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

void
TilePool::retireLocked(const std::shared_ptr<TileBatch>& batch) const
{
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (*it == batch) {
            queue_.erase(it);
            return;
        }
    }
}

void
TilePool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        workCv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) {
            if (stopping_) {
                return;
            }
            continue;
        }
        const std::shared_ptr<TileBatch> batch = queue_.front();
        if (batch->fullyClaimed()) {
            // Nothing left to claim here; unblock the queue for the
            // next batch (its submitter still waits on settlement, not
            // on queue membership) and look again.
            queue_.pop_front();
            continue;
        }
        lock.unlock();
        bool last;
        {
            DrainScope scope(this);
            last = batch->drain();
        }
        lock.lock();
        retireLocked(batch);
        if (last) {
            doneCv_.notify_all();
        }
    }
}

void
TilePool::run(std::size_t tiles,
              const std::function<void(std::size_t)>& fn) const
{
    if (tiles == 0) {
        return;
    }
    if (tiles == 1 || workers_.empty() || tlDrainingPool == this) {
        // Serial shapes, a poolless pool, and NESTED submissions (a
        // tile closure re-entering the pool it is already draining a
        // tile of) all drain inline: the nested case historically
        // deadlocked on the pool's submission state.
        serialTiles().run(tiles, fn);
        return;
    }
    auto batch = std::make_shared<TileBatch>();
    batch->fn = &fn;
    batch->count = tiles;
    batch->claimChunk =
        claimChunkFor(tiles, static_cast<unsigned>(workers_.size()) + 1);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(batch);
    }
    workCv_.notify_all();
    // The submitter participates: with no free worker the batch still
    // completes on this thread alone.
    bool last;
    {
        DrainScope scope(this);
        last = batch->drain();
    }
    {
        std::unique_lock<std::mutex> lock(mutex_);
        retireLocked(batch);
        if (last) {
            doneCv_.notify_all();
        }
        doneCv_.wait(lock, [&batch] { return batch->settled(); });
    }
    batch->rethrowIfError();
}

} // namespace localut
