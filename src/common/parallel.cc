#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <memory>

namespace localut {

namespace {

class SerialTiles final : public TileExecutor
{
  public:
    unsigned concurrency() const override { return 1; }

    void
    run(std::size_t tiles,
        const std::function<void(std::size_t)>& fn) const override
    {
        for (std::size_t i = 0; i < tiles; ++i) {
            fn(i);
        }
    }
};

} // namespace

const TileExecutor&
serialTiles()
{
    static const SerialTiles executor;
    return executor;
}

bool
TileBatch::drain()
{
    bool last = false;
    for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count) {
            return last;
        }
        try {
            (*fn)(i);
        } catch (...) {
            std::lock_guard<std::mutex> lock(errorMutex);
            if (!error) {
                error = std::current_exception();
            }
        }
        last = done.fetch_add(1, std::memory_order_acq_rel) + 1 == count;
    }
}

bool
TileBatch::settled() const
{
    return done.load(std::memory_order_acquire) >= count;
}

TilePool::TilePool(unsigned threads)
{
    if (threads == 0) {
        threads = std::max(1u, std::thread::hardware_concurrency());
    }
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) {
        workers_.emplace_back([this] { workerLoop(); });
    }
}

TilePool::~TilePool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workCv_.notify_all();
    for (std::thread& worker : workers_) {
        worker.join();
    }
}

unsigned
TilePool::concurrency() const
{
    return static_cast<unsigned>(workers_.size());
}

void
TilePool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        workCv_.wait(lock,
                     [this] { return stopping_ || batch_ != nullptr; });
        if (batch_ == nullptr) {
            if (stopping_) {
                return;
            }
            continue;
        }
        const std::shared_ptr<TileBatch> batch = batch_;
        lock.unlock();
        if (batch->drain()) {
            std::lock_guard<std::mutex> doneLock(mutex_);
            doneCv_.notify_all();
        }
        lock.lock();
        // Park until the submitter retires this batch; spinning back to
        // workCv_ immediately would busy-claim the exhausted range.
        doneCv_.wait(lock, [this, &batch] {
            return stopping_ || batch_ != batch;
        });
    }
}

void
TilePool::run(std::size_t tiles,
              const std::function<void(std::size_t)>& fn) const
{
    if (tiles == 0) {
        return;
    }
    if (tiles == 1 || workers_.empty()) {
        serialTiles().run(tiles, fn);
        return;
    }
    // One batch at a time; concurrent run() callers queue up here.
    std::lock_guard<std::mutex> submitLock(submitMutex_);
    auto batch = std::make_shared<TileBatch>();
    batch->fn = &fn;
    batch->count = tiles;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        batch_ = batch;
    }
    workCv_.notify_all();
    // The submitter participates: with no free worker the batch still
    // completes on this thread alone.
    if (batch->drain()) {
        std::lock_guard<std::mutex> lock(mutex_);
        doneCv_.notify_all();
    }
    {
        std::unique_lock<std::mutex> lock(mutex_);
        doneCv_.wait(lock, [&batch] { return batch->settled(); });
        batch_ = nullptr;
    }
    doneCv_.notify_all(); // release workers parked on batch retirement
    if (batch->error) {
        std::rethrow_exception(batch->error);
    }
}

} // namespace localut
