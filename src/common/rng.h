#ifndef LOCALUT_COMMON_RNG_H_
#define LOCALUT_COMMON_RNG_H_

/**
 * @file
 * Deterministic SplitMix64-based RNG so every experiment is exactly
 * reproducible from its seed (std::mt19937 distributions are not guaranteed
 * identical across standard libraries).
 */

#include <cmath>
#include <cstdint>

namespace localut {

/** SplitMix64 generator with uniform/gaussian helpers. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : state_(seed) {}

    /** Next raw 64-bit value. */
    std::uint64_t
    nextU64()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound). @p bound must be > 0. */
    std::uint64_t
    nextBounded(std::uint64_t bound)
    {
        return nextU64() % bound;
    }

    /** Uniform float in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
    }

    /** Uniform float in [lo, hi). */
    double
    nextUniform(double lo, double hi)
    {
        return lo + (hi - lo) * nextDouble();
    }

    /** Standard normal via Box-Muller. */
    double
    nextGaussian()
    {
        if (haveSpare_) {
            haveSpare_ = false;
            return spare_;
        }
        double u = 0.0;
        while (u == 0.0) {
            u = nextDouble();
        }
        const double v = nextDouble();
        const double r = std::sqrt(-2.0 * std::log(u));
        spare_ = r * std::sin(2.0 * M_PI * v);
        haveSpare_ = true;
        return r * std::cos(2.0 * M_PI * v);
    }

  private:
    std::uint64_t state_;
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

} // namespace localut

#endif // LOCALUT_COMMON_RNG_H_
