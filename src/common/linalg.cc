#include "common/linalg.h"

#include <cmath>

#include "common/logging.h"

namespace localut {

void
matmulAcc(const float* a, const float* b, float* c, std::size_t m,
          std::size_t k, std::size_t n)
{
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t kk = 0; kk < k; ++kk) {
            const float av = a[i * k + kk];
            if (av == 0.0f) {
                continue;
            }
            for (std::size_t j = 0; j < n; ++j) {
                c[i * n + j] += av * b[kk * n + j];
            }
        }
    }
}

std::vector<float>
matmul(const std::vector<float>& a, const std::vector<float>& b,
       std::size_t m, std::size_t k, std::size_t n)
{
    LOCALUT_ASSERT(a.size() == m * k && b.size() == k * n,
                   "matmul shape mismatch");
    std::vector<float> c(m * n, 0.0f);
    matmulAcc(a.data(), b.data(), c.data(), m, k, n);
    return c;
}

std::vector<float>
solveSpd(std::vector<float> a, std::vector<float> b, std::size_t n,
         std::size_t r, float lambda)
{
    LOCALUT_ASSERT(a.size() == n * n && b.size() == n * r,
                   "solveSpd shape mismatch");
    for (std::size_t i = 0; i < n; ++i) {
        a[i * n + i] += lambda;
    }
    // In-place Cholesky: A = L L^T (lower triangle).
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double sum = a[i * n + j];
            for (std::size_t kk = 0; kk < j; ++kk) {
                sum -= static_cast<double>(a[i * n + kk]) * a[j * n + kk];
            }
            if (i == j) {
                LOCALUT_REQUIRE(sum > 0.0,
                                "matrix not positive definite at row ", i);
                a[i * n + i] = static_cast<float>(std::sqrt(sum));
            } else {
                a[i * n + j] = static_cast<float>(sum / a[j * n + j]);
            }
        }
    }
    // Solve L Y = B, then L^T X = Y, column block at once.
    for (std::size_t col = 0; col < r; ++col) {
        for (std::size_t i = 0; i < n; ++i) {
            double sum = b[i * r + col];
            for (std::size_t kk = 0; kk < i; ++kk) {
                sum -= static_cast<double>(a[i * n + kk]) * b[kk * r + col];
            }
            b[i * r + col] = static_cast<float>(sum / a[i * n + i]);
        }
        for (std::size_t i = n; i-- > 0;) {
            double sum = b[i * r + col];
            for (std::size_t kk = i + 1; kk < n; ++kk) {
                sum -= static_cast<double>(a[kk * n + i]) * b[kk * r + col];
            }
            b[i * r + col] = static_cast<float>(sum / a[i * n + i]);
        }
    }
    return b;
}

} // namespace localut
