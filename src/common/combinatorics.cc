#include "common/combinatorics.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace localut {

std::uint64_t
binomial(std::uint64_t n, std::uint64_t k)
{
    if (k > n) {
        return 0;
    }
    if (k > n - k) {
        k = n - k;
    }
    // Multiplicative formula with a 128-bit intermediate; each partial
    // product divided by i is exact because C(n, i) is an integer.
    // Saturates at UINT64_MAX so capacity probes of absurdly large LUT
    // shapes stay well-defined (anything that big never fits a budget);
    // rank computations guard against saturation separately.
    unsigned __int128 result = 1;
    for (std::uint64_t i = 1; i <= k; ++i) {
        result = result * (n - k + i) / i;
        if (result > ~std::uint64_t{0}) {
            return ~std::uint64_t{0};
        }
    }
    return static_cast<std::uint64_t>(result);
}

std::uint64_t
factorial(unsigned n)
{
    LOCALUT_ASSERT(n <= 20, "factorial(", n, ") overflows 64 bits");
    std::uint64_t result = 1;
    for (unsigned i = 2; i <= n; ++i) {
        result *= i;
    }
    return result;
}

std::uint64_t
multisetCount(std::uint64_t alphabet, unsigned p)
{
    LOCALUT_ASSERT(alphabet >= 1 && p >= 1, "degenerate multiset space");
    return binomial(alphabet + p - 1, p);
}

std::uint64_t
multisetRank(std::span<const std::uint16_t> sorted, std::uint64_t alphabet)
{
    LOCALUT_ASSERT(multisetCount(alphabet, static_cast<unsigned>(
                                               sorted.size())) <
                       ~std::uint64_t{0},
                   "multiset space too large to rank in 64 bits");
    std::uint64_t rank = 0;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        if (i > 0) {
            LOCALUT_ASSERT(sorted[i] >= sorted[i - 1],
                           "multisetRank input not sorted");
        }
        LOCALUT_ASSERT(sorted[i] < alphabet, "symbol out of alphabet");
        const std::uint64_t z = sorted[i] + i;
        rank += binomial(z, i + 1);
    }
    return rank;
}

void
multisetUnrank(std::uint64_t rank, std::uint64_t alphabet,
               std::span<std::uint16_t> out)
{
    const std::size_t p = out.size();
    LOCALUT_ASSERT(rank < multisetCount(alphabet, p),
                   "multiset rank out of range");
    // Greedy colex unranking, highest position first.
    for (std::size_t i = p; i-- > 0;) {
        // Find the largest z with C(z, i + 1) <= rank.
        std::uint64_t z = i; // smallest legal value (C(i, i+1) = 0)
        std::uint64_t hi = alphabet + p - 1;
        while (z + 1 < hi && binomial(z + 1, i + 1) <= rank) {
            ++z;
        }
        rank -= binomial(z, i + 1);
        out[i] = static_cast<std::uint16_t>(z - i);
    }
}

std::uint32_t
permutationRank(std::span<const std::uint8_t> perm)
{
    const std::size_t n = perm.size();
    LOCALUT_ASSERT(n <= 12, "permutation rank limited to n <= 12");
    std::uint32_t rank = 0;
    for (std::size_t i = 0; i < n; ++i) {
        unsigned smaller = 0;
        for (std::size_t j = i + 1; j < n; ++j) {
            if (perm[j] < perm[i]) {
                ++smaller;
            }
        }
        rank = rank * static_cast<std::uint32_t>(n - i) + smaller;
    }
    return rank;
}

void
permutationUnrank(std::uint32_t rank, std::span<std::uint8_t> out)
{
    const std::size_t n = out.size();
    LOCALUT_ASSERT(n <= 12, "permutation unrank limited to n <= 12");
    std::vector<std::uint8_t> pool(n);
    std::iota(pool.begin(), pool.end(), std::uint8_t{0});
    std::uint64_t radix = factorial(static_cast<unsigned>(n));
    LOCALUT_ASSERT(rank < radix, "permutation rank out of range");
    for (std::size_t i = 0; i < n; ++i) {
        radix /= (n - i);
        const std::size_t idx = static_cast<std::size_t>(rank / radix);
        rank = static_cast<std::uint32_t>(rank % radix);
        out[i] = pool[idx];
        pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(idx));
    }
}

std::vector<std::uint8_t>
stableArgsort(std::span<const std::uint16_t> codes)
{
    std::vector<std::uint8_t> perm(codes.size());
    std::iota(perm.begin(), perm.end(), std::uint8_t{0});
    std::stable_sort(perm.begin(), perm.end(),
                     [&](std::uint8_t a, std::uint8_t b) {
                         return codes[a] < codes[b];
                     });
    return perm;
}

} // namespace localut
