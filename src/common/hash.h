#ifndef LOCALUT_COMMON_HASH_H_
#define LOCALUT_COMMON_HASH_H_

/**
 * @file
 * Shared hash mixing for composite cache keys (PlanKeyHash,
 * TableSetKeyHash).
 */

#include <cstddef>

namespace localut {

/** Boost-style golden-ratio mixer: folds @p value into @p seed. */
inline void
hashCombine(std::size_t& seed, std::size_t value)
{
    seed ^= value + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2);
}

} // namespace localut

#endif // LOCALUT_COMMON_HASH_H_
