#ifndef LOCALUT_COMMON_LINALG_H_
#define LOCALUT_COMMON_LINALG_H_

/**
 * @file
 * Tiny dense linear-algebra helpers for the accuracy-proxy harness
 * (ridge-regression readout): row-major float GEMM and an SPD solver.
 */

#include <cstddef>
#include <vector>

namespace localut {

/** C(MxN) += A(MxK) * B(KxN), row-major. */
void matmulAcc(const float* a, const float* b, float* c, std::size_t m,
               std::size_t k, std::size_t n);

/** C = A * B convenience returning a fresh vector. */
std::vector<float> matmul(const std::vector<float>& a,
                          const std::vector<float>& b, std::size_t m,
                          std::size_t k, std::size_t n);

/**
 * Solves (A + lambda I) X = B for X, where A is n x n symmetric positive
 * definite and B is n x r, via Cholesky decomposition.  A and B are
 * row-major; returns X (n x r).
 */
std::vector<float> solveSpd(std::vector<float> a, std::vector<float> b,
                            std::size_t n, std::size_t r, float lambda);

} // namespace localut

#endif // LOCALUT_COMMON_LINALG_H_
