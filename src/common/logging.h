#ifndef LOCALUT_COMMON_LOGGING_H_
#define LOCALUT_COMMON_LOGGING_H_

/**
 * @file
 * Status-message and error helpers following the gem5 discipline:
 * inform()/warn() report conditions without stopping, fatal() terminates on
 * user error (bad configuration), panic() terminates on internal invariant
 * violations (a bug in this library).
 */

#include <sstream>
#include <string>

namespace localut {

namespace detail {

/** Concatenates all arguments through an ostringstream. */
template <typename... Args>
std::string
strCat(Args&&... args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

[[noreturn]] void fatalImpl(const char* file, int line, const std::string& msg);
[[noreturn]] void panicImpl(const char* file, int line, const std::string& msg);
void warnImpl(const std::string& msg);
void informImpl(const std::string& msg);

} // namespace detail

/** Reports a condition the user should know about but not worry over. */
template <typename... Args>
void
inform(Args&&... args)
{
    detail::informImpl(detail::strCat(std::forward<Args>(args)...));
}

/** Reports suspicious-but-survivable conditions. */
template <typename... Args>
void
warn(Args&&... args)
{
    detail::warnImpl(detail::strCat(std::forward<Args>(args)...));
}

} // namespace localut

/** Terminates on user error (bad configuration / invalid arguments). */
#define LOCALUT_FATAL(...) \
    ::localut::detail::fatalImpl(__FILE__, __LINE__, \
                                 ::localut::detail::strCat(__VA_ARGS__))

/** Terminates on an internal bug (should never happen regardless of input). */
#define LOCALUT_PANIC(...) \
    ::localut::detail::panicImpl(__FILE__, __LINE__, \
                                 ::localut::detail::strCat(__VA_ARGS__))

/** Invariant check that panics (library bug) when violated. */
#define LOCALUT_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            LOCALUT_PANIC("assertion failed: ", #cond, ": ", ##__VA_ARGS__); \
        } \
    } while (0)

/** Precondition check that fatals (user error) when violated. */
#define LOCALUT_REQUIRE(cond, ...) \
    do { \
        if (!(cond)) { \
            LOCALUT_FATAL("requirement failed: ", #cond, ": ", ##__VA_ARGS__); \
        } \
    } while (0)

#endif // LOCALUT_COMMON_LOGGING_H_
