#include "common/logging.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace localut {
namespace detail {

namespace {

/**
 * Throwing (instead of aborting) lets the test suite exercise failure paths;
 * both exception types derive from std::runtime_error so callers outside the
 * tests never need to distinguish them.
 */
struct FatalError : std::runtime_error {
    using std::runtime_error::runtime_error;
};

struct PanicError : std::runtime_error {
    using std::runtime_error::runtime_error;
};

} // namespace

void
fatalImpl(const char* file, int line, const std::string& msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file, line);
    throw FatalError(msg);
}

void
panicImpl(const char* file, int line, const std::string& msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    throw PanicError(msg);
}

void
warnImpl(const std::string& msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string& msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace localut
