#include "serving/plan_cache.h"

#include "common/hash.h"
#include "common/lru.h"

namespace localut {

PlanKey
PlanKey::of(const Backend& backend, const GemmProblem& problem,
            DesignPoint design, const PlanOverrides& overrides,
            const ShardSpec& shard)
{
    PlanKey key;
    key.m = problem.m();
    key.k = problem.k();
    key.n = problem.n();
    key.config = problem.config();
    key.design = design;
    key.overrides = overrides;
    key.shard = shard;
    key.backend = backend.name();
    key.fingerprint = backend.configFingerprint();
    return key;
}

std::size_t
PlanKeyHash::operator()(const PlanKey& key) const
{
    std::size_t seed = 0;
    hashCombine(seed, key.m);
    hashCombine(seed, key.k);
    hashCombine(seed, key.n);
    hashCombine(seed,
                static_cast<std::size_t>(key.config.weightCodec.kind()));
    hashCombine(seed, key.config.weightCodec.bits());
    hashCombine(seed,
                static_cast<std::size_t>(key.config.actCodec.kind()));
    hashCombine(seed, key.config.actCodec.bits());
    hashCombine(seed, static_cast<std::size_t>(key.design));
    hashCombine(seed, key.overrides.p);
    hashCombine(seed, key.overrides.kSlices);
    hashCombine(seed, static_cast<std::size_t>(key.overrides.streaming + 1));
    hashCombine(seed, key.overrides.gM);
    hashCombine(seed, key.overrides.gN);
    hashCombine(seed, key.shard.numRanks);
    hashCombine(seed, static_cast<std::size_t>(key.shard.strategy));
    hashCombine(seed, key.shard.align);
    hashCombine(seed, key.shard.numNodes);
    hashCombine(seed, std::hash<std::string>{}(key.backend));
    hashCombine(seed, static_cast<std::size_t>(key.fingerprint));
    return seed;
}

GemmPlan
PlanCache::planForCounted(const Backend& backend,
                          const GemmProblem& problem, DesignPoint design,
                          const PlanOverrides& overrides,
                          std::uint64_t& hits, std::uint64_t& misses)
{
    const PlanKey key = PlanKey::of(backend, problem, design, overrides);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = plans_.find(key);
        if (it != plans_.end()) {
            ++hits;
            return it->second;
        }
    }
    // Plan outside the lock: planning is the expensive part, and two
    // threads racing on the same key deterministically produce the same
    // plan, so last-insert-wins is harmless.
    const GemmPlan plan = backend.plan(problem, design, overrides);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++misses;
        plans_.insert_or_assign(key, plan);
    }
    return plan;
}

GemmPlan
PlanCache::planFor(const Backend& backend, const GemmProblem& problem,
                   DesignPoint design, const PlanOverrides& overrides)
{
    return planForCounted(backend, problem, design, overrides, hits_,
                          misses_);
}

GemmPlan
PlanCache::shardSubPlanFor(const Backend& backend,
                           const GemmProblem& problem, DesignPoint design,
                           const PlanOverrides& overrides)
{
    return planForCounted(backend, problem, design, overrides, shardHits_,
                          shardMisses_);
}

ShardPlan
PlanCache::shardPlanFor(const Backend& backend, const GemmProblem& problem,
                        DesignPoint design, const ShardSpec& spec,
                        const PlanOverrides& overrides)
{
    const PlanKey key =
        PlanKey::of(backend, problem, design, overrides, spec);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = shardPlans_.find(key);
        if (it != shardPlans_.end()) {
            ++hits_;
            return it->second;
        }
    }
    // Cut and plan outside the lock (makeShardPlan re-enters this cache
    // for the per-shard sub-plans); racing threads produce the same
    // ShardPlan deterministically, so last-insert-wins is harmless.
    const ShardPlan plan =
        makeShardPlan(backend, problem, design, spec, overrides, this);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++misses_;
        shardPlans_.insert_or_assign(key, plan);
    }
    return plan;
}

std::size_t
PlanCache::PreparedKeyHash::operator()(const PreparedKey& key) const
{
    std::size_t seed = PlanKeyHash{}(key.plan);
    hashCombine(seed, static_cast<std::size_t>(key.weights));
    return seed;
}

std::shared_ptr<const PreparedGemm>
PlanCache::preparedFor(const Backend& backend, const GemmProblem& problem,
                       const GemmPlan& plan,
                       const PlanOverrides& overrides)
{
    const std::uint64_t weights = weightsFingerprint(problem.w);
    PreparedKey key;
    key.plan = PlanKey::of(backend, problem, plan.design, overrides);
    key.weights = weights;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = prepared_.find(key);
        // The plan-resolution check guards callers that pass hand-built
        // plans (overrides outside the key): a cached operand only
        // serves executions it actually fits.
        if (it != prepared_.end() &&
            it->second.prepared->matches(problem, plan)) {
            ++preparedHits_;
            it->second.lastUse = ++preparedClock_;
            return it->second.prepared;
        }
    }
    // Build outside the lock (packing + tables are the expensive part);
    // racing threads build identical operands, last-insert-wins.
    std::shared_ptr<PreparedGemm> built = prepareGemm(problem, plan);
    built->weights = weights;
    std::shared_ptr<const PreparedGemm> prepared = std::move(built);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++preparedMisses_;
        prepared_[key] = PreparedEntry{prepared, ++preparedClock_};
        evictLeastRecentlyUsed(prepared_, maxPrepared_);
    }
    return prepared;
}

void
PlanCache::setMaxPreparedEntries(std::size_t maxEntries)
{
    std::lock_guard<std::mutex> lock(mutex_);
    maxPrepared_ = maxEntries == 0 ? 1 : maxEntries;
    evictLeastRecentlyUsed(prepared_, maxPrepared_);
}

PlanCache::Stats
PlanCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Stats s;
    s.hits = hits_;
    s.misses = misses_;
    s.shardHits = shardHits_;
    s.shardMisses = shardMisses_;
    s.preparedHits = preparedHits_;
    s.preparedMisses = preparedMisses_;
    s.entries = plans_.size() + shardPlans_.size();
    s.preparedEntries = prepared_.size();
    for (const auto& [key, entry] : prepared_) {
        s.preparedBytes += entry.prepared->bytes();
    }
    return s;
}

std::size_t
PlanCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return plans_.size() + shardPlans_.size();
}

void
PlanCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    plans_.clear();
    shardPlans_.clear();
    prepared_.clear();
}

void
PlanCache::resetStats()
{
    std::lock_guard<std::mutex> lock(mutex_);
    hits_ = 0;
    misses_ = 0;
    shardHits_ = 0;
    shardMisses_ = 0;
    preparedHits_ = 0;
    preparedMisses_ = 0;
}

} // namespace localut
