#ifndef LOCALUT_SERVING_SESSION_H_
#define LOCALUT_SERVING_SESSION_H_

/**
 * @file
 * The serving API: an InferenceSession binds a Backend to a PlanCache and
 * a worker pool, so callers compile a workload (or an individual GEMM)
 * once and then dispatch batched requests asynchronously:
 *
 *     InferenceSession session(makeBackend("upmem"));
 *     auto workload = session.compile(
 *         WorkloadSpec::decode(TransformerConfig::opt125m(), 32, 128, 16),
 *         QuantConfig::preset("W4A4"), DesignPoint::LoCaLut);
 *     auto id = session.submit(workload);
 *     // ... submit more requests; they execute on the worker pool ...
 *     InferenceReport report = session.waitReport(id);
 *
 * Plans are memoized in the session's PlanCache keyed by (shape,
 * QuantConfig, DesignPoint, overrides, shard config, backend), so
 * repeated decode steps — and repeated requests in a serving loop — stop
 * paying planner cost.  Every GemmProblem/workload submitted is executed
 * exactly as the synchronous API would execute it; requests are
 * independent, so results are deterministic regardless of completion
 * order.
 *
 * Sharding: with SessionOptions::numRanks > 1 the session models that
 * many logical PIM ranks.  Submitted GEMMs are cut by a ShardPlan
 * (serving/sharding.h) and their shards execute concurrently — the
 * scheduler packs queued work into per-rank work queues (continuous
 * batching) instead of dispatching one request at a time — with a
 * deterministic reduction, so results stay bit-exact with numRanks = 1.
 * Compiled workloads shard every GEMM node the same way (column-parallel
 * for FFN/QKV, head-aligned — i.e. head-parallel — for QKV).
 */

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "backend/backend.h"
#include "common/parallel.h"
#include "nn/inference.h"
#include "nn/workload.h"
#include "serving/fault.h"
#include "serving/plan_cache.h"
#include "serving/residency.h"
#include "serving/sharding.h"

namespace localut {

/** How a multi-node session lays workloads onto its nodes. */
enum class NodePlacement {
    /** Every GEMM is cut across all nodes' ranks (the node dimension
     * widens the tensor-parallel cut; collectives gather intra-node
     * then hop the inter-node tier). */
    TensorParallel,
    /** Whole layers are assigned to nodes (each node runs a node-local
     * rank cut of its share) and activations hop the inter-node tier
     * once per stage boundary — the deep-workload regime where a
     * tensor-parallel cut would be collective-bound. */
    PipelineParallel,
};

/** Placement name for reports ("tensor-parallel" / "pipeline-parallel"). */
const char* nodePlacementName(NodePlacement placement);

/** Session-wide knobs. */
struct SessionOptions {
    /** Worker threads; 0 picks min(hardware_concurrency, 8). */
    unsigned workers = 0;
    /** Default functional pass for submitted GEMM requests. */
    bool computeValues = false;
    /**
     * Logical PIM ranks *per node* (num_ranks).  1 executes exactly as
     * before; > 1 shards every GEMM across the ranks and executes the
     * shards concurrently on per-rank work queues, bit-exact with 1.
     */
    unsigned numRanks = 1;
    /** How GEMMs are cut across ranks when the topology is sharded. */
    ShardStrategy shardStrategy = ShardStrategy::ColumnParallel;
    /**
     * CXL-attached PIM nodes the session scales out across.  1 keeps
     * the single-host model (and its exact costs); > 1 models
     * numNodes * numRanks flat ranks (node-major), with cross-node
     * transfers charged at the backend's inter-node tier.  Results stay
     * bit-exact with numNodes = 1 under either placement.
     */
    unsigned numNodes = 1;
    /** How workloads are laid onto the nodes when numNodes > 1. */
    NodePlacement nodePlacement = NodePlacement::TensorParallel;
    /**
     * Compress inter-node LUT table-set broadcasts through the
     * deterministic delta/RLE codec (lut/broadcast_codec.h): the
     * residency manager charges the *measured* compressed bytes at the
     * inter-node tier plus an explicit encode-time term.  Purely a cost
     * knob — functional values never cross the codec.  Irrelevant while
     * numNodes is 1.
     */
    bool interNodeCodec = true;
    /**
     * LUT residency tracking (serving/residency.h).  Disabled (the
     * default) reproduces the pre-residency cost model: tables are never
     * charged nor retained.  Any other policy threads every submitted
     * GEMM through the session's ResidencyManager: a first-touch GEMM
     * pays an explicit host -> PIM table broadcast (Phase::LutBroadcast)
     * and later requests find the tables MRAM-resident and pay nothing —
     * so InferenceReport distinguishes cold-start from steady-state
     * serving.  Functional values are identical either way.
     */
    ResidencyPolicy residencyPolicy = ResidencyPolicy::Disabled;
    /**
     * Per-unit (per DPU / bank) MRAM byte budget for resident table
     * sets; 0 uses the backend's Backend::memoryProfile() default.
     * Ignored while residencyPolicy is Disabled.
     */
    std::uint64_t mramBudgetBytes = 0;
    /**
     * Memoize prepared operands (PreparedGemm, kernels/exec_engine.h)
     * in the session's PlanCache for value-computing GEMM requests, so
     * repeated requests against the same weights stop re-packing them
     * and rebuilding LUT tables.  Results are bit-identical either way.
     */
    bool prepareOperands = true;
    /**
     * Fan the functional pass of each GEMM into output tiles executed
     * on this session's worker pool (idle workers help finish the
     * request currently executing).  Tiles write disjoint output ranges
     * with a fixed per-element accumulation order, so results are
     * bit-identical to serial execution.
     */
    bool tileParallel = true;
    /**
     * Vectorize the fused lookup-accumulate inner loops
     * (ExecOptions::simd) on every GEMM this session executes.
     * Bit-exact either way — the vectorized dimension is independent
     * output elements, never the reduction — so this is purely a
     * throughput knob; false pins the scalar loops (the bench
     * baseline).
     */
    bool simdKernels = true;
    /**
     * Deterministic fault injector (serving/fault.h) this session
     * consults on every execute; shared with the scheduler and token
     * engine so all layers see one health registry.  nullptr (the
     * default) serves fault-free with zero overhead.  Not owned: the
     * injector must outlive the session, its topology must match the
     * session's, and its scheduled faults must not fire after the
     * session is destroyed (the session registers a rank-loss listener
     * that touches its residency manager).  With an injector set,
     * transient execute failures retry under `faultPolicy` with capped
     * exponential virtual-time backoff, dead/quarantined ranks re-home
     * or re-shard work (failover) or shed it (FaultShedError surfaces
     * at wait()), and all retry/backoff cost is charged as modeled
     * seconds into the request's TimingReport — never a wall-clock
     * sleep.
     */
    FaultInjector* faultInjector = nullptr;
    /** Retry / quarantine / failover policy; used only with an injector. */
    FaultPolicy faultPolicy;
};

/**
 * Per-submission knobs (the defaults reproduce the un-hinted API).
 * The SLO-aware scheduler (serving/scheduler.h) is the main caller:
 * its placement decisions pin requests to the rank its virtual-time
 * model chose.
 */
struct SubmitOptions {
    /**
     * Rank queue (and residency home rank) this request is pinned to;
     * -1 lets the session pick (continuous batching) and — for GEMMs on
     * a numRanks > 1 session — shard the GEMM across the ranks.  A
     * pinned request executes *whole* (unsharded) on that rank: the
     * data-parallel serving regime, where each rank is a replica
     * serving complete requests.
     */
    int rank = -1;
};

/**
 * Compile-once / submit-many serving sessions on one backend.
 *
 * Thread-safety: all public methods are safe to call concurrently; the
 * execution itself runs on the session's worker pool (backends are
 * stateless and const, the PlanCache is internally locked).
 */
class InferenceSession
{
  public:
    /** Handle for one submitted request (consumed by wait()). */
    using RequestId = std::uint64_t;

    /** A planned GEMM node of a compiled workload. */
    using PlanNode = PlannedGemm;

    /** A workload compiled into a plan graph (backend-specific). */
    struct CompiledWorkload {
        WorkloadSpec spec;           ///< the phase this graph executes
        QuantConfig quant{ValueCodec::signedBinary(),
                          ValueCodec::signedBinary()}; ///< quantization
        DesignPoint design = DesignPoint::LoCaLut; ///< design point
        PlanOverrides overrides;     ///< planner overrides in effect
        std::vector<PlanNode> nodes; ///< one per distinct GEMM shape
        /** Sharded plan graph; populated instead of `nodes` when the
         * session compiles with a sharded topology. */
        std::vector<ShardedGemm> shardedNodes;
        unsigned numRanks = 1;       ///< ranks per node the cut was for
        unsigned numNodes = 1;       ///< nodes the cut was laid across
        /** Placement regime the sharded nodes realize (meaningless on a
         * single node; pipeline stages set ShardedGemm::node). */
        NodePlacement nodePlacement = NodePlacement::TensorParallel;
        double hostOps = 0;          ///< non-GEMM host work (scalar ops)
        /** Per-request inter-node activation traffic of a pipeline-
         * parallel layout: every stage boundary crossing of every pass
         * (decode: every step), priced at the backend's inter-node
         * tier.  All zero for tensor-parallel or single-node layouts. */
        double pipelineHopBytes = 0;
        double pipelineHopSeconds = 0; ///< modeled hop seconds per request
        double pipelineHopJoules = 0;  ///< modeled hop Joules per request
        /** Identity of the backend that compiled the plans; a session
         * refuses to execute another backend's workload. */
        std::string backendName;
        std::uint64_t backendFingerprint = 0; ///< device-config hash

        /** True when this workload was cut across ranks. */
        bool sharded() const { return !shardedNodes.empty(); }

        /** Modeled seconds spent on the PIM GEMMs per request (sum of
         * per-node predictions; for quick admission-control estimates). */
        double predictedGemmSeconds() const;
    };

    /** Opens a session on @p backend under @p options. */
    explicit InferenceSession(BackendPtr backend,
                              const SessionOptions& options = {});

    /** Convenience: looks the backend up by registry name. */
    explicit InferenceSession(const std::string& backendName,
                              const SessionOptions& options = {});

    /** Drains outstanding requests, then stops the workers. */
    ~InferenceSession();

    InferenceSession(const InferenceSession&) = delete; ///< non-copyable
    InferenceSession&
    operator=(const InferenceSession&) = delete; ///< non-copyable

    /** The device model requests execute on. */
    const Backend& backend() const { return *backend_; }
    /** The options the session was opened with. */
    const SessionOptions& options() const { return options_; }
    /** The node x ranks-per-node grid the session models. */
    Topology topology() const
    {
        return {options_.numNodes, options_.numRanks};
    }
    /** Flat ranks across the whole grid (one work queue each). */
    unsigned totalRanks() const
    {
        return static_cast<unsigned>(rankQueues_.size());
    }
    /** Worker threads serving the rank queues. */
    unsigned workerCount() const;

    /** Plans one GEMM through the session cache (memoized). */
    GemmPlan plan(const GemmProblem& problem, DesignPoint design,
                  const PlanOverrides& overrides = {});

    /**
     * Cuts and plans one GEMM across the session's ranks (memoized);
     * @p align forces shard boundaries onto multiples (head-parallel).
     */
    ShardPlan shardPlan(const GemmProblem& problem, DesignPoint design,
                        const PlanOverrides& overrides = {},
                        std::size_t align = 1);

    /** The session's plan / shard-plan / prepared-operand memo. */
    PlanCache& planCache() { return cache_; }
    /** Hit/miss counters of the session's PlanCache. */
    PlanCache::Stats planCacheStats() const { return cache_.stats(); }

    /** The session's residency manager; nullptr while
     * SessionOptions::residencyPolicy is Disabled. */
    ResidencyManager* residency() const { return residency_.get(); }

    /** Zero-valued stats while residency is disabled. */
    ResidencyStats residencyStats() const
    {
        return residency_ ? residency_->stats() : ResidencyStats{};
    }

    // ------------------------------------------------- GEMM requests
    /** Enqueues one GEMM; returns immediately. */
    RequestId submit(GemmProblem problem, DesignPoint design,
                     const PlanOverrides& overrides = {});

    /** Same, overriding the session's computeValues default. */
    RequestId submit(GemmProblem problem, DesignPoint design,
                     bool computeValues,
                     const PlanOverrides& overrides = {});

    /**
     * Same, under explicit SubmitOptions: a pinned rank executes the
     * GEMM whole (unsharded) on that rank's queue and homes its LUT
     * residency there.
     */
    RequestId submit(GemmProblem problem, DesignPoint design,
                     bool computeValues, const PlanOverrides& overrides,
                     const SubmitOptions& submitOptions);

    /**
     * Blocks until the GEMM request @p id completes and returns its
     * result (consuming it; a second wait on the same id fatals).
     * Rethrows any error the request raised.
     */
    GemmResult wait(RequestId id);

    // --------------------------------------------- workload requests
    /**
     * Compiles one workload phase into a plan graph: every distinct GEMM
     * shape is planned once (through the cache) and bound to its repeat
     * count; the non-GEMM host work is pre-aggregated.
     */
    CompiledWorkload compile(const WorkloadSpec& spec,
                             const QuantConfig& quant, DesignPoint design,
                             const PlanOverrides& overrides = {});

    /**
     * compile() without the rank cut, regardless of the session's
     * numRanks: every GEMM is planned whole.  The resulting workload is
     * valid on any session of this backend — it occupies a single rank
     * queue per request, which is how the SLO scheduler serves whole
     * requests data-parallel across ranks (one replica per rank)
     * instead of tensor-parallel across all of them.
     */
    CompiledWorkload compileUnsharded(const WorkloadSpec& spec,
                                      const QuantConfig& quant,
                                      DesignPoint design,
                                      const PlanOverrides& overrides = {});

    /**
     * Steady-state per-request cost of @p workload on this session's
     * backend — the admission-control projection (exactly what run()
     * reports, minus residency broadcasts).
     */
    WorkloadCostProjection projectCost(const CompiledWorkload& workload)
        const;

    /** Enqueues one compiled-workload execution; returns immediately. */
    RequestId submit(CompiledWorkload workload);

    /**
     * Same, under explicit SubmitOptions: a pinned (necessarily
     * unsharded) workload executes whole on that rank's queue and homes
     * its LUT residency there.
     */
    RequestId submit(CompiledWorkload workload,
                     const SubmitOptions& submitOptions);

    /** Blocks until workload request @p id completes (consuming it). */
    InferenceReport waitReport(RequestId id);

    /** Executes a compiled workload synchronously on the calling thread. */
    InferenceReport run(const CompiledWorkload& workload) const;

    // ------------------------------------------------------- control
    /** Blocks until every outstanding request has executed. */
    void drain();

    /** Requests submitted but not yet executed or waited on. */
    std::size_t pendingRequests() const;

  private:
    struct Request;

    /**
     * One schedulable unit on a rank queue: a whole request (unsharded
     * GEMM or compiled workload), the plan stage of a sharded GEMM
     * (cuts the problem and fans the shards out across the rank
     * queues), one shard of a sharded GEMM, or a functional tile batch
     * fanned out by an executing request (kTileTask; `tiles` set).
     */
    struct Task {
        Request* request = nullptr;
        int shard = kWholeTask; ///< kWholeTask/kPlanTask/kTileTask/index
        std::shared_ptr<TileBatch> tiles;
    };
    static constexpr int kWholeTask = -1;
    static constexpr int kPlanTask = -2;
    static constexpr int kTileTask = -3;

    /**
     * TileExecutor over this session's worker pool: run() parks one
     * claim task per rank queue (at the front — tiles finish the GEMM
     * someone is already executing), participates in the batch on the
     * calling thread, and blocks until it settles.  Whole-batch
     * completion is what bounds the wait, so a submitter with no free
     * workers still finishes on its own.
     */
    class PoolTiles final : public TileExecutor
    {
      public:
        explicit PoolTiles(InferenceSession* session) : session_(session) {}

        unsigned concurrency() const override
        {
            return session_->workerCount();
        }

        void run(std::size_t tiles,
                 const std::function<void(std::size_t)>& fn) const override
        {
            session_->runTileBatch(tiles, fn);
        }

      private:
        InferenceSession* session_;
    };

    CompiledWorkload compileWith(const WorkloadSpec& spec,
                                 const QuantConfig& quant,
                                 DesignPoint design,
                                 const PlanOverrides& overrides,
                                 unsigned numRanks, unsigned numNodes);
    InferenceReport runAt(const CompiledWorkload& workload,
                          unsigned homeRank) const;
    RequestId enqueue(std::unique_ptr<Request> request,
                      const SubmitOptions& submitOptions);
    bool anyQueuedLocked() const;
    unsigned pickRankLocked();
    Task popTaskLocked(unsigned preferredRank);
    void workerLoop(unsigned workerIndex);
    void runTask(const Task& task);
    void runPlanStage(Request& request);
    void runShard(Request& request, unsigned shardIndex);
    void runWhole(Request& request);
    void runTileBatch(std::size_t tiles,
                      const std::function<void(std::size_t)>& fn);
    /** Execution options for one request (tiles + arena; the prepared
     * operand is looked up per call site). */
    ExecOptions execOptions(bool computeValues) const;
    void finishRequest(Request& request);
    std::unique_ptr<Request> take(RequestId id, bool wantWorkload);

    BackendPtr backend_;
    SessionOptions options_;
    PlanCache cache_;
    PoolTiles poolTiles_{this};
    /** Created when options_.residencyPolicy != Disabled; internally
     * locked, so const execution paths share it across workers. */
    std::unique_ptr<ResidencyManager> residency_;

    mutable std::mutex mutex_;
    std::condition_variable queueCv_; ///< wakes workers
    std::condition_variable doneCv_;  ///< wakes waiters
    /** Per-rank work queues; the scheduler packs queued requests into
     * them (continuous batching) and sharded GEMMs fan one shard task
     * onto each rank's queue.  Workers prefer their own rank's queue and
     * steal from the others when it runs dry. */
    std::vector<std::deque<Task>> rankQueues_;
    unsigned nextRank_ = 0; ///< rotates whole-task placement on ties
    std::unordered_map<RequestId, std::unique_ptr<Request>> requests_;
    RequestId nextId_ = 1;
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

} // namespace localut

#endif // LOCALUT_SERVING_SESSION_H_
