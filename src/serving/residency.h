#ifndef LOCALUT_SERVING_RESIDENCY_H_
#define LOCALUT_SERVING_RESIDENCY_H_

/**
 * @file
 * The LUT residency manager: MRAM table capacity as a first-class,
 * cost-charged serving resource.
 *
 * The paper's whole thesis trades LUT *capacity* for *computation*, but a
 * serving loop that re-dispatches the same GEMMs every decode step only
 * enjoys that tradeoff if the tables are actually resident: the first
 * execution of a (layer, LutShape, DesignPoint) table set must broadcast
 * the canonical + reordering (or op-packed) tables host -> PIM, and every
 * later execution should find them already in MRAM and skip the transfer.
 * The ResidencyManager models exactly that:
 *
 *  - Per logical rank it tracks an MRAM byte budget — from
 *    Backend::memoryProfile() (per-unit LUT bytes; every DPU/bank of a
 *    rank holds its own copy of each resident set, so residency is
 *    tracked in per-copy bytes) or overridden by
 *    SessionOptions::mramBudgetBytes — and the table sets currently
 *    resident against it, sized by the capacity model
 *    (localutBytes() / opPackedLutBytes() in lut/capacity.h).
 *  - acquire() on a missing set charges an explicit host -> PIM broadcast
 *    (Phase::LutBroadcast; seconds/Joules from the backend's memory
 *    profile, analogous to the sharded collective charging) and admits
 *    the set; on a hit it charges nothing.  A 32-step decode loop thus
 *    pays table transfer once per layer instead of 32x.
 *  - When a rank's budget is full, eviction is cost-model-driven: the
 *    resident set with the lowest (rebroadcast cost x observed reuse)
 *    score goes first (ResidencyPolicy::CostAware); an LRU policy exists
 *    as a comparison baseline.
 *  - Sharded executions compose naturally: each shard's table set
 *    consumes its own rank's budget, and the ShardSpec is part of the
 *    table-set key so re-cut tables never alias.
 *
 * Residency only ever affects *costs* (timing, energy, link bytes) —
 * never functional values: a session with residency enabled is bit-exact
 * with one where it is disabled, on every backend (the differential
 * invariant tests/test_residency.cc pins).
 */

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "backend/backend.h"
#include "serving/sharding.h"

namespace localut {

/** How the manager behaves when a table set must be admitted. */
enum class ResidencyPolicy {
    /** No tracking: nothing is charged and nothing is resident (the
     * pre-residency cost model; the serving default for back-compat). */
    Disabled,
    /** Evict the resident set with the lowest
     * (rebroadcast cost x observed reuse) score. */
    CostAware,
    /** Evict the least-recently-used set (comparison baseline). */
    Lru,
};

/** Policy name for reports ("disabled" / "cost-aware" / "lru"). */
const char* residencyPolicyName(ResidencyPolicy policy);

/**
 * Identity of one table set: the owning GEMM (shape + role scope), its
 * quantization config, design point, resolved packing degree, and the
 * shard cut.  Two GEMMs with the same shape but different roles (e.g. the
 * QKV and output projections of a transformer layer) keep distinct table
 * sets — tables are stored interleaved with each owner's weight
 * partitions, the way a real deployment fuses them.
 */
struct TableSetKey {
    std::string scope;             ///< owner id ("qkv", "ffn_up", ...)
    std::size_t m = 0, k = 0, n = 0; ///< owning GEMM shape
    QuantConfig config{ValueCodec::signedBinary(),
                       ValueCodec::signedBinary()}; ///< quantization
    DesignPoint design = DesignPoint::LoCaLut; ///< design point
    unsigned p = 1;                ///< resolved packing degree (sizing)
    ShardSpec shard;               ///< default = unsharded
    /** Per-layer instance count the set aggregates: two owner groups
     * that agree on everything else but span different layer counts are
     * different table sets (different bytes, different broadcast). */
    std::uint64_t instances = 1;
    /**
     * The rank an *unsharded* acquisition places the set on (data-
     * parallel serving keeps one replica of a layer's tables per rank,
     * so rank 0's copy and rank 2's copy are distinct sets).  Always 0
     * for sharded sets (their ranks live in the per-shard ledger).
     */
    unsigned homeRank = 0;

    bool operator==(const TableSetKey&) const = default; ///< field-wise
};

/** Hash over every TableSetKey field. */
struct TableSetKeyHash {
    /** Combines every key field into one hash. */
    std::size_t operator()(const TableSetKey& key) const;
};

/**
 * Bytes of the table set @p plan executes from, per unit copy: the
 * capacity model's count for the plan's LUT variant (canonical +
 * reordering for LoCaLUT / OP+LC+RC, canonical for OP+LC, op-packed for
 * OP).  Zero for designs without host-built tables (NaivePIM computes,
 * LTC builds its tables on-device).
 */
std::uint64_t tableSetBytes(const GemmPlan& plan);

/**
 * The residency identity an unsharded acquire() of @p plan would use
 * (scoped by @p scope, aggregating @p instances per-layer copies, homed
 * on @p homeRank).  Exposed so serving layers — the SLO scheduler's
 * cold-start-aware placement — can reason about table-set identity
 * without mutating the manager.
 */
TableSetKey tableSetKeyFor(const GemmPlan& plan,
                           const std::string& scope = "",
                           double instances = 1.0, unsigned homeRank = 0);

/** The cost acquire() charged for one table-set access. */
struct ResidencyCharge {
    bool hit = true;   ///< tables were resident; nothing was transferred
    double bytes = 0;  ///< host -> PIM broadcast bytes (0 on a hit)
    double seconds = 0; ///< modeled broadcast seconds (0 on a hit)
    double joules = 0;  ///< modeled broadcast Joules (0 on a hit)

    /** Folds the broadcast into a result's reports (and, when @p cost is
     * given, its Phase::LutBroadcast link-byte accounting). */
    void apply(TimingReport& timing, EnergyReport& energy,
               KernelCost* cost = nullptr) const;
};

/** Counters for serving code and tests. */
struct ResidencyStats {
    std::uint64_t hits = 0;          ///< acquires that found tables resident
    std::uint64_t misses = 0;        ///< acquires that broadcast
    std::uint64_t evictions = 0;     ///< table sets pushed out of MRAM
    std::uint64_t rebroadcasts = 0;  ///< misses on previously-evicted sets
    std::uint64_t tableSets = 0;     ///< currently resident sets
    double broadcastBytes = 0;       ///< total host -> PIM table bytes
    double broadcastSeconds = 0;     ///< total modeled broadcast time

    /** Fraction of acquires that found tables resident. */
    double
    hitRate() const
    {
        const std::uint64_t lookups = hits + misses;
        return lookups == 0 ? 0.0
                            : static_cast<double>(hits) /
                                  static_cast<double>(lookups);
    }
};

/**
 * Tracks which LUT table sets are MRAM-resident on each logical rank and
 * charges host -> PIM broadcasts for the ones that are not.
 *
 * Thread-safety: acquire() and the accessors are internally locked; the
 * InferenceSession's worker pool calls them concurrently.  Under
 * concurrent acquisition of a *tight* budget the eviction order depends
 * on arrival order — costs may differ run to run — but functional values
 * never do (the manager never touches them).
 */
class ResidencyManager
{
  public:
    /**
     * @p budgetBytesPerUnit overrides the backend memory profile's
     * per-unit LUT budget when non-zero.  @p numRanks mirrors the
     * session's logical ranks (each gets its own ledger).
     */
    ResidencyManager(BackendPtr backend, unsigned numRanks,
                     std::uint64_t budgetBytesPerUnit,
                     ResidencyPolicy policy);

    /** The eviction / tracking policy in force. */
    ResidencyPolicy policy() const { return policy_; }
    /** Per-unit MRAM byte budget each rank's ledger enforces. */
    std::uint64_t budgetBytesPerUnit() const { return budget_; }
    /** Logical ranks tracked (one ledger each). */
    unsigned numRanks() const;

    /**
     * Ensures the table set of @p plan (scoped by @p scope; @p instances
     * per-layer copies, e.g. one per transformer layer the owning
     * workload node aggregates) is resident on rank @p homeRank —
     * rank 0 by default; the scheduler passes its placement rank so
     * data-parallel replicas consume their own rank's budget — charging
     * a broadcast when it is not.  With ResidencyPolicy::Disabled this
     * returns a zero charge every time (the pre-residency model: tables
     * are neither charged nor retained).
     */
    ResidencyCharge acquire(const GemmPlan& plan,
                            const std::string& scope = "",
                            double instances = 1.0,
                            unsigned homeRank = 0);

    /** Sharded counterpart: shard i's table set consumes rank i's
     * budget; the broadcast moves every rank's tables (scatter over the
     * rank-parallel broadcast link, one launch). */
    ResidencyCharge acquire(const ShardPlan& plan,
                            const std::string& scope = "",
                            double instances = 1.0);

    /** A consistent copy of the hit/miss/eviction counters. */
    ResidencyStats stats() const;

    /**
     * True when @p key's table set is currently MRAM-resident (always
     * false under ResidencyPolicy::Disabled).  Const and side-effect
     * free: no use is counted, nothing is charged — the query the
     * scheduler's cold-start-aware placement runs per candidate rank.
     */
    bool isResident(const TableSetKey& key) const;

    /**
     * The modeled host -> PIM broadcast seconds of moving @p bytes of
     * tables (one launch + bytes over the rank-parallel broadcast
     * link) — what a miss on a set of that size would charge.
     */
    double broadcastSeconds(std::uint64_t bytes) const;

    /** Per-copy bytes currently resident on @p rank. */
    std::uint64_t residentBytes(unsigned rank) const;

    /** Drops all residency (a device reset).  Counters and per-set
     * history survive, so post-reset misses on previously-broadcast
     * sets still count as re-broadcasts. */
    void clear();

  private:
    struct TableSet {
        /** (rank, per-copy bytes x instances) this set occupies. */
        std::vector<std::pair<unsigned, std::uint64_t>> rankBytes;
        double broadcastBytes = 0;   ///< rebroadcast size (all ranks)
        double broadcastSeconds = 0; ///< rebroadcast cost (the score input)
        double broadcastJoules = 0;
        std::uint64_t uses = 0;      ///< touches while resident (reuse)
        std::uint64_t lastUse = 0;   ///< logical clock (LRU)
        std::uint64_t admitOrder = 0;///< deterministic tie-break
        bool resident = false;
        bool everResident = false;   ///< a later miss is a re-broadcast
    };

    ResidencyCharge acquireLocked(TableSetKey key,
                                  std::vector<std::pair<unsigned,
                                                        std::uint64_t>>
                                      rankBytes);
    bool makeRoomLocked(const TableSet& incoming);
    void evictLocked(TableSet& victim);
    double scoreLocked(const TableSet& set) const;

    BackendPtr backend_;
    MemoryProfile profile_;
    std::uint64_t budget_ = 0; ///< per-unit bytes each rank may hold
    ResidencyPolicy policy_;

    mutable std::mutex mutex_;
    std::unordered_map<TableSetKey, TableSet, TableSetKeyHash> sets_;
    std::vector<std::uint64_t> residentBytes_; ///< per-rank ledgers
    std::uint64_t clock_ = 0;
    std::uint64_t admissions_ = 0;
    ResidencyStats stats_;
};

} // namespace localut

#endif // LOCALUT_SERVING_RESIDENCY_H_
