#ifndef LOCALUT_SERVING_RESIDENCY_H_
#define LOCALUT_SERVING_RESIDENCY_H_

/**
 * @file
 * The MRAM residency manager: table capacity *and* KV-cache state as
 * first-class, cost-charged serving resources.
 *
 * The paper's whole thesis trades LUT *capacity* for *computation*, but a
 * serving loop that re-dispatches the same GEMMs every decode step only
 * enjoys that tradeoff if the tables are actually resident: the first
 * execution of a (layer, LutShape, DesignPoint) table set must broadcast
 * the canonical + reordering (or op-packed) tables host -> PIM, and every
 * later execution should find them already in MRAM and skip the transfer.
 * The ResidencyManager models exactly that:
 *
 *  - Per logical rank it tracks an MRAM byte budget — from
 *    Backend::memoryProfile() (per-unit LUT bytes; every DPU/bank of a
 *    rank holds its own copy of each resident set, so residency is
 *    tracked in per-copy bytes) or overridden by
 *    SessionOptions::mramBudgetBytes — and the table sets currently
 *    resident against it, sized by the capacity model
 *    (localutBytes() / opPackedLutBytes() in lut/capacity.h).
 *  - acquire() on a missing set charges an explicit host -> PIM broadcast
 *    (Phase::LutBroadcast; seconds/Joules from the backend's memory
 *    profile, analogous to the sharded collective charging) and admits
 *    the set; on a hit it charges nothing.  A 32-step decode loop thus
 *    pays table transfer once per layer instead of 32x.
 *  - When a rank's budget is full, eviction is cost-model-driven: the
 *    resident set with the lowest (rebroadcast cost x observed reuse)
 *    score goes first (ResidencyPolicy::CostAware); an LRU policy exists
 *    as a comparison baseline.
 *  - Sharded executions compose naturally: each shard's table set
 *    consumes its own rank's budget, and the ShardSpec is part of the
 *    table-set key so re-cut tables never alias.
 *
 * Token-level serving (serving/token_engine.h) adds a second resource
 * class to the same per-rank budgets: the **KV-cache** of each decode
 * stream.  A stream's KV state (KvCacheKey per stream x layer; sized
 * from model dims x current context length, growing by one token per
 * decode step) is bank-interleaved across a rank's units, so b raw
 * bytes of KV occupy ceil(b / unitsPerRank) per-unit bytes against the
 * same budget LUT table sets replicate into.  acquireKv() charges the
 * host -> PIM write of the newly appended tokens each step; under
 * pressure the manager arbitrates *across classes* with the same
 * cost-driven score: evicting a cold LUT set costs a future
 * Phase::LutBroadcast rebroadcast, spilling a stream's KV costs its
 * PIM -> host writeback now plus the host -> PIM refill its next step
 * must pay — whichever debt is smaller goes first.  A stream whose KV
 * alone exceeds the rank budget is shed (KvCharge::shed), which the
 * token engine surfaces as a capacity shed.
 *
 * Residency only ever affects *costs* (timing, energy, link bytes) —
 * never functional values: a session with residency enabled is bit-exact
 * with one where it is disabled, on every backend (the differential
 * invariant tests/test_residency.cc pins).
 */

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "backend/backend.h"
#include "common/topology.h"
#include "serving/sharding.h"

namespace localut {

class FaultInjector;

/** How the manager behaves when a table set must be admitted. */
enum class ResidencyPolicy {
    /** No tracking: nothing is charged and nothing is resident (the
     * pre-residency cost model; the serving default for back-compat). */
    Disabled,
    /** Evict the resident set with the lowest
     * (rebroadcast cost x observed reuse) score. */
    CostAware,
    /** Evict the least-recently-used set (comparison baseline). */
    Lru,
};

/** Policy name for reports ("disabled" / "cost-aware" / "lru"). */
const char* residencyPolicyName(ResidencyPolicy policy);

/**
 * Identity of one table set: the owning GEMM (shape + role scope), its
 * quantization config, design point, resolved packing degree, and the
 * shard cut.  Two GEMMs with the same shape but different roles (e.g. the
 * QKV and output projections of a transformer layer) keep distinct table
 * sets — tables are stored interleaved with each owner's weight
 * partitions, the way a real deployment fuses them.
 */
struct TableSetKey {
    std::string scope;             ///< owner id ("qkv", "ffn_up", ...)
    std::size_t m = 0, k = 0, n = 0; ///< owning GEMM shape
    QuantConfig config{ValueCodec::signedBinary(),
                       ValueCodec::signedBinary()}; ///< quantization
    DesignPoint design = DesignPoint::LoCaLut; ///< design point
    unsigned p = 1;                ///< resolved packing degree (sizing)
    ShardSpec shard;               ///< default = unsharded
    /** Per-layer instance count the set aggregates: two owner groups
     * that agree on everything else but span different layer counts are
     * different table sets (different bytes, different broadcast). */
    std::uint64_t instances = 1;
    /**
     * The rank an *unsharded* acquisition places the set on (data-
     * parallel serving keeps one replica of a layer's tables per rank,
     * so rank 0's copy and rank 2's copy are distinct sets).  Always 0
     * for sharded sets (their ranks live in the per-shard ledger).
     */
    unsigned homeRank = 0;

    bool operator==(const TableSetKey&) const = default; ///< field-wise
};

/** Hash over every TableSetKey field. */
struct TableSetKeyHash {
    /** Combines every key field into one hash. */
    std::size_t operator()(const TableSetKey& key) const;
};

/**
 * Bytes of the table set @p plan executes from, per unit copy: the
 * capacity model's count for the plan's LUT variant (canonical +
 * reordering for LoCaLUT / OP+LC+RC, canonical for OP+LC, op-packed for
 * OP).  Zero for designs without host-built tables (NaivePIM computes,
 * LTC builds its tables on-device).
 */
std::uint64_t tableSetBytes(const GemmPlan& plan);

/**
 * The residency identity an unsharded acquire() of @p plan would use
 * (scoped by @p scope, aggregating @p instances per-layer copies, homed
 * on @p homeRank).  Exposed so serving layers — the SLO scheduler's
 * cold-start-aware placement — can reason about table-set identity
 * without mutating the manager.
 */
TableSetKey tableSetKeyFor(const GemmPlan& plan,
                           const std::string& scope = "",
                           double instances = 1.0, unsigned homeRank = 0);

/** The cost acquire() charged for one table-set access. */
struct ResidencyCharge {
    bool hit = true;   ///< tables were resident; nothing was transferred
    /** Host -> PIM broadcast bytes charged (0 on a hit): intra-tier raw
     * bytes plus the *compressed* inter-node bytes — what actually
     * crossed each tier's link. */
    double bytes = 0;
    double seconds = 0; ///< modeled broadcast seconds (0 on a hit)
    double joules = 0;  ///< modeled broadcast Joules (0 on a hit)
    /** Pre-codec table bytes bound for ranks on remote nodes (the
     * inter-node share of the broadcast before compression). */
    double interNodeRawBytes = 0;
    /** Post-codec bytes that crossed the inter-node tier (== the raw
     * share when the codec is disabled). */
    double interNodeBytes = 0;
    /** Host-side encode time of the inter-node share, already included
     * in seconds (0 when the codec is off or nothing crossed nodes). */
    double codecSeconds = 0;
    /** Raw KV-cache bytes the admission spilled PIM -> host to make
     * room (cross-class arbitration; 0 when no stream was spilled). */
    double kvSpillBytes = 0;
    double kvSpillSeconds = 0; ///< modeled writeback seconds of the spill
    double kvSpillJoules = 0;  ///< modeled writeback Joules of the spill

    /** Folds the broadcast into a result's reports (and, when @p cost is
     * given, its Phase::LutBroadcast link-byte accounting); any KV
     * spill the admission forced lands under Phase::LinkOut. */
    void apply(TimingReport& timing, EnergyReport& energy,
               KernelCost* cost = nullptr) const;
};

/**
 * Identity of one stream x layer slice of MRAM-resident KV-cache state.
 * The layers of one stream gang together — a decode step touches every
 * layer's K and V, so spill/refill granularity is the whole stream —
 * but the per-layer identity is what queries and tests reason about.
 */
struct KvCacheKey {
    std::uint64_t stream = 0; ///< token-engine stream id
    unsigned layer = 0;       ///< transformer layer index

    bool operator==(const KvCacheKey&) const = default; ///< field-wise
};

/** Hash over both KvCacheKey fields. */
struct KvCacheKeyHash {
    /** Combines stream id and layer into one hash. */
    std::size_t operator()(const KvCacheKey& key) const;
};

/** The cost acquireKv() charged for one decode-step KV access. */
struct KvCharge {
    /** The stream's KV alone can never fit the rank budget: the caller
     * must shed the stream (its state has been released). */
    bool shed = false;
    /** The existing context had been spilled and was transferred back
     * host -> PIM before appending (counted in appendBytes). */
    bool refill = false;
    /** Raw host -> PIM bytes moved: the newly appended tokens plus any
     * refill of previously spilled context. */
    double appendBytes = 0;
    double appendSeconds = 0; ///< modeled host -> PIM transfer seconds
    /** Raw PIM -> host bytes of *other* streams spilled to make room. */
    double spillBytes = 0;
    double spillSeconds = 0;  ///< modeled writeback seconds of the spills
    double joules = 0;        ///< modeled Joules of all KV movement

    /** Total modeled transfer seconds this access charged. */
    double seconds() const { return appendSeconds + spillSeconds; }

    /** True when no bytes moved (context resident, no growth). */
    bool hit() const
    {
        return !shed && appendBytes <= 0 && spillBytes <= 0;
    }

    /** Folds the KV traffic into a result's reports: appends/refills as
     * host -> PIM activation-state transfer (Phase::LinkActIn), spills
     * as PIM -> host writeback (Phase::LinkOut). */
    void apply(TimingReport& timing, EnergyReport& energy) const;
};

/** Counters for serving code and tests. */
struct ResidencyStats {
    std::uint64_t hits = 0;          ///< acquires that found tables resident
    std::uint64_t misses = 0;        ///< acquires that broadcast
    std::uint64_t evictions = 0;     ///< table sets pushed out of MRAM
    std::uint64_t rebroadcasts = 0;  ///< misses on previously-evicted sets
    std::uint64_t tableSets = 0;     ///< currently resident sets
    double broadcastBytes = 0;       ///< total host -> PIM table bytes
    double broadcastSeconds = 0;     ///< total modeled broadcast time
    double broadcastIntraBytes = 0;  ///< share charged at the intra tier
    /** Pre-codec table bytes bound for remote nodes (raw inter share). */
    double broadcastInterRawBytes = 0;
    /** Post-codec bytes charged at the inter-node tier (== the raw
     * share when the codec is disabled; the CI gate pins raw/charged
     * >= 2 on OPT-class table sets with the codec on). */
    double broadcastInterBytes = 0;
    std::uint64_t kvStreams = 0;     ///< KV streams currently resident
    std::uint64_t kvSpills = 0;      ///< streams spilled out under pressure
    std::uint64_t kvRefills = 0;     ///< spilled streams transferred back
    std::uint64_t kvSheds = 0;       ///< streams whose KV could never fit
    std::uint64_t kvResidentBytes = 0; ///< raw KV bytes currently resident
    double kvMovedBytes = 0;         ///< host <-> PIM KV traffic (raw)
    double kvMovedSeconds = 0;       ///< modeled KV transfer seconds
    std::uint64_t rankInvalidations = 0; ///< invalidateRank() calls
    /** KV streams whose home rank died; their next acquireKv() may
     * re-home them to a survivor at full-refill cost. */
    std::uint64_t kvDisplaced = 0;
    std::uint64_t broadcastResends = 0; ///< corruption-forced resends

    /** Fraction of acquires that found tables resident. */
    double
    hitRate() const
    {
        const std::uint64_t lookups = hits + misses;
        return lookups == 0 ? 0.0
                            : static_cast<double>(hits) /
                                  static_cast<double>(lookups);
    }
};

/**
 * Tracks which LUT table sets are MRAM-resident on each logical rank and
 * charges host -> PIM broadcasts for the ones that are not.
 *
 * Thread-safety: acquire() and the accessors are internally locked; the
 * InferenceSession's worker pool calls them concurrently.  Under
 * concurrent acquisition of a *tight* budget the eviction order depends
 * on arrival order — costs may differ run to run — but functional values
 * never do (the manager never touches them).
 */
class ResidencyManager
{
  public:
    /**
     * @p budgetBytesPerUnit overrides the backend memory profile's
     * per-unit LUT budget when non-zero.  @p numRanks mirrors the
     * session's logical ranks (each gets its own ledger); equivalent to
     * the Topology constructor with a single node.
     */
    ResidencyManager(BackendPtr backend, unsigned numRanks,
                     std::uint64_t budgetBytesPerUnit,
                     ResidencyPolicy policy);

    /**
     * Hierarchical-topology constructor: one ledger per flat rank of
     * @p topology (node-major).  Table bytes bound for a rank on node
     * > 0 are charged at the inter-node tier of the backend's memory
     * profile instead of the local broadcast link — compressed through
     * the delta/RLE broadcast codec when @p interNodeCodec is set
     * (compressed bytes at the link rate plus a measured-ratio codec
     * time term).
     */
    ResidencyManager(BackendPtr backend, const Topology& topology,
                     std::uint64_t budgetBytesPerUnit,
                     ResidencyPolicy policy, bool interNodeCodec);

    /** The eviction / tracking policy in force. */
    ResidencyPolicy policy() const { return policy_; }
    /** Per-unit MRAM byte budget each rank's ledger enforces. */
    std::uint64_t budgetBytesPerUnit() const { return budget_; }
    /** Flat logical ranks tracked (one ledger each). */
    unsigned numRanks() const;
    /** The node x rank grid the ledgers are keyed by. */
    Topology topology() const { return topo_; }
    /** True when inter-node broadcasts are codec-compressed. */
    bool interNodeCodec() const { return codec_; }

    /**
     * Ensures the table set of @p plan (scoped by @p scope; @p instances
     * per-layer copies, e.g. one per transformer layer the owning
     * workload node aggregates) is resident on rank @p homeRank —
     * rank 0 by default; the scheduler passes its placement rank so
     * data-parallel replicas consume their own rank's budget — charging
     * a broadcast when it is not.  With ResidencyPolicy::Disabled this
     * returns a zero charge every time (the pre-residency model: tables
     * are neither charged nor retained).
     */
    ResidencyCharge acquire(const GemmPlan& plan,
                            const std::string& scope = "",
                            double instances = 1.0,
                            unsigned homeRank = 0);

    /** Sharded counterpart: shard i's table set consumes flat rank
     * (i + @p rankOffset)'s budget; the broadcast moves every rank's
     * tables (scatter over each node's rank-parallel broadcast link,
     * one launch; remote nodes' shares cross the inter-node tier).
     * @p rankOffset places a node-local cut onto a pipeline stage's
     * ranks (node * ranksPerNode) and is part of the set identity. */
    ResidencyCharge acquire(const ShardPlan& plan,
                            const std::string& scope = "",
                            double instances = 1.0,
                            unsigned rankOffset = 0);

    /**
     * Ensures @p stream's KV-cache — @p layers layers of
     * @p bytesPerTokenPerLayer raw bytes per token, covering
     * @p contextTokens tokens — is resident on rank @p rank, charging
     * the host -> PIM write of the newly appended tokens (and, when the
     * stream had been spilled, the refill of its whole context).  The
     * context is monotone: a decode step grows it by one token; an
     * unchanged, resident context is a free hit.  Under pressure other
     * streams' KV or LUT table sets are evicted cost-aware (see the
     * file comment); when the stream's KV alone exceeds the rank
     * budget, the stream is shed (state released, KvCharge::shed set).
     * With ResidencyPolicy::Disabled this returns a zero charge and
     * tracks nothing.
     */
    KvCharge acquireKv(std::uint64_t stream, unsigned rank,
                       unsigned layers,
                       std::uint64_t bytesPerTokenPerLayer,
                       std::uint64_t contextTokens);

    /** Drops @p stream's KV state (the stream finished or was shed);
     * discarding KV is free — nothing transfers. */
    void releaseKv(std::uint64_t stream);

    /** True when @p key's (stream, layer) KV slice is MRAM-resident
     * (always false under ResidencyPolicy::Disabled). */
    bool kvResident(const KvCacheKey& key) const;

    /** A consistent copy of the hit/miss/eviction counters. */
    ResidencyStats stats() const;

    /**
     * True when @p key's table set is currently MRAM-resident (always
     * false under ResidencyPolicy::Disabled).  Const and side-effect
     * free: no use is counted, nothing is charged — the query the
     * scheduler's cold-start-aware placement runs per candidate rank.
     */
    bool isResident(const TableSetKey& key) const;

    /**
     * The modeled host -> PIM broadcast seconds of moving @p bytes of
     * tables over the *intra-host* tier (one launch + bytes over the
     * rank-parallel broadcast link) — what a miss on a set of that size
     * homed on node 0 would charge.
     */
    double broadcastSeconds(std::uint64_t bytes) const;

    /**
     * Tier-aware projection of what a miss on @p plan's table set
     * (@p bytes total) homed on flat rank @p homeRank would charge:
     * the intra-host broadcast for node-0 ranks, the inter-node hop —
     * with the codec's measured ratio and encode time when enabled —
     * for ranks on remote nodes.  Const and side-effect free: the
     * scheduler's node-locality-aware placement runs this per
     * candidate rank.
     */
    double projectedBroadcastSeconds(const GemmPlan& plan,
                                     std::uint64_t bytes,
                                     unsigned homeRank) const;

    /** Per-node residency gauges (summed over the node's ranks). */
    struct NodeResidency {
        std::uint64_t lutBytes = 0; ///< resident LUT table bytes
        std::uint64_t kvBytes = 0;  ///< resident KV footprint bytes
    };

    /** One gauge entry per node of the topology, in node order. */
    std::vector<NodeResidency> nodeResidency() const;

    /** Per-unit bytes currently resident on @p rank across both
     * resource classes (lutBytes + kvBytes; the budget invariant is
     * residentBytes(rank) <= budgetBytesPerUnit() for every rank). */
    std::uint64_t residentBytes(unsigned rank) const;

    /** Per-unit bytes of LUT table sets resident on @p rank. */
    std::uint64_t lutBytes(unsigned rank) const;

    /** Per-unit footprint of KV-cache state resident on @p rank (raw
     * stream bytes are interleaved across the rank's units, so each
     * stream occupies ceil(raw / unitsPerRank) here). */
    std::uint64_t kvBytes(unsigned rank) const;

    /** Drops all residency (a device reset).  Counters and per-set
     * history survive, so post-reset misses on previously-broadcast
     * sets still count as re-broadcasts. */
    void clear();

    /** What invalidateRank() dropped or displaced. */
    struct RankLoss {
        std::uint64_t lutSetsDropped = 0;  ///< table sets losing residency
        std::uint64_t lutBytesDropped = 0; ///< per-unit LUT bytes freed
        /** KV streams homed on the lost rank, now displaced: their next
         * acquireKv() may name a survivor rank and pays a full refill
         * there (or sheds when no survivor has budget). */
        std::vector<std::uint64_t> displacedStreams;
    };

    /**
     * Invalidates everything resident on flat @p rank after it died:
     * every table set with bytes there loses residency whole (its next
     * acquire() re-broadcasts, charged as usual), and every KV stream
     * homed there becomes non-resident and *displaced* — the one case
     * acquireKv() accepts a changed rank, charging the survivor a full
     * context refill.  Wired as a FaultInjector rank-loss listener by
     * the session.  No-op under ResidencyPolicy::Disabled.
     */
    RankLoss invalidateRank(unsigned rank);

    /**
     * Attaches @p injector so broadcast charges model fabric faults:
     * inter-node shares are scaled by the target nodes' link-degrade
     * factor, and corrupted payloads (detected by the codec checksum)
     * charge deterministic re-sends.  Pass nullptr to detach.  The
     * injector must outlive the manager.
     */
    void setFaultInjector(FaultInjector* injector);

  private:
    struct TableSet {
        /** (rank, per-copy bytes x instances) this set occupies. */
        std::vector<std::pair<unsigned, std::uint64_t>> rankBytes;
        double broadcastBytes = 0;   ///< rebroadcast size (all tiers, charged)
        double broadcastSeconds = 0; ///< rebroadcast cost (the score input)
        double broadcastJoules = 0;
        double intraBytes = 0;       ///< node-0 share (intra tier, raw)
        double interRawBytes = 0;    ///< remote-node share before the codec
        double interBytes = 0;       ///< remote-node share as charged
        double codecSeconds = 0;     ///< encode time inside broadcastSeconds
        std::uint64_t uses = 0;      ///< touches while resident (reuse)
        std::uint64_t lastUse = 0;   ///< logical clock (LRU)
        std::uint64_t admitOrder = 0;///< deterministic tie-break
        /** Broadcast events for this set so far — the deterministic
         * per-payload salt for the injector's corruption decisions. */
        std::uint64_t sends = 0;
        bool resident = false;
        bool everResident = false;   ///< a later miss is a re-broadcast
    };

    /** One stream's ganged KV state (all layers live and die together). */
    struct KvEntry {
        unsigned rank = 0;            ///< home rank of the stream's KV
        unsigned layers = 1;          ///< layers ganged in this entry
        std::uint64_t bytesPerTokenPerLayer = 0; ///< raw bytes per token
        std::uint64_t tokens = 0;     ///< context tokens tracked
        bool resident = false;        ///< false = spilled to host
        /** Home rank died: the next acquireKv() may re-home the stream
         * to a different rank at full-refill cost. */
        bool displaced = false;
        std::uint64_t lastUse = 0;    ///< logical clock (LRU)
        std::uint64_t admitOrder = 0; ///< deterministic tie-break

        /** Raw bytes of the whole context across all layers. */
        std::uint64_t rawBytes() const
        {
            return layers * bytesPerTokenPerLayer * tokens;
        }
    };

    /** KV spill traffic one admission forced (folded into its charge). */
    struct SpillCost {
        double bytes = 0;   ///< raw PIM -> host bytes written back
        double seconds = 0; ///< modeled writeback seconds
        double joules = 0;  ///< modeled writeback Joules
    };

    ResidencyCharge acquireLocked(TableSetKey key,
                                  std::vector<std::pair<unsigned,
                                                        std::uint64_t>>
                                      rankBytes,
                                  double codecRatio, SpillCost& spill);
    bool makeRoomLocked(const TableSet& incoming, SpillCost& spill);
    /**
     * Frees rank capacity until @p needed more per-unit bytes fit on
     * @p rank, evicting the cheapest victim across both classes each
     * round (@p keepSet / @p keepStream are never victims); KV spill
     * traffic accumulates into @p spill.  False only when nothing
     * evictable remains.
     */
    bool makeRoomOnRankLocked(unsigned rank, std::uint64_t needed,
                              const TableSet* keepSet,
                              std::uint64_t keepStream, SpillCost& spill);
    void evictLocked(TableSet& victim);
    void spillLocked(KvEntry& victim, SpillCost& spill);
    double scoreLocked(const TableSet& set) const;
    /** Cost-aware: the spill + refill round trip a victim stream's
     * next decode step would pay; LRU: last use. */
    double scoreKvLocked(const KvEntry& entry) const;
    /** Per-unit footprint of @p rawBytes interleaved across a rank. */
    std::uint64_t kvFootprint(std::uint64_t rawBytes) const;
    /** Modeled seconds of moving @p rawBytes of KV over the host link. */
    double kvTransferSeconds(double rawBytes) const;
    /** The codec's measured ratio for @p plan's tables (1 when off). */
    double codecRatioFor(DesignPoint design, const QuantConfig& config,
                         unsigned p) const;
    /** True when any entry of @p rankBytes lives on a node > 0. */
    bool crossesNodes(
        const std::vector<std::pair<unsigned, std::uint64_t>>& rankBytes)
        const;

    BackendPtr backend_;
    MemoryProfile profile_;
    std::uint64_t budget_ = 0; ///< per-unit bytes each rank may hold
    ResidencyPolicy policy_;
    Topology topo_{1, 1};      ///< the node x rank grid of the ledgers
    bool codec_ = false;       ///< compress inter-node broadcasts
    FaultInjector* injector_ = nullptr; ///< optional fault source

    mutable std::mutex mutex_;
    std::unordered_map<TableSetKey, TableSet, TableSetKeyHash> sets_;
    std::unordered_map<std::uint64_t, KvEntry> kvStreams_;
    std::vector<std::uint64_t> residentBytes_; ///< per-rank LUT ledgers
    std::vector<std::uint64_t> kvFootprint_;   ///< per-rank KV ledgers
    std::uint64_t clock_ = 0;
    std::uint64_t admissions_ = 0;
    ResidencyStats stats_;
};

} // namespace localut

#endif // LOCALUT_SERVING_RESIDENCY_H_
