#ifndef LOCALUT_SERVING_SCHEDULER_H_
#define LOCALUT_SERVING_SCHEDULER_H_

/**
 * @file
 * The SLO-aware request scheduler: a request-level frontend above the
 * InferenceSession.  A ServingRequest — one GEMM or one compiled
 * workload, tagged with a priority lane (interactive vs batch) and a
 * deadline budget — is admitted, placed, and sequenced on a
 * *virtual-time* model of the session's ranks:
 *
 *  - **Projection.**  Service time comes from the PlanCache-memoized
 *    plans of the request (projectWorkloadCost() /
 *    projectShardedWorkloadCost(); timing-only execution of the same
 *    chargeCosts() accounting real execution reports), so admission
 *    projections and modeled service can never diverge.  With LUT
 *    residency enabled, the projection adds the host -> PIM table
 *    broadcast a cold rank would pay.
 *
 *  - **Placement.**  Unsharded requests occupy one rank (a data-
 *    parallel replica); the scheduler picks the rank with the earliest
 *    projected completion, preferring ranks whose ResidencyManager (or
 *    planned admissions) already hold the request's LUT table sets —
 *    cold-start-aware placement.  Sharded workloads gang across every
 *    rank.
 *
 *  - **Admission control.**  A request whose deadline cannot be met on
 *    any rank — projected queue delay + service exceeds the budget —
 *    is shed immediately, and a request that would push any *already
 *    admitted* deadline past its budget is shed too (an EDF
 *    schedulability check: admitted deadlines stay feasible under
 *    every later admission).  When every candidate rank's queue is at
 *    SchedulerOptions::maxQueuedPerRank, the request is rejected as
 *    saturated.
 *
 *  - **Sequencing.**  Ranks serve admitted requests non-preemptively:
 *    interactive before batch, earliest absolute deadline first within
 *    a lane, admission order on ties (SchedulerPolicy::Slo), or pure
 *    arrival order (SchedulerPolicy::Fifo, the comparison baseline
 *    bench/serving_load.cc measures against).  Virtual time advances
 *    via advanceTo() (an open-loop load generator drives it with each
 *    arrival); a decision is only finalized once the clock guarantees
 *    no earlier arrival can still show up.
 *
 * Execution is real: every admitted request is submitted to the
 * InferenceSession (pinned to its placement rank), values are bit-exact
 * with a direct submit() — the scheduler never touches them — and
 * wait() returns the session's result next to the virtual-time
 * RequestSample.  Telemetry (serving/telemetry.h) collects admission
 * counters and per-lane latency/queue-delay/service histograms.
 */

#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "serving/session.h"
#include "serving/telemetry.h"

namespace localut {

/** How the scheduler orders and admits requests. */
enum class SchedulerPolicy {
    /** Priority lanes + EDF + deadline-aware admission (the default). */
    Slo,
    /** Arrival order, least-loaded placement, no deadline awareness —
     * the comparison baseline. */
    Fifo,
};

/** Policy name for reports ("slo" / "fifo"). */
const char* schedulerPolicyName(SchedulerPolicy policy);

/** Scheduler-wide knobs. */
struct SchedulerOptions {
    /** Ordering / admission policy. */
    SchedulerPolicy policy = SchedulerPolicy::Slo;
    /**
     * Admission bound: a request is rejected as saturated when every
     * candidate rank already has this many admitted-but-unstarted
     * requests queued.
     */
    std::size_t maxQueuedPerRank = 64;
    /**
     * Prefer ranks that already hold (or have planned admissions for)
     * the request's LUT table sets, and charge the projected broadcast
     * on cold ranks.  Only meaningful when the session's residency
     * policy is enabled.
     */
    bool coldStartAware = true;
    /**
     * Fold the fault injector's health mask into admission and
     * placement: dead/quarantined ranks are never candidates, and a
     * request no live rank can serve is shed with
     * AdmissionOutcome::ShedFault.  False models a fault-oblivious
     * frontend (the bench baseline): placement ignores health and the
     * session sheds post-admission.  Only meaningful when the session
     * has a SessionOptions::faultInjector.
     */
    bool faultAware = true;
};

/** One request-level unit of serving work. */
struct ServingRequest {
    /** Priority lane. */
    DeadlineClass lane = DeadlineClass::Interactive;
    /**
     * Deadline budget in virtual seconds from arrival; +inf = none.
     * A non-positive budget can never be met and is shed on submit.
     */
    double deadlineSeconds = std::numeric_limits<double>::infinity();
    /**
     * Virtual arrival time; negative (the default) means "the
     * scheduler's current clock".  Arrivals must be monotone — earlier
     * times clamp to the clock.
     */
    double arrivalSeconds = -1.0;

    /** True when this request executes a compiled workload. */
    bool isWorkload = false;
    GemmProblem problem;   ///< GEMM request input
    DesignPoint design = DesignPoint::LoCaLut; ///< GEMM design point
    PlanOverrides overrides;                   ///< GEMM plan overrides
    bool computeValues = true;                 ///< GEMM functional pass
    InferenceSession::CompiledWorkload workload; ///< workload input

    /** Builds a GEMM request. */
    static ServingRequest gemm(
        GemmProblem problem, DesignPoint design,
        DeadlineClass lane = DeadlineClass::Interactive,
        double deadlineSeconds = std::numeric_limits<double>::infinity(),
        bool computeValues = true, const PlanOverrides& overrides = {});

    /** Builds a workload request. */
    static ServingRequest workloadRequest(
        InferenceSession::CompiledWorkload workload,
        DeadlineClass lane = DeadlineClass::Interactive,
        double deadlineSeconds = std::numeric_limits<double>::infinity());

    /** Builds a prefill-lane workload request (token-engine prompt
     * ingestion; the deadline is the stream's TTFT bound). */
    static ServingRequest prefill(
        InferenceSession::CompiledWorkload workload,
        double deadlineSeconds = std::numeric_limits<double>::infinity());

    /** Builds a decode-lane workload request (one token-engine decode
     * step; the deadline is the batch's earliest per-token bound —
     * decode outranks every other lane, see deadlineClassPriority()). */
    static ServingRequest decodeStep(
        InferenceSession::CompiledWorkload workload,
        double deadlineSeconds = std::numeric_limits<double>::infinity());
};

/** What submit() decided, with the projections behind the decision. */
struct AdmissionDecision {
    std::uint64_t id = 0;      ///< scheduler ticket (pass to wait())
    AdmissionOutcome outcome = AdmissionOutcome::Admitted; ///< verdict
    DeadlineClass lane = DeadlineClass::Interactive; ///< request lane
    /** Placement rank; kAllRanks for gang (sharded) requests.  Only
     * meaningful when admitted. */
    unsigned rank = 0;
    double arrivalSeconds = 0;   ///< resolved virtual arrival
    /** Projected service seconds (steady cost + projected broadcast). */
    double projectedServiceSeconds = 0;
    double projectedStartSeconds = 0;      ///< projected virtual start
    double projectedCompletionSeconds = 0; ///< projected completion
    /** Absolute virtual deadline; +inf when the request had none. */
    double deadlineSeconds = 0;

    /** True when the request was placed and will execute. */
    bool admitted() const
    {
        return outcome == AdmissionOutcome::Admitted;
    }
};

/** Everything wait() returns for one ticket. */
struct ServingResult {
    AdmissionDecision decision; ///< the admission verdict
    /** Final virtual-time accounting; only valid when admitted. */
    RequestSample sample;
    /** The executed GEMM result (admitted GEMM requests). */
    GemmResult gemm;
    /** The executed workload report (admitted workload requests). */
    InferenceReport report;
};

/**
 * SLO-aware request frontend over one InferenceSession.
 *
 * Thread-safety: submit()/advanceTo()/wait()/telemetry are safe to call
 * concurrently.  Virtual-time sequencing is deterministic for a
 * deterministic (single-submitter) trace; concurrent submitters
 * serialize in lock order.
 */
class RequestScheduler
{
  public:
    /** Placement marker: the request gangs across every rank. */
    static constexpr unsigned kAllRanks =
        std::numeric_limits<unsigned>::max();

    /**
     * @p session outlives the scheduler and executes the admitted
     * requests.  @p telemetry receives the admission and completion
     * records; nullptr uses an internally owned registry.
     */
    explicit RequestScheduler(InferenceSession& session,
                              const SchedulerOptions& options = {},
                              Telemetry* telemetry = nullptr);

    RequestScheduler(const RequestScheduler&) = delete; ///< non-copyable
    RequestScheduler&
    operator=(const RequestScheduler&) = delete; ///< non-copyable

    /** The options the scheduler was opened with. */
    const SchedulerOptions& options() const { return options_; }

    /** The session's rank count (placement domain). */
    unsigned numRanks() const { return numRanks_; }

    /** The telemetry registry admissions and completions land in. */
    Telemetry& telemetry() { return *telemetry_; }

    /** Current virtual time (seconds). */
    double clockSeconds() const;

    /**
     * Advances virtual time to @p seconds (monotone; earlier values are
     * ignored) and finalizes every queued start decision the new clock
     * makes safe.  An open-loop generator calls this with each
     * arrival's timestamp.
     */
    void advanceTo(double seconds);

    /**
     * Admission control: projects the request onto every candidate
     * rank, sheds or rejects per the policy, and on admission places
     * the request (virtual time) and submits it to the session (real
     * execution).  Returns immediately.
     */
    AdmissionDecision submit(ServingRequest request);

    /**
     * Blocks until ticket @p id's real execution completes and returns
     * the result plus the final virtual-time sample (finalizing the
     * virtual schedule as far as needed).  Shed/rejected tickets return
     * just the decision.  Consumes the ticket.
     */
    ServingResult wait(std::uint64_t id);

    /**
     * Finalizes every queued virtual start decision (declares that no
     * further arrivals precede them) and drains the session.
     */
    void drain();

    /** Admitted requests not yet virtually started. */
    std::size_t queuedRequests() const;

  private:
    /** One admitted request in the virtual-time model. */
    struct Entry {
        std::uint64_t id = 0;
        DeadlineClass lane = DeadlineClass::Interactive;
        double arrival = 0;
        double deadline = 0; ///< absolute; +inf when none
        double service = 0;  ///< steady seconds + projected broadcast
        unsigned rank = 0;   ///< placement; kAllRanks = gang
        std::uint64_t seq = 0; ///< admission order (FIFO + tie-break)
        double collectiveSeconds = 0;
        double broadcastSeconds = 0;
    };

    /** Ticket bookkeeping from admission to wait(). */
    struct Ticket {
        AdmissionDecision decision;
        bool isWorkload = false;
        InferenceSession::RequestId sessionId = 0;
        RequestSample sample;
        bool sequenced = false;
        /** Table-set keys this admission added to plannedSets_;
         * released at wait(), once the real execution has acquired
         * them and ResidencyManager::isResident() is authoritative. */
        std::vector<TableSetKey> plannedKeys;
    };

    struct ServiceProjection {
        double steadySeconds = 0;
        double collectiveSeconds = 0;
        /** Broadcast seconds a cold rank would pay, per candidate rank
         * (empty when residency is off / request is sharded). */
        std::vector<double> rankBroadcastSeconds;
        /** Residency keys the request's table sets would occupy, per
         * rank (parallel to rankBroadcastSeconds; unused when empty). */
        std::vector<std::vector<TableSetKey>> rankKeys;
    };

    /** Priority: lane, then deadline, then seq (Slo); seq (Fifo). */
    bool outranksLocked(const Entry& a, const Entry& b) const;
    /** max(freeAt) over the ranks @p entry occupies. */
    double readyLocked(const Entry& entry,
                       const std::vector<double>& freeAt) const;
    /**
     * Non-preemptive priority simulation of @p entries over @p freeAt:
     * repeatedly starts the highest-priority entry among those whose
     * ranks free up earliest, stopping at decisions later than
     * @p limit.  Returns (start, completion) per input index (-1 for
     * entries not started within the limit); @p freeAt is advanced to
     * the post-simulation per-rank availability.
     */
    std::vector<std::pair<double, double>>
    simulateLocked(const std::vector<const Entry*>& entries,
                   std::vector<double>& freeAt, double limit) const;
    /** Runs the real sequencer up to @p limit, recording samples. */
    void sequenceLocked(double limit);
    ServiceProjection projectServiceLocked(const ServingRequest& request);
    /** Fills @p projection's per-rank broadcast seconds + keys for one
     * plan's table set (skipping warm / planned / untracked sets). */
    void projectColdStartLocked(const GemmPlan& plan,
                                const std::string& scope,
                                double instances,
                                ServiceProjection& projection) const;
    void recordStartLocked(const Entry& entry, double start,
                           double completion);
    /** Pushes the injector's counters + capacity gauge to telemetry. */
    void publishFaults();

    InferenceSession& session_;
    SchedulerOptions options_;
    unsigned numRanks_;
    /** The session's fault injector; nullptr serves fault-free. */
    FaultInjector* injector_ = nullptr;
    std::unique_ptr<Telemetry> ownedTelemetry_;
    Telemetry* telemetry_;

    mutable std::mutex mutex_;
    double clock_ = 0;
    std::vector<double> freeAt_;      ///< per-rank virtual availability
    std::vector<Entry> pending_;      ///< admitted, not yet started
    std::unordered_map<std::uint64_t, Ticket> tickets_;
    /**
     * Table sets planned resident by *in-flight* admitted placements:
     * cold-start awareness for the window between admission and real
     * execution.  Keys are released at wait(), after which
     * ResidencyManager::isResident() is authoritative — so a set the
     * manager later evicts is correctly re-projected as cold.
     */
    std::unordered_set<TableSetKey, TableSetKeyHash> plannedSets_;
    /** Memoized steady service seconds per GEMM plan key (a pure
     * function of the memoized plan; avoids re-running the timing
     * model on every submission of a repeated shape). */
    std::unordered_map<PlanKey, double, PlanKeyHash> gemmServiceMemo_;
    std::uint64_t nextId_ = 1;
    std::uint64_t nextSeq_ = 1;
};

} // namespace localut

#endif // LOCALUT_SERVING_SCHEDULER_H_
