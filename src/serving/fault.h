/**
 * @file fault.h
 * @brief Deterministic, seed-driven fault injection and rank/node health
 *        tracking for the serving stack.
 *
 * A FaultInjector is shared by an InferenceSession, its ResidencyManager,
 * the RequestScheduler, and the TokenEngine.  Fault *decisions* are pure
 * functions of stable identifiers (seed, request id, attempt index, rank),
 * so the same seed and fault plan reproduce the same injected faults across
 * runs and across worker-thread counts; *scheduled* faults (rank death,
 * fabric-link degradation) fire on the existing virtual-time clock when a
 * consumer calls advanceTo().  Nothing here sleeps or touches wall clock:
 * retries and backoff are charged as modeled virtual-time seconds.
 */
#ifndef LOCALUT_SERVING_FAULT_H_
#define LOCALUT_SERVING_FAULT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/topology.h"

namespace localut {

/** Kinds of fault a FaultPlan can inject. */
enum class FaultKind {
    TransientExecute,  ///< a rank's execute attempt fails (retryable)
    RankDeath,         ///< a rank dies permanently at a virtual time
    LinkDegrade,       ///< a node's fabric link slows by a factor
    BroadcastCorrupt,  ///< an inter-node LUT broadcast payload corrupts
};

/** Stable lower-case name of @p kind (used as a Prometheus label). */
const char* faultKindName(FaultKind kind);

/** One fault specification inside a FaultPlan. */
struct FaultSpec {
    /** Matches any rank (TransientExecute) when used as FaultSpec::rank. */
    static constexpr unsigned kAnyRank = ~0u;

    /** What kind of fault this spec injects. */
    FaultKind kind = FaultKind::TransientExecute;
    /** Target flat rank (TransientExecute / RankDeath); kAnyRank = all. */
    unsigned rank = kAnyRank;
    /** Target node (LinkDegrade only). */
    unsigned node = 0;
    /** Per-attempt probability (TransientExecute / BroadcastCorrupt). */
    double rate = 0.0;
    /** Virtual fire time in seconds (RankDeath / LinkDegrade). */
    double atSeconds = 0.0;
    /** Link slowdown multiplier, >= 1 (LinkDegrade only). */
    double factor = 1.0;
};

/**
 * A seeded list of fault specs.  Build one with the chainable helpers and
 * hand it to a FaultInjector:
 *
 * @code
 *   FaultPlan plan;
 *   plan.seed = 42;
 *   plan.transientExecute(0.2)      // 20% of attempts fail, any rank
 *       .rankDeath(3, 0.5)          // flat rank 3 dies at t = 0.5 s
 *       .linkDegrade(1, 4.0, 0.25)  // node 1 fabric 4x slower from 0.25 s
 *       .broadcastCorrupt(0.1);     // 10% of inter-node payloads corrupt
 * @endcode
 */
struct FaultPlan {
    /** Seed mixed into every deterministic fault decision. */
    std::uint64_t seed = 0;
    /** The fault specs; order matters only for same-time scheduled specs. */
    std::vector<FaultSpec> specs;

    /** Add a transient execute-failure spec at @p rate on @p rank. */
    FaultPlan& transientExecute(double rate,
                                unsigned rank = FaultSpec::kAnyRank);
    /** Add a permanent death of @p rank at virtual time @p atSeconds. */
    FaultPlan& rankDeath(unsigned rank, double atSeconds);
    /** Degrade @p node's fabric link by @p factor from @p atSeconds on. */
    FaultPlan& linkDegrade(unsigned node, double factor, double atSeconds);
    /** Add inter-node broadcast corruption at @p rate per payload send. */
    FaultPlan& broadcastCorrupt(double rate);
};

/**
 * How a session reacts to injected faults.  All durations are virtual-time
 * seconds charged into the request's TimingReport.
 */
struct FaultPolicy {
    /** Execute attempts per rank before the rank is given up on. */
    unsigned maxAttempts = 5;
    /** Backoff before the first retry (doubles per attempt). */
    double backoffBaseSeconds = 100e-6;
    /** Cap on a single backoff interval. */
    double backoffCapSeconds = 10e-3;
    /**
     * Transient failures on a rank before it is quarantined (removed
     * from placement; resident state kept).  0 disables quarantine.
     */
    std::uint64_t quarantineThreshold = 16;
    /**
     * When true, work re-routes around dead/quarantined ranks (pinned
     * requests re-home, sharded GEMMs re-shard over the survivor set).
     * When false the stack models a fault-oblivious baseline: any fault
     * that exhausts retries, or a dead home rank, sheds the request.
     */
    bool failover = true;
};

/** Health of one flat rank. */
enum class RankHealth : std::uint8_t {
    Healthy = 0,     ///< schedulable
    Quarantined = 1, ///< too many transient failures; no new placements
    Dead = 2,        ///< permanently lost; resident state invalidated
};

/** Stable lower-case name of @p health. */
const char* rankHealthName(RankHealth health);

/** Cumulative fault/recovery counters (all monotone except gauges). */
struct FaultStats {
    std::uint64_t transientFaults = 0;    ///< injected execute failures
    std::uint64_t retries = 0;            ///< retried attempts (charged)
    std::uint64_t corruptedBroadcasts = 0;///< checksum-detected payloads
    std::uint64_t resends = 0;            ///< broadcast resends (charged)
    std::uint64_t quarantines = 0;        ///< ranks ever quarantined
    std::uint64_t failovers = 0;          ///< re-homes + re-shards
    std::uint64_t shedFault = 0;          ///< requests shed by faults
    std::uint64_t linkDegrades = 0;       ///< degradation events fired
    std::uint64_t ranksDead = 0;          ///< gauge: currently dead
    std::uint64_t ranksQuarantined = 0;   ///< gauge: currently quarantined
    double backoffSeconds = 0.0;          ///< virtual backoff charged
};

/** Thrown when a request is shed because of injected faults. */
class FaultShedError : public std::runtime_error {
public:
    /** Build a shed error for @p rank with human-readable @p what. */
    FaultShedError(unsigned rank, const std::string& what)
        : std::runtime_error(what), rank_(rank)
    {
    }

    /** Flat rank the request was bound to when it was shed. */
    unsigned rank() const { return rank_; }

private:
    unsigned rank_;
};

/**
 * Deterministic fault source + rank/node health registry.
 *
 * Thread-safe.  Decision methods (executeFails, broadcastCorrupted) are
 * pure hashes over stable ids plus relaxed stat counters, so they never
 * serialize hot paths.  advanceTo() fires due scheduled faults exactly
 * once; rank-loss listeners run outside the injector's lock so they may
 * take their own locks (e.g. ResidencyManager::invalidateRank).
 */
class FaultInjector {
public:
    /** Sentinel returned by firstSchedulable() when every rank is down. */
    static constexpr unsigned kNoRank = ~0u;

    /** Create an injector for @p plan over @p topology's flat ranks. */
    FaultInjector(FaultPlan plan, Topology topology);

    /** The topology the injector tracks health for. */
    const Topology& topology() const { return topo_; }

    /** The plan this injector replays. */
    const FaultPlan& plan() const { return plan_; }

    /**
     * Deterministically decide whether attempt @p attempt of request
     * @p requestId on flat rank @p rank fails.  @p salt distinguishes
     * concurrent units of the same request (e.g. shard index + 1).
     * Counts an injected fault when it returns true.
     */
    bool executeFails(std::uint64_t requestId, unsigned attempt,
                      unsigned rank, std::uint64_t salt = 0);

    /**
     * Deterministically decide whether send @p attempt of broadcast
     * payload @p payloadId corrupts in flight.  Counts the corruption
     * (and, for attempt > 0, nothing extra: resends are noted by the
     * charging side via noteResend()).
     */
    bool broadcastCorrupted(std::uint64_t payloadId, unsigned attempt);

    /**
     * Advance the virtual clock to @p seconds (monotone max) and fire
     * every scheduled fault whose time has come, exactly once.  Rank
     * deaths invoke the registered rank-loss listeners after the
     * injector's lock is released.
     */
    void advanceTo(double seconds);

    /** Current virtual clock (max over all advanceTo calls). */
    double clockSeconds() const;

    /** Health of flat @p rank. */
    RankHealth health(unsigned rank) const;

    /** True when @p rank may receive new work (Healthy). */
    bool schedulable(unsigned rank) const
    {
        return health(rank) == RankHealth::Healthy;
    }

    /** All currently schedulable flat ranks, ascending. */
    std::vector<unsigned> schedulableRanks() const;

    /** Number of currently schedulable ranks. */
    unsigned aliveCount() const;

    /** Fraction of ranks still schedulable in [0, 1] (capacity gauge). */
    double capacityRatio() const;

    /**
     * First schedulable rank at or after @p from (wrapping), or kNoRank.
     * Deterministic survivor pick for failover.
     */
    unsigned firstSchedulable(unsigned from = 0) const;

    /** Current fabric-link slowdown factor of @p node (1 = healthy). */
    double linkFactor(unsigned node) const;

    /**
     * Kill @p rank immediately (also used by advanceTo for scheduled
     * deaths).  Fires rank-loss listeners outside the lock; a second
     * kill of the same rank is a no-op.
     */
    void killRank(unsigned rank);

    /**
     * Record a transient failure on @p rank.  Once the per-rank count
     * reaches @p quarantineThreshold (> 0) a Healthy rank moves to
     * Quarantined.
     */
    void recordFailure(unsigned rank, std::uint64_t quarantineThreshold);

    /**
     * Register @p listener to run whenever a rank dies.  Listeners run
     * outside the injector's lock.  Register before serving starts;
     * registration is not synchronized against concurrent kills.
     */
    void onRankLoss(std::function<void(unsigned)> listener);

    /** Note @p count retried attempts (stats only). */
    void noteRetries(std::uint64_t count);

    /** Note @p seconds of virtual backoff charged (stats only). */
    void noteBackoff(double seconds);

    /** Note one failover (re-home or re-shard; stats only). */
    void noteFailover();

    /** Note one request shed for fault reasons (stats only). */
    void noteShedFault();

    /** Note one broadcast resend charged (stats only). */
    void noteResend();

    /** Snapshot of the cumulative counters and health gauges. */
    FaultStats stats() const;

private:
    struct Scheduled {
        FaultSpec spec;
        bool fired = false;
    };

    bool decide(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                double rate) const;
    std::vector<std::function<void(unsigned)>>
    markDeadLocked(unsigned rank);

    FaultPlan plan_;
    Topology topo_;
    std::vector<double> transientRate_; ///< per rank, immutable
    double corruptRate_ = 0.0;          ///< immutable

    mutable std::mutex mutex_;
    double clock_ = 0.0;
    std::vector<Scheduled> scheduled_;
    std::vector<std::function<void(unsigned)>> listeners_;

    std::unique_ptr<std::atomic<std::uint8_t>[]> health_;
    std::unique_ptr<std::atomic<std::uint64_t>[]> failures_;
    std::unique_ptr<std::atomic<double>[]> linkFactor_;

    mutable std::atomic<std::uint64_t> transientFaults_{0};
    mutable std::atomic<std::uint64_t> corruptedBroadcasts_{0};
    std::atomic<std::uint64_t> retries_{0};
    std::atomic<std::uint64_t> resends_{0};
    std::atomic<std::uint64_t> quarantines_{0};
    std::atomic<std::uint64_t> failovers_{0};
    std::atomic<std::uint64_t> shedFault_{0};
    std::atomic<std::uint64_t> linkDegrades_{0};
    std::atomic<double> backoffSeconds_{0.0};
};

} // namespace localut

#endif // LOCALUT_SERVING_FAULT_H_
