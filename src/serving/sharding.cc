#include "serving/sharding.h"

#include <algorithm>
#include <utility>

#include "common/bitops.h"
#include "common/logging.h"
#include "nn/inference.h"
#include "serving/plan_cache.h"

namespace localut {

const char*
shardStrategyName(ShardStrategy strategy)
{
    switch (strategy) {
      case ShardStrategy::ColumnParallel: return "column-parallel";
      case ShardStrategy::RowParallel:    return "row-parallel";
    }
    LOCALUT_PANIC("invalid shard strategy");
}

double
ShardPlan::predictedSeconds() const
{
    double slowest = 0;
    for (const GemmShard& shard : shards) {
        slowest = std::max(slowest, shard.plan.predictedSeconds);
    }
    return slowest + collectiveSeconds + hostReduceSeconds;
}

namespace {

/** Output elements are int32 (integer configs) or fp32: 4 bytes both. */
constexpr double kOutBytes = 4.0;

/**
 * Charges the RowParallel host partial-sum reduce of @p plan.  The one
 * derivation shared by planning (ShardPlan::hostReduceSeconds),
 * reduceShardResults() (which folds it into the result), and
 * executeShardedWorkload() (which classifies the same seconds into the
 * report's host share).
 */
void
chargeHostReduce(const Backend& backend, const ShardPlan& plan,
                 TimingReport& timing, EnergyReport& energy)
{
    backend.chargeHostOps(plan.hostReduceOps, timing, energy);
}

/**
 * Charges the reduction collective of @p plan (> 1 shard only) as a
 * hierarchical two-hop transfer: every rank drains its slice over its
 * node's local host link (nodes gather concurrently; the busiest node's
 * link paces the hop), then the remote nodes' contributions hop the
 * CXL inter-node tier to the root node.  RowParallel additionally
 * reduces partials hierarchically — each node's head combines its local
 * partials before one partial per remote node crosses the fabric.  On a
 * single-node topology the inter hop vanishes and the charge reproduces
 * the flat model bit-exactly (golden-pinned in test_golden_costs).
 */
void
chargeCollective(const Backend& backend, ShardPlan& plan)
{
    const std::size_t shards = plan.shards.size();
    if (shards <= 1) {
        return;
    }
    const CollectiveLinkProfile prof = backend.collectiveProfile();
    const Topology topo = plan.spec.topology();
    const double outElems =
        static_cast<double>(plan.m) * static_cast<double>(plan.n);
    const bool rowPar = plan.spec.strategy == ShardStrategy::RowParallel;

    // Per-node aggregates of the bytes the cut's shards actually drain.
    std::vector<double> nodeBytes(topo.nodes, 0.0);
    std::vector<unsigned> nodeShards(topo.nodes, 0);
    double perRankBytes = 0; // the largest single rank's contribution
    double totalBytes = 0;   // moved rank -> host, summed over ranks
    for (const GemmShard& shard : plan.shards) {
        const double bytes =
            rowPar ? outElems * kOutBytes
                   : static_cast<double>(shard.extent()) *
                         static_cast<double>(plan.n) * kOutBytes;
        const unsigned node = topo.nodeOf(shard.rank % topo.totalRanks());
        nodeBytes[node] += bytes;
        nodeShards[node] += 1;
        perRankBytes = std::max(perRankBytes, bytes);
        totalBytes += bytes;
    }

    if (rowPar) {
        // Hierarchical partial-sum reduce: each node's head adds its
        // local partials (nodes work concurrently — the busiest node
        // paces), then the root adds one partial per active node.
        unsigned maxIntra = 0, activeNodes = 0;
        for (unsigned node = 0; node < topo.nodes; ++node) {
            if (nodeShards[node] == 0) {
                continue;
            }
            ++activeNodes;
            maxIntra = std::max(maxIntra, nodeShards[node] - 1);
        }
        plan.hostReduceOps =
            static_cast<double>(maxIntra + (activeNodes - 1)) * outElems;
    }

    // Intra-node hop: ranks drain concurrently; each node's host link
    // serializes that node's aggregate (nodes transfer in parallel, so
    // the busiest node paces); energy pays for every byte drained and
    // crossed.  One bulk-launch latency covers the rank-parallel hop.
    double maxNodeBytes = 0;
    for (const double bytes : nodeBytes) {
        maxNodeBytes = std::max(maxNodeBytes, bytes);
    }
    const CollectiveCost intra = collectiveHopCost(
        prof.dram, prof.dramEnergy,
        {prof.banksPerRank, perRankBytes, totalBytes, maxNodeBytes,
         totalBytes},
        prof.intraTier());

    // Inter-node hop: what remote nodes contribute crosses the fabric
    // to the root (node 0) — gathered slices for ColumnParallel, one
    // node-reduced partial per active remote node for RowParallel.
    double interBytes = 0;
    if (topo.multiNode()) {
        if (rowPar) {
            for (unsigned node = 1; node < topo.nodes; ++node) {
                if (nodeShards[node] > 0) {
                    interBytes += outElems * kOutBytes;
                }
            }
        } else {
            interBytes = totalBytes - nodeBytes[0];
        }
    }
    CollectiveCost inter;
    if (interBytes > 0) {
        inter = collectiveHopCost(prof.dram, prof.dramEnergy,
                                  {0, 0, 0, interBytes, interBytes},
                                  prof.interNode);
    }

    plan.collectiveBytes = totalBytes;
    plan.interNodeBytes = interBytes;
    plan.interNodeSeconds = inter.seconds;
    plan.collectiveSeconds = intra.seconds + inter.seconds;
    plan.collectiveJoules = intra.joules + inter.joules;
    if (plan.hostReduceOps > 0) {
        TimingReport reduceTiming;
        EnergyReport reduceEnergy;
        chargeHostReduce(backend, plan, reduceTiming, reduceEnergy);
        plan.hostReduceSeconds = reduceTiming.total;
    }
}

} // namespace

ShardPlan
makeShardPlan(const Backend& backend, const GemmProblem& problem,
              DesignPoint design, const ShardSpec& spec,
              const PlanOverrides& overrides, PlanCache* cache)
{
    LOCALUT_REQUIRE(spec.numRanks >= 1, "a shard plan needs >= 1 rank");
    LOCALUT_REQUIRE(spec.numNodes >= 1, "a shard plan needs >= 1 node");
    ShardPlan plan;
    plan.spec = spec;
    plan.design = design;
    plan.config = problem.config();
    plan.m = problem.m();
    plan.k = problem.k();
    plan.n = problem.n();

    const bool rowPar = spec.strategy == ShardStrategy::RowParallel;
    const bool isInt = plan.config.weightCodec.isInteger() &&
                       plan.config.actCodec.isInteger();
    LOCALUT_REQUIRE(!rowPar || !spec.sharded() || isInt,
                    "row-parallel sharding reduces partial sums, which is "
                    "bit-exact only for integer configs (got ",
                    plan.config.name(), ")");

    // Cut the shard axis into totalRanks() contiguous, alignment-
    // respecting slices (ceil split: the tail shard may be shorter or
    // absent when the axis is small).  Flat rank ids are node-major, so
    // consecutive shards fill one node's ranks before the next node's.
    const std::size_t axis = rowPar ? plan.k : plan.m;
    const std::size_t align = std::max<std::size_t>(1, spec.align);
    const std::size_t groups = ceilDiv(axis, align);
    const std::size_t step =
        ceilDiv(groups, static_cast<std::size_t>(spec.totalRanks())) *
        align;
    for (unsigned r = 0; static_cast<std::size_t>(r) * step < axis; ++r) {
        const std::size_t begin = static_cast<std::size_t>(r) * step;
        const std::size_t end = std::min(axis, begin + step);
        const GemmProblem slice =
            rowPar ? makeShapeOnlyProblem(plan.m, end - begin, plan.n,
                                          plan.config)
                   : makeShapeOnlyProblem(end - begin, plan.k, plan.n,
                                          plan.config);
        GemmPlan subPlan =
            cache ? cache->shardSubPlanFor(backend, slice, design,
                                           overrides)
                  : backend.plan(slice, design, overrides);
        plan.shards.push_back({r, begin, end, std::move(subPlan)});
    }
    LOCALUT_ASSERT(!plan.shards.empty() &&
                       plan.shards.back().end == axis,
                   "shard partition does not cover the axis");
    chargeCollective(backend, plan);
    return plan;
}

GemmProblem
shardProblem(const GemmProblem& problem, const ShardPlan& plan,
             unsigned shardIndex)
{
    LOCALUT_REQUIRE(shardIndex < plan.shards.size(),
                    "shard index out of range");
    LOCALUT_REQUIRE(problem.m() == plan.m && problem.k() == plan.k &&
                        problem.n() == plan.n,
                    "problem shape does not match the shard plan");
    const GemmShard& shard = plan.shards[shardIndex];
    const std::size_t lo = shard.begin, hi = shard.end;

    GemmProblem sub;
    if (plan.spec.strategy == ShardStrategy::ColumnParallel) {
        // W rows [lo, hi) (row-major: contiguous); all of A.
        sub.w.rows = hi - lo;
        sub.w.cols = problem.w.cols;
        sub.w.codec = problem.w.codec;
        sub.w.scale = problem.w.scale;
        if (!problem.w.codes.empty()) {
            sub.w.codes.assign(
                problem.w.codes.begin() +
                    static_cast<std::ptrdiff_t>(lo * problem.w.cols),
                problem.w.codes.begin() +
                    static_cast<std::ptrdiff_t>(hi * problem.w.cols));
        }
        sub.a = problem.a;
    } else {
        // W columns [lo, hi) (strided rows); A rows [lo, hi) (contiguous).
        sub.w.rows = problem.w.rows;
        sub.w.cols = hi - lo;
        sub.w.codec = problem.w.codec;
        sub.w.scale = problem.w.scale;
        if (!problem.w.codes.empty()) {
            sub.w.codes.reserve(sub.w.rows * sub.w.cols);
            for (std::size_t r = 0; r < problem.w.rows; ++r) {
                const auto row = problem.w.codes.begin() +
                                 static_cast<std::ptrdiff_t>(
                                     r * problem.w.cols);
                sub.w.codes.insert(
                    sub.w.codes.end(),
                    row + static_cast<std::ptrdiff_t>(lo),
                    row + static_cast<std::ptrdiff_t>(hi));
            }
        }
        sub.a.rows = hi - lo;
        sub.a.cols = problem.a.cols;
        sub.a.codec = problem.a.codec;
        sub.a.scale = problem.a.scale;
        if (!problem.a.codes.empty()) {
            sub.a.codes.assign(
                problem.a.codes.begin() +
                    static_cast<std::ptrdiff_t>(lo * problem.a.cols),
                problem.a.codes.begin() +
                    static_cast<std::ptrdiff_t>(hi * problem.a.cols));
        }
    }
    return sub;
}

GemmResult
reduceShardResults(const Backend& backend, const ShardPlan& plan,
                   std::vector<GemmResult> parts)
{
    LOCALUT_REQUIRE(parts.size() == plan.shards.size(),
                    "need one result per shard");
    // Critical shard: slowest end-to-end; lowest index breaks ties, so
    // the reduction is deterministic regardless of completion order.
    std::size_t critical = 0;
    for (std::size_t i = 1; i < parts.size(); ++i) {
        if (parts[i].timing.total > parts[critical].timing.total) {
            critical = i;
        }
    }

    GemmResult out;
    out.timing = parts[critical].timing;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        out.cost.merge(parts[i].cost);
        accumulate(out.energy, parts[i].energy);
    }

    // Assemble values in shard-index order (deterministic reduction).
    const bool hasInt = !parts[critical].outInt.empty();
    const bool hasFloat = !parts[critical].outFloat.empty();
    if (parts.size() == 1) {
        // A single shard covers the whole output under either strategy
        // (this is also the one RowParallel case that is legal for
        // float configs: nothing needs summing).
        out.outInt = std::move(parts[0].outInt);
        out.outFloat = std::move(parts[0].outFloat);
    } else if (hasInt || hasFloat) {
        const std::size_t elems = plan.m * plan.n;
        if (hasInt) {
            out.outInt.assign(elems, 0);
        } else {
            out.outFloat.assign(elems, 0.0f);
        }
        for (std::size_t i = 0; i < parts.size(); ++i) {
            const GemmShard& shard = plan.shards[i];
            if (plan.spec.strategy == ShardStrategy::ColumnParallel) {
                const std::size_t offset = shard.begin * plan.n;
                if (hasInt) {
                    std::copy(parts[i].outInt.begin(),
                              parts[i].outInt.end(),
                              out.outInt.begin() +
                                  static_cast<std::ptrdiff_t>(offset));
                } else {
                    std::copy(parts[i].outFloat.begin(),
                              parts[i].outFloat.end(),
                              out.outFloat.begin() +
                                  static_cast<std::ptrdiff_t>(offset));
                }
            } else {
                LOCALUT_ASSERT(hasInt, "row-parallel reduce is int-only");
                LOCALUT_ASSERT(parts[i].outInt.size() == elems,
                               "row-parallel partial has wrong shape");
                for (std::size_t e = 0; e < elems; ++e) {
                    out.outInt[e] += parts[i].outInt[e];
                }
            }
        }
    }

    // Charge the collective on top of the critical shard, split by tier
    // so the breakdown shows what the CXL fabric (not the host links)
    // cost.
    if (plan.collectiveSeconds > 0 || plan.collectiveJoules > 0) {
        out.timing.linkSeconds += plan.collectiveSeconds;
        out.timing.total += plan.collectiveSeconds;
        out.timing.seconds.add("link.collective",
                               plan.collectiveSeconds -
                                   plan.interNodeSeconds);
        if (plan.interNodeSeconds > 0) {
            out.timing.seconds.add("link.internode",
                                   plan.interNodeSeconds);
        }
        out.energy.total += plan.collectiveJoules;
        out.energy.joules.add("link.collective", plan.collectiveJoules);
        out.cost.addLinkBytes(Phase::LinkOut, plan.collectiveBytes);
        if (plan.interNodeBytes > 0) {
            out.cost.addLinkBytes(Phase::LinkInterNode,
                                  plan.interNodeBytes);
        }
    }
    if (plan.hostReduceOps > 0) {
        TimingReport reduceTiming;
        EnergyReport reduceEnergy;
        chargeHostReduce(backend, plan, reduceTiming, reduceEnergy);
        accumulate(out.timing, reduceTiming);
        accumulate(out.energy, reduceEnergy);
        out.cost.addHostOps(Phase::HostOther, plan.hostReduceOps);
    }
    return out;
}

GemmResult
executeSharded(const Backend& backend, const GemmProblem& problem,
               const ShardPlan& plan, bool computeValues)
{
    ExecOptions options;
    options.computeValues = computeValues;
    return executeSharded(backend, problem, plan, options);
}

GemmResult
executeSharded(const Backend& backend, const GemmProblem& problem,
               const ShardPlan& plan, const ExecOptions& options,
               PlanCache* cache, const PlanOverrides& overrides)
{
    std::vector<GemmResult> parts;
    parts.reserve(plan.shards.size());
    for (unsigned i = 0; i < plan.shards.size(); ++i) {
        const GemmProblem slice = shardProblem(problem, plan, i);
        ExecOptions shardOptions = options;
        shardOptions.prepared = nullptr;
        shardOptions.flatRank =
            plan.shards[i].rank % plan.spec.totalRanks();
        std::shared_ptr<const PreparedGemm> prepared;
        if (cache != nullptr && shardOptions.computeValues &&
            !backend.capabilities().referenceFunctionalOnly &&
            !slice.w.codes.empty()) {
            prepared = cache->preparedFor(backend, slice,
                                          plan.shards[i].plan, overrides);
            shardOptions.prepared = prepared.get();
        }
        parts.push_back(backend.execute(slice, plan.shards[i].plan,
                                        shardOptions));
    }
    return reduceShardResults(backend, plan, std::move(parts));
}

InferenceReport
executeShardedWorkload(const Backend& backend,
                       const std::vector<ShardedGemm>& nodes,
                       const QuantConfig& quant, double hostOps,
                       const ExecOptions& options)
{
    ExecOptions nodeOptions = options;
    nodeOptions.computeValues = false; // workload nodes are shape-only
    nodeOptions.prepared = nullptr;
    InferenceReport report;
    for (const ShardedGemm& node : nodes) {
        const GemmProblem problem = makeShapeOnlyProblem(
            node.gemm.m, node.gemm.k, node.gemm.n, quant);
        const GemmResult r =
            executeSharded(backend, problem, node.plan, nodeOptions);
        accumulate(report.timing, r.timing, node.gemm.count);
        accumulate(report.energy, r.energy, node.gemm.count);
        // The node's end-to-end time contains the collective and (for
        // RowParallel) the host partial-sum reduce; classify those into
        // their own report shares so gemm + host + collective == total.
        double reduceSeconds = 0;
        if (node.plan.hostReduceOps > 0) {
            TimingReport reduceTiming;
            EnergyReport reduceEnergy;
            chargeHostReduce(backend, node.plan, reduceTiming,
                             reduceEnergy);
            reduceSeconds = reduceTiming.total;
        }
        report.gemmSeconds +=
            (r.timing.total - node.plan.collectiveSeconds - reduceSeconds) *
            node.gemm.count;
        report.hostOpSeconds += reduceSeconds * node.gemm.count;
        report.collectiveSeconds +=
            node.plan.collectiveSeconds * node.gemm.count;
        report.interNodeSeconds +=
            node.plan.interNodeSeconds * node.gemm.count;
    }
    TimingReport hostTiming;
    EnergyReport hostEnergy;
    backend.chargeHostOps(hostOps, hostTiming, hostEnergy);
    accumulate(report.timing, hostTiming);
    accumulate(report.energy, hostEnergy);
    report.hostOpSeconds += hostTiming.total;
    return report;
}

WorkloadCostProjection
projectShardedWorkloadCost(const Backend& backend,
                           const std::vector<ShardedGemm>& nodes,
                           const QuantConfig& quant, double hostOps)
{
    const InferenceReport report =
        executeShardedWorkload(backend, nodes, quant, hostOps);
    return {report.gemmSeconds, report.hostOpSeconds,
            report.collectiveSeconds};
}

} // namespace localut
